package slicehw

import (
	"testing"

	"repro/internal/isa"
)

func testSlice() *Slice {
	return &Slice{
		Name:     "test",
		ForkPC:   0x1000,
		SlicePC:  0x100000,
		LiveIns:  []isa.Reg{isa.GP, 5},
		MaxLoops: 4,
		PGIs: []PGI{
			{SlicePC: 0x100010, BranchPC: 0x2000},
		},
		LoopKillPC:  0x2040,
		SliceKillPC: 0x2080,
	}
}

func TestTableLookups(t *testing.T) {
	s := testSlice()
	tbl := MustTable([]*Slice{s})
	if got := tbl.ForksAt(0x1000); len(got) != 1 || got[0] != s {
		t.Errorf("ForksAt = %v", got)
	}
	if got := tbl.ForksAt(0x1004); got != nil {
		t.Errorf("spurious fork at %v", got)
	}
	if got := tbl.LoopKillsAt(0x2040); len(got) != 1 {
		t.Errorf("LoopKillsAt = %v", got)
	}
	if got := tbl.SliceKillsAt(0x2080); len(got) != 1 {
		t.Errorf("SliceKillsAt = %v", got)
	}
	ref, ok := tbl.PGIAt(0x100010)
	if !ok || ref.Slice != s || ref.PGI.BranchPC != 0x2000 {
		t.Errorf("PGIAt = %+v ok=%v", ref, ok)
	}
	if _, ok := tbl.PGIAt(0x100014); ok {
		t.Error("spurious PGI")
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable([]*Slice{{Name: "bad"}}); err == nil {
		t.Error("slice without PCs accepted")
	}
	s1 := testSlice()
	s2 := testSlice()
	s2.ForkPC = 0x3000
	if _, err := NewTable([]*Slice{s1, s2}); err == nil {
		t.Error("duplicate PGI PC accepted")
	}
}

func TestSliceMetadata(t *testing.T) {
	s := testSlice()
	s.PGIs = append(s.PGIs, PGI{SlicePC: 0x100014, BranchPC: 0x2000}, PGI{SlicePC: 0x100018, BranchPC: 0x2020})
	covered := s.CoveredBranchPCs()
	if len(covered) != 2 || covered[0] != 0x2000 || covered[1] != 0x2020 {
		t.Errorf("covered = %#v", covered)
	}
	if s.KillCount() != 2 {
		t.Errorf("kills = %d", s.KillCount())
	}
}

// --- Correlator ---

func TestBasicPredictionFlow(t *testing.T) {
	s := testSlice()
	c := NewCorrelator(8)
	inst := c.NewInstance(s)

	p := c.Allocate(inst, 0x2000)
	if p == nil || p.State() != PredEmpty {
		t.Fatalf("allocate = %+v", p)
	}
	c.Fill(p, true)
	if p.State() != PredFull {
		t.Fatalf("state after fill = %v", p.State())
	}
	got, dir, override := c.Lookup(0x2000, false, "branch1")
	if got != p || !dir || !override {
		t.Fatalf("lookup = %v dir=%v override=%v", got, dir, override)
	}
	if p.Consumer != "branch1" {
		t.Errorf("consumer = %v", p.Consumer)
	}
	// A second branch instance must not reuse the same prediction.
	got2, _, override2 := c.Lookup(0x2000, false, "branch2")
	if got2 != nil || override2 {
		t.Error("used prediction matched again")
	}
}

func TestLookupWithoutPredictions(t *testing.T) {
	c := NewCorrelator(8)
	p, dir, override := c.Lookup(0x9999, true, nil)
	if p != nil || !dir || override {
		t.Errorf("empty lookup = %v,%v,%v", p, dir, override)
	}
}

func TestFIFOOrderAcrossEntries(t *testing.T) {
	s := testSlice()
	c := NewCorrelator(8)
	inst := c.NewInstance(s)
	p1 := c.Allocate(inst, 0x2000)
	p2 := c.Allocate(inst, 0x2000)
	c.Fill(p1, true)
	c.Fill(p2, false)
	_, dir, _ := c.Lookup(0x2000, false, 1)
	if !dir {
		t.Error("head prediction not used first")
	}
	_, dir, _ = c.Lookup(0x2000, true, 2)
	if dir {
		t.Error("second prediction out of order")
	}
}

func TestQueueCapacity(t *testing.T) {
	s := testSlice()
	c := NewCorrelator(2)
	inst := c.NewInstance(s)
	if c.Allocate(inst, 0x2000) == nil || c.Allocate(inst, 0x2000) == nil {
		t.Fatal("allocation failed with space")
	}
	if c.Allocate(inst, 0x2000) != nil {
		t.Error("allocation above capacity succeeded")
	}
	if c.Stats.QueueFull != 1 {
		t.Errorf("QueueFull = %d", c.Stats.QueueFull)
	}
}

// TestFigure9Scenario walks the paper's Figure 9(b): the slice guesses the
// loop runs three times and generates P1..P3 for the problem branch in
// block D; the actual path is A B C F B C D F B G. The branch is skipped in
// iteration 1 (its P1 must be killed by F1), executes in iteration 2
// (matching P2, which F2 then kills), and the loop exit G kills P3.
func TestFigure9Scenario(t *testing.T) {
	s := testSlice()
	branchD := uint64(0x2000)
	c := NewCorrelator(8)
	inst := c.NewInstance(s)

	p1 := c.Allocate(inst, branchD)
	p2 := c.Allocate(inst, branchD)
	p3 := c.Allocate(inst, branchD)
	c.Fill(p1, true)
	c.Fill(p2, false)
	c.Fill(p3, true)

	// Iteration 1: D not fetched; block F kills P1.
	rec1 := c.KillLoop(s)
	if rec1 == nil || len(rec1.Preds) != 1 || rec1.Preds[0] != p1 {
		t.Fatalf("F1 killed %+v", rec1)
	}

	// Iteration 2: D fetched — must match P2, not P1 or P3.
	got, dir, override := c.Lookup(branchD, true, "D2")
	if got != p2 || dir != false || !override {
		t.Fatalf("D2 matched %v dir=%v override=%v, want P2/false/true", got, dir, override)
	}
	// F2 kills the second iteration's prediction.
	rec2 := c.KillLoop(s)
	if rec2 == nil || len(rec2.Preds) != 1 || rec2.Preds[0] != p2 {
		t.Fatalf("F2 killed %+v", rec2)
	}

	// Loop exits: G kills the remainder.
	rec3 := c.KillSlice(s)
	if rec3 == nil || len(rec3.Preds) != 1 || rec3.Preds[0] != p3 {
		t.Fatalf("G killed %+v", rec3)
	}
	if c.PendingFor(branchD) != 0 {
		t.Errorf("pending = %d, want 0", c.PendingFor(branchD))
	}
}

func TestMisSpeculationRecovery(t *testing.T) {
	// A kill performed on the wrong path must be undone so the prediction
	// correlates correctly afterwards (§5.2).
	s := testSlice()
	c := NewCorrelator(8)
	inst := c.NewInstance(s)
	p1 := c.Allocate(inst, 0x2000)
	c.Fill(p1, true)

	rec := c.KillLoop(s) // wrong-path kill
	if rec == nil {
		t.Fatal("kill missed")
	}
	// While killed, lookups skip it.
	if got, _, _ := c.Lookup(0x2000, false, 1); got != nil {
		t.Fatal("killed entry matched")
	}
	c.UndoKill(rec) // squash restores it
	got, dir, override := c.Lookup(0x2000, false, 2)
	if got != p1 || !dir || !override {
		t.Errorf("restored entry not usable: %v %v %v", got, dir, override)
	}
}

func TestUndoUseRestoresEntry(t *testing.T) {
	s := testSlice()
	c := NewCorrelator(8)
	inst := c.NewInstance(s)
	p := c.Allocate(inst, 0x2000)
	c.Fill(p, true)
	c.Lookup(0x2000, false, "wrongpath")
	c.UndoUse(p)
	got, _, override := c.Lookup(0x2000, false, "rightpath")
	if got != p || !override {
		t.Error("entry not reusable after UndoUse")
	}
	if p.Consumer != "rightpath" {
		t.Errorf("consumer = %v", p.Consumer)
	}
}

func TestUndoAllocate(t *testing.T) {
	s := testSlice()
	c := NewCorrelator(8)
	inst := c.NewInstance(s)
	p := c.Allocate(inst, 0x2000)
	c.UndoAllocate(p)
	if c.QueueLen(0x2000) != 0 {
		t.Error("entry survived UndoAllocate")
	}
	// Fill of a removed entry is harmless.
	if r := c.Fill(p, true); r.LateMismatch {
		t.Error("removed entry produced a fill result")
	}
}

func TestLatePredictionFlow(t *testing.T) {
	s := testSlice()
	c := NewCorrelator(8)
	inst := c.NewInstance(s)
	p := c.Allocate(inst, 0x2000)

	// Branch fetched before the PGI executed: falls back, entry → Late.
	got, dir, override := c.Lookup(0x2000, true, "consumerX")
	if got != p || !dir || override {
		t.Fatalf("late lookup = %v,%v,%v", got, dir, override)
	}
	if p.State() != PredLate {
		t.Fatalf("state = %v", p.State())
	}

	// PGI executes agreeing with the fallback: no redirect.
	r := c.Fill(p, true)
	if r.LateMismatch {
		t.Error("agreeing late fill reported mismatch")
	}
}

func TestLatePredictionEarlyResolution(t *testing.T) {
	s := testSlice()
	c := NewCorrelator(8)
	inst := c.NewInstance(s)
	p := c.Allocate(inst, 0x2000)
	c.Lookup(0x2000, true, "consumerY") // fetched taken

	r := c.Fill(p, false) // slice says not-taken
	if !r.LateMismatch || r.Consumer != "consumerY" {
		t.Fatalf("fill = %+v", r)
	}
	// The CPU redirects and records the flipped direction.
	c.RedirectUse(p, false)
	if p.UsedDir {
		t.Error("redirect not recorded")
	}
	if c.Stats.LateMismatch != 1 {
		t.Errorf("LateMismatch = %d", c.Stats.LateMismatch)
	}
}

func TestKillEmptyEntry(t *testing.T) {
	// "Kills behave the same whether the entry is Empty or Full" (§5.3).
	s := testSlice()
	c := NewCorrelator(8)
	inst := c.NewInstance(s)
	p := c.Allocate(inst, 0x2000)
	rec := c.KillLoop(s)
	if rec == nil || len(rec.Preds) != 1 || rec.Preds[0] != p {
		t.Fatalf("empty entry not killed: %+v", rec)
	}
}

func TestKillSkipFirst(t *testing.T) {
	s := testSlice()
	s.LoopKillSkipFirst = true
	c := NewCorrelator(8)
	inst := c.NewInstance(s)
	p := c.Allocate(inst, 0x2000)
	c.Fill(p, true)

	// First loop-kill per fork is exempt (back-edge-target kill block).
	rec1 := c.KillLoop(s)
	if rec1 == nil || len(rec1.Preds) != 0 || rec1.skipInst == nil {
		t.Fatalf("first kill = %+v", rec1)
	}
	if got, _, _ := c.Lookup(0x2000, false, 1); got != p {
		t.Fatal("prediction lost to an exempt kill")
	}
	c.UndoUse(p)

	// Second kill fires.
	rec2 := c.KillLoop(s)
	if rec2 == nil || len(rec2.Preds) != 1 {
		t.Fatalf("second kill = %+v", rec2)
	}

	// Undoing the first (exempt) kill restores the exemption.
	c.UndoKill(rec1)
	rec3 := c.KillLoop(s)
	if rec3 == nil || rec3.skipInst == nil {
		t.Error("exemption not restored by undo")
	}
}

func TestCommitKillFreesSpace(t *testing.T) {
	s := testSlice()
	c := NewCorrelator(1)
	inst := c.NewInstance(s)
	c.Allocate(inst, 0x2000)
	rec := c.KillLoop(s)
	if c.QueueLen(0x2000) != 1 {
		t.Fatal("killed entry deallocated before killer retired")
	}
	c.CommitKill(rec)
	if c.QueueLen(0x2000) != 0 {
		t.Fatal("commit did not free the entry")
	}
	if c.Allocate(inst, 0x2000) == nil {
		t.Error("space not reusable after commit")
	}
}

func TestSliceKillFinishesAllLiveInstances(t *testing.T) {
	// A slice kill ends the covered region for every live instance: all
	// of them were forked before it in fetch order, so all are stale or
	// current. This is what re-aligns the correlator after squash/replay
	// churn leaves a backlog.
	s := testSlice()
	c := NewCorrelator(8)
	i1 := c.NewInstance(s)
	i2 := c.NewInstance(s)
	p1 := c.Allocate(i1, 0x2000)
	p2 := c.Allocate(i2, 0x2000)

	rec := c.KillSlice(s)
	if len(rec.Preds) != 2 || !p1.Killed || !p2.Killed {
		t.Fatalf("slice kill hit %d entries, want both instances'", len(rec.Preds))
	}
	// A second slice kill has nothing left to target.
	if rec2 := c.KillSlice(s); rec2 != nil {
		t.Fatalf("second slice kill = %+v, want nil", rec2)
	}
	// Undo restores both instances and their entries.
	c.UndoKill(rec)
	if p1.Killed || p2.Killed {
		t.Error("undo did not restore entries")
	}
	if c.LiveInstances(s) != 2 {
		t.Errorf("live = %d after undo", c.LiveInstances(s))
	}
}

func TestSliceKillSkipFirst(t *testing.T) {
	// A slice hoisted one outer iteration ahead survives the first slice
	// kill it sees (its predictions are for the *next* iteration).
	s := testSlice()
	s.SliceKillSkipFirst = true
	c := NewCorrelator(8)
	i1 := c.NewInstance(s)
	c.Allocate(i1, 0x2000)
	rec := c.KillSlice(s)
	if rec == nil || len(rec.Preds) != 0 || len(rec.skipSliceInsts) != 1 {
		t.Fatalf("first kill = %+v, want a consumed exemption", rec)
	}
	// The second kill retires it; a younger instance keeps its exemption.
	i2 := c.NewInstance(s)
	c.Allocate(i2, 0x2000)
	rec2 := c.KillSlice(s)
	if len(rec2.finishedInsts) != 1 || rec2.finishedInsts[0] != i1 {
		t.Fatalf("second kill finished %+v, want i1 only", rec2.finishedInsts)
	}
	if len(rec2.skipSliceInsts) != 1 || rec2.skipSliceInsts[0] != i2 {
		t.Fatalf("second kill did not consume i2's exemption")
	}
	// Undoing restores both the finish and the exemptions.
	c.UndoKill(rec2)
	if i1.Done() || i2.skipSliceKill != 1 {
		t.Error("undo did not restore slice-kill state")
	}
}

func TestLookupRestrictedToOldestLiveInstance(t *testing.T) {
	// Predictions from a younger instance belong to a future iteration
	// and must not match the current one, even when the older instance
	// never allocated an entry for this branch.
	s := testSlice()
	c := NewCorrelator(8)
	i1 := c.NewInstance(s)
	i2 := c.NewInstance(s)
	p2 := c.Allocate(i2, 0x2000)
	c.Fill(p2, true)
	if got, _, override := c.Lookup(0x2000, false, 1); got != nil || override {
		t.Fatalf("younger instance's entry matched: %v", got)
	}
	// Retiring i1 makes i2 current.
	rec := c.KillSlice(s) // finishes both (kill-all) — use loop kill semantics instead
	c.UndoKill(rec)
	i1.finished = true // simulate i1 retiring alone
	got, dir, override := c.Lookup(0x2000, false, 2)
	if got != p2 || !dir || !override {
		t.Fatalf("current instance's entry did not match: %v %v %v", got, dir, override)
	}
}

func TestLoopKillTargetsOldestLiveInstance(t *testing.T) {
	// Allocations from concurrent helpers interleave in the queue; the
	// loop kill must hit the oldest live instance's entry regardless.
	s := testSlice()
	c := NewCorrelator(8)
	i1 := c.NewInstance(s)
	i2 := c.NewInstance(s)
	p2 := c.Allocate(i2, 0x2000) // younger instance allocates first
	p1 := c.Allocate(i1, 0x2000)
	rec := c.KillLoop(s)
	if len(rec.Preds) != 1 || rec.Preds[0] != p1 {
		t.Fatalf("loop kill hit %+v, want the oldest live instance's entry", rec.Preds)
	}
	if p2.Killed {
		t.Error("younger instance's entry killed")
	}
}

func TestRemoveInstance(t *testing.T) {
	s := testSlice()
	c := NewCorrelator(8)
	inst := c.NewInstance(s)
	c.Allocate(inst, 0x2000)
	c.Allocate(inst, 0x2000)
	c.RemoveInstance(inst)
	if c.QueueLen(0x2000) != 0 {
		t.Error("entries survived instance removal")
	}
	// Removing twice is harmless; allocating afterwards fails.
	c.RemoveInstance(inst)
	if c.Allocate(inst, 0x2000) != nil {
		t.Error("allocation on removed instance succeeded")
	}
	// Kills against a slice with no live instances report no target.
	if rec := c.KillLoop(s); rec != nil {
		t.Errorf("kill with no instance = %+v", rec)
	}
	if c.Stats.KillNoTarget == 0 {
		t.Error("KillNoTarget not counted")
	}
}

func TestMultiBranchLoopKill(t *testing.T) {
	// A slice covering two problem branches kills one prediction in each
	// queue per iteration.
	s := testSlice()
	s.PGIs = []PGI{
		{SlicePC: 0x100010, BranchPC: 0x2000},
		{SlicePC: 0x100014, BranchPC: 0x2020},
	}
	c := NewCorrelator(8)
	inst := c.NewInstance(s)
	a1 := c.Allocate(inst, 0x2000)
	b1 := c.Allocate(inst, 0x2020)
	a2 := c.Allocate(inst, 0x2000)
	rec := c.KillLoop(s)
	if len(rec.Preds) != 2 {
		t.Fatalf("loop kill hit %d entries", len(rec.Preds))
	}
	if !a1.Killed || !b1.Killed || a2.Killed {
		t.Error("wrong entries killed")
	}
}
