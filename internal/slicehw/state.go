package slicehw

// Checkpointable correlator state. The correlator is a graph of pointers
// (queues → preds → instances → slices), so the checkpoint flattens it:
// predictions become a flat list, and instances, per-branch queues, and the
// per-slice live lists reference predictions and instances by index. Slices
// themselves are static configuration and are referenced by Slice.Index,
// resolved against the workload's slice table at restore.
//
// State may only be taken at a quiesced point: no in-flight CPU
// instructions may hold correlator handles. Concretely, every Pred.Consumer
// must be nil (consuming branches retired or squashed) — a non-nil consumer
// is a *DynInst of a drained pipeline and cannot be serialized. Pending
// KillRecords need no representation: kills commit at retire or are undone
// at squash, both of which have happened by the time the pipeline is
// drained.
//
// Entries marked removed are physically gone from their queues and
// behaviorally inert, so the checkpoint omits them (preserving relative
// order of the survivors). Empty queues are likewise omitted: a nil queue
// and an empty queue answer every correlator operation identically.

import (
	"fmt"
	"sort"
)

// PredSnap is one serialized prediction entry. Inst indexes CorrState.Insts.
type PredSnap struct {
	BranchPC uint64
	Filled   bool
	Dir      bool
	Used     bool
	UsedDir  bool
	Killed   bool
	Inst     int
}

// InstSnap is one serialized slice activation. Slice is the Slice.Index;
// Entries index CorrState.Preds in allocation order.
type InstSnap struct {
	ID            uint64
	Slice         int
	SkipLoopKill  int
	SkipSliceKill int
	Finished      bool
	Entries       []int
}

// QueueSnap is one per-branch queue; Entries index CorrState.Preds in queue
// order.
type QueueSnap struct {
	BranchPC uint64
	Entries  []int
}

// LiveSnap is the ordered live-instance list for one slice; Insts index
// CorrState.Insts, oldest fork first (the order oldestLive depends on).
type LiveSnap struct {
	Slice int
	Insts []int
}

// CorrState is the flattened correlator.
type CorrState struct {
	NextID uint64
	Preds  []PredSnap
	Insts  []InstSnap
	Queues []QueueSnap
	Live   []LiveSnap
}

// State flattens the correlator deterministically (live lists sorted by
// slice index, queues by branch PC — map iteration order must not leak
// into the serialized bytes). It fails if any prediction still names a
// consumer — the caller has not drained the pipeline.
func (c *Correlator) State() (*CorrState, error) {
	st := &CorrState{NextID: c.nextID}

	sortedSlices := make([]*Slice, 0, len(c.liveBySlice))
	for s := range c.liveBySlice {
		sortedSlices = append(sortedSlices, s)
	}
	sort.Slice(sortedSlices, func(i, j int) bool { return sortedSlices[i].Index < sortedSlices[j].Index })

	// Index live instances. Every surviving prediction's instance is live:
	// RemoveInstance removes its entries, and CommitKill removes an
	// instance's entries before dropping it from the live list.
	instIdx := make(map[*Instance]int)
	for _, s := range sortedSlices {
		for _, inst := range c.liveBySlice[s] {
			if _, dup := instIdx[inst]; !dup {
				instIdx[inst] = len(st.Insts)
				st.Insts = append(st.Insts, InstSnap{
					ID:            inst.ID,
					Slice:         inst.Slice.Index,
					SkipLoopKill:  inst.skipLoopKill,
					SkipSliceKill: inst.skipSliceKill,
					Finished:      inst.finished,
				})
			}
		}
	}

	sortedQueues := make([]*queue, 0, len(c.queues))
	for _, q := range c.queues {
		if len(q.entries) > 0 {
			sortedQueues = append(sortedQueues, q)
		}
	}
	sort.Slice(sortedQueues, func(i, j int) bool { return sortedQueues[i].branchPC < sortedQueues[j].branchPC })

	// Flatten predictions queue by queue, in queue order.
	predIdx := make(map[*Pred]int)
	for _, q := range sortedQueues {
		qs := QueueSnap{BranchPC: q.branchPC}
		for _, p := range q.entries {
			if p.Consumer != nil {
				return nil, fmt.Errorf("slicehw: prediction for %#x still has a consumer; correlator not quiesced", p.BranchPC)
			}
			ii, ok := instIdx[p.inst]
			if !ok {
				return nil, fmt.Errorf("slicehw: prediction for %#x belongs to a non-live instance", p.BranchPC)
			}
			predIdx[p] = len(st.Preds)
			st.Preds = append(st.Preds, PredSnap{
				BranchPC: p.BranchPC,
				Filled:   p.Filled,
				Dir:      p.Dir,
				Used:     p.Used,
				UsedDir:  p.UsedDir,
				Killed:   p.Killed,
				Inst:     ii,
			})
			qs.Entries = append(qs.Entries, predIdx[p])
		}
		st.Queues = append(st.Queues, qs)
	}

	// Wire instance entry lists (allocation order, removed entries omitted).
	for _, s := range sortedSlices {
		for _, inst := range c.liveBySlice[s] {
			ii := instIdx[inst]
			if len(st.Insts[ii].Entries) > 0 {
				continue // shared instance already wired
			}
			for _, p := range inst.entries {
				if p.removed {
					continue
				}
				pi, ok := predIdx[p]
				if !ok {
					return nil, fmt.Errorf("slicehw: instance %d holds an entry missing from its queue", inst.ID)
				}
				st.Insts[ii].Entries = append(st.Insts[ii].Entries, pi)
			}
		}
	}

	// Live lists in oldest-first order, keyed by slice index.
	for _, s := range sortedSlices {
		live := c.liveBySlice[s]
		if len(live) == 0 {
			continue
		}
		ls := LiveSnap{Slice: s.Index}
		for _, inst := range live {
			ls.Insts = append(ls.Insts, instIdx[inst])
		}
		st.Live = append(st.Live, ls)
	}
	return st, nil
}

// SetState rebuilds the correlator from a flattened checkpoint, resolving
// slice indices against table. The correlator must be freshly built (same
// maxPerBranch as at capture; the harness guarantees this via the warm
// config fingerprint).
func (c *Correlator) SetState(st *CorrState, table *Table) error {
	if st == nil {
		return nil
	}
	slices := table.Slices()

	insts := make([]*Instance, len(st.Insts))
	for i, is := range st.Insts {
		if is.Slice < 0 || is.Slice >= len(slices) {
			return fmt.Errorf("slicehw: checkpoint references slice %d of %d", is.Slice, len(slices))
		}
		insts[i] = &Instance{
			ID:            is.ID,
			Slice:         slices[is.Slice],
			skipLoopKill:  is.SkipLoopKill,
			skipSliceKill: is.SkipSliceKill,
			finished:      is.Finished,
		}
	}

	preds := make([]*Pred, len(st.Preds))
	for i, ps := range st.Preds {
		if ps.Inst < 0 || ps.Inst >= len(insts) {
			return fmt.Errorf("slicehw: checkpoint prediction references instance %d of %d", ps.Inst, len(insts))
		}
		preds[i] = &Pred{
			BranchPC: ps.BranchPC,
			Filled:   ps.Filled,
			Dir:      ps.Dir,
			Used:     ps.Used,
			UsedDir:  ps.UsedDir,
			Killed:   ps.Killed,
			inst:     insts[ps.Inst],
		}
	}

	c.nextID = st.NextID
	c.queues = make(map[uint64]*queue, len(st.Queues))
	for _, qs := range st.Queues {
		q := &queue{branchPC: qs.BranchPC}
		for _, pi := range qs.Entries {
			if pi < 0 || pi >= len(preds) {
				return fmt.Errorf("slicehw: checkpoint queue references prediction %d of %d", pi, len(preds))
			}
			q.entries = append(q.entries, preds[pi])
		}
		c.queues[qs.BranchPC] = q
	}
	for ii, is := range st.Insts {
		for _, pi := range is.Entries {
			if pi < 0 || pi >= len(preds) {
				return fmt.Errorf("slicehw: checkpoint instance references prediction %d of %d", pi, len(preds))
			}
			insts[ii].entries = append(insts[ii].entries, preds[pi])
		}
	}
	c.liveBySlice = make(map[*Slice][]*Instance, len(st.Live))
	for _, ls := range st.Live {
		if ls.Slice < 0 || ls.Slice >= len(slices) {
			return fmt.Errorf("slicehw: checkpoint live list references slice %d of %d", ls.Slice, len(slices))
		}
		var live []*Instance
		for _, ii := range ls.Insts {
			if ii < 0 || ii >= len(insts) {
				return fmt.Errorf("slicehw: checkpoint live list references instance %d of %d", ii, len(insts))
			}
			live = append(live, insts[ii])
		}
		c.liveBySlice[slices[ls.Slice]] = live
	}
	return nil
}
