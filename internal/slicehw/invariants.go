package slicehw

import "fmt"

// CheckInvariants validates the correlator's structural invariants — the
// properties every mutation (allocate, fill, lookup, kill, and their
// squash undos) must preserve. It is called from the oracle's per-N-cycle
// sweep, never from the cycle loop, so clarity beats speed here.
//
// Checked:
//   - queue shape: every queue holds at most maxPerBranch entries, each
//     keyed by the queue's branch PC and not removed;
//   - binding liveness: a Consumer handle implies the entry is Used (a
//     handle on an unused entry is a leaked binding that would resurrect
//     a pooled instruction);
//   - instance liveness: every queued entry belongs to a non-removed
//     instance still tracked in liveBySlice (RemoveInstance must purge
//     the queues);
//   - live-list consistency: liveBySlice holds only non-removed instances
//     of the keyed slice, and every entry of a live instance points back
//     at it.
func (c *Correlator) CheckInvariants() error {
	for pc, q := range c.queues {
		if q.branchPC != pc {
			return fmt.Errorf("slicehw: queue keyed %#x claims branch %#x", pc, q.branchPC)
		}
		if len(q.entries) > c.maxPerBranch {
			return fmt.Errorf("slicehw: queue %#x holds %d entries, max %d", pc, len(q.entries), c.maxPerBranch)
		}
		for i, e := range q.entries {
			if e == nil {
				return fmt.Errorf("slicehw: queue %#x entry %d is nil", pc, i)
			}
			if e.removed {
				return fmt.Errorf("slicehw: queue %#x entry %d is removed but still queued", pc, i)
			}
			if e.BranchPC != pc {
				return fmt.Errorf("slicehw: queue %#x entry %d keyed for branch %#x", pc, i, e.BranchPC)
			}
			if e.Consumer != nil && !e.Used {
				return fmt.Errorf("slicehw: queue %#x entry %d has a consumer bound but is not Used", pc, i)
			}
			if e.inst == nil {
				return fmt.Errorf("slicehw: queue %#x entry %d has no instance", pc, i)
			}
			if e.inst.removed {
				return fmt.Errorf("slicehw: queue %#x entry %d belongs to removed instance %d", pc, i, e.inst.ID)
			}
			tracked := false
			for _, li := range c.liveBySlice[e.inst.Slice] {
				if li == e.inst {
					tracked = true
					break
				}
			}
			if !tracked {
				return fmt.Errorf("slicehw: queue %#x entry %d belongs to untracked instance %d", pc, i, e.inst.ID)
			}
		}
	}
	for s, live := range c.liveBySlice {
		for _, inst := range live {
			if inst.removed {
				return fmt.Errorf("slicehw: removed instance %d still in the live list of slice %d", inst.ID, s.Index)
			}
			if inst.Slice != s {
				return fmt.Errorf("slicehw: instance %d listed under slice %d but belongs to slice %d",
					inst.ID, s.Index, inst.Slice.Index)
			}
			for j, p := range inst.entries {
				if p.inst != inst {
					return fmt.Errorf("slicehw: instance %d entry %d points at instance %d", inst.ID, j, p.inst.ID)
				}
			}
		}
	}
	return nil
}

// ForEachLivePred calls f for every non-removed queued prediction entry.
// The CPU-side invariant checker uses it to validate that each bound
// Consumer handle refers to a live in-flight instruction.
func (c *Correlator) ForEachLivePred(f func(*Pred)) {
	for _, q := range c.queues {
		for _, e := range q.entries {
			if !e.removed {
				f(e)
			}
		}
	}
}
