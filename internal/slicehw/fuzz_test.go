package slicehw

import (
	"math/rand"
	"testing"
)

// TestFuzzCorrelatorInvariants drives the correlator with random but
// legally-shaped operation sequences — allocations, fills, lookups, kills,
// and undo of any of them in reverse order — and checks the structural
// invariants the CPU relies on.
func TestFuzzCorrelatorInvariants(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		runCorrelatorInvariants(t, seed)
	}
}

// FuzzCorrelatorInvariants is the native-fuzzing entry for the same
// driver: the corpus is the PRNG seed, so `go test -fuzz` explores
// operation sequences beyond the fixed test seeds.
func FuzzCorrelatorInvariants(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) { runCorrelatorInvariants(t, seed) })
}

func runCorrelatorInvariants(t testing.TB, seed int64) {
	const branchA, branchB = 0x2000, 0x2020
	rng := rand.New(rand.NewSource(seed))
	s := &Slice{
		Name:    "fuzz",
		ForkPC:  0x1000,
		SlicePC: 0x100000,
		PGIs: []PGI{
			{SlicePC: 0x100010, BranchPC: branchA},
			{SlicePC: 0x100014, BranchPC: branchB},
		},
		LoopKillPC:  0x3000,
		SliceKillPC: 0x3004,
	}
	c := NewCorrelator(8)

	type undoable struct {
		kind string
		pred *Pred
		rec  *KillRecord
		inst *Instance
	}
	var stack []undoable
	var live []*Instance

	for op := 0; op < 400; op++ {
		switch rng.Intn(10) {
		case 0, 1: // fork
			inst := c.NewInstance(s)
			live = append(live, inst)
			stack = append(stack, undoable{kind: "fork", inst: inst})
		case 2, 3: // allocate
			if len(live) == 0 {
				continue
			}
			inst := live[rng.Intn(len(live))]
			bpc := uint64(branchA)
			if rng.Intn(2) == 0 {
				bpc = branchB
			}
			if p := c.Allocate(inst, bpc); p != nil {
				stack = append(stack, undoable{kind: "alloc", pred: p})
			}
		case 4: // fill a random entry
			if len(live) == 0 {
				continue
			}
			inst := live[rng.Intn(len(live))]
			if es := inst.Entries(); len(es) > 0 {
				c.Fill(es[rng.Intn(len(es))], rng.Intn(2) == 0)
			}
		case 5, 6: // lookup
			bpc := uint64(branchA)
			if rng.Intn(2) == 0 {
				bpc = branchB
			}
			p, _, override := c.Lookup(bpc, rng.Intn(2) == 0, op)
			if p != nil {
				if p.Killed {
					t.Fatalf("seed %d: matched a killed entry", seed)
				}
				if override && !p.Filled {
					t.Fatalf("seed %d: override from an unfilled entry", seed)
				}
				stack = append(stack, undoable{kind: "use", pred: p})
			}
		case 7: // loop kill
			if rec := c.KillLoop(s); rec != nil {
				stack = append(stack, undoable{kind: "kill", rec: rec})
			}
		case 8: // slice kill
			if rec := c.KillSlice(s); rec != nil {
				stack = append(stack, undoable{kind: "kill", rec: rec})
			}
		case 9: // squash: undo a random suffix of the action stack
			if len(stack) == 0 {
				continue
			}
			n := 1 + rng.Intn(len(stack))
			for i := 0; i < n; i++ {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				switch u.kind {
				case "fork":
					c.RemoveInstance(u.inst)
					for k, li := range live {
						if li == u.inst {
							live = append(live[:k], live[k+1:]...)
							break
						}
					}
				case "alloc":
					c.UndoAllocate(u.pred)
				case "use":
					c.UndoUse(u.pred)
				case "kill":
					c.UndoKill(u.rec)
				}
			}
		}

		// Invariants after every operation.
		for _, bpc := range []uint64{branchA, branchB} {
			if n := c.QueueLen(bpc); n > 8 {
				t.Fatalf("seed %d: queue %#x overflows: %d", seed, bpc, n)
			}
			if c.PendingFor(bpc) > c.QueueLen(bpc) {
				t.Fatal("pending exceeds queue length")
			}
		}
	}

	// Drain: kill everything, commit, and the queues must empty.
	for c.KillSlice(s) != nil {
	}
	// Commit by removing all live instances (the CPU would CommitKill;
	// RemoveInstance is the stronger cleanup used on squash).
	for _, inst := range live {
		c.RemoveInstance(inst)
	}
	if c.PendingFor(branchA) != 0 || c.PendingFor(branchB) != 0 {
		t.Fatalf("seed %d: pending entries after teardown", seed)
	}
}
