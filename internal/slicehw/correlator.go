package slicehw

// This file implements the prediction correlator of §5 (Figure 10). Each
// problem branch owns a queue of prediction entries. Entries are allocated
// when a PGI is fetched (Empty), filled when it executes (Full), matched to
// main-thread branch instances at fetch, and deallocated only by kills —
// main-thread instructions whose fetch proves the intended branch instance
// can no longer be reached. Every mutation returns an undo handle the CPU
// attaches to the acting instruction so a squash restores the correlator
// exactly (§5.2), and a prediction arriving after its branch was fetched is
// handled as a late prediction with optional early resolution (§5.3).

import "repro/internal/stats"

// PredState is the lifecycle state of Figure 10's per-prediction "state".
type PredState uint8

// Prediction states.
const (
	PredEmpty PredState = iota // allocated at PGI fetch, value pending
	PredFull                   // value computed, unconsumed
	PredLate                   // consumed while Empty; value still pending
)

// Pred is one prediction entry.
type Pred struct {
	BranchPC uint64
	// Filled/Dir: the computed prediction once the PGI executes.
	Filled bool
	Dir    bool
	// Used/UsedDir: set when a fetched branch instance matched this
	// entry; UsedDir is the direction that instance actually fetched
	// with (the slice's direction when Full, the conventional
	// predictor's when Empty/Late).
	Used    bool
	UsedDir bool
	// Consumer is CPU-owned context for the matched branch (the VN# field
	// of Figure 10; the CPU stores its dynamic instruction handle here).
	Consumer any
	// Killed marks the entry dead pending the killer's retirement.
	Killed bool

	inst    *Instance
	removed bool
}

// Instance returns the slice activation that generated this prediction.
func (p *Pred) Instance() *Instance { return p.inst }

// IndexInInstance returns this prediction's allocation position within its
// instance (debugging).
func (p *Pred) IndexInInstance() int {
	for i, e := range p.inst.entries {
		if e == p {
			return i
		}
	}
	return -1
}

// Entries returns the instance's predictions in allocation order
// (debugging).
func (i *Instance) Entries() []*Pred { return i.entries }

// State derives the Figure 10 state field.
func (p *Pred) State() PredState {
	switch {
	case p.Used && !p.Filled:
		return PredLate
	case p.Filled:
		return PredFull
	default:
		return PredEmpty
	}
}

// Instance is one dynamic activation of a slice (one fork).
type Instance struct {
	ID    uint64
	Slice *Slice
	// skipLoopKill counts pending first-instance loop-kill exemptions.
	skipLoopKill int
	// skipSliceKill counts pending slice-kill exemptions (slices hoisted
	// one outer iteration ahead survive the first slice kill they see).
	skipSliceKill int
	entries       []*Pred
	finished      bool
	removed       bool

	// Debug is CPU-owned context (e.g. fork-time live-in values) used by
	// debugging hooks; the correlator never touches it.
	Debug any
}

// Done reports whether the instance can no longer contribute predictions
// (its slice kill fired, or its fork was squashed). A helper thread whose
// instance is done terminates at its next PGI: predictions allocated after
// the slice kill would mis-align the queue against future instances.
func (i *Instance) Done() bool { return i == nil || i.finished || i.removed }

type queue struct {
	branchPC uint64
	entries  []*Pred
}

// CorrStats counts correlator events for Table 4. The definition lives in
// the telemetry package so stats.Snapshot can embed it; the alias keeps
// the established name.
type CorrStats = stats.CorrStats

// Correlator is the branch-queue array of Figure 10.
type Correlator struct {
	queues       map[uint64]*queue
	maxPerBranch int
	liveBySlice  map[*Slice][]*Instance
	nextID       uint64

	// Tracer, when non-nil, receives one typed event per correlator
	// mutation. The correlator has no clock: events leave with Cycle 0 and
	// the CPU wraps the tracer to stamp the current cycle.
	Tracer stats.Tracer

	Stats CorrStats
}

func (c *Correlator) emit(e stats.Event) {
	if c.Tracer != nil {
		c.Tracer.Emit(e)
	}
}

func dirString(taken bool) string {
	if taken {
		return "taken"
	}
	return "not-taken"
}

// NewCorrelator builds a correlator allowing maxPerBranch in-flight
// predictions per problem branch (8 in Figure 10).
func NewCorrelator(maxPerBranch int) *Correlator {
	return &Correlator{
		queues:       make(map[uint64]*queue),
		maxPerBranch: maxPerBranch,
		liveBySlice:  make(map[*Slice][]*Instance),
	}
}

func (c *Correlator) queueFor(branchPC uint64) *queue {
	q := c.queues[branchPC]
	if q == nil {
		q = &queue{branchPC: branchPC}
		c.queues[branchPC] = q
	}
	return q
}

// NewInstance registers a fork of s and returns its instance handle.
func (c *Correlator) NewInstance(s *Slice) *Instance {
	c.nextID++
	inst := &Instance{ID: c.nextID, Slice: s}
	if s.LoopKillSkipFirst {
		inst.skipLoopKill = 1
	}
	if s.SliceKillSkipFirst {
		inst.skipSliceKill = 1
	}
	c.liveBySlice[s] = append(c.liveBySlice[s], inst)
	c.emit(stats.Event{Kind: stats.EvInstance, Slice: s.Index, Inst: int(inst.ID)})
	return inst
}

// RemoveInstance tears an instance down (fork squashed or helper thread
// reclaimed after its predictions were all killed). All its entries leave
// their queues immediately.
func (c *Correlator) RemoveInstance(inst *Instance) {
	if inst == nil || inst.removed {
		return
	}
	inst.removed = true
	c.Stats.InstanceDrops++
	c.emit(stats.Event{Kind: stats.EvInstanceDrop, Slice: inst.Slice.Index, Inst: int(inst.ID)})
	for _, p := range inst.entries {
		c.removePred(p)
	}
	live := c.liveBySlice[inst.Slice]
	for i, li := range live {
		if li == inst {
			c.liveBySlice[inst.Slice] = append(live[:i:i], live[i+1:]...)
			break
		}
	}
}

func (c *Correlator) removePred(p *Pred) {
	if p.removed {
		return
	}
	p.removed = true
	q := c.queues[p.BranchPC]
	if q == nil {
		return
	}
	for i, e := range q.entries {
		if e == p {
			q.entries = append(q.entries[:i:i], q.entries[i+1:]...)
			return
		}
	}
}

// CanAllocate reports whether branchPC's queue has room. The CPU stalls a
// helper thread's fetch at a PGI whose queue is full instead of dropping
// the prediction — a drop would permanently misalign the queue against
// the branch instances it is meant to cover.
func (c *Correlator) CanAllocate(branchPC uint64) bool {
	q := c.queues[branchPC]
	return q == nil || len(q.entries) < c.maxPerBranch
}

// Allocate creates an Empty entry for branchPC on behalf of inst (PGI
// fetch). It returns nil when the branch queue is full or the instance is
// gone; the prediction is then simply dropped, like a CAM allocation
// failure in hardware.
func (c *Correlator) Allocate(inst *Instance, branchPC uint64) *Pred {
	if inst.Done() {
		return nil
	}
	q := c.queueFor(branchPC)
	if len(q.entries) >= c.maxPerBranch {
		c.Stats.QueueFull++
		return nil
	}
	p := &Pred{BranchPC: branchPC, inst: inst}
	q.entries = append(q.entries, p)
	inst.entries = append(inst.entries, p)
	c.Stats.Generated++
	c.emit(stats.Event{Kind: stats.EvPredAlloc, PC: branchPC, Slice: inst.Slice.Index,
		Inst: int(inst.ID), N: uint64(len(q.entries))})
	return p
}

// UndoAllocate reverses Allocate (the PGI's fetch was squashed).
func (c *Correlator) UndoAllocate(p *Pred) {
	if p == nil {
		return
	}
	c.Stats.UndoneAllocs++
	c.emit(stats.Event{Kind: stats.EvUndoAlloc, PC: p.BranchPC, Slice: p.inst.Slice.Index, Inst: int(p.inst.ID)})
	c.removePred(p)
}

// FillResult reports what a Fill did.
type FillResult struct {
	// Applied reports whether the entry was actually filled (false when
	// the prediction had already been removed, e.g. by a fork squash).
	Applied bool
	// LateMismatch: the entry had already been consumed with the opposite
	// direction; the CPU should redirect the consumer if it is still
	// unresolved (early resolution, §5.3).
	LateMismatch bool
	// Consumer echoes the consuming branch's CPU handle for redirects.
	Consumer any
}

// Fill delivers the PGI's computed direction.
func (c *Correlator) Fill(p *Pred, dir bool) FillResult {
	if p == nil || p.removed {
		return FillResult{}
	}
	p.Filled = true
	p.Dir = dir
	c.Stats.Filled++
	c.emit(stats.Event{Kind: stats.EvPredGenerate, PC: p.BranchPC, Slice: p.inst.Slice.Index,
		Inst: int(p.inst.ID), Dir: dirString(dir)})
	// A kill only stops future matching; an already-consumed entry still
	// names its consumer, and a late value that contradicts the fetched
	// direction can resolve that branch early (§5.3).
	if p.Used && p.UsedDir != dir {
		c.Stats.LateMismatch++
		return FillResult{Applied: true, LateMismatch: true, Consumer: p.Consumer}
	}
	return FillResult{Applied: true}
}

// Lookup matches a fetched main-thread branch at branchPC against the
// queue. fallbackDir is what the conventional predictor says; consumer is
// the CPU's handle for the branch instance.
//
// It returns the matched entry (nil if none), the direction the fetch
// should use, and whether the correlator overrode the conventional
// predictor.
func (c *Correlator) Lookup(branchPC uint64, fallbackDir bool, consumer any) (p *Pred, dir bool, override bool) {
	q := c.queues[branchPC]
	if q == nil {
		return nil, fallbackDir, false
	}
	for _, e := range q.entries {
		if e.Killed || e.Used {
			continue
		}
		// Only the oldest live instance's predictions are current: the
		// slice kills retire exactly one instance per covered iteration,
		// so a younger instance's entries belong to a future iteration.
		// Without this check, an instance that allocated only a prefix of
		// its PGIs before its slice kill fired would leave the remaining
		// queues permanently off by one.
		if e.inst != c.oldestLive(e.inst.Slice) {
			continue
		}
		e.Used = true
		e.Consumer = consumer
		if e.Filled {
			e.UsedDir = e.Dir
			c.Stats.Overrides++
			c.emit(stats.Event{Kind: stats.EvPredBind, PC: branchPC, Slice: e.inst.Slice.Index,
				Inst: int(e.inst.ID), Dir: dirString(e.Dir), Level: "full"})
			c.emit(stats.Event{Kind: stats.EvOverride, PC: branchPC, Slice: e.inst.Slice.Index,
				Inst: int(e.inst.ID), Dir: dirString(e.Dir)})
			return e, e.Dir, true
		}
		// Empty → Late: the branch proceeds with the conventional
		// prediction; the PGI may still resolve it early.
		e.UsedDir = fallbackDir
		c.Stats.LateMatches++
		c.emit(stats.Event{Kind: stats.EvPredBind, PC: branchPC, Slice: e.inst.Slice.Index,
			Inst: int(e.inst.ID), Dir: dirString(fallbackDir), Level: "late"})
		return e, fallbackDir, false
	}
	return nil, fallbackDir, false
}

// UndoUse reverses a Lookup match (the consuming branch was squashed).
func (c *Correlator) UndoUse(p *Pred) {
	if p == nil || p.removed {
		return
	}
	p.Used = false
	p.Consumer = nil
	c.Stats.UndoneUses++
	c.emit(stats.Event{Kind: stats.EvUndoBind, PC: p.BranchPC, Slice: p.inst.Slice.Index, Inst: int(p.inst.ID)})
}

// DropConsumer clears the CPU's handle once the consuming branch has
// retired: the branch resolved on the committed path, so a late fill can
// no longer redirect it, and the CPU is free to recycle the handle. The
// identity check keeps a stale call from clearing a newer binding.
func (c *Correlator) DropConsumer(p *Pred, consumer any) {
	if p == nil || p.Consumer != consumer {
		return
	}
	p.Consumer = nil
}

// RedirectUse updates the used direction after an early resolution flipped
// the consumer's fetch direction.
func (c *Correlator) RedirectUse(p *Pred, dir bool) {
	if p == nil || p.removed {
		return
	}
	p.UsedDir = dir
}

// KillRecord captures everything one kill instruction did, for exact undo.
type KillRecord struct {
	Preds []*Pred // entries this kill marked
	// skipInst is the instance whose first-iteration exemption this kill
	// consumed (nil if none).
	skipInst *Instance
	// skipSliceInsts are instances whose slice-kill exemption this kill
	// consumed.
	skipSliceInsts []*Instance
	// finishedInsts are the instances a slice kill retired (empty for
	// loop kills).
	finishedInsts []*Instance
	slice         *Slice
}

// oldestLive returns the oldest unfinished instance of s.
func (c *Correlator) oldestLive(s *Slice) *Instance {
	for _, inst := range c.liveBySlice[s] {
		if !inst.finished {
			return inst
		}
	}
	return nil
}

// KillLoop performs a loop-iteration kill for slice s: the oldest alive
// entry in each queue the slice covers is marked killed. Returns nil when
// the kill had no effect.
func (c *Correlator) KillLoop(s *Slice) *KillRecord {
	inst := c.oldestLive(s)
	if inst == nil {
		c.Stats.KillNoTarget++
		return nil
	}
	if inst.skipLoopKill > 0 {
		inst.skipLoopKill--
		return &KillRecord{skipInst: inst, slice: s}
	}
	rec := &KillRecord{slice: s}
	for _, bpc := range s.CoveredBranchPCs() {
		q := c.queues[bpc]
		if q == nil {
			continue
		}
		// Kill the oldest live instance's first alive entry. Queue order
		// alone is not enough: allocations from concurrently running
		// helper instances interleave, so the FIFO head may belong to a
		// younger instance whose iteration has not started yet.
		for _, e := range q.entries {
			if !e.Killed && e.inst == inst {
				e.Killed = true
				rec.Preds = append(rec.Preds, e)
				c.Stats.LoopKills++
				c.emit(stats.Event{Kind: stats.EvPredKill, PC: bpc, Slice: inst.Slice.Index,
					Inst: int(inst.ID), Level: "loop"})
				break
			}
		}
	}
	if len(rec.Preds) == 0 && rec.skipInst == nil {
		c.Stats.KillNoTarget++
		return nil
	}
	return rec
}

// KillSlice performs a slice kill: the covered region is over for *every*
// live instance of s — all of them were forked before this kill in fetch
// order — so all are finished and their alive entries killed. Instances
// holding a SliceKillSkipFirst exemption (hoisted one outer iteration
// ahead) are spared once. Finishing every live instance is what lets the
// correlator re-align itself after squash/replay churn leaves a backlog.
func (c *Correlator) KillSlice(s *Slice) *KillRecord {
	rec := &KillRecord{slice: s}
	for _, inst := range c.liveBySlice[s] {
		if inst.finished {
			continue
		}
		if inst.skipSliceKill > 0 {
			inst.skipSliceKill--
			rec.skipSliceInsts = append(rec.skipSliceInsts, inst)
			c.emit(stats.Event{Kind: stats.EvKillSkip, Slice: s.Index, Inst: int(inst.ID), Level: "slice"})
			continue
		}
		inst.finished = true
		rec.finishedInsts = append(rec.finishedInsts, inst)
		c.emit(stats.Event{Kind: stats.EvPredKill, Slice: s.Index, Inst: int(inst.ID),
			Level: "slice", N: uint64(len(inst.entries))})
		for _, e := range inst.entries {
			if !e.Killed && !e.removed {
				e.Killed = true
				rec.Preds = append(rec.Preds, e)
				c.Stats.SliceKills++
			}
		}
	}
	if len(rec.finishedInsts) == 0 && len(rec.skipSliceInsts) == 0 {
		c.Stats.KillNoTarget++
		return nil
	}
	return rec
}

// UndoKill reverses a kill record (the killer was squashed).
func (c *Correlator) UndoKill(rec *KillRecord) {
	if rec == nil {
		return
	}
	for _, p := range rec.Preds {
		p.Killed = false
		c.Stats.UndoneKills++
	}
	if rec.skipInst != nil {
		rec.skipInst.skipLoopKill++
	}
	for _, inst := range rec.skipSliceInsts {
		inst.skipSliceKill++
	}
	for _, inst := range rec.finishedInsts {
		inst.finished = false
		c.emit(stats.Event{Kind: stats.EvUndoKill, Slice: rec.slice.Index, Inst: int(inst.ID), Level: "slice"})
	}
}

// CommitKill physically deallocates killed entries once the killer
// retires (predictions are "not deallocated until the kill instruction
// retires", §5.2).
func (c *Correlator) CommitKill(rec *KillRecord) {
	if rec == nil {
		return
	}
	for _, p := range rec.Preds {
		c.removePred(p)
	}
	for _, inst := range rec.finishedInsts {
		// The instance's bookkeeping can go once its entries are gone.
		live := c.liveBySlice[rec.slice]
		for i, li := range live {
			if li == inst {
				c.liveBySlice[rec.slice] = append(live[:i:i], live[i+1:]...)
				break
			}
		}
	}
}

// LiveList returns the unfinished instances of s, oldest first (debugging).
func (c *Correlator) LiveList(s *Slice) []*Instance {
	var out []*Instance
	for _, inst := range c.liveBySlice[s] {
		if !inst.finished {
			out = append(out, inst)
		}
	}
	return out
}

// LiveInstances reports the unfinished instance count for slice s (tests
// and debugging).
func (c *Correlator) LiveInstances(s *Slice) int {
	n := 0
	for _, inst := range c.liveBySlice[s] {
		if !inst.finished {
			n++
		}
	}
	return n
}

// QueueLen reports the live entry count for a branch (tests).
func (c *Correlator) QueueLen(branchPC uint64) int {
	q := c.queues[branchPC]
	if q == nil {
		return 0
	}
	return len(q.entries)
}

// PendingFor reports how many unkilled, unconsumed predictions branchPC
// has (tests and debugging).
func (c *Correlator) PendingFor(branchPC uint64) int {
	q := c.queues[branchPC]
	if q == nil {
		return 0
	}
	n := 0
	for _, e := range q.entries {
		if !e.Killed && !e.Used {
			n++
		}
	}
	return n
}
