// Package slicehw implements the paper's hardware extensions for
// speculative slices (§4 and §5): the slice table that detects fork points
// at fetch, the PGI table that marks prediction-generating instructions,
// and the prediction correlator that binds slice-generated branch
// predictions to the right dynamic branch instances by killing predictions
// when the main thread's path shows they can no longer be used.
//
// The package holds passive hardware structures; the CPU core drives them
// from its fetch, complete, retire, and squash stages, and records undo
// handles on each in-flight instruction so that every correlator action a
// squashed instruction performed can be rolled back exactly (the paper's
// mis-speculation recovery via Von Neumann numbers, §5.2).
package slicehw

import (
	"fmt"

	"repro/internal/isa"
)

// PGI describes one prediction-generating instruction in a slice: the
// instruction at SlicePC computes the outcome of the problem branch at
// BranchPC in the main thread. The computed value maps to a direction via
// TakenIfZero (slices arrange their compare so one polarity fits).
type PGI struct {
	SlicePC     uint64
	BranchPC    uint64
	TakenIfZero bool
}

// Slice is one speculative slice: its fork point, code location, live-in
// registers, termination bound, PGIs, and the kill PCs used for prediction
// correlation. Slices are constructed by hand per workload, as in the
// paper (§3.2); the fields mirror the slice-table entry of Figure 6.
type Slice struct {
	Name  string
	Index int

	// ForkPC is the main-thread PC whose fetch forks the slice (the
	// fork-PC CAM of Figure 6a).
	ForkPC uint64
	// SlicePC is the helper thread's starting PC; slice instructions are
	// ordinary instructions in the instruction image.
	SlicePC uint64
	// LiveIns are the registers copied from the main thread at fork.
	// Rarely more than 4 (§3.2).
	LiveIns []isa.Reg
	// MaxLoops bounds back-edge executions; 0 means the slice has no
	// loop. Derived from a profile of the loop's iteration upper bound.
	MaxLoops int
	// LoopBackPC is the slice's back-edge branch, counted against
	// MaxLoops at fetch.
	LoopBackPC uint64

	PGIs []PGI

	// LoopKillPC is the main-thread instruction that kills one
	// iteration's predictions (a loop-iteration kill); SliceKillPC kills
	// everything the oldest live instance generated (a slice kill).
	// Either may be zero when unused.
	LoopKillPC  uint64
	SliceKillPC uint64
	// LoopKillSkipFirst marks kill blocks that are the target of the loop
	// back-edge: their first execution per fork precedes the first
	// problem-branch instance and must not kill (§5.1).
	LoopKillSkipFirst bool
	// SliceKillSkipFirst marks slices hoisted a full outer iteration
	// ahead (they cover iteration i+1 from a fork in iteration i): the
	// slice kill at the end of iteration i must spare them once.
	SliceKillSkipFirst bool

	// CoveredLoadPCs lists the problem loads this slice prefetches
	// (metadata for Tables 3 and 4).
	CoveredLoadPCs []uint64

	// StaticSize and LoopSize describe the slice body for Table 3
	// (instructions total, and inside the loop).
	StaticSize int
	LoopSize   int
}

// CoveredBranchPCs returns the distinct problem branches this slice
// predicts, in PGI order.
func (s *Slice) CoveredBranchPCs() []uint64 {
	var out []uint64
	seen := make(map[uint64]bool)
	for _, p := range s.PGIs {
		if !seen[p.BranchPC] {
			seen[p.BranchPC] = true
			out = append(out, p.BranchPC)
		}
	}
	return out
}

// KillCount returns how many kill PCs the slice uses (Table 3's "kills").
func (s *Slice) KillCount() int {
	n := 0
	if s.LoopKillPC != 0 {
		n++
	}
	if s.SliceKillPC != 0 {
		n++
	}
	return n
}

// Table is the front-end slice/PGI table (Figure 6). It answers, for a
// fetched PC, whether it forks a slice, kills predictions, or generates a
// prediction — all in O(1).
type Table struct {
	slices      []*Slice
	forkAt      map[uint64][]*Slice
	loopKillAt  map[uint64][]*Slice
	sliceKillAt map[uint64][]*Slice
	pgiAt       map[uint64]PGIRef
}

// PGIRef resolves a slice-code PC to its PGI-table entry.
type PGIRef struct {
	Slice *Slice
	PGI   *PGI
}

// NewTable builds the lookup structures, validating slice metadata.
func NewTable(slices []*Slice) (*Table, error) {
	t := &Table{
		slices:      slices,
		forkAt:      make(map[uint64][]*Slice),
		loopKillAt:  make(map[uint64][]*Slice),
		sliceKillAt: make(map[uint64][]*Slice),
		pgiAt:       make(map[uint64]PGIRef),
	}
	for i, s := range slices {
		if s.ForkPC == 0 || s.SlicePC == 0 {
			return nil, fmt.Errorf("slicehw: slice %q missing fork or slice PC", s.Name)
		}
		s.Index = i
		t.forkAt[s.ForkPC] = append(t.forkAt[s.ForkPC], s)
		if s.LoopKillPC != 0 {
			t.loopKillAt[s.LoopKillPC] = append(t.loopKillAt[s.LoopKillPC], s)
		}
		if s.SliceKillPC != 0 {
			t.sliceKillAt[s.SliceKillPC] = append(t.sliceKillAt[s.SliceKillPC], s)
		}
		if len(s.PGIs) > 0 && s.SliceKillPC == 0 {
			return nil, fmt.Errorf("slicehw: slice %q has PGIs but no slice kill; its instances could never retire", s.Name)
		}
		for j := range s.PGIs {
			p := &s.PGIs[j]
			if _, dup := t.pgiAt[p.SlicePC]; dup {
				return nil, fmt.Errorf("slicehw: slice %q: duplicate PGI at %#x", s.Name, p.SlicePC)
			}
			t.pgiAt[p.SlicePC] = PGIRef{Slice: s, PGI: p}
		}
	}
	return t, nil
}

// MustTable is NewTable that panics (static configuration).
func MustTable(slices []*Slice) *Table {
	t, err := NewTable(slices)
	if err != nil {
		panic(err)
	}
	return t
}

// Slices returns all slices.
func (t *Table) Slices() []*Slice { return t.slices }

// ForksAt returns the slices forked when the main thread fetches pc.
func (t *Table) ForksAt(pc uint64) []*Slice { return t.forkAt[pc] }

// LoopKillsAt returns slices whose loop-iteration kill fires at pc.
func (t *Table) LoopKillsAt(pc uint64) []*Slice { return t.loopKillAt[pc] }

// SliceKillsAt returns slices whose slice kill fires at pc.
func (t *Table) SliceKillsAt(pc uint64) []*Slice { return t.sliceKillAt[pc] }

// PGIAt returns the PGI-table entry for a slice-code pc, if any.
func (t *Table) PGIAt(pc uint64) (PGIRef, bool) {
	r, ok := t.pgiAt[pc]
	return r, ok
}
