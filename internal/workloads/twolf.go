package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Twolf reproduces the standard-cell annealer's inner step: two random
// cell records are fetched from a 2 MB arena (both loads miss), a move
// cost delta is computed, and the accept/reject branch — driven by the
// delta against an annealing threshold — is unbiased.
//
// The slice is forked as soon as the cell indices exist, loads both
// records (prefetching them), and computes the accept predicate and a
// secondary range predicate as PGIs. It is straight-line (no loop).
func Twolf() *Workload {
	const (
		nCells   = 65536
		cellSize = 32
		arena    = uint64(0x400000) // 2 MB of cells
		outerBig = 1 << 40
	)
	const (
		rOuter = isa.Reg(1)
		rIA    = isa.Reg(2)
		rIB    = isa.Reg(3)
		rAddrA = isa.Reg(4)
		rAddrB = isa.Reg(5)
		rCostA = isa.Reg(6)
		rCostB = isa.Reg(7)
		rDelta = isa.Reg(8)
		rTmp   = isa.Reg(9)
		rAcc   = isa.Reg(10)
		rPred  = isa.Reg(11)
		rArena = isa.Reg(27)
		rThr   = isa.Reg(25)
		rRng   = isa.Reg(20)
	)

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rArena, int64(arena))
	b.Li(rThr, 0) // annealing threshold: accept when delta ≤ 0
	b.Li(rRng, 0x56E8FEB86659FD93)
	b.Li(rOuter, outerBig)

	b.Label("anneal_loop")
	xorshift(b, rRng, rTmp)
	b.I(isa.ANDI, rIA, rRng, nCells-1)
	b.I(isa.SRLI, rTmp, rRng, 20)
	b.I(isa.ANDI, rIB, rTmp, nCells-1)
	b.Label("eval_swap") // fork point
	// Net-list bookkeeping the fork is hoisted past.
	for i := 0; i < 7; i++ {
		b.I(isa.ADDI, rAcc, rAcc, 1)
		b.I(isa.XORI, rTmp, rAcc, 0x4C)
	}
	b.I(isa.SLLI, rAddrA, rIA, 5)
	b.R(isa.ADD, rAddrA, rAddrA, rArena)
	b.I(isa.SLLI, rAddrB, rIB, 5)
	b.R(isa.ADD, rAddrB, rAddrB, rArena)
	b.Label("ld_cellA")
	b.Ld(rCostA, 0, rAddrA) //                     ← problem load
	b.Label("ld_cellB")
	b.Ld(rCostB, 0, rAddrB) //                     ← problem load
	b.R(isa.SUB, rDelta, rCostA, rCostB)
	b.R(isa.CMPLE, rPred, rDelta, rThr)
	b.Label("accept_branch")
	b.B(isa.BEQ, rPred, "reject") //               ← problem branch (unbiased)
	// Accept: swap the cost fields.
	b.St(rCostB, 0, rAddrA)
	b.St(rCostA, 0, rAddrB)
	b.I(isa.ADDI, rAcc, rAcc, 1)
	b.Br("range_check")
	b.Label("reject")
	b.I(isa.ADDI, rTmp, rTmp, 1)
	b.Label("range_check")
	// Secondary predicate: is the move "local"?
	b.R(isa.SUB, rTmp, rIA, rIB)
	b.R(isa.CMPLT, rPred, rTmp, isa.Zero)
	b.Label("range_branch")
	b.B(isa.BEQ, rPred, "nonlocal") //             ← second problem branch
	b.I(isa.ADDI, rAcc, rAcc, 2)
	b.Label("nonlocal")
	b.Label("swap_done") //                        slice kill
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "anneal_loop")
	b.Halt()
	main := b.MustBuild()

	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	// Advance the state twice (the fork precedes iteration i's update) to
	// reach iteration i+1's cell indices — the paper's fork hoisting.
	sb.Mov(10, rRng)
	for k := 0; k < 2; k++ {
		xorshift(sb, 10, 11)
	}
	sb.I(isa.ANDI, 12, 10, nCells-1) // ia'
	sb.I(isa.SRLI, 13, 10, 20)
	sb.I(isa.ANDI, 13, 13, nCells-1) // ib'
	sb.I(isa.SLLI, 14, 12, 5)
	sb.R(isa.ADD, 14, 14, rArena)
	sb.I(isa.SLLI, 15, 13, 5)
	sb.R(isa.ADD, 15, 15, rArena)
	sb.Ld(4, 0, 14) // cell A (prefetch)
	sb.Ld(5, 0, 15) // cell B (prefetch)
	sb.R(isa.SUB, 6, 4, 5)
	sb.Label("slice_pgi_accept")
	sb.R(isa.CMPLE, 7, 6, isa.Zero) // accept? PRED
	sb.R(isa.SUB, 8, 12, 13)
	sb.Label("slice_pgi_range")
	sb.R(isa.CMPLT, 9, 8, isa.Zero) // local? PRED
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:    "twolf.eval_next_swap",
		ForkPC:  main.PC("anneal_loop"),
		SlicePC: sliceProg.PC("slice"),
		LiveIns: []isa.Reg{rRng, rArena},
		PGIs: []slicehw.PGI{
			{SlicePC: sliceProg.PC("slice_pgi_accept"), BranchPC: main.PC("accept_branch"), TakenIfZero: true},
			{SlicePC: sliceProg.PC("slice_pgi_range"), BranchPC: main.PC("range_branch"), TakenIfZero: true},
		},
		SliceKillPC:        main.PC("swap_done"),
		SliceKillSkipFirst: true,
		CoveredLoadPCs:     []uint64{main.PC("ld_cellA"), main.PC("ld_cellB")},
	}
	countStatic(sliceProg, sl, "")

	initMem := func(m *mem.Memory) {
		r := newRand(9090)
		for i := 0; i < nCells; i++ {
			m.WriteU64(arena+uint64(i)*cellSize, uint64(r.intn(1<<20)))
		}
	}

	return &Workload{
		Name: "twolf",
		Description: "standard-cell annealing: random cell pair fetches and an " +
			"unbiased accept/reject branch",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 150_000,
	}
}
