package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Eon reproduces eon's profile: a probabilistic ray tracer whose data fits
// in the L1 ("insufficient misses" in Table 2) but whose intersection
// tests are a cascade of data-dependent, individually unbiased compare
// branches. All the benefit comes from branch prediction.
//
// The test predicates come from a carry-mixed (nonlinear) scramble of the
// ray state, so the global-history predictor cannot learn them. To gain
// latency tolerance the fork is hoisted a full ray ahead (§3.2's "sweet
// spot" search): the slice forked while ray i is being shaded replicates
// the one-step state update and computes ray i+1's six predicates. Even
// so, many predictions arrive late — the paper reports 40% late for eon —
// and are applied through early resolution (§5.3).
func Eon() *Workload {
	const outerBig = 1 << 40
	const (
		rOuter = isa.Reg(1)
		rRng   = isa.Reg(20)
		rMix   = isa.Reg(21)
		rTmp   = isa.Reg(9)
		rAcc   = isa.Reg(10)
		rT     = isa.Reg(11) // test predicate
		rG     = isa.Reg(12) // geometry scratch
	)
	// Six intersection tests examine carry-affected bits of the mix.
	shifts := []int32{15, 21, 27, 33, 39, 45}

	// mix computes out = state ^ (state + state<<13): the carry chain
	// makes every bit above 13 a nonlinear function of the state.
	mix := func(b *asm.Builder, out, state, tmp isa.Reg) {
		b.I(isa.SLLI, tmp, state, 13)
		b.R(isa.ADD, tmp, tmp, state)
		b.R(isa.XOR, out, tmp, state)
	}

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rRng, 0x3A8F05C5)
	b.Li(rOuter, outerBig)

	b.Label("ray_loop")
	b.Label("trace_ray") // fork point: the slice covers ray i+1
	xorshift(b, rRng, rTmp)
	mix(b, rMix, rRng, rTmp)
	// Geometry setup (ray-box transform) between the fork and the tests.
	for i := 0; i < 12; i++ {
		b.I(isa.ADDI, rG, rG, 3)
		b.I(isa.XORI, rAcc, rG, 0x2D)
	}
	// Six object tests.
	for i, sh := range shifts {
		b.I(isa.SRLI, rT, rMix, sh)
		b.I(isa.ANDI, rT, rT, 1)
		b.Label(lbl("eon_branch", i))
		b.B(isa.BEQ, rT, lbl("eon_skip", i)) // ← problem branch (unbiased)
		b.I(isa.ADDI, rAcc, rAcc, 1)
		b.I(isa.XORI, rAcc, rAcc, 0x11)
		b.Label(lbl("eon_skip", i))
	}
	b.Label("ray_done") // slice kill
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "ray_loop")
	b.Halt()
	main := b.MustBuild()

	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	// Replicate the one-step state update for ray i+1 (live-in: the state
	// after ray i's update — the fork sits before ray i's xorshift, so the
	// live-in is the state entering ray i; the slice advances it once to
	// reach ray i+1... the fork point is before xorshift_i, hence one
	// advance yields ray i's values; two advances yield ray i+1's. The
	// fork is placed before xorshift_i and the slice advances twice.
	sb.Mov(2, rRng)
	for k := 0; k < 2; k++ {
		sb.I(isa.SLLI, 3, 2, 13)
		sb.R(isa.XOR, 2, 2, 3)
		sb.I(isa.SRLI, 3, 2, 7)
		sb.R(isa.XOR, 2, 2, 3)
		sb.I(isa.SLLI, 3, 2, 17)
		sb.R(isa.XOR, 2, 2, 3)
	}
	sb.I(isa.SLLI, 3, 2, 13)
	sb.R(isa.ADD, 3, 3, 2)
	sb.R(isa.XOR, 4, 3, 2) // the mix for ray i+1
	var pgis []slicehw.PGI
	for i, sh := range shifts {
		sb.I(isa.SRLI, 5, 4, sh)
		pgiPC := sb.PC()
		sb.I(isa.ANDI, 5, 5, 1) // PGI: branch taken iff bit == 0
		pgis = append(pgis, slicehw.PGI{
			SlicePC:     pgiPC,
			BranchPC:    main.PC(lbl("eon_branch", i)),
			TakenIfZero: true,
		})
	}
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:        "eon.intersect_next",
		ForkPC:      main.PC("trace_ray"),
		SlicePC:     sliceProg.PC("slice"),
		LiveIns:     []isa.Reg{rRng},
		PGIs:        pgis,
		SliceKillPC: main.PC("ray_done"),
		// Forked in iteration i but covering ray i+1: the slice kill at
		// ray_done_i must not kill this instance.
		SliceKillSkipFirst: true,
	}
	countStatic(sliceProg, sl, "")

	return &Workload{
		Name: "eon",
		Description: "probabilistic ray tracing: L1-resident data, six unbiased " +
			"intersection-test branches per ray, slice hoisted one ray ahead",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         func(m *mem.Memory) { m.WriteU64(GlobalBase, 0) },
		SuggestedRun:    400_000,
		SuggestedWarmup: 100_000,
	}
}

func lbl(prefix string, i int) string {
	return prefix + "_" + string(rune('0'+i))
}
