package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Parser reproduces the two slice-construction failures of §6.2: (1) hash
// probes whose key generation is computationally intensive (a 16-round
// mixing loop immediately before the problem instructions — replicating
// it makes the slice as slow as the program), and (2) a stack-discipline
// deallocator whose cascades are triggered unpredictably.
//
// The included slice is the paper's honest failure: it must replicate the
// key generation, so its predictions arrive no earlier than the main
// thread's own resolution, and the overhead roughly cancels the benefit.
func Parser() *Workload {
	const (
		tabEnts  = 1 << 19 // 512K-entry table, 4 MB — misses to memory
		tabBase  = uint64(0x1000000)
		chunkN   = 16384
		chunkArn = uint64(0x400000)
		keyRound = 16
		outerBig = 1 << 40
	)
	const (
		rOuter = isa.Reg(1)
		rSeed  = isa.Reg(2)
		rKey   = isa.Reg(3)
		rI     = isa.Reg(4)
		rH     = isa.Reg(5)
		rSlot  = isa.Reg(6)
		rCmp   = isa.Reg(7)
		rCasc  = isa.Reg(8)
		rTmp   = isa.Reg(9)
		rAddr  = isa.Reg(10)
		rCnt   = isa.Reg(11)
		rChk   = isa.Reg(12)
		rTab   = isa.Reg(27)
		rChks  = isa.Reg(26)
		rRng   = isa.Reg(20)
	)

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rTab, int64(tabBase))
	b.Li(rChks, int64(chunkArn))
	b.Li(rRng, 0x5851F42D4C957F2D)
	b.Li(rOuter, outerBig)

	b.Label("parse_loop")
	xorshift(b, rRng, rTmp)
	b.Mov(rSeed, rRng)
	b.Label("parse_word") // fork point
	// Key generation: 16 mixing rounds (the >50 instructions the paper
	// says would have to be replicated).
	b.Mov(rKey, rSeed)
	b.I(isa.LDI, rI, 0, keyRound)
	b.Label("keygen_loop")
	b.I(isa.SLLI, rTmp, rKey, 5)
	b.R(isa.XOR, rKey, rKey, rTmp)
	b.I(isa.SRLI, rTmp, rKey, 11)
	b.R(isa.XOR, rKey, rKey, rTmp)
	b.I(isa.ADDI, rI, rI, -1)
	b.B(isa.BGT, rI, "keygen_loop")
	// Probe.
	b.I(isa.ANDI, rH, rKey, tabEnts-1)
	b.R(isa.S8ADD, rAddr, rH, rTab)
	b.Label("ld_slot")
	b.Ld(rSlot, 0, rAddr) //                       ← problem load
	b.R(isa.CMPLT, rCmp, rSlot, rKey)
	b.Label("probe_branch")
	b.B(isa.BEQ, rCmp, "no_hit") //                ← problem branch
	b.I(isa.ADDI, rCnt, rCnt, 1)
	b.Label("no_hit") //                           slice kill
	// Deallocation cascade, triggered unpredictably (p=1/2): walk the
	// chunk free-list whose work was deferred (xfree, §6.2).
	b.I(isa.ANDI, rTmp, rKey, 1)
	b.B(isa.BEQ, rTmp, "no_cascade")
	b.I(isa.ANDI, rTmp, rKey, chunkN-1)
	b.R(isa.S8ADD, rAddr, rTmp, rChks)
	b.Ld(rChk, 0, rAddr) // chunk head
	b.I(isa.LDI, rCasc, 0, 4)
	b.Label("casc_loop")
	b.B(isa.BEQ, rChk, "no_cascade")
	b.Label("ld_chunk")
	b.Ld(rChk, 0, rChk) //                         ← problem load (scattered)
	b.I(isa.ADDI, rCasc, rCasc, -1)
	b.B(isa.BGT, rCasc, "casc_loop")
	b.Label("no_cascade")
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "parse_loop")
	b.Halt()
	main := b.MustBuild()

	// The failure-mode slice: it must replicate the entire key
	// generation, so it finishes no earlier than the program does.
	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	sb.Mov(2, rSeed)
	sb.I(isa.LDI, 3, 0, keyRound)
	sb.Label("slice_loop")
	sb.I(isa.SLLI, 4, 2, 5)
	sb.R(isa.XOR, 2, 2, 4)
	sb.I(isa.SRLI, 4, 2, 11)
	sb.R(isa.XOR, 2, 2, 4)
	sb.I(isa.ADDI, 3, 3, -1)
	sb.Label("slice_back")
	sb.B(isa.BGT, 3, "slice_loop")
	sb.I(isa.ANDI, 5, 2, tabEnts-1)
	sb.R(isa.S8ADD, 6, 5, rTab)
	sb.Ld(7, 0, 6) // slot (prefetch, but late)
	sb.Label("slice_pgi")
	sb.R(isa.CMPLT, 8, 7, 2) // (slot < key) PRED — chronically late
	sb.Halt()
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:       "parser.hash_probe",
		ForkPC:     main.PC("parse_word"),
		SlicePC:    sliceProg.PC("slice"),
		LiveIns:    []isa.Reg{rSeed, rTab},
		MaxLoops:   keyRound + 4,
		LoopBackPC: sliceProg.PC("slice_back"),
		PGIs: []slicehw.PGI{{
			SlicePC:     sliceProg.PC("slice_pgi"),
			BranchPC:    main.PC("probe_branch"),
			TakenIfZero: true,
		}},
		SliceKillPC:    main.PC("no_hit"),
		CoveredLoadPCs: []uint64{main.PC("ld_slot")},
	}
	countStatic(sliceProg, sl, "slice_loop")

	initMem := func(m *mem.Memory) {
		r := newRand(8128)
		for i := 0; i < tabEnts; i += 16 {
			// Sparse init: the table reads as zero elsewhere, which only
			// biases the compare slightly.
			m.WriteU64(tabBase+uint64(i)*8, uint64(r.next()))
		}
		// Chunk free-lists: short scattered chains.
		for i := 0; i < chunkN; i++ {
			head := chunkArn + uint64(chunkN+r.intn(chunkN*4))*64
			m.WriteU64(chunkArn+uint64(i)*8, head)
			m.WriteU64(head, 0)
		}
	}

	return &Workload{
		Name: "parser",
		Description: "link-grammar parsing: hash probes behind expensive key " +
			"generation plus unpredictable deallocation cascades (§6.2 failure case)",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 150_000,
	}
}
