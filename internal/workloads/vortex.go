package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Vortex reproduces the OO-database profile: high base IPC from ILP-rich
// object processing, mostly sequential access (the stream prefetcher
// covers it), predictable branches — and one occasional random object
// dereference that misses. With the machine already near peak throughput,
// the opportunity cost of slice execution is high (§6.2), so the tiny
// prefetch-only slice buys very little, as in the paper.
func Vortex() *Workload {
	const (
		nObjs    = 32768
		objSize  = 64
		arena    = uint64(0x400000) // 2 MB of objects
		outerBig = 1 << 40
	)
	const (
		rOuter = isa.Reg(1)
		rIdx   = isa.Reg(2)
		rAddr  = isa.Reg(3)
		rObj   = isa.Reg(4)
		rRnd   = isa.Reg(5)
		rTmp   = isa.Reg(9)
		rArena = isa.Reg(27)
		rRng   = isa.Reg(20)
		rXAddr = isa.Reg(12)
	)

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rArena, int64(arena))
	b.Li(rRng, 0x0EBC6AF09C88C6E3)
	b.Li(rOuter, outerBig)

	b.Label("txn_loop")
	xorshift(b, rRng, rTmp)
	// Compute the random cross-reference index early — the slice's root.
	b.I(isa.ANDI, rRnd, rRng, nObjs-1)
	b.Label("process_obj") // fork point
	// Sequential object access plus ILP-rich field processing.
	b.I(isa.ADDI, rIdx, rIdx, 1)
	b.I(isa.ANDI, rTmp, rIdx, nObjs-1)
	b.I(isa.SLLI, rAddr, rTmp, 6)
	b.R(isa.ADD, rAddr, rAddr, rArena)
	b.Ld(rObj, 0, rAddr) // sequential: stream prefetcher covers it
	for r := isa.Reg(13); r < 19; r++ {
		b.I(isa.ADDI, r, r, 5)
		b.R(isa.XOR, r, r, rObj)
	}
	// Occasional random cross-reference (1 in 8 transactions). The fork
	// point sits inside the taken path: §6.3's context gating — only the
	// profitable contexts fork, keeping overhead off the common path.
	b.I(isa.ANDI, rTmp, rRng, 7)
	b.B(isa.BNE, rTmp, "no_xref")
	b.Label("do_xref") // fork point
	// Reference validation work between the fork and the dereference.
	for i := 0; i < 6; i++ {
		b.I(isa.ADDI, isa.Reg(14), isa.Reg(14), 1)
		b.I(isa.XORI, isa.Reg(15), isa.Reg(14), 0x21)
	}
	b.I(isa.SLLI, rXAddr, rRnd, 6)
	b.R(isa.ADD, rXAddr, rXAddr, rArena)
	b.Label("ld_xref")
	b.Ld(rObj, 8, rXAddr) //                       ← problem load
	b.R(isa.ADD, isa.Reg(13), isa.Reg(13), rObj)
	b.Label("no_xref")
	b.Label("txn_done") // slice kill (unused: prefetch-only slice)
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "txn_loop")
	b.Halt()
	main := b.MustBuild()

	// Prefetch-only slice: 4 static instructions, 1 live-in root, like
	// the paper's vortex slice (Table 3: pref 1, pred 0, kills 0).
	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	sb.I(isa.SLLI, 2, rRnd, 6)
	sb.R(isa.ADD, 2, 2, rArena)
	sb.Ld(3, 8, 2) // cross-reference target (prefetch)
	sb.Halt()
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:           "vortex.xref_prefetch",
		ForkPC:         main.PC("do_xref"),
		SlicePC:        sliceProg.PC("slice"),
		LiveIns:        []isa.Reg{rRnd, rArena},
		CoveredLoadPCs: []uint64{main.PC("ld_xref")},
	}
	countStatic(sliceProg, sl, "")

	initMem := func(m *mem.Memory) {
		r := newRand(31415)
		for i := 0; i < nObjs; i++ {
			m.WriteU64(arena+uint64(i)*objSize, uint64(r.intn(1<<16)))
			m.WriteU64(arena+uint64(i)*objSize+8, uint64(r.intn(1<<16)))
		}
	}

	return &Workload{
		Name: "vortex",
		Description: "OO database transactions: high base IPC, sequential access, " +
			"one occasional random cross-reference miss",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 100_000,
	}
}
