package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Gap reproduces the group-theory interpreter's bag scans: handlers
// iterate over variable-length lists of integers scattered through a 2 MB
// arena, comparing each element against a handle. The element compare is
// unbiased; the first touch of each bag misses (the stream prefetcher then
// covers the sequential tail — which is why gap's slice benefit is split
// between loads and branches in Table 4).
//
// The slice scans the same bag ahead of the handler, one prediction per
// element; its iteration bound (like the paper's 85) comes from the
// profiled maximum bag length.
func Gap() *Workload {
	const (
		nBags    = 4096
		maxBag   = 80
		arena    = uint64(0x400000)
		bagIdx   = uint64(DataBase) // bag pointer array
		outerBig = 1 << 40
	)
	const (
		rOuter = isa.Reg(1)
		rIdx   = isa.Reg(2)
		rBag   = isa.Reg(3)
		rLen   = isa.Reg(4)
		rI     = isa.Reg(5)
		rVal   = isa.Reg(6)
		rCmp   = isa.Reg(7)
		rCnt   = isa.Reg(8)
		rTmp   = isa.Reg(9)
		rAddr  = isa.Reg(10)
		rCont  = isa.Reg(11)
		rHand  = isa.Reg(22) // handle value compared against
		rBags  = isa.Reg(27)
		rRng   = isa.Reg(20)
	)

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rBags, int64(bagIdx))
	b.Li(rRng, 0x14D049BB133111EB)
	b.Li(rOuter, outerBig)

	b.Label("eval_loop")
	xorshift(b, rRng, rTmp)
	b.I(isa.ANDI, rHand, rRng, 0xFFFFF)
	b.I(isa.ADDI, rIdx, rIdx, 1)
	b.I(isa.ANDI, rTmp, rIdx, nBags-1)
	b.R(isa.S8ADD, rAddr, rTmp, rBags)
	b.Ld(rBag, 0, rAddr) // bag pointer (index array is hot)
	b.Label("scan_bag")  // fork point
	// Interpreter dispatch bookkeeping the fork is hoisted past.
	for i := 0; i < 6; i++ {
		b.I(isa.ADDI, rCnt, rCnt, 1)
		b.I(isa.XORI, rTmp, rCnt, 0x77)
	}
	b.Ld(rLen, 0, rBag) // bag length (first touch of the bag — misses)
	b.I(isa.LDI, rI, 0, 0)

	b.Label("scan_loop")
	b.R(isa.S8ADD, rAddr, rI, rBag)
	b.Label("ld_elem")
	b.Ld(rVal, 8, rAddr) //                        ← problem load (first lines)
	b.R(isa.CMPLT, rCmp, rVal, rHand)
	b.Label("elem_branch")
	b.B(isa.BEQ, rCmp, "elem_skip") //             ← problem branch (p≈1/2)
	b.I(isa.ADDI, rCnt, rCnt, 1)
	b.Label("elem_skip")
	b.I(isa.ADDI, rI, rI, 1)
	b.R(isa.CMPLT, rCont, rI, rLen)
	b.Label("scan_latch")
	b.B(isa.BNE, rCont, "scan_loop") //            loop-iteration kill
	b.Label("bag_done")              //                         slice kill
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "eval_loop")
	b.Halt()
	main := b.MustBuild()

	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	// Hoisted one bag ahead: the next handle comes from the replicated
	// state update, the next bag pointer from the bag index array.
	sb.Mov(10, rRng)
	for k := 0; k < 2; k++ {
		xorshift(sb, 10, 11)
	}
	sb.I(isa.ANDI, 12, 10, 0xFFFFF) // handle'
	sb.I(isa.ADDI, 13, rIdx, 2)     // next bag index (rIdx pre-increment)
	sb.I(isa.ANDI, 13, 13, nBags-1)
	sb.R(isa.S8ADD, 14, 13, rBags)
	sb.Ld(15, 0, 14) // bag pointer
	sb.Label("slice_loop")
	sb.Ld(16, 8, 15) // element (prefetch)
	sb.Label("slice_pgi")
	sb.R(isa.CMPLT, 17, 16, 12) // (elem < handle') PRED
	sb.I(isa.ADDI, 15, 15, 8)
	sb.Label("slice_back")
	sb.Br("slice_loop")
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:       "gap.bag_scan_next",
		ForkPC:     main.PC("eval_loop"),
		SlicePC:    sliceProg.PC("slice"),
		LiveIns:    []isa.Reg{rRng, rIdx, rBags},
		MaxLoops:   maxBag + 5,
		LoopBackPC: sliceProg.PC("slice_back"),
		PGIs: []slicehw.PGI{{
			SlicePC:     sliceProg.PC("slice_pgi"),
			BranchPC:    main.PC("elem_branch"),
			TakenIfZero: true,
		}},
		LoopKillPC:         main.PC("scan_latch"),
		SliceKillPC:        main.PC("bag_done"),
		SliceKillSkipFirst: true,
		CoveredLoadPCs:     []uint64{main.PC("ld_elem")},
	}
	countStatic(sliceProg, sl, "slice_loop")

	initMem := func(m *mem.Memory) {
		r := newRand(4242)
		// Bags at random 1 KiB-aligned arena offsets (a bag spans at most
		// 8+80*8 = 648 bytes, so slots never overlap), length 4..maxBag.
		for i := 0; i < nBags; i++ {
			addr := arena + uint64(r.intn(1<<11))*1024
			m.WriteU64(bagIdx+uint64(i)*8, addr)
			n := 4 + r.intn(maxBag-4)
			m.WriteU64(addr, uint64(n))
			for k := 0; k < n; k++ {
				m.WriteU64(addr+8+uint64(k)*8, uint64(r.intn(1<<20)))
			}
		}
	}

	return &Workload{
		Name: "gap",
		Description: "interpreter bag scans: variable-length list walks with " +
			"unbiased element compares over a 2 MB arena",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 150_000,
	}
}
