package workloads

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestVPRSliceMatchesFigure5 locks the vpr slice to the paper's Figure 5
// structure: load the heap base, copy the tail, then a loop of
// {shift-right, scaled-add, load heap[ito], load ->cost, compare} with an
// unconditional back edge — eight static instructions, the compare being
// the PGI, terminated only by the iteration bound.
func TestVPRSliceMatchesFigure5(t *testing.T) {
	w, err := ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	sl := w.Slices[0]
	if sl.StaticSize != 8 {
		t.Errorf("static size %d, Figure 5 has 8", sl.StaticSize)
	}
	if sl.LoopSize != 6 {
		t.Errorf("loop size %d, want 6", sl.LoopSize)
	}

	var ops []isa.Op
	for pc := sl.SlicePC; ; pc += isa.InstBytes {
		in, ok := w.Image.At(pc)
		if !ok {
			break
		}
		ops = append(ops, in.Op)
	}
	want := []isa.Op{isa.LD, isa.OR, isa.SRAI, isa.S8ADD, isa.LD, isa.LD, isa.CMPLT, isa.BR}
	if len(ops) != len(want) {
		t.Fatalf("slice ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %v, want %v", i, ops[i], want[i])
		}
	}
	// The PGI is the compare; the prediction maps "compare == 0" to the
	// exit branch being taken.
	if pgi := sl.PGIs[0]; !pgi.TakenIfZero {
		t.Error("vpr PGI polarity wrong")
	}
	// Annotations from Figure 5: fork on node_to_heap, live-ins include
	// gp and the cost, bounded iterations.
	foundGP := false
	for _, r := range sl.LiveIns {
		if r == isa.GP {
			foundGP = true
		}
	}
	if !foundGP {
		t.Error("gp must be a live-in, as in Figure 5")
	}
	if sl.MaxLoops == 0 {
		t.Error("the slice must rely on a maximum iteration count")
	}
}

// TestSliceDisassemblyGolden locks each workload's slice entry labels so
// accidental reassembly shifts are caught.
func TestSliceDisassemblyGolden(t *testing.T) {
	for _, w := range All() {
		progs := w.Image.Programs()
		if len(progs) < 2 {
			t.Errorf("%s: no slice code region", w.Name)
			continue
		}
		for _, p := range progs[1:] {
			text := p.Disasm()
			if !strings.Contains(text, ":") {
				t.Errorf("%s: slice region has no labels:\n%s", w.Name, text)
			}
			// Slice code must contain no stores (§4.1) — the single
			// enforcement exception is the cpu-level drop, but authored
			// slices must simply not contain them.
			for i := range p.Insts {
				if p.Insts[i].IsStore() {
					t.Errorf("%s: slice at %#x contains a store", w.Name, p.Base+uint64(i)*isa.InstBytes)
				}
			}
		}
	}
}

// TestWorkloadDataDeterminism: two fresh memories must be identical.
func TestWorkloadDataDeterminism(t *testing.T) {
	for _, w := range All() {
		m1, m2 := w.NewMemory(), w.NewMemory()
		if m1.Footprint() != m2.Footprint() {
			t.Errorf("%s: nondeterministic footprint", w.Name)
		}
		// Spot-check a few pages.
		for _, addr := range []uint64{0x10000, 0x200000, 0x400000, 0x800000, 0x1000000} {
			for off := uint64(0); off < 256; off += 8 {
				if m1.ReadU64(addr+off) != m2.ReadU64(addr+off) {
					t.Errorf("%s: nondeterministic data at %#x", w.Name, addr+off)
					break
				}
			}
		}
	}
}
