package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// VPR reproduces the paper's running example (Figure 2): the heap
// insertion loop of vpr's timing-driven placer. Each iteration computes a
// pseudo-random cost, allocates a record, and trickles it up a binary heap
// stored as an array of pointers. The heap spans 128 KB (larger than the
// L1), so the heap[ito] dereference chain misses, and the cost comparison
// branch is unbiased — the two problem instructions of Figure 2.
//
// The slice is the paper's Figure 5, almost literally: it takes cost, the
// heap tail, and gp as live-ins, halves the index each iteration,
// dereferences heap[ito]->cost (prefetching both problem loads), and its
// compare is the PGI for the trickle-exit branch. Loop exit computation is
// omitted entirely; a profiled maximum iteration count terminates it.
func VPR() *Workload {
	const (
		heapN    = 16384 // heap slots; 128 KB of pointers
		recN     = 16384 // records, 64 B apart (1 MB region)
		heapArr  = uint64(DataBase)
		recBase  = uint64(0x800000)
		seed     = 0x1E3779B97F4A7C15
		outerBig = 1 << 40
	)
	// Register roles.
	const (
		rOuter = isa.Reg(1)
		rIfrom = isa.Reg(2)  // ifrom
		rHeapM = isa.Reg(3)  // &heap[ifrom] (transient)
		rIto   = isa.Reg(4)  // ito
		rHeap  = isa.Reg(5)  // &heap[0]
		rTmp   = isa.Reg(9)  // scratch
		rFillA = isa.Reg(10) // filler accumulators
		rEFrom = isa.Reg(11) // heap[ifrom]
		rETo   = isa.Reg(12) // heap[ito]
		rCFrom = isa.Reg(13) // heap[ifrom]->cost
		rCTo   = isa.Reg(14) // heap[ito]->cost
		rCmp   = isa.Reg(15)
		rRng   = isa.Reg(20)
		rRec   = isa.Reg(21) // hptr
		rCost  = isa.Reg(22)
		rAlloc = isa.Reg(23)
		rTail  = isa.Reg(24) // heap_tail (kept in a register)
		rRecB  = isa.Reg(27)
		rWrapV = isa.Reg(28) // reset value N/2
		rLimit = isa.Reg(29) // N
	)

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rRecB, int64(recBase))
	b.Li(rRng, seed)
	b.I(isa.LDI, rAlloc, 0, 0)
	b.Li(rTail, heapN/2)
	b.Li(rWrapV, heapN/2)
	b.Li(rLimit, heapN)
	b.Li(rOuter, outerBig)

	b.Label("loop")
	xorshift(b, rRng, rTmp)
	b.I(isa.ANDI, rCost, rRng, 0xFFFFF) // 20-bit cost

	// --- node_to_heap (fork point: Figure 3) ---
	b.Label("node_to_heap")
	// hptr = alloc_heap_data(): cycle through the record arena.
	b.I(isa.ANDI, rTmp, rAlloc, recN-1)
	b.I(isa.SLLI, rTmp, rTmp, 6)
	b.R(isa.ADD, rRec, rRecB, rTmp)
	b.I(isa.ADDI, rAlloc, rAlloc, 1)
	// hptr->cost = cost — the invariant the slice's register-allocation
	// optimization exploits (§3.2): heap[ifrom]->cost always equals cost.
	b.St(rCost, 0, rRec)
	// Unrelated field initialization — the ~40 instructions of
	// node_to_heap the fork is hoisted past.
	b.St(isa.Zero, 8, rRec)
	b.St(rAlloc, 16, rRec)
	b.St(rRng, 24, rRec)
	b.St(isa.Zero, 32, rRec)
	b.St(isa.Zero, 40, rRec)
	b.St(rCost, 48, rRec)
	for i := 0; i < 14; i++ {
		b.I(isa.ADDI, rFillA, rFillA, 1)
		b.I(isa.XORI, rTmp, rFillA, 0x55)
	}

	// --- add_to_heap (Figure 2 / Figure 4) ---
	b.Ld(rHeap, 8, isa.GP) // &heap[0]
	b.Mov(rIfrom, rTail)   // ifrom = heap_tail
	b.R(isa.S8ADD, rHeapM, rIfrom, rHeap)
	b.St(rRec, 0, rHeapM) // heap[heap_tail] = hptr
	b.I(isa.ADDI, rTail, rTail, 1)
	// Wrap the tail inside [N/2, N) so the benchmark reaches a steady
	// state instead of overflowing the arena.
	b.I(isa.CMPLTI, rTmp, rTail, heapN)
	b.R(isa.CMOVEQ, rTail, rTmp, rWrapV)
	b.I(isa.SRAI, rIto, rIfrom, 1) // ito = ifrom/2
	b.B(isa.BLE, rIto, "ret_blk")

	b.Label("trickle")
	b.R(isa.S8ADD, rHeapM, rIfrom, rHeap) // &heap[ifrom]
	b.R(isa.S8ADD, rTmp, rIto, rHeap)     // &heap[ito]
	b.Ld(rEFrom, 0, rHeapM)               // heap[ifrom]
	b.Label("ld_heap_ito")
	b.Ld(rETo, 0, rTmp) // heap[ito]            ← problem load
	b.Ld(rCFrom, 0, rEFrom)
	b.Label("ld_cost_ito")
	b.Ld(rCTo, 0, rETo) // heap[ito]->cost      ← problem load
	b.R(isa.CMPLT, rCmp, rCFrom, rCTo)
	b.Label("trickle_exit")
	b.B(isa.BEQ, rCmp, "ret_blk") //            ← problem branch
	b.Label("swap")
	b.St(rEFrom, 0, rTmp) // heap[ito] = heap[ifrom]
	b.St(rETo, 0, rHeapM) // heap[ifrom] = temp
	b.Mov(rIfrom, rIto)
	b.I(isa.SRAI, rIto, rIfrom, 1)
	b.B(isa.BGT, rIto, "trickle")

	b.Label("ret_blk")
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "loop")
	b.Halt()
	main := b.MustBuild()

	// --- The slice (Figure 5) ---
	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	sb.Ld(6, 8, isa.GP) // &heap[0]
	sb.Mov(7, rTail)    // ito = heap_tail (live-in register copy)
	sb.Label("slice_loop")
	sb.I(isa.SRAI, 7, 7, 1)   // ito /= 2 (strength-reduced: §3.2)
	sb.R(isa.S8ADD, 16, 7, 6) // &heap[ito]
	sb.Ld(18, 0, 16)          // heap[ito]
	sb.Ld(19, 0, 18)          // heap[ito]->cost
	sb.Label("slice_pgi")
	sb.R(isa.CMPLT, 17, rCost, 19) // (cost < heap[ito]->cost)  PRED
	sb.Br("slice_loop")
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:       "vpr.add_to_heap",
		ForkPC:     main.PC("node_to_heap"),
		SlicePC:    sliceProg.PC("slice"),
		LiveIns:    []isa.Reg{isa.GP, rCost, rTail},
		MaxLoops:   12,
		LoopBackPC: sliceProg.PC("slice_pgi") + isa.InstBytes, // the br
		PGIs: []slicehw.PGI{{
			SlicePC:     sliceProg.PC("slice_pgi"),
			BranchPC:    main.PC("trickle_exit"),
			TakenIfZero: true, // branch exits when the compare is 0
		}},
		LoopKillPC:     main.PC("swap"),
		SliceKillPC:    main.PC("ret_blk"),
		CoveredLoadPCs: []uint64{main.PC("ld_heap_ito"), main.PC("ld_cost_ito")},
	}
	countStatic(sliceProg, sl, "slice_loop")

	initMem := func(m *mem.Memory) {
		r := newRand(42)
		// Globals: heap base pointer at gp+8.
		m.WriteU64(GlobalBase+8, heapArr)
		// Records with random costs.
		for i := 0; i < recN; i++ {
			m.WriteU64(recBase+uint64(i)*64, uint64(r.intn(1<<20)))
		}
		// Heap slots 1..N point at random records.
		for i := 1; i <= heapN; i++ {
			m.WriteU64(heapArr+uint64(i)*8, recBase+uint64(r.intn(recN))*64)
		}
	}

	return &Workload{
		Name: "vpr",
		Description: "timing-driven placement: heap insertion with pointer-indirect cost " +
			"compares (the paper's running example, Figures 2-5)",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 150_000,
	}
}
