package workloads

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/stats"
)

// runWorkload runs w for a small region under cfg, with or without its
// slice hardware, and returns the measured stats.
func runWorkload(t testing.TB, w *Workload, cfg cpu.Config, withSlices bool, warmup, run uint64) (*cpu.Core, *stats.Sim) {
	t.Helper()
	var core *cpu.Core
	if withSlices {
		core = cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, w.SliceTable())
	} else {
		core = cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, nil)
	}
	core.Run(warmup)
	core.ResetStats()
	s := core.Run(run)
	return core, s
}

func TestAllWorkloadsFunctionallySound(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			st, err := cpu.RunFunctional(w.Image, w.NewMemory(), w.Entry, 50_000)
			if err != nil {
				t.Fatalf("functional run: %v", err)
			}
			if st.Halted {
				t.Fatal("workload halted inside the measurement region")
			}
			if st.Retired != 50_000 {
				t.Fatalf("retired %d", st.Retired)
			}
		})
	}
}

func TestAllWorkloadsRunOnCore(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, s := runWorkload(t, w, cpu.Config4Wide(), false, 20_000, 40_000)
			if s.MainRetired < 40_000 {
				t.Fatalf("retired only %d", s.MainRetired)
			}
			ipc := s.IPC()
			if ipc < 0.05 || ipc > 4.01 {
				t.Errorf("IPC %.3f out of range", ipc)
			}
		})
	}
}

// TestProblemInstructionProfiles checks each workload produces the PDE
// profile it was designed around (Table 2's shape).
func TestProblemInstructionProfiles(t *testing.T) {
	type want struct {
		minMispredRate float64 // per retired instruction, scaled 1e3
		maxMispredRate float64
		minMissRate    float64 // load misses per 1e3 instructions
		maxMissRate    float64
	}
	wants := map[string]want{
		"vpr":    {minMispredRate: 5, maxMispredRate: 60, minMissRate: 5, maxMissRate: 120},
		"mcf":    {minMispredRate: 5, maxMispredRate: 80, minMissRate: 20, maxMissRate: 200},
		"eon":    {minMispredRate: 20, maxMispredRate: 120, minMissRate: 0, maxMissRate: 2},
		"gzip":   {minMispredRate: 10, maxMispredRate: 90, minMissRate: 3, maxMissRate: 120},
		"bzip2":  {minMispredRate: 10, maxMispredRate: 90, minMissRate: 3, maxMissRate: 120},
		"twolf":  {minMispredRate: 5, maxMispredRate: 60, minMissRate: 5, maxMissRate: 120},
		"vortex": {minMispredRate: 0, maxMispredRate: 20, minMissRate: 0, maxMissRate: 45},
	}
	for _, w := range All() {
		wt, ok := wants[w.Name]
		if !ok {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, s := runWorkload(t, w, cpu.Config4Wide(), false, 30_000, 60_000)
			mispredPerK := float64(s.Mispredicts) / float64(s.MainRetired) * 1000
			missPerK := float64(s.LoadMisses) / float64(s.MainRetired) * 1000
			if mispredPerK < wt.minMispredRate || mispredPerK > wt.maxMispredRate {
				t.Errorf("mispredicts/Kinst = %.1f, want [%v,%v]", mispredPerK, wt.minMispredRate, wt.maxMispredRate)
			}
			if missPerK < wt.minMissRate || missPerK > wt.maxMissRate {
				t.Errorf("load misses/Kinst = %.1f, want [%v,%v]", missPerK, wt.minMissRate, wt.maxMissRate)
			}
		})
	}
}

// TestSlicesForkAndPredict checks the slice machinery engages on every
// workload that defines slices.
func TestSlicesForkAndPredict(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, s := runWorkload(t, w, cpu.Config4Wide(), true, 30_000, 60_000)
			if s.Forks == 0 {
				t.Fatal("no forks")
			}
			if s.HelperFetched == 0 {
				t.Fatal("no helper instructions fetched")
			}
			hasPGIs := false
			for _, sl := range w.Slices {
				if len(sl.PGIs) > 0 {
					hasPGIs = true
				}
			}
			if hasPGIs && s.PredsUsed == 0 && s.PredsLateUsed == 0 && w.Name != "parser" {
				// parser's slice is the paper's §6.2 failure case: its
				// predictions replicate the expensive key generation and
				// arrive after the kill, so none ever match.
				t.Error("slices define PGIs but no predictions were matched")
			}
		})
	}
}

// TestSlicePredictionAccuracy: when slice predictions override the
// conventional predictor, they must be highly accurate (>99% in the
// paper; we allow a small margin for our racier memory model).
func TestSlicePredictionAccuracy(t *testing.T) {
	for _, name := range []string{"vpr", "eon", "gzip", "bzip2", "gap", "twolf", "perl", "mcf", "crafty"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			_, s := runWorkload(t, w, cpu.Config4Wide(), true, 30_000, 80_000)
			if s.PredsUsed < 50 {
				t.Skipf("only %d overrides in this small region", s.PredsUsed)
			}
			acc := float64(s.PredsCorrect) / float64(s.PredsCorrect+s.PredsIncorrect)
			if acc < 0.90 {
				t.Errorf("override accuracy %.3f (correct=%d incorrect=%d)", acc, s.PredsCorrect, s.PredsIncorrect)
			}
		})
	}
}

// TestSliceSpeedups checks the headline result's shape: the benchmarks the
// paper speeds up must get faster with slices, and the failure cases must
// not get dramatically slower.
func TestSliceSpeedups(t *testing.T) {
	speedupExpected := []string{"vpr", "eon", "gzip", "bzip2", "gap", "twolf", "perl", "mcf"}
	neutral := []string{"parser", "gcc", "vortex", "crafty"}

	for _, name := range append(append([]string{}, speedupExpected...), neutral...) {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		name := name
		t.Run(name, func(t *testing.T) {
			_, base := runWorkload(t, w, cpu.Config4Wide(), false, 40_000, 100_000)
			_, sl := runWorkload(t, w, cpu.Config4Wide(), true, 40_000, 100_000)
			speedup := float64(base.Cycles)/float64(sl.Cycles) - 1
			t.Logf("%s: base %.3f IPC, slices %.3f IPC, speedup %.1f%%",
				name, base.IPC(), sl.IPC(), speedup*100)
			for _, s := range speedupExpected {
				if s == name && speedup < 0.005 {
					t.Errorf("expected a speedup, got %.2f%%", speedup*100)
				}
			}
			if speedup < -0.05 {
				t.Errorf("slices slowed %s down by %.1f%%", name, -speedup*100)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("vpr"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if len(All()) != 12 {
		t.Errorf("All() = %d workloads", len(All()))
	}
}

func TestSliceMetadataComplete(t *testing.T) {
	for _, w := range All() {
		for _, sl := range w.Slices {
			if sl.StaticSize == 0 {
				t.Errorf("%s: slice %s has no StaticSize", w.Name, sl.Name)
			}
			if sl.ForkPC == 0 || sl.SlicePC == 0 {
				t.Errorf("%s: slice %s missing PCs", w.Name, sl.Name)
			}
			if len(sl.LiveIns) == 0 {
				t.Errorf("%s: slice %s has no live-ins", w.Name, sl.Name)
			}
			if len(sl.LiveIns) > 4 {
				t.Errorf("%s: slice %s has %d live-ins; the paper says rarely more than 4",
					w.Name, sl.Name, len(sl.LiveIns))
			}
			// Slice code must exist in the image.
			if _, ok := w.Image.At(sl.SlicePC); !ok {
				t.Errorf("%s: slice %s code missing from image", w.Name, sl.Name)
			}
			if _, ok := w.Image.At(sl.ForkPC); !ok {
				t.Errorf("%s: slice %s fork PC missing from image", w.Name, sl.Name)
			}
			for _, p := range sl.PGIs {
				if _, ok := w.Image.At(p.SlicePC); !ok {
					t.Errorf("%s: PGI at %#x not in image", w.Name, p.SlicePC)
				}
				if in, ok := w.Image.At(p.BranchPC); !ok || !in.IsCondBranch() {
					t.Errorf("%s: PGI target %#x is not a conditional branch", w.Name, p.BranchPC)
				}
			}
		}
	}
}
