package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Gcc reproduces the rtx-walk failure mode of §6.2: functions that switch
// on a node's type code and recursively descend a tree-like structure.
// The switch is an indirect jump whose target depends on freshly loaded
// data, the traversal order is unpredictable, and computing it is a
// substantial fraction of the function — so profitable slices are hard to
// build. The token slice here only prefetches each walk's root node and
// predicts its first type-test, yielding (correctly) almost nothing.
func Gcc() *Workload {
	const (
		nNodes   = 65536
		nRoots   = 4096
		arena    = uint64(0x1000000) // 4 MB of rtx nodes
		roots    = uint64(DataBase)
		jumpTab  = uint64(GlobalBase + 0x100)
		stackB   = uint64(0x300000)
		outerBig = 1 << 40
	)
	const (
		rOuter = isa.Reg(1)
		rIdx   = isa.Reg(2)
		rNode  = isa.Reg(3)
		rCode  = isa.Reg(4)
		rTgt   = isa.Reg(5)
		rSP    = isa.Reg(6) // work-stack pointer
		rTmp   = isa.Reg(9)
		rAddr  = isa.Reg(10)
		rAcc   = isa.Reg(11)
		rCmp   = isa.Reg(12)
		rChild = isa.Reg(13)
		rRoots = isa.Reg(27)
		rJT    = isa.Reg(26)
		rPivot = isa.Reg(25)
	)

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rRoots, int64(roots))
	b.Li(rJT, int64(jumpTab))
	b.Li(rPivot, 4)
	b.Li(rOuter, outerBig)

	b.Label("pass_loop")
	b.I(isa.ADDI, rIdx, rIdx, 1)
	b.I(isa.ANDI, rTmp, rIdx, nRoots-1)
	b.R(isa.S8ADD, rAddr, rTmp, rRoots)
	b.Label("walk_rtx") // fork point
	b.Ld(rNode, 0, rAddr)
	b.Li(rSP, int64(stackB))
	b.St(rNode, 0, rSP)
	b.I(isa.ADDI, rSP, rSP, 8)

	b.Label("walk_loop")
	b.Li(rTmp, int64(stackB))
	b.R(isa.CMPULE, rCmp, rSP, rTmp)
	b.B(isa.BNE, rCmp, "pass_done") // stack empty
	b.I(isa.ADDI, rSP, rSP, -8)
	b.Ld(rNode, 0, rSP) // pop
	b.Label("ld_code")
	b.Ld(rCode, 0, rNode) //                       ← problem load
	// Root-order predicate the token slice covers.
	b.R(isa.CMPLT, rCmp, rCode, rPivot)
	b.Label("order_branch")
	b.B(isa.BEQ, rCmp, "hi_code") //               ← problem branch
	b.I(isa.ADDI, rAcc, rAcc, 1)
	b.Label("hi_code")
	// The rtx switch: an unpredictable indirect dispatch.
	b.I(isa.ANDI, rTmp, rCode, 7)
	b.R(isa.S8ADD, rAddr, rTmp, rJT)
	b.Ld(rTgt, 0, rAddr)
	b.Label("rtx_switch")
	b.Jmp(rTgt) //                                 ← problem indirect branch

	// Handlers 0-3: descend both children.
	b.Label("h_both")
	b.Ld(rChild, 8, rNode)
	b.B(isa.BEQ, rChild, "h_both_r")
	b.St(rChild, 0, rSP)
	b.I(isa.ADDI, rSP, rSP, 8)
	b.Label("h_both_r")
	b.Ld(rChild, 16, rNode)
	b.B(isa.BEQ, rChild, "walk_loop")
	b.St(rChild, 0, rSP)
	b.I(isa.ADDI, rSP, rSP, 8)
	b.Br("walk_loop")
	// Handlers 4-5: descend left only.
	b.Label("h_left")
	b.Ld(rChild, 8, rNode)
	b.B(isa.BEQ, rChild, "walk_loop")
	b.St(rChild, 0, rSP)
	b.I(isa.ADDI, rSP, rSP, 8)
	b.Br("walk_loop")
	// Handlers 6-7: leaves.
	b.Label("h_leaf")
	b.R(isa.ADD, rAcc, rAcc, rCode)
	b.Br("walk_loop")

	b.Label("pass_done") //                        slice kill
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "pass_loop")
	b.Halt()
	main := b.MustBuild()

	// Token slice: prefetch the root and predict its order branch once.
	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	sb.Ld(2, 0, rAddr) // root pointer (live-in is the root slot address)
	sb.Ld(3, 0, 2)     // root->code (prefetch)
	sb.Label("slice_pgi")
	sb.R(isa.CMPLT, 4, 3, rPivot) // PRED
	sb.Halt()
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:    "gcc.walk_root",
		ForkPC:  main.PC("walk_rtx"),
		SlicePC: sliceProg.PC("slice"),
		LiveIns: []isa.Reg{rAddr, rPivot},
		PGIs: []slicehw.PGI{{
			SlicePC:     sliceProg.PC("slice_pgi"),
			BranchPC:    main.PC("order_branch"),
			TakenIfZero: true,
		}},
		// One loop kill inside the walk (after the covered branch) keeps
		// the queue aligned when the branch re-executes for non-root
		// nodes.
		LoopKillPC:     main.PC("rtx_switch"),
		SliceKillPC:    main.PC("pass_done"),
		CoveredLoadPCs: []uint64{main.PC("ld_code")},
	}
	countStatic(sliceProg, sl, "")

	initMem := func(m *mem.Memory) {
		r := newRand(6502)
		// Jump table.
		handlers := []string{"h_both", "h_both", "h_both", "h_both", "h_left", "h_left", "h_leaf", "h_leaf"}
		for i, h := range handlers {
			m.WriteU64(jumpTab+uint64(i)*8, main.PC(h))
		}
		// Scattered nodes with random codes and random child links
		// forming shallow DAGs (bounded walks).
		slots := r.perm(nNodes)
		addrOf := func(i int) uint64 { return arena + uint64(slots[i])*64 }
		for i := 0; i < nNodes; i++ {
			a := addrOf(i)
			m.WriteU64(a, uint64(r.intn(8)))
			var l, rr uint64
			if c := i * 2; c+2 < nNodes {
				l, rr = addrOf(c+1), addrOf(c+2)
			}
			m.WriteU64(a+8, l)
			m.WriteU64(a+16, rr)
		}
		// Roots point high in the implicit tree so walks stay shallow:
		// pick nodes whose subtrees are leaves-ish.
		for i := 0; i < nRoots; i++ {
			m.WriteU64(roots+uint64(i)*8, addrOf(nNodes/4+r.intn(nNodes/2)))
		}
	}

	return &Workload{
		Name: "gcc",
		Description: "rtx tree walks: data-dependent indirect switch dispatch and " +
			"unpredictable traversal order (§6.2 failure case)",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 150_000,
	}
}
