package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Crafty reproduces the chess engine's bit-scan loops (FirstOne/LastOne):
// move generation peels set bits off random bitboards, with one
// geometrically distributed branch per bit examined. Attack tables stay
// L1-resident, so crafty is branch-dominated with a low PDE density — and
// as the paper's footnote 3 notes, the opportunity is limited, so the
// slice buys little.
func Crafty() *Workload {
	const outerBig = 1 << 40
	const (
		rOuter = isa.Reg(1)
		rBB    = isa.Reg(2)
		rBit   = isa.Reg(3)
		rCount = isa.Reg(4)
		rAtk   = isa.Reg(5)
		rTmp   = isa.Reg(9)
		rAddr  = isa.Reg(10)
		rAcc   = isa.Reg(11)
		rTab   = isa.Reg(27)
		rRng   = isa.Reg(20)
		rMixed = isa.Reg(21)
	)
	const attackTab = uint64(DataBase) // 8 KB attack table — L1-resident

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rTab, int64(attackTab))
	b.Li(rRng, 0x67037ED1A0B428DB)
	b.Li(rOuter, outerBig)

	b.Label("gen_moves")
	xorshift(b, rRng, rTmp)
	// Carry-mix the bitboard so successive bits are nonlinear in the
	// state (a raw xorshift stream is GF(2)-linear and YAGS learns it).
	b.I(isa.SLLI, rTmp, rRng, 13)
	b.R(isa.ADD, rTmp, rTmp, rRng)
	b.R(isa.XOR, rMixed, rTmp, rRng)
	b.I(isa.SRLI, rMixed, rMixed, 14)
	b.Label("first_one") // fork point
	// Board bookkeeping the fork is hoisted past.
	for i := 0; i < 8; i++ {
		b.I(isa.ADDI, rAcc, rAcc, 1)
		b.I(isa.XORI, rTmp, rAcc, 0x0F)
	}
	b.Mov(rBB, rMixed)
	b.I(isa.LDI, rCount, 0, 0)
	b.Label("bit_loop")
	b.I(isa.ANDI, rBit, rBB, 1)
	b.Label("bit_branch")
	b.B(isa.BNE, rBit, "bit_found") //             ← problem branch (p=1/2 per bit)
	b.I(isa.SRLI, rBB, rBB, 1)
	b.I(isa.ADDI, rCount, rCount, 1)
	b.Label("bit_latch")
	b.Br("bit_loop") //                            loop-iteration kill
	b.Label("bit_found")
	// Attack table lookup (hits the L1).
	b.I(isa.ANDI, rTmp, rCount, 1023)
	b.R(isa.S8ADD, rAddr, rTmp, rTab)
	b.Ld(rAtk, 0, rAddr)
	b.R(isa.ADD, rAcc, rAcc, rAtk)
	b.Label("move_done") //                        slice kill
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "gen_moves")
	b.Halt()
	main := b.MustBuild()

	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	sb.Mov(2, rMixed)
	sb.Label("slice_loop")
	sb.Label("slice_pgi")
	sb.I(isa.ANDI, 3, 2, 1) // low bit set? PRED (taken iff 1)
	sb.I(isa.SRLI, 2, 2, 1)
	sb.Label("slice_back")
	sb.Br("slice_loop")
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:       "crafty.first_one",
		ForkPC:     main.PC("first_one"),
		SlicePC:    sliceProg.PC("slice"),
		LiveIns:    []isa.Reg{rMixed},
		MaxLoops:   16,
		LoopBackPC: sliceProg.PC("slice_back"),
		PGIs: []slicehw.PGI{{
			SlicePC:  sliceProg.PC("slice_pgi"),
			BranchPC: main.PC("bit_branch"),
			// BNE on the extracted bit: taken iff nonzero.
			TakenIfZero: false,
		}},
		LoopKillPC:  main.PC("bit_latch"),
		SliceKillPC: main.PC("move_done"),
	}
	countStatic(sliceProg, sl, "slice_loop")

	initMem := func(m *mem.Memory) {
		r := newRand(64)
		for i := 0; i < 1024; i++ {
			m.WriteU64(attackTab+uint64(i)*8, uint64(r.intn(256)))
		}
	}

	return &Workload{
		Name: "crafty",
		Description: "chess move generation: bit-scan loops over random bitboards " +
			"with L1-resident attack tables",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 100_000,
	}
}
