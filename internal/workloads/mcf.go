package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Mcf reproduces mcf's network-simplex refresh: the program repeatedly
// walks linked lists of arc nodes scattered over a 4 MB arena (larger than
// the L2), loading each node's cost and comparing it against the current
// pivot. The node loads miss to memory and the cost branch is
// data-dependent and unbiased.
//
// One long-running "background" slice (§6.1) forked at the start of each
// list walk chases the *next* list's pointers, pulling node lines toward
// the L1 a full list ahead; since it loads each node's cost anyway, its
// compare doubles as the PGI for the cost branch (slice aggregation,
// §3.2). It terminates by dereferencing the null list end — the exception
// termination of §3.2 — or by its profiled iteration bound. Without the
// full-list hoist this slice would be "consistently late", which is
// exactly what the paper reports for its mcf tree prefetcher.
func Mcf() *Workload {
	const (
		nLists   = 1024
		nPer     = 32 // nodes per list
		nNodes   = nLists * nPer
		nodeSize = 64
		arena    = uint64(0x1000000) // 2 MB of nodes at 64 B — stride-scattered
		heads    = uint64(DataBase)  // list-head pointer array
		outerBig = 1 << 40
	)
	const (
		rOuter = isa.Reg(1)
		rList  = isa.Reg(2)
		rHeadP = isa.Reg(3)
		rNode  = isa.Reg(4)
		rCost  = isa.Reg(5)
		rCmp   = isa.Reg(6)
		rCount = isa.Reg(7)
		rTmp   = isa.Reg(8)
		rAcc   = isa.Reg(9)
		rAcc2  = isa.Reg(10)
		rHeads = isa.Reg(27)
		rNL    = isa.Reg(26)
		rPivot = isa.Reg(25)
	)

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rHeads, int64(heads))
	b.I(isa.LDI, rNL, 0, nLists)
	b.Li(rPivot, 1<<19) // median of the 20-bit cost distribution
	b.Li(rOuter, outerBig)

	b.Label("outer")
	b.I(isa.LDI, rList, 0, 0)
	b.Label("list_loop") // fork point for both slices
	b.R(isa.S8ADD, rHeadP, rList, rHeads)
	b.Ld(rNode, 0, rHeadP)
	b.B(isa.BEQ, rNode, "next_list")

	b.Label("walk")
	b.Label("ld_cost")
	b.Ld(rCost, 8, rNode) //                       ← problem load
	// Arc bookkeeping: the per-node work of the simplex refresh.
	b.R(isa.ADD, rAcc, rAcc, rCost)
	b.I(isa.XORI, rTmp, rCost, 0x3F)
	b.R(isa.ADD, rAcc2, rAcc2, rTmp)
	b.I(isa.SRLI, rTmp, rAcc, 3)
	b.R(isa.XOR, rAcc2, rAcc2, rTmp)
	b.R(isa.CMPLT, rCmp, rCost, rPivot)
	b.Label("cost_branch")
	b.B(isa.BEQ, rCmp, "skip") //                  ← problem branch
	b.I(isa.ADDI, rCount, rCount, 1)
	b.Label("skip")
	b.Label("ld_next")
	b.Ld(rNode, 0, rNode) // node = node->next     ← problem load
	b.Label("walk_latch")
	b.B(isa.BNE, rNode, "walk") //                 loop-iteration kill PC

	b.Label("next_list") //                        slice kill PC
	b.I(isa.ADDI, rList, rList, 1)
	b.R(isa.CMPLT, rTmp, rList, rNL)
	b.B(isa.BNE, rTmp, "list_loop")
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "outer")
	b.Halt()
	main := b.MustBuild()

	// Background chase of list i+1: prefetches the node lines a full list
	// ahead and, since it loads each cost anyway, its compare doubles as
	// the PGI for the cost branch (slice aggregation, §3.2).
	sb := asm.NewBuilder(SliceBase)
	sb.Label("chase")
	sb.I(isa.ADDI, 2, rList, 1) // next list index
	sb.I(isa.CMPLTI, 8, 2, nLists)
	sb.R(isa.CMOVEQ, 2, 8, isa.Zero) // wrap to list 0
	sb.R(isa.S8ADD, 3, 2, rHeads)
	sb.Ld(4, 0, 3) // node = head[i+1]
	sb.Label("chase_loop")
	sb.Ld(5, 8, 4) // cost field (prefetches the node line)
	sb.Label("chase_pgi")
	sb.R(isa.CMPLT, 6, 5, rPivot) // (cost < pivot) PRED
	sb.Ld(4, 0, 4)                // next — terminates by null dereference
	sb.Label("chase_back")
	sb.Br("chase_loop")
	chaseProg := sb.MustBuild()

	chase := &slicehw.Slice{
		Name:       "mcf.chase_next",
		ForkPC:     main.PC("list_loop"),
		SlicePC:    chaseProg.PC("chase"),
		LiveIns:    []isa.Reg{rList, rHeads, rPivot},
		MaxLoops:   nPer + 8,
		LoopBackPC: chaseProg.PC("chase_back"),
		PGIs: []slicehw.PGI{{
			SlicePC:     chaseProg.PC("chase_pgi"),
			BranchPC:    main.PC("cost_branch"),
			TakenIfZero: true,
		}},
		LoopKillPC:         main.PC("walk_latch"),
		SliceKillPC:        main.PC("next_list"),
		SliceKillSkipFirst: true,
		CoveredLoadPCs:     []uint64{main.PC("ld_cost"), main.PC("ld_next")},
	}
	countStatic(chaseProg, chase, "chase_loop")

	initMem := func(m *mem.Memory) {
		r := newRand(1337)
		// Scatter nodes: a permutation of the arena slots defeats the
		// stream prefetcher, like mcf's pointer-heavy tree.
		slots := r.perm(nNodes)
		idx := 0
		for l := 0; l < nLists; l++ {
			var prev uint64
			for k := 0; k < nPer; k++ {
				addr := arena + uint64(slots[idx])*nodeSize*2 // 2x stride: 4 MB footprint
				idx++
				if k == 0 {
					m.WriteU64(heads+uint64(l)*8, addr)
				} else {
					m.WriteU64(prev, addr)
				}
				m.WriteU64(addr+8, uint64(r.intn(1<<20))) // cost
				prev = addr
			}
			m.WriteU64(prev, 0) // null terminator
		}
	}

	return &Workload{
		Name: "mcf",
		Description: "network simplex refresh: scattered linked-list walks with " +
			"memory-latency-bound node loads and unbiased cost compares",
		Entry:           main.Base,
		Image:           mustImage(main, chaseProg),
		Slices:          []*slicehw.Slice{chase},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 150_000,
	}
}
