package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Gzip reproduces deflate's longest-match search: hash-chain walks through
// a window of low-entropy text. Each chain step loads a candidate position
// from the chain table and compares window bytes — the byte-equality
// branch is a coin flip on two-symbol data, and Table 4 shows gzip's
// entire speedup comes from removing those mispredictions.
//
// The slice walks the same chain one compare per iteration, with the
// window head byte register-allocated as a live-in (the paper's "removing
// communication through memory" optimization).
func Gzip() *Workload {
	const (
		winBytes  = 256 << 10 // window: 256 KB of 2-symbol text
		chainEnts = 64 << 10
		winBase   = uint64(0x400000)
		chainBase = uint64(0x600000)
		depth     = 8 // chain search depth
		outerBig  = 1 << 40
	)
	const (
		rOuter = isa.Reg(1)
		rCur   = isa.Reg(2) // current position
		rHpos  = isa.Reg(3) // chain cursor
		rPos   = isa.Reg(4) // candidate position
		rCA    = isa.Reg(5) // candidate byte
		rCB    = isa.Reg(6) // current byte
		rEq    = isa.Reg(7)
		rDepth = isa.Reg(8)
		rTmp   = isa.Reg(9)
		rAddr  = isa.Reg(10)
		rMatch = isa.Reg(11)
		rWin   = isa.Reg(27)
		rChain = isa.Reg(26)
		rRng   = isa.Reg(20)
	)

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rWin, int64(winBase))
	b.Li(rChain, int64(chainBase))
	b.Li(rRng, 0x3F58476D1CE4E5B9)
	b.Li(rOuter, outerBig)

	b.Label("deflate_loop")
	xorshift(b, rRng, rTmp)
	b.I(isa.ANDI, rCur, rRng, winBytes-1)
	b.I(isa.SRLI, rHpos, rRng, 24)
	b.I(isa.ANDI, rHpos, rHpos, chainEnts-1)
	b.Label("match_start") // fork point
	// Hash insertion bookkeeping the fork is hoisted past.
	for i := 0; i < 5; i++ {
		b.I(isa.ADDI, rMatch, rMatch, 1)
		b.I(isa.XORI, rTmp, rMatch, 0x6B)
	}
	b.R(isa.ADD, rAddr, rWin, rCur)
	b.Ldbu(rCB, 0, rAddr) // window[cur] — the head byte
	b.Label("fork_match") // fork point: rCB and rHpos are both live
	b.I(isa.LDI, rDepth, 0, depth)

	b.Label("chain_loop")
	b.R(isa.S8ADD, rAddr, rHpos, rChain)
	b.Label("ld_chain")
	b.Ld(rPos, 0, rAddr) // chain[hpos]            ← problem load
	b.I(isa.ANDI, rPos, rPos, winBytes-1)
	b.R(isa.ADD, rAddr, rWin, rPos)
	b.Label("ld_window")
	b.Ldbu(rCA, 0, rAddr) // window[pos]           ← problem load
	b.R(isa.CMPEQ, rEq, rCA, rCB)
	b.Label("match_branch")
	b.B(isa.BEQ, rEq, "no_match") //               ← problem branch (p≈1/2)
	b.I(isa.ADDI, rMatch, rMatch, 1)
	b.Label("no_match")
	b.I(isa.ANDI, rHpos, rPos, chainEnts-1) // follow the chain
	b.I(isa.ADDI, rDepth, rDepth, -1)
	b.Label("chain_latch")
	b.B(isa.BGT, rDepth, "chain_loop") //          loop-iteration kill
	b.Label("match_done")              //                       slice kill
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "deflate_loop")
	b.Halt()
	main := b.MustBuild()

	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	// Hoisted one match ahead: replicate the state update twice, then
	// derive the next search's window position and chain start.
	sb.Mov(10, rRng)
	for k := 0; k < 2; k++ {
		xorshift(sb, 10, 11)
	}
	sb.I(isa.ANDI, 12, 10, winBytes-1) // cur'
	sb.I(isa.SRLI, 13, 10, 24)
	sb.I(isa.ANDI, 13, 13, chainEnts-1) // hpos'
	sb.R(isa.ADD, 14, rWin, 12)
	sb.Ldbu(6, 0, 14) // window[cur'] — the head byte
	sb.Label("slice_loop")
	sb.R(isa.S8ADD, 15, 13, rChain)
	sb.Ld(16, 0, 15) // chain[hpos'] (prefetch)
	sb.I(isa.ANDI, 16, 16, winBytes-1)
	sb.R(isa.ADD, 17, rWin, 16)
	sb.Ldbu(18, 0, 17) // window[pos] (prefetch)
	sb.Label("slice_pgi")
	sb.R(isa.CMPEQ, 19, 18, 6) // == window[cur']? PRED
	sb.I(isa.ANDI, 13, 16, chainEnts-1)
	sb.Label("slice_back")
	sb.Br("slice_loop")
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:       "gzip.longest_match_next",
		ForkPC:     main.PC("deflate_loop"),
		SlicePC:    sliceProg.PC("slice"),
		LiveIns:    []isa.Reg{rRng, rWin, rChain},
		MaxLoops:   depth + 2,
		LoopBackPC: sliceProg.PC("slice_back"),
		PGIs: []slicehw.PGI{{
			SlicePC:     sliceProg.PC("slice_pgi"),
			BranchPC:    main.PC("match_branch"),
			TakenIfZero: true,
		}},
		LoopKillPC:         main.PC("chain_latch"),
		SliceKillPC:        main.PC("match_done"),
		SliceKillSkipFirst: true,
		CoveredLoadPCs:     []uint64{main.PC("ld_chain"), main.PC("ld_window")},
	}
	countStatic(sliceProg, sl, "slice_loop")

	initMem := func(m *mem.Memory) {
		r := newRand(7777)
		buf := make([]byte, winBytes)
		for i := range buf {
			buf[i] = byte('a' + r.intn(2)) // two-symbol text
		}
		m.WriteBytes(winBase, buf)
		for i := 0; i < chainEnts; i++ {
			m.WriteU64(chainBase+uint64(i)*8, uint64(r.intn(winBytes)))
		}
	}

	return &Workload{
		Name: "gzip",
		Description: "deflate longest-match search: hash-chain walks with coin-flip " +
			"byte-equality branches over two-symbol text",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 150_000,
	}
}
