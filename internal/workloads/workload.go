// Package workloads contains the twelve synthetic SPEC2000-stand-in
// kernels and their hand-constructed speculative slices. Each kernel
// reproduces the hot-loop structure the paper attributes its problem
// instructions to — the vpr heap insertion of Figure 2, mcf's pointer
// chasing, gzip's match loops, gcc's rtx switch walks, parser's hash
// probes and deallocation cascades, and so on — with working sets sized
// against the simulated 64 KB L1 / 2 MB L2.
//
// Slices follow the construction process of §3.2: aggregated over
// inter-dependent problem instructions, forked early at a control-
// equivalent point hoisted past unrelated code, optimized by removing
// communication through memory and strength reduction, loop-encapsulated,
// and terminated by a profiled maximum iteration count.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Address-space conventions shared by all workloads.
const (
	// MainBase is where each kernel's program text starts.
	MainBase = 0x1000
	// SliceBase is where slice code lives ("stored as normal instructions
	// in the instruction cache", §4.2).
	SliceBase = 0x100000
	// GlobalBase is the globals page addressed through isa.GP.
	GlobalBase = 0x10000
	// DataBase is the first data region address.
	DataBase = 0x200000
)

// Workload is one benchmark: program image, memory initializer, entry
// point, and its speculative slices.
//
// Concurrency: a single *Workload may back many simultaneously running
// cores. Image, Slices, and the memoized slice table are immutable after
// construction and safe to share; per-run mutable state (the memory) is
// created fresh by NewMemory for every run.
type Workload struct {
	Name        string
	Description string
	Entry       uint64
	// Image is the program + slice code. The core only reads it (fetch
	// returns pointers into immutable asm.Program instruction arrays), so
	// concurrent cores share one Image safely.
	Image  *asm.Image
	Slices []*slicehw.Slice
	// InitMem populates a fresh memory with the workload's data.
	InitMem func(m *mem.Memory)
	// SuggestedRun is a measurement region length that exercises the
	// steady-state behaviour (instructions).
	SuggestedRun uint64
	// SuggestedWarmup warms caches and predictors first (instructions).
	SuggestedWarmup uint64

	tableOnce sync.Once
	table     *slicehw.Table
}

// NewMemory returns a freshly initialized memory for one run.
func (w *Workload) NewMemory() *mem.Memory {
	m := mem.New()
	if w.InitMem != nil {
		w.InitMem(m)
	}
	return m
}

// SliceTable returns the front-end slice/PGI table for this workload,
// building it on first use. The table is built exactly once per Workload:
// slicehw.NewTable assigns slice indices, so rebuilding it per run would
// race when concurrent cores share one Workload. The table itself is
// read-only after construction and safe to share across cores.
func (w *Workload) SliceTable() *slicehw.Table {
	w.tableOnce.Do(func() { w.table = slicehw.MustTable(w.Slices) })
	return w.table
}

// All returns every workload, in the paper's Table 2 order.
func All() []*Workload {
	return []*Workload{
		Bzip2(), Crafty(), Eon(), Gap(), Gcc(), Gzip(),
		Mcf(), Parser(), Perl(), Twolf(), Vortex(), VPR(),
	}
}

// ByName finds a workload.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	var names []string
	for _, w := range All() {
		names = append(names, w.Name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, names)
}

// xorshift emits the three-instruction xorshift scramble used as the
// deterministic per-iteration "random" value generator (state in reg st,
// scratch in tmp). The stream is uniform enough that comparison branches
// driven by it are unbiased — the defining property of problem branches.
func xorshift(b *asm.Builder, st, tmp isa.Reg) {
	b.I(isa.SLLI, tmp, st, 13)
	b.R(isa.XOR, st, st, tmp)
	b.I(isa.SRLI, tmp, st, 7)
	b.R(isa.XOR, st, st, tmp)
	b.I(isa.SLLI, tmp, st, 17)
	b.R(isa.XOR, st, st, tmp)
}

// goRand is a small deterministic generator for memory initialization.
type goRand struct{ s uint64 }

func newRand(seed uint64) *goRand { return &goRand{s: seed | 1} }

func (r *goRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *goRand) intn(n int) int { return int(r.next() % uint64(n)) }

// perm returns a deterministic permutation of [0, n).
func (r *goRand) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// countStatic fills in a slice's StaticSize/LoopSize from its program.
func countStatic(p *asm.Program, s *slicehw.Slice, loopLabel string) {
	s.StaticSize = len(p.Insts)
	if loopLabel != "" {
		loopPC := p.PC(loopLabel)
		s.LoopSize = int((p.End() - loopPC) / isa.InstBytes)
	}
}

// mustImage combines the main program and slice programs.
func mustImage(progs ...*asm.Program) *asm.Image {
	im, err := asm.NewImage(progs...)
	if err != nil {
		panic(err)
	}
	return im
}
