package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Bzip2 reproduces the block-sorting comparator: suffix comparisons
// between random offsets in a 1 MB low-entropy block. The first byte
// touch at each random offset misses the L1, and the per-byte equality
// branch is a coin flip on two-symbol data — the concentrated PDEs of
// Table 2's bzip2 row.
//
// The slice replays the byte-compare loop with both offsets as live-ins,
// prefetching the block lines and predicting the continue/differ branch
// each iteration.
func Bzip2() *Workload {
	const (
		blockBytes = 1 << 20
		maxLen     = 12
		blockBase  = uint64(0x400000)
		outerBig   = 1 << 40
	)
	const (
		rOuter = isa.Reg(1)
		rOffA  = isa.Reg(2)
		rOffB  = isa.Reg(3)
		rI     = isa.Reg(4)
		rCA    = isa.Reg(5)
		rCB    = isa.Reg(6)
		rEq    = isa.Reg(7)
		rCont  = isa.Reg(8)
		rTmp   = isa.Reg(9)
		rAddr  = isa.Reg(10)
		rAcc   = isa.Reg(11)
		rBlk   = isa.Reg(27)
		rRng   = isa.Reg(20)
	)

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rBlk, int64(blockBase))
	b.Li(rRng, 0x2545F4914F6CDD1D)
	b.Li(rOuter, outerBig)

	b.Label("sort_loop")
	xorshift(b, rRng, rTmp)
	b.I(isa.ANDI, rOffA, rRng, blockBytes-64)
	b.I(isa.SRLI, rTmp, rRng, 22)
	b.I(isa.ANDI, rOffB, rTmp, blockBytes-64)
	b.Label("cmp_suffixes") // fork point
	// Pointer bookkeeping the fork is hoisted past.
	for i := 0; i < 4; i++ {
		b.I(isa.ADDI, rAcc, rAcc, 1)
		b.I(isa.XORI, rTmp, rAcc, 0x33)
	}
	b.I(isa.LDI, rI, 0, 0)

	b.Label("cmp_loop")
	b.R(isa.ADD, rAddr, rBlk, rOffA)
	b.R(isa.ADD, rAddr, rAddr, rI)
	b.Label("ld_byteA")
	b.Ldbu(rCA, 0, rAddr) //                       ← problem load
	b.R(isa.ADD, rAddr, rBlk, rOffB)
	b.R(isa.ADD, rAddr, rAddr, rI)
	b.Label("ld_byteB")
	b.Ldbu(rCB, 0, rAddr) //                       ← problem load
	b.R(isa.CMPEQ, rEq, rCA, rCB)
	b.Label("cmp_branch")
	b.B(isa.BEQ, rEq, "differ") //                 ← problem branch (p≈1/2)
	b.I(isa.ADDI, rI, rI, 1)
	b.I(isa.CMPLTI, rCont, rI, maxLen)
	b.Label("cmp_latch")
	b.B(isa.BNE, rCont, "cmp_loop") //             loop-iteration kill
	b.Label("differ")
	// Use the comparison result: branch on byte order.
	b.R(isa.CMPLT, rTmp, rCA, rCB)
	b.Label("order_branch")
	b.B(isa.BEQ, rTmp, "no_swap") //               ← second problem branch
	b.I(isa.ADDI, rAcc, rAcc, 1)
	b.Label("no_swap")
	b.Label("sort_done") //                        slice kill
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "sort_loop")
	b.Halt()
	main := b.MustBuild()

	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	// Hoisted one comparison ahead: replicate the state update twice to
	// compute the next comparison's offsets.
	sb.Mov(10, rRng)
	for k := 0; k < 2; k++ {
		xorshift(sb, 10, 11)
	}
	sb.I(isa.ANDI, 12, 10, blockBytes-64) // offA'
	sb.I(isa.SRLI, 13, 10, 22)
	sb.I(isa.ANDI, 13, 13, blockBytes-64) // offB'
	sb.R(isa.ADD, 12, 12, rBlk)
	sb.R(isa.ADD, 13, 13, rBlk)
	sb.Label("slice_loop")
	sb.Ldbu(5, 0, 12) // block[offA'+i] (prefetch)
	sb.Ldbu(6, 0, 13) // block[offB'+i] (prefetch)
	sb.Label("slice_pgi")
	sb.R(isa.CMPEQ, 7, 5, 6) // bytes equal? PRED (continue iff equal)
	sb.I(isa.ADDI, 12, 12, 1)
	sb.I(isa.ADDI, 13, 13, 1)
	sb.Label("slice_back")
	sb.Br("slice_loop")
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:       "bzip2.suffix_cmp_next",
		ForkPC:     main.PC("sort_loop"),
		SlicePC:    sliceProg.PC("slice"),
		LiveIns:    []isa.Reg{rRng, rBlk},
		MaxLoops:   maxLen + 2,
		LoopBackPC: sliceProg.PC("slice_back"),
		PGIs: []slicehw.PGI{{
			SlicePC:     sliceProg.PC("slice_pgi"),
			BranchPC:    main.PC("cmp_branch"),
			TakenIfZero: true, // "differ" taken when the compare is 0
		}},
		LoopKillPC:         main.PC("cmp_latch"),
		SliceKillPC:        main.PC("sort_done"),
		SliceKillSkipFirst: true,
		CoveredLoadPCs:     []uint64{main.PC("ld_byteA"), main.PC("ld_byteB")},
	}
	countStatic(sliceProg, sl, "slice_loop")

	initMem := func(m *mem.Memory) {
		r := newRand(2222)
		buf := make([]byte, blockBytes)
		for i := range buf {
			buf[i] = byte('a' + r.intn(2))
		}
		m.WriteBytes(blockBase, buf)
	}

	return &Workload{
		Name: "bzip2",
		Description: "block-sorting comparator: suffix byte compares at random " +
			"offsets in a 1 MB two-symbol block",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 150_000,
	}
}
