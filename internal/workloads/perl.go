package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Perl reproduces the interpreter's symbol-table probes: hash-bucket
// chains of scattered entries, walked to find the ordered insertion point
// for a new key. The entry loads miss and the ordering compare is
// unbiased — the same "dereference then test" shape as vpr's heap.
//
// The slice chases the same chain, prefetching entries and predicting the
// ordering branch; it terminates at the chain's null pointer (exception
// termination) or its iteration bound.
func Perl() *Workload {
	const (
		nBuckets = 16384
		chainLen = 6
		heads    = uint64(DataBase)
		arena    = uint64(0x800000)
		outerBig = 1 << 40
	)
	const (
		rOuter = isa.Reg(1)
		rKey   = isa.Reg(2)
		rH     = isa.Reg(3)
		rEnt   = isa.Reg(4)
		rK     = isa.Reg(5)
		rCmp   = isa.Reg(6)
		rVal   = isa.Reg(7)
		rTmp   = isa.Reg(9)
		rAddr  = isa.Reg(10)
		rAcc   = isa.Reg(11)
		rHeads = isa.Reg(27)
		rRng   = isa.Reg(20)
	)

	b := asm.NewBuilder(MainBase)
	b.Li(isa.GP, int64(GlobalBase))
	b.Li(rHeads, int64(heads))
	b.Li(rRng, 0x20761D6478BD642F)
	b.Li(rOuter, outerBig)

	b.Label("interp_loop")
	xorshift(b, rRng, rTmp)
	b.I(isa.ANDI, rKey, rRng, 0xFFFFF)
	b.I(isa.SRLI, rH, rRng, 30)
	b.I(isa.ANDI, rH, rH, nBuckets-1)
	b.Label("hash_lookup") // fork point
	// Hash mixing the fork is hoisted past.
	for i := 0; i < 5; i++ {
		b.I(isa.ADDI, rAcc, rAcc, 1)
		b.I(isa.XORI, rTmp, rAcc, 0x19)
	}
	b.R(isa.S8ADD, rAddr, rH, rHeads)
	b.Ld(rEnt, 0, rAddr) // bucket head

	b.Label("probe_loop")
	b.B(isa.BEQ, rEnt, "probe_done")
	b.Label("ld_entkey")
	b.Ld(rK, 0, rEnt) //                           ← problem load
	b.R(isa.CMPLT, rCmp, rK, rKey)
	b.Label("probe_branch")
	b.B(isa.BEQ, rCmp, "probe_done") //            ← problem branch (ordered insert)
	b.Ld(rVal, 16, rEnt)
	b.R(isa.ADD, rAcc, rAcc, rVal)
	b.Label("ld_next")
	b.Ld(rEnt, 8, rEnt) //                         ← problem load
	b.Label("probe_latch")
	b.Br("probe_loop")    //                          loop-iteration kill
	b.Label("probe_done") //                       slice kill
	b.I(isa.ADDI, rOuter, rOuter, -1)
	b.B(isa.BGT, rOuter, "interp_loop")
	b.Halt()
	main := b.MustBuild()

	sb := asm.NewBuilder(SliceBase)
	sb.Label("slice")
	// Hoisted one lookup ahead: replicate the state update twice for the
	// next key and bucket, then chase that chain.
	sb.Mov(10, rRng)
	for k := 0; k < 2; k++ {
		xorshift(sb, 10, 11)
	}
	sb.I(isa.ANDI, 12, 10, 0xFFFFF) // key'
	sb.I(isa.SRLI, 13, 10, 30)
	sb.I(isa.ANDI, 13, 13, nBuckets-1)
	sb.R(isa.S8ADD, 14, 13, rHeads)
	sb.Ld(15, 0, 14) // bucket head
	sb.Label("slice_loop")
	sb.Ld(16, 0, 15) // entry key (prefetch; null → exception terminates)
	sb.Label("slice_pgi")
	sb.R(isa.CMPLT, 17, 16, 12) // (k < key') PRED
	sb.Ld(15, 8, 15)            // next (prefetch)
	sb.Label("slice_back")
	sb.Br("slice_loop")
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:       "perl.hash_probe_next",
		ForkPC:     main.PC("interp_loop"),
		SlicePC:    sliceProg.PC("slice"),
		LiveIns:    []isa.Reg{rRng, rHeads},
		MaxLoops:   chainLen + 3,
		LoopBackPC: sliceProg.PC("slice_back"),
		PGIs: []slicehw.PGI{{
			SlicePC:     sliceProg.PC("slice_pgi"),
			BranchPC:    main.PC("probe_branch"),
			TakenIfZero: true,
		}},
		LoopKillPC:         main.PC("probe_latch"),
		SliceKillPC:        main.PC("probe_done"),
		SliceKillSkipFirst: true,
		CoveredLoadPCs:     []uint64{main.PC("ld_entkey"), main.PC("ld_next")},
	}
	countStatic(sliceProg, sl, "slice_loop")

	initMem := func(m *mem.Memory) {
		r := newRand(5150)
		slots := r.perm(nBuckets * chainLen)
		idx := 0
		for bkt := 0; bkt < nBuckets; bkt++ {
			var prev uint64
			n := 2 + r.intn(chainLen-1)
			for k := 0; k < n; k++ {
				addr := arena + uint64(slots[idx])*64
				idx++
				if k == 0 {
					m.WriteU64(heads+uint64(bkt)*8, addr)
				} else {
					m.WriteU64(prev+8, addr)
				}
				m.WriteU64(addr, uint64(r.intn(1<<20)))    // key
				m.WriteU64(addr+16, uint64(r.intn(1<<10))) // value
				m.WriteU64(addr+8, 0)                      // next (patched)
				prev = addr
			}
		}
	}

	return &Workload{
		Name: "perl",
		Description: "interpreter symbol-table probes: scattered hash chains with " +
			"unbiased ordered-insert compares",
		Entry:           main.Base,
		Image:           mustImage(main, sliceProg),
		Slices:          []*slicehw.Slice{sl},
		InitMem:         initMem,
		SuggestedRun:    400_000,
		SuggestedWarmup: 150_000,
	}
}
