package workloads_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// TestConcurrentCoresShareImageAndSlices runs several cores concurrently
// over one Workload — same Image, same slice table — under the race
// detector, and requires every replica to produce identical statistics.
// This is the safety contract the parallel experiment engine depends on:
// the shared structures are read-only, and all mutable state (core,
// memory, correlator) is per-run.
func TestConcurrentCoresShareImageAndSlices(t *testing.T) {
	w, err := workloads.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	// Touch the slice table from the main goroutine too, so the lazy
	// build races with the workers unless it is properly synchronized.
	if w.SliceTable() == nil {
		t.Fatal("nil slice table")
	}

	const replicas = 4
	const warm, run = 10_000, 20_000
	results := make([]*stats.Sim, replicas)
	var wg sync.WaitGroup
	for i := 0; i < replicas; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := cpu.Config4Wide()
			var table = w.SliceTable()
			if i%2 == 0 {
				table = nil // mix plain and slice-assisted cores
			}
			core := cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, table)
			core.Run(warm)
			core.ResetStats()
			results[i] = core.Run(run)
		}(i)
	}
	wg.Wait()

	// Replicas with the same mode must agree exactly: concurrency may not
	// perturb a simulation.
	for i := 2; i < replicas; i += 2 {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("plain replica %d diverged from replica 0", i)
		}
	}
	for i := 3; i < replicas; i += 2 {
		if !reflect.DeepEqual(results[1], results[i]) {
			t.Errorf("slice replica %d diverged from replica 1", i)
		}
	}
}
