package oracle_test

import (
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/progen"
)

// buildMultiPair co-schedules two independent random programs on one core
// and seeds a multi-oracle with slot-matched functional models.
func buildMultiPair(t *testing.T, seeds []int64) (*cpu.Core, *oracle.MultiOracle) {
	t.Helper()
	cfg := cpu.Config4Wide()
	cfg.ThreadContexts = len(seeds)
	var specs []cpu.ProgSpec
	var oseeds []oracle.ProgSeed
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		im, entry, init := progen.Program(rng)
		coreMem := mem.New()
		init(coreMem)
		specs = append(specs, cpu.ProgSpec{Image: im, Mem: coreMem, Entry: entry})
		orcMem := mem.New()
		init(orcMem)
		oseeds = append(oseeds, oracle.ProgSeed{Image: im, Mem: orcMem, Entry: entry, Name: "prog"})
	}
	core, err := cpu.NewMulti(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	mo := oracle.NewMulti(oseeds, oracle.Options{})
	mo.Attach(core)
	return core, mo
}

// TestMultiOracleIndependentStreams validates the co-scheduled retirement
// plumbing end to end: each program's retirements route to its own leg
// (leg retired count == that program's MainRetired), every leg runs
// divergence-free despite fetch/issue contention, and VerifyFinal matches
// each drained register file against its own functional model.
func TestMultiOracleIndependentStreams(t *testing.T) {
	core, mo := buildMultiPair(t, []int64{3, 17})
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("co-scheduled core did not drain")
	}
	for i := 0; i < core.NumPrograms(); i++ {
		got, want := mo.Leg(i).Retired(), core.ProgSim(i).MainRetired
		if got != want {
			t.Errorf("leg %d validated %d retirements, program retired %d", i, got, want)
		}
		if got == 0 {
			t.Errorf("leg %d validated nothing; test is vacuous", i)
		}
	}
	if err := mo.VerifyFinal(core); err != nil {
		t.Fatalf("co-scheduled validation diverged: %v", err)
	}
}

// TestMultiOracleFaultConfinedToLeg injects a register-write corruption
// into program 1's stream only and requires the divergence to land in leg
// 1 while leg 0 stays clean — proving the legs are genuinely independent
// diffs, not a merged stream where one program's fault could be masked or
// misattributed.
func TestMultiOracleFaultConfinedToLeg(t *testing.T) {
	core, mo := buildMultiPair(t, []int64{3, 17})
	fired := false
	core.RetireObserver = func(di *cpu.DynInst) {
		if !fired && di.Thread.ProgIndex() == 1 && di.Out.WroteReg {
			fired = true
			d2 := *di
			d2.Out.Value ^= 0x1
			mo.OnRetire(&d2)
			return
		}
		mo.OnRetire(di)
	}
	core.Run(1 << 40)
	if !fired {
		t.Fatal("fault never injected (program 1 wrote no register)")
	}
	if n := len(mo.Leg(0).Divergences()); n != 0 {
		t.Errorf("fault in program 1 leaked %d divergences into leg 0", n)
	}
	if len(mo.Leg(1).Divergences()) == 0 {
		t.Error("injected fault in program 1 not detected by leg 1")
	}
	if mo.Err() == nil {
		t.Error("MultiOracle.Err() nil despite a diverged leg")
	}
}
