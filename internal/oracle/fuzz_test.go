package oracle_test

import (
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/progen"
)

// runOracleSeed runs one random program on the out-of-order core with the
// oracle attached: every retirement is diffed in lockstep against the
// functional model, the invariant sweep runs throughout, and after the
// drain the whole register file and the data arena must match. This
// subsumes the old end-state-only differential fuzzer — a transient bug
// now fails at the retirement where it happens, with the instruction and
// field in the report, instead of as an end-state register diff millions
// of instructions later.
func runOracleSeed(t testing.TB, seed int64, wide bool) {
	rng := rand.New(rand.NewSource(seed))
	im, entry, init := progen.Program(rng)

	coreMem := mem.New()
	init(coreMem)
	cfg := cpu.Config4Wide()
	if wide {
		cfg = cpu.Config8Wide()
	}
	core := cpu.MustNew(cfg, im, coreMem, entry, nil)

	orcMem := mem.New()
	init(orcMem)
	// Sweep aggressively: these programs retire quickly, and the fuzzer
	// should exercise the invariant checker mid-flight, not just the diff.
	o := oracle.New(im, orcMem, entry, oracle.Options{Every: 64})
	o.Attach(core)

	core.Run(1 << 40)
	if !core.Done() {
		t.Fatalf("seed %d: did not halt", seed)
	}
	if err := core.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := o.VerifyFinal(core); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if core.S.MainRetired != o.Retired() {
		t.Fatalf("seed %d: core retired %d, oracle observed %d", seed, core.S.MainRetired, o.Retired())
	}
	// Memory must agree too: the per-store diff already checked every
	// store's address and value, so this pins the core's write-back path.
	for a := uint64(progen.Arena); a < progen.Arena+progen.ArenaSlots*8; a += 8 {
		if cv, ov := coreMem.ReadU64(a), o.Mem().ReadU64(a); cv != ov {
			t.Fatalf("seed %d: mem[%#x] = %#x vs %#x", seed, a, cv, ov)
		}
	}
}

// TestFuzzOracle runs many random programs under the oracle and requires
// zero divergences on each.
func TestFuzzOracle(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := 0; seed < n; seed++ {
		runOracleSeed(t, int64(seed), seed%3 == 1)
	}
}

// FuzzOracle is the native-fuzzing entry: the corpus is the
// program-generator seed plus the machine choice, so `go test -fuzz`
// explores programs beyond the fixed seeds.
func FuzzOracle(f *testing.F) {
	for seed := int64(0); seed < 6; seed++ {
		f.Add(seed, seed%3 == 1)
	}
	f.Fuzz(func(t *testing.T, seed int64, wide bool) { runOracleSeed(t, seed, wide) })
}

// TestFunctionalAgreesWithOracle cross-checks the two functional
// interpreters (cpu.RunFunctional and the oracle's private context) on
// the same programs; they share isa.Execute but not their State glue.
func TestFunctionalAgreesWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im, entry, init := progen.Program(rng)
	m := mem.New()
	init(m)
	ref, err := cpu.RunFunctional(im, m, entry, 1<<40)
	if err != nil {
		t.Fatal(err)
	}

	coreMem := mem.New()
	init(coreMem)
	core := cpu.MustNew(cpu.Config4Wide(), im, coreMem, entry, nil)
	orcMem := mem.New()
	init(orcMem)
	o := oracle.New(im, orcMem, entry, oracle.Options{})
	o.Attach(core)
	core.Run(1 << 40)
	if err := o.VerifyFinal(core); err != nil {
		t.Fatal(err)
	}
	if o.Retired() != ref.Retired {
		t.Fatalf("oracle observed %d retirements, functional reference %d", o.Retired(), ref.Retired)
	}
	for r := 1; r < isa.NumRegs; r++ {
		if core.Main().Regs[r] != ref.Regs[r] {
			t.Fatalf("r%d = %#x, functional reference %#x", r, core.Main().Regs[r], ref.Regs[r])
		}
	}
}
