package oracle

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// MultiOracle validates a multi-programmed core: one private functional
// model per program slot, with retirements routed to the matching model
// by the retiring thread's program index. Each program's architectural
// stream is program-order within its own main thread, so each leg is
// exactly the single-program lockstep diff — contention between programs
// changes timing, never architecture, and a divergence in any leg is a
// real bug. The structural invariant sweep is whole-core, so only leg 0
// runs it; the other legs do the stream diff only.
type MultiOracle struct {
	legs []*Oracle
	core *cpu.Core
}

// ProgSeed seeds one program slot's functional model. Mem must be the
// oracle's own copy of the program's initial memory — the model mutates
// it with every store — and Name labels that slot's divergence reports
// (typically the workload name).
type ProgSeed struct {
	Image *asm.Image
	Mem   *mem.Memory
	Entry uint64
	Name  string
}

// NewMulti builds one oracle leg per program slot, in spec order. The
// slot order must match the cpu.NewMulti spec order, since retirements
// are routed by program index.
func NewMulti(seeds []ProgSeed, opt Options) *MultiOracle {
	m := &MultiOracle{}
	for i, s := range seeds {
		po := opt
		if s.Name != "" {
			po.Workload = fmt.Sprintf("%s[p%d]", s.Name, i)
		}
		if i > 0 {
			po.Every = -1 // the sweep is whole-core; leg 0 owns it
		}
		m.legs = append(m.legs, New(s.Image, s.Mem, s.Entry, po))
	}
	return m
}

// Attach installs the multi-oracle as the core's retire observer. The
// core must be the cpu.NewMulti instance whose spec order matches the
// seed order.
func (m *MultiOracle) Attach(c *cpu.Core) {
	if n := c.NumPrograms(); n != len(m.legs) {
		panic(fmt.Sprintf("oracle: %d legs attached to a %d-program core", len(m.legs), n))
	}
	m.core = c
	for _, o := range m.legs {
		o.core = c
		if o.every > 0 {
			o.nextSweep = c.Now() + o.every
		}
	}
	c.RetireObserver = m.OnRetire
}

// OnRetire routes one retired main-thread instruction to the leg owning
// the retiring program. Exported so tests can wrap it to inject faults.
func (m *MultiOracle) OnRetire(di *cpu.DynInst) {
	m.legs[di.Thread.ProgIndex()].OnRetire(di)
}

// Leg exposes program i's oracle (per-program retired counts and final
// memory images in tests).
func (m *MultiOracle) Leg(i int) *Oracle { return m.legs[i] }

// Divergences returns every leg's reports, in slot order.
func (m *MultiOracle) Divergences() []Divergence {
	var divs []Divergence
	for _, o := range m.legs {
		divs = append(divs, o.divs...)
	}
	return divs
}

// Err returns nil when every leg ran clean, else a *DivergenceError
// carrying all recorded reports in slot order.
func (m *MultiOracle) Err() error {
	divs := m.Divergences()
	if len(divs) == 0 {
		return nil
	}
	return &DivergenceError{Divs: divs}
}

// VerifyFinal compares every program's drained register file against its
// functional model. Only valid once the core is fully drained.
func (m *MultiOracle) VerifyFinal(c *cpu.Core) error {
	if err := m.Err(); err != nil {
		return err
	}
	if !c.Done() {
		return fmt.Errorf("oracle: VerifyFinal on a core that is not drained")
	}
	for i, o := range m.legs {
		o.verifyFinalRegs(c.ProgMain(i))
	}
	return m.Err()
}
