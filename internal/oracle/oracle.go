// Package oracle implements the always-on differential oracle: a
// functional reference model stepped in lockstep with the out-of-order
// core's retirement stream, plus a per-N-cycle structural invariant
// sweep.
//
// The core executes at fetch against speculative state, so by the time an
// instruction retires its Outcome is frozen: the register it wrote and
// the value, the store it performed, the direction and target it
// resolved. Fetch is program-order within the main thread and every
// wrong-path effect is undone before correct-path re-fetch, so the
// retired outcome of each main-thread instruction must equal what a
// plain architectural interpreter computes at the same point in the
// stream. The oracle holds that model privately (a compiled-engine
// machine with its own register file and memory image, seeded from the
// program entry or from a checkpoint — see isa/compiled for the engine
// and its differential tests against isa.Execute), executes one
// instruction per retirement, and diffs every architecturally visible
// field. The first mismatch is a real bug in one of the two models —
// there is no tolerance window.
//
// Two things the oracle deliberately does NOT do:
//
//   - It never reads the core's Thread.Regs mid-run. Those are
//     speculative and run ahead of retirement; diffing them against the
//     functional register file would flag every in-flight instruction.
//     Per-retirement outcomes are the architectural stream. A whole-file
//     register compare is only valid once the core is fully drained —
//     that is VerifyFinal.
//
//   - It never models Perfect.* or slice predictions. Those knobs change
//     timing and measurement, never architectural results, which is
//     exactly why the oracle can stay attached under every configuration.
package oracle

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/isa/compiled"
	"repro/internal/mem"
	"repro/internal/stats"
)

// DefaultEvery is the default invariant-sweep period in cycles.
const DefaultEvery = 8192

// defaultMaxReports caps recorded divergences; past the first the stream
// comparison is unreliable anyway (the models have split).
const defaultMaxReports = 8

// Options configures an Oracle.
type Options struct {
	// Workload and WarmKey label divergence reports so a failure is
	// replayable: the pair identifies the exact warmed machine state the
	// measured region started from.
	Workload string
	WarmKey  string
	// Every is the invariant-sweep period in cycles; 0 means
	// DefaultEvery, negative disables the sweep (lockstep diff only).
	Every int64
	// MaxReports caps recorded divergences (0 means a small default).
	MaxReports int
}

// Divergence is one replayable report of the core disagreeing with the
// functional model (or violating a structural invariant).
type Divergence struct {
	Workload string `json:"workload,omitempty"`
	WarmKey  string `json:"warm_key,omitempty"`
	// Index is the retired-instruction index within the observed region
	// (0 = first retirement seen by this oracle); AbsIndex adds the
	// warm-up instructions that preceded the checkpoint.
	Index    uint64 `json:"index"`
	AbsIndex uint64 `json:"abs_index"`
	Cycle    uint64 `json:"cycle"`
	PC       uint64 `json:"pc"`
	// Kind is one of "pc", "reg", "store", "ctrl", "fault", "halt",
	// "off-image", "invariant", "final-regs".
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	// Delta lists the disagreeing machine-state fields, core vs. model.
	Delta []string `json:"delta,omitempty"`
}

func (d Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle: %s divergence at retired #%d (abs #%d, cycle %d, pc %#x): %s",
		d.Kind, d.Index, d.AbsIndex, d.Cycle, d.PC, d.Detail)
	if d.Workload != "" {
		fmt.Fprintf(&b, "\n  workload=%s warm_key=%q", d.Workload, d.WarmKey)
	}
	for _, l := range d.Delta {
		fmt.Fprintf(&b, "\n  %s", l)
	}
	return b.String()
}

// DivergenceError carries every recorded divergence; harness callers
// unwrap it to write report files.
type DivergenceError struct {
	Divs []Divergence
}

func (e *DivergenceError) Error() string {
	if len(e.Divs) == 0 {
		return "oracle: divergence"
	}
	s := e.Divs[0].String()
	if len(e.Divs) > 1 {
		s += fmt.Sprintf("\n  (+%d more divergences)", len(e.Divs)-1)
	}
	return s
}

// WriteReport writes the full divergence list as indented JSON.
func (e *DivergenceError) WriteReport() []byte {
	b, err := json.MarshalIndent(e.Divs, "", "  ")
	if err != nil {
		return []byte(err.Error())
	}
	return append(b, '\n')
}

// Oracle runs the functional model one instruction per retirement and
// diffs the core's committed stream against it.
type Oracle struct {
	opt   Options
	image *asm.Image

	// Private architectural machine (the compiled engine; never aliased
	// with the core's state). The image is kept only for disassembling
	// the cold divergence path.
	ma     *compiled.Machine
	halted bool

	index uint64 // retirements observed by this oracle
	base  uint64 // retirements that preceded the seed checkpoint

	// stopped ends the lockstep diff after the first stream divergence:
	// once the models split, every later comparison is noise.
	stopped bool

	core      *cpu.Core
	every     uint64
	nextSweep uint64

	divs    []Divergence
	dropped int // divergences past MaxReports
}

// New builds an oracle whose functional model starts at entry with zero
// registers against m. The memory must be the oracle's own copy — it is
// mutated by every store the model executes.
func New(image *asm.Image, m *mem.Memory, entry uint64, opt Options) *Oracle {
	o := &Oracle{
		opt:   opt,
		image: image,
		ma:    compiled.NewMachine(compiled.Cached(image), m, entry),
	}
	o.init()
	return o
}

// FromCheckpoint builds an oracle seeded from a quiesced checkpoint: at
// the quiesce point the pipeline is drained, so ck's registers, PC, and
// memory snapshot are exactly architectural. This makes checkpointed and
// functionally warmed runs validatable without replaying the warm-up.
func FromCheckpoint(image *asm.Image, ck *cpu.Checkpoint, opt Options) *Oracle {
	o := &Oracle{
		opt:    opt,
		image:  image,
		ma:     compiled.NewMachine(compiled.Cached(image), mem.NewFromSnapshot(ck.Mem), ck.PC),
		halted: ck.MainHalted,
		base:   ck.WarmRetired,
	}
	regs := ck.Regs
	o.ma.SetRegs(&regs)
	o.init()
	return o
}

func (o *Oracle) init() {
	if o.opt.MaxReports <= 0 {
		o.opt.MaxReports = defaultMaxReports
	}
	switch {
	case o.opt.Every == 0:
		o.every = DefaultEvery
	case o.opt.Every > 0:
		o.every = uint64(o.opt.Every)
	}
}

// Attach installs the oracle as the core's retire observer. The core
// must be the one whose stream matches the oracle's seed state.
func (o *Oracle) Attach(c *cpu.Core) {
	o.core = c
	if o.every > 0 {
		o.nextSweep = c.Now() + o.every
	}
	c.RetireObserver = o.OnRetire
}

// OnRetire receives one retired main-thread instruction, runs the
// per-N-cycle invariant sweep, steps the functional model, and diffs.
// It is installed by Attach but exported so tests can wrap it to inject
// faults.
func (o *Oracle) OnRetire(di *cpu.DynInst) {
	if o.core != nil && o.every > 0 && o.core.Now() >= o.nextSweep {
		o.nextSweep = o.core.Now() + o.every
		if err := o.core.CheckInvariants(); err != nil {
			o.report(di, "invariant", err.Error(), nil)
		}
	}

	idx := o.index
	o.index++
	if o.stopped {
		return
	}

	if o.halted {
		o.streamDiverge(di, idx, "halt",
			fmt.Sprintf("core retired pc=%#x after the functional model halted", di.PC), nil)
		return
	}
	pc := o.ma.PC()
	if di.PC != pc {
		o.streamDiverge(di, idx, "pc",
			fmt.Sprintf("core retired pc=%#x, functional model expects pc=%#x", di.PC, pc), nil)
		return
	}

	var out isa.Outcome
	if _, err := o.ma.Step(&out); err != nil {
		o.streamDiverge(di, idx, "off-image",
			fmt.Sprintf("functional model fell off the image at %#x", pc), nil)
		return
	}
	got, want := &di.Out, &out

	var delta []string
	kind := ""
	diff := func(k, field string, gotV, wantV interface{}) {
		if kind == "" {
			kind = k
		}
		delta = append(delta, fmt.Sprintf("%-9s core=%v model=%v", field+":", gotV, wantV))
	}
	if got.Fault != want.Fault {
		diff("fault", "fault", got.Fault, want.Fault)
	}
	if got.WroteReg != want.WroteReg {
		diff("reg", "wroteReg", got.WroteReg, want.WroteReg)
	} else if want.WroteReg {
		if got.Rd != want.Rd {
			diff("reg", "rd", got.Rd, want.Rd)
		}
		if got.Value != want.Value {
			diff("reg", "value", fmt.Sprintf("%#x", got.Value), fmt.Sprintf("%#x", want.Value))
		}
	}
	if got.IsStore != want.IsStore {
		diff("store", "isStore", got.IsStore, want.IsStore)
	} else if want.IsStore && !want.Fault {
		if got.Addr != want.Addr {
			diff("store", "addr", fmt.Sprintf("%#x", got.Addr), fmt.Sprintf("%#x", want.Addr))
		}
		if got.Size != want.Size {
			diff("store", "size", got.Size, want.Size)
		}
		if got.StoreVal != want.StoreVal {
			diff("store", "storeVal", fmt.Sprintf("%#x", got.StoreVal), fmt.Sprintf("%#x", want.StoreVal))
		}
	}
	if got.IsCtrl != want.IsCtrl {
		diff("ctrl", "isCtrl", got.IsCtrl, want.IsCtrl)
	} else if want.IsCtrl {
		if got.Taken != want.Taken {
			diff("ctrl", "taken", got.Taken, want.Taken)
		}
		if want.Taken && got.Target != want.Target {
			diff("ctrl", "target", fmt.Sprintf("%#x", got.Target), fmt.Sprintf("%#x", want.Target))
		}
	}
	if got.Halt != want.Halt {
		diff("halt", "halt", got.Halt, want.Halt)
	}

	if kind != "" {
		// Cold path: fetch the instruction text only for the report.
		detail := "retired instruction disagrees with the functional model"
		if in, ok := o.image.At(pc); ok {
			detail = fmt.Sprintf("retired %v disagrees with the functional model", in)
		}
		o.streamDiverge(di, idx, kind, detail, delta)
		return
	}

	if want.Halt {
		o.halted = true
	}
}

// streamDiverge records a lockstep mismatch and ends the diff.
func (o *Oracle) streamDiverge(di *cpu.DynInst, idx uint64, kind, detail string, delta []string) {
	o.stopped = true
	o.reportAt(di, idx, kind, detail, delta)
}

func (o *Oracle) report(di *cpu.DynInst, kind, detail string, delta []string) {
	o.reportAt(di, o.index, kind, detail, delta)
}

func (o *Oracle) reportAt(di *cpu.DynInst, idx uint64, kind, detail string, delta []string) {
	if len(o.divs) >= o.opt.MaxReports {
		o.dropped++
		return
	}
	d := Divergence{
		Workload: o.opt.Workload,
		WarmKey:  o.opt.WarmKey,
		Index:    idx,
		AbsIndex: o.base + idx,
		Kind:     kind,
		Detail:   detail,
		Delta:    delta,
	}
	if di != nil {
		d.PC = di.PC
	}
	if o.core != nil {
		d.Cycle = o.core.Now()
		if tr := o.core.Tracer(); tr != nil {
			ev := stats.EvOracleDiverge
			if kind == "invariant" {
				ev = stats.EvOracleInvariant
			}
			tr.Emit(stats.Event{Cycle: d.Cycle, Kind: ev, PC: d.PC, N: idx})
		}
	}
	o.divs = append(o.divs, d)
}

// Retired returns how many retirements the oracle has observed.
func (o *Oracle) Retired() uint64 { return o.index }

// Mem exposes the functional model's private memory image (final-state
// comparisons in tests; do not write to it).
func (o *Oracle) Mem() *mem.Memory { return o.ma.Mem() }

// Divergences returns every recorded report.
func (o *Oracle) Divergences() []Divergence { return o.divs }

// Err returns nil when the run was clean, else a *DivergenceError
// carrying every recorded report.
func (o *Oracle) Err() error {
	if len(o.divs) == 0 {
		return nil
	}
	return &DivergenceError{Divs: o.divs}
}

// VerifyFinal compares the core's whole architectural state against the
// functional model: the register file, and (cheaply, via the committed
// store stream already checked) the halted/retired status. Only valid
// once the core is fully drained — mid-run, Thread.Regs is speculative.
func (o *Oracle) VerifyFinal(c *cpu.Core) error {
	if err := o.Err(); err != nil {
		return err
	}
	if !c.Done() {
		return fmt.Errorf("oracle: VerifyFinal on a core that is not drained")
	}
	o.verifyFinalRegs(c.Main())
	return o.Err()
}

// verifyFinalRegs diffs one drained main thread's register file against
// the functional model, recording a "final-regs" divergence on mismatch.
func (o *Oracle) verifyFinalRegs(t *cpu.Thread) {
	var delta []string
	for r := 1; r < isa.NumRegs; r++ {
		if cv, ov := t.Regs[r], o.ma.Reg(isa.Reg(r)); cv != ov {
			delta = append(delta, fmt.Sprintf("r%d: core=%#x model=%#x", r, cv, ov))
		}
	}
	if len(delta) > 0 {
		o.reportAt(nil, o.index, "final-regs", "architectural register file differs after drain", delta)
	}
}

// SpotCheckRestore validates Checkpoint/Restore round-trip equivalence
// on a live core: checkpoint it (which quiesces — this perturbs timing,
// so it is a test-only probe, not part of the per-N-cycle sweep),
// restore into a fresh core, and require the restored machine to
// checkpoint back to byte-identical state.
func SpotCheckRestore(c *cpu.Core) error {
	ck, err := c.Checkpoint()
	if err != nil {
		return fmt.Errorf("oracle: restore spot check: %w", err)
	}
	r, err := cpu.Restore(c.Cfg, c.Image(), ck, c.SliceTable())
	if err != nil {
		return fmt.Errorf("oracle: restore spot check: %w", err)
	}
	ck2, err := r.Checkpoint()
	if err != nil {
		return fmt.Errorf("oracle: restore spot check: re-checkpoint: %w", err)
	}
	// WarmRetired is observability metadata (the retired count of the run
	// that built the checkpoint); Restore documents that it ignores it, and
	// the restored core's counters start at zero. Everything else must
	// round-trip exactly.
	ck2.WarmRetired = ck.WarmRetired
	a, b := ck.EncodeBinary(), ck2.EncodeBinary()
	if len(a) != len(b) {
		return fmt.Errorf("oracle: restore spot check: re-encoded checkpoint is %d bytes, original %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("oracle: restore spot check: checkpoints differ at byte %d", i)
		}
	}
	return nil
}
