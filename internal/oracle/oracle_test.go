package oracle_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/progen"
	"repro/internal/stats"
)

// buildPair returns a core and an attached oracle over the same program
// with independently initialized memories.
func buildPair(t *testing.T, seed int64, opt oracle.Options) (*cpu.Core, *oracle.Oracle) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	im, entry, init := progen.Program(rng)
	coreMem := mem.New()
	init(coreMem)
	core := cpu.MustNew(cpu.Config4Wide(), im, coreMem, entry, nil)
	orcMem := mem.New()
	init(orcMem)
	o := oracle.New(im, orcMem, entry, opt)
	o.Attach(core)
	return core, o
}

// TestOracleInjectedFaults proves the oracle's detection latency: each
// class of injected corruption — a flipped register write, a dropped
// store, a skewed branch target — must be caught at the retirement where
// it happens (the dropped store at the very next one, as a PC mismatch).
func TestOracleInjectedFaults(t *testing.T) {
	type fault struct {
		name     string
		match    func(di *cpu.DynInst) bool
		mutate   func(d *cpu.DynInst) // nil = drop the retirement entirely
		wantKind string
	}
	faults := []fault{
		{
			name:     "flip-reg-write",
			match:    func(di *cpu.DynInst) bool { return di.Out.WroteReg },
			mutate:   func(d *cpu.DynInst) { d.Out.Value ^= 0x1 },
			wantKind: "reg",
		},
		{
			// A dropped retirement never consumes an oracle index, so the
			// PC mismatch surfaces at the very next retirement under the
			// same index — still "within one retirement".
			name:     "drop-store",
			match:    func(di *cpu.DynInst) bool { return di.Static.IsStore() },
			mutate:   nil,
			wantKind: "pc",
		},
		{
			name:     "skew-branch-target",
			match:    func(di *cpu.DynInst) bool { return di.Out.IsCtrl && di.Out.Taken },
			mutate:   func(d *cpu.DynInst) { d.Out.Target += isa.InstBytes },
			wantKind: "ctrl",
		},
	}
	for _, f := range faults {
		t.Run(f.name, func(t *testing.T) {
			core, o := buildPair(t, 3, oracle.Options{})
			faultIdx := uint64(0)
			fired := false
			// Wrap the observer Attach installed: feed the oracle a mutated
			// copy of the first matching retirement (or swallow it).
			core.RetireObserver = func(di *cpu.DynInst) {
				if !fired && f.match(di) {
					fired = true
					faultIdx = o.Retired()
					if f.mutate == nil {
						return // dropped: the oracle never sees it
					}
					d2 := *di
					f.mutate(&d2)
					o.OnRetire(&d2)
					return
				}
				o.OnRetire(di)
			}
			core.Run(1 << 40)
			if !fired {
				t.Fatal("fault never injected (no matching retirement)")
			}
			divs := o.Divergences()
			if len(divs) == 0 {
				t.Fatal("injected fault not detected")
			}
			d := divs[0]
			if d.Kind != f.wantKind {
				t.Fatalf("divergence kind = %q, want %q (%s)", d.Kind, f.wantKind, d)
			}
			if d.Index != faultIdx {
				t.Fatalf("divergence at retirement %d, fault at %d", d.Index, faultIdx)
			}
		})
	}
}

// TestOracleDivergenceEventAndReport checks the structured-telemetry and
// report plumbing on an injected fault: an EvOracleDiverge event reaches
// the core's tracer, and the error renders the workload, warm key, index,
// and delta lines.
func TestOracleDivergenceEventAndReport(t *testing.T) {
	core, o := buildPair(t, 5, oracle.Options{Workload: "fuzz", WarmKey: "wk"})
	var events []stats.Event
	core.SetTracer(stats.FuncTracer(func(e stats.Event) {
		if e.Kind == stats.EvOracleDiverge || e.Kind == stats.EvOracleInvariant {
			events = append(events, e)
		}
	}))
	fired := false
	core.RetireObserver = func(di *cpu.DynInst) {
		if !fired && di.Out.WroteReg {
			fired = true
			d2 := *di
			d2.Out.Value ^= 0xF0
			o.OnRetire(&d2)
			return
		}
		o.OnRetire(di)
	}
	core.Run(1 << 40)
	if len(events) != 1 {
		t.Fatalf("tracer saw %d oracle events, want 1", len(events))
	}
	err := o.Err()
	if err == nil {
		t.Fatal("no error after divergence")
	}
	msg := err.Error()
	for _, want := range []string{"workload=fuzz", `warm_key="wk"`, "value:", "reg divergence"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message missing %q:\n%s", want, msg)
		}
	}
	de, ok := err.(*oracle.DivergenceError)
	if !ok {
		t.Fatalf("Err() = %T, want *DivergenceError", err)
	}
	if rep := string(de.WriteReport()); !strings.Contains(rep, `"kind": "reg"`) {
		t.Errorf("JSON report missing the divergence kind:\n%s", rep)
	}
}

// TestOracleStopsAfterFirstDivergence: once the streams split, later
// retirements must not pile up cascading reports.
func TestOracleStopsAfterFirstDivergence(t *testing.T) {
	core, o := buildPair(t, 9, oracle.Options{})
	fired := false
	core.RetireObserver = func(di *cpu.DynInst) {
		if !fired && di.Out.WroteReg {
			fired = true
			d2 := *di
			d2.Out.Value ^= 0x2
			o.OnRetire(&d2)
			return
		}
		o.OnRetire(di)
	}
	core.Run(1 << 40)
	if n := len(o.Divergences()); n != 1 {
		t.Fatalf("recorded %d divergences, want exactly 1", n)
	}
	// But the retirement count keeps tracking the core.
	if o.Retired() != core.S.MainRetired {
		t.Fatalf("oracle observed %d retirements, core retired %d", o.Retired(), core.S.MainRetired)
	}
}

// TestOracleInvariantSweepLive runs several cores concurrently with tight
// invariant sweeps. Under -race this doubles as the data-race check for
// CheckInvariants against a live core (each goroutine owns its core; the
// checker itself must not mutate anything).
func TestOracleInvariantSweepLive(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			im, entry, init := progen.Program(rng)
			coreMem := mem.New()
			init(coreMem)
			core := cpu.MustNew(cpu.Config4Wide(), im, coreMem, entry, nil)
			orcMem := mem.New()
			init(orcMem)
			o := oracle.New(im, orcMem, entry, oracle.Options{Every: 16})
			o.Attach(core)
			core.Run(1 << 40)
			if err := o.VerifyFinal(core); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
}

// TestSpotCheckRestore: Checkpoint → Restore → Checkpoint must be
// byte-identical on a mid-run machine (full pipeline, in-flight stores,
// primed predictors).
func TestSpotCheckRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	im, entry, init := progen.Program(rng)
	m := mem.New()
	init(m)
	core := cpu.MustNew(cpu.Config4Wide(), im, m, entry, nil)
	core.Run(200) // partway: plenty left in flight before the quiesce
	if err := oracle.SpotCheckRestore(core); err != nil {
		t.Fatal(err)
	}
}

// TestOracleZeroDestWrites pins the Zero-register contract on the
// execute-at-fetch path: instructions whose destination is the hardwired
// zero register must retire without an architectural write, and reads
// must keep seeing zero — on both models, through the oracle's diff.
func TestOracleZeroDestWrites(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.Li(2, 7)
	b.Li(3, 35)
	b.I(isa.LDI, 1, 0, 50)
	b.Label("loop")
	b.R(isa.ADD, isa.Zero, 2, 3)    // r0 = r2+r3: must be discarded
	b.I(isa.ADDI, isa.Zero, 2, 99)  // immediate form
	b.R(isa.CMOVNE, isa.Zero, 2, 3) // cmov into r0
	b.R(isa.ADD, 4, isa.Zero, 2)    // r4 = 0 + r2: reads must see zero
	b.Ld(isa.Zero, 0, 27)           // load into r0 (r27 still 0 → low mem)
	b.I(isa.ADDI, 1, 1, -1)
	b.B(isa.BGT, 1, "loop")
	b.Halt()
	p := b.MustBuild()
	im, err := asm.NewImage(p)
	if err != nil {
		t.Fatal(err)
	}

	core := cpu.MustNew(cpu.Config4Wide(), im, mem.New(), p.Base, nil)
	o := oracle.New(im, mem.New(), p.Base, oracle.Options{Every: 8})
	o.Attach(core)
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("did not halt")
	}
	if err := o.VerifyFinal(core); err != nil {
		t.Fatal(err)
	}
	if got := core.Main().Regs[4]; got != 7 {
		t.Fatalf("r4 = %d, want 7 (a read of the zero register saw a stale write)", got)
	}
	if got := core.Main().Regs[0]; got != 0 {
		t.Fatalf("r0 = %d, want 0", got)
	}
}

// TestOracleStoreDrainAtDone pins the write-buffer drain contract: a
// burst of stores immediately before HALT must all be architecturally
// visible when Done() reports true.
func TestOracleStoreDrainAtDone(t *testing.T) {
	const arena = 0x40000
	b := asm.NewBuilder(0x1000)
	b.Li(27, arena)
	b.Li(2, 0x1111)
	for i := int32(0); i < 24; i++ {
		b.I(isa.ADDI, 2, 2, 1)
		b.St(2, i*8, 27)
	}
	b.Halt()
	p := b.MustBuild()
	im, err := asm.NewImage(p)
	if err != nil {
		t.Fatal(err)
	}

	coreMem := mem.New()
	core := cpu.MustNew(cpu.Config4Wide(), im, coreMem, p.Base, nil)
	o := oracle.New(im, mem.New(), p.Base, oracle.Options{})
	o.Attach(core)
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("did not halt and drain")
	}
	if err := o.VerifyFinal(core); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 24; i++ {
		want := uint64(0x1111) + i + 1
		if got := coreMem.ReadU64(arena + i*8); got != want {
			t.Fatalf("mem[%#x] = %#x, want %#x (store not drained at Done)", arena+i*8, got, want)
		}
	}
}

// TestOracleCMOVUnderSquash pins conditional-move retirement across
// squashes: an unpredictable data-dependent branch precedes a chain of
// conditional moves whose destinations double as sources, so wrong-path
// execution repeatedly runs and rolls back the moves before the correct
// path refetches them. The dest-as-source old value must survive every
// rollback, or the accumulated result diverges.
func TestOracleCMOVUnderSquash(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.Li(20, 0x9E3779B97F4A7C15>>1) // xorshift state
	b.Li(5, 0)                      // accumulator
	b.I(isa.LDI, 1, 0, 400)
	b.Label("loop")
	b.I(isa.SLLI, 9, 20, 13)
	b.R(isa.XOR, 20, 20, 9)
	b.I(isa.SRLI, 9, 20, 7)
	b.R(isa.XOR, 20, 20, 9)
	b.I(isa.ANDI, 10, 20, 1) // unpredictable bit
	b.B(isa.BEQ, 10, "skip") // mispredicts often → squashes the cmovs below
	b.I(isa.ADDI, 5, 5, 3)
	b.Label("skip")
	b.I(isa.ANDI, 11, 20, 2)
	b.R(isa.CMOVNE, 5, 11, 20) // fires on bit 1: r5 = rng
	b.R(isa.CMOVEQ, 5, 11, 2)  // else r5 = r2; both read old r5 when not firing
	b.R(isa.ADD, 6, 6, 5)
	b.I(isa.ADDI, 1, 1, -1)
	b.B(isa.BGT, 1, "loop")
	b.Halt()
	p := b.MustBuild()
	im, err := asm.NewImage(p)
	if err != nil {
		t.Fatal(err)
	}

	core := cpu.MustNew(cpu.Config4Wide(), im, mem.New(), p.Base, nil)
	o := oracle.New(im, mem.New(), p.Base, oracle.Options{Every: 64})
	o.Attach(core)
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("did not halt")
	}
	if core.S.Mispredicts == 0 {
		t.Fatal("no mispredicts — the test never exercised squash")
	}
	if err := o.VerifyFinal(core); err != nil {
		t.Fatal(err)
	}
}

// TestOracleFromCheckpointHalted: an oracle seeded from a checkpoint of a
// halted machine must flag any further retirement.
func TestOracleFromCheckpointHalted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im, entry, init := progen.Program(rng)
	m := mem.New()
	init(m)
	core := cpu.MustNew(cpu.Config4Wide(), im, m, entry, nil)
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("did not halt")
	}
	ck, err := core.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.FromCheckpoint(im, ck, oracle.Options{})
	o.OnRetire(&cpu.DynInst{PC: entry})
	divs := o.Divergences()
	if len(divs) != 1 || divs[0].Kind != "halt" {
		t.Fatalf("divergences = %v, want one halt report", divs)
	}
	if divs[0].AbsIndex != ck.WarmRetired {
		t.Fatalf("AbsIndex = %d, want %d (checkpoint base)", divs[0].AbsIndex, ck.WarmRetired)
	}
}
