package cache

import "repro/internal/stats"

// Origin records which agent brought a line into the L1/PVB, so the
// simulator can attribute "misses covered" (Table 4) to helper-thread
// prefetching versus the hardware prefetcher.
type Origin uint8

// Line origins.
const (
	OriginNone Origin = iota
	OriginDemand
	OriginHWPrefetch
	OriginHelper
)

// Kind classifies the requester of an access.
type Kind uint8

// Access kinds.
const (
	KindDemand Kind = iota // main-thread load/store
	KindHelper             // helper-thread (slice) load
)

// Level says where an access was satisfied.
type Level uint8

// Service levels.
const (
	LevelL1 Level = iota
	LevelPVB
	LevelL2
	LevelMem
	LevelMerged // merged with an in-flight fill of the same line
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelPVB:
		return "PVB"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "mem"
	case LevelMerged:
		return "merged"
	}
	return "?"
}

// Result describes one data access.
type Result struct {
	// Latency is load-to-use latency in cycles (≥ LatL1).
	Latency uint64
	// Level says where the line was found.
	Level Level
	// L1Miss reports whether the L1 itself missed (a PVB hit is still an
	// L1 miss architecturally, but it is serviced at hit latency).
	L1Miss bool
	// HelperCovered is set on the first demand touch of a line a helper
	// thread brought in — the "miss covered" event of Table 4.
	HelperCovered bool
	// HWPrefCovered is the same for hardware-prefetched lines.
	HWPrefCovered bool
}

// Params configures the hierarchy. DefaultParams returns Table 1.
type Params struct {
	L1Bytes, L1Ways, L1Line int
	L2Bytes, L2Ways, L2Line int
	ICBytes, ICWays, ICLine int

	LatL1  uint64 // L1 access, including address generation
	LatL2  uint64 // additional L2 access latency
	LatMem uint64 // additional minimum memory latency

	PVBEntries    int
	Streams       int
	PrefetchDepth int

	// MemOccupancy is how long one line transfer holds the memory bus;
	// demand fills queue behind each other, and prefetches issue only when
	// the bus is idle ("when bandwidth is available", Table 1).
	MemOccupancy uint64
	// WriteBufEntries bounds the retired-store write buffer.
	WriteBufEntries int
}

// DefaultParams returns the paper's Table 1 memory system.
func DefaultParams() Params {
	return Params{
		L1Bytes: 64 << 10, L1Ways: 2, L1Line: 64,
		L2Bytes: 2 << 20, L2Ways: 4, L2Line: 128,
		ICBytes: 64 << 10, ICWays: 2, ICLine: 64,
		LatL1: 3, LatL2: 6, LatMem: 100,
		PVBEntries:      64,
		Streams:         16,
		PrefetchDepth:   2,
		MemOccupancy:    4,
		WriteBufEntries: 16,
	}
}

// HierStats aggregates hierarchy-wide counters. The definition lives in
// the telemetry package (see the note on Stats); the alias preserves the
// established name.
type HierStats = stats.HierStats

type pendingFill struct {
	line  uint64
	ready uint64
	orig  Origin
	dirty bool
}

// Hierarchy ties the caches, buffers, prefetcher, and bus together and is
// the single entry point the CPU uses for data and instruction accesses.
type Hierarchy struct {
	P    Params
	L1D  *Cache
	L1I  *Cache
	L2   *Cache
	PVB  *PVB
	Pref *StreamPrefetcher

	// lineReady tracks in-flight L1 fills (MSHR merging): line address →
	// cycle the data arrives. Entries are pruned lazily.
	lineReady map[uint64]uint64
	inflOrig  map[uint64]Origin
	// origin of lines currently resident in L1 or PVB that were brought
	// by a non-demand agent and not yet touched by demand.
	origin map[uint64]Origin

	pendingPVB []pendingFill // prefetch arrivals headed for the PVB
	memFree    uint64        // next cycle the memory bus is free
	writeBuf   []uint64      // line addresses of retired store misses

	Stats HierStats

	// Tracer receives cache-fill and cache-cover events when non-nil.
	Tracer stats.Tracer
}

// NewHierarchy builds the memory system.
func NewHierarchy(p Params) *Hierarchy {
	return &Hierarchy{
		P:         p,
		L1D:       MustCache("L1D", p.L1Bytes, p.L1Ways, p.L1Line),
		L1I:       MustCache("L1I", p.ICBytes, p.ICWays, p.ICLine),
		L2:        MustCache("L2", p.L2Bytes, p.L2Ways, p.L2Line),
		PVB:       NewPVB(p.PVBEntries, p.L1Line),
		Pref:      NewStreamPrefetcher(p.Streams, p.PrefetchDepth),
		lineReady: make(map[uint64]uint64),
		inflOrig:  make(map[uint64]Origin),
		origin:    make(map[uint64]Origin),
	}
}

// fillL1 installs a line into the L1, spilling the victim to the PVB and a
// dirty PVB victim onward to the L2.
func (h *Hierarchy) fillL1(line uint64, dirty bool, orig Origin) {
	vAddr, vDirty, ev := h.L1D.Fill(line, dirty)
	if orig == OriginHelper || orig == OriginHWPrefetch {
		h.origin[line] = orig
	}
	if ev {
		delete(h.origin, vAddr)
		pvAddr, pvDirty, pvEv := h.PVB.Insert(vAddr, vDirty)
		if pvEv && pvDirty {
			h.writebackToL2(pvAddr)
		}
	}
}

func (h *Hierarchy) writebackToL2(line uint64) {
	h.Stats.Writebacks++
	// Write-allocate into the L2; a dirty L2 victim goes to memory
	// (writeback bandwidth is not modeled, per Table 1).
	if !h.L2.Access(line, true) {
		h.L2.Fill(line, true)
	}
}

// consumeOrigin checks attribution on a demand touch of line.
func (h *Hierarchy) consumeOrigin(line uint64, r *Result, now uint64) {
	switch h.origin[line] {
	case OriginHelper:
		r.HelperCovered = true
		h.Stats.HelperCovered++
		delete(h.origin, line)
		h.emitCover(line, "helper", now)
	case OriginHWPrefetch:
		r.HWPrefCovered = true
		h.Stats.PrefetchUseful++
		delete(h.origin, line)
		h.emitCover(line, "hw", now)
	}
}

func (h *Hierarchy) emitCover(line uint64, by string, now uint64) {
	if h.Tracer != nil {
		h.Tracer.Emit(stats.Event{Cycle: now, Kind: stats.EvCacheCover, Addr: line, Level: by})
	}
}

func (h *Hierarchy) emitFill(line uint64, from string, orig Origin, now uint64) {
	if h.Tracer == nil {
		return
	}
	dir := ""
	switch orig {
	case OriginHelper:
		dir = "helper"
	case OriginHWPrefetch:
		dir = "hw"
	}
	h.Tracer.Emit(stats.Event{Cycle: now, Kind: stats.EvCacheFill, Addr: line, Level: from, Dir: dir})
}

// Access performs the timing for one data access at cycle now. write marks
// stores (which the CPU calls at retire through StoreRetire instead; write
// Accesses here come from the write-buffer drain). kind attributes the
// requester.
func (h *Hierarchy) Access(addr uint64, write bool, kind Kind, now uint64) Result {
	line := h.L1D.LineAddr(addr)
	r := Result{Latency: h.P.LatL1, Level: LevelL1}

	if kind == KindDemand {
		h.Stats.DemandLoads++
	} else {
		h.Stats.HelperAccesses++
	}

	if h.L1D.Access(addr, write) {
		// L1 hit; may still be waiting on an in-flight fill of this line.
		if ready, ok := h.lineReady[line]; ok {
			if ready > now+h.P.LatL1 {
				r.Latency = ready - now
				r.Level = LevelMerged
			} else {
				delete(h.lineReady, line)
				delete(h.inflOrig, line)
			}
		}
		if kind == KindDemand {
			h.consumeOrigin(line, &r, now)
			if r.Latency > h.P.LatL1 {
				h.Stats.DemandStalls++
			}
		}
		return r
	}

	// L1 miss.
	r.L1Miss = true
	if kind == KindDemand {
		h.Stats.DemandLoadMisses++
	}

	// Merge with an in-flight fill of the same line.
	if ready, ok := h.lineReady[line]; ok {
		r.Level = LevelMerged
		if ready < now+h.P.LatL1 {
			ready = now + h.P.LatL1
		}
		r.Latency = ready - now
		if kind == KindDemand {
			// Attribute partial coverage to whoever started the fill.
			switch h.inflOrig[line] {
			case OriginHelper:
				r.HelperCovered = true
				h.Stats.HelperCovered++
				h.inflOrig[line] = OriginDemand
				h.emitCover(line, "helper", now)
			case OriginHWPrefetch:
				r.HWPrefCovered = true
				h.Stats.PrefetchUseful++
				h.inflOrig[line] = OriginDemand
				h.emitCover(line, "hw", now)
			}
			h.Stats.DemandStalls++
		}
		// The demand use promotes the line into the L1 (an in-flight
		// prefetch would otherwise have parked it in the PVB).
		h.fillL1(line, write, OriginNone)
		return r
	}

	// Parallel probe of the prefetch/victim buffer.
	if present, dirty := h.PVB.Extract(line); present {
		r.Level = LevelPVB
		h.fillL1(line, dirty || write, OriginNone)
		if kind == KindDemand {
			h.consumeOrigin(line, &r, now)
		}
		return r
	}

	// L2 lookup.
	orig := OriginDemand
	if kind == KindHelper {
		orig = OriginHelper
		h.Stats.HelperMisses++
	}
	if h.L2.Access(addr, false) {
		r.Level = LevelL2
		r.Latency = h.P.LatL1 + h.P.LatL2
		h.fillL1(line, write, orig)
		h.lineReady[line] = now + r.Latency
		h.inflOrig[line] = orig
		h.emitFill(line, "l2", orig, now)
	} else {
		// Memory, behind the bus.
		start := now + h.P.LatL1 + h.P.LatL2
		if h.memFree > start {
			start = h.memFree
		}
		h.memFree = start + h.P.MemOccupancy
		ready := start + h.P.LatMem
		r.Level = LevelMem
		r.Latency = ready - now
		h.L2.Fill(addr, false)
		h.fillL1(line, write, orig)
		h.lineReady[line] = ready
		h.inflOrig[line] = orig
		h.emitFill(line, "mem", orig, now)
	}
	if kind == KindDemand {
		h.Stats.DemandStalls++
		// Demand misses train the stream prefetcher.
		h.launchPrefetches(line, now)
	}
	return r
}

// launchPrefetches asks the stream prefetcher for candidates and issues
// those that are new, cacheable, and affordable bandwidth-wise.
func (h *Hierarchy) launchPrefetches(missLine uint64, now uint64) {
	lineBytes := uint64(h.P.L1Line)
	for _, cand := range h.Pref.OnMiss(missLine, lineBytes) {
		if h.L1D.Probe(cand) || h.PVB.Probe(cand) {
			continue
		}
		if _, busy := h.lineReady[cand]; busy {
			continue
		}
		var ready uint64
		if h.L2.Access(cand, false) {
			ready = now + h.P.LatL1 + h.P.LatL2
		} else {
			// Bandwidth gate: issue memory prefetches only while the bus
			// queue is shallower than one memory latency ("when bandwidth
			// is available", Table 1).
			if h.memFree > now && h.memFree-now >= h.P.LatMem {
				continue
			}
			start := now + h.P.LatL1 + h.P.LatL2
			if h.memFree > start {
				start = h.memFree
			}
			h.memFree = start + h.P.MemOccupancy
			ready = start + h.P.LatMem
			h.L2.Fill(cand, false)
		}
		h.Stats.PrefetchIssued++
		h.lineReady[cand] = ready
		h.inflOrig[cand] = OriginHWPrefetch
		h.pendingPVB = append(h.pendingPVB, pendingFill{line: cand, ready: ready, orig: OriginHWPrefetch})
		h.emitFill(cand, "pvb", OriginHWPrefetch, now)
	}
}

// StoreRetire retires a store into the memory system through the write
// buffer. It returns false when the write buffer is full, in which case the
// caller must stall retirement and retry.
func (h *Hierarchy) StoreRetire(addr uint64, now uint64) bool {
	if h.L1D.Access(addr, true) {
		return true
	}
	line := h.L1D.LineAddr(addr)
	for _, wb := range h.writeBuf {
		if wb == line {
			return true // already being allocated
		}
	}
	if len(h.writeBuf) >= h.P.WriteBufEntries {
		h.Stats.WriteBufFull++
		return false
	}
	h.writeBuf = append(h.writeBuf, line)
	return true
}

// FetchAccess models the instruction cache for one fetch of pc, returning
// the extra latency beyond the pipelined fetch (0 on hit).
func (h *Hierarchy) FetchAccess(pc uint64, now uint64) uint64 {
	if h.L1I.Access(pc, false) {
		return 0
	}
	h.Stats.ICMisses++
	h.L1I.Fill(pc, false)
	if h.L2.Access(pc, false) {
		return h.P.LatL2
	}
	h.L2.Fill(pc, false)
	start := now
	if h.memFree > start {
		start = h.memFree
	}
	h.memFree = start + h.P.MemOccupancy
	return start + h.P.LatMem - now
}

// Tick advances background machinery once per cycle: prefetch arrivals move
// into the PVB and the write buffer drains when the bus allows.
func (h *Hierarchy) Tick(now uint64) {
	if len(h.pendingPVB) > 0 {
		kept := h.pendingPVB[:0]
		for _, pf := range h.pendingPVB {
			if pf.ready > now {
				kept = append(kept, pf)
				continue
			}
			// If a demand access promoted the line to L1 meanwhile, skip.
			if h.L1D.Probe(pf.line) {
				continue
			}
			vAddr, vDirty, ev := h.PVB.Insert(pf.line, pf.dirty)
			if ev {
				delete(h.origin, vAddr)
				if vDirty {
					h.writebackToL2(vAddr)
				}
			}
			if h.inflOrig[pf.line] == pf.orig {
				h.origin[pf.line] = pf.orig
			}
			delete(h.lineReady, pf.line)
			delete(h.inflOrig, pf.line)
		}
		h.pendingPVB = kept
	}

	// Drain one write-buffer entry per cycle when the bus is free.
	if len(h.writeBuf) > 0 && h.memFree <= now {
		line := h.writeBuf[0]
		h.writeBuf = h.writeBuf[1:]
		// Write-allocate the line (dirty) into L1.
		if !h.L1D.Probe(line) {
			if present, _ := h.PVB.Extract(line); present {
				h.fillL1(line, true, OriginNone)
			} else {
				if !h.L2.Access(line, false) {
					h.L2.Fill(line, false)
					h.memFree = now + h.P.MemOccupancy
				}
				h.fillL1(line, true, OriginNone)
			}
		} else {
			h.L1D.Access(line, true)
		}
	}
}

// WriteBufLen reports current write-buffer occupancy (tests and stats).
func (h *Hierarchy) WriteBufLen() int { return len(h.writeBuf) }
