package cache

import "fmt"

// PVB is the 64-entry unified prefetch/victim buffer. It is fully
// associative, holds whole L1 lines, and is probed in parallel with the L1
// on every access (Table 1). Prefetched lines land here rather than in the
// L1 so useless prefetches cannot evict useful L1 lines; L1 victims also
// land here, giving a second chance before the L2.
type PVB struct {
	entries   []pvbEntry
	lineShift uint
	clock     uint64
	stats     Stats
}

type pvbEntry struct {
	tag   uint64 // line address
	valid bool
	dirty bool
	lru   uint64
}

// NewPVB builds a prefetch/victim buffer of n whole lines of lineBytes.
// lineBytes must be a positive power of two; anything else is a
// configuration bug, reported by panic rather than the former infinite
// shift-search loop.
func NewPVB(n, lineBytes int) *PVB {
	shift, err := lineShiftFor(lineBytes)
	if err != nil {
		panic(fmt.Sprintf("cache: NewPVB: %v", err))
	}
	return &PVB{entries: make([]pvbEntry, n), lineShift: shift}
}

// Probe reports whether addr's line is buffered, without side effects.
func (b *PVB) Probe(addr uint64) bool {
	tag := addr >> b.lineShift
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].tag == tag {
			return true
		}
	}
	return false
}

// Extract removes addr's line for promotion into the L1 (the hit path).
// It returns whether the line was present and whether it was dirty.
func (b *PVB) Extract(addr uint64) (present, dirty bool) {
	b.stats.Accesses++
	tag := addr >> b.lineShift
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].tag == tag {
			dirty = b.entries[i].dirty
			b.entries[i] = pvbEntry{}
			b.stats.Hits++
			return true, dirty
		}
	}
	b.stats.Misses++
	return false, false
}

// Insert places a line (a prefetch arrival or an L1 victim), evicting LRU
// if full. It returns the evicted line and whether it was valid+dirty (a
// dirty victim must be written back to the L2).
func (b *PVB) Insert(addr uint64, dirty bool) (victimAddr uint64, victimDirty, evicted bool) {
	b.clock++
	tag := addr >> b.lineShift
	vi := 0
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].tag == tag {
			// Already buffered; refresh.
			b.entries[i].lru = b.clock
			b.entries[i].dirty = b.entries[i].dirty || dirty
			return 0, false, false
		}
		if !b.entries[i].valid {
			vi = i
		} else if b.entries[vi].valid && b.entries[i].lru < b.entries[vi].lru {
			vi = i
		}
	}
	if b.entries[vi].valid {
		evicted = true
		victimAddr = b.entries[vi].tag << b.lineShift
		victimDirty = b.entries[vi].dirty
		b.stats.Evictions++
		if victimDirty {
			b.stats.Writebacks++
		}
	}
	b.entries[vi] = pvbEntry{tag: tag, valid: true, dirty: dirty, lru: b.clock}
	return
}

// Stats returns a copy of the counters (Hits/Misses count Extract probes).
func (b *PVB) Stats() Stats { return b.stats }

// Counters returns the live counter struct for telemetry registration.
func (b *PVB) Counters() *Stats { return &b.stats }

// ResetStats zeroes the counters.
func (b *PVB) ResetStats() { b.stats = Stats{} }
