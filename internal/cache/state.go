package cache

// Checkpointable state for the memory hierarchy. A warm checkpoint captures
// the tag/LRU/dirty arrays of every cache level, the PVB, the stream
// prefetcher's stream table, the line-origin attribution map, and the
// memory-bus cursor. Transient machinery — in-flight fills (lineReady /
// inflOrig), pending PVB arrivals, and the write buffer — is deliberately
// absent: checkpoints are taken at a quiesced point where the CPU has
// proven all of it empty (see Hierarchy.Quiesced / PruneFills).
//
// Every State method deep-copies out and every SetState method deep-copies
// in: one checkpoint may be restored into many cores concurrently, so no
// restored core may alias checkpoint-owned slices or maps.

import "fmt"

// LineState is one cache line's checkpointable state.
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	LRU   uint64
}

// CacheState is the checkpointable state of one cache level.
type CacheState struct {
	Lines []LineState
	Clock uint64
}

// State captures the cache's tag/LRU state.
func (c *Cache) State() CacheState {
	s := CacheState{Lines: make([]LineState, len(c.lines)), Clock: c.clock}
	for i, l := range c.lines {
		s.Lines[i] = LineState{Tag: l.tag, Valid: l.valid, Dirty: l.dirty, LRU: l.lru}
	}
	return s
}

// SetState restores state captured from an identically configured cache.
func (c *Cache) SetState(s CacheState) error {
	if len(s.Lines) != len(c.lines) {
		return fmt.Errorf("cache %s: state has %d lines, cache has %d", c.name, len(s.Lines), len(c.lines))
	}
	for i, l := range s.Lines {
		c.lines[i] = line{tag: l.Tag, valid: l.Valid, dirty: l.Dirty, lru: l.LRU}
	}
	c.clock = s.Clock
	return nil
}

// PVBState is the checkpointable state of the prefetch/victim buffer.
type PVBState struct {
	Entries []LineState
	Clock   uint64
}

// State captures the PVB contents.
func (b *PVB) State() PVBState {
	s := PVBState{Entries: make([]LineState, len(b.entries)), Clock: b.clock}
	for i, e := range b.entries {
		s.Entries[i] = LineState{Tag: e.tag, Valid: e.valid, Dirty: e.dirty, LRU: e.lru}
	}
	return s
}

// SetState restores state captured from an identically sized PVB.
func (b *PVB) SetState(s PVBState) error {
	if len(s.Entries) != len(b.entries) {
		return fmt.Errorf("pvb: state has %d entries, buffer has %d", len(s.Entries), len(b.entries))
	}
	for i, e := range s.Entries {
		b.entries[i] = pvbEntry{tag: e.Tag, valid: e.Valid, dirty: e.Dirty, lru: e.LRU}
	}
	b.clock = s.Clock
	return nil
}

// StreamState is the checkpointable state of the stream prefetcher.
// Launched/Confirmed are observability counters with no behavioral effect
// and are not captured.
type StreamState struct {
	Streams []StreamEntry
	Clock   uint64
}

// StreamEntry is one detected stream.
type StreamEntry struct {
	Valid    bool
	NextLine uint64
	Dir      int64
	LastUse  uint64
}

// State captures the stream table.
func (p *StreamPrefetcher) State() StreamState {
	s := StreamState{Streams: make([]StreamEntry, len(p.streams)), Clock: p.clock}
	for i, st := range p.streams {
		s.Streams[i] = StreamEntry{Valid: st.valid, NextLine: st.nextLine, Dir: st.dir, LastUse: st.lastUse}
	}
	return s
}

// SetState restores state captured from an identically sized prefetcher.
func (p *StreamPrefetcher) SetState(s StreamState) error {
	if len(s.Streams) != len(p.streams) {
		return fmt.Errorf("stream prefetcher: state has %d streams, prefetcher has %d", len(s.Streams), len(p.streams))
	}
	for i, st := range s.Streams {
		p.streams[i] = stream{valid: st.Valid, nextLine: st.NextLine, dir: st.Dir, lastUse: st.LastUse}
	}
	p.clock = s.Clock
	return nil
}

// HierState is the hierarchy-level checkpointable state beyond the caches
// themselves: non-demand line attribution and the memory-bus cursor
// (MemFree is an absolute cycle; checkpoints preserve the cycle counter).
type HierState struct {
	Origin  map[uint64]Origin
	MemFree uint64
}

// State captures hierarchy-level state. It must be called only after
// PruneFills proved the hierarchy quiescent.
func (h *Hierarchy) State() HierState {
	s := HierState{Origin: make(map[uint64]Origin, len(h.origin)), MemFree: h.memFree}
	for k, v := range h.origin {
		s.Origin[k] = v
	}
	return s
}

// SetState restores hierarchy-level state.
func (h *Hierarchy) SetState(s HierState) {
	h.origin = make(map[uint64]Origin, len(s.Origin))
	for k, v := range s.Origin {
		h.origin[k] = v
	}
	h.memFree = s.MemFree
}

// Quiesced reports whether no background machinery is in flight at cycle
// now: no pending PVB arrivals, an empty write buffer, and no in-flight
// fill still due in the future.
func (h *Hierarchy) Quiesced(now uint64) bool {
	if len(h.pendingPVB) != 0 || len(h.writeBuf) != 0 {
		return false
	}
	for _, ready := range h.lineReady {
		if ready > now {
			return false
		}
	}
	return true
}

// PruneFills drops expired in-flight fill tracking. lineReady entries are
// normally pruned lazily on the next touch of the line; a checkpoint must
// prune them eagerly instead, because a stale entry would turn a future
// re-miss of that line into a bogus merge. It fails if any fill is still
// genuinely in flight.
func (h *Hierarchy) PruneFills(now uint64) error {
	for line, ready := range h.lineReady {
		if ready > now {
			return fmt.Errorf("cache: line %#x still in flight (ready %d > now %d)", line, ready, now)
		}
		delete(h.lineReady, line)
		delete(h.inflOrig, line)
	}
	return nil
}
