package cache

// StreamPrefetcher implements Table 1's hardware prefetcher: it watches L1
// demand misses, detects unit-stride sequences of line addresses (positive
// and negative), and asks the hierarchy to launch prefetches ahead of the
// stream. Before a stride is confirmed it also requests the sequential next
// block "when bandwidth is available" to exploit spatial locality beyond
// one 64-byte line.
type StreamPrefetcher struct {
	streams []stream
	clock   uint64
	// Depth is how many lines a confirmed stream runs ahead.
	Depth int

	// Counters.
	Launched  uint64 // prefetch requests issued to the hierarchy
	Confirmed uint64 // misses that matched an existing stream
}

type stream struct {
	valid    bool
	nextLine uint64 // the line address this stream expects to miss next
	dir      int64  // +1 or -1
	lastUse  uint64
}

// NewStreamPrefetcher builds a prefetcher with n stream slots.
func NewStreamPrefetcher(n, depth int) *StreamPrefetcher {
	return &StreamPrefetcher{streams: make([]stream, n), Depth: depth}
}

// OnMiss records a demand miss of lineAddr (already line-aligned, in units
// of one L1 line) and returns the list of line addresses to prefetch. The
// hierarchy filters lines already cached or in flight and applies the
// bandwidth gate.
func (p *StreamPrefetcher) OnMiss(lineAddr, lineBytes uint64) []uint64 {
	p.clock++
	var out []uint64

	// A miss matching an existing stream confirms it: run further ahead.
	for i := range p.streams {
		s := &p.streams[i]
		if s.valid && s.nextLine == lineAddr {
			p.Confirmed++
			s.lastUse = p.clock
			next := lineAddr
			for d := 0; d < p.Depth; d++ {
				next += uint64(s.dir) * lineBytes
				out = append(out, next)
			}
			s.nextLine = lineAddr + uint64(s.dir)*lineBytes
			p.Launched += uint64(len(out))
			return out
		}
	}

	// No stream matched: try to allocate one by checking whether a stream
	// anchored at a neighbouring line would have predicted this miss.
	// (This approximates the classic last-miss table: two misses one line
	// apart establish the stride.)
	for i := range p.streams {
		s := &p.streams[i]
		if s.valid && s.nextLine == lineAddr+lineBytes && s.dir == +1 {
			// Stale positive stream one behind; re-anchor.
			s.nextLine = lineAddr + lineBytes
			s.lastUse = p.clock
		}
	}
	// Allocate a fresh candidate stream in each direction; the one the
	// access pattern actually follows gets confirmed on the next miss.
	p.allocate(lineAddr+lineBytes, +1)
	p.allocate(lineAddr-lineBytes, -1)

	// Sequential next-block prefetch before any stride is known.
	out = append(out, lineAddr+lineBytes)
	p.Launched++
	return out
}

func (p *StreamPrefetcher) allocate(nextLine uint64, dir int64) {
	vi := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			vi = i
			break
		}
		if p.streams[i].lastUse < p.streams[vi].lastUse {
			vi = i
		}
	}
	p.streams[vi] = stream{valid: true, nextLine: nextLine, dir: dir, lastUse: p.clock}
}
