package cache

import (
	"strings"
	"testing"
)

// TestLineShiftValidation locks the power-of-two guard shared by every
// structure that derives a line shift. NewPVB used to spin forever on a
// non-power-of-two line size; now it must panic with a clear message, and
// NewCache must return an error.
func TestLineShiftValidation(t *testing.T) {
	cases := []struct {
		lineBytes int
		shift     uint
		ok        bool
	}{
		{1, 0, true},
		{2, 1, true},
		{64, 6, true},
		{128, 7, true},
		{4096, 12, true},
		{0, 0, false},
		{-1, 0, false},
		{-64, 0, false},
		{3, 0, false},
		{48, 0, false},
		{96, 0, false},
		{65, 0, false},
	}
	for _, c := range cases {
		shift, err := lineShiftFor(c.lineBytes)
		if c.ok {
			if err != nil {
				t.Errorf("lineShiftFor(%d): unexpected error %v", c.lineBytes, err)
			} else if shift != c.shift {
				t.Errorf("lineShiftFor(%d) = %d, want %d", c.lineBytes, shift, c.shift)
			}
			continue
		}
		if err == nil {
			t.Errorf("lineShiftFor(%d): want error, got shift %d", c.lineBytes, shift)
		}
	}
}

func TestNewPVBPanicsOnBadLineSize(t *testing.T) {
	for _, lineBytes := range []int{0, -1, 3, 48, 96} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("NewPVB(64, %d): expected panic", lineBytes)
					return
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "power of two") {
					t.Errorf("NewPVB(64, %d): panic %v lacks a clear message", lineBytes, r)
				}
			}()
			NewPVB(64, lineBytes)
		}()
	}
	// Valid sizes must still construct.
	if b := NewPVB(64, 64); b == nil || b.lineShift != 6 {
		t.Error("NewPVB(64, 64) misconfigured")
	}
}

func TestNewCacheRejectsBadLineSize(t *testing.T) {
	for _, lineBytes := range []int{0, -1, 3, 48} {
		if _, err := NewCache("bad", 64<<10, 2, lineBytes); err == nil {
			t.Errorf("NewCache line=%d: want error", lineBytes)
		}
	}
}
