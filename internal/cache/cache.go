// Package cache models the paper's memory hierarchy (Table 1): a 64 KB
// 2-way L1 data cache with 64-byte lines and 3-cycle access, a 2 MB 4-way
// unified L2 with 128-byte lines and 6-cycle access, 100-cycle minimum
// memory latency, write-back write-allocate everywhere, a 64-entry unified
// prefetch/victim buffer probed in parallel with the L1, and a hardware
// stream prefetcher that detects unit-stride miss patterns (positive and
// negative) and prefetches sequential blocks when bandwidth is available.
//
// Caches here track tags, dirty bits, and LRU state only — data lives in
// the shared mem.Memory. That is exact for a simulator in which functional
// values come from the memory image and only timing flows through the
// hierarchy.
package cache

import (
	"fmt"

	"repro/internal/stats"
)

// Stats counts events for one cache. The definition lives in the
// telemetry package so stats.Snapshot can embed it without an import
// cycle; the alias keeps every existing call site reading naturally.
type Stats = stats.CacheStats

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is one set-associative, write-back, write-allocate cache level.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	lines     []line // sets × ways, row-major
	clock     uint64 // LRU timestamp source
	stats     Stats
}

// lineShiftFor returns log2(lineBytes), rejecting sizes that are not a
// positive power of two. Every structure that derives a line shift must go
// through it: the naive `for 1<<shift != lineBytes` loop spins forever on
// a bad size instead of failing.
func lineShiftFor(lineBytes int) (uint, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return 0, fmt.Errorf("line size %d is not a positive power of two", lineBytes)
	}
	shift := uint(0)
	for 1<<shift != lineBytes {
		shift++
	}
	return shift, nil
}

// NewCache builds a cache with the given geometry. sizeBytes must be
// sets*ways*lineBytes; lineBytes and sets must be powers of two.
func NewCache(name string, sizeBytes, ways, lineBytes int) (*Cache, error) {
	shift, err := lineShiftFor(lineBytes)
	if err != nil {
		return nil, fmt.Errorf("cache %s: %v", name, err)
	}
	if ways <= 0 || sizeBytes%(ways*lineBytes) != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible by ways*line", name, sizeBytes)
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", name, sets)
	}
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		lines:     make([]line, sets*ways),
	}, nil
}

// MustCache is NewCache that panics; configuration is static.
func MustCache(name string, sizeBytes, ways, lineBytes int) *Cache {
	c, err := NewCache(name, sizeBytes, ways, lineBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

func (c *Cache) set(addr uint64) []line {
	idx := (addr >> c.lineShift) & uint64(c.sets-1)
	return c.lines[int(idx)*c.ways : (int(idx)+1)*c.ways]
}

// Probe reports whether addr's line is present without updating LRU or
// stats (used by the prefetcher to filter redundant prefetches).
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	s := c.set(addr)
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			return true
		}
	}
	return false
}

// Access looks up addr; on hit it updates LRU (and the dirty bit for
// writes) and returns true. On miss it returns false without filling — the
// hierarchy decides when the fill lands.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	c.stats.Accesses++
	tag := addr >> c.lineShift
	s := c.set(addr)
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			s[i].lru = c.clock
			if write {
				s[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Fill installs addr's line, returning the evicted victim if one was valid.
// dirty marks the incoming line (write-allocate stores fill dirty).
func (c *Cache) Fill(addr uint64, dirty bool) (victimAddr uint64, victimDirty, evicted bool) {
	c.clock++
	tag := addr >> c.lineShift
	s := c.set(addr)
	// Already present (a racing fill): just refresh.
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			s[i].lru = c.clock
			s[i].dirty = s[i].dirty || dirty
			return 0, false, false
		}
	}
	// Pick an invalid way, else the LRU way.
	vi := 0
	for i := range s {
		if !s[i].valid {
			vi = i
			goto place
		}
		if s[i].lru < s[vi].lru {
			vi = i
		}
	}
	if s[vi].valid {
		evicted = true
		victimDirty = s[vi].dirty
		victimAddr = s[vi].tag << c.lineShift
		c.stats.Evictions++
		if victimDirty {
			c.stats.Writebacks++
		}
	}
place:
	s[vi] = line{tag: tag, valid: true, dirty: dirty, lru: c.clock}
	return victimAddr, victimDirty, evicted
}

// Invalidate removes addr's line if present, reporting whether it was there
// and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	tag := addr >> c.lineShift
	s := c.set(addr)
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			present, dirty = true, s[i].dirty
			s[i] = line{}
			return
		}
	}
	return
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Counters returns the live counter struct for telemetry registration:
// the registry resets and snapshots it in place.
func (c *Cache) Counters() *Stats { return &c.stats }

// ResetStats zeroes the counters (used after warm-up, like the paper's 100M
// instruction warm-up run).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }
