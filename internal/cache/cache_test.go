package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheGeometryValidation(t *testing.T) {
	if _, err := NewCache("x", 64<<10, 2, 64); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	if _, err := NewCache("x", 64<<10, 2, 48); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := NewCache("x", 1000, 3, 64); err == nil {
		t.Error("indivisible size accepted")
	}
	if _, err := NewCache("x", 3*64*2, 2, 64); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := MustCache("t", 4096, 2, 64)
	addr := uint64(0x12340)
	if c.Access(addr, false) {
		t.Fatal("cold access must miss")
	}
	c.Fill(addr, false)
	if !c.Access(addr, false) {
		t.Error("access after fill must hit")
	}
	// Same line, different offset.
	if !c.Access(addr+63-(addr%64), false) {
		t.Error("same-line offset must hit")
	}
	// Next line misses.
	if c.Access(c.LineAddr(addr)+64, false) {
		t.Error("neighbouring line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 64B lines, 2 sets → 256 bytes.
	c := MustCache("t", 256, 2, 64)
	// Three lines mapping to set 0 (line addresses 0x1000, 0x1080 differ
	// in set bit; choose stride = sets*line = 128 bytes).
	a, b2, d := uint64(0x1000), uint64(0x1080), uint64(0x1100)
	c.Fill(a, false)
	c.Fill(b2, false)
	c.Access(a, false) // make a MRU
	vAddr, _, ev := c.Fill(d, false)
	if !ev || vAddr != b2 {
		t.Errorf("evicted %#x (ev=%v), want %#x", vAddr, ev, b2)
	}
	if !c.Probe(a) || !c.Probe(d) || c.Probe(b2) {
		t.Error("post-eviction contents wrong")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := MustCache("t", 128, 1, 64) // direct-mapped, 2 sets
	a := uint64(0x1000)
	conflict := uint64(0x1080) // same set (stride 128)
	c.Fill(a, false)
	c.Access(a, true) // dirty it
	vAddr, vDirty, ev := c.Fill(conflict, false)
	if !ev || vAddr != a || !vDirty {
		t.Errorf("eviction = %#x dirty=%v ev=%v", vAddr, vDirty, ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCacheFillIdempotent(t *testing.T) {
	c := MustCache("t", 4096, 2, 64)
	c.Fill(0x2000, false)
	_, _, ev := c.Fill(0x2000, true)
	if ev {
		t.Error("refill of resident line must not evict")
	}
	// The refill with dirty=true must stick.
	v, d, e := c.Fill(0x2000+4096, false) // placed in other way or set
	_ = v
	_ = d
	_ = e
	if !c.Probe(0x2000) {
		t.Error("line vanished")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := MustCache("t", 4096, 2, 64)
	c.Fill(0x3000, true)
	present, dirty := c.Invalidate(0x3000)
	if !present || !dirty {
		t.Errorf("invalidate = %v,%v", present, dirty)
	}
	if c.Probe(0x3000) {
		t.Error("line still present after invalidate")
	}
	if p, _ := c.Invalidate(0x3000); p {
		t.Error("double invalidate reported present")
	}
}

// Property: the cache never holds more distinct lines than its capacity,
// and a hit is always preceded by a fill of that line (reference model).
func TestQuickCacheReferenceModel(t *testing.T) {
	c := MustCache("t", 2048, 2, 64) // 16 sets... 2048/(2*64)=16
	resident := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		addr := uint64(rng.Intn(64)) * 64 * uint64(rng.Intn(7)+1)
		line := c.LineAddr(addr)
		if rng.Intn(2) == 0 {
			hit := c.Access(addr, false)
			if hit != resident[line] {
				t.Fatalf("access(%#x) hit=%v, model says %v", addr, hit, resident[line])
			}
		} else {
			vAddr, _, ev := c.Fill(addr, false)
			if ev {
				if !resident[vAddr] {
					t.Fatalf("evicted non-resident line %#x", vAddr)
				}
				delete(resident, vAddr)
			}
			resident[line] = true
		}
		if len(resident) > 32 {
			t.Fatalf("model holds %d lines > capacity", len(resident))
		}
	}
}

func TestPVBInsertExtract(t *testing.T) {
	b := NewPVB(4, 64)
	b.Insert(0x1000, false)
	b.Insert(0x2000, true)
	if !b.Probe(0x1000) || !b.Probe(0x2040) == false && false {
		t.Error("probe failed")
	}
	present, dirty := b.Extract(0x2000)
	if !present || !dirty {
		t.Errorf("extract = %v,%v", present, dirty)
	}
	if b.Probe(0x2000) {
		t.Error("extract did not remove the line")
	}
	// Same-line offset probes hit.
	if !b.Probe(0x1004) {
		t.Error("offset probe missed")
	}
}

func TestPVBEvictsLRU(t *testing.T) {
	b := NewPVB(2, 64)
	b.Insert(0x1000, false)
	b.Insert(0x2000, true)
	vAddr, vDirty, ev := b.Insert(0x3000, false)
	if !ev || vAddr != 0x1000 || vDirty {
		t.Errorf("evicted %#x dirty=%v ev=%v", vAddr, vDirty, ev)
	}
	// Duplicate insert refreshes rather than duplicating.
	b.Insert(0x3000, true)
	if p, d := b.Extract(0x3000); !p || !d {
		t.Error("duplicate insert lost dirtiness")
	}
}

func TestStreamPrefetcherDetectsPositiveStride(t *testing.T) {
	p := NewStreamPrefetcher(4, 2)
	const lb = 64
	p.OnMiss(0x10000, lb) // allocates candidates
	out := p.OnMiss(0x10040, lb)
	// The +1 candidate stream predicted this; expect depth-2 run-ahead.
	want := []uint64{0x10080, 0x100C0}
	if len(out) != len(want) {
		t.Fatalf("prefetches = %#v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %#x, want %#x", i, out[i], want[i])
		}
	}
	if p.Confirmed != 1 {
		t.Errorf("confirmed = %d", p.Confirmed)
	}
}

func TestStreamPrefetcherDetectsNegativeStride(t *testing.T) {
	p := NewStreamPrefetcher(4, 1)
	const lb = 64
	p.OnMiss(0x10000, lb)
	out := p.OnMiss(0x10000-lb, lb)
	if len(out) != 1 || out[0] != 0x10000-2*lb {
		t.Errorf("negative stride prefetch = %#v", out)
	}
}

func TestStreamPrefetcherSequentialFallback(t *testing.T) {
	p := NewStreamPrefetcher(4, 2)
	out := p.OnMiss(0x40000, 64)
	if len(out) != 1 || out[0] != 0x40040 {
		t.Errorf("sequential fallback = %#v", out)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	p := DefaultParams()
	h := NewHierarchy(p)
	addr := uint64(0x100000)

	// Cold: memory latency.
	r := h.Access(addr, false, KindDemand, 1000)
	if r.Level != LevelMem {
		t.Fatalf("cold access level = %v", r.Level)
	}
	if r.Latency != p.LatL1+p.LatL2+p.LatMem {
		t.Errorf("cold latency = %d, want %d", r.Latency, p.LatL1+p.LatL2+p.LatMem)
	}

	// Hot after the fill arrives.
	later := 1000 + r.Latency + 1
	r = h.Access(addr, false, KindDemand, later)
	if r.Level != LevelL1 || r.Latency != p.LatL1 {
		t.Errorf("hot access = %+v", r)
	}

	// A different address in the same L2 line but a different L1 line:
	// L2 hit latency.
	other := addr + uint64(p.L1Line)
	r = h.Access(other, false, KindDemand, later)
	if r.Level != LevelL2 && r.Level != LevelPVB && r.Level != LevelMerged {
		// The sequential prefetcher may have already pulled it into the
		// PVB or still have it in flight; all are acceptable fast paths.
		t.Errorf("same-L2-line access level = %v", r.Level)
	}
}

func TestHierarchyMergesInflight(t *testing.T) {
	p := DefaultParams()
	h := NewHierarchy(p)
	addr := uint64(0x200000)
	r1 := h.Access(addr, false, KindDemand, 100)
	r2 := h.Access(addr+8, false, KindDemand, 110)
	if r2.Level != LevelMerged {
		t.Fatalf("second access level = %v", r2.Level)
	}
	if got, want := r2.Latency, 100+r1.Latency-110; got != want {
		t.Errorf("merged latency = %d, want %d", got, want)
	}
}

func TestHierarchyHelperCoverage(t *testing.T) {
	p := DefaultParams()
	h := NewHierarchy(p)
	addr := uint64(0x300000)
	// Helper brings the line in.
	r := h.Access(addr, false, KindHelper, 100)
	if r.HelperCovered {
		t.Error("helper access must not count as covered")
	}
	// Demand touch after arrival is covered.
	r = h.Access(addr, false, KindDemand, 100+r.Latency+1)
	if !r.HelperCovered {
		t.Error("demand touch of helper-fetched line must be covered")
	}
	if h.Stats.HelperCovered != 1 {
		t.Errorf("HelperCovered = %d", h.Stats.HelperCovered)
	}
	// Second touch is not covered again.
	r = h.Access(addr, false, KindDemand, 400)
	if r.HelperCovered {
		t.Error("coverage must count once per line")
	}
}

func TestHierarchyHelperMergedCoverage(t *testing.T) {
	p := DefaultParams()
	h := NewHierarchy(p)
	addr := uint64(0x340000)
	h.Access(addr, false, KindHelper, 100)
	// Demand arrives while the helper's fill is still in flight: partial
	// latency, still attributed.
	r := h.Access(addr, false, KindDemand, 120)
	if r.Level != LevelMerged || !r.HelperCovered {
		t.Errorf("merged helper coverage = %+v", r)
	}
}

func TestHierarchyPVBPath(t *testing.T) {
	p := DefaultParams()
	p.Streams = 1
	h := NewHierarchy(p)
	// Trigger a demand miss; its sequential prefetch lands in the PVB.
	r0 := h.Access(0x400000, false, KindDemand, 100)
	for now := uint64(100); now < 100+r0.Latency+300; now++ {
		h.Tick(now)
	}
	if h.Stats.PrefetchIssued == 0 {
		t.Fatal("no prefetch issued")
	}
	r := h.Access(0x400000+uint64(p.L1Line), false, KindDemand, 600)
	if r.Level != LevelPVB {
		t.Fatalf("prefetched line level = %v", r.Level)
	}
	if r.Latency != p.LatL1 {
		t.Errorf("PVB hit latency = %d", r.Latency)
	}
	if !r.HWPrefCovered {
		t.Error("PVB hit on prefetched line must be HWPrefCovered")
	}
}

func TestWriteBufferBackpressure(t *testing.T) {
	p := DefaultParams()
	p.WriteBufEntries = 2
	h := NewHierarchy(p)
	// Store misses to distinct lines fill the buffer.
	if !h.StoreRetire(0x500000, 10) || !h.StoreRetire(0x510000, 10) {
		t.Fatal("stores rejected with space available")
	}
	if h.StoreRetire(0x520000, 10) {
		t.Error("store accepted with full buffer")
	}
	if h.Stats.WriteBufFull != 1 {
		t.Errorf("WriteBufFull = %d", h.Stats.WriteBufFull)
	}
	// Draining frees space.
	for now := uint64(11); now < 500 && h.WriteBufLen() > 0; now++ {
		h.Tick(now)
	}
	if h.WriteBufLen() != 0 {
		t.Error("write buffer did not drain")
	}
	if !h.StoreRetire(0x520000, 600) {
		t.Error("store rejected after drain")
	}
}

func TestStoreHitBypassesBuffer(t *testing.T) {
	h := NewHierarchy(DefaultParams())
	addr := uint64(0x600000)
	r := h.Access(addr, false, KindDemand, 10)
	if !h.StoreRetire(addr, 10+r.Latency+1) {
		t.Error("store hit rejected")
	}
	if h.WriteBufLen() != 0 {
		t.Error("store hit consumed a write-buffer entry")
	}
}

func TestICacheFetch(t *testing.T) {
	h := NewHierarchy(DefaultParams())
	if lat := h.FetchAccess(0x1000, 5); lat == 0 {
		t.Error("cold fetch must miss")
	}
	if lat := h.FetchAccess(0x1000, 10); lat != 0 {
		t.Errorf("warm fetch latency = %d", lat)
	}
	if h.Stats.ICMisses != 1 {
		t.Errorf("ICMisses = %d", h.Stats.ICMisses)
	}
}

// Property: latency is always at least the L1 latency and levels are
// consistent with L1Miss.
func TestQuickHierarchyInvariants(t *testing.T) {
	h := NewHierarchy(DefaultParams())
	now := uint64(100)
	f := func(a uint32, helper bool) bool {
		addr := uint64(a)%(1<<22) + 0x10000
		kind := KindDemand
		if helper {
			kind = KindHelper
		}
		r := h.Access(addr, false, kind, now)
		h.Tick(now)
		now += 3
		if r.Latency < h.P.LatL1 {
			return false
		}
		if r.Level == LevelL1 && r.L1Miss {
			return false
		}
		if (r.Level == LevelL2 || r.Level == LevelMem || r.Level == LevelPVB) && !r.L1Miss {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestHotLoopFitsInL1(t *testing.T) {
	// A working set smaller than the L1 must stop missing after one pass.
	h := NewHierarchy(DefaultParams())
	now := uint64(0)
	for pass := 0; pass < 3; pass++ {
		missesBefore := h.L1D.Stats().Misses
		for a := uint64(0); a < 32<<10; a += 64 {
			r := h.Access(0x700000+a, false, KindDemand, now)
			now += r.Latency
			h.Tick(now)
		}
		if pass > 0 && h.L1D.Stats().Misses != missesBefore {
			t.Errorf("pass %d missed %d times", pass, h.L1D.Stats().Misses-missesBefore)
		}
	}
}
