package profile

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func TestCharacterizeSynthetic(t *testing.T) {
	s := stats.New()
	// A hot problem load: 1000 execs, 400 misses.
	pl := s.ByPC(0x1000)
	pl.IsLoad = true
	pl.Execs, pl.Misses = 1000, 400
	// A well-behaved load: many execs, few misses.
	gl := s.ByPC(0x1004)
	gl.IsLoad = true
	gl.Execs, gl.Misses = 10000, 20
	// A problem branch: 1000 execs, 300 mispredicts.
	pb := s.ByPC(0x1008)
	pb.IsBranch = true
	pb.Execs, pb.Mispredicts = 1000, 300
	// A biased branch.
	gb := s.ByPC(0x100c)
	gb.IsBranch = true
	gb.Execs, gb.Mispredicts = 20000, 50

	r := Characterize(s, Options{MinPDEs: 100, MinRate: 0.10})
	if r.MemSI != 1 || !r.LoadPCs[0x1000] || r.LoadPCs[0x1004] {
		t.Errorf("mem selection wrong: %+v", r)
	}
	if r.BrSI != 1 || !r.BranchPCs[0x1008] || r.BranchPCs[0x100c] {
		t.Errorf("branch selection wrong: %+v", r)
	}
	// Coverage: the problem load covers 400/420 misses.
	if r.MissCoverage < 0.90 || r.MissCoverage > 0.99 {
		t.Errorf("miss coverage = %.3f", r.MissCoverage)
	}
	// The problem load is a small fraction of dynamic memory ops.
	if r.MemFrac > 0.15 {
		t.Errorf("mem frac = %.3f", r.MemFrac)
	}
	if r.MispredCoverage < 0.80 {
		t.Errorf("mispredict coverage = %.3f", r.MispredCoverage)
	}
}

func TestCharacterizeEmptyStats(t *testing.T) {
	r := Characterize(stats.New(), DefaultOptions(100000))
	if r.MemSI != 0 || r.BrSI != 0 {
		t.Errorf("empty stats produced problem instructions: %+v", r)
	}
}

func TestTopOffenders(t *testing.T) {
	s := stats.New()
	for i, misses := range []uint64{5, 50, 500} {
		st := s.ByPC(uint64(0x1000 + i*4))
		st.IsLoad = true
		st.Execs, st.Misses = 1000, misses
	}
	top := TopOffenders(s, 2)
	if len(top) != 2 || top[0].Misses != 500 || top[1].Misses != 50 {
		t.Errorf("top = %+v", top)
	}
}

// TestProblemConcentrationOnWorkloads reproduces Table 2's core claim on
// our kernels: a handful of static instructions covers the large majority
// of PDEs.
func TestProblemConcentrationOnWorkloads(t *testing.T) {
	for _, name := range []string{"vpr", "mcf", "gzip", "eon"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			core := cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
			core.Run(30_000)
			core.ResetStats()
			s := core.Run(80_000)
			r := Characterize(s, DefaultOptions(80_000))
			if name != "eon" {
				if r.MemSI == 0 || r.MemSI > 20 {
					t.Errorf("MemSI = %d", r.MemSI)
				}
				if r.MissCoverage < 0.5 {
					t.Errorf("miss coverage = %.2f", r.MissCoverage)
				}
			}
			if r.BrSI == 0 || r.BrSI > 20 {
				t.Errorf("BrSI = %d", r.BrSI)
			}
			if r.MispredCoverage < 0.5 {
				t.Errorf("mispredict coverage = %.2f", r.MispredCoverage)
			}
		})
	}
}

// TestPerfectingProblemInstructionsHelps is Figure 1's middle bar: giving
// only the problem instructions a perfect cache and predictor recovers a
// large share of the all-perfect speedup.
func TestPerfectingProblemInstructionsHelps(t *testing.T) {
	w, err := workloads.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	run := func(p cpu.Perfect) *stats.Sim {
		cfg := cpu.Config4Wide()
		cfg.Perfect = p
		core := cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, nil)
		core.Run(30_000)
		core.ResetStats()
		return core.Run(80_000)
	}

	base := run(cpu.Perfect{})
	// Profile on a fresh baseline run.
	core := cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
	core.Run(30_000)
	core.ResetStats()
	r := Characterize(core.Run(80_000), DefaultOptions(80_000))

	prob := run(cpu.Perfect{LoadPCs: r.LoadPCs, BranchPCs: r.BranchPCs})
	perf := run(cpu.Perfect{AllBranches: true, AllLoads: true})

	if !(perf.IPC() > prob.IPC() && prob.IPC() > base.IPC()) {
		t.Fatalf("IPC ordering violated: base %.3f, prob %.3f, perfect %.3f",
			base.IPC(), prob.IPC(), perf.IPC())
	}
	// The problem instructions account for much of the base→perfect gap.
	frac := (prob.IPC() - base.IPC()) / (perf.IPC() - base.IPC())
	if frac < 0.4 {
		t.Errorf("problem instructions recover only %.0f%% of the perfect gap", frac*100)
	}
}
