// Package profile implements the problem-instruction characterization of
// §2.2: attribute performance degrading events (cache misses and branch
// mispredictions) to static instructions and select the small set that
// accounts for a disproportionate share — instructions with a non-trivial
// PDE count where at least 10% of executions cause a PDE.
//
// The selected PC sets drive the per-static-instruction perfect modes used
// by Figure 1's "prob. inst. perfect" bars and Figure 11's constrained
// limit study.
package profile

import (
	"sort"

	"repro/internal/stats"
)

// Options tunes the classification.
type Options struct {
	// MinPDEs is the non-trivial event count threshold. Scale it with the
	// measured region length.
	MinPDEs uint64
	// MinRate is the per-execution PDE rate threshold (the paper's 10%).
	MinRate float64
}

// DefaultOptions mirrors the paper's classification for our (scaled-down)
// measurement regions.
func DefaultOptions(regionInsts uint64) Options {
	minPDEs := regionInsts / 10000 // ≥0.01% of the region
	if minPDEs < 16 {
		minPDEs = 16
	}
	return Options{MinPDEs: minPDEs, MinRate: 0.10}
}

// Result is one workload's problem-instruction characterization — the
// columns of Table 2.
type Result struct {
	// Memory problem instructions.
	MemSI int
	// MemFrac is the fraction of dynamic memory operations the problem
	// loads account for ("mem" in Table 2).
	MemFrac float64
	// MissCoverage is the fraction of all load misses they cover ("mis").
	MissCoverage float64

	// Control problem instructions.
	BrSI int
	// BrFrac is the fraction of dynamic conditional branches covered.
	BrFrac float64
	// MispredCoverage is the fraction of all mispredictions covered.
	MispredCoverage float64

	// The selected PCs, for the perfect modes.
	LoadPCs   map[uint64]bool
	BranchPCs map[uint64]bool
}

// Characterize classifies the per-PC statistics of one measured run.
func Characterize(s *stats.Sim, opt Options) Result {
	r := Result{
		LoadPCs:   make(map[uint64]bool),
		BranchPCs: make(map[uint64]bool),
	}
	var totalLoadExecs, totalMisses uint64
	var totalBrExecs, totalMispredicts uint64
	var probLoadExecs, probMisses uint64
	var probBrExecs, probMispredicts uint64

	for _, st := range s.Static {
		switch {
		case st.IsLoad:
			totalLoadExecs += st.Execs
			totalMisses += st.Misses
			if st.Misses >= opt.MinPDEs && st.MissRate() >= opt.MinRate {
				r.MemSI++
				r.LoadPCs[st.PC] = true
				probLoadExecs += st.Execs
				probMisses += st.Misses
			}
		case st.IsBranch:
			totalBrExecs += st.Execs
			totalMispredicts += st.Mispredicts
			if st.Mispredicts >= opt.MinPDEs && st.MispredictRate() >= opt.MinRate {
				r.BrSI++
				r.BranchPCs[st.PC] = true
				probBrExecs += st.Execs
				probMispredicts += st.Mispredicts
			}
		}
	}
	if totalLoadExecs > 0 {
		r.MemFrac = float64(probLoadExecs) / float64(totalLoadExecs)
	}
	if totalMisses > 0 {
		r.MissCoverage = float64(probMisses) / float64(totalMisses)
	}
	if totalBrExecs > 0 {
		r.BrFrac = float64(probBrExecs) / float64(totalBrExecs)
	}
	if totalMispredicts > 0 {
		r.MispredCoverage = float64(probMispredicts) / float64(totalMispredicts)
	}
	return r
}

// ProblemPCs returns the union of the problem load and branch PCs, sorted
// ascending — the deterministic work list automatic slice construction
// starts from.
func (r Result) ProblemPCs() []uint64 {
	out := make([]uint64, 0, len(r.LoadPCs)+len(r.BranchPCs))
	for pc := range r.LoadPCs {
		out = append(out, pc)
	}
	for pc := range r.BranchPCs {
		if !r.LoadPCs[pc] {
			out = append(out, pc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopOffenders returns the n static instructions with the most PDEs, for
// reports and slice-construction guidance.
func TopOffenders(s *stats.Sim, n int) []*stats.Static {
	var all []*stats.Static
	for _, st := range s.Static {
		if st.Misses+st.Mispredicts > 0 {
			all = append(all, st)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		pi := all[i].Misses + all[i].Mispredicts
		pj := all[j].Misses + all[j].Mispredicts
		if pi != pj {
			return pi > pj
		}
		return all[i].PC < all[j].PC
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
