package harness

// Cross-process coordination for the on-disk checkpoint store. The store
// is a content-addressed cache (ckptPath hashes the warm key) that PR 4
// made safe for one writer; this file makes it safe for a fleet:
//
//   - Single-flight per warm key: before building, a writer acquires a
//     lock-file lease (O_CREATE|O_EXCL) next to the entry. Everyone who
//     loses the race waits for the *done marker* — the entry itself, which
//     appears atomically via rename — and loads it instead of rebuilding.
//     The second reader re-validates the full container (magic, schema,
//     key, CRC) on load; a corrupt publish falls back to taking the lease
//     and rebuilding.
//   - Staleness takeover: a lease holder heartbeats its lock file's mtime
//     while it builds. If the holder dies or stalls past leaseTTL, a
//     waiter steals the lease by *renaming* the stale lock — rename is
//     atomic, so exactly one contender wins and a fresh lease can never be
//     unlinked by a racing second waiter — and becomes the builder. The
//     first takeover in a process warns once.
//   - Size-bounded LRU GC: with MaxBytes set, every store sweeps the
//     directory and evicts least-recently-used entries (mtime order;
//     loads touch their entry) until the total is back under the bound.
//
// Liveness: a waiter either observes the done marker, observes the lease
// vanish or go stale (and re-races for it), or keeps waiting while the
// holder keeps heartbeating — i.e. while real progress is being made. A
// holder that crashes after publishing but before unlocking is harmless:
// waiters check for the marker before the lease.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Lease tunables. Vars, not consts, so tests can compress time; real
// builds at full scale run minutes, so staleness must mean "no heartbeat",
// never "slow build".
var (
	// leaseTTL is how long a lock file may go without a heartbeat before
	// any waiter may steal it.
	leaseTTL = 10 * time.Second
	// leaseHeartbeat is the holder's mtime refresh period (≪ leaseTTL).
	leaseHeartbeat = 2 * time.Second
	// leasePoll is the waiters' marker/staleness polling period.
	leasePoll = 20 * time.Millisecond
)

// staleLeaseWarned dedups the takeover warning (one per process), and
// staleLeaseSeq makes steal-rename targets unique within it.
var (
	staleLeaseWarned atomic.Bool
	staleLeaseSeq    atomic.Uint64
)

func (cp *Checkpointer) trace(ev stats.Event) {
	if cp.Tracer != nil {
		cp.Tracer.Emit(ev)
	}
}

// warmFromStore resolves one warm prefix against the on-disk store with
// cross-process single-flight, or builds directly when no store is
// configured. Called once per key per process (the in-memory entry map
// has already single-flighted within the process).
func (cp *Checkpointer) warmFromStore(w *workloads.Workload, cfg cpu.Config, withSlices bool, warm uint64, key string) (*cpu.Checkpoint, WarmSource, error) {
	if cp.Dir == "" {
		ck, _, err := cp.buildCounted(w, cfg, withSlices, warm)
		return ck, WarmFromSim, err
	}
	path := ckptPath(cp.Dir, key)
	lock := path + ".lock"
	waited := false
	hit := func(ck *cpu.Checkpoint, n int) (*cpu.Checkpoint, WarmSource, error) {
		cp.mu.Lock()
		cp.st.WarmHits++
		cp.st.DiskLoads++
		cp.st.DiskBytes += uint64(n)
		if waited {
			cp.st.SingleflightHits++
		}
		cp.mu.Unlock()
		// Touch the entry so eviction order tracks use, not creation.
		now := time.Now()
		os.Chtimes(path, now, now)
		return ck, WarmFromDisk, nil
	}
	for {
		// Done marker first: if the entry exists and validates (the CRC
		// re-check every reader performs), nobody needs to build. A
		// corrupt entry can never validate, so waiting on it would spin
		// forever — remove it and let the lease protocol rebuild it.
		// Removal keys off a failed parse of existing bytes, never off
		// absence; if a peer republishes a good entry in the read-to-
		// remove window the remove costs one extra rebuild, nothing more.
		ck, n, corrupt := cp.diskLoad(key)
		if ck != nil {
			return hit(ck, n)
		}
		if corrupt {
			os.Remove(path)
		}
		l, ok := cp.tryLease(lock)
		if ok {
			// Double-check under the lease: a racing holder may have
			// published between our load above and our acquire.
			if ck, n, _ := cp.diskLoad(key); ck != nil {
				l.release()
				return hit(ck, n)
			}
			ck, persist, err := cp.buildCounted(w, cfg, withSlices, warm)
			if err == nil && persist {
				if n := cp.diskStore(key, ck); n > 0 {
					cp.mu.Lock()
					cp.st.DiskStores++
					cp.st.DiskBytes += uint64(n)
					cp.mu.Unlock()
					cp.gc(path)
				}
			}
			l.release()
			return ck, WarmFromSim, err
		}
		// A peer holds the lease; wait for its done marker (or its death).
		if !waited {
			waited = true
			cp.mu.Lock()
			cp.st.SingleflightWaits++
			cp.mu.Unlock()
			cp.trace(stats.Event{Kind: stats.EvCkptSingleflightWait, Level: filepath.Base(path)})
		}
		cp.waitPeer(path, lock)
	}
}

// lease is a held lock file plus its heartbeat. The zero/nil lease is a
// valid no-op (degraded mode when the store directory is unusable).
type lease struct {
	path string
	stop chan struct{}
	done chan struct{}
}

// tryLease attempts to acquire the lock file. ok=false means a peer holds
// it. An unusable store directory degrades to an uncoordinated build
// (ok=true with a nil lease): the same warning-and-proceed contract
// diskStore already has.
func (cp *Checkpointer) tryLease(lock string) (*lease, bool) {
	if err := os.MkdirAll(cp.Dir, 0o755); err != nil {
		warnf("checkpoint store: %v", err)
		return nil, true
	}
	f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, false
		}
		warnf("checkpoint store: lease: %v", err)
		return nil, true
	}
	fmt.Fprintf(f, "pid=%d start=%s\n", os.Getpid(), time.Now().Format(time.RFC3339))
	f.Close()
	l := &lease{path: lock, stop: make(chan struct{}), done: make(chan struct{})}
	go l.heartbeat()
	return l, true
}

// heartbeat refreshes the lock's mtime so waiters can tell a slow build
// from a dead holder.
func (l *lease) heartbeat() {
	defer close(l.done)
	t := time.NewTicker(leaseHeartbeat)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			now := time.Now()
			os.Chtimes(l.path, now, now)
		}
	}
}

// release stops the heartbeat and unlinks the lock.
func (l *lease) release() {
	if l == nil {
		return
	}
	close(l.stop)
	<-l.done
	os.Remove(l.path)
}

// waitPeer blocks while a peer's lease looks alive. It returns — to the
// caller's load-or-lease loop — when the done marker appears, the lease
// vanishes, or the lease goes stale and has been (maybe by us) stolen.
func (cp *Checkpointer) waitPeer(path, lock string) {
	for {
		time.Sleep(leasePoll)
		if _, err := os.Stat(path); err == nil {
			return // done marker published
		}
		st, err := os.Stat(lock)
		if err != nil {
			return // lease released (or never really there)
		}
		if time.Since(st.ModTime()) > leaseTTL {
			cp.stealLease(lock)
			return
		}
	}
}

// stealLease takes over a stale lock by renaming it aside. Rename is
// atomic: of N waiters that found the same stale lease, exactly one
// rename succeeds, and a *fresh* lease created by the winner can never be
// removed by the losers (their rename of the old name fails with ENOENT).
func (cp *Checkpointer) stealLease(lock string) bool {
	aside := fmt.Sprintf("%s.stale.%d.%d", lock, os.Getpid(), staleLeaseSeq.Add(1))
	if err := os.Rename(lock, aside); err != nil {
		return false
	}
	os.Remove(aside)
	if staleLeaseWarned.CompareAndSwap(false, true) {
		warnf("checkpoint store: took over stale lease %s — previous holder died or stalled mid-build; rebuilding",
			filepath.Base(lock))
	}
	cp.mu.Lock()
	cp.st.LeaseTakeovers++
	cp.mu.Unlock()
	cp.trace(stats.Event{Kind: stats.EvCkptLeaseTakeover, Level: filepath.Base(lock)})
	return true
}

// gc enforces MaxBytes over the store directory, evicting entries in
// least-recently-used order (mtime; loads touch their entry). keep is the
// just-written entry, exempt so a too-small bound cannot evict the
// checkpoint its own writer is about to use. Best-effort: a concurrent
// eviction of the same file, or a reader holding a deleted inode open, is
// harmless on POSIX.
func (cp *Checkpointer) gc(keep string) {
	if cp.MaxBytes <= 0 || cp.Dir == "" {
		return
	}
	ents, err := os.ReadDir(cp.Dir)
	if err != nil {
		return
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	for _, de := range ents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".ckpt" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{filepath.Join(cp.Dir, de.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= cp.MaxBytes {
			return
		}
		if f.path == keep {
			continue
		}
		if os.Remove(f.path) != nil {
			continue
		}
		total -= f.size
		cp.mu.Lock()
		cp.st.Evictions++
		cp.st.EvictedBytes += uint64(f.size)
		cp.mu.Unlock()
		cp.trace(stats.Event{Kind: stats.EvCkptEvict, Level: filepath.Base(f.path), N: uint64(f.size)})
	}
}
