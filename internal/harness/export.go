package harness

import "repro/internal/workloads"

// ExportSchema versions the machine-readable experiment document. Bump it
// whenever a field changes meaning or shape, so downstream consumers
// (bench trajectories, plotting scripts) can dispatch on it.
//
// v2: engine block gained warm-checkpoint observability (warmHits,
// warmMisses, restores, diskLoads, diskStores, diskBytes), and simInsts
// stopped double-counting warm regions served from the checkpoint cache.
//
// v3: added figurePred, the predictor-stack comparison (slices vs value
// prediction vs correlation mining vs perfect on the problem branches).
// Purely additive: every v2 field is unchanged, so a v2 reader that
// ignores unknown fields parses v3 documents, and a v3 reader sees an
// empty figurePred in v2 documents.
//
// v4: added figureAuto, the closed-loop automatic slice construction
// comparison (auto-built, oracle-validated slices vs the hand-built
// ones). Purely additive, same compatibility story as v3.
//
// v5: engine block gained the checkpoint store's cross-process
// coordination counters (singleflightWaits, singleflightHits,
// leaseTakeovers, evictions, evictedBytes). Purely additive, same
// compatibility story as v3/v4; the new counters are zero unless a
// shared -checkpoint-dir (or the sweep service) is in play.
//
// v6: added figureMP, the multi-programmed SMT contention experiment
// (per-co-schedule, per-program IPC with and without slices, slice
// accuracy under contention, and cache-interference deltas). Purely
// additive, same compatibility story as v3/v4/v5.
const ExportSchema = "specslice-experiments/6"

// Export is the whole evaluation — every table and figure of the paper —
// as one machine-readable document, the JSON counterpart of the formatted
// text tables. Row types are shared with the text formatters, so the two
// outputs cannot drift apart.
type Export struct {
	Schema    string        `json:"schema"`
	Scale     float64       `json:"scale"`
	Workloads []string      `json:"workloads"`
	Table1    string        `json:"table1"` // static machine parameters, preformatted
	Table2    []Table2Row   `json:"table2"`
	Figure1   []Figure1Row  `json:"figure1"`
	Table3    []Table3Row   `json:"table3"`
	Figure11  []Figure11Row `json:"figure11"`
	Table4    []Table4Col   `json:"table4"`
	// FigurePred is the predictor-stack comparison (schema v3).
	FigurePred []FigurePredRow `json:"figurePred"`
	// FigureAuto is the automatic slice-construction comparison (schema v4).
	FigureAuto []FigureAutoRow `json:"figureAuto"`
	// FigureMP is the multi-programmed contention experiment (schema v6).
	FigureMP []FigureMPRow `json:"figureMP"`
	Engine   ExportEngine  `json:"engine"`
}

// ExportEngine summarizes the run that produced the document.
type ExportEngine struct {
	Simulations uint64 `json:"simulations"`
	MemoHits    uint64 `json:"memoHits"`
	SimInsts    uint64 `json:"simInsts"`
	SimWallMS   int64  `json:"simWallMs"`

	// Warm-checkpoint cache observability (schema v2).
	WarmHits   uint64 `json:"warmHits"`
	WarmMisses uint64 `json:"warmMisses"`
	Restores   uint64 `json:"restores"`
	DiskLoads  uint64 `json:"diskLoads"`
	DiskStores uint64 `json:"diskStores"`
	DiskBytes  uint64 `json:"diskBytes"`

	// Checkpoint store cross-process coordination (schema v5).
	SingleflightWaits uint64 `json:"singleflightWaits"`
	SingleflightHits  uint64 `json:"singleflightHits"`
	LeaseTakeovers    uint64 `json:"leaseTakeovers"`
	Evictions         uint64 `json:"evictions"`
	EvictedBytes      uint64 `json:"evictedBytes"`
}

// Export renders the engine counters as the schema's engine block. The
// sweep service reuses this type for its telemetry records, so a stats
// consumer reads one shape everywhere.
func (st EngineStats) Export() ExportEngine {
	return ExportEngine{
		Simulations:       st.Misses,
		MemoHits:          st.Hits,
		SimInsts:          st.SimInsts,
		SimWallMS:         st.SimWall.Milliseconds(),
		WarmHits:          st.Checkpoints.WarmHits,
		WarmMisses:        st.Checkpoints.WarmMisses,
		Restores:          st.Checkpoints.Restores,
		DiskLoads:         st.Checkpoints.DiskLoads,
		DiskStores:        st.Checkpoints.DiskStores,
		DiskBytes:         st.Checkpoints.DiskBytes,
		SingleflightWaits: st.Checkpoints.SingleflightWaits,
		SingleflightHits:  st.Checkpoints.SingleflightHits,
		LeaseTakeovers:    st.Checkpoints.LeaseTakeovers,
		Evictions:         st.Checkpoints.Evictions,
		EvictedBytes:      st.Checkpoints.EvictedBytes,
	}
}

// Export runs every experiment for ws on the engine and assembles the
// document. Simulations shared between tables (the 4-wide baselines,
// Figure 11's and Table 4's slice runs) execute once, exactly as in the
// text path.
func (e *Engine) Export(ws []*workloads.Workload) Export {
	doc := Export{
		Schema: ExportSchema,
		Scale:  e.Params.Scale,
		Table1: FormatTable1(),
	}
	for _, w := range ws {
		doc.Workloads = append(doc.Workloads, w.Name)
	}
	doc.Table2 = e.Table2(ws)
	doc.Figure1 = e.Figure1(ws)
	doc.Table3 = Table3(ws)
	doc.Figure11 = e.Figure11(ws)
	doc.Table4 = e.Table4(ws)
	doc.FigurePred = e.FigurePred(ws)
	doc.FigureAuto = e.FigureAuto(ws)
	doc.FigureMP = e.FigureMP(ws)
	doc.Engine = e.Stats().Export()
	return doc
}
