package harness

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/cpu"
)

// TestFigurePredPerfectLegRemovesProblemMispredicts locks the figure's
// anchor: the perfect leg primes the actual outcome for exactly the
// problem branches, so its problem-subset misprediction count must be
// zero while the baseline's is not.
func TestFigurePredPerfectLegRemovesProblemMispredicts(t *testing.T) {
	ws := pick(t, "vpr", "mcf")
	e := NewEngine(small, 4)
	rows := e.FigurePred(ws)
	if len(rows) != len(ws) {
		t.Fatalf("got %d rows, want %d", len(rows), len(ws))
	}
	for i, r := range rows {
		if r.Program != ws[i].Name {
			t.Errorf("row %d is %q, want %q", i, r.Program, ws[i].Name)
		}
		if r.ProbBranches == 0 || r.ProbExecs == 0 {
			t.Errorf("%s: no problem branches profiled (SI=%d execs=%d)", r.Program, r.ProbBranches, r.ProbExecs)
			continue
		}
		if r.Base.ProbMispredicts == 0 {
			t.Errorf("%s: baseline has zero problem mispredicts — the comparison is vacuous", r.Program)
		}
		if r.Perfect.ProbMispredicts != 0 {
			t.Errorf("%s: perfect leg left %d problem mispredicts", r.Program, r.Perfect.ProbMispredicts)
		}
		for leg, l := range map[string]FigurePredLeg{
			"base": r.Base, "slices": r.Slices, "value": r.Value,
			"corrmine": r.CorrMine, "perfect": r.Perfect,
		} {
			if l.IPC <= 0 {
				t.Errorf("%s/%s: IPC = %v", r.Program, leg, l.IPC)
			}
		}
	}
}

// TestPredictorChoiceNeverSharesWarmCheckpoints: the predictor spec is
// part of the warm identity, so configs differing only there must warm
// separately — while the empty spec and the spelled-out default still
// share.
func TestPredictorChoiceNeverSharesWarmCheckpoints(t *testing.T) {
	cfgA := cpu.Config4Wide()
	cfgB := cpu.Config4Wide()
	cfgB.BPred = "bimodal"
	keyA := WarmKeyFor("vpr", false, 20_000, WarmDetailed, cfgA)
	keyB := WarmKeyFor("vpr", false, 20_000, WarmDetailed, cfgB)
	if keyA == keyB {
		t.Fatal("configs differing only in predictor share a warm key")
	}

	cp := NewCheckpointer("", WarmDetailed)
	measureVia(t, cp, "vpr", cfgA, false, 20_000, 20_000)
	measureVia(t, cp, "vpr", cfgB, false, 20_000, 20_000)
	if st := cp.Stats(); st.WarmMisses != 2 || st.WarmHits != 0 {
		t.Errorf("distinct predictors: warm misses=%d hits=%d, want 2/0", st.WarmMisses, st.WarmHits)
	}

	cfgC := cpu.Config4Wide()
	cfgC.BPred, cfgC.IndirectPred = "yags", "cascaded"
	measureVia(t, cp, "vpr", cfgC, false, 20_000, 20_000)
	if st := cp.Stats(); st.WarmMisses != 2 || st.WarmHits != 1 {
		t.Errorf("spelled-out default: warm misses=%d hits=%d, want 2/1", st.WarmMisses, st.WarmHits)
	}
}

// TestOracleEveryPredictor: the differential oracle must stay clean with
// every registered direction predictor selected — a predictor that leaks
// state onto the wrong path or mistrains at retire diverges here.
func TestOracleEveryPredictor(t *testing.T) {
	w := pick(t, "vpr")[0]
	for _, name := range bpred.DirNames() {
		cfg := cpu.Config4Wide()
		cfg.BPred = name
		cp := NewCheckpointer("", WarmDetailed)
		if _, _, err := runOnce(cp, w, cfg, false, 10_000, 20_000, OracleOptions{Enabled: true}, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
