package harness

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/profile"
	"repro/internal/slicehw"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// This file implements the parallel, memoized experiment engine. Every
// driver (Table 2, Figure 1, Figure 11, Table 4) describes the simulations
// it needs as RunSpecs; the engine executes each unique spec exactly once —
// across drivers, not just within one — and fans independent runs out over
// a bounded worker pool. Results are deterministic and input-ordered: a
// simulation is a pure function of its spec (fresh core, fresh memory,
// shared read-only image and slice table), so scheduling order cannot
// change any result, only wall time.

// RunSpec identifies one simulation: which workload, under which machine
// configuration, with or without its slices, over which region. Two specs
// with equal keys produce identical runs.
type RunSpec struct {
	Workload   string
	Cfg        cpu.Config
	WithSlices bool
	Warm, Run  uint64
	// SliceSet, when non-empty, names a registered SliceSet to measure
	// with instead of the workload's hand-built slices (WithSlices must be
	// false): the run restores the baseline warm prefix into a core using
	// the set's image and table. Register sets with RegisterSliceSet under
	// content-derived names so equal keys still mean identical runs.
	SliceSet string
}

// Key returns the memoization key. The config contributes its stable
// fingerprint (perfect-PC sets sorted), so map iteration order cannot
// split or alias cache entries.
func (s RunSpec) Key() string {
	set := ""
	if s.SliceSet != "" {
		set = "|set=" + s.SliceSet
	}
	return fmt.Sprintf("%s|slices=%t|warm=%d|run=%d%s|%s",
		s.Workload, s.WithSlices, s.Warm, s.Run, set, s.Cfg.Fingerprint())
}

// SliceSet is an alternative slice configuration for one workload —
// typically automatically constructed candidates (internal/autoslice). The
// image must hold the workload's main program first, plus the slice code;
// the table must index the same slice metadata. Sets are immutable once
// registered.
type SliceSet struct {
	Name     string
	Workload string
	Image    *asm.Image
	Table    *slicehw.Table
}

// RunResult is everything a driver may need from one simulation: the
// run's full counter snapshot. It is shared by every consumer of the memo
// entry and must be treated as read-only.
type RunResult struct {
	Snap stats.Snapshot
	// Wall is how long the simulation itself took (memo hits share the
	// creating run's result, wall time included — see RunTracked for
	// per-request provenance).
	Wall time.Duration
}

// Stats returns the whole-run counters (the Snapshot's Sim component).
func (r *RunResult) Stats() *stats.Sim { return &r.Snap.Sim }

// Event describes one engine-level occurrence, delivered to the Progress
// callback: a simulation that ran (Memoized=false) or a request served
// from the memo cache (Memoized=true).
type Event struct {
	Spec     RunSpec
	Memoized bool
	Wall     time.Duration
	// Insts is instructions simulated (zero for memo hits): the measured
	// region, plus the warm region when this run simulated it (Warm ==
	// WarmFromSim).
	Insts uint64
	// Warm says where the run's warm checkpoint came from (empty for memo
	// hits, which simulate nothing at all).
	Warm WarmSource
}

// EngineStats aggregates run-level observability counters.
type EngineStats struct {
	// Hits counts requests served from the memo cache; Misses counts
	// simulations actually executed. Hits+Misses = requests.
	Hits, Misses uint64
	// SimInsts is total instructions simulated (measurement regions, plus
	// warm regions that were not served from the checkpoint cache).
	SimInsts uint64
	// SimWall is cumulative simulation time across misses — CPU-seconds
	// of simulation, which exceeds elapsed wall time when Jobs > 1.
	SimWall time.Duration
	// Checkpoints is the warm-checkpoint cache's view of the same runs:
	// shared warm prefixes, restores, and on-disk store traffic.
	Checkpoints CheckpointStats
}

// Engine runs experiment simulations with memoization and a bounded
// worker pool. The zero value is not usable; call NewEngine.
type Engine struct {
	// Params selects region lengths (shared by every driver).
	Params Params
	// Jobs bounds concurrent simulations; 0 means GOMAXPROCS.
	Jobs int
	// Progress, when non-nil, receives one Event per request. Calls are
	// serialized by the engine, in completion order.
	Progress func(Event)
	// Ckpt supplies warm checkpoints. NewEngine installs a private
	// in-memory checkpointer; callers may replace it (before the first
	// Run) with a shared or disk-backed one so warm prefixes survive
	// across engines or process invocations.
	Ckpt *Checkpointer
	// Oracle attaches the differential oracle to every measured run;
	// a divergence fails the run (set before the first Run).
	Oracle OracleOptions

	mu   sync.Mutex // guards memo and the counters
	memo map[string]*memoEntry
	st   EngineStats

	progressMu sync.Mutex
	profiles   sync.Map // baseline spec key → profile.Result
	sets       sync.Map // SliceSet name → *SliceSet
}

// RegisterSliceSet makes a slice set available to RunSpecs by name. Names
// should be content-derived (e.g. include autoslice.Built.Fingerprint), so
// registration is idempotent: re-registering an existing name keeps the
// first set and is not an error.
func (e *Engine) RegisterSliceSet(s *SliceSet) error {
	if s.Name == "" || s.Workload == "" || s.Image == nil || s.Table == nil {
		return fmt.Errorf("harness: slice set needs a name, workload, image, and table")
	}
	e.sets.LoadOrStore(s.Name, s)
	return nil
}

type memoEntry struct {
	done chan struct{} // closed when res/err are valid
	res  *RunResult
	err  error
}

// NewEngine builds an engine. jobs ≤ 0 selects GOMAXPROCS workers.
func NewEngine(p Params, jobs int) *Engine {
	return &Engine{
		Params: p,
		Jobs:   jobs,
		Ckpt:   NewCheckpointer("", WarmDetailed),
		memo:   make(map[string]*memoEntry),
	}
}

func (e *Engine) jobs() int {
	if e.Jobs > 0 {
		return e.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Stats returns a snapshot of the observability counters.
func (e *Engine) Stats() EngineStats {
	ck := e.Ckpt.Stats()
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.st
	st.Checkpoints = ck
	return st
}

func (e *Engine) emit(ev Event) {
	if e.Progress == nil {
		return
	}
	e.progressMu.Lock()
	e.Progress(ev)
	e.progressMu.Unlock()
}

// Run executes (or recalls) one simulation. Safe for concurrent use.
func (e *Engine) Run(spec RunSpec) (*RunResult, error) {
	res, _, err := e.run(spec, e.Oracle)
	return res, err
}

// RunValidated is Run with the differential oracle forced on, independent
// of the engine-wide default — used to vet automatically constructed slice
// candidates. The oracle is not part of the memo key: a spec already run
// un-validated would be recalled as-is, so validated specs should carry
// their own identity (candidate SliceSet names do).
func (e *Engine) RunValidated(spec RunSpec) (*RunResult, error) {
	o := e.Oracle
	o.Enabled = true
	res, _, err := e.run(spec, o)
	return res, err
}

// RunTracked is Run additionally reporting whether the result was
// recalled from the memo rather than simulated by this call — per-request
// provenance the sweep service surfaces on its result records. validated
// forces the differential oracle like RunValidated.
func (e *Engine) RunTracked(spec RunSpec, validated bool) (res *RunResult, memoized bool, err error) {
	o := e.Oracle
	if validated {
		o.Enabled = true
	}
	return e.run(spec, o)
}

// run implements Run/RunValidated/RunTracked; memoized reports whether
// the result came from the memo instead of a simulation by this call.
//
// Lock discipline: a caller that creates the memo entry simulates while
// holding no lock and closes the entry's done channel when finished;
// every other caller for the same key waits on that channel. RunAll's
// workers acquire their pool slot *before* calling Run, so an entry's
// creator always holds a slot and makes progress — a waiter can never
// starve the creator of the last slot.
func (e *Engine) run(spec RunSpec, o OracleOptions) (*RunResult, bool, error) {
	key := spec.Key()
	e.mu.Lock()
	if en, ok := e.memo[key]; ok {
		e.st.Hits++
		e.mu.Unlock()
		<-en.done
		e.emit(Event{Spec: spec, Memoized: true})
		return en.res, true, en.err
	}
	en := &memoEntry{done: make(chan struct{})}
	e.memo[key] = en
	e.st.Misses++
	e.mu.Unlock()

	fail := func(err error) (*RunResult, bool, error) {
		// Resolve the entry with the error so waiters see it too.
		en.err = err
		close(en.done)
		return nil, false, err
	}
	w, err := workloads.ByName(spec.Workload)
	if err != nil {
		return fail(err)
	}
	var set *SliceSet
	if spec.SliceSet != "" {
		if spec.WithSlices {
			return fail(fmt.Errorf("harness: spec %s: WithSlices and SliceSet are mutually exclusive", key))
		}
		v, ok := e.sets.Load(spec.SliceSet)
		if !ok {
			return fail(fmt.Errorf("harness: unknown slice set %q (RegisterSliceSet first)", spec.SliceSet))
		}
		set = v.(*SliceSet)
		if set.Workload != spec.Workload {
			return fail(fmt.Errorf("harness: slice set %q belongs to %s, not %s", set.Name, set.Workload, spec.Workload))
		}
	}
	start := time.Now()
	core, warmSrc, err := runOnce(e.Ckpt, w, spec.Cfg, spec.WithSlices, spec.Warm, spec.Run, o, set)
	if err != nil {
		en.err = err
		close(en.done)
		return nil, false, err
	}
	res := &RunResult{Snap: core.Snapshot(), Wall: time.Since(start)}
	if n := res.Snap.Sim.CycleGuardHits; n > 0 {
		// A truncated region silently skews every table row derived from
		// it; make the truncation visible.
		fmt.Fprintf(os.Stderr,
			"harness: WARNING: %s (%s, slices=%t) hit the MaxCycles guard — results cover a truncated region\n",
			spec.Workload, spec.Cfg.Name, spec.WithSlices)
	}
	en.res = res
	close(en.done)

	insts := spec.Run
	if warmSrc == WarmFromSim {
		insts += spec.Warm
	}
	e.mu.Lock()
	e.st.SimInsts += insts
	e.st.SimWall += res.Wall
	e.mu.Unlock()
	e.emit(Event{Spec: spec, Wall: res.Wall, Insts: insts, Warm: warmSrc})
	return res, false, nil
}

// RunAll executes the specs over the worker pool and returns results in
// input order. Duplicate specs within the batch (and against earlier
// batches) are simulated once.
func (e *Engine) RunAll(specs []RunSpec) ([]*RunResult, error) {
	results := make([]*RunResult, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, e.jobs())
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = e.Run(specs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runAllEach executes the specs over the worker pool like RunAll, but
// reports each spec's outcome individually instead of failing the batch on
// the first error: results[i] is nil exactly when errs[i] is non-nil.
// Validated specs run with the oracle forced on (RunValidated), so a
// divergence rejects one candidate rather than aborting the experiment.
func (e *Engine) runAllEach(specs []RunSpec, validated bool) ([]*RunResult, []error) {
	results := make([]*RunResult, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, e.jobs())
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if validated {
				results[i], errs[i] = e.RunValidated(specs[i])
			} else {
				results[i], errs[i] = e.Run(specs[i])
			}
		}(i)
	}
	wg.Wait()
	return results, errs
}

// mustRunAll is RunAll for driver-internal specs, whose workload names
// come from *workloads.Workload values and cannot be unknown.
func (e *Engine) mustRunAll(specs []RunSpec) []*RunResult {
	res, err := e.RunAll(specs)
	if err != nil {
		panic(err)
	}
	return res
}

// SpecFor builds the canonical RunSpec for one (workload, config, slices)
// leg under p: the drivers' region lengths and predictor defaults, hence
// the drivers' exact memo key. External batch sources (the sweep service)
// go through this so their runs dedupe against, and reproduce
// byte-for-byte, the tables' own simulations.
func SpecFor(p Params, w *workloads.Workload, cfg cpu.Config, withSlices bool) RunSpec {
	warm, run := p.regions(w)
	if cfg.BPred == "" {
		cfg.BPred = p.BPred
	}
	if cfg.IndirectPred == "" {
		cfg.IndirectPred = p.IndirectPred
	}
	return RunSpec{Workload: w.Name, Cfg: cfg, WithSlices: withSlices, Warm: warm, Run: run}
}

// baseSpec is the plain baseline run of w under cfg — no slices, no
// perfect modes beyond what cfg already carries.
func (e *Engine) baseSpec(w *workloads.Workload, cfg cpu.Config) RunSpec {
	return SpecFor(e.Params, w, cfg, false)
}

func (e *Engine) sliceSpec(w *workloads.Workload, cfg cpu.Config) RunSpec {
	return SpecFor(e.Params, w, cfg, true)
}

// profileFor classifies the problem instructions of w under cfg. The
// underlying baseline simulation goes through the memo cache — it is the
// same spec as the driver's base bars, so Figure 1 no longer re-runs the
// profiling baseline once per width — and the derived classification is
// itself memoized by baseline key.
func (e *Engine) profileFor(w *workloads.Workload, cfg cpu.Config) (profile.Result, error) {
	spec := e.baseSpec(w, cfg)
	key := spec.Key()
	if r, ok := e.profiles.Load(key); ok {
		return r.(profile.Result), nil
	}
	res, err := e.Run(spec)
	if err != nil {
		return profile.Result{}, err
	}
	r := profile.Characterize(res.Stats(), profile.DefaultOptions(spec.Run))
	e.profiles.Store(key, r)
	return r, nil
}
