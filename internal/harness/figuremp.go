package harness

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cpu"
	"repro/internal/oracle"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Figure MP: multi-programmed SMT contention. The paper evaluates slices
// with the main program alone on the machine, helpers running in
// otherwise-idle contexts. This experiment co-schedules two or four of
// the workloads on one core — each main thread with its own image, memory
// view, and slice hardware, all contending for fetch slots, window space,
// helper contexts, and the shared cache hierarchy — and asks whether
// slice prediction still pays off when the "idle" resources it borrows
// are not idle.
//
// Multi-programmed cores refuse checkpointing (no two co-schedules share
// a warm prefix, and cross-program interference during warm-up is part of
// the scenario), so each leg warms inline: run the warm region, reset the
// counters, then measure. When the oracle is enabled it is seeded at each
// program's entry and observes the warm region too.

// mpHelperContexts is how many helper contexts a co-schedule adds on top
// of its main threads — the single-program machine's helper count, now
// shared by every program's slices, so forks from different programs
// contend for them.
const mpHelperContexts = 3

// FigureMPProg is one program's view of one co-schedule.
type FigureMPProg struct {
	Program string `json:"program"`

	// SoloIPC is the workload's single-program baseline IPC (the same
	// 4-wide baseline run the other figures use); BaseIPC and SliceIPC are
	// its IPC co-scheduled without and with slices.
	SoloIPC  float64 `json:"soloIPC"`
	BaseIPC  float64 `json:"baseIPC"`
	SliceIPC float64 `json:"sliceIPC"`
	// SliceSpeedupPct compares this program's retirement rate with slices
	// against without, both under contention (per-program cycles are wall
	// cycles, so the per-program IPC ratio is the speedup).
	SliceSpeedupPct float64 `json:"sliceSpeedupPct"`

	// Cache interference: this program's L1D load miss rate alone, and
	// co-scheduled without slices. MissRateDeltaPct is the
	// contention-induced increase (percentage points).
	SoloMissPct      float64 `json:"soloMissPct"`
	BaseMissPct      float64 `json:"baseMissPct"`
	SliceMissPct     float64 `json:"sliceMissPct"`
	MissRateDeltaPct float64 `json:"missRateDeltaPct"`

	// Slice behaviour under contention.
	Forks           uint64  `json:"forks"`
	PredsUsed       uint64  `json:"predsUsed"` // incl. late
	PredAccuracyPct float64 `json:"predAccuracyPct"`
	Prefetches      uint64  `json:"prefetches"`
	MispredRemoved  int64   `json:"mispredRemoved"` // base − slice, co-scheduled
}

// FigureMPRow is one co-schedule: per-program rows plus the aggregate
// throughput view.
type FigureMPRow struct {
	// Schedule names the co-schedule, e.g. "vpr+mcf" or "bzip2+crafty+eon+gap".
	Schedule string         `json:"schedule"`
	Programs []FigureMPProg `json:"programs"`
	// Throughput is the sum of per-program IPCs (aggregate retirement per
	// cycle) without and with slices, and the gain from turning slices on.
	BaseThroughput    float64 `json:"baseThroughput"`
	SliceThroughput   float64 `json:"sliceThroughput"`
	ThroughputGainPct float64 `json:"throughputGainPct"`
}

// CoSchedules forms the experiment's deterministic groupings from a
// workload list: adjacent pairs (wrapping, so a single workload co-runs
// against itself), then adjacent quads where the list is long enough.
func CoSchedules(ws []*workloads.Workload) [][]*workloads.Workload {
	if len(ws) == 0 {
		return nil
	}
	var groups [][]*workloads.Workload
	for i := 0; i < len(ws); i += 2 {
		groups = append(groups, []*workloads.Workload{ws[i], ws[(i+1)%len(ws)]})
	}
	for i := 0; i+4 <= len(ws); i += 4 {
		groups = append(groups, ws[i:i+4])
	}
	return groups
}

func scheduleName(group []*workloads.Workload) string {
	names := make([]string, len(group))
	for i, w := range group {
		names[i] = w.Name
	}
	return strings.Join(names, "+")
}

// mpConfig is the co-schedule machine: the 4-wide core with one main
// context per program plus the single-program machine's helper contexts,
// now shared across programs.
func mpConfig(p Params, n int) cpu.Config {
	cfg := cpu.Config4Wide()
	cfg.Name = fmt.Sprintf("mp%d-4wide", n)
	cfg.ThreadContexts = n + mpHelperContexts
	if cfg.BPred == "" {
		cfg.BPred = p.BPred
	}
	if cfg.IndirectPred == "" {
		cfg.IndirectPred = p.IndirectPred
	}
	return cfg
}

// RunMP simulates one co-schedule leg end to end — inline warm, reset,
// measure — and returns the final snapshot (Progs holds the per-program
// counters). warm and run override the region lengths; zero derives each
// from p.regions as the maximum across the group, so every program gets
// at least its own suggested region. Exported for cmd/slicesim's
// -multiprog mode and the smoke tests; drivers go through
// Engine.FigureMP.
func RunMP(group []*workloads.Workload, p Params, withSlices bool, warm, run uint64, o OracleOptions) (stats.Snapshot, error) {
	if len(group) < 2 || len(group) > cpu.MaxPrograms {
		return stats.Snapshot{}, fmt.Errorf("harness: co-schedule needs 2..%d programs, got %d", cpu.MaxPrograms, len(group))
	}
	cfg := mpConfig(p, len(group))
	specs := make([]cpu.ProgSpec, len(group))
	var seeds []oracle.ProgSeed
	warmMax, runMax := warm, run
	if warm == 0 || run == 0 {
		gw, gr := MPRegions(p, group)
		if warm == 0 {
			warmMax = gw
		}
		if run == 0 {
			runMax = gr
		}
	}
	for i, w := range group {
		specs[i] = cpu.ProgSpec{Image: w.Image, Mem: w.NewMemory(), Entry: w.Entry}
		if withSlices {
			specs[i].SliceTable = w.SliceTable()
		}
		if o.Enabled {
			// The oracle's models need their own memory copies: each leg
			// mutates its image with every store.
			seeds = append(seeds, oracle.ProgSeed{Image: w.Image, Mem: w.NewMemory(), Entry: w.Entry, Name: w.Name})
		}
	}
	core, err := cpu.NewMulti(cfg, specs)
	if err != nil {
		return stats.Snapshot{}, err
	}
	var orc *oracle.MultiOracle
	if o.Enabled {
		orc = oracle.NewMulti(seeds, oracle.Options{Every: o.Every})
		orc.Attach(core)
	}
	sched := scheduleName(group)
	// Inline warm: every program retires at least the group's largest warm
	// region (each keeps contending until the slowest reaches it), then
	// counters reset and the measured region runs.
	core.Run(warmMax)
	core.ResetStats()
	core.Run(runMax)
	if orc != nil {
		if err := core.CheckInvariants(); err != nil {
			return stats.Snapshot{}, fmt.Errorf("%s (slices=%t): oracle: %w", sched, withSlices, err)
		}
		if err := orc.Err(); err != nil {
			return stats.Snapshot{}, fmt.Errorf("%s (slices=%t): %w", sched, withSlices, err)
		}
	}
	snap := core.Snapshot()
	if snap.Sim.CycleGuardHits > 0 {
		warnf("%s (slices=%t) hit the MaxCycles guard — results cover a truncated region", sched, withSlices)
	}
	return snap, nil
}

// MPRegions derives a co-schedule's inline warm and measured region
// lengths under p: the maximum of each program's scaled region, so every
// program retires at least its own suggested region (the slower ones keep
// the faster ones contending past theirs). RunMP applies this when its
// warm/run overrides are zero; external schedulers (the sweep service)
// call it to prefill result records with the lengths a leg will run.
func MPRegions(p Params, group []*workloads.Workload) (warm, run uint64) {
	for _, w := range group {
		pw, pr := p.regions(w)
		if pw > warm {
			warm = pw
		}
		if pr > run {
			run = pr
		}
	}
	return warm, run
}

// RunMP executes one co-scheduled leg through the engine. Co-schedules
// are never memoized — no two share a warm prefix, and each leg is one
// whole simulation — but they count in the engine stats like any other
// miss. warm/run override the region lengths (zero derives them from the
// engine params via MPRegions); validated forces the oracle on like
// RunValidated.
func (e *Engine) RunMP(group []*workloads.Workload, withSlices, validated bool, warm, run uint64) (*RunResult, error) {
	o := e.Oracle
	if validated {
		o.Enabled = true
	}
	start := time.Now()
	snap, err := RunMP(group, e.Params, withSlices, warm, run, o)
	if err != nil {
		return nil, err
	}
	res := &RunResult{Snap: snap, Wall: time.Since(start)}
	e.noteMPRun(group, warm, run, res.Wall)
	return res, nil
}

// FigureMP runs the multi-programmed contention experiment for the
// engine's deterministic co-schedules of ws. Solo baselines come from the
// memoized single-program runs the other figures share; the co-scheduled
// legs (no checkpoint sharing) fan out over the engine's worker pool.
func FigureMP(ws []*workloads.Workload, p Params) []FigureMPRow {
	return NewEngine(p, 0).FigureMP(ws)
}

// FigureMP implements the driver on the engine.
func (e *Engine) FigureMP(ws []*workloads.Workload) []FigureMPRow {
	groups := CoSchedules(ws)
	if len(groups) == 0 {
		return nil
	}

	// Solo baselines through the memo (shared with Figure 1/11 et al.).
	soloSpecs := make([]RunSpec, len(ws))
	for i, w := range ws {
		soloSpecs[i] = e.baseSpec(w, cpu.Config4Wide())
	}
	soloRes := e.mustRunAll(soloSpecs)
	solo := make(map[string]*stats.Sim, len(ws))
	for i, w := range ws {
		solo[w.Name] = soloRes[i].Stats()
	}

	// Co-scheduled legs: 2 per group (without, with slices), each its own
	// whole simulation — no memo, no checkpoints — bounded by the pool.
	type leg struct {
		group []*workloads.Workload
		snap  stats.Snapshot
		err   error
	}
	legs := make([]leg, 2*len(groups))
	sem := make(chan struct{}, e.jobs())
	var wg sync.WaitGroup
	for gi, g := range groups {
		for s := 0; s < 2; s++ {
			wg.Add(1)
			go func(li int, g []*workloads.Workload, withSlices bool) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				res, err := e.RunMP(g, withSlices, false, 0, 0)
				if err != nil {
					legs[li] = leg{group: g, err: err}
					return
				}
				legs[li] = leg{group: g, snap: res.Snap}
			}(2*gi+s, g, s == 1)
		}
	}
	wg.Wait()
	for _, l := range legs {
		if l.err != nil {
			panic(l.err)
		}
	}

	rows := make([]FigureMPRow, 0, len(groups))
	for gi, g := range groups {
		base, sl := &legs[2*gi].snap, &legs[2*gi+1].snap
		row := FigureMPRow{Schedule: scheduleName(g)}
		for i, w := range g {
			bs, ss := &base.Progs[i], &sl.Progs[i]
			pr := FigureMPProg{
				Program:        w.Name,
				SoloIPC:        solo[w.Name].IPC(),
				BaseIPC:        bs.IPC(),
				SliceIPC:       ss.IPC(),
				SoloMissPct:    solo[w.Name].LoadMissRate() * 100,
				BaseMissPct:    bs.LoadMissRate() * 100,
				SliceMissPct:   ss.LoadMissRate() * 100,
				Forks:          ss.Forks,
				PredsUsed:      ss.PredsUsed + ss.PredsLateUsed,
				Prefetches:     ss.SlicePrefetches,
				MispredRemoved: int64(bs.Mispredicts) - int64(ss.Mispredicts),
			}
			// Per-program cycles are wall cycles (every program's Cycles
			// counter ticks every cycle), so the IPC ratio is the honest
			// per-program speedup even though retired counts differ.
			if pr.BaseIPC > 0 {
				pr.SliceSpeedupPct = (pr.SliceIPC/pr.BaseIPC - 1) * 100
			}
			pr.MissRateDeltaPct = pr.BaseMissPct - pr.SoloMissPct
			if n := ss.PredsCorrect + ss.PredsIncorrect; n > 0 {
				pr.PredAccuracyPct = float64(ss.PredsCorrect) / float64(n) * 100
			}
			row.BaseThroughput += pr.BaseIPC
			row.SliceThroughput += pr.SliceIPC
			row.Programs = append(row.Programs, pr)
		}
		if row.BaseThroughput > 0 {
			row.ThroughputGainPct = (row.SliceThroughput/row.BaseThroughput - 1) * 100
		}
		rows = append(rows, row)
	}
	return rows
}

// noteMPRun folds one co-scheduled simulation into the engine counters:
// it is a real simulation (never memoized), covering warm+run per program
// (warm/run zero means the MPRegions-derived lengths).
func (e *Engine) noteMPRun(g []*workloads.Workload, warm, run uint64, wall time.Duration) {
	gw, gr := MPRegions(e.Params, g)
	if warm == 0 {
		warm = gw
	}
	if run == 0 {
		run = gr
	}
	insts := uint64(len(g)) * (warm + run)
	e.mu.Lock()
	e.st.Misses++
	e.st.SimInsts += insts
	e.st.SimWall += wall
	e.mu.Unlock()
	e.emit(Event{Spec: RunSpec{Workload: scheduleName(g)}, Wall: wall, Insts: insts, Warm: WarmFromSim})
}
