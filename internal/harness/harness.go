// Package harness drives the paper's experiments end to end: it runs the
// workloads under the right machine configurations and produces the rows
// of Table 2 (problem-instruction coverage), Figure 1 (perfect-mode IPCs),
// Table 3 (slice characterization), Figure 11 (slice vs limit speedups),
// and Table 4 (detailed slice-execution statistics).
package harness

import (
	"repro/internal/cpu"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Params selects region lengths and machine width.
type Params struct {
	// Scale multiplies each workload's suggested warm-up and measurement
	// regions (1.0 = the defaults; benchmarks use smaller values).
	Scale float64
}

func (p Params) regions(w *workloads.Workload) (warm, run uint64) {
	s := p.Scale
	if s <= 0 {
		s = 1
	}
	warm = uint64(float64(w.SuggestedWarmup) * s)
	run = uint64(float64(w.SuggestedRun) * s)
	if warm < 10_000 {
		warm = 10_000
	}
	if run < 20_000 {
		run = 20_000
	}
	return
}

// runOnce runs one workload region under cfg, with or without its slices,
// and returns the measured stats and the core (for hierarchy/correlator
// counters).
func runOnce(w *workloads.Workload, cfg cpu.Config, withSlices bool, warm, run uint64) (*cpu.Core, *stats.Sim) {
	var core *cpu.Core
	if withSlices {
		core = cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, w.SliceTable())
	} else {
		core = cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, nil)
	}
	core.Run(warm)
	core.ResetStats()
	s := core.Run(run)
	return core, s
}

// profileProblems runs a baseline region and classifies its problem
// instructions.
func profileProblems(w *workloads.Workload, cfg cpu.Config, p Params) profile.Result {
	warm, run := p.regions(w)
	_, s := runOnce(w, cfg, false, warm, run)
	return profile.Characterize(s, profile.DefaultOptions(run))
}

// --- Table 2 ---

// Table2Row is one workload's problem-instruction coverage.
type Table2Row struct {
	Program string
	MemSI   int
	MemPct  float64 // % of dynamic memory ops that are problem loads
	MisPct  float64 // % of load misses covered
	BrSI    int
	BrPct   float64 // % of dynamic branches that are problem branches
	BrMis   float64 // % of mispredictions covered
}

// Table2 reproduces the paper's Table 2 for the given workloads.
func Table2(ws []*workloads.Workload, p Params) []Table2Row {
	var rows []Table2Row
	for _, w := range ws {
		r := profileProblems(w, cpu.Config4Wide(), p)
		rows = append(rows, Table2Row{
			Program: w.Name,
			MemSI:   r.MemSI,
			MemPct:  r.MemFrac * 100,
			MisPct:  r.MissCoverage * 100,
			BrSI:    r.BrSI,
			BrPct:   r.BrFrac * 100,
			BrMis:   r.MispredCoverage * 100,
		})
	}
	return rows
}

// --- Figure 1 ---

// Figure1Row holds the three IPC bars for one workload and width.
type Figure1Row struct {
	Program                 string
	Base, ProbPerf, AllPerf [2]float64 // index 0: 4-wide, 1: 8-wide
}

// Figure1 reproduces Figure 1: baseline, problem-instructions-perfect, and
// all-perfect IPC on the 4- and 8-wide machines.
func Figure1(ws []*workloads.Workload, p Params) []Figure1Row {
	var rows []Figure1Row
	for _, w := range ws {
		row := Figure1Row{Program: w.Name}
		for wi, mk := range []func() cpu.Config{cpu.Config4Wide, cpu.Config8Wide} {
			warm, run := p.regions(w)
			prob := profileProblems(w, mk(), p)

			base := mk()
			_, sb := runOnce(w, base, false, warm, run)
			row.Base[wi] = sb.IPC()

			probCfg := mk()
			probCfg.Perfect = cpu.Perfect{LoadPCs: prob.LoadPCs, BranchPCs: prob.BranchPCs}
			_, sp := runOnce(w, probCfg, false, warm, run)
			row.ProbPerf[wi] = sp.IPC()

			perfCfg := mk()
			perfCfg.Perfect = cpu.Perfect{AllBranches: true, AllLoads: true}
			_, sa := runOnce(w, perfCfg, false, warm, run)
			row.AllPerf[wi] = sa.IPC()
		}
		rows = append(rows, row)
	}
	return rows
}

// --- Table 3 ---

// Table3Row characterizes one constructed slice (static metadata).
type Table3Row struct {
	Program string
	Slice   string
	Static  int // static size (loop portion in parentheses in the paper)
	Loop    int
	LiveIns int
	Pref    int // problem loads prefetched
	Pred    int // problem branches predicted
	Kills   int
	MaxIter int
}

// Table3 reproduces the slice characterization table from the workloads'
// hand-constructed slices.
func Table3(ws []*workloads.Workload) []Table3Row {
	var rows []Table3Row
	for _, w := range ws {
		for _, sl := range w.Slices {
			rows = append(rows, Table3Row{
				Program: w.Name,
				Slice:   sl.Name,
				Static:  sl.StaticSize,
				Loop:    sl.LoopSize,
				LiveIns: len(sl.LiveIns),
				Pref:    len(sl.CoveredLoadPCs),
				Pred:    len(sl.CoveredBranchPCs()),
				Kills:   sl.KillCount(),
				MaxIter: sl.MaxLoops,
			})
		}
	}
	return rows
}

// --- Figure 11 ---

// Figure11Row holds the slice and constrained-limit speedups for one
// workload on the 4-wide machine.
type Figure11Row struct {
	Program      string
	BaseIPC      float64
	SliceIPC     float64
	LimitIPC     float64
	SliceSpeedup float64 // percent
	LimitSpeedup float64 // percent
}

// coveredPerfect builds the perfect-mode PC sets for the constrained limit
// study: exactly the problem instructions the workload's slices cover.
func coveredPerfect(w *workloads.Workload) cpu.Perfect {
	p := cpu.Perfect{LoadPCs: map[uint64]bool{}, BranchPCs: map[uint64]bool{}}
	for _, sl := range w.Slices {
		for _, pc := range sl.CoveredLoadPCs {
			p.LoadPCs[pc] = true
		}
		for _, pc := range sl.CoveredBranchPCs() {
			p.BranchPCs[pc] = true
		}
	}
	return p
}

// Figure11 reproduces Figure 11: speedup of slice-assisted execution and
// of "magically" perfecting the same problem instructions.
func Figure11(ws []*workloads.Workload, p Params) []Figure11Row {
	var rows []Figure11Row
	for _, w := range ws {
		warm, run := p.regions(w)
		cfg := cpu.Config4Wide()
		_, base := runOnce(w, cfg, false, warm, run)
		_, sl := runOnce(w, cfg, true, warm, run)
		limCfg := cpu.Config4Wide()
		limCfg.Perfect = coveredPerfect(w)
		_, lim := runOnce(w, limCfg, false, warm, run)

		rows = append(rows, Figure11Row{
			Program:      w.Name,
			BaseIPC:      base.IPC(),
			SliceIPC:     sl.IPC(),
			LimitIPC:     lim.IPC(),
			SliceSpeedup: (float64(base.Cycles)/float64(sl.Cycles) - 1) * 100,
			LimitSpeedup: (float64(base.Cycles)/float64(lim.Cycles) - 1) * 100,
		})
	}
	return rows
}

// --- Table 4 ---

// Table4Col is the detailed characterization of one program with and
// without slices (one column of the paper's Table 4).
type Table4Col struct {
	Program string

	// Base run.
	BaseFetched     uint64
	BaseMispredicts uint64
	BaseLoadMisses  uint64
	BaseCycles      uint64

	// Base + slices run.
	SliceProgFetched  uint64
	SliceInstsFetched uint64
	SliceInstsRetired uint64
	Forks             uint64
	ForksSquashed     uint64
	ForksIgnored      uint64

	BranchesCovered  int // static problem branches covered by slices
	PredsGenerated   uint64
	MispCovered      uint64 // base mispredictions at covered branch PCs
	MispRemoved      int64  // base mispredicts − slice mispredicts
	MispRemovedPct   float64
	IncorrectPreds   uint64
	LatePct          float64
	EarlyResolutions uint64

	LoadsCovered     int // static problem loads covered by slices
	Prefetches       uint64
	MissesCovered    uint64 // base misses at covered load PCs
	MissReduction    int64
	MissReductionPct float64

	SliceCycles uint64
	SpeedupPct  float64
	// FracFromLoads estimates the share of the speedup due to
	// prefetching, measured by re-running with PGI allocation disabled.
	FracFromLoads float64
}

// Table4 reproduces the paper's Table 4 on the 4-wide machine.
func Table4(ws []*workloads.Workload, p Params) []Table4Col {
	var cols []Table4Col
	for _, w := range ws {
		warm, run := p.regions(w)
		cfg := cpu.Config4Wide()
		_, base := runOnce(w, cfg, false, warm, run)
		_, sl := runOnce(w, cfg, true, warm, run)
		prefCfg := cpu.Config4Wide()
		prefCfg.SlicePredictionsOff = true
		_, pref := runOnce(w, prefCfg, true, warm, run)

		cov := coveredPerfect(w)
		var mispCov, missCov uint64
		for pc := range cov.BranchPCs {
			if st, ok := base.Static[pc]; ok {
				mispCov += st.Mispredicts
			}
		}
		for pc := range cov.LoadPCs {
			if st, ok := base.Static[pc]; ok {
				missCov += st.Misses
			}
		}

		col := Table4Col{
			Program:           w.Name,
			BaseFetched:       base.MainFetched,
			BaseMispredicts:   base.Mispredicts,
			BaseLoadMisses:    base.LoadMisses,
			BaseCycles:        base.Cycles,
			SliceProgFetched:  sl.MainFetched,
			SliceInstsFetched: sl.HelperFetched,
			SliceInstsRetired: sl.HelperRetired,
			Forks:             sl.Forks,
			ForksSquashed:     sl.ForksSquashed,
			ForksIgnored:      sl.ForksIgnored,
			BranchesCovered:   len(cov.BranchPCs),
			PredsGenerated:    sl.PredsUsed + sl.PredsLateUsed,
			MispCovered:       mispCov,
			MispRemoved:       int64(base.Mispredicts) - int64(sl.Mispredicts),
			IncorrectPreds:    sl.PredsIncorrect,
			EarlyResolutions:  sl.EarlyResolutions,
			LoadsCovered:      len(cov.LoadPCs),
			Prefetches:        sl.SlicePrefetches,
			MissesCovered:     missCov,
			MissReduction:     int64(base.LoadMisses) - int64(sl.LoadMisses),
			SliceCycles:       sl.Cycles,
		}
		if base.Mispredicts > 0 {
			col.MispRemovedPct = float64(col.MispRemoved) / float64(base.Mispredicts) * 100
		}
		if used := sl.PredsUsed + sl.PredsLateUsed; used > 0 {
			col.LatePct = float64(sl.PredsLateUsed) / float64(used) * 100
		}
		if base.LoadMisses > 0 {
			col.MissReductionPct = float64(col.MissReduction) / float64(base.LoadMisses) * 100
		}
		col.SpeedupPct = (float64(base.Cycles)/float64(sl.Cycles) - 1) * 100
		total := float64(base.Cycles) - float64(sl.Cycles)
		fromLoads := float64(base.Cycles) - float64(pref.Cycles)
		if total > 0 {
			frac := fromLoads / total
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			col.FracFromLoads = frac
		}
		cols = append(cols, col)
	}
	return cols
}
