// Package harness drives the paper's experiments end to end: it runs the
// workloads under the right machine configurations and produces the rows
// of Table 2 (problem-instruction coverage), Figure 1 (perfect-mode IPCs),
// Table 3 (slice characterization), Figure 11 (slice vs limit speedups),
// and Table 4 (detailed slice-execution statistics).
package harness

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/oracle"
	"repro/internal/workloads"
)

// Params selects region lengths and machine width.
type Params struct {
	// Scale multiplies each workload's suggested warm-up and measurement
	// regions (1.0 = the defaults; benchmarks use smaller values).
	Scale float64

	// BPred and IndirectPred, when non-empty, select the direction /
	// indirect predictor (by registry spec, e.g. "gshare:4096,10") for
	// every driver-built configuration that does not pin one itself.
	// Drivers that compare predictors (FigurePred) pin their non-baseline
	// legs explicitly, so the override only moves the baseline.
	BPred        string
	IndirectPred string
}

// Region floors: below these lengths the caches and predictors never leave
// their cold transient, so every derived table row would be noise.
const (
	minWarmRegion = 10_000
	minRunRegion  = 20_000
)

// regionClampWarned dedups the clamp warning (one per process, like the
// MaxCycles truncation warning); regionClampWarnf is swappable for tests.
var (
	regionClampWarned atomic.Bool
	regionClampWarnf  = warnf
)

func (p Params) regions(w *workloads.Workload) (warm, run uint64) {
	s := p.Scale
	if s <= 0 {
		s = 1
	}
	warm = uint64(float64(w.SuggestedWarmup) * s)
	run = uint64(float64(w.SuggestedRun) * s)
	if warm < minWarmRegion || run < minRunRegion {
		// A silently enforced floor would make results look like they came
		// from the requested scale when they did not; say so once.
		if regionClampWarned.CompareAndSwap(false, true) {
			regionClampWarnf(
				"scale %g shrinks %s regions below the %d/%d floors — floors apply, results cover larger regions than requested",
				s, w.Name, minWarmRegion, minRunRegion)
		}
	}
	if warm < minWarmRegion {
		warm = minWarmRegion
	}
	if run < minRunRegion {
		run = minRunRegion
	}
	return
}

// runOnce produces one measured simulation: the warm prefix comes from the
// checkpointer (simulated at most once per shareable prefix), the
// measurement region runs on a core restored from it. Restoring a
// detailed-warm checkpoint is behavior-identical to warming straight
// through at a quiesced boundary, so cache hits and misses yield equal
// snapshots. Each call restores a private core over copy-on-write memory,
// so concurrent calls are independent; the engine relies on this to
// parallelize.
// When o.Oracle is set, the differential oracle is seeded from the same
// warm checkpoint the core restores from and attached for the measured
// region; any divergence (or invariant violation) fails the run with a
// *oracle.DivergenceError.
// When set is non-nil the measurement runs with that slice set's image and
// table instead of the workload's hand-built slices: the warm prefix is
// the plain baseline one (the warm region never executes slice code, and
// the candidate hardware starting cold at the measurement boundary is the
// conservative choice when deciding whether to accept an auto slice).
func runOnce(cp *Checkpointer, w *workloads.Workload, cfg cpu.Config, withSlices bool, warm, run uint64, o OracleOptions, set *SliceSet) (*cpu.Core, WarmSource, error) {
	image := w.Image
	var core *cpu.Core
	var ck *cpu.Checkpoint
	var src WarmSource
	var err error
	if set != nil {
		image = set.Image
		core, ck, src, err = cp.WarmedCoreCkptAt(w, cfg, withSlices, warm, set.Image, set.Table)
	} else {
		core, ck, src, err = cp.WarmedCoreCkpt(w, cfg, withSlices, warm)
	}
	if err != nil {
		return nil, src, err
	}
	var orc *oracle.Oracle
	if o.Enabled {
		orc = oracle.FromCheckpoint(image, ck, oracle.Options{
			Workload: w.Name,
			WarmKey:  WarmKeyFor(w.Name, withSlices, warm, cp.Mode, cfg),
			Every:    o.Every,
		})
		orc.Attach(core)
	}
	core.Run(run)
	if orc != nil {
		// One final structural sweep at the region boundary, so short runs
		// that never crossed a sweep period are still checked.
		if err := core.CheckInvariants(); err != nil {
			return nil, src, fmt.Errorf("%s (%s, slices=%t): oracle: %w", w.Name, cfg.Name, withSlices, err)
		}
		if err := orc.Err(); err != nil {
			return nil, src, fmt.Errorf("%s (%s, slices=%t): %w", w.Name, cfg.Name, withSlices, err)
		}
	}
	return core, src, nil
}

// OracleOptions configures the per-run differential oracle (see
// internal/oracle).
type OracleOptions struct {
	// Enabled attaches the oracle to every measured run.
	Enabled bool
	// Every is the invariant-sweep period in cycles (0 = the oracle's
	// default, negative disables the sweep).
	Every int64
}

// --- Table 2 ---

// Table2Row is one workload's problem-instruction coverage.
type Table2Row struct {
	Program string
	MemSI   int
	MemPct  float64 // % of dynamic memory ops that are problem loads
	MisPct  float64 // % of load misses covered
	BrSI    int
	BrPct   float64 // % of dynamic branches that are problem branches
	BrMis   float64 // % of mispredictions covered
}

// Table2 reproduces the paper's Table 2 for the given workloads.
func Table2(ws []*workloads.Workload, p Params) []Table2Row {
	return NewEngine(p, 0).Table2(ws)
}

// Table2 reproduces the paper's Table 2 through the engine: the profiling
// baselines run in parallel, then the per-PC statistics are classified.
func (e *Engine) Table2(ws []*workloads.Workload) []Table2Row {
	specs := make([]RunSpec, len(ws))
	for i, w := range ws {
		specs[i] = e.baseSpec(w, cpu.Config4Wide())
	}
	e.mustRunAll(specs) // warm the memo in parallel

	rows := make([]Table2Row, 0, len(ws))
	for _, w := range ws {
		r, err := e.profileFor(w, cpu.Config4Wide())
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table2Row{
			Program: w.Name,
			MemSI:   r.MemSI,
			MemPct:  r.MemFrac * 100,
			MisPct:  r.MissCoverage * 100,
			BrSI:    r.BrSI,
			BrPct:   r.BrFrac * 100,
			BrMis:   r.MispredCoverage * 100,
		})
	}
	return rows
}

// --- Figure 1 ---

// Figure1Row holds the three IPC bars for one workload and width.
type Figure1Row struct {
	Program                 string
	Base, ProbPerf, AllPerf [2]float64 // index 0: 4-wide, 1: 8-wide
}

// Figure1 reproduces Figure 1: baseline, problem-instructions-perfect, and
// all-perfect IPC on the 4- and 8-wide machines.
func Figure1(ws []*workloads.Workload, p Params) []Figure1Row {
	return NewEngine(p, 0).Figure1(ws)
}

// widthConfigs are Figure 1's two machines, index-aligned with the [2]
// arrays of Figure1Row.
var widthConfigs = []func() cpu.Config{cpu.Config4Wide, cpu.Config8Wide}

// Figure1 reproduces Figure 1 through the engine in two parallel phases:
// the per-(workload, width) baselines first — each doubles as both the
// profiling input and the "baseline" bar, so the profiling run the serial
// driver repeated per width is simulated exactly once — then the
// problem-perfect and all-perfect runs derived from those profiles.
func (e *Engine) Figure1(ws []*workloads.Workload) []Figure1Row {
	// Phase 1: baselines for both widths.
	baseSpecs := make([]RunSpec, 0, 2*len(ws))
	for _, w := range ws {
		for _, mk := range widthConfigs {
			baseSpecs = append(baseSpecs, e.baseSpec(w, mk()))
		}
	}
	baseRes := e.mustRunAll(baseSpecs)

	// Phase 2: perfect-mode runs, configured from the memoized profiles.
	perfSpecs := make([]RunSpec, 0, 4*len(ws))
	for _, w := range ws {
		for _, mk := range widthConfigs {
			prob, err := e.profileFor(w, mk())
			if err != nil {
				panic(err)
			}
			probCfg := mk()
			probCfg.Perfect = cpu.Perfect{LoadPCs: prob.LoadPCs, BranchPCs: prob.BranchPCs}
			perfCfg := mk()
			perfCfg.Perfect = cpu.Perfect{AllBranches: true, AllLoads: true}
			perfSpecs = append(perfSpecs, e.baseSpec(w, probCfg), e.baseSpec(w, perfCfg))
		}
	}
	perfRes := e.mustRunAll(perfSpecs)

	rows := make([]Figure1Row, 0, len(ws))
	for i, w := range ws {
		row := Figure1Row{Program: w.Name}
		for wi := range widthConfigs {
			row.Base[wi] = baseRes[2*i+wi].Stats().IPC()
			row.ProbPerf[wi] = perfRes[4*i+2*wi].Stats().IPC()
			row.AllPerf[wi] = perfRes[4*i+2*wi+1].Stats().IPC()
		}
		rows = append(rows, row)
	}
	return rows
}

// --- Table 3 ---

// Table3Row characterizes one constructed slice (static metadata).
type Table3Row struct {
	Program string
	Slice   string
	Static  int // static size (loop portion in parentheses in the paper)
	Loop    int
	LiveIns int
	Pref    int // problem loads prefetched
	Pred    int // problem branches predicted
	Kills   int
	MaxIter int
}

// Table3 reproduces the slice characterization table from the workloads'
// hand-constructed slices.
func Table3(ws []*workloads.Workload) []Table3Row {
	var rows []Table3Row
	for _, w := range ws {
		for _, sl := range w.Slices {
			rows = append(rows, Table3Row{
				Program: w.Name,
				Slice:   sl.Name,
				Static:  sl.StaticSize,
				Loop:    sl.LoopSize,
				LiveIns: len(sl.LiveIns),
				Pref:    len(sl.CoveredLoadPCs),
				Pred:    len(sl.CoveredBranchPCs()),
				Kills:   sl.KillCount(),
				MaxIter: sl.MaxLoops,
			})
		}
	}
	return rows
}

// --- Figure 11 ---

// Figure11Row holds the slice and constrained-limit speedups for one
// workload on the 4-wide machine.
type Figure11Row struct {
	Program      string
	BaseIPC      float64
	SliceIPC     float64
	LimitIPC     float64
	SliceSpeedup float64 // percent
	LimitSpeedup float64 // percent
}

// coveredPerfect builds the perfect-mode PC sets for the constrained limit
// study: exactly the problem instructions the workload's slices cover.
func coveredPerfect(w *workloads.Workload) cpu.Perfect {
	p := cpu.Perfect{LoadPCs: map[uint64]bool{}, BranchPCs: map[uint64]bool{}}
	for _, sl := range w.Slices {
		for _, pc := range sl.CoveredLoadPCs {
			p.LoadPCs[pc] = true
		}
		for _, pc := range sl.CoveredBranchPCs() {
			p.BranchPCs[pc] = true
		}
	}
	return p
}

// Figure11 reproduces Figure 11: speedup of slice-assisted execution and
// of "magically" perfecting the same problem instructions.
func Figure11(ws []*workloads.Workload, p Params) []Figure11Row {
	return NewEngine(p, 0).Figure11(ws)
}

// speedupPct is the percent cycle-count speedup of `with` over `base`,
// guarding the degenerate zero-cycle run (nothing retired) that would
// otherwise produce ±Inf/NaN.
func speedupPct(base, with uint64) float64 {
	if with == 0 || base == 0 {
		return 0
	}
	return (float64(base)/float64(with) - 1) * 100
}

// Figure11 reproduces Figure 11 through the engine: base, slice-assisted,
// and constrained-limit runs for every workload, all independent, all in
// one parallel batch.
func (e *Engine) Figure11(ws []*workloads.Workload) []Figure11Row {
	specs := make([]RunSpec, 0, 3*len(ws))
	for _, w := range ws {
		cfg := cpu.Config4Wide()
		limCfg := cpu.Config4Wide()
		limCfg.Perfect = coveredPerfect(w)
		specs = append(specs, e.baseSpec(w, cfg), e.sliceSpec(w, cfg), e.baseSpec(w, limCfg))
	}
	res := e.mustRunAll(specs)

	rows := make([]Figure11Row, 0, len(ws))
	for i, w := range ws {
		base, sl, lim := res[3*i].Stats(), res[3*i+1].Stats(), res[3*i+2].Stats()
		rows = append(rows, Figure11Row{
			Program:      w.Name,
			BaseIPC:      base.IPC(),
			SliceIPC:     sl.IPC(),
			LimitIPC:     lim.IPC(),
			SliceSpeedup: speedupPct(base.Cycles, sl.Cycles),
			LimitSpeedup: speedupPct(base.Cycles, lim.Cycles),
		})
	}
	return rows
}

// --- Table 4 ---

// Table4Col is the detailed characterization of one program with and
// without slices (one column of the paper's Table 4).
type Table4Col struct {
	Program string

	// Base run.
	BaseFetched     uint64
	BaseMispredicts uint64
	BaseLoadMisses  uint64
	BaseCycles      uint64

	// Base + slices run.
	SliceProgFetched  uint64
	SliceInstsFetched uint64
	SliceInstsRetired uint64
	Forks             uint64
	ForksSquashed     uint64
	ForksIgnored      uint64

	BranchesCovered  int    // static problem branches covered by slices
	PredsGenerated   uint64 // predictions the helpers actually filled
	PredsUsed        uint64 // predictions consumed by branch instances (incl. late)
	MispCovered      uint64 // base mispredictions at covered branch PCs
	MispRemoved      int64  // base mispredicts − slice mispredicts
	MispRemovedPct   float64
	IncorrectPreds   uint64
	LatePct          float64
	EarlyResolutions uint64

	LoadsCovered     int // static problem loads covered by slices
	Prefetches       uint64
	MissesCovered    uint64 // base misses at covered load PCs
	MissReduction    int64
	MissReductionPct float64

	SliceCycles uint64
	SpeedupPct  float64
	// FracFromLoads estimates the share of the speedup due to
	// prefetching, measured by re-running with PGI allocation disabled.
	FracFromLoads float64
}

// Table4 reproduces the paper's Table 4 on the 4-wide machine.
func Table4(ws []*workloads.Workload, p Params) []Table4Col {
	return NewEngine(p, 0).Table4(ws)
}

// Table4 reproduces Table 4 through the engine: base, slice, and
// predictions-off (prefetch-only) runs per workload, one parallel batch.
// The base and slice runs are the same specs Figure 11 uses, so running
// both drivers on one engine simulates them once.
func (e *Engine) Table4(ws []*workloads.Workload) []Table4Col {
	specs := make([]RunSpec, 0, 3*len(ws))
	for _, w := range ws {
		cfg := cpu.Config4Wide()
		prefCfg := cpu.Config4Wide()
		prefCfg.SlicePredictionsOff = true
		specs = append(specs, e.baseSpec(w, cfg), e.sliceSpec(w, cfg), e.sliceSpec(w, prefCfg))
	}
	res := e.mustRunAll(specs)

	cols := make([]Table4Col, 0, len(ws))
	for i, w := range ws {
		base, sl, pref := res[3*i].Stats(), res[3*i+1].Stats(), res[3*i+2].Stats()

		cov := coveredPerfect(w)
		var mispCov, missCov uint64
		for pc := range cov.BranchPCs {
			if st, ok := base.Static[pc]; ok {
				mispCov += st.Mispredicts
			}
		}
		for pc := range cov.LoadPCs {
			if st, ok := base.Static[pc]; ok {
				missCov += st.Misses
			}
		}

		col := Table4Col{
			Program:           w.Name,
			BaseFetched:       base.MainFetched,
			BaseMispredicts:   base.Mispredicts,
			BaseLoadMisses:    base.LoadMisses,
			BaseCycles:        base.Cycles,
			SliceProgFetched:  sl.MainFetched,
			SliceInstsFetched: sl.HelperFetched,
			SliceInstsRetired: sl.HelperRetired,
			Forks:             sl.Forks,
			ForksSquashed:     sl.ForksSquashed,
			ForksIgnored:      sl.ForksIgnored,
			BranchesCovered:   len(cov.BranchPCs),
			PredsGenerated:    sl.PredsGenerated,
			PredsUsed:         sl.PredsUsed + sl.PredsLateUsed,
			MispCovered:       mispCov,
			MispRemoved:       int64(base.Mispredicts) - int64(sl.Mispredicts),
			IncorrectPreds:    sl.PredsIncorrect,
			EarlyResolutions:  sl.EarlyResolutions,
			LoadsCovered:      len(cov.LoadPCs),
			Prefetches:        sl.SlicePrefetches,
			MissesCovered:     missCov,
			MissReduction:     int64(base.LoadMisses) - int64(sl.LoadMisses),
			SliceCycles:       sl.Cycles,
		}
		if base.Mispredicts > 0 {
			col.MispRemovedPct = float64(col.MispRemoved) / float64(base.Mispredicts) * 100
		}
		if used := sl.PredsUsed + sl.PredsLateUsed; used > 0 {
			col.LatePct = float64(sl.PredsLateUsed) / float64(used) * 100
		}
		if base.LoadMisses > 0 {
			col.MissReductionPct = float64(col.MissReduction) / float64(base.LoadMisses) * 100
		}
		col.SpeedupPct = speedupPct(base.Cycles, sl.Cycles)
		total := float64(base.Cycles) - float64(sl.Cycles)
		fromLoads := float64(base.Cycles) - float64(pref.Cycles)
		if total > 0 {
			frac := fromLoads / total
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			col.FracFromLoads = frac
		}
		cols = append(cols, col)
	}
	return cols
}
