package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestExportDocumentGolden locks the shape and content of the -json
// document (schema ExportSchema). Simulations are pure
// functions of their specs, so at a fixed scale the document is
// deterministic except for wall time, which is zeroed before comparison.
// Regenerate with -update after an intentional simulator change.
func TestExportDocumentGolden(t *testing.T) {
	ws := pick(t, "vpr")
	e := NewEngine(small, 4)
	doc := e.Export(ws)
	doc.Engine.SimWallMS = 0

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "export_vpr.golden.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("export document diverges from golden\n--- want ---\n%s\n--- got ---\n%s", want, buf.Bytes())
	}
}

// TestExportDocumentShape checks the structural invariants any consumer
// relies on, independent of golden values: the schema tag, one row (or
// column) per workload in every table, and populated engine counters.
func TestExportDocumentShape(t *testing.T) {
	ws := pick(t, "vpr", "mcf")
	e := NewEngine(small, 4)
	doc := e.Export(ws)

	if doc.Schema != ExportSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, ExportSchema)
	}
	if doc.Scale != small.Scale {
		t.Errorf("scale = %v, want %v", doc.Scale, small.Scale)
	}
	if len(doc.Workloads) != 2 || doc.Workloads[0] != "vpr" || doc.Workloads[1] != "mcf" {
		t.Errorf("workloads = %v", doc.Workloads)
	}
	if doc.Table1 == "" {
		t.Error("table1 text missing")
	}
	for name, n := range map[string]int{
		"table2":     len(doc.Table2),
		"figure1":    len(doc.Figure1),
		"table3":     len(doc.Table3),
		"figure11":   len(doc.Figure11),
		"table4":     len(doc.Table4),
		"figurePred": len(doc.FigurePred),
		"figureAuto": len(doc.FigureAuto),
	} {
		if n != len(ws) {
			t.Errorf("%s has %d rows, want %d", name, n, len(ws))
		}
	}
	// figureMP is per co-schedule, not per workload: 2 workloads form one
	// pair, each side with a per-program row.
	if len(doc.FigureMP) != 1 || len(doc.FigureMP[0].Programs) != 2 {
		t.Errorf("figureMP = %+v, want one 2-program co-schedule", doc.FigureMP)
	}
	if doc.Engine.Simulations == 0 || doc.Engine.SimInsts == 0 {
		t.Errorf("engine counters not populated: %+v", doc.Engine)
	}

	// The whole document must round-trip through JSON: a consumer that
	// decodes and re-encodes it sees identical bytes.
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("export document does not round-trip through JSON")
	}
}

// TestExportReaderToleratesV2 locks the schema migration path: v3 is
// purely additive, so this package's Export struct must parse a stored
// v2 document, with figurePred simply absent.
func TestExportReaderToleratesV2(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "export_vpr.v2.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc Export
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("v3 reader failed on a v2 document: %v", err)
	}
	if doc.Schema != "specslice-experiments/2" {
		t.Errorf("schema = %q, want the stored v2 tag", doc.Schema)
	}
	if doc.FigurePred != nil {
		t.Errorf("v2 document produced %d figurePred rows, want none", len(doc.FigurePred))
	}
	if len(doc.Table2) == 0 || len(doc.Figure11) == 0 || len(doc.Table4) == 0 ||
		doc.Engine.Simulations == 0 {
		t.Error("v2 fields did not survive the v3 reader")
	}
}

// TestExportReaderToleratesV4 does the same for the v4 → v5 step: v5 only
// added engine-block coordination counters, so a stored v4 document must
// parse with those counters zero and everything else intact.
func TestExportReaderToleratesV4(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "export_vpr.v4.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc Export
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("v5 reader failed on a v4 document: %v", err)
	}
	if doc.Schema != "specslice-experiments/4" {
		t.Errorf("schema = %q, want the stored v4 tag", doc.Schema)
	}
	if doc.Engine.SingleflightWaits != 0 || doc.Engine.Evictions != 0 {
		t.Error("v4 document produced nonzero v5 coordination counters")
	}
	if len(doc.FigureAuto) == 0 || len(doc.FigurePred) == 0 || len(doc.Table2) == 0 ||
		doc.Engine.Simulations == 0 {
		t.Error("v4 fields did not survive the v5 reader")
	}
}

// TestExportReaderToleratesV5 does the same for the v5 → v6 step: v6 only
// added figureMP, so a stored v5 document must parse with figureMP absent
// and everything else intact.
func TestExportReaderToleratesV5(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "export_vpr.v5.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc Export
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("v6 reader failed on a v5 document: %v", err)
	}
	if doc.Schema != "specslice-experiments/5" {
		t.Errorf("schema = %q, want the stored v5 tag", doc.Schema)
	}
	if doc.FigureMP != nil {
		t.Errorf("v5 document produced %d figureMP rows, want none", len(doc.FigureMP))
	}
	if len(doc.FigureAuto) == 0 || len(doc.FigurePred) == 0 || len(doc.Table2) == 0 ||
		doc.Engine.Simulations == 0 {
		t.Error("v5 fields did not survive the v6 reader")
	}
}

// TestExportReaderToleratesV3 does the same for the v3 → v4 step: v4 only
// added figureAuto, so a stored v3 document must parse with figureAuto
// absent and everything else intact.
func TestExportReaderToleratesV3(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "export_vpr.v3.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc Export
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("v4 reader failed on a v3 document: %v", err)
	}
	if doc.Schema != "specslice-experiments/3" {
		t.Errorf("schema = %q, want the stored v3 tag", doc.Schema)
	}
	if doc.FigureAuto != nil {
		t.Errorf("v3 document produced %d figureAuto rows, want none", len(doc.FigureAuto))
	}
	if len(doc.FigurePred) == 0 || len(doc.Table2) == 0 || len(doc.Figure11) == 0 ||
		doc.Engine.Simulations == 0 {
		t.Error("v3 fields did not survive the v4 reader")
	}
}
