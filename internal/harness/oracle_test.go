package harness

import (
	"path/filepath"
	"testing"

	"repro/internal/cpu"
)

// TestCheckpointGuardHitNotPersisted: a warm-up truncated by the MaxCycles
// guard yields a checkpoint of the wrong machine state; it may serve this
// process (with a warning) but must never reach the on-disk store, where
// it would poison every later run sharing the warm key.
func TestCheckpointGuardHitNotPersisted(t *testing.T) {
	dir := t.TempDir()
	w := pick(t, "vpr")[0]
	cfg := cpu.Config4Wide()
	cfg.MaxCycles = 200 // far below what the warm region needs

	cp := NewCheckpointer(dir, WarmDetailed)
	ck, src, err := cp.Warm(w, cfg, false, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || src != WarmFromSim {
		t.Fatalf("warm: ck=%v src=%s, want a simulated checkpoint", ck, src)
	}
	if ck.WarmRetired >= 20_000 {
		t.Fatalf("warm retired %d instructions under a %d-cycle guard; the test no longer truncates", ck.WarmRetired, cfg.MaxCycles)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("truncated warm checkpoint was persisted: %v", files)
	}
	if st := cp.Stats(); st.DiskStores != 0 {
		t.Fatalf("DiskStores = %d, want 0", st.DiskStores)
	}

	// An untruncated warm through the same store still persists.
	cp2 := NewCheckpointer(dir, WarmDetailed)
	if _, _, err := cp2.Warm(w, cpu.Config4Wide(), false, 20_000); err != nil {
		t.Fatal(err)
	}
	if st := cp2.Stats(); st.DiskStores != 1 {
		t.Fatalf("healthy warm DiskStores = %d, want 1", st.DiskStores)
	}
}

// TestEngineOracleCleanAcrossWarmModes runs oracle-validated measurements
// through the engine on every warm path — detailed, functional, and
// checkpoint restore-from-disk — and requires zero divergences, with and
// without slices.
func TestEngineOracleCleanAcrossWarmModes(t *testing.T) {
	w := pick(t, "vpr")[0]
	run := func(t *testing.T, cp *Checkpointer) {
		e := NewEngine(small, 2)
		e.Ckpt = cp
		e.Oracle = OracleOptions{Enabled: true, Every: 1024}
		specs := []RunSpec{e.baseSpec(w, cpu.Config4Wide()), e.sliceSpec(w, cpu.Config4Wide())}
		if _, err := e.RunAll(specs); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("detailed", func(t *testing.T) { run(t, NewCheckpointer("", WarmDetailed)) })
	t.Run("functional", func(t *testing.T) { run(t, NewCheckpointer("", WarmFunctional)) })
	t.Run("checkpoint-restore", func(t *testing.T) {
		dir := t.TempDir()
		run(t, NewCheckpointer(dir, WarmDetailed)) // builds the disk entries
		cp := NewCheckpointer(dir, WarmDetailed)
		run(t, cp) // restores them
		if st := cp.Stats(); st.WarmMisses != 0 {
			t.Fatalf("restore pass simulated %d warm regions, want 0", st.WarmMisses)
		}
	})
}

// TestEngineOracleErrorPropagatesToWaiters: when an oracle-failed (or
// otherwise errored) run is requested twice, the memo waiter must see the
// same error, not a nil result.
func TestEngineOracleErrorPropagatesToWaiters(t *testing.T) {
	e := NewEngine(small, 2)
	spec := RunSpec{Workload: "no-such-workload", Cfg: cpu.Config4Wide(), Warm: 10_000, Run: 20_000}
	if _, err := e.Run(spec); err == nil {
		t.Fatal("first run of an unknown workload succeeded")
	}
	res, err := e.Run(spec)
	if err == nil {
		t.Fatal("memoized error was swallowed: second run returned nil error")
	}
	if res != nil {
		t.Fatalf("second run returned a result (%v) alongside the error", res)
	}
}
