package harness

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

// small keeps harness tests fast: tiny regions on a few workloads.
var small = Params{Scale: 0.15}

func pick(t *testing.T, names ...string) []*workloads.Workload {
	t.Helper()
	var ws []*workloads.Workload
	for _, n := range names {
		w, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

func TestTable2ShapeHolds(t *testing.T) {
	rows := Table2(pick(t, "vpr", "gzip"), small)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The defining property: few static instructions cover most PDEs.
		if r.BrSI == 0 || r.BrSI > 30 {
			t.Errorf("%s: BrSI = %d", r.Program, r.BrSI)
		}
		if r.BrMis < 40 {
			t.Errorf("%s: branch coverage %.0f%%", r.Program, r.BrMis)
		}
		if r.MemSI == 0 || r.MisPct < 40 {
			t.Errorf("%s: mem coverage %d SIs, %.0f%%", r.Program, r.MemSI, r.MisPct)
		}
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "vpr") || !strings.Contains(text, "program") {
		t.Errorf("format:\n%s", text)
	}
}

func TestFigure1Ordering(t *testing.T) {
	rows := Figure1(pick(t, "vpr"), small)
	r := rows[0]
	for i := 0; i < 2; i++ {
		if !(r.AllPerf[i] >= r.ProbPerf[i] && r.ProbPerf[i] >= r.Base[i]*0.98) {
			t.Errorf("width %d: ordering base %.2f ≤ prob %.2f ≤ perfect %.2f violated",
				i, r.Base[i], r.ProbPerf[i], r.AllPerf[i])
		}
	}
	// The 8-wide machine must not be slower than the 4-wide one.
	if r.AllPerf[1] < r.AllPerf[0]*0.95 {
		t.Errorf("8-wide perfect IPC %.2f below 4-wide %.2f", r.AllPerf[1], r.AllPerf[0])
	}
	if !strings.Contains(FormatFigure1(rows), "prob.perfect") {
		t.Error("format missing columns")
	}
}

func TestTable3MatchesSliceMetadata(t *testing.T) {
	ws := workloads.All()
	rows := Table3(ws)
	var nSlices int
	for _, w := range ws {
		nSlices += len(w.Slices)
	}
	if len(rows) != nSlices {
		t.Fatalf("rows = %d, slices = %d", len(rows), nSlices)
	}
	for _, r := range rows {
		if r.Static == 0 {
			t.Errorf("%s: zero static size", r.Slice)
		}
		if r.LiveIns == 0 || r.LiveIns > 4 {
			t.Errorf("%s: %d live-ins", r.Slice, r.LiveIns)
		}
		// Slices are small: "typically fewer instructions than 4 times
		// the number of problem instructions covered" — ours stay ≤ 32.
		if r.Static > 32 {
			t.Errorf("%s: %d static instructions", r.Slice, r.Static)
		}
	}
	if !strings.Contains(FormatTable3(rows), "max iter") {
		t.Error("format missing header")
	}
}

func TestFigure11Shape(t *testing.T) {
	rows := Figure11(pick(t, "vpr", "eon", "parser"), Params{Scale: 0.3})
	byName := map[string]Figure11Row{}
	for _, r := range rows {
		byName[r.Program] = r
	}
	// The benchmarks the paper speeds up must speed up; parser must not.
	for _, n := range []string{"vpr", "eon"} {
		if byName[n].SliceSpeedup < 1 {
			t.Errorf("%s: slice speedup %.1f%%", n, byName[n].SliceSpeedup)
		}
		if byName[n].LimitSpeedup < 1 {
			t.Errorf("%s: limit speedup %.1f%%", n, byName[n].LimitSpeedup)
		}
	}
	if p := byName["parser"]; p.SliceSpeedup > 5 || p.SliceSpeedup < -6 {
		t.Errorf("parser: slice speedup %.1f%%, want ≈0", p.SliceSpeedup)
	}
	if !strings.Contains(FormatFigure11(rows), "limit") {
		t.Error("format missing limit rows")
	}
}

func TestTable4Consistency(t *testing.T) {
	cols := Table4(pick(t, "vpr"), Params{Scale: 0.3})
	c := cols[0]
	if c.Forks == 0 {
		t.Error("no forks recorded")
	}
	if c.SliceInstsFetched < c.SliceInstsRetired {
		t.Errorf("fetched %d < retired %d", c.SliceInstsFetched, c.SliceInstsRetired)
	}
	if c.BranchesCovered == 0 || c.LoadsCovered == 0 {
		t.Error("coverage metadata empty")
	}
	if c.LatePct < 0 || c.LatePct > 100 {
		t.Errorf("late%% = %.1f", c.LatePct)
	}
	if c.FracFromLoads < 0 || c.FracFromLoads > 1 {
		t.Errorf("frac from loads = %.2f", c.FracFromLoads)
	}
	if c.SpeedupPct < 0 {
		t.Errorf("vpr speedup %.1f%%", c.SpeedupPct)
	}
	text := FormatTable4(cols)
	if !strings.Contains(text, "Fork points") || !strings.Contains(text, "vpr") {
		t.Errorf("format:\n%s", text)
	}
}

func TestFormatTable1(t *testing.T) {
	text := FormatTable1()
	for _, want := range []string{"YAGS", "64-entry", "2MB", "ICOUNT"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 1 text missing %q", want)
		}
	}
}

func TestParamsRegions(t *testing.T) {
	w, _ := workloads.ByName("vpr")
	warm, run := Params{}.regions(w)
	if warm != w.SuggestedWarmup || run != w.SuggestedRun {
		t.Errorf("default regions = %d/%d", warm, run)
	}
	warm, run = Params{Scale: 0.001}.regions(w)
	if warm < 10_000 || run < 20_000 {
		t.Errorf("floors not applied: %d/%d", warm, run)
	}
}
