package harness

import (
	"repro/internal/bpred"
	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// This file implements the predictor-stack comparison figure: for each
// workload it pits speculative slices against the history-free baselines
// the prediction seam makes selectable — a value predictor, a sparse
// correlation-mining predictor, and a perfect-on-problem-branches upper
// bound — all measured on the problem-branch subset the profiler
// identifies. Every leg is an ordinary RunSpec through the memoized
// engine; adding a predictor to the comparison means adding one spec
// here, with zero changes to the core loop.

// FigurePredLeg is one predictor configuration's measurement: whole-run
// IPC plus the misprediction count on the problem-branch subset.
type FigurePredLeg struct {
	IPC float64 `json:"ipc"`
	// ProbMispredicts counts retired mispredictions at problem-branch PCs.
	ProbMispredicts uint64 `json:"probMispredicts"`
	// ProbMispPerK is ProbMispredicts per 1000 problem-branch executions
	// in the same run.
	ProbMispPerK float64 `json:"probMispPerK"`
}

// FigurePredRow compares the prediction stack on one workload (4-wide):
// the YAGS baseline, slice-assisted execution, the value predictor, the
// correlation-mining predictor, and perfect prediction of exactly the
// problem branches.
type FigurePredRow struct {
	Program string `json:"program"`
	// ProbBranches is the number of static problem branches; ProbExecs is
	// their dynamic execution count in the baseline run.
	ProbBranches int    `json:"probBranches"`
	ProbExecs    uint64 `json:"probExecs"`

	Base     FigurePredLeg `json:"base"`
	Slices   FigurePredLeg `json:"slices"`
	Value    FigurePredLeg `json:"value"`
	CorrMine FigurePredLeg `json:"corrMine"`
	Perfect  FigurePredLeg `json:"perfect"`
}

// FigurePred runs the predictor-stack comparison for the given workloads.
func FigurePred(ws []*workloads.Workload, p Params) []FigurePredRow {
	return NewEngine(p, 0).FigurePred(ws)
}

// probLeg folds one run's per-PC statistics over the problem-branch set.
func probLeg(s *stats.Sim, pcs map[uint64]bool) (leg FigurePredLeg, execs uint64) {
	for pc := range pcs {
		if st, ok := s.Static[pc]; ok {
			execs += st.Execs
			leg.ProbMispredicts += st.Mispredicts
		}
	}
	leg.IPC = s.IPC()
	if execs > 0 {
		leg.ProbMispPerK = float64(leg.ProbMispredicts) / float64(execs) * 1000
	}
	return leg, execs
}

// FigurePred runs the comparison through the engine in two parallel
// phases: the 4-wide baselines first (shared with Table 2 and Figure 1 —
// they double as the profiling runs that pick the problem branches), then
// the four alternative legs per workload in one batch.
func (e *Engine) FigurePred(ws []*workloads.Workload) []FigurePredRow {
	baseSpecs := make([]RunSpec, len(ws))
	for i, w := range ws {
		baseSpecs[i] = e.baseSpec(w, cpu.Config4Wide())
	}
	e.mustRunAll(baseSpecs)

	specs := make([]RunSpec, 0, 5*len(ws))
	probPCs := make([]map[uint64]bool, len(ws))
	for i, w := range ws {
		prob, err := e.profileFor(w, cpu.Config4Wide())
		if err != nil {
			panic(err)
		}
		probPCs[i] = prob.BranchPCs

		cfg := cpu.Config4Wide()
		valueCfg := cpu.Config4Wide()
		valueCfg.BPred = "value"
		corrCfg := cpu.Config4Wide()
		corrCfg.BPred = "corrmine"
		perfCfg := cpu.Config4Wide()
		perfCfg.BPred = bpred.PerfectSpec(prob.BranchPCs)
		specs = append(specs,
			e.baseSpec(w, cfg), e.sliceSpec(w, cfg),
			e.baseSpec(w, valueCfg), e.baseSpec(w, corrCfg), e.baseSpec(w, perfCfg))
	}
	res := e.mustRunAll(specs)

	rows := make([]FigurePredRow, 0, len(ws))
	for i, w := range ws {
		pcs := probPCs[i]
		row := FigurePredRow{Program: w.Name, ProbBranches: len(pcs)}
		row.Base, row.ProbExecs = probLeg(res[5*i].Stats(), pcs)
		row.Slices, _ = probLeg(res[5*i+1].Stats(), pcs)
		row.Value, _ = probLeg(res[5*i+2].Stats(), pcs)
		row.CorrMine, _ = probLeg(res[5*i+3].Stats(), pcs)
		row.Perfect, _ = probLeg(res[5*i+4].Stats(), pcs)
		rows = append(rows, row)
	}
	return rows
}
