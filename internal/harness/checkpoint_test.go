package harness

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/cpu"
	"repro/internal/stats"
)

// measureVia runs one measurement through cp and returns its snapshot.
func measureVia(t *testing.T, cp *Checkpointer, workload string, cfg cpu.Config, withSlices bool, warm, run uint64) stats.Snapshot {
	t.Helper()
	w := pick(t, workload)[0]
	core, _, err := runOnce(cp, w, cfg, withSlices, warm, run, OracleOptions{}, nil)
	if err != nil {
		t.Fatalf("runOnce: %v", err)
	}
	return core.Snapshot()
}

// TestCheckpointerSharesWarmPrefixes locks the tentpole win: measurement
// configs that differ only in measurement-only fields share one warm
// simulation. Figure 11's constrained-limit run differs from the baseline
// only in Perfect, so vpr needs 3 warm simulations for its 4 runs — and
// Table 4 afterwards adds nothing but memo hits.
func TestCheckpointerSharesWarmPrefixes(t *testing.T) {
	e := NewEngine(small, 4)
	ws := pick(t, "vpr")

	e.Figure11(ws)
	st := e.Stats()
	if st.Misses != 3 {
		t.Fatalf("Figure11 ran %d simulations, want 3", st.Misses)
	}
	if st.Checkpoints.WarmMisses != 2 {
		t.Errorf("Figure11 simulated %d warm regions, want 2 (base and limit share one)", st.Checkpoints.WarmMisses)
	}
	if st.Checkpoints.WarmHits != 1 {
		t.Errorf("Figure11 warm hits = %d, want 1", st.Checkpoints.WarmHits)
	}
	if st.Checkpoints.Restores != 3 {
		t.Errorf("Figure11 restores = %d, want 3", st.Checkpoints.Restores)
	}

	e.Table4(ws)
	st = e.Stats()
	if st.Checkpoints.WarmMisses != 3 {
		t.Errorf("Figure11+Table4 warm misses = %d, want 3 (only predictions-off adds a warm)", st.Checkpoints.WarmMisses)
	}
	if st.Checkpoints.DiskLoads+st.Checkpoints.DiskStores != 0 {
		t.Errorf("disk counters moved without a Dir: %+v", st.Checkpoints)
	}
}

// TestCheckpointCacheHitEquivalence: a measurement served from a warm-cache
// hit must be snapshot-identical to the one that simulated its own warm.
func TestCheckpointCacheHitEquivalence(t *testing.T) {
	cfg := cpu.Config4Wide()
	cold := measureVia(t, NewCheckpointer("", WarmDetailed), "vpr", cfg, true, 22_500, 60_000)

	shared := NewCheckpointer("", WarmDetailed)
	measureVia(t, shared, "vpr", cfg, true, 22_500, 60_000) // prime
	hit := measureVia(t, shared, "vpr", cfg, true, 22_500, 60_000)

	if !reflect.DeepEqual(cold, hit) {
		t.Error("warm-cache hit produced a different snapshot than a cold run")
	}
	st := shared.Stats()
	if st.WarmMisses != 1 || st.WarmHits != 1 {
		t.Errorf("warm misses/hits = %d/%d, want 1/1", st.WarmMisses, st.WarmHits)
	}
}

// TestCheckpointDiskRoundTrip: a second checkpointer over the same
// directory serves the warm prefix from disk — zero warm simulations — and
// produces an identical measurement.
func TestCheckpointDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := cpu.Config4Wide()
	const warm, run = 22_500, 60_000

	first := NewCheckpointer(dir, WarmDetailed)
	a := measureVia(t, first, "vpr", cfg, true, warm, run)
	if st := first.Stats(); st.DiskStores != 1 || st.DiskBytes == 0 {
		t.Fatalf("first run disk stats: %+v, want 1 store", st)
	}

	second := NewCheckpointer(dir, WarmDetailed)
	b := measureVia(t, second, "vpr", cfg, true, warm, run)
	st := second.Stats()
	if st.WarmMisses != 0 {
		t.Errorf("second checkpointer simulated %d warm regions, want 0", st.WarmMisses)
	}
	if st.DiskLoads != 1 || st.WarmHits != 1 {
		t.Errorf("second checkpointer disk loads/warm hits = %d/%d, want 1/1", st.DiskLoads, st.WarmHits)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("disk-restored measurement differs from the run that built the checkpoint")
	}
}

// TestCheckpointDiskCorruption: one flipped byte must be rejected (CRC) and
// fall back to simulating, still yielding the correct result.
func TestCheckpointDiskCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := cpu.Config4Wide()
	const warm, run = 22_500, 60_000

	good := measureVia(t, NewCheckpointer(dir, WarmDetailed), "vpr", cfg, false, warm, run)

	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one checkpoint file, got %v (%v)", files, err)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-10] ^= 0x40 // flip one payload bit
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	cp := NewCheckpointer(dir, WarmDetailed)
	after := measureVia(t, cp, "vpr", cfg, false, warm, run)
	st := cp.Stats()
	if st.DiskLoads != 0 {
		t.Errorf("corrupt entry was loaded (DiskLoads=%d)", st.DiskLoads)
	}
	if st.WarmMisses != 1 {
		t.Errorf("corrupt entry did not fall back to simulating (WarmMisses=%d)", st.WarmMisses)
	}
	if !reflect.DeepEqual(good, after) {
		t.Error("fallback after corruption produced a different snapshot")
	}
	// The fallback rewrites the entry; a third checkpointer loads it again.
	if st.DiskStores != 1 {
		t.Errorf("fallback did not rewrite the corrupt entry (DiskStores=%d)", st.DiskStores)
	}
	third := NewCheckpointer(dir, WarmDetailed)
	measureVia(t, third, "vpr", cfg, false, warm, run)
	if st := third.Stats(); st.DiskLoads != 1 {
		t.Errorf("rewritten entry not loadable (DiskLoads=%d)", st.DiskLoads)
	}
}

// TestConcurrentRestoresShareOneCheckpoint runs many concurrent
// measurements off one shared checkpoint (the engine fan-out pattern)
// under -race: restores must not alias mutable state, and every result
// must be identical.
func TestConcurrentRestoresShareOneCheckpoint(t *testing.T) {
	cp := NewCheckpointer("", WarmDetailed)
	w := pick(t, "mcf")[0]
	cfg := cpu.Config4Wide()
	const warm, run = 22_500, 60_000

	const n = 8
	snaps := make([]stats.Snapshot, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			core, _, err := runOnce(cp, w, cfg, true, warm, run, OracleOptions{}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			snaps[i] = core.Snapshot()
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(snaps[0], snaps[i]) {
			t.Fatalf("concurrent restore %d diverged from restore 0", i)
		}
	}
	if st := cp.Stats(); st.WarmMisses != 1 || st.Restores != n {
		t.Errorf("warm misses/restores = %d/%d, want 1/%d", st.WarmMisses, st.Restores, n)
	}
}

// functionalWarmIPCTolerance bounds how far a measurement from a
// functional-warm checkpoint may drift from the detailed-warm reference.
// Functional warming compresses time (1 IPC), skips wrong-path cache
// pollution, and starts slices cold, so it is *not* behavior-identical;
// empirically the measured IPC lands within 0.1% on every workload at
// bench scale (see DESIGN.md), so 2% leaves generous slack.
const functionalWarmIPCTolerance = 0.02

// TestFunctionalWarmWithinTolerance validates the opt-in fast-forward
// against detailed warm on the measured region's IPC.
func TestFunctionalWarmWithinTolerance(t *testing.T) {
	const warm, run = 37_500, 100_000
	for _, name := range []string{"vpr", "gzip", "mcf"} {
		t.Run(name, func(t *testing.T) {
			cfg := cpu.Config4Wide()
			det := measureVia(t, NewCheckpointer("", WarmDetailed), name, cfg, false, warm, run)
			fun := measureVia(t, NewCheckpointer("", WarmFunctional), name, cfg, false, warm, run)
			dIPC, fIPC := det.Sim.IPC(), fun.Sim.IPC()
			drift := math.Abs(fIPC-dIPC) / dIPC
			t.Logf("detailed IPC %.4f, functional IPC %.4f, drift %.2f%%", dIPC, fIPC, drift*100)
			if drift > functionalWarmIPCTolerance {
				t.Errorf("functional warm drifted %.2f%% from detailed, tolerance %.0f%%",
					drift*100, functionalWarmIPCTolerance*100)
			}
		})
	}
}

// TestParseWarmMode pins flag parsing.
func TestParseWarmMode(t *testing.T) {
	for in, want := range map[string]WarmMode{
		"": WarmDetailed, "detailed": WarmDetailed, "functional": WarmFunctional,
		"functional-interp": WarmFunctionalInterp,
	} {
		got, err := ParseWarmMode(in)
		if err != nil || got != want {
			t.Errorf("ParseWarmMode(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := ParseWarmMode("magic"); err == nil {
		t.Error("ParseWarmMode accepted garbage")
	}
}

// TestWarmKeySharing pins which config changes share a warm prefix.
func TestWarmKeySharing(t *testing.T) {
	base := cpu.Config4Wide()
	perf := cpu.Config4Wide()
	perf.Perfect = cpu.Perfect{AllBranches: true, AllLoads: true}
	if WarmKeyFor("vpr", false, 100, WarmDetailed, base) != WarmKeyFor("vpr", false, 100, WarmDetailed, perf) {
		t.Error("perfect-mode change split the warm key")
	}
	predsOff := cpu.Config4Wide()
	predsOff.SlicePredictionsOff = true
	distinct := []string{
		WarmKeyFor("vpr", false, 100, WarmDetailed, base),
		WarmKeyFor("gzip", false, 100, WarmDetailed, base),
		WarmKeyFor("vpr", true, 100, WarmDetailed, base),
		WarmKeyFor("vpr", false, 101, WarmDetailed, base),
		WarmKeyFor("vpr", false, 100, WarmFunctional, base),
		WarmKeyFor("vpr", false, 100, WarmFunctionalInterp, base),
		WarmKeyFor("vpr", false, 100, WarmDetailed, predsOff),
		WarmKeyFor("vpr", false, 100, WarmDetailed, cpu.Config8Wide()),
	}
	seen := map[string]bool{}
	for i, k := range distinct {
		if seen[k] {
			t.Errorf("warm key %d collides: %s", i, k)
		}
		seen[k] = true
	}
}

// TestRegionClampWarning covers the silent-floor fix: a scale small enough
// to hit the 10k/20k floors must warn exactly once per process.
func TestRegionClampWarning(t *testing.T) {
	var mu sync.Mutex
	var warnings []string
	regionClampWarnf = func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	t.Cleanup(func() { regionClampWarnf = warnf })

	w := pick(t, "vpr")[0]

	regionClampWarned.Store(false)
	warnings = nil
	if warm, run := (Params{Scale: 1}).regions(w); warm < minWarmRegion || run < minRunRegion {
		t.Fatalf("full-scale regions unexpectedly tiny: %d/%d", warm, run)
	}
	if len(warnings) != 0 {
		t.Fatalf("full scale warned: %v", warnings)
	}

	tiny := Params{Scale: 0.01}
	warm, run := tiny.regions(w)
	if warm != minWarmRegion || run != minRunRegion {
		t.Errorf("tiny scale regions = %d/%d, want the %d/%d floors", warm, run, minWarmRegion, minRunRegion)
	}
	if len(warnings) != 1 {
		t.Fatalf("tiny scale produced %d warnings, want 1: %v", len(warnings), warnings)
	}
	if !strings.Contains(warnings[0], "floors") || !strings.Contains(warnings[0], "vpr") {
		t.Errorf("warning lacks context: %q", warnings[0])
	}

	// Second clamp: deduped.
	tiny.regions(w)
	if len(warnings) != 1 {
		t.Errorf("clamp warning repeated: %v", warnings)
	}
}
