package harness

import (
	"strings"
	"testing"
)

// TestFigureAutoClosedLoop is the end-to-end closed-loop check: profile →
// cluster → build → oracle-validate → accept must produce at least one
// accepted, divergence-free auto slice across a few workloads, and every
// accepted candidate must carry a clean verdict.
func TestFigureAutoClosedLoop(t *testing.T) {
	ws := pick(t, "crafty", "eon", "vpr")
	e := NewEngine(small, 4)
	rows := e.FigureAuto(ws)
	if len(rows) != len(ws) {
		t.Fatalf("rows = %d, want %d", len(rows), len(ws))
	}

	validated := 0
	for _, r := range rows {
		if r.Program == "" {
			t.Errorf("row without program name: %+v", r)
		}
		accepted := 0
		for _, c := range r.Candidates {
			if c.Reason == "" {
				t.Errorf("%s: candidate %s was never judged", r.Program, c.Name)
			}
			if c.Accepted {
				accepted++
				if c.Reason != "ok" {
					t.Errorf("%s: accepted candidate %s has reason %q", r.Program, c.Name, c.Reason)
				}
				if c.Overrides == 0 && c.Prefetches == 0 {
					t.Errorf("%s: accepted candidate %s has no coverage", r.Program, c.Name)
				}
			}
			if c.Static > DefaultAutoParams().MaxSliceLen {
				t.Errorf("%s: candidate %s static size %d exceeds bound", r.Program, c.Name, c.Static)
			}
			if c.LiveIns > DefaultAutoParams().MaxLiveIns {
				t.Errorf("%s: candidate %s live-ins %d exceeds bound", r.Program, c.Name, c.LiveIns)
			}
		}
		if r.AutoSlices > 0 {
			if !r.OracleValidated {
				t.Errorf("%s: accepted configuration not oracle-validated", r.Program)
			}
			if accepted == 0 {
				t.Errorf("%s: AutoSlices=%d but no accepted candidate", r.Program, r.AutoSlices)
			}
			validated++
		} else if r.OracleValidated {
			t.Errorf("%s: OracleValidated without accepted slices", r.Program)
		}
	}
	if validated == 0 {
		t.Errorf("no workload produced an accepted, oracle-validated auto slice:\n%s", FormatFigureAuto(rows))
	}

	text := FormatFigureAuto(rows)
	for _, w := range ws {
		if !strings.Contains(text, w.Name) {
			t.Errorf("format output missing %s:\n%s", w.Name, text)
		}
	}
}

// TestFigureAutoDeterministic pins what the CI checkpoint smoke relies on:
// the rows must be identical across engines (cold vs memoized state must
// not leak into the document).
func TestFigureAutoDeterministic(t *testing.T) {
	ws := pick(t, "crafty")
	a := NewEngine(small, 4).FigureAuto(ws)
	b := NewEngine(small, 4).FigureAuto(ws)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		// Compare via formatted output; the rows hold only value types.
		if got, want := FormatFigureAuto([]FigureAutoRow{ra}), FormatFigureAuto([]FigureAutoRow{rb}); got != want {
			t.Errorf("row %d differs between engines:\n--- a ---\n%s\n--- b ---\n%s", i, got, want)
		}
	}
}
