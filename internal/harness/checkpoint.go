package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/slicehw"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// This file implements shared warm prefixes: every measurement region is
// preceded by a warm region whose simulation depends only on the workload,
// the slice mode, the warm length, and the warm-relevant configuration
// fields (cpu.Config.WarmConfig documents the split). The Checkpointer
// simulates each distinct warm prefix once, captures the machine at a
// quiesced point (cpu.Checkpoint), and restores it into every measurement
// that shares the prefix — across configs, across engine fan-out, and (with
// Dir set) across process invocations via an on-disk store.

// WarmMode selects how warm regions are simulated.
type WarmMode string

const (
	// WarmDetailed runs the warm region on the detailed out-of-order core.
	// Restoring a detailed checkpoint and measuring is behavior-identical
	// to warming and measuring straight through.
	WarmDetailed WarmMode = "detailed"
	// WarmFunctional fast-forwards the warm region with the compiled
	// functional engine plus cache/predictor touch-warming
	// (cpu.FunctionalWarm). Much faster, but only statistically close to
	// detailed warm — see DESIGN.md for the documented tolerance.
	WarmFunctional WarmMode = "functional"
	// WarmFunctionalInterp is WarmFunctional on the retained decode-
	// dispatch interpreter (cpu.FunctionalWarmInterp). It exists as the
	// differential reference for the compiled engine: given identical
	// inputs the two modes must produce byte-identical checkpoints, and
	// the CI oracle sweep runs a leg on each.
	WarmFunctionalInterp WarmMode = "functional-interp"
)

// ParseWarmMode parses a -warm flag value.
func ParseWarmMode(s string) (WarmMode, error) {
	switch WarmMode(s) {
	case "", WarmDetailed:
		return WarmDetailed, nil
	case WarmFunctional:
		return WarmFunctional, nil
	case WarmFunctionalInterp:
		return WarmFunctionalInterp, nil
	}
	return "", fmt.Errorf("unknown warm mode %q (want %q, %q, or %q)",
		s, WarmDetailed, WarmFunctional, WarmFunctionalInterp)
}

// WarmKeyFor is the identity of one shareable warm prefix. Configurations
// that differ only in measurement-only fields map to the same key and
// share one checkpoint.
func WarmKeyFor(workload string, withSlices bool, warm uint64, mode WarmMode, cfg cpu.Config) string {
	return fmt.Sprintf("%s|slices=%t|warm=%d|mode=%s|%s",
		workload, withSlices, warm, mode, cfg.WarmFingerprint())
}

// WarmSource says where a warm checkpoint came from.
type WarmSource string

const (
	WarmFromMemo WarmSource = "memo" // in-memory cache hit
	WarmFromDisk WarmSource = "disk" // loaded from the on-disk store
	WarmFromSim  WarmSource = "sim"  // simulated this call
)

// CheckpointStats aggregates warm-checkpoint observability counters.
type CheckpointStats struct {
	// WarmHits counts warm requests served without simulating (from the
	// in-memory cache or the on-disk store); WarmMisses counts warm regions
	// actually simulated.
	WarmHits, WarmMisses uint64
	// Restores counts cores rebuilt from a checkpoint.
	Restores uint64
	// DiskLoads/DiskStores count on-disk store reads/writes that succeeded;
	// DiskBytes is the total bytes moved in either direction.
	DiskLoads, DiskStores uint64
	DiskBytes             uint64

	// Cross-process single-flight (see store.go). SingleflightWaits counts
	// Warm calls that found another process's lease on their key and
	// waited; SingleflightHits counts waits resolved by loading that
	// process's finished build (waits − hits rebuilt locally, e.g. after a
	// takeover). LeaseTakeovers counts stale leases stolen from a dead or
	// stalled holder.
	SingleflightWaits, SingleflightHits uint64
	LeaseTakeovers                      uint64
	// Evictions/EvictedBytes count store entries removed by the MaxBytes
	// LRU garbage collector.
	Evictions, EvictedBytes uint64
}

// Checkpointer is a two-level warm-checkpoint cache: an in-memory map for
// an engine's fan-out (and anything else in-process — it is safe for
// concurrent use and shareable between engines), plus an optional on-disk
// store so repeated process invocations skip warm-up entirely. The zero
// value is not usable; call NewCheckpointer.
type Checkpointer struct {
	// Dir, when non-empty, enables the on-disk store. Corrupt or stale
	// entries are ignored with a warning and rebuilt.
	Dir string
	// Mode selects detailed (default, behavior-identical) or functional
	// (fast, approximate) warm-up.
	Mode WarmMode
	// MaxBytes, when > 0, bounds the on-disk store: after every store the
	// least-recently-used entries are evicted until the total is back
	// under the bound (set before the first Warm; see store.go).
	MaxBytes int64
	// Tracer, when non-nil, receives store coordination events
	// (singleflight waits, lease takeovers, evictions).
	Tracer stats.Tracer

	mu      sync.Mutex
	entries map[string]*ckptEntry
	st      CheckpointStats
}

type ckptEntry struct {
	done chan struct{} // closed when ck/err are valid
	ck   *cpu.Checkpoint
	err  error
}

// NewCheckpointer builds a checkpointer. dir == "" disables the disk
// store; mode == "" means WarmDetailed.
func NewCheckpointer(dir string, mode WarmMode) *Checkpointer {
	if mode == "" {
		mode = WarmDetailed
	}
	return &Checkpointer{Dir: dir, Mode: mode, entries: make(map[string]*ckptEntry)}
}

// Stats returns a snapshot of the observability counters.
func (cp *Checkpointer) Stats() CheckpointStats {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.st
}

// Warm returns the checkpoint for one warm prefix, simulating it only if
// neither cache level has it. Safe for concurrent use; concurrent requests
// for the same key simulate once (the same done-channel discipline as the
// engine memo — see Engine.Run for why waiters cannot starve creators).
// With Dir set, the single-flight guarantee extends across processes: N
// Checkpointers racing on one key perform exactly one warm simulation
// between them (lock-file lease; see store.go).
func (cp *Checkpointer) Warm(w *workloads.Workload, cfg cpu.Config, withSlices bool, warm uint64) (*cpu.Checkpoint, WarmSource, error) {
	key := WarmKeyFor(w.Name, withSlices, warm, cp.Mode, cfg)
	cp.mu.Lock()
	if en, ok := cp.entries[key]; ok {
		cp.st.WarmHits++
		cp.mu.Unlock()
		<-en.done
		return en.ck, WarmFromMemo, en.err
	}
	en := &ckptEntry{done: make(chan struct{})}
	cp.entries[key] = en
	cp.mu.Unlock()

	var src WarmSource
	en.ck, src, en.err = cp.warmFromStore(w, cfg, withSlices, warm, key)
	close(en.done)
	return en.ck, src, en.err
}

// buildCounted is build plus miss accounting, shared by the no-store path
// and the store's lease-holder path.
func (cp *Checkpointer) buildCounted(w *workloads.Workload, cfg cpu.Config, withSlices bool, warm uint64) (ck *cpu.Checkpoint, persist bool, err error) {
	ck, persist, err = cp.build(w, cfg, withSlices, warm)
	cp.mu.Lock()
	cp.st.WarmMisses++
	cp.mu.Unlock()
	return ck, persist, err
}

// WarmedCore returns a fresh core restored to the end of the warm prefix,
// ready to measure under cfg. Every call restores its own core; one
// checkpoint serves any number of concurrent WarmedCore calls.
func (cp *Checkpointer) WarmedCore(w *workloads.Workload, cfg cpu.Config, withSlices bool, warm uint64) (*cpu.Core, WarmSource, error) {
	core, _, src, err := cp.WarmedCoreCkpt(w, cfg, withSlices, warm)
	return core, src, err
}

// WarmedCoreCkpt is WarmedCore returning the warm checkpoint alongside the
// restored core. The checkpoint is the shared cache entry — read-only — and
// captures the core's exact architectural state at the start of the
// measured region, which is what the differential oracle seeds from.
func (cp *Checkpointer) WarmedCoreCkpt(w *workloads.Workload, cfg cpu.Config, withSlices bool, warm uint64) (*cpu.Core, *cpu.Checkpoint, WarmSource, error) {
	var table *slicehw.Table
	if withSlices {
		table = w.SliceTable()
	}
	return cp.WarmedCoreCkptAt(w, cfg, withSlices, warm, w.Image, table)
}

// WarmedCoreCkptAt is WarmedCoreCkpt restoring into an explicit image and
// slice table instead of the workload's own. The warm prefix is still the
// workload's (keyed by withSlices): the checkpoint's PC and memory state
// lie entirely inside the main program, so any image that embeds the main
// program accepts the restore — this is how automatically constructed
// slice candidates get measured from a shared baseline warm prefix while
// their own confidence/correlator hardware starts cold at the boundary.
func (cp *Checkpointer) WarmedCoreCkptAt(w *workloads.Workload, cfg cpu.Config, withSlices bool, warm uint64, image *asm.Image, table *slicehw.Table) (*cpu.Core, *cpu.Checkpoint, WarmSource, error) {
	ck, src, err := cp.Warm(w, cfg, withSlices, warm)
	if err != nil {
		return nil, nil, src, err
	}
	core, err := cpu.Restore(cfg, image, ck, table)
	if err != nil {
		return nil, nil, src, err
	}
	cp.mu.Lock()
	cp.st.Restores++
	cp.mu.Unlock()
	return core, ck, src, nil
}

// build simulates one warm prefix and checkpoints the quiesced machine.
// persist reports whether the checkpoint is safe to write to the on-disk
// store: a warm region truncated by the MaxCycles guard produces a
// checkpoint of the wrong machine state (fewer instructions warmed than the
// key claims), and persisting it would poison every later run sharing the
// prefix — so it is used for this process only, with a warning.
func (cp *Checkpointer) build(w *workloads.Workload, cfg cpu.Config, withSlices bool, warm uint64) (ck *cpu.Checkpoint, persist bool, err error) {
	switch cp.Mode {
	case WarmFunctional:
		// The functional path models no slices; the restored measurement
		// core starts with a cold correlator (Restore accepts the nil
		// states), which is part of the documented accuracy gap.
		ck, err = cpu.FunctionalWarm(cfg, w.Image, w.NewMemory(), w.Entry, warm, nil)
		return ck, err == nil, err
	case WarmFunctionalInterp:
		ck, err = cpu.FunctionalWarmInterp(cfg, w.Image, w.NewMemory(), w.Entry, warm, nil)
		return ck, err == nil, err
	}
	var table *slicehw.Table
	if withSlices {
		table = w.SliceTable()
	}
	core, err := cpu.New(cfg.WarmConfig(), w.Image, w.NewMemory(), w.Entry, table)
	if err != nil {
		return nil, false, err
	}
	core.Run(warm)
	if core.S.CycleGuardHits > 0 {
		warnf("%s warm-up hit the MaxCycles guard after %d retired instructions (wanted %d) — checkpoint not persisted",
			w.Name, core.S.MainRetired, warm)
		ck, err = core.Checkpoint()
		return ck, false, err
	}
	ck, err = core.Checkpoint()
	return ck, err == nil, err
}

// --- on-disk store ---
//
// File layout (little-endian):
//
//	magic   [8]byte  "SPECSLCK"
//	version u32      ckptSchemaVersion
//	keyLen  u32
//	key     [keyLen]byte   the WarmKey, stored to reject hash collisions
//	                       and stale files whose key semantics changed
//	crc     u32      IEEE CRC32 of payload
//	payLen  u64
//	payload [payLen]byte   cpu.Checkpoint.EncodeBinary
//
// Loads verify magic, version, key, and CRC before decoding; any mismatch
// (bit rot, a checkpoint from an older schema, a colliding file name)
// produces one warning and falls back to simulating the warm region.

const ckptMagic = "SPECSLCK"

// ckptSchemaVersion versions the container *and* the payload encoding.
// Bump it whenever cpu.Checkpoint or its binary codec changes shape, so
// stale caches from older builds are rebuilt instead of misdecoded.
//
// v2: the hand-coded YAGS/cascaded predictor tables were replaced by
// opaque self-describing predictor sections (spec + SaveState blob).
const ckptSchemaVersion = 2

func ckptPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, hex.EncodeToString(sum[:16])+".ckpt")
}

func warnf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "harness: WARNING: "+format+"\n", args...)
}

// diskLoad returns the stored checkpoint for key, or nil (with a warning
// for anything other than a simple absence). n is the file size on
// success. corrupt reports that an entry file was read but failed
// validation — it can never become a valid done marker, so the
// single-flight loop must remove it rather than wait on it.
func (cp *Checkpointer) diskLoad(key string) (ck *cpu.Checkpoint, n int, corrupt bool) {
	if cp.Dir == "" {
		return nil, 0, false
	}
	path := ckptPath(cp.Dir, key)
	b, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			warnf("checkpoint store: %v", err)
		}
		return nil, 0, false
	}
	payload, err := parseCkptFile(b, key)
	if err != nil {
		warnf("ignoring checkpoint %s: %v", filepath.Base(path), err)
		return nil, 0, true
	}
	ck, err = cpu.DecodeCheckpoint(payload)
	if err != nil {
		warnf("ignoring checkpoint %s: %v", filepath.Base(path), err)
		return nil, 0, true
	}
	return ck, len(b), false
}

func parseCkptFile(b []byte, key string) ([]byte, error) {
	if len(b) < len(ckptMagic)+8 {
		return nil, fmt.Errorf("truncated header")
	}
	if string(b[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("bad magic")
	}
	b = b[len(ckptMagic):]
	if v := binary.LittleEndian.Uint32(b); v != ckptSchemaVersion {
		return nil, fmt.Errorf("schema version %d, want %d (stale cache)", v, ckptSchemaVersion)
	}
	keyLen := binary.LittleEndian.Uint32(b[4:])
	b = b[8:]
	if uint64(keyLen) > uint64(len(b)) {
		return nil, fmt.Errorf("truncated key")
	}
	if string(b[:keyLen]) != key {
		return nil, fmt.Errorf("key mismatch (stale or colliding entry)")
	}
	b = b[keyLen:]
	if len(b) < 12 {
		return nil, fmt.Errorf("truncated payload header")
	}
	crc := binary.LittleEndian.Uint32(b)
	payLen := binary.LittleEndian.Uint64(b[4:])
	b = b[12:]
	if payLen != uint64(len(b)) {
		return nil, fmt.Errorf("payload length %d, have %d bytes", payLen, len(b))
	}
	if got := crc32.ChecksumIEEE(b); got != crc {
		return nil, fmt.Errorf("payload CRC mismatch (corrupt entry)")
	}
	return b, nil
}

// diskStore writes the checkpoint for key; best-effort (a failure warns and
// the run proceeds). Returns bytes written, 0 if disabled or failed.
func (cp *Checkpointer) diskStore(key string, ck *cpu.Checkpoint) int {
	if cp.Dir == "" {
		return 0
	}
	if err := os.MkdirAll(cp.Dir, 0o755); err != nil {
		warnf("checkpoint store: %v", err)
		return 0
	}
	payload := ck.EncodeBinary()
	b := make([]byte, 0, len(ckptMagic)+8+len(key)+12+len(payload))
	b = append(b, ckptMagic...)
	b = binary.LittleEndian.AppendUint32(b, ckptSchemaVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(payload)))
	b = append(b, payload...)

	path := ckptPath(cp.Dir, key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		warnf("checkpoint store: %v", err)
		return 0
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		warnf("checkpoint store: %v", err)
		return 0
	}
	return len(b)
}
