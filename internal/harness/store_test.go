package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cpu"
)

// storeLease compresses the lease clock for tests that exercise staleness.
// Returns a restore func; tests in this package run sequentially, so the
// package vars are safe to swap.
func storeLease(t *testing.T, ttl, beat, poll time.Duration) {
	t.Helper()
	oldTTL, oldBeat, oldPoll := leaseTTL, leaseHeartbeat, leasePoll
	oldWarn := staleLeaseWarned.Load()
	leaseTTL, leaseHeartbeat, leasePoll = ttl, beat, poll
	staleLeaseWarned.Store(false)
	t.Cleanup(func() {
		leaseTTL, leaseHeartbeat, leasePoll = oldTTL, oldBeat, oldPoll
		staleLeaseWarned.Store(oldWarn)
	})
}

// TestConcurrentStoreWritersSingleBuild is the fleet guarantee under -race:
// N independent Checkpointers (standing in for N processes — they share no
// in-memory state, only the directory) racing on one warm key perform
// exactly one warm simulation between them. Everyone else waits on the
// builder's lease and loads its published entry.
func TestConcurrentStoreWritersSingleBuild(t *testing.T) {
	dir := t.TempDir()
	w := pick(t, "vpr")[0]
	cfg := cpu.Config4Wide()
	const warm = 22_500
	const n = 4

	cps := make([]*Checkpointer, n)
	cks := make([]*cpu.Checkpoint, n)
	srcs := make([]WarmSource, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cps[i] = NewCheckpointer(dir, WarmDetailed)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ck, src, err := cps[i].Warm(w, cfg, true, warm)
			if err != nil {
				t.Errorf("writer %d: %v", i, err)
				return
			}
			cks[i], srcs[i] = ck, src
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var misses, stores, waits, hits, takeovers uint64
	sims := 0
	for i, cp := range cps {
		st := cp.Stats()
		misses += st.WarmMisses
		stores += st.DiskStores
		waits += st.SingleflightWaits
		hits += st.SingleflightHits
		takeovers += st.LeaseTakeovers
		if srcs[i] == WarmFromSim {
			sims++
		}
	}
	if misses != 1 || sims != 1 {
		t.Errorf("fleet built %d warm regions (%d sim sources), want exactly 1", misses, sims)
	}
	if stores != 1 {
		t.Errorf("fleet stored %d entries, want 1", stores)
	}
	if takeovers != 0 {
		t.Errorf("lease takeovers = %d, want 0 (all holders were alive)", takeovers)
	}
	// Every waiter must have been resolved by the builder's publish, never
	// by a duplicate local build. (A writer arriving after the publish hits
	// disk without waiting at all; that's fine.)
	if hits != waits {
		t.Errorf("singleflight waits/hits = %d/%d, want equal", waits, hits)
	}
	// All four observed byte-identical machine state.
	ref := cks[0].EncodeBinary()
	for i := 1; i < n; i++ {
		if !bytes.Equal(ref, cks[i].EncodeBinary()) {
			t.Errorf("writer %d restored a different checkpoint than writer 0", i)
		}
	}
}

// lockPathFor computes the lease path the store uses for one warm key.
func lockPathFor(cp *Checkpointer, w string, withSlices bool, warm uint64, cfg cpu.Config) (entry, lock string) {
	key := WarmKeyFor(w, withSlices, warm, cp.Mode, cfg)
	entry = ckptPath(cp.Dir, key)
	return entry, entry + ".lock"
}

// TestStoreStaleLeaseTakeover: a lock file whose holder died (no heartbeat
// past the TTL) is stolen, counted, warned about once, and the thief
// rebuilds the entry.
func TestStoreStaleLeaseTakeover(t *testing.T) {
	storeLease(t, 150*time.Millisecond, 25*time.Millisecond, 5*time.Millisecond)
	dir := t.TempDir()
	w := pick(t, "vpr")[0]
	cfg := cpu.Config4Wide()
	const warm = 22_500

	cp := NewCheckpointer(dir, WarmDetailed)
	entry, lock := lockPathFor(cp, w.Name, false, warm, cfg)
	// A dead holder: a lock file that has not heartbeat for a minute.
	if err := os.WriteFile(lock, []byte("pid=0 start=dead\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}

	if _, src, err := cp.Warm(w, cfg, false, warm); err != nil {
		t.Fatalf("Warm: %v", err)
	} else if src != WarmFromSim {
		t.Errorf("warm source = %s, want sim (thief rebuilds)", src)
	}

	st := cp.Stats()
	if st.LeaseTakeovers != 1 {
		t.Errorf("lease takeovers = %d, want 1", st.LeaseTakeovers)
	}
	if st.SingleflightWaits != 1 || st.SingleflightHits != 0 {
		t.Errorf("waits/hits = %d/%d, want 1/0 (waited, then rebuilt)", st.SingleflightWaits, st.SingleflightHits)
	}
	if st.WarmMisses != 1 || st.DiskStores != 1 {
		t.Errorf("misses/stores = %d/%d, want 1/1", st.WarmMisses, st.DiskStores)
	}
	if !staleLeaseWarned.Load() {
		t.Error("stale-lease takeover did not set the one-time warning")
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Errorf("stale lock still present after takeover: %v", err)
	}
	if _, err := os.Stat(entry); err != nil {
		t.Errorf("entry not published after takeover: %v", err)
	}

	// The rebuilt entry serves a fresh reader with zero simulations.
	second := NewCheckpointer(dir, WarmDetailed)
	if _, src, err := second.Warm(w, cfg, false, warm); err != nil || src != WarmFromDisk {
		t.Errorf("post-takeover reader: src=%s err=%v, want disk hit", src, err)
	}
}

// TestStoreCorruptEntryStaleLeaseRecovery is the worst published state a
// crashed peer can leave behind: a corrupt entry (fails the CRC re-check
// every reader performs) plus a stale lease. The reader must reject the
// entry, take over the lease, rebuild, and republish a valid entry.
func TestStoreCorruptEntryStaleLeaseRecovery(t *testing.T) {
	storeLease(t, 150*time.Millisecond, 25*time.Millisecond, 5*time.Millisecond)
	dir := t.TempDir()
	w := pick(t, "vpr")[0]
	cfg := cpu.Config4Wide()
	const warm = 22_500

	cp := NewCheckpointer(dir, WarmDetailed)
	entry, lock := lockPathFor(cp, w.Name, false, warm, cfg)
	if err := os.WriteFile(entry, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lock, []byte("pid=0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	for _, p := range []string{entry, lock} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}

	if _, src, err := cp.Warm(w, cfg, false, warm); err != nil {
		t.Fatalf("Warm: %v", err)
	} else if src != WarmFromSim {
		t.Errorf("warm source = %s, want sim", src)
	}
	st := cp.Stats()
	if st.WarmMisses != 1 || st.LeaseTakeovers != 1 {
		t.Errorf("misses/takeovers = %d/%d, want 1/1", st.WarmMisses, st.LeaseTakeovers)
	}
	// The republished entry is valid: a fresh reader loads it.
	second := NewCheckpointer(dir, WarmDetailed)
	if _, src, err := second.Warm(w, cfg, false, warm); err != nil || src != WarmFromDisk {
		t.Errorf("recovered entry unreadable: src=%s err=%v", src, err)
	}
	if second.Stats().WarmMisses != 0 {
		t.Error("recovered entry forced a rebuild")
	}
}

// TestStoreEvictionLRU: with MaxBytes set, stores evict least-recently-
// USED entries — a disk load touches its entry, so eviction order tracks
// use, not creation, and the just-written entry is exempt.
func TestStoreEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	w := pick(t, "vpr")[0]
	cfg := cpu.Config4Wide()

	// Three distinct keys with near-identical entry sizes: same workload
	// and config, different warm lengths.
	warms := []uint64{22_500, 23_000, 23_500}
	builder := NewCheckpointer(dir, WarmDetailed)
	if _, _, err := builder.Warm(w, cfg, false, warms[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := builder.Warm(w, cfg, false, warms[1]); err != nil {
		t.Fatal(err)
	}
	paths := make([]string, 3)
	var size [3]int64
	for i, warm := range warms {
		paths[i], _ = lockPathFor(builder, w.Name, false, warm, cfg)
		if i < 2 {
			info, err := os.Stat(paths[i])
			if err != nil {
				t.Fatal(err)
			}
			size[i] = info.Size()
		}
	}
	// Age them: entry 0 is oldest, entry 1 newer.
	now := time.Now()
	os.Chtimes(paths[0], now.Add(-2*time.Hour), now.Add(-2*time.Hour))
	os.Chtimes(paths[1], now.Add(-time.Hour), now.Add(-time.Hour))

	// Budget ≈ 2.5 entries: storing the third forces exactly one eviction.
	cp := NewCheckpointer(dir, WarmDetailed)
	cp.MaxBytes = size[0] + size[1] + size[1]/2

	// USE entry 0 (the oldest by mtime): the load touches it, so entry 1
	// becomes the LRU victim even though it was written later.
	if _, src, err := cp.Warm(w, cfg, false, warms[0]); err != nil || src != WarmFromDisk {
		t.Fatalf("load of entry 0: src=%s err=%v", src, err)
	}
	if _, _, err := cp.Warm(w, cfg, false, warms[2]); err != nil {
		t.Fatal(err)
	}

	st := cp.Stats()
	if st.Evictions != 1 || st.EvictedBytes != uint64(size[1]) {
		t.Errorf("evictions = %d (%d bytes), want 1 (%d bytes)", st.Evictions, st.EvictedBytes, size[1])
	}
	if _, err := os.Stat(paths[1]); !os.IsNotExist(err) {
		t.Errorf("LRU victim (entry 1) still present: %v", err)
	}
	for _, i := range []int{0, 2} {
		if _, err := os.Stat(paths[i]); err != nil {
			t.Errorf("entry %d should have survived: %v", i, err)
		}
	}

	// A bound too small for even one entry never evicts the entry its own
	// writer just published.
	tiny := NewCheckpointer(t.TempDir(), WarmDetailed)
	tiny.MaxBytes = 1
	if _, _, err := tiny.Warm(w, cfg, false, warms[0]); err != nil {
		t.Fatal(err)
	}
	keep, _ := lockPathFor(tiny, w.Name, false, warms[0], cfg)
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("writer's own entry evicted by its own store: %v", err)
	}
	if st := tiny.Stats(); st.Evictions != 0 {
		t.Errorf("tiny-bound evictions = %d, want 0", st.Evictions)
	}

	// Leftover lock files never count toward the budget and are never
	// eviction victims (only *.ckpt entries are).
	if got, _ := filepath.Glob(filepath.Join(dir, "*.lock")); len(got) != 0 {
		t.Errorf("lock files leaked: %v", got)
	}
}
