package harness

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"
)

// finite reports whether v is a usable number.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// fnum renders v with format, or "n/a" for NaN/±Inf: a region that
// retires nothing produces zero cycles and infinite/undefined ratios, and
// those must not render as garbage in the tables.
func fnum(format string, v float64) string {
	if !finite(v) {
		return "n/a"
	}
	return fmt.Sprintf(format, v)
}

func table(write func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	write(w)
	w.Flush()
	return sb.String()
}

// bar renders a crude horizontal bar for figure-style output. NaN/±Inf
// values (degenerate regions) and non-positive scales render as empty.
func bar(v, max float64, width int) string {
	if !finite(v) || !finite(max) || max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	return "Table 2. Coverage of performance degrading events by problem instructions.\n" +
		table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "program\t#SI\tmem%\tmis%\t#SI\tbr%\tmis%")
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%d\t%.0f%%\t%.0f%%\t%d\t%.0f%%\t%.0f%%\n",
					r.Program, r.MemSI, r.MemPct, r.MisPct, r.BrSI, r.BrPct, r.BrMis)
			}
		})
}

// FormatFigure1 renders Figure 1 as grouped IPC bars.
func FormatFigure1(rows []Figure1Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 1. IPC: baseline, problem-instructions-perfect, all-perfect (4- and 8-wide).\n")
	max := 0.0
	for _, r := range rows {
		for i := 0; i < 2; i++ {
			if finite(r.AllPerf[i]) && r.AllPerf[i] > max {
				max = r.AllPerf[i]
			}
		}
	}
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "program\twidth\tbaseline\tprob.perfect\tall perfect\t")
		for _, r := range rows {
			for i, width := range []string{"4", "8"} {
				fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
					r.Program, width, fnum("%.2f", r.Base[i]),
					fnum("%.2f", r.ProbPerf[i]), fnum("%.2f", r.AllPerf[i]),
					bar(r.AllPerf[i], max, 30))
			}
		}
	}))
	return sb.String()
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	return "Table 3. Characterization of slices (loop portion in parentheses).\n" +
		table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "prog\tslice\tstatic size\tlive-ins\tpref\tpred\tkills\tmax iter")
			for _, r := range rows {
				static := fmt.Sprintf("%d", r.Static)
				if r.Loop > 0 {
					static = fmt.Sprintf("%d (%d)", r.Static, r.Loop)
				}
				maxIter := "—"
				if r.MaxIter > 0 {
					maxIter = fmt.Sprintf("%d", r.MaxIter)
				}
				fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
					r.Program, r.Slice, static, r.LiveIns, r.Pref, r.Pred, r.Kills, maxIter)
			}
		})
}

// FormatFigure11 renders Figure 11 as speedup bars.
func FormatFigure11(rows []Figure11Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 11. Speedup of slice-assisted execution and the constrained limit study (4-wide).\n")
	max := 0.0
	for _, r := range rows {
		if finite(r.LimitSpeedup) && r.LimitSpeedup > max {
			max = r.LimitSpeedup
		}
		if finite(r.SliceSpeedup) && r.SliceSpeedup > max {
			max = r.SliceSpeedup
		}
	}
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "program\tbase IPC\tslice%\tlimit%\t")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\tslice %s\t%s\n", r.Program, fnum("%.2f", r.BaseIPC),
				fnum("%+6.1f%%", r.SliceSpeedup), bar(r.SliceSpeedup, max, 30))
			fmt.Fprintf(w, "\t\tlimit %s\t%s\n",
				fnum("%+6.1f%%", r.LimitSpeedup), bar(r.LimitSpeedup, max, 30))
		}
	}))
	return sb.String()
}

// FormatTable4 renders Table 4 with programs as columns, like the paper.
func FormatTable4(cols []Table4Col) string {
	var sb strings.Builder
	sb.WriteString("Table 4. Program execution with and without speculative slices.\n")
	rows := []struct {
		label string
		get   func(c Table4Col) string
	}{
		{"Program insts fetched (base)", func(c Table4Col) string { return fmt.Sprintf("%d", c.BaseFetched) }},
		{"Branch mispredictions (base)", func(c Table4Col) string { return fmt.Sprintf("%d", c.BaseMispredicts) }},
		{"Load misses (base)", func(c Table4Col) string { return fmt.Sprintf("%d", c.BaseLoadMisses) }},
		{"Program insts fetched (+slices)", func(c Table4Col) string { return fmt.Sprintf("%d", c.SliceProgFetched) }},
		{"Slice insts fetched", func(c Table4Col) string { return fmt.Sprintf("%d", c.SliceInstsFetched) }},
		{"Slice insts retired", func(c Table4Col) string { return fmt.Sprintf("%d", c.SliceInstsRetired) }},
		{"Fork points", func(c Table4Col) string { return fmt.Sprintf("%d", c.Forks) }},
		{"Fork points squashed", func(c Table4Col) string { return fmt.Sprintf("%d", c.ForksSquashed) }},
		{"Fork points ignored", func(c Table4Col) string { return fmt.Sprintf("%d", c.ForksIgnored) }},
		{"Problem branches covered", func(c Table4Col) string { return fmt.Sprintf("%d", c.BranchesCovered) }},
		{"Predictions generated", func(c Table4Col) string { return fmt.Sprintf("%d", c.PredsGenerated) }},
		{"Predictions used", func(c Table4Col) string { return fmt.Sprintf("%d", c.PredsUsed) }},
		{"Mispredictions covered", func(c Table4Col) string { return fmt.Sprintf("%d", c.MispCovered) }},
		{"Mispredictions removed", func(c Table4Col) string {
			return fmt.Sprintf("%d (%s)", c.MispRemoved, fnum("%.0f%%", c.MispRemovedPct))
		}},
		{"Incorrect predictions", func(c Table4Col) string { return fmt.Sprintf("%d", c.IncorrectPreds) }},
		{"Late predictions", func(c Table4Col) string { return fnum("%.0f%%", c.LatePct) }},
		{"Early resolutions", func(c Table4Col) string { return fmt.Sprintf("%d", c.EarlyResolutions) }},
		{"Problem loads covered", func(c Table4Col) string { return fmt.Sprintf("%d", c.LoadsCovered) }},
		{"Prefetches performed", func(c Table4Col) string { return fmt.Sprintf("%d", c.Prefetches) }},
		{"Cache misses covered", func(c Table4Col) string { return fmt.Sprintf("%d", c.MissesCovered) }},
		{"Net miss reduction", func(c Table4Col) string {
			return fmt.Sprintf("%d (%s)", c.MissReduction, fnum("%.0f%%", c.MissReductionPct))
		}},
		{"Speedup", func(c Table4Col) string { return fnum("%.1f%%", c.SpeedupPct) }},
		{"Fraction of speedup from loads", func(c Table4Col) string { return "~" + fnum("%.0f%%", c.FracFromLoads*100) }},
	}
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprint(w, "metric")
		for _, c := range cols {
			fmt.Fprintf(w, "\t%s", c.Program)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprint(w, r.label)
			for _, c := range cols {
				fmt.Fprintf(w, "\t%s", r.get(c))
			}
			fmt.Fprintln(w)
		}
	}))
	return sb.String()
}

// FormatFigurePred renders the predictor-stack comparison: per workload,
// problem-branch mispredictions (per 1000 problem-branch executions, with
// whole-run IPC) under each selectable predictor and under slices.
func FormatFigurePred(rows []FigurePredRow) string {
	var sb strings.Builder
	sb.WriteString("Figure P. Problem-branch mispredictions under the prediction stack (4-wide).\n")
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "program\t#SI\texecs\tyags\tslices\tvalue\tcorrmine\tperfect")
		leg := func(l FigurePredLeg) string {
			return fmt.Sprintf("%s (%s)", fnum("%.1f", l.ProbMispPerK), fnum("%.2f", l.IPC))
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
				r.Program, r.ProbBranches, r.ProbExecs,
				leg(r.Base), leg(r.Slices), leg(r.Value), leg(r.CorrMine), leg(r.Perfect))
		}
		fmt.Fprintln(w, "(cells: problem-branch mispredicts per 1000 executions, whole-run IPC in parentheses)")
	}))
	return sb.String()
}

// FormatTable1 renders the machine parameters (Table 1) of a config.
func FormatTable1() string {
	return `Table 1. Simulated machine parameters.
Front end   64KB I-cache; 64Kb YAGS direction predictor; 32Kb cascading
            indirect predictor; 64-entry return address stack; perfect BTB
            for direct branches; fetch past taken branches.
Core        4-wide: 128-entry window, 2 load/store ports, 1 complex unit,
            14-stage misprediction penalty. 8-wide: 256-entry window,
            4 load/store ports.
Caches      L1D 64KB 2-way 64B lines, 3-cycle; L2 2MB 4-way 128B lines,
            +6-cycle; memory +100-cycle minimum; write-back write-allocate;
            retired-store write buffer.
Prefetch    64-entry unified prefetch/victim buffer probed in parallel with
            the L1; stream prefetcher with unit-stride detection (±) and
            sequential next-block prefetch when bandwidth is available.
Slices      4 thread contexts (1 main + 3 helpers); ICOUNT fetch biased to
            the main thread; slice/PGI tables at fetch; 64-branch
            correlator with 16 predictions per branch.
`
}

// FormatFigureMP renders the multi-programmed contention experiment: per
// co-schedule, each program's solo and co-scheduled IPCs, the slice
// speedup under contention, and the cache-interference delta.
func FormatFigureMP(rows []FigureMPRow) string {
	var sb strings.Builder
	sb.WriteString("Figure MP. Slice-assisted execution under multi-programmed contention (4-wide).\n")
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "schedule\tprogram\tsolo IPC\tbase IPC\tslice IPC\tslice%\tmiss% solo→base\tpreds used\tacc%\tprefetches")
		for _, r := range rows {
			for i, p := range r.Programs {
				sched := ""
				if i == 0 {
					sched = r.Schedule
				}
				fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s → %s\t%d\t%s\t%d\n",
					sched, p.Program,
					fnum("%.2f", p.SoloIPC), fnum("%.2f", p.BaseIPC), fnum("%.2f", p.SliceIPC),
					fnum("%+.1f%%", p.SliceSpeedupPct),
					fnum("%.1f", p.SoloMissPct), fnum("%.1f", p.BaseMissPct),
					p.PredsUsed, fnum("%.0f", p.PredAccuracyPct), p.Prefetches)
			}
			fmt.Fprintf(w, "\tthroughput\t\t%s\t%s\t%s\t\t\t\t\n",
				fnum("%.2f", r.BaseThroughput), fnum("%.2f", r.SliceThroughput),
				fnum("%+.1f%%", r.ThroughputGainPct))
		}
	}))
	return sb.String()
}
