package harness

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cpu"
)

var update = flag.Bool("update", false, "regenerate golden files")

// TestEngineMemoizesAcrossDrivers locks the tentpole invariant: every
// unique (workload, config, mode, region) simulation executes exactly
// once, even across different drivers. Figure 11 and Table 4 share their
// base and slice runs, so Table 4 on the same engine only adds the
// predictions-off run.
func TestEngineMemoizesAcrossDrivers(t *testing.T) {
	e := NewEngine(small, 4)
	ws := pick(t, "vpr")

	e.Figure11(ws)
	st := e.Stats()
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("Figure11 alone: misses=%d hits=%d, want 3/0", st.Misses, st.Hits)
	}

	e.Table4(ws)
	st = e.Stats()
	if st.Misses != 4 {
		t.Errorf("Figure11+Table4: %d simulations, want 4 (base and slice runs must be shared)", st.Misses)
	}
	if st.Hits != 2 {
		t.Errorf("Figure11+Table4: %d memo hits, want 2", st.Hits)
	}

	// Re-running a driver must simulate nothing.
	e.Figure11(ws)
	if got := e.Stats().Misses; got != 4 {
		t.Errorf("repeat Figure11 simulated %d new runs", got-4)
	}

	if st := e.Stats(); st.SimInsts == 0 || st.SimWall == 0 {
		t.Error("observability counters not populated")
	}
}

// TestFigure1ProfilesOncePerWidth is the regression test for the serial
// driver's duplicated profiling baseline: the profile input and the
// baseline bar are the same simulation and must run exactly once per
// (workload, width). 6 unique runs per workload: 2 baselines, 2
// problem-perfect, 2 all-perfect.
func TestFigure1ProfilesOncePerWidth(t *testing.T) {
	e := NewEngine(small, 4)
	ws := pick(t, "vpr")

	e.Figure1(ws)
	st := e.Stats()
	if st.Misses != 6 {
		t.Errorf("Figure1 ran %d simulations per workload, want 6", st.Misses)
	}
	// The profiling baseline is recalled from the memo, not re-run.
	if st.Hits != 2 {
		t.Errorf("Figure1 memo hits = %d, want 2 (one profile recall per width)", st.Hits)
	}

	// Table 2 afterwards reuses the 4-wide baseline and its profile.
	e.Table2(ws)
	if got := e.Stats().Misses; got != 6 {
		t.Errorf("Table2 after Figure1 simulated %d extra runs, want 0", got-6)
	}
}

// TestEngineDeterministicAcrossJobs runs the same driver serially and
// with a parallel pool and requires identical rows — scheduling must not
// leak into results.
func TestEngineDeterministicAcrossJobs(t *testing.T) {
	ws := pick(t, "vpr")
	serial := NewEngine(small, 1).Table2(ws)
	parallel := NewEngine(small, 4).Table2(ws)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs: serial %+v parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// TestEngineProgressEvents checks the run-level observability wiring:
// every request emits exactly one event, misses carry wall time and
// instruction counts, hits are flagged memoized.
func TestEngineProgressEvents(t *testing.T) {
	e := NewEngine(small, 2)
	var mu sync.Mutex
	var events []Event
	e.Progress = func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	ws := pick(t, "vpr")
	e.Figure11(ws)
	e.Figure11(ws)

	var hits, misses int
	for _, ev := range events {
		if ev.Memoized {
			hits++
			continue
		}
		misses++
		if ev.Insts == 0 || ev.Wall <= 0 {
			t.Errorf("miss event lacks wall/insts: %+v", ev)
		}
		if ev.Spec.Workload != "vpr" {
			t.Errorf("event for wrong workload %q", ev.Spec.Workload)
		}
	}
	if misses != 3 || hits != 3 {
		t.Errorf("events: %d misses, %d hits, want 3/3", misses, hits)
	}
}

func TestEngineUnknownWorkload(t *testing.T) {
	e := NewEngine(small, 1)
	if _, err := e.Run(RunSpec{Workload: "nope", Cfg: cpu.Config4Wide(), Warm: 1, Run: 1}); err == nil {
		t.Fatal("want error for unknown workload")
	}
	// A second request for the same bad spec must not hang on the memo
	// entry the failed run left behind.
	if _, err := e.Run(RunSpec{Workload: "nope", Cfg: cpu.Config4Wide(), Warm: 1, Run: 1}); err != nil {
		t.Logf("second request errored as expected: %v", err)
	}
}

// TestRunSpecKey locks key hygiene: mode and region changes must change
// the key; perfect-set insertion order must not.
func TestRunSpecKey(t *testing.T) {
	base := RunSpec{Workload: "vpr", Cfg: cpu.Config4Wide(), Warm: 100, Run: 200}
	variants := []RunSpec{
		{Workload: "gzip", Cfg: cpu.Config4Wide(), Warm: 100, Run: 200},
		{Workload: "vpr", Cfg: cpu.Config8Wide(), Warm: 100, Run: 200},
		{Workload: "vpr", Cfg: cpu.Config4Wide(), WithSlices: true, Warm: 100, Run: 200},
		{Workload: "vpr", Cfg: cpu.Config4Wide(), Warm: 101, Run: 200},
		{Workload: "vpr", Cfg: cpu.Config4Wide(), Warm: 100, Run: 201},
	}
	seen := map[string]bool{base.Key(): true}
	for _, v := range variants {
		if seen[v.Key()] {
			t.Errorf("spec %+v collides with an earlier key", v)
		}
		seen[v.Key()] = true
	}
	if base.Key() != base.Key() {
		t.Error("key not stable")
	}
}

// --- golden output ---

// The golden files under testdata were generated by the pre-engine serial
// drivers (one runOnce per table cell, in row order). The engine rewrite
// must reproduce them byte for byte: memoization and parallel scheduling
// may change only wall time, never output. Regenerate with -update after
// an intentional simulator change.
func TestGoldenOutputIdenticalToSerialPath(t *testing.T) {
	ws := pick(t, "vpr", "gzip", "mcf")
	e := NewEngine(Params{Scale: 0.15}, 4)
	got := map[string]string{
		"table2.golden":  FormatTable2(e.Table2(ws)),
		"figure1.golden": FormatFigure1(e.Figure1(ws)),
	}
	for name, text := range got {
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run with -update): %v", err)
		}
		if string(want) != text {
			t.Errorf("%s: engine output diverges from the serial path\n--- want ---\n%s\n--- got ---\n%s",
				name, want, text)
		}
	}
}

// --- NaN/Inf rendering regressions ---

func TestBarRejectsNonFinite(t *testing.T) {
	cases := []struct{ v, max float64 }{
		{math.NaN(), 10},
		{math.Inf(1), 10},
		{math.Inf(-1), 10},
		{1, math.NaN()},
		{1, math.Inf(1)},
		{1, 0},
		{1, -3},
	}
	for _, c := range cases {
		if got := bar(c.v, c.max, 30); got != "" {
			t.Errorf("bar(%v, %v) = %q, want empty", c.v, c.max, got)
		}
	}
	if got := bar(5, 10, 30); got != strings.Repeat("#", 15) {
		t.Errorf("bar(5, 10, 30) = %q", got)
	}
}

func TestFormattersGuardNonFiniteIPC(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	f1 := FormatFigure1([]Figure1Row{{
		Program: "dead", Base: [2]float64{nan, 0}, ProbPerf: [2]float64{inf, 0}, AllPerf: [2]float64{nan, inf},
	}})
	f11 := FormatFigure11([]Figure11Row{{
		Program: "dead", BaseIPC: nan, SliceSpeedup: inf, LimitSpeedup: math.Inf(-1),
	}})
	t4 := FormatTable4([]Table4Col{{
		Program: "dead", MispRemovedPct: nan, LatePct: inf, MissReductionPct: nan,
		SpeedupPct: inf, FracFromLoads: nan,
	}})
	for name, text := range map[string]string{"figure1": f1, "figure11": f11, "table4": t4} {
		for _, garbage := range []string{"NaN", "Inf", "+Inf", "-Inf"} {
			if strings.Contains(text, garbage) {
				t.Errorf("%s renders %s:\n%s", name, garbage, text)
			}
		}
		if !strings.Contains(text, "n/a") {
			t.Errorf("%s: expected n/a placeholders:\n%s", name, text)
		}
	}
}

// TestSpeedupPctDegenerate locks the zero-cycle guards.
func TestSpeedupPctDegenerate(t *testing.T) {
	if got := speedupPct(100, 0); got != 0 {
		t.Errorf("speedupPct(100, 0) = %v", got)
	}
	if got := speedupPct(0, 100); got != 0 {
		t.Errorf("speedupPct(0, 100) = %v", got)
	}
	if got := speedupPct(150, 100); math.Abs(got-50) > 1e-9 {
		t.Errorf("speedupPct(150, 100) = %v, want 50", got)
	}
}
