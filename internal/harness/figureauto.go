package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/asm"
	"repro/internal/autoslice"
	"repro/internal/cpu"
	"repro/internal/oracle"
	"repro/internal/slicehw"
	"repro/internal/workloads"
)

// This file closes the loop on automatic slice construction: profile →
// cluster → fork-select → build+optimize (internal/autoslice) →
// oracle-validate → accept/reject on measured accuracy and net cycles —
// and reports the result next to the hand-built slices as the "figureauto"
// experiment. Every candidate measurement is an ordinary RunSpec through
// the memoized engine, pointed at a registered SliceSet and run with the
// differential oracle forced on, so a candidate is only ever accepted from
// a divergence-free simulation.

// AutoParams bounds the automatic pipeline.
type AutoParams struct {
	// TraceLen is the functional profiling-trace length the slices are
	// constructed from. Fixed (not scaled with Params.Scale) so candidate
	// construction is deterministic across measurement scales.
	TraceLen int
	// MinLead/MaxLead bound the fork-point search distance (§3.2's sweet
	// spot), in dynamic instructions.
	MinLead, MaxLead int
	// ClusterGap joins problem PCs whose dynamic instances fall within
	// this many trace instructions of each other into one slice group.
	ClusterGap int
	// MaxClusters caps how many clusters get candidates (simulation
	// budget); MaxForkTries caps how many buildable candidates per
	// cluster are measured.
	MaxClusters, MaxForkTries int
	// MaxSlices caps the accepted slices combined into the final set.
	MaxSlices int
	// MinAccuracy is the override-accuracy acceptance floor for
	// prediction-generating candidates.
	MinAccuracy float64
	// MaxSliceLen / MaxLiveIns forward to autoslice.Options.
	MaxSliceLen, MaxLiveIns int
}

// DefaultAutoParams mirrors the hand-construction bounds (§3.2).
func DefaultAutoParams() AutoParams {
	return AutoParams{
		TraceLen:     80_000,
		MinLead:      25,
		MaxLead:      120,
		ClusterGap:   50,
		MaxClusters:  4,
		MaxForkTries: 3,
		MaxSlices:    3,
		MinAccuracy:  0.85,
		MaxSliceLen:  48,
		MaxLiveIns:   4,
	}
}

// Auto slice programs are laid out per cluster index, clear of the main
// program, globals, and the hand slices.
const (
	autoSliceBase   = 0x180000
	autoSliceStride = 0x1000
)

// AutoCandidate reports one constructed candidate's static shape and its
// validated measurement.
type AutoCandidate struct {
	Name      string `json:"name"`
	ForkPC    uint64 `json:"forkPC"`
	Static    int    `json:"static"`
	Loop      int    `json:"loop"`
	LiveIns   int    `json:"liveIns"`
	PGIs      int    `json:"pgis"`
	PrefLoads int    `json:"prefLoads"`

	Accepted bool `json:"accepted"`
	// Reason is "ok" for accepted candidates, else why it was rejected
	// ("oracle divergence", "no coverage", "accuracy below floor",
	// "slower than baseline", or an error).
	Reason      string  `json:"reason"`
	AccuracyPct float64 `json:"accuracyPct"`
	Overrides   uint64  `json:"overrides"`
	Prefetches  uint64  `json:"prefetches"`
	IPC         float64 `json:"ipc"`
	SpeedupPct  float64 `json:"speedupPct"`

	cycles uint64
}

// FigureAutoRow is one workload's auto-vs-hand comparison (4-wide).
type FigureAutoRow struct {
	Program string `json:"program"`
	// Note records why the pipeline stopped early (no problem PCs, trace
	// failure); empty when candidates were constructed.
	Note       string          `json:"note,omitempty"`
	ProblemPCs int             `json:"problemPCs"`
	SkippedPCs int             `json:"skippedPCs"`
	Clusters   int             `json:"clusters"`
	Candidates []AutoCandidate `json:"candidates"`

	BaseIPC float64 `json:"baseIPC"`

	// The accepted configuration (the combined winner set, or the best
	// single winner when combining loses or only one survives). All zeros
	// when nothing was accepted.
	AutoSlices      int     `json:"autoSlices"`
	AutoStatic      int     `json:"autoStatic"`
	AutoLiveIns     int     `json:"autoLiveIns"`
	AutoAccuracyPct float64 `json:"autoAccuracyPct"`
	AutoOverrides   uint64  `json:"autoOverrides"`
	AutoPrefetches  uint64  `json:"autoPrefetches"`
	AutoIPC         float64 `json:"autoIPC"`
	AutoSpeedupPct  float64 `json:"autoSpeedupPct"`
	// OracleValidated is true iff the reported auto configuration ran
	// divergence-free under the differential oracle (acceptance requires
	// it, so this is true exactly when AutoSlices > 0).
	OracleValidated bool `json:"oracleValidated"`

	// The hand-built slices, measured on the same engine (shared with
	// Figure 11 / Table 4).
	HandSlices      int     `json:"handSlices"`
	HandStatic      int     `json:"handStatic"`
	HandLiveIns     int     `json:"handLiveIns"`
	HandAccuracyPct float64 `json:"handAccuracyPct"`
	HandIPC         float64 `json:"handIPC"`
	HandSpeedupPct  float64 `json:"handSpeedupPct"`
}

// AutoBuild pairs a workload's row with the constructed candidates'
// code, index-aligned with Row.Candidates (for printing/disassembly).
type AutoBuild struct {
	Row    FigureAutoRow
	Builts []*autoslice.Built
}

// FigureAuto runs the closed-loop pipeline for the given workloads.
func FigureAuto(ws []*workloads.Workload, p Params) []FigureAutoRow {
	return NewEngine(p, 0).FigureAuto(ws)
}

// FigureAuto runs the closed loop with default bounds and returns the
// auto-vs-hand rows.
func (e *Engine) FigureAuto(ws []*workloads.Workload) []FigureAutoRow {
	builds := e.FigureAutoDetail(ws, DefaultAutoParams())
	rows := make([]FigureAutoRow, len(builds))
	for i := range builds {
		rows[i] = builds[i].Row
	}
	return rows
}

// cloneSlice deep-copies slice metadata. Every slicehw.Table must own its
// Slice values: NewTable assigns Index, and two tables sharing one struct
// would race on it.
func cloneSlice(s *slicehw.Slice) *slicehw.Slice {
	c := *s
	c.PGIs = append([]slicehw.PGI(nil), s.PGIs...)
	c.LiveIns = append(s.LiveIns[:0:0], s.LiveIns...)
	c.CoveredLoadPCs = append([]uint64(nil), s.CoveredLoadPCs...)
	return &c
}

// autoPrep is one workload's constructed candidates, before measurement.
// The per-candidate slices (cluster, builtOf, specs, res) stay
// index-aligned with row.Candidates as repair variants are appended.
type autoPrep struct {
	row     FigureAutoRow
	builts  []*autoslice.Built
	cluster []int        // cluster index per candidate
	builtOf []int        // builts index per candidate (variants share)
	specs   []RunSpec    // per-candidate spec (variants differ in Cfg)
	res     []*RunResult // per-candidate validated result (nil on error)
}

// prepareAuto runs the construction half of the pipeline for one workload:
// profile → trace → cluster → fork-select → build, registering one slice
// set per surviving candidate. No simulation happens here beyond the
// memoized profiling baseline.
func (e *Engine) prepareAuto(w *workloads.Workload, p AutoParams) autoPrep {
	prep := autoPrep{row: FigureAutoRow{Program: w.Name}}
	row := &prep.row

	prob, err := e.profileFor(w, cpu.Config4Wide())
	if err != nil {
		panic(err)
	}
	pcs := prob.ProblemPCs()
	row.ProblemPCs = len(pcs)
	if len(pcs) == 0 {
		row.Note = "no problem instructions"
		return prep
	}

	tr, err := autoslice.CollectTrace(w.Image, w.NewMemory(), w.Entry, p.TraceLen)
	if err != nil {
		row.Note = "trace: " + err.Error()
		return prep
	}

	groups, skipped := autoslice.ClusterProblemPCs(tr, pcs, p.ClusterGap)
	row.SkippedPCs = len(skipped)
	row.Clusters = len(groups)
	if len(groups) == 0 {
		row.Note = "no problem instances in the trace"
		return prep
	}
	if len(groups) > p.MaxClusters {
		groups = groups[:p.MaxClusters]
	}

	mainProg := w.Image.Programs()[0]
	for ci, g := range groups {
		forks := autoslice.SelectForkPoint(tr, g, p.MinLead, p.MaxLead)
		kept := 0
		var keptLeads []float64
		for _, fc := range forks {
			if kept >= p.MaxForkTries {
				break
			}
			// Adjacent PCs in the ranking are the same fork position ±1
			// instruction; measuring them is triple-counting one
			// candidate. Spend the try budget on distinct leads instead.
			close := false
			for _, l := range keptLeads {
				if d := fc.MeanLead - l; d > -5 && d < 5 {
					close = true
					break
				}
			}
			if close {
				continue
			}
			built, err := autoslice.Build(tr, fc.PC, g, autoslice.Options{
				MaxSliceLen: p.MaxSliceLen,
				MaxLiveIns:  p.MaxLiveIns,
				SliceBase:   autoSliceBase + uint64(len(prep.builts))*autoSliceStride,
			})
			if err != nil {
				continue
			}
			built.Slice.Name = fmt.Sprintf("%s.auto%d", w.Name, len(prep.builts))
			image, err := asm.NewImage(mainProg, built.Program)
			if err != nil {
				continue // overlapping layout: unusable candidate
			}
			table, err := slicehw.NewTable([]*slicehw.Slice{cloneSlice(built.Slice)})
			if err != nil {
				continue
			}
			set := &SliceSet{
				Name:     "auto:" + w.Name + ":" + built.Fingerprint(),
				Workload: w.Name,
				Image:    image,
				Table:    table,
			}
			if err := e.RegisterSliceSet(set); err != nil {
				continue
			}
			spec := e.baseSpec(w, cpu.Config4Wide())
			spec.SliceSet = set.Name
			sl := built.Slice
			row.Candidates = append(row.Candidates, AutoCandidate{
				Name:      sl.Name,
				ForkPC:    sl.ForkPC,
				Static:    sl.StaticSize,
				Loop:      sl.LoopSize,
				LiveIns:   len(sl.LiveIns),
				PGIs:      len(sl.PGIs),
				PrefLoads: len(sl.CoveredLoadPCs),
			})
			prep.builts = append(prep.builts, built)
			prep.cluster = append(prep.cluster, ci)
			prep.builtOf = append(prep.builtOf, len(prep.builts)-1)
			prep.specs = append(prep.specs, spec)
			keptLeads = append(keptLeads, fc.MeanLead)
			kept++
		}
	}
	if len(prep.specs) == 0 && row.Note == "" {
		row.Note = "no buildable candidates"
	}
	return prep
}

// judgeCandidate fills a candidate's measured columns and decides
// acceptance. Only oracle-clean (err == nil), covering, accurate,
// net-positive candidates survive.
func judgeCandidate(c *AutoCandidate, base *RunResult, res *RunResult, err error, p AutoParams) {
	if err != nil {
		var de *oracle.DivergenceError
		if errors.As(err, &de) {
			c.Reason = "oracle divergence"
		} else {
			c.Reason = "error: " + err.Error()
		}
		return
	}
	s := res.Stats()
	bs := base.Stats()
	c.Overrides = s.PredsUsed + s.PredsLateUsed
	c.Prefetches = s.SlicePrefetches
	c.IPC = s.IPC()
	c.SpeedupPct = speedupPct(bs.Cycles, s.Cycles)
	c.cycles = s.Cycles
	resolved := s.PredsCorrect + s.PredsIncorrect
	if resolved > 0 {
		c.AccuracyPct = float64(s.PredsCorrect) / float64(resolved) * 100
	}
	switch {
	case c.Overrides == 0 && c.Prefetches == 0:
		c.Reason = "no coverage"
	case c.PGIs > 0 && resolved > 0 && c.AccuracyPct < p.MinAccuracy*100:
		c.Reason = "accuracy below floor"
	case s.Cycles >= bs.Cycles:
		c.Reason = "slower than baseline"
	default:
		c.Accepted = true
		c.Reason = "ok"
	}
}

// FigureAutoDetail runs the closed loop with explicit bounds and returns
// the rows plus the constructed slice programs. Phases: (1) baseline and
// hand-slice runs for every workload in one parallel batch (shared with
// Figure 11 / Table 4); (2) candidate construction per workload; (3) one
// parallel, oracle-validated batch over every candidate everywhere; (4)
// acceptance, with one repair round for near-misses — candidates below
// the accuracy floor re-measure with predictions suppressed (prefetch
// only), candidates slower than baseline re-measure with
// confidence-gated forks; (5) an oracle-validated run of each workload's
// combined winner set, falling back to the best single winner if
// combining loses.
func (e *Engine) FigureAutoDetail(ws []*workloads.Workload, p AutoParams) []AutoBuild {
	// Phase 1: baselines and hand-slice legs.
	baseSpecs := make([]RunSpec, 0, 2*len(ws))
	for _, w := range ws {
		baseSpecs = append(baseSpecs, e.baseSpec(w, cpu.Config4Wide()), e.sliceSpec(w, cpu.Config4Wide()))
	}
	baseRes := e.mustRunAll(baseSpecs)

	// Phase 2: construction (serial; purely functional and fast).
	preps := make([]autoPrep, len(ws))
	for i, w := range ws {
		preps[i] = e.prepareAuto(w, p)
	}

	// Phase 3: every candidate across every workload, one validated batch.
	var candSpecs []RunSpec
	for i := range preps {
		candSpecs = append(candSpecs, preps[i].specs...)
	}
	candRes, candErrs := e.runAllEach(candSpecs, true)

	// Phase 4a: judge, and build the repair batch. A candidate whose
	// predictions are wrong may still carry its weight as a prefetcher
	// (its address computation is exact even when the trace-derived
	// branch pattern is not); one whose forks cost more than they earn
	// may win once forks are gated on low confidence.
	type repairRef struct {
		wi, orig int
		kind     string
	}
	var repairSpecs []RunSpec
	var repairs []repairRef
	off := 0
	for i := range preps {
		prep := &preps[i]
		base := baseRes[2*i]
		for k := range prep.row.Candidates {
			judgeCandidate(&prep.row.Candidates[k], base, candRes[off+k], candErrs[off+k], p)
			prep.res = append(prep.res, candRes[off+k])
			c := &prep.row.Candidates[k]
			if c.Accepted {
				continue
			}
			spec := prep.specs[k]
			var kind string
			switch c.Reason {
			case "accuracy below floor":
				spec.Cfg.SlicePredictionsOff = true
				kind = "nopred"
			case "slower than baseline":
				spec.Cfg.ConfidenceGatedForks = true
				kind = "gated"
			default:
				continue
			}
			repairSpecs = append(repairSpecs, spec)
			repairs = append(repairs, repairRef{wi: i, orig: k, kind: kind})
		}
		off += len(prep.row.Candidates)
	}

	// Phase 4b: measure and judge the repair variants.
	repairRes, repairErrs := e.runAllEach(repairSpecs, true)
	for j, ref := range repairs {
		prep := &preps[ref.wi]
		c := prep.row.Candidates[ref.orig] // copy the static shape
		c.Name += "+" + ref.kind
		c.Accepted, c.Reason = false, ""
		c.AccuracyPct, c.Overrides, c.Prefetches, c.IPC, c.SpeedupPct, c.cycles = 0, 0, 0, 0, 0, 0
		if ref.kind == "nopred" {
			c.PGIs = 0 // PGI allocation suppressed: a pure prefetch slice
		}
		judgeCandidate(&c, baseRes[2*ref.wi], repairRes[j], repairErrs[j], p)
		prep.row.Candidates = append(prep.row.Candidates, c)
		prep.cluster = append(prep.cluster, prep.cluster[ref.orig])
		prep.builtOf = append(prep.builtOf, prep.builtOf[ref.orig])
		prep.specs = append(prep.specs, repairSpecs[j])
		prep.res = append(prep.res, repairRes[j])
	}

	// Phase 5 per workload: winners, combos, final choice.
	builds := make([]AutoBuild, len(ws))
	var comboSpecs []RunSpec
	comboOf := make([]int, 0, len(ws))    // workload index per combo spec
	comboSlices := make([][]int, len(ws)) // winner candidate indices per workload
	singleBest := make([]int, len(ws))    // best single winner index (-1 if none)
	for i, w := range ws {
		prep := &preps[i]
		row := &prep.row
		base := baseRes[2*i]
		hand := baseRes[2*i+1]
		row.BaseIPC = base.Stats().IPC()
		fillHand(row, w, base, hand)

		// Winners: the best accepted candidate of each cluster (two
		// candidates from one cluster cover the same problem instances,
		// so combining them would double-fork the same work).
		bestOf := map[int]int{}
		for k := range row.Candidates {
			if !row.Candidates[k].Accepted {
				continue
			}
			ci := prep.cluster[k]
			if cur, ok := bestOf[ci]; !ok || row.Candidates[k].cycles < row.Candidates[cur].cycles {
				bestOf[ci] = k
			}
		}
		var winners []int
		for _, k := range bestOf {
			winners = append(winners, k)
		}
		sort.Slice(winners, func(a, b int) bool {
			ca, cb := row.Candidates[winners[a]], row.Candidates[winners[b]]
			if ca.cycles != cb.cycles {
				return ca.cycles < cb.cycles
			}
			return winners[a] < winners[b]
		})
		if len(winners) > p.MaxSlices {
			winners = winners[:p.MaxSlices]
		}
		singleBest[i] = -1
		if len(winners) > 0 {
			singleBest[i] = winners[0]
		}
		comboSlices[i] = winners
		// Combining is only meaningful when every winner runs under the
		// same core configuration (repair variants change the config
		// globally, not per slice).
		if len(winners) >= 2 && sameCfg(prep, winners) {
			if spec, ok := e.registerCombo(w, prep, winners); ok {
				comboSpecs = append(comboSpecs, spec)
				comboOf = append(comboOf, i)
			}
		}
		builds[i] = AutoBuild{Builts: prep.builts}
	}
	comboRes, comboErrs := e.runAllEach(comboSpecs, true)

	comboAt := make(map[int]int) // workload index → combo result index
	for k, i := range comboOf {
		comboAt[i] = k
	}
	for i := range ws {
		prep := &preps[i]
		row := &prep.row
		base := baseRes[2*i]
		winners := comboSlices[i]
		best := singleBest[i]
		if best >= 0 {
			chosenRes := prep.res[best]
			chosen := []int{best}
			if k, ok := comboAt[i]; ok && comboErrs[k] == nil &&
				comboRes[k].Stats().Cycles < chosenRes.Stats().Cycles {
				chosenRes = comboRes[k]
				chosen = winners
			}
			fillAuto(row, prep, chosen, base, chosenRes)
		}
		builds[i].Row = *row
	}
	return builds
}

// sameCfg reports whether all the given candidates run under the same
// core configuration.
func sameCfg(prep *autoPrep, ks []int) bool {
	fp := prep.specs[ks[0]].Cfg.Fingerprint()
	for _, k := range ks[1:] {
		if prep.specs[k].Cfg.Fingerprint() != fp {
			return false
		}
	}
	return true
}

// registerCombo builds and registers the combined winner set for one
// workload. Returns its spec and whether registration succeeded.
func (e *Engine) registerCombo(w *workloads.Workload, prep *autoPrep, winners []int) (RunSpec, bool) {
	progs := []*asm.Program{w.Image.Programs()[0]}
	slices := make([]*slicehw.Slice, 0, len(winners))
	h := sha256.New()
	for _, k := range winners {
		b := prep.builts[prep.builtOf[k]]
		progs = append(progs, b.Program)
		slices = append(slices, cloneSlice(b.Slice))
		fmt.Fprintln(h, b.Fingerprint())
	}
	image, err := asm.NewImage(progs...)
	if err != nil {
		return RunSpec{}, false
	}
	table, err := slicehw.NewTable(slices)
	if err != nil {
		return RunSpec{}, false
	}
	set := &SliceSet{
		Name:     "auto:" + w.Name + ":combo:" + hex.EncodeToString(h.Sum(nil))[:12],
		Workload: w.Name,
		Image:    image,
		Table:    table,
	}
	if err := e.RegisterSliceSet(set); err != nil {
		return RunSpec{}, false
	}
	// The winners share one config (sameCfg); the combo inherits it.
	spec := prep.specs[winners[0]]
	spec.SliceSet = set.Name
	return spec, true
}

// fillHand fills the hand-built columns from the shared base/slice runs.
func fillHand(row *FigureAutoRow, w *workloads.Workload, base, hand *RunResult) {
	row.HandSlices = len(w.Slices)
	for _, sl := range w.Slices {
		row.HandStatic += sl.StaticSize
		row.HandLiveIns += len(sl.LiveIns)
	}
	hs := hand.Stats()
	row.HandIPC = hs.IPC()
	row.HandSpeedupPct = speedupPct(base.Stats().Cycles, hs.Cycles)
	if resolved := hs.PredsCorrect + hs.PredsIncorrect; resolved > 0 {
		row.HandAccuracyPct = float64(hs.PredsCorrect) / float64(resolved) * 100
	}
}

// fillAuto fills the accepted-configuration columns from the chosen
// (oracle-validated) run.
func fillAuto(row *FigureAutoRow, prep *autoPrep, chosen []int, base, res *RunResult) {
	row.AutoSlices = len(chosen)
	for _, k := range chosen {
		sl := prep.builts[prep.builtOf[k]].Slice
		row.AutoStatic += sl.StaticSize
		row.AutoLiveIns += len(sl.LiveIns)
	}
	s := res.Stats()
	row.AutoIPC = s.IPC()
	row.AutoSpeedupPct = speedupPct(base.Stats().Cycles, s.Cycles)
	row.AutoOverrides = s.PredsUsed + s.PredsLateUsed
	row.AutoPrefetches = s.SlicePrefetches
	if resolved := s.PredsCorrect + s.PredsIncorrect; resolved > 0 {
		row.AutoAccuracyPct = float64(s.PredsCorrect) / float64(resolved) * 100
	}
	row.OracleValidated = true
}

// FormatFigureAuto renders the auto-vs-hand comparison.
func FormatFigureAuto(rows []FigureAutoRow) string {
	var sb strings.Builder
	sb.WriteString("Figure A. Automatically constructed vs hand-built slices (4-wide).\n")
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "program\tcand\tacc\t| auto\tstatic\tlive\tacc%\tIPC\tspd%\toracle\t| hand\tstatic\tlive\tacc%\tIPC\tspd%")
		for _, r := range rows {
			accepted := 0
			for _, c := range r.Candidates {
				if c.Accepted {
					accepted++
				}
			}
			validated := "-"
			if r.OracleValidated {
				validated = "clean"
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t| %d\t%d\t%d\t%s\t%s\t%s\t%s\t| %d\t%d\t%d\t%s\t%s\t%s\n",
				r.Program, len(r.Candidates), accepted,
				r.AutoSlices, r.AutoStatic, r.AutoLiveIns,
				fnum("%.1f", r.AutoAccuracyPct), fnum("%.2f", r.AutoIPC), fnum("%.1f", r.AutoSpeedupPct),
				validated,
				r.HandSlices, r.HandStatic, r.HandLiveIns,
				fnum("%.1f", r.HandAccuracyPct), fnum("%.2f", r.HandIPC), fnum("%.1f", r.HandSpeedupPct))
		}
		fmt.Fprintln(w, "(auto columns report the accepted, oracle-validated configuration; speedups vs the no-slice baseline)")
	}))
	for _, r := range rows {
		for _, c := range r.Candidates {
			if !c.Accepted {
				fmt.Fprintf(&sb, "  %s: candidate %s @ %#x rejected: %s (acc %s%%, %d overrides, %d prefetches, spd %s%%)\n",
					r.Program, c.Name, c.ForkPC, c.Reason,
					fnum("%.1f", c.AccuracyPct), c.Overrides, c.Prefetches, fnum("%.1f", c.SpeedupPct))
			}
		}
		if r.Note != "" {
			fmt.Fprintf(&sb, "  %s: %s\n", r.Program, r.Note)
		}
	}
	return sb.String()
}
