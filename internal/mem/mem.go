// Package mem implements the sparse, paged, byte-addressable memory shared
// by every thread context in the simulated machine. Pages materialize on
// first write; reads of unmapped pages return zero and report the access as
// unmapped so the CPU can raise a fault where it matters (helper threads
// terminate on faults; wrong-path main-thread accesses ignore them).
//
// The null page (addresses below PageSize) never maps: dereferencing a null
// pointer always faults, which is how the paper's linked-list slices
// self-terminate.
package mem

import (
	"encoding/binary"
	"errors"
	"sort"
)

// PageSize is the size of one memory page in bytes.
const PageSize = 4096

const pageShift = 12 // log2(PageSize)

// Memory is a sparse 64-bit address space. The zero value is not usable;
// call New.
type Memory struct {
	pages map[uint64]*[PageSize]byte
	// bytesMapped counts materialized pages for footprint reporting.
	bytesMapped uint64
	// shared marks pages whose backing array is owned by a Snapshot and
	// must be copied before the first write (copy-on-write). Nil until the
	// memory participates in a snapshot, so ordinary runs never consult it.
	shared map[uint64]struct{}
	// gen counts ownership epochs: Snapshot bumps it, which tells every
	// Pager that cached page pointers (and their writability) are stale.
	gen uint64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[PageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil {
		if create {
			p = new([PageSize]byte)
			m.pages[pn] = p
			m.bytesMapped += PageSize
		}
		return p
	}
	if create && len(m.shared) != 0 {
		if _, ok := m.shared[pn]; ok {
			cp := new([PageSize]byte)
			*cp = *p
			m.pages[pn] = cp
			delete(m.shared, pn)
			return cp
		}
	}
	return p
}

// Mapped reports whether addr lies on a materialized, non-null page.
func (m *Memory) Mapped(addr uint64) bool {
	if addr < PageSize {
		return false
	}
	return m.pages[addr>>pageShift] != nil
}

// Footprint returns the number of bytes of materialized pages.
func (m *Memory) Footprint() uint64 { return m.bytesMapped }

// Byte reads one byte. ok is false for the null page or unmapped pages
// (the value is then 0).
func (m *Memory) Byte(addr uint64) (byte, bool) {
	if addr < PageSize {
		return 0, false
	}
	p := m.page(addr, false)
	if p == nil {
		return 0, false
	}
	return p[addr&(PageSize-1)], true
}

// SetByte writes one byte, materializing the page. Writes to the null
// page are discarded and report false.
func (m *Memory) SetByte(addr uint64, v byte) bool {
	if addr < PageSize {
		return false
	}
	p := m.page(addr, true)
	p[addr&(PageSize-1)] = v
	return true
}

// Read reads size bytes (1, 2, 4, or 8) little-endian, zero-extended. ok is
// false if any byte faulted; faulting bytes read as zero.
func (m *Memory) Read(addr uint64, size int) (uint64, bool) {
	// Fast path: access within one page.
	if addr >= PageSize && addr&(PageSize-1) <= PageSize-uint64(size) {
		p := m.page(addr, false)
		if p == nil {
			return 0, false
		}
		off := addr & (PageSize - 1)
		switch size {
		case 1:
			return uint64(p[off]), true
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:])), true
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:])), true
		case 8:
			return binary.LittleEndian.Uint64(p[off:]), true
		}
	}
	var v uint64
	ok := true
	for i := 0; i < size; i++ {
		b, bok := m.Byte(addr + uint64(i))
		ok = ok && bok
		v |= uint64(b) << (8 * i)
	}
	return v, ok
}

// Write writes size bytes (1, 2, 4, or 8) little-endian. ok is false if any
// byte faulted.
func (m *Memory) Write(addr uint64, size int, v uint64) bool {
	if addr >= PageSize && addr&(PageSize-1) <= PageSize-uint64(size) {
		p := m.page(addr, true)
		off := addr & (PageSize - 1)
		switch size {
		case 1:
			p[off] = byte(v)
			return true
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return true
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return true
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return true
		}
	}
	ok := true
	for i := 0; i < size; i++ {
		ok = m.SetByte(addr+uint64(i), byte(v>>(8*i))) && ok
	}
	return ok
}

// ReadU64 reads an 8-byte word, returning 0 for faulting addresses.
func (m *Memory) ReadU64(addr uint64) uint64 {
	v, _ := m.Read(addr, 8)
	return v
}

// WriteU64 writes an 8-byte word.
func (m *Memory) WriteU64(addr uint64, v uint64) { m.Write(addr, 8, v) }

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		p := m.page(addr, true)
		off := addr & (PageSize - 1)
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice; unmapped
// bytes read as zero.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i], _ = m.Byte(addr + uint64(i))
	}
	return out
}

// Snapshot is an immutable copy-on-write image of a Memory at one instant.
// Its pages are shared — never mutated — by every Memory derived from it
// via NewFromSnapshot, and by the Memory that produced it (which turns
// copy-on-write from the moment of the snapshot). That makes a Snapshot
// safe to restore from concurrently.
type Snapshot struct {
	pages       map[uint64]*[PageSize]byte
	bytesMapped uint64
}

// Snapshot captures the current contents. The receiver keeps working but
// copies any snapshotted page before its next write, so the returned image
// stays frozen. Cost is O(pages) pointer copies, not O(bytes).
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{
		pages:       make(map[uint64]*[PageSize]byte, len(m.pages)),
		bytesMapped: m.bytesMapped,
	}
	m.gen++
	if m.shared == nil {
		m.shared = make(map[uint64]struct{}, len(m.pages))
	}
	for pn, p := range m.pages {
		s.pages[pn] = p
		m.shared[pn] = struct{}{}
	}
	return s
}

// NewFromSnapshot returns a Memory whose initial contents are the
// snapshot's, sharing its pages copy-on-write. Restoring is O(pages).
func NewFromSnapshot(s *Snapshot) *Memory {
	m := &Memory{
		pages:       make(map[uint64]*[PageSize]byte, len(s.pages)),
		bytesMapped: s.bytesMapped,
		shared:      make(map[uint64]struct{}, len(s.pages)),
	}
	for pn, p := range s.pages {
		m.pages[pn] = p
		m.shared[pn] = struct{}{}
	}
	return m
}

// Footprint returns the number of bytes of pages captured in the snapshot.
func (s *Snapshot) Footprint() uint64 { return s.bytesMapped }

// NumPages returns the number of captured pages.
func (s *Snapshot) NumPages() int { return len(s.pages) }

// AppendTo serializes the snapshot deterministically (page count, then
// page-number/contents pairs in ascending page order) and returns the
// extended buffer.
func (s *Snapshot) AppendTo(b []byte) []byte {
	pns := make([]uint64, 0, len(s.pages))
	for pn := range s.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	b = binary.LittleEndian.AppendUint64(b, uint64(len(pns)))
	for _, pn := range pns {
		b = binary.LittleEndian.AppendUint64(b, pn)
		b = append(b, s.pages[pn][:]...)
	}
	return b
}

// DecodeSnapshot parses a snapshot serialized by AppendTo and returns the
// unconsumed remainder of b.
func DecodeSnapshot(b []byte) (*Snapshot, []byte, error) {
	if len(b) < 8 {
		return nil, nil, errors.New("mem: truncated snapshot header")
	}
	n := binary.LittleEndian.Uint64(b)
	b = b[8:]
	s := &Snapshot{pages: make(map[uint64]*[PageSize]byte, n)}
	for i := uint64(0); i < n; i++ {
		if len(b) < 8+PageSize {
			return nil, nil, errors.New("mem: truncated snapshot page")
		}
		pn := binary.LittleEndian.Uint64(b)
		p := new([PageSize]byte)
		copy(p[:], b[8:8+PageSize])
		s.pages[pn] = p
		b = b[8+PageSize:]
		s.bytesMapped += PageSize
	}
	return s, b, nil
}

// Equal reports whether two snapshots capture identical contents.
func (s *Snapshot) Equal(o *Snapshot) bool {
	if len(s.pages) != len(o.pages) {
		return false
	}
	for pn, p := range s.pages {
		q, ok := o.pages[pn]
		if !ok || *p != *q {
			return false
		}
	}
	return true
}
