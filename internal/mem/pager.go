package mem

import "encoding/binary"

// pagerWays is the number of direct-mapped page-pointer cache entries a
// Pager holds (indexed by the page number's low bits). Workload data sits
// on a modest set of hot pages — arena, stack, globals — but
// pointer-chasing workloads (mcf-style) walk nodes scattered across the
// whole arena, so the cache must cover hundreds of pages to keep the
// page-table map off the hot path. 2048 entries is 48KB per Machine and captures
// almost every access.
const pagerWays = 2048

type pagerEntry struct {
	// pnR and pnW are the page numbers this entry serves for loads and
	// stores respectively; ^0 means no page. They differ when the page is
	// shared with a Snapshot (copy-on-write): readable through the cached
	// pointer but not writable. Separate load/store tags keep the hot-path
	// check to a single compare each — no nil or writable test.
	pnR, pnW uint64
	p        *[PageSize]byte
}

// noPage is a page-number tag that never matches a real page (real page
// numbers fit in 64-12 bits).
const noPage = ^uint64(0)

// Pager is an execution-loop view of a Memory that caches page lookups so
// same-page accesses skip the page-table map. It exists for the compiled
// functional engine: a straight-line run of loads and stores against hot
// pages touches the map once per page, not once per access.
//
// Semantics are identical to Memory.Read/Write, including fault reporting
// and cross-page assembly (which falls back to the Memory slow path).
//
// Contract: while a Pager is live, all stores to the Memory must go
// through it (loads may bypass). A direct Memory.Write can privatize a
// copy-on-write page behind the cache's back, leaving a stale pointer.
// Memory.Snapshot is safe at any point — it bumps the memory's generation
// counter, which every Pager access checks.
type Pager struct {
	m   *Memory
	gen uint64
	e   [pagerWays]pagerEntry
}

// Init points the pager at m and clears the cache. A zero Pager must be
// Init'ed before use.
func (pg *Pager) Init(m *Memory) {
	pg.m = m
	pg.flush()
}

// Mem returns the underlying memory.
func (pg *Pager) Mem() *Memory { return pg.m }

// Invalidate drops every cached page pointer. Call it after writing to the
// underlying Memory directly.
func (pg *Pager) Invalidate() { pg.flush() }

func (pg *Pager) flush() {
	for i := range pg.e {
		pg.e[i] = pagerEntry{pnR: noPage, pnW: noPage}
	}
	pg.gen = pg.m.gen
}

// fill caches the page containing pn for reading and returns it (nil when
// unmapped; unmapped pages are never negatively cached — they can
// materialize later).
func (pg *Pager) fill(pn uint64) *[PageSize]byte {
	if pg.gen != pg.m.gen {
		pg.flush()
	}
	p := pg.m.pages[pn]
	if p == nil {
		return nil
	}
	pnW := pn
	if len(pg.m.shared) != 0 {
		if _, sh := pg.m.shared[pn]; sh {
			pnW = noPage
		}
	}
	pg.e[pn&(pagerWays-1)] = pagerEntry{pnR: pn, pnW: pnW, p: p}
	return p
}

// fillWrite privatizes (copy-on-write) and caches the page containing pn
// as writable, materializing it if needed.
func (pg *Pager) fillWrite(pn uint64) *[PageSize]byte {
	if pg.gen != pg.m.gen {
		pg.flush()
	}
	p := pg.m.page(pn<<pageShift, true)
	pg.e[pn&(pagerWays-1)] = pagerEntry{pnR: pn, pnW: pn, p: p}
	return p
}

// The Load/Store accessors below are split into a hand-inlinable fast
// path (cache hit on a current-generation entry, access within one page)
// and a *Slow fallback. The fast path must stay under the compiler's
// inlining budget: in the compiled engine's dispatch loop the hit case
// then compiles down to an index, two compares, and the bounded
// load/store, with no call. A hit on a cached entry implies the page is
// mapped, so pn >= 1 and the null-page check is subsumed by the tag
// compare (the null page is never cached, and noPage matches no address's
// page number).

// The Try* probes are the same fast paths without the slow-path call, so
// they fit the compiler's inlining budget (the *Slow call alone costs more
// than half of it). A dispatch loop issues the probe inline and only pays
// a function call on a cache miss; `hit == false` says nothing about
// faulting — retry through the full accessor.

// TryLoad64 reads 8 little-endian bytes if addr hits the cached page.
func (pg *Pager) TryLoad64(addr uint64) (v uint64, hit bool) {
	pn := addr >> pageShift
	off := addr & (PageSize - 1)
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnR == pn && pg.gen == pg.m.gen && off <= PageSize-8 {
		return binary.LittleEndian.Uint64(e.p[off:]), true
	}
	return 0, false
}

// TryLoad32 reads 4 little-endian bytes, zero-extended, on a cache hit.
func (pg *Pager) TryLoad32(addr uint64) (v uint64, hit bool) {
	pn := addr >> pageShift
	off := addr & (PageSize - 1)
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnR == pn && pg.gen == pg.m.gen && off <= PageSize-4 {
		return uint64(binary.LittleEndian.Uint32(e.p[off:])), true
	}
	return 0, false
}

// TryLoad8 reads one byte on a cache hit.
func (pg *Pager) TryLoad8(addr uint64) (v uint64, hit bool) {
	pn := addr >> pageShift
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnR == pn && pg.gen == pg.m.gen {
		return uint64(e.p[addr&(PageSize-1)]), true
	}
	return 0, false
}

// TryStore64 writes 8 little-endian bytes if addr hits a writable page.
func (pg *Pager) TryStore64(addr, v uint64) (hit bool) {
	pn := addr >> pageShift
	off := addr & (PageSize - 1)
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnW == pn && pg.gen == pg.m.gen && off <= PageSize-8 {
		binary.LittleEndian.PutUint64(e.p[off:], v)
		return true
	}
	return false
}

// TryStore32 writes 4 little-endian bytes on a writable hit.
func (pg *Pager) TryStore32(addr uint64, v uint32) (hit bool) {
	pn := addr >> pageShift
	off := addr & (PageSize - 1)
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnW == pn && pg.gen == pg.m.gen && off <= PageSize-4 {
		binary.LittleEndian.PutUint32(e.p[off:], v)
		return true
	}
	return false
}

// TryStore8 writes one byte on a writable hit.
func (pg *Pager) TryStore8(addr uint64, v byte) (hit bool) {
	pn := addr >> pageShift
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnW == pn && pg.gen == pg.m.gen {
		e.p[addr&(PageSize-1)] = v
		return true
	}
	return false
}

// Load64 reads 8 little-endian bytes at addr; ok is false on fault.
func (pg *Pager) Load64(addr uint64) (uint64, bool) {
	pn := addr >> pageShift
	off := addr & (PageSize - 1)
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnR == pn && pg.gen == pg.m.gen && off <= PageSize-8 {
		return binary.LittleEndian.Uint64(e.p[off:]), true
	}
	return pg.load64Slow(addr)
}

func (pg *Pager) load64Slow(addr uint64) (uint64, bool) {
	off := addr & (PageSize - 1)
	if addr >= PageSize && off <= PageSize-8 {
		if p := pg.fill(addr >> pageShift); p != nil {
			return binary.LittleEndian.Uint64(p[off:]), true
		}
		return 0, false
	}
	return pg.m.Read(addr, 8)
}

// Load32 reads 4 little-endian bytes, zero-extended; ok is false on fault.
func (pg *Pager) Load32(addr uint64) (uint64, bool) {
	pn := addr >> pageShift
	off := addr & (PageSize - 1)
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnR == pn && pg.gen == pg.m.gen && off <= PageSize-4 {
		return uint64(binary.LittleEndian.Uint32(e.p[off:])), true
	}
	return pg.load32Slow(addr)
}

func (pg *Pager) load32Slow(addr uint64) (uint64, bool) {
	off := addr & (PageSize - 1)
	if addr >= PageSize && off <= PageSize-4 {
		if p := pg.fill(addr >> pageShift); p != nil {
			return uint64(binary.LittleEndian.Uint32(p[off:])), true
		}
		return 0, false
	}
	return pg.m.Read(addr, 4)
}

// Load8 reads one byte; ok is false on fault.
func (pg *Pager) Load8(addr uint64) (uint64, bool) {
	pn := addr >> pageShift
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnR == pn && pg.gen == pg.m.gen {
		return uint64(e.p[addr&(PageSize-1)]), true
	}
	return pg.load8Slow(addr)
}

func (pg *Pager) load8Slow(addr uint64) (uint64, bool) {
	if addr >= PageSize {
		if p := pg.fill(addr >> pageShift); p != nil {
			return uint64(p[addr&(PageSize-1)]), true
		}
	}
	return pg.m.Read(addr, 1)
}

// Store64 writes 8 little-endian bytes; false on fault (null page).
func (pg *Pager) Store64(addr, v uint64) bool {
	pn := addr >> pageShift
	off := addr & (PageSize - 1)
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnW == pn && pg.gen == pg.m.gen && off <= PageSize-8 {
		binary.LittleEndian.PutUint64(e.p[off:], v)
		return true
	}
	return pg.store64Slow(addr, v)
}

func (pg *Pager) store64Slow(addr, v uint64) bool {
	off := addr & (PageSize - 1)
	if addr >= PageSize && off <= PageSize-8 {
		binary.LittleEndian.PutUint64(pg.fillWrite(addr >> pageShift)[off:], v)
		return true
	}
	return pg.m.Write(addr, 8, v)
}

// Store32 writes 4 little-endian bytes; false on fault.
func (pg *Pager) Store32(addr uint64, v uint32) bool {
	pn := addr >> pageShift
	off := addr & (PageSize - 1)
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnW == pn && pg.gen == pg.m.gen && off <= PageSize-4 {
		binary.LittleEndian.PutUint32(e.p[off:], v)
		return true
	}
	return pg.store32Slow(addr, v)
}

func (pg *Pager) store32Slow(addr uint64, v uint32) bool {
	off := addr & (PageSize - 1)
	if addr >= PageSize && off <= PageSize-4 {
		binary.LittleEndian.PutUint32(pg.fillWrite(addr >> pageShift)[off:], v)
		return true
	}
	return pg.m.Write(addr, 4, uint64(v))
}

// Store8 writes one byte; false on fault.
func (pg *Pager) Store8(addr uint64, v byte) bool {
	pn := addr >> pageShift
	e := &pg.e[pn&(pagerWays-1)]
	if e.pnW == pn && pg.gen == pg.m.gen {
		e.p[addr&(PageSize-1)] = v
		return true
	}
	return pg.store8Slow(addr, v)
}

func (pg *Pager) store8Slow(addr uint64, v byte) bool {
	if addr >= PageSize {
		pg.fillWrite(addr >> pageShift)[addr&(PageSize-1)] = v
		return true
	}
	return pg.m.Write(addr, 1, uint64(v))
}

// Load reads size bytes (1, 4, or 8) through the cache.
func (pg *Pager) Load(addr uint64, size int) (uint64, bool) {
	switch size {
	case 8:
		return pg.Load64(addr)
	case 4:
		return pg.Load32(addr)
	case 1:
		return pg.Load8(addr)
	}
	return pg.m.Read(addr, size)
}

// Store writes size bytes (1, 4, or 8) through the cache.
func (pg *Pager) Store(addr uint64, size int, v uint64) bool {
	switch size {
	case 8:
		return pg.Store64(addr, v)
	case 4:
		return pg.Store32(addr, uint32(v))
	case 1:
		return pg.Store8(addr, byte(v))
	}
	return pg.m.Write(addr, size, v)
}
