package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	for _, size := range []int{1, 2, 4, 8} {
		addr := uint64(0x10000 + size*64)
		v := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if size == 8 {
			v = 0x1122334455667788
		}
		if !m.Write(addr, size, v) {
			t.Fatalf("write size %d failed", size)
		}
		got, ok := m.Read(addr, size)
		if !ok || got != v {
			t.Errorf("size %d: got %#x ok=%v, want %#x", size, got, ok, v)
		}
	}
}

func TestNullPageFaults(t *testing.T) {
	m := New()
	if m.SetByte(0, 1) {
		t.Error("write to address 0 must fail")
	}
	if m.SetByte(PageSize-1, 1) {
		t.Error("write to null page must fail")
	}
	if _, ok := m.Byte(100); ok {
		t.Error("read of null page must fail")
	}
	if v, ok := m.Read(8, 8); ok || v != 0 {
		t.Error("word read of null page must fail with zero value")
	}
	if m.Mapped(100) {
		t.Error("null page must never be mapped")
	}
}

func TestUnmappedReadsAsZero(t *testing.T) {
	m := New()
	v, ok := m.Read(0x500000, 8)
	if ok {
		t.Error("unmapped read must report not-ok")
	}
	if v != 0 {
		t.Errorf("unmapped read value = %#x", v)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(2*PageSize - 4) // straddles a page boundary
	want := uint64(0xAABBCCDDEEFF0011)
	if !m.Write(addr, 8, want) {
		t.Fatal("cross-page write failed")
	}
	got, ok := m.Read(addr, 8)
	if !ok || got != want {
		t.Errorf("cross-page read = %#x ok=%v", got, ok)
	}
}

func TestWriteBytesReadBytes(t *testing.T) {
	m := New()
	data := make([]byte, 3*PageSize+17)
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)
	base := uint64(0x40000)
	m.WriteBytes(base, data)
	got := m.ReadBytes(base, len(data))
	if !bytes.Equal(got, data) {
		t.Error("WriteBytes/ReadBytes mismatch")
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.Footprint() != 0 {
		t.Error("fresh memory has nonzero footprint")
	}
	m.SetByte(0x10000, 1)
	m.SetByte(0x10001, 1) // same page
	if m.Footprint() != PageSize {
		t.Errorf("footprint = %d", m.Footprint())
	}
	m.SetByte(0x20000, 1)
	if m.Footprint() != 2*PageSize {
		t.Errorf("footprint = %d", m.Footprint())
	}
}

func TestReadsDoNotMaterializePages(t *testing.T) {
	m := New()
	m.Read(0x90000, 8)
	m.Byte(0x90010)
	if m.Footprint() != 0 {
		t.Error("reads materialized a page")
	}
}

// Property: a write followed by a read of the same (addr, size) returns the
// value truncated to size bytes, for all valid addresses.
func TestQuickWriteReadConsistency(t *testing.T) {
	m := New()
	f := func(addrSeed uint32, sizeSel uint8, v uint64) bool {
		size := []int{1, 2, 4, 8}[sizeSel%4]
		addr := uint64(addrSeed)%(1<<24) + PageSize // avoid null page
		if !m.Write(addr, size, v) {
			return false
		}
		got, ok := m.Read(addr, size)
		want := v
		if size < 8 {
			want = v & (1<<(8*size) - 1)
		}
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: memory behaves identically to a reference map[uint64]byte under
// random interleavings of byte writes and word reads.
func TestQuickReferenceModel(t *testing.T) {
	m := New()
	ref := make(map[uint64]byte)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(1<<16)) + PageSize
		if rng.Intn(2) == 0 {
			b := byte(rng.Intn(256))
			m.SetByte(addr, b)
			ref[addr] = b
		} else {
			size := []int{1, 2, 4, 8}[rng.Intn(4)]
			got, _ := m.Read(addr, size)
			var want uint64
			for j := 0; j < size; j++ {
				want |= uint64(ref[addr+uint64(j)]) << (8 * j)
			}
			if got != want {
				t.Fatalf("read(%#x,%d) = %#x, want %#x", addr, size, got, want)
			}
		}
	}
}
