package mem

import (
	"math/rand"
	"testing"
)

// TestPagerMatchesMemory drives a Pager and a bare Memory with an
// identical random access stream and holds every result (value, fault
// flag, final contents) equal. The stream mixes sizes, hot-page reuse (so
// cached pointers actually serve hits), cross-page straddles, the null
// page, and unmapped addresses.
func TestPagerMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mm := New()
	pm := New()
	var pg Pager
	pg.Init(pm)

	addrs := []uint64{
		0x10, 0xFF8, // null page (faults)
		0x1000, 0x1004, 0x1FFF, // first mapped page, incl. page-end byte
		0x1FFC, 0x1FFD, // cross-page straddles
		0x40000, 0x40008, 0x40800, // arena-style hot page
		0x41000 - 4, 0x41000 - 1, // straddles into the next page
		0x90000, // distinct cache index
	}
	sizes := []int{1, 4, 8}
	for i := 0; i < 20_000; i++ {
		addr := addrs[rng.Intn(len(addrs))] + uint64(rng.Intn(8))
		size := sizes[rng.Intn(len(sizes))]
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			okM := mm.Write(addr, size, v)
			okP := pg.Store(addr, size, v)
			if okM != okP {
				t.Fatalf("op %d: Store(%#x, %d) ok: pager %v, memory %v", i, addr, size, okP, okM)
			}
		} else {
			vM, okM := mm.Read(addr, size)
			vP, okP := pg.Load(addr, size)
			if vM != vP || okM != okP {
				t.Fatalf("op %d: Load(%#x, %d): pager (%#x, %v), memory (%#x, %v)",
					i, addr, size, vP, okP, vM, okM)
			}
		}
	}
	if !mm.Snapshot().Equal(pm.Snapshot()) {
		t.Fatal("final memories diverge")
	}
}

// TestPagerSnapshotCOW: a Snapshot taken mid-run must stay frozen while
// the Pager keeps writing — the generation bump invalidates the cached
// writable pointers, so the next store privatizes the page instead of
// scribbling on the shared one.
func TestPagerSnapshotCOW(t *testing.T) {
	m := New()
	var pg Pager
	pg.Init(m)

	const addr = uint64(0x40000)
	if !pg.Store64(addr, 111) {
		t.Fatal("store faulted")
	}
	// The page pointer is now cached writable. Snapshot shares the page.
	snap := m.Snapshot()

	if !pg.Store64(addr, 222) {
		t.Fatal("post-snapshot store faulted")
	}
	if v, _ := pg.Load64(addr); v != 222 {
		t.Errorf("live memory reads %d, want 222", v)
	}
	restored := NewFromSnapshot(snap)
	if v, _ := restored.Read(addr, 8); v != 111 {
		t.Errorf("snapshot reads %d, want 111 (pager wrote through a stale COW pointer)", v)
	}

	// And the restored copy is itself independent.
	restored.WriteU64(addr, 333)
	if v, _ := pg.Load64(addr); v != 222 {
		t.Errorf("live memory reads %d after writing the restored copy, want 222", v)
	}
}

// TestPagerInvalidate: direct Memory writes behind the Pager's back are
// visible after Invalidate. (Loads may serve stale cached data before the
// flush only when the direct write did not change the page mapping — the
// documented contract is that direct writes require Invalidate.)
func TestPagerInvalidate(t *testing.T) {
	m := New()
	var pg Pager
	pg.Init(m)

	const addr = uint64(0x40000)
	m.WriteU64(addr, 1) // map the page directly
	if v, ok := pg.Load64(addr); !ok || v != 1 {
		t.Fatalf("Load64 = (%d, %v), want (1, true)", v, ok)
	}
	// The read-only pointer is cached; a direct write stays visible through
	// it (same backing array)…
	m.WriteU64(addr, 2)
	pg.Invalidate()
	if v, ok := pg.Load64(addr); !ok || v != 2 {
		t.Errorf("after Invalidate: Load64 = (%d, %v), want (2, true)", v, ok)
	}
}

// TestPagerNoNegativeCaching: a faulting load of an unmapped page must not
// cache the miss — the page can materialize later via a store.
func TestPagerNoNegativeCaching(t *testing.T) {
	m := New()
	var pg Pager
	pg.Init(m)

	const addr = uint64(0x50000)
	if _, ok := pg.Load64(addr); ok {
		t.Fatal("load of an unmapped page did not fault")
	}
	if !pg.Store64(addr, 9) {
		t.Fatal("store faulted")
	}
	if v, ok := pg.Load64(addr); !ok || v != 9 {
		t.Errorf("Load64 after materializing store = (%d, %v), want (9, true)", v, ok)
	}
}

// TestPagerNullPage: the null page faults through every width, loads and
// stores, cached or not.
func TestPagerNullPage(t *testing.T) {
	m := New()
	var pg Pager
	pg.Init(m)
	for _, addr := range []uint64{0, 1, 0x10, PageSize - 8, PageSize - 1} {
		if _, ok := pg.Load64(addr); ok {
			t.Errorf("Load64(%#x) did not fault", addr)
		}
		if _, ok := pg.Load32(addr); ok {
			t.Errorf("Load32(%#x) did not fault", addr)
		}
		if _, ok := pg.Load8(addr); ok {
			t.Errorf("Load8(%#x) did not fault", addr)
		}
		if pg.Store64(addr, 1) || pg.Store32(addr, 1) || pg.Store8(addr, 1) {
			t.Errorf("store to %#x did not fault", addr)
		}
	}
	if m.Mapped(0) {
		t.Error("faulting stores materialized the null page")
	}
}

// TestPagerCrossPage: accesses straddling a page boundary take the Memory
// slow path and still behave exactly like Memory.Read/Write, assembling
// the value from both pages.
func TestPagerCrossPage(t *testing.T) {
	m := New()
	var pg Pager
	pg.Init(m)

	straddle := uint64(2*PageSize - 4) // 8-byte access: 4 bytes in each page
	if !pg.Store64(straddle, 0x1122334455667788) {
		t.Fatal("cross-page store faulted")
	}
	if v, ok := pg.Load64(straddle); !ok || v != 0x1122334455667788 {
		t.Errorf("cross-page Load64 = (%#x, %v)", v, ok)
	}
	// Both pages must have their halves.
	lo, _ := m.Read(2*PageSize-4, 4)
	hi, _ := m.Read(2*PageSize, 4)
	if lo != 0x55667788 || hi != 0x11223344 {
		t.Errorf("halves = %#x, %#x", lo, hi)
	}
}
