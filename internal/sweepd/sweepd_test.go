package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/workloads"
)

// testScale keeps sweep tests fast; matches nothing the other tests cache,
// so every test's first simulation is honest.
const testScale = 0.15

func newTestServer(t *testing.T, workers, capacity int, dir string) (*Server, *httptest.Server) {
	t.Helper()
	eng := harness.NewEngine(harness.Params{Scale: testScale}, workers)
	eng.Ckpt = harness.NewCheckpointer(dir, harness.WarmDetailed)
	s := New(eng, workers, capacity)
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// postSweep submits spec and decodes the NDJSON stream. onAccepted, when
// non-nil, runs after the accepted record (e.g. to cancel mid-stream).
func postSweep(t *testing.T, url string, spec SweepSpec, onAccepted func(id string)) (recs []Record, done Record) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/sweeps: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawDone := false
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad record %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
		if rec.Type == "accepted" && onAccepted != nil {
			onAccepted(rec.Sweep)
		}
		if rec.Type == "done" {
			done, sawDone = rec, true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("stream ended without a done record")
	}
	return recs, done
}

// TestSweepSubmitStream: a 2×2 grid streams an accepted record, one run
// record per leg with real counters, and a terminal done record — and every
// counter matches what a direct harness.Engine run of the same canonical
// spec produces.
func TestSweepSubmitStream(t *testing.T) {
	_, hs := newTestServer(t, 2, 0, "")
	spec := SweepSpec{
		Schema:    Schema,
		Workloads: []string{"vpr", "gzip"},
		Configs:   []ConfigSpec{{}, {WithSlices: true}},
	}
	recs, done := postSweep(t, hs.URL, spec, nil)

	if recs[0].Type != "accepted" || recs[0].Runs != 4 || recs[0].Sweep == "" {
		t.Fatalf("first record = %+v, want accepted with 4 runs", recs[0])
	}
	var runs []Record
	for _, r := range recs {
		if r.Type == "run" {
			runs = append(runs, r)
		}
	}
	if len(runs) != 4 {
		t.Fatalf("got %d run records, want 4", len(runs))
	}
	if done.Completed != 4 || done.Errors != 0 || done.Skips != 0 || done.Cancelled {
		t.Errorf("done = %+v, want 4 completed", done)
	}
	if done.Engine == nil || done.Queue == nil {
		t.Error("done record missing engine/queue telemetry")
	} else if done.Queue.Enqueued != 4 || done.Queue.Completed != 4 {
		t.Errorf("queue stats = %+v, want 4 enqueued/completed", done.Queue)
	}

	// Byte-identical to the experiment drivers: rebuild each run's spec
	// through harness.SpecFor on a fresh engine and compare counters.
	ref := harness.NewEngine(harness.Params{Scale: testScale}, 2)
	for _, r := range runs {
		if r.Err != "" || r.Skipped {
			t.Fatalf("run %s/%s failed: %+v", r.Workload, r.Config, r)
		}
		w, err := workloads.ByName(r.Workload)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ref.Run(harness.SpecFor(ref.Params, w, cpu.Config4Wide(), r.WithSlices))
		if err != nil {
			t.Fatal(err)
		}
		sim := res.Stats()
		if r.Cycles != sim.Cycles || r.Insts != sim.MainRetired || r.Mispredicts != sim.Mispredicts {
			t.Errorf("%s slices=%v: sweep (%d cyc, %d insts, %d misp) != direct (%d cyc, %d insts, %d misp)",
				r.Workload, r.WithSlices, r.Cycles, r.Insts, r.Mispredicts,
				sim.Cycles, sim.MainRetired, sim.Mispredicts)
		}
		if r.Warm == 0 || r.Run == 0 || r.IPC <= 0 {
			t.Errorf("%s: degenerate run record %+v", r.Workload, r)
		}
	}
}

// TestSweepCoSchedule: a sweep mixing single-program legs and a
// co-schedule streams records for both. Co-scheduled records carry the
// per-program breakdown, are never memoized, and reproduce a direct
// harness.RunMP of the same group byte-for-byte; config legs a
// co-schedule cannot run on reject the whole sweep up front.
func TestSweepCoSchedule(t *testing.T) {
	_, hs := newTestServer(t, 2, 0, "")
	spec := SweepSpec{
		Workloads:   []string{"vpr"},
		CoSchedules: [][]string{{"vpr", "mcf"}},
		Configs:     []ConfigSpec{{}, {WithSlices: true}},
	}
	recs, done := postSweep(t, hs.URL, spec, nil)
	// 1 workload × 2 configs + 1 co-schedule × 2 configs.
	if recs[0].Runs != 4 || done.Completed != 4 || done.Errors != 0 {
		t.Fatalf("accepted %d runs, done %+v, want 4 clean", recs[0].Runs, done)
	}
	var mp []Record
	for _, r := range recs {
		if r.Type == "run" && len(r.Programs) > 0 {
			mp = append(mp, r)
		}
	}
	if len(mp) != 2 {
		t.Fatalf("got %d co-scheduled records, want 2", len(mp))
	}
	group := []*workloads.Workload{}
	for _, name := range []string{"vpr", "mcf"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		group = append(group, w)
	}
	for _, r := range mp {
		if r.Workload != "vpr+mcf" || r.Memoized || r.Err != "" {
			t.Errorf("co-scheduled record = %+v, want unmemoized vpr+mcf", r)
		}
		if len(r.Programs) != 2 || r.Programs[0].Workload != "vpr" || r.Programs[1].Workload != "mcf" {
			t.Fatalf("programs = %+v, want [vpr mcf]", r.Programs)
		}
		var sum uint64
		for _, p := range r.Programs {
			sum += p.Insts
			if p.IPC <= 0 || p.Insts == 0 {
				t.Errorf("degenerate program record %+v", p)
			}
		}
		if r.Insts != sum {
			t.Errorf("aggregate insts %d != per-program sum %d", r.Insts, sum)
		}
		// The record must reproduce a direct run of the same leg: wall
		// cycles plus the per-program counters.
		snap, err := harness.RunMP(group, harness.Params{Scale: testScale}, r.WithSlices, r.Warm, r.Run, harness.OracleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != snap.Progs[0].Cycles {
			t.Errorf("slices=%v: sweep %d cycles != direct %d", r.WithSlices, r.Cycles, snap.Progs[0].Cycles)
		}
		for i, p := range r.Programs {
			ps := &snap.Progs[i]
			if p.Insts != ps.MainRetired || p.Mispredicts != ps.Mispredicts || p.LoadMisses != ps.LoadMisses {
				t.Errorf("slices=%v p%d: sweep (%d insts, %d misp) != direct (%d insts, %d misp)",
					r.WithSlices, i, p.Insts, p.Mispredicts, ps.MainRetired, ps.Mispredicts)
			}
		}
	}

	// Unsupported legs and malformed groups are 400s, not queued work.
	for _, body := range []string{
		`{"coSchedules":[["vpr","mcf"]],"configs":[{"width":8}]}`,
		`{"coSchedules":[["vpr","mcf"]],"configs":[{"bpred":"gshare:4096,10"}]}`,
		`{"coSchedules":[["vpr"]]}`,
		`{"coSchedules":[["vpr","no-such-workload"]]}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", body, resp.Status)
		}
	}
}

// TestSweepBadRequests: malformed submissions fail fast with 400 and a
// terminal error record; nothing reaches the queue.
func TestSweepBadRequests(t *testing.T) {
	s, hs := newTestServer(t, 1, 0, "")
	cases := []string{
		`{"schema":"specslice-sweep/999"}`,
		`{"workloads":["no-such-workload"]}`,
		`{"configs":[{"width":6}]}`,
		`{"configs":[{"bpred":"no-such-predictor"}]}`,
		`not json`,
	}
	for _, body := range cases {
		resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var rec Record
		err = json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || err != nil || rec.Type != "error" || rec.Error == "" {
			t.Errorf("%q: status=%d rec=%+v err=%v, want 400 + error record", body, resp.StatusCode, rec, err)
		}
	}
	if qs := s.queueStats(); qs.Enqueued != 0 {
		t.Errorf("bad requests enqueued %d runs", qs.Enqueued)
	}

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestSweepBackpressure429: a sweep that cannot fit in the queue is
// refused with 429, a Retry-After header, and a terminal error record;
// the rejection is counted and nothing simulates.
func TestSweepBackpressure429(t *testing.T) {
	s, hs := newTestServer(t, 1, 3, "")
	body := `{"workloads":["vpr","gzip","mcf","eon"]}` // 4 runs > capacity 3
	resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive estimate", ra)
	}
	var rec Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Type != "error" || rec.RetryAfterSec < 1 || rec.Error == "" {
		t.Errorf("429 record = %+v, want error with RetryAfterSec >= 1", rec)
	}
	qs := s.queueStats()
	if qs.Rejected != 1 || qs.Enqueued != 0 {
		t.Errorf("queue stats after reject = %+v, want 1 rejected, 0 enqueued", qs)
	}
	if st := s.Engine().Stats(); st.Misses != 0 {
		t.Errorf("rejected sweep still simulated %d runs", st.Misses)
	}

	// A sweep that fits is admitted afterwards — rejection is per-sweep
	// backpressure, not a latch.
	_, done := postSweep(t, hs.URL, SweepSpec{Workloads: []string{"vpr"}}, nil)
	if done.Completed != 1 || done.Errors != 0 {
		t.Errorf("follow-up sweep: %+v, want 1 completed", done)
	}
}

// TestSweepCancel: DELETE /v1/sweeps/{id} mid-stream skips the queued
// remainder; the stream still terminates with a done record that reports
// the cancellation.
func TestSweepCancel(t *testing.T) {
	_, hs := newTestServer(t, 1, 0, "")
	spec := SweepSpec{Configs: []ConfigSpec{{}, {WithSlices: true}}} // all workloads × 2
	recs, done := postSweep(t, hs.URL, spec, func(id string) {
		req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/sweeps/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("cancel: %s", resp.Status)
		}
	})
	total := recs[0].Runs
	if !done.Cancelled {
		t.Error("done record not marked cancelled")
	}
	if done.Skips == 0 {
		t.Error("cancel skipped zero runs")
	}
	if done.Completed+done.Errors+done.Skips != total {
		t.Errorf("accounting: %d+%d+%d != %d runs", done.Completed, done.Errors, done.Skips, total)
	}

	// Cancelling an unknown (or already-retired) sweep is a 404.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/sweeps/nope", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown sweep: %s, want 404", resp.Status)
	}
}

// TestSweepFleetSingleFlight is the acceptance load test: two sweepd
// servers (independent engines — separate memos, separate processes in
// all but address space) share one checkpoint directory; four clients
// submit the full 12-workload grid concurrently. Zero duplicate warm
// simulations fleet-wide, and every client sees identical counters.
func TestSweepFleetSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-server load test")
	}
	dir := t.TempDir()
	grid := SweepSpec{Scale: 0.05, Configs: []ConfigSpec{{}}} // all workloads, baseline leg
	nWorkloads := len(workloads.All())

	srvA, hsA := newTestServer(t, 4, 0, dir)
	srvB, hsB := newTestServer(t, 4, 0, dir)

	type client struct {
		url  string
		runs map[string]Record
		done Record
	}
	clients := []*client{{url: hsA.URL}, {url: hsB.URL}, {url: hsA.URL}, {url: hsB.URL}}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			recs, done := postSweep(t, c.url, grid, nil)
			c.done = done
			c.runs = make(map[string]Record)
			for _, r := range recs {
				if r.Type == "run" {
					c.runs[r.Workload] = r
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, c := range clients {
		if c.done.Completed != nWorkloads || c.done.Errors != 0 || c.done.Skips != 0 {
			t.Fatalf("client %d: done = %+v, want %d completed", i, c.done, nWorkloads)
		}
	}

	// Zero duplicate warm simulations beyond the first build per key,
	// fleet-wide: both engines needed all 12 warm prefixes, but between
	// them they built each exactly once (the rest came off the shared
	// store, racing builders collapsed by the lock-file lease).
	stA, stB := srvA.Engine().Stats(), srvB.Engine().Stats()
	ckA, ckB := stA.Checkpoints, stB.Checkpoints
	if got := ckA.WarmMisses + ckB.WarmMisses; got != uint64(nWorkloads) {
		t.Errorf("fleet warm simulations = %d (A %d + B %d), want %d — duplicate warm builds",
			got, ckA.WarmMisses, ckB.WarmMisses, nWorkloads)
	}
	if ckA.SingleflightHits != ckA.SingleflightWaits || ckB.SingleflightHits != ckB.SingleflightWaits {
		t.Errorf("singleflight waits unresolved by peers: A %d/%d, B %d/%d",
			ckA.SingleflightHits, ckA.SingleflightWaits, ckB.SingleflightHits, ckB.SingleflightWaits)
	}
	if ckA.LeaseTakeovers+ckB.LeaseTakeovers != 0 {
		t.Errorf("lease takeovers = %d, want 0", ckA.LeaseTakeovers+ckB.LeaseTakeovers)
	}
	// Within each engine, the two clients' identical grids collapse in the
	// memo: one simulation per unique run, one memo hit.
	for name, st := range map[string]harness.EngineStats{"A": stA, "B": stB} {
		if st.Misses != uint64(nWorkloads) || st.Hits != uint64(nWorkloads) {
			t.Errorf("engine %s: %d misses / %d hits, want %d/%d", name, st.Misses, st.Hits, nWorkloads, nWorkloads)
		}
	}

	// Determinism across the fleet: all four clients agree on every
	// counter of every workload.
	ref := clients[0].runs
	for i, c := range clients[1:] {
		for wname, r := range c.runs {
			r0 := ref[wname]
			if r.Cycles != r0.Cycles || r.Insts != r0.Insts || r.Mispredicts != r0.Mispredicts || r.LoadMisses != r0.LoadMisses {
				t.Errorf("client %d %s: (%d cyc, %d insts) != client 0 (%d cyc, %d insts)",
					i+1, wname, r.Cycles, r.Insts, r0.Cycles, r0.Insts)
			}
		}
	}
}

// BenchmarkSweepService measures end-to-end sweep throughput: N clients
// submitting the same 4-workload grid against one fresh server per
// iteration. dup-warm-sims/op is the duplicate-build metric the load test
// asserts to be zero; runs/op scales with clients while warm-sims/op must
// not.
func BenchmarkSweepService(b *testing.B) {
	grid := SweepSpec{Scale: 0.05, Workloads: []string{"vpr", "gzip", "mcf", "eon"}}
	for _, clients := range []int{1, 4} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := harness.NewEngine(harness.Params{Scale: testScale}, 4)
				eng.Ckpt = harness.NewCheckpointer(b.TempDir(), harness.WarmDetailed)
				s := New(eng, 4, 0)
				s.Start()
				hs := httptest.NewServer(s.Handler())

				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						body, _ := json.Marshal(grid)
						resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						sc := bufio.NewScanner(resp.Body)
						sc.Buffer(make([]byte, 1<<20), 1<<20)
						for sc.Scan() {
						}
						resp.Body.Close()
					}()
				}
				wg.Wait()

				st := eng.Stats()
				b.ReportMetric(float64(st.Checkpoints.WarmMisses-4), "dup-warm-sims/op")
				b.ReportMetric(float64(st.Misses), "sims/op")
				b.ReportMetric(float64(st.Hits), "memo-hits/op")

				hs.Close()
				s.Close()
			}
		})
	}
}
