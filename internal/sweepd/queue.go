package sweepd

import (
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/workloads"
)

// runItem is one scheduled simulation: the canonical RunSpec plus the
// prefilled result record and its place in the priority queue. When mp is
// non-empty the item is a co-scheduled multi-programmed run instead —
// spec is unused and execution goes through Engine.RunMP with the
// expansion-time region lengths (mpWarm/mpRun capture the sweep's Scale,
// which the engine's own params do not know about).
type runItem struct {
	spec     harness.RunSpec
	mp       []*workloads.Workload
	mpWarm   uint64
	mpRun    uint64
	oracle   bool
	priority int
	seq      int64 // global admission order, the FIFO tiebreaker
	enqueued time.Time
	sw       *sweepState
	rec      Record
}

// sweepState tracks one admitted sweep across the queue, the workers, and
// the streaming response handler.
type sweepState struct {
	id      string
	total   int
	started time.Time
	// results is buffered to total, so workers never block on a slow (or
	// departed) client; the handler drains it until closed.
	results   chan Record
	pending   atomic.Int32
	cancelled atomic.Bool
}

// runHeap orders queued runs by priority (higher first), then admission
// order (FIFO). It implements container/heap.Interface.
type runHeap []*runItem

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(*runItem)) }
func (h *runHeap) Pop() (it any) {
	old := *h
	n := len(old)
	it = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}
