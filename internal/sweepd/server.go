package sweepd

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/stats"
)

// Server schedules sweeps over one shared harness.Engine. Construct with
// New, serve Handler() over HTTP, Close on shutdown.
//
// Concurrency model: the HTTP handlers only admit work and drain result
// channels; all simulation happens on the Workers pool, which pulls from
// one priority queue. Shard fairness comes from the queue being per-run,
// not per-sweep: a 1000-run sweep and a 3-run sweep at equal priority
// interleave by admission order instead of the big one starving the small
// one for its whole duration.
type Server struct {
	eng      *harness.Engine
	workers  int
	capacity int
	// Tracer, when non-nil, receives queue events (EvSweepEnqueue /
	// EvSweepDequeue / EvSweepReject). Set before Start.
	Tracer stats.Tracer
	// Logf, when non-nil, receives one line per admitted/finished/rejected
	// sweep (the -v hook). Set before Start.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	cond    *sync.Cond
	queue   runHeap
	seq     int64
	nextID  int64
	sweeps  map[string]*sweepState
	qs      QueueStats
	closed  bool
	started bool
	wg      sync.WaitGroup
}

// New builds a server over eng. workers ≤ 0 selects GOMAXPROCS; capacity
// ≤ 0 selects 4096 queued runs. Call Start before serving.
func New(eng *harness.Engine, workers, capacity int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if capacity <= 0 {
		capacity = 4096
	}
	s := &Server{eng: eng, workers: workers, capacity: capacity, sweeps: make(map[string]*sweepState)}
	s.cond = sync.NewCond(&s.mu)
	s.qs.Capacity = capacity
	s.qs.Workers = workers
	return s
}

// Engine returns the shared engine (for callers wiring checkpointers or
// oracles before Start).
func (s *Server) Engine() *harness.Engine { return s.eng }

// Start launches the worker pool. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close stops accepting sweeps, abandons queued runs, and waits for
// in-flight simulations to finish. Queued-but-unclaimed runs of live
// sweeps are reported as skipped so streams terminate cleanly.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	abandoned := s.queue
	s.queue = nil
	s.qs.Depth = 0
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, it := range abandoned {
		it.rec.Skipped = true
		it.finish(s)
	}
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) trace(ev stats.Event) {
	if s.Tracer != nil {
		s.Tracer.Emit(ev)
	}
}

// Handler returns the HTTP API:
//
//	POST   /v1/sweeps        submit a SweepSpec, stream NDJSON Records
//	DELETE /v1/sweeps/{id}   cancel a sweep's queued runs
//	GET    /v1/stats         StatsDoc (engine + queue telemetry)
//	GET    /healthz          liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeJSONError writes one terminal error Record with an HTTP status.
func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(Record{Type: "error", Schema: Schema, Error: fmt.Sprintf(format, args...)})
}

// statsEvery interleaves one telemetry record per this many run records.
const statsEvery = 16

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&spec); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	if spec.Schema != "" && spec.Schema != Schema {
		writeJSONError(w, http.StatusBadRequest, "schema %q not supported (want %q)", spec.Schema, Schema)
		return
	}
	p := s.eng.Params
	if spec.Scale > 0 {
		p.Scale = spec.Scale
	}
	items, err := expand(p, spec)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	if len(items) == 0 {
		writeJSONError(w, http.StatusBadRequest, "sweep expands to zero runs")
		return
	}

	sw, depth, retry := s.admit(items)
	if sw == nil {
		if retry < 0 {
			writeJSONError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
		// Backpressure: the queue cannot absorb this sweep. 429 with a
		// Retry-After derived from observed run wall time.
		s.trace(stats.Event{Kind: stats.EvSweepReject, N: uint64(depth)})
		s.logf("reject: %d runs over capacity (depth %d/%d), retry in %ds",
			len(items), depth, s.capacity, retry)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(Record{
			Type: "error", Schema: Schema,
			Error:         fmt.Sprintf("queue full: %d queued + %d requested > capacity %d", depth, len(items), s.capacity),
			QueueDepth:    depth,
			RetryAfterSec: retry,
		})
		return
	}
	s.logf("sweep %s: %d runs admitted (queue depth %d)", sw.id, len(items), depth)

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(Record{Type: "accepted", Schema: Schema, Sweep: sw.id, Runs: sw.total, QueueDepth: depth})
	flush()

	var completed, errors, skips int
	done := r.Context().Done()
	for {
		select {
		case rec, ok := <-sw.results:
			if !ok {
				st := s.eng.Stats().Export()
				qs := s.queueStats()
				enc.Encode(Record{
					Type: "done", Schema: Schema, Sweep: sw.id,
					Completed: completed, Errors: errors, Skips: skips,
					Cancelled: sw.cancelled.Load(),
					ElapsedMS: time.Since(sw.started).Milliseconds(),
					Engine:    &st, Queue: &qs,
				})
				flush()
				s.logf("sweep %s: done (%d completed, %d errors, %d skipped)", sw.id, completed, errors, skips)
				return
			}
			switch {
			case rec.Skipped:
				skips++
			case rec.Err != "":
				errors++
			default:
				completed++
			}
			rec.Sweep = sw.id
			enc.Encode(rec)
			if completed%statsEvery == 0 && completed > 0 && rec.Err == "" && !rec.Skipped {
				st := s.eng.Stats().Export()
				qs := s.queueStats()
				enc.Encode(Record{Type: "stats", Sweep: sw.id, Engine: &st, Queue: &qs})
			}
			flush()
		case <-done:
			// Client gone: cancel this sweep's queued runs, then keep
			// draining so the sweep retires and the stream goroutine
			// exits (writes to a departed client are discarded by
			// net/http). A nil channel blocks forever, so this case
			// fires once.
			done = nil
			sw.cancelled.Store(true)
			s.logf("sweep %s: client gone, cancelling queued runs", sw.id)
		}
	}
}

// admit enqueues a sweep's runs under the capacity bound. Returns the
// sweep (nil if refused), the queue depth observed, and — when refused —
// the suggested retry delay in seconds (−1 means the server is closed).
func (s *Server) admit(items []*runItem) (*sweepState, int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !s.started {
		return nil, 0, -1
	}
	if s.qs.Depth+len(items) > s.capacity {
		s.qs.Rejected++
		return nil, s.qs.Depth, s.retryAfterLocked()
	}
	s.nextID++
	sw := &sweepState{
		id:      fmt.Sprintf("s%06d", s.nextID),
		total:   len(items),
		started: time.Now(),
		results: make(chan Record, len(items)),
	}
	sw.pending.Store(int32(len(items)))
	s.sweeps[sw.id] = sw
	s.qs.ActiveSweeps = len(s.sweeps)
	now := time.Now()
	for _, it := range items {
		it.sw = sw
		it.rec.Sweep = sw.id
		it.enqueued = now
		s.seq++
		it.seq = s.seq
		heap.Push(&s.queue, it)
		s.qs.Depth++
		s.qs.Enqueued++
	}
	if s.qs.Depth > s.qs.Peak {
		s.qs.Peak = s.qs.Depth
	}
	s.trace(stats.Event{Kind: stats.EvSweepEnqueue, Level: sw.id, N: uint64(s.qs.Depth)})
	s.cond.Broadcast()
	return sw, s.qs.Depth, 0
}

// retryAfterLocked estimates seconds until meaningful queue headroom:
// observed mean simulation wall time × queued runs ÷ workers, clamped to
// [1s, 5min]. Callers hold s.mu.
func (s *Server) retryAfterLocked() int {
	st := s.eng.Stats()
	mean := 250 * time.Millisecond // prior before any run finishes
	if st.Misses > 0 {
		mean = st.SimWall / time.Duration(st.Misses)
	}
	est := mean * time.Duration(s.qs.Depth) / time.Duration(s.workers)
	sec := int(est / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > 300 {
		sec = 300
	}
	return sec
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sw := s.sweeps[id]
	s.mu.Unlock()
	if sw == nil {
		writeJSONError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	sw.cancelled.Store(true)
	w.Header().Set("Content-Type", "application/x-ndjson")
	json.NewEncoder(w).Encode(Record{Type: "done", Schema: Schema, Sweep: id, Cancelled: true})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	doc := StatsDoc{Schema: Schema, Engine: s.eng.Stats().Export(), Queue: s.queueStats()}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func (s *Server) queueStats() QueueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.qs
}

// worker pulls runs off the queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		it, ok := s.pop()
		if !ok {
			return
		}
		s.execute(it)
	}
}

func (s *Server) pop() (*runItem, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return nil, false
	}
	it := heap.Pop(&s.queue).(*runItem)
	s.qs.Depth--
	wait := time.Since(it.enqueued).Milliseconds()
	it.rec.QueueMS = wait
	s.qs.WaitMSTotal += wait
	if wait > s.qs.WaitMSMax {
		s.qs.WaitMSMax = wait
	}
	s.trace(stats.Event{Kind: stats.EvSweepDequeue, Level: it.sw.id, N: uint64(s.qs.Depth)})
	return it, true
}

// execute runs one item (or skips it if its sweep was cancelled) and
// delivers its record.
func (s *Server) execute(it *runItem) {
	if it.sw.cancelled.Load() {
		it.rec.Skipped = true
		it.finish(s)
		return
	}
	if len(it.mp) > 0 {
		s.executeMP(it)
		return
	}
	res, memoized, err := s.eng.RunTracked(it.spec, it.oracle)
	if err != nil {
		it.rec.Err = err.Error()
		it.finish(s)
		return
	}
	sim := res.Stats()
	it.rec.Cycles = sim.Cycles
	it.rec.Insts = sim.MainRetired
	it.rec.IPC = sim.IPC()
	it.rec.Mispredicts = sim.Mispredicts
	it.rec.LoadMisses = sim.LoadMisses
	it.rec.WallMS = res.Wall.Milliseconds()
	it.rec.Memoized = memoized
	it.finish(s)
}

// executeMP runs one co-scheduled item. These are never memoized (each
// is one whole simulation), so Memoized stays false and the record's
// flat counters report the cross-program aggregate with the per-program
// breakdown alongside.
func (s *Server) executeMP(it *runItem) {
	res, err := s.eng.RunMP(it.mp, it.rec.WithSlices, it.oracle, it.mpWarm, it.mpRun)
	if err != nil {
		it.rec.Err = err.Error()
		it.finish(s)
		return
	}
	// Snapshot.Sim is program 0's view; the record's flat counters are the
	// cross-program aggregate, summed here over the per-program sections.
	// Cycles are wall cycles (every program's counter ticks every cycle),
	// so the aggregate IPC is total retirement per wall cycle: throughput.
	for i, w := range it.mp {
		ps := &res.Snap.Progs[i]
		it.rec.Insts += ps.MainRetired
		it.rec.Mispredicts += ps.Mispredicts
		it.rec.LoadMisses += ps.LoadMisses
		it.rec.Programs = append(it.rec.Programs, ProgRecord{
			Workload:    w.Name,
			Insts:       ps.MainRetired,
			IPC:         ps.IPC(),
			Mispredicts: ps.Mispredicts,
			LoadMisses:  ps.LoadMisses,
		})
	}
	it.rec.Cycles = res.Snap.Progs[0].Cycles
	if it.rec.Cycles > 0 {
		it.rec.IPC = float64(it.rec.Insts) / float64(it.rec.Cycles)
	}
	it.rec.WallMS = res.Wall.Milliseconds()
	it.finish(s)
}

// finish delivers the record and retires the run from its sweep,
// closing the stream after the last one.
func (it *runItem) finish(s *Server) {
	sw := it.sw
	sw.results <- it.rec
	s.mu.Lock()
	if it.rec.Skipped {
		s.qs.Skipped++
	} else {
		s.qs.Completed++
	}
	s.mu.Unlock()
	if sw.pending.Add(-1) == 0 {
		close(sw.results)
		s.mu.Lock()
		delete(s.sweeps, sw.id)
		s.qs.ActiveSweeps = len(s.sweeps)
		s.mu.Unlock()
	}
}
