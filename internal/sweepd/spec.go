// Package sweepd is the sharded sweep service: a long-running HTTP server
// that accepts sweep specs (workload × config grids), expands them into
// the harness's canonical RunSpecs, schedules them on a bounded
// priority-queued worker pool, and streams per-run results and engine
// telemetry back as NDJSON. All sweeps share one harness.Engine — one
// memo, one warm-checkpoint cache — so N clients submitting overlapping
// grids cost one simulation per unique run, and a shared -checkpoint-dir
// extends that economy across server restarts and across a fleet of
// servers (cross-process single-flight; see internal/harness/store.go).
package sweepd

import (
	"fmt"
	"strings"

	"repro/internal/bpred"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/workloads"
)

// Schema versions the sweep API: request bodies and every NDJSON record
// carry it. Bump on any incompatible change; additive fields ride on the
// same tag like the specslice-experiments document does.
const Schema = "specslice-sweep/1"

// SweepSpec is one submitted sweep: the cross product of Workloads and
// Configs. Empty Workloads means every registered workload; empty Configs
// means one baseline 4-wide leg.
type SweepSpec struct {
	// Schema, when set, must equal Schema; empty is accepted as current.
	Schema string `json:"schema,omitempty"`
	// Workloads lists workload names (workloads.ByName); empty = all —
	// unless CoSchedules is set, in which case empty means none (a
	// co-schedule-only sweep does not implicitly drag in every
	// single-program run).
	Workloads []string `json:"workloads,omitempty"`
	// CoSchedules lists multi-programmed runs: each entry is 2–4 workload
	// names co-scheduled on one core (harness.RunMP). Co-schedules cross
	// with Configs like Workloads do, but run only on the default 4-wide
	// machine — a leg with Width 8, a predictor override, or
	// SlicePredictionsOff rejects the sweep. Co-scheduled runs are whole
	// simulations every time: never memoized, never checkpointed.
	CoSchedules [][]string `json:"coSchedules,omitempty"`
	// Configs lists machine legs; empty = one default leg.
	Configs []ConfigSpec `json:"configs,omitempty"`
	// Scale overrides the server's region scale for this sweep (0 = server
	// default). Runs at different scales never share simulations.
	Scale float64 `json:"scale,omitempty"`
	// Priority orders sweeps in the queue: higher first, FIFO within a
	// priority level.
	Priority int `json:"priority,omitempty"`
	// Oracle forces the differential oracle onto every run of this sweep
	// (already-memoized runs are recalled as-is; see Engine.RunValidated).
	Oracle bool `json:"oracle,omitempty"`
}

// ConfigSpec is one machine leg of a sweep, the JSON-friendly projection
// of cpu.Config the API exposes. The zero value is the paper's baseline
// 4-wide machine.
type ConfigSpec struct {
	// Label is echoed on result records; empty derives one ("4-wide",
	// "8-wide+slices", ...). It does not affect the simulation or its
	// memo key.
	Label string `json:"label,omitempty"`
	// Width selects the machine: 4 (default) or 8.
	Width int `json:"width,omitempty"`
	// WithSlices measures with the workload's hand-built slices.
	WithSlices bool `json:"withSlices,omitempty"`
	// SlicePredictionsOff disables PGI allocation (prefetch-only slices).
	SlicePredictionsOff bool `json:"slicePredictionsOff,omitempty"`
	// BPred / IPred override the direction / indirect predictor (registry
	// spec, e.g. "gshare:4096,10"); empty keeps the server default.
	BPred string `json:"bpred,omitempty"`
	IPred string `json:"ipred,omitempty"`
}

// resolve maps the leg onto a cpu.Config. The driver-built names
// ("4-wide", "8-wide") are preserved — Config.Name is part of the memo
// fingerprint, so renaming would needlessly split cache entries.
func (c ConfigSpec) resolve() (cpu.Config, error) {
	var cfg cpu.Config
	switch c.Width {
	case 0, 4:
		cfg = cpu.Config4Wide()
	case 8:
		cfg = cpu.Config8Wide()
	default:
		return cfg, fmt.Errorf("width %d: want 4 or 8", c.Width)
	}
	if _, err := bpred.NewDir(c.BPred); err != nil {
		return cfg, err
	}
	if _, err := bpred.NewIndirect(c.IPred); err != nil {
		return cfg, err
	}
	cfg.BPred = c.BPred
	cfg.IndirectPred = c.IPred
	cfg.SlicePredictionsOff = c.SlicePredictionsOff
	return cfg, nil
}

// label derives the echoed config label.
func (c ConfigSpec) label() string {
	if c.Label != "" {
		return c.Label
	}
	width := 4
	if c.Width != 0 {
		width = c.Width
	}
	l := fmt.Sprintf("%d-wide", width)
	if c.WithSlices {
		l += "+slices"
	}
	if c.SlicePredictionsOff {
		l += "+nopred"
	}
	if c.BPred != "" {
		l += "+bpred=" + c.BPred
	}
	if c.IPred != "" {
		l += "+ipred=" + c.IPred
	}
	return l
}

// expand turns a sweep into scheduled runs under the engine params p
// (already adjusted for the sweep's Scale). Every RunSpec goes through
// harness.SpecFor, so it carries the same memo key the experiment drivers
// would build for the identical leg.
func expand(p harness.Params, spec SweepSpec) ([]*runItem, error) {
	var ws []*workloads.Workload
	if len(spec.Workloads) == 0 && len(spec.CoSchedules) == 0 {
		ws = workloads.All()
	} else {
		for _, name := range spec.Workloads {
			w, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			ws = append(ws, w)
		}
	}
	cfgs := spec.Configs
	if len(cfgs) == 0 {
		cfgs = []ConfigSpec{{}}
	}
	// Resolve and bounds-check the co-schedule groups once, before the
	// config cross product.
	var groups [][]*workloads.Workload
	for _, names := range spec.CoSchedules {
		if len(names) < 2 || len(names) > cpu.MaxPrograms {
			return nil, fmt.Errorf("co-schedule %v: want 2..%d workloads", names, cpu.MaxPrograms)
		}
		var g []*workloads.Workload
		for _, name := range names {
			w, err := workloads.ByName(name)
			if err != nil {
				return nil, fmt.Errorf("co-schedule %v: %w", names, err)
			}
			g = append(g, w)
		}
		groups = append(groups, g)
	}
	var items []*runItem
	seq := 0
	for _, c := range cfgs {
		cfg, err := c.resolve()
		if err != nil {
			return nil, fmt.Errorf("config %q: %w", c.label(), err)
		}
		for _, w := range ws {
			rs := harness.SpecFor(p, w, cfg, c.WithSlices)
			items = append(items, &runItem{
				spec:     rs,
				oracle:   spec.Oracle,
				priority: spec.Priority,
				rec: Record{
					Type:       "run",
					Seq:        seq,
					Workload:   w.Name,
					Config:     c.label(),
					WithSlices: c.WithSlices,
					Warm:       rs.Warm,
					Run:        rs.Run,
				},
			})
			seq++
		}
		if len(groups) > 0 && (c.Width == 8 || c.SlicePredictionsOff || c.BPred != "" || c.IPred != "") {
			return nil, fmt.Errorf("config %q: co-schedules run only on the default 4-wide machine", c.label())
		}
		for gi, g := range groups {
			warm, run := harness.MPRegions(p, g)
			items = append(items, &runItem{
				mp:       g,
				mpWarm:   warm,
				mpRun:    run,
				oracle:   spec.Oracle,
				priority: spec.Priority,
				rec: Record{
					Type:       "run",
					Seq:        seq,
					Workload:   mpName(spec.CoSchedules[gi]),
					Config:     c.label(),
					WithSlices: c.WithSlices,
					Warm:       warm,
					Run:        run,
				},
			})
			seq++
		}
	}
	return items, nil
}

// mpName is the co-schedule's record label, "vpr+mcf" style — the same
// schedule name the figureMP rows use.
func mpName(names []string) string {
	return strings.Join(names, "+")
}

// Record is one NDJSON line of a sweep response stream. Type selects the
// populated fields:
//
//	accepted  sweep admitted: Sweep, Runs, QueueDepth
//	run       one finished simulation: identity, counters, provenance
//	stats     periodic telemetry: Engine (the specslice-experiments
//	          engine block), Queue
//	done      terminal: totals plus a final Engine/Queue snapshot
//	error     terminal failure before/while streaming
type Record struct {
	Type   string `json:"type"`
	Schema string `json:"schema,omitempty"` // stamped on accepted/done/error
	Sweep  string `json:"sweep,omitempty"`

	// accepted.
	Runs       int `json:"runs,omitempty"`
	QueueDepth int `json:"queueDepth,omitempty"`

	// run identity (prefilled at expansion).
	Seq        int    `json:"seq,omitempty"`
	Workload   string `json:"workload,omitempty"`
	Config     string `json:"config,omitempty"`
	WithSlices bool   `json:"withSlices,omitempty"`
	Warm       uint64 `json:"warm,omitempty"`
	Run        uint64 `json:"run,omitempty"`

	// run results. On co-scheduled runs the flat counters are the
	// cross-program aggregate (IPC is throughput: total retirement per
	// wall cycle) and Programs carries the per-program breakdown in slot
	// order. Additive on specslice-sweep/1: single-program records omit it.
	Cycles      uint64       `json:"cycles,omitempty"`
	Insts       uint64       `json:"insts,omitempty"`
	IPC         float64      `json:"ipc,omitempty"`
	Mispredicts uint64       `json:"mispredicts,omitempty"`
	LoadMisses  uint64       `json:"loadMisses,omitempty"`
	Programs    []ProgRecord `json:"programs,omitempty"`

	// run provenance.
	WallMS     int64  `json:"wallMs,omitempty"`
	QueueMS    int64  `json:"queueMs,omitempty"`
	Memoized   bool   `json:"memoized,omitempty"`
	WarmSource string `json:"warmSource,omitempty"`
	Skipped    bool   `json:"skipped,omitempty"` // sweep was cancelled first
	Err        string `json:"err,omitempty"`

	// stats / done.
	Engine    *harness.ExportEngine `json:"engine,omitempty"`
	Queue     *QueueStats           `json:"queue,omitempty"`
	Completed int                   `json:"completed,omitempty"`
	Errors    int                   `json:"errors,omitempty"`
	Skips     int                   `json:"skips,omitempty"`
	Cancelled bool                  `json:"cancelled,omitempty"`
	ElapsedMS int64                 `json:"elapsedMs,omitempty"`

	// error.
	Error         string `json:"error,omitempty"`
	RetryAfterSec int    `json:"retryAfterSec,omitempty"`
}

// ProgRecord is one program's slice of a co-scheduled run record. Its
// cycles are the run's wall cycles (every program's counter ticks every
// cycle), so IPC here is directly comparable with the program's
// single-program records.
type ProgRecord struct {
	Workload    string  `json:"workload"`
	Insts       uint64  `json:"insts"`
	IPC         float64 `json:"ipc"`
	Mispredicts uint64  `json:"mispredicts,omitempty"`
	LoadMisses  uint64  `json:"loadMisses,omitempty"`
}

// StatsDoc is the GET /v1/stats document.
type StatsDoc struct {
	Schema string               `json:"schema"`
	Engine harness.ExportEngine `json:"engine"`
	Queue  QueueStats           `json:"queue"`
}

// QueueStats is the scheduler's observability block.
type QueueStats struct {
	// Depth is runs currently queued (not yet claimed by a worker); Peak
	// is the high-water mark.
	Depth int `json:"depth"`
	Peak  int `json:"peak"`
	// Capacity and Workers echo the server's bounds.
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
	// Enqueued/Completed/Skipped count runs; Rejected counts whole sweeps
	// refused with 429 (backpressure).
	Enqueued  uint64 `json:"enqueued"`
	Completed uint64 `json:"completed"`
	Skipped   uint64 `json:"skipped"`
	Rejected  uint64 `json:"rejected"`
	// ActiveSweeps is sweeps with unfinished runs.
	ActiveSweeps int `json:"activeSweeps"`
	// Queue latency: total and max milliseconds runs spent queued.
	WaitMSTotal int64 `json:"waitMsTotal"`
	WaitMSMax   int64 `json:"waitMsMax"`
}
