package stats

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Snapshot aggregates every counter the simulated machine exposes — the
// whole-run Sim counters, the memory hierarchy, each cache, the prefetch
// buffer, the baseline predictors, and the slice correlator — into one
// value with uniform Reset/Merge/Delta semantics. It is the unit of
// machine-readable export: cmd/slicesim -json encodes one Snapshot, and
// harness rows derive from it rather than poking component structs.
type Snapshot struct {
	Sim   Sim
	Hier  HierStats
	L1D   CacheStats
	L1I   CacheStats
	L2    CacheStats
	PVB   CacheStats
	Bpred BpredStats
	Corr  CorrStats
	// Progs holds per-program whole-run counters for multi-programmed
	// cores, slot-aligned with the program specs. Nil on single-program
	// cores, so their serialized form is unchanged. Sim is always program
	// 0's view (c.S aliases progs[0].S); consumers wanting cross-program
	// aggregates sum over Progs themselves.
	Progs []Sim `json:",omitempty"`
}

// Reset zeroes every counter in the snapshot.
func (s *Snapshot) Reset() { Zero(s) }

// Merge accumulates other into s field-wise (s += other).
func (s *Snapshot) Merge(other *Snapshot) { Add(s, other) }

// Delta returns a copy of s with since subtracted — the counters
// accumulated between the two snapshots of one run.
func (s *Snapshot) Delta(since *Snapshot) Snapshot {
	d := s.Clone()
	Sub(&d, since)
	return d
}

// Clone returns an independent deep copy (the Sim.Static map is not
// shared).
func (s *Snapshot) Clone() Snapshot {
	return deepCopyValue(reflect.ValueOf(*s)).Interface().(Snapshot)
}

// Clone returns an independent deep copy of the whole-run counters.
func (s *Sim) Clone() *Sim {
	cp := deepCopyValue(reflect.ValueOf(*s)).Interface().(Sim)
	if cp.Static == nil {
		cp.Static = make(map[uint64]*Static)
	}
	return &cp
}

// Component is one live counter struct registered with a Registry: Ptr
// points into the owning hardware model, and Field names the Snapshot
// field (dotted for nesting, e.g. "Bpred.YAGS") it exports to.
type Component struct {
	Field string
	Ptr   any
}

// Registry maps the live counter structs of one simulated core onto
// Snapshot fields. Registering a component once gives it Reset and export
// for free: Registry.Reset zeroes the component in place, and
// Registry.Snapshot deep-copies it into the Snapshot field it names.
// Any counter field later added to a registered struct is picked up
// automatically — there is no hand-maintained reset list to forget.
type Registry struct {
	components []Component
}

// Register adds a live counter struct under the named Snapshot field.
// It panics unless field resolves to a Snapshot field whose type matches
// *ptr — catching typos and type drift at construction, not export, time.
func (r *Registry) Register(field string, ptr any) {
	v := reflect.ValueOf(ptr)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		panic(fmt.Sprintf("stats.Registry: component %q must be a non-nil pointer, got %T", field, ptr))
	}
	fv, err := snapshotField(reflect.ValueOf(&Snapshot{}).Elem(), field)
	if err != nil {
		panic(fmt.Sprintf("stats.Registry: %v", err))
	}
	if fv.Type() != v.Elem().Type() {
		panic(fmt.Sprintf("stats.Registry: component %q is %s, Snapshot field wants %s",
			field, v.Elem().Type(), fv.Type()))
	}
	for _, c := range r.components {
		if c.Field == field {
			panic(fmt.Sprintf("stats.Registry: field %q registered twice", field))
		}
	}
	r.components = append(r.components, Component{Field: field, Ptr: ptr})
}

// Components returns the registered components sorted by field name.
func (r *Registry) Components() []Component {
	out := append([]Component(nil), r.components...)
	sort.Slice(out, func(i, j int) bool { return out[i].Field < out[j].Field })
	return out
}

// Reset zeroes every registered component in place.
func (r *Registry) Reset() {
	for _, c := range r.components {
		Zero(c.Ptr)
	}
}

// Snapshot deep-copies every registered component into the Snapshot
// field it was registered under and returns the result. Unregistered
// fields stay zero.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	sv := reflect.ValueOf(&snap).Elem()
	for _, c := range r.components {
		fv, err := snapshotField(sv, c.Field)
		if err != nil {
			panic(fmt.Sprintf("stats.Registry: %v", err)) // unreachable: Register validated
		}
		fv.Set(deepCopyValue(reflect.ValueOf(c.Ptr).Elem()))
	}
	return snap
}

func snapshotField(sv reflect.Value, field string) (reflect.Value, error) {
	v := sv
	for _, name := range strings.Split(field, ".") {
		if v.Kind() != reflect.Struct {
			return reflect.Value{}, fmt.Errorf("field path %q descends into non-struct %s", field, v.Type())
		}
		f := v.FieldByName(name)
		if !f.IsValid() {
			return reflect.Value{}, fmt.Errorf("Snapshot has no field %q (path %q)", name, field)
		}
		v = f
	}
	return v, nil
}
