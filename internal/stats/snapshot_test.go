package stats

import (
	"reflect"
	"testing"
)

func sampleSnapshot() *Snapshot {
	s := &Snapshot{}
	s.Sim = *New()
	s.Sim.Cycles = 100
	s.Sim.MainRetired = 50
	s.Sim.Mispredicts = 7
	s.Sim.ByPC(0x40).Execs = 9
	s.Sim.ByPC(0x40).Mispredicts = 3
	s.Sim.ByPC(0x40).IsBranch = true
	s.Hier.DemandLoads = 20
	s.L1D = CacheStats{Accesses: 30, Hits: 25, Misses: 5}
	s.PVB.Evictions = 2
	s.Bpred.YAGS.Lookups = 40
	s.Bpred.RAS.Underflows = 1
	s.Corr.Generated = 12
	return s
}

func TestZeroClearsEveryCounter(t *testing.T) {
	s := sampleSnapshot()
	s.Reset()
	ForEachCounter(s, func(path string, v reflect.Value) {
		if !v.IsZero() {
			t.Errorf("%s survived Reset: %v", path, v.Interface())
		}
	})
	if len(s.Sim.Static) != 0 {
		t.Errorf("Static map survived Reset with %d entries", len(s.Sim.Static))
	}
	if s.Sim.Static == nil {
		t.Error("Reset nil'd the Static map instead of clearing it")
	}
}

func TestMergeAccumulates(t *testing.T) {
	a, b := sampleSnapshot(), sampleSnapshot()
	a.Merge(b)
	if a.Sim.Cycles != 200 || a.L1D.Hits != 50 || a.Corr.Generated != 24 {
		t.Errorf("Merge did not double counters: cycles=%d l1dHits=%d gen=%d",
			a.Sim.Cycles, a.L1D.Hits, a.Corr.Generated)
	}
	st := a.Sim.Static[0x40]
	if st.Execs != 18 || st.Mispredicts != 6 {
		t.Errorf("Merge did not sum per-PC counters: %+v", st)
	}
	if st.PC != 0x40 {
		t.Errorf("Merge corrupted the PC identity field: %#x", st.PC)
	}
	if !st.IsBranch {
		t.Error("Merge dropped the IsBranch identity field")
	}
	// The source must be untouched, including its map entries.
	if b.Sim.Static[0x40].Execs != 9 {
		t.Errorf("Merge mutated its source: %+v", b.Sim.Static[0x40])
	}
}

func TestMergeDeepCopiesMissingEntries(t *testing.T) {
	a := &Snapshot{Sim: *New()}
	b := sampleSnapshot()
	a.Merge(b)
	a.Sim.Static[0x40].Execs = 999
	if b.Sim.Static[0x40].Execs != 9 {
		t.Error("Merge aliased a map entry between snapshots")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	before := sampleSnapshot()
	after := before.Clone()
	after.Sim.Cycles += 11
	after.Sim.ByPC(0x40).Execs += 4
	after.Sim.ByPC(0x80).Execs = 2 // PC seen only after `before`
	after.Bpred.YAGS.Lookups += 5

	d := after.Delta(before)
	if d.Sim.Cycles != 11 || d.Bpred.YAGS.Lookups != 5 {
		t.Errorf("Delta wrong: cycles=%d lookups=%d", d.Sim.Cycles, d.Bpred.YAGS.Lookups)
	}
	if got := d.Sim.Static[0x40].Execs; got != 4 {
		t.Errorf("per-PC delta = %d, want 4", got)
	}
	if got := d.Sim.Static[0x40].PC; got != 0x40 {
		t.Errorf("Delta destroyed the PC identity field: %#x", got)
	}
	if got := d.Sim.Static[0x80].Execs; got != 2 {
		t.Errorf("new-PC delta = %d, want 2", got)
	}
	// Delta + before must reproduce after.
	sum := before.Clone()
	sum.Merge(&d)
	if sum.Sim.Cycles != after.Sim.Cycles || sum.Sim.Static[0x40].Execs != after.Sim.Static[0x40].Execs {
		t.Errorf("before+delta != after: %d vs %d", sum.Sim.Cycles, after.Sim.Cycles)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := sampleSnapshot()
	b := a.Clone()
	b.Sim.Cycles = 1
	b.Sim.Static[0x40].Execs = 1
	if a.Sim.Cycles != 100 || a.Sim.Static[0x40].Execs != 9 {
		t.Error("Clone shares state with its source")
	}
}

func TestSimClone(t *testing.T) {
	s := New()
	s.ByPC(0x10).Execs = 5
	cp := s.Clone()
	cp.ByPC(0x10).Execs = 50
	if s.Static[0x10].Execs != 5 {
		t.Error("Sim.Clone shares the Static map")
	}
}

func TestRegistryResetAndSnapshot(t *testing.T) {
	var r Registry
	sim := New()
	sim.Cycles = 42
	l1d := &CacheStats{Hits: 10}
	yags := &YAGSStats{Lookups: 3}
	r.Register("Sim", sim)
	r.Register("L1D", l1d)
	r.Register("Bpred.YAGS", yags)

	snap := r.Snapshot()
	if snap.Sim.Cycles != 42 || snap.L1D.Hits != 10 || snap.Bpred.YAGS.Lookups != 3 {
		t.Errorf("Snapshot missed a component: %+v", snap)
	}
	// The snapshot is a deep copy, not a view.
	sim.Cycles = 1000
	if snap.Sim.Cycles != 42 {
		t.Error("Registry.Snapshot aliased a live component")
	}

	r.Reset()
	if sim.Cycles != 0 || l1d.Hits != 0 || yags.Lookups != 0 {
		t.Errorf("Registry.Reset missed a component: %d %d %d", sim.Cycles, l1d.Hits, yags.Lookups)
	}
}

func TestRegistryValidation(t *testing.T) {
	cases := []struct {
		name  string
		field string
		ptr   any
	}{
		{"unknown field", "NoSuchField", &CacheStats{}},
		{"nested unknown", "Bpred.NoSuch", &YAGSStats{}},
		{"type mismatch", "L1D", &HierStats{}},
		{"non-pointer", "L1D", CacheStats{}},
		{"nil pointer", "L1D", (*CacheStats)(nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q, %T) did not panic", tc.field, tc.ptr)
				}
			}()
			var r Registry
			r.Register(tc.field, tc.ptr)
		})
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	var r Registry
	r.Register("L1D", &CacheStats{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	r.Register("L1D", &CacheStats{})
}

// TestSnapshotResetCompleteness is the reflection-walk guard the issue
// asks for: every numeric field of every Snapshot component — including
// ones added after this test was written — must be zeroed by Reset. The
// sample is built by setting every counter to a nonzero value via the
// same walk, so a new field cannot dodge the check.
func TestSnapshotResetCompleteness(t *testing.T) {
	s := &Snapshot{Sim: *New()}
	n := 0
	ForEachCounter(s, func(path string, v reflect.Value) {
		n++
		switch v.Kind() {
		case reflect.Float32, reflect.Float64:
			v.SetFloat(1)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			v.SetInt(1)
		default:
			v.SetUint(1)
		}
	})
	if n < 50 {
		t.Fatalf("walk found only %d counters; Snapshot should have many more", n)
	}
	s.Reset()
	ForEachCounter(s, func(path string, v reflect.Value) {
		if !v.IsZero() {
			t.Errorf("counter %s survived Snapshot.Reset", path)
		}
	})
}
