package stats

import "testing"

func TestRates(t *testing.T) {
	s := New()
	if s.IPC() != 0 || s.MispredictRate() != 0 || s.LoadMissRate() != 0 {
		t.Error("zero-value rates must be 0, not NaN")
	}
	s.Cycles = 1000
	s.MainRetired = 2500
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v", got)
	}
	s.Branches, s.Mispredicts = 200, 30
	if got := s.MispredictRate(); got != 0.15 {
		t.Errorf("mispredict rate = %v", got)
	}
	s.Loads, s.LoadMisses = 400, 100
	if got := s.LoadMissRate(); got != 0.25 {
		t.Errorf("load miss rate = %v", got)
	}
}

func TestByPCAllocatesOnce(t *testing.T) {
	s := New()
	a := s.ByPC(0x1000)
	a.Execs = 7
	if b := s.ByPC(0x1000); b != a || b.Execs != 7 {
		t.Error("ByPC must return the same record")
	}
	if len(s.Static) != 1 {
		t.Errorf("static map size %d", len(s.Static))
	}
}

func TestStaticRates(t *testing.T) {
	st := &Static{}
	if st.MissRate() != 0 || st.MispredictRate() != 0 {
		t.Error("zero-exec rates must be 0")
	}
	st.Execs, st.Misses, st.Mispredicts = 100, 25, 10
	if st.MissRate() != 0.25 {
		t.Errorf("miss rate = %v", st.MissRate())
	}
	if st.MispredictRate() != 0.10 {
		t.Errorf("mispredict rate = %v", st.MispredictRate())
	}
}
