package stats

// This file defines the counter structs for every instrumented component
// of the simulated machine. They live here — not in the packages whose
// hardware bumps them — so the telemetry layer (Snapshot, Registry,
// Tracer) can aggregate all of them without import cycles: stats is a
// leaf package that cache, bpred, slicehw, and cpu all import. The owning
// packages keep type aliases (cache.Stats, cache.HierStats,
// slicehw.CorrStats) so existing call sites read unchanged.

// CacheStats counts events for one cache or buffer (L1D, L1I, L2, or the
// prefetch/victim buffer; for the PVB, Hits/Misses count Extract probes).
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// HierStats aggregates hierarchy-wide counters.
type HierStats struct {
	DemandLoads      uint64
	DemandLoadMisses uint64 // L1 misses seen by demand loads (incl. PVB hits)
	DemandStalls     uint64 // demand accesses with latency above L1 hit
	HelperAccesses   uint64
	HelperMisses     uint64 // helper accesses that initiated a fill
	PrefetchIssued   uint64 // hardware prefetches actually launched
	PrefetchUseful   uint64
	HelperCovered    uint64
	WriteBufFull     uint64
	Writebacks       uint64 // dirty lines pushed toward memory
	ICMisses         uint64
}

// CorrStats counts correlator events for Table 4.
type CorrStats struct {
	Generated     uint64 // predictions allocated (PGI fetches)
	Filled        uint64
	Overrides     uint64 // branch fetches that used a Full prediction
	LateMatches   uint64 // branch fetches that matched an Empty entry
	LateMismatch  uint64 // late fills disagreeing with the used direction
	LoopKills     uint64
	SliceKills    uint64
	KillNoTarget  uint64 // kill fetched with nothing to kill
	QueueFull     uint64 // allocation dropped
	UndoneKills   uint64
	UndoneUses    uint64
	UndoneAllocs  uint64
	InstanceDrops uint64 // instances removed by fork squash
}

// YAGSStats counts direction-predictor events: which structure supplied
// each prediction and how the tagged direction caches behave.
type YAGSStats struct {
	Kind           string `stats:"id"` // registry name of the predictor
	Lookups        uint64 // direction predictions requested
	ChoiceUsed     uint64 // the bias (choice) table supplied the prediction
	CacheHits      uint64 // a tagged direction-cache entry supplied it
	CacheAliased   uint64 // consulted slot held a different branch's entry
	Allocs         uint64 // exception entries allocated at update
	AllocEvictions uint64 // allocations that displaced a live entry
}

// IndirectStats counts cascading indirect-predictor events.
type IndirectStats struct {
	Kind          string `stats:"id"` // registry name of the predictor
	Lookups       uint64 // target predictions requested
	Stage2Hits    uint64 // tagged history-indexed entry supplied the target
	Stage2Aliased uint64 // stage-2 slot held a different branch's entry
	Stage1Used    uint64 // fell back to the per-branch last target
	NoTarget      uint64 // cold lookup: no prediction available
	Allocs        uint64 // stage-2 allocations (trained stage 1 missed)
}

// RASStats counts return-address-stack traffic. Pushes and pops are
// speculative (they happen at fetch and are repaired by checkpoints), so
// the counters tally fetch-path events, not retired ones.
type RASStats struct {
	Pushes     uint64
	Pops       uint64
	Overflows  uint64 // pushes that wrapped over a live entry
	Underflows uint64 // pops from a logically empty stack
}

// DirStats counts events for the single-table direction baselines
// (bimodal, gshare).
type DirStats struct {
	Kind         string `stats:"id"` // registry name of the predictor
	Lookups      uint64 // direction predictions requested
	UpdateMisses uint64 // updates where the table disagreed with the outcome
}

// ValuePredStats counts value-predictor events: how often the value path
// was confident enough to supply the direction.
type ValuePredStats struct {
	Kind         string `stats:"id"` // registry name of the predictor
	Lookups      uint64 // direction predictions requested
	ValueUsed    uint64 // a confident predicted value supplied the direction
	FallbackUsed uint64 // the bimodal outcome table supplied it
	Allocs       uint64 // tracked-branch entries allocated (evictions included)
}

// CorrMineStats counts correlation-mining predictor events: how often a
// mined history position supplied the direction.
type CorrMineStats struct {
	Kind      string `stats:"id"` // registry name of the predictor
	Lookups   uint64 // direction predictions requested
	MinedUsed uint64 // a trusted correlated position supplied the direction
	BiasUsed  uint64 // the per-branch bias supplied it
	Cold      uint64 // untracked branch: static default
	Allocs    uint64 // entries allocated (evictions included)
}

// PerfectStats counts perfect-upper-bound predictor events.
type PerfectStats struct {
	Kind         string `stats:"id"` // registry name of the predictor
	Lookups      uint64 // direction predictions requested
	Covered      uint64 // covered branch: actual outcome supplied
	FallbackUsed uint64 // uncovered branch: internal YAGS supplied it
}

// BpredStats groups the front-end predictors' counters. Exactly one
// direction-predictor section is live per run — the one the selected
// predictor registered through its Counters() method.
type BpredStats struct {
	YAGS     YAGSStats // default YAGS direction predictor
	Dir      DirStats  // bimodal/gshare baselines
	Value    ValuePredStats
	CorrMine CorrMineStats
	Perfect  PerfectStats
	Indirect IndirectStats
	RAS      RASStats // the main thread's stack
}
