package stats

import (
	"encoding/json"
	"fmt"
	"io"
)

// EventKind labels one structured trace event. The set covers the
// telemetry the paper's mechanisms generate: slice forking, prediction
// lifecycle in the correlator, cache fills and coverage, and pipeline
// stalls. String values are stable — they are the JSONL wire format.
type EventKind string

const (
	// Slice forking (cpu).
	EvFork        EventKind = "fork"         // helper thread spawned for a slice
	EvForkGated   EventKind = "fork-gated"   // fork suppressed by the confidence gate
	EvForkIgnored EventKind = "fork-ignored" // fork dropped (no context / duplicate)
	EvForkSquash  EventKind = "fork-squash"  // helper killed by a main-thread squash

	// Prediction lifecycle (slicehw correlator).
	EvInstance     EventKind = "instance"      // correlator began tracking a slice instance
	EvInstanceDrop EventKind = "instance-drop" // instance removed by fork squash
	EvPredAlloc    EventKind = "pred-alloc"    // prediction entry allocated (PGI fetched)
	EvPredGenerate EventKind = "pred-generate" // helper PGI filled a prediction
	EvPredBind     EventKind = "pred-bind"     // branch fetch consumed a prediction
	EvOverride     EventKind = "override"      // bound prediction overrode the base predictor
	EvPredKill     EventKind = "pred-kill"     // kill instruction retired (Level: loop|slice)
	EvKillSkip     EventKind = "kill-skip"     // kill fetched with nothing to kill
	EvUndoAlloc    EventKind = "undo-alloc"    // squash rolled back an allocation
	EvUndoBind     EventKind = "undo-bind"     // squash rolled back a binding
	EvUndoKill     EventKind = "undo-kill"     // squash rolled back a kill

	// Pipeline (cpu).
	EvEarlyResolve EventKind = "early-resolution" // late prediction redirected fetch
	EvSquash       EventKind = "squash"           // main-thread squash (N: insts discarded)
	EvRetireStall  EventKind = "retire-stall"     // retire blocked by the write buffer

	// Memory hierarchy (cache).
	EvCacheFill  EventKind = "cache-fill"  // line fill initiated (Level: l1d|l1i|l2|pvb)
	EvCacheCover EventKind = "cache-cover" // demand access served by a helper-fetched line

	// Differential oracle (oracle).
	EvOracleDiverge   EventKind = "oracle-diverge"   // retired stream diverged from the functional model (N: retired index)
	EvOracleInvariant EventKind = "oracle-invariant" // structural invariant violated (N: retired index)

	// Checkpoint store coordination (harness). These carry no Cycle: they
	// happen between simulations. Level names the store entry or lock.
	EvCkptSingleflightWait EventKind = "ckpt-singleflight-wait" // waiting on a peer process's warm build
	EvCkptLeaseTakeover    EventKind = "ckpt-lease-takeover"    // stale lease stolen from a dead holder
	EvCkptEvict            EventKind = "ckpt-evict"             // store entry evicted by the LRU GC (N: bytes)

	// Sweep service queue (sweepd). Level names the sweep; N is the queue
	// depth after the event.
	EvSweepEnqueue EventKind = "sweep-enqueue" // run accepted into the priority queue
	EvSweepDequeue EventKind = "sweep-dequeue" // run claimed by a worker
	EvSweepReject  EventKind = "sweep-reject"  // sweep refused: queue full (backpressure)
)

// Event is one structured telemetry event. Zero-valued fields are
// omitted on the wire, so each kind carries only the fields it uses.
type Event struct {
	Cycle uint64    `json:"cyc"`
	Kind  EventKind `json:"ev"`
	PC    uint64    `json:"pc,omitempty"`    // instruction that caused the event
	Addr  uint64    `json:"addr,omitempty"`  // memory address / branch target
	Slice int       `json:"slice,omitempty"` // slice id (correlator events)
	Inst  int       `json:"inst,omitempty"`  // slice instance number
	Dir   string    `json:"dir,omitempty"`   // branch direction, or fill requester ("helper"|"hw")
	Level string    `json:"level,omitempty"` // cache level, cover agent, or kill scope
	N     uint64    `json:"n,omitempty"`     // event-specific count
}

// Tracer receives structured telemetry events. Implementations must be
// cheap when idle: hot paths guard Emit behind a nil check, so a nil
// Tracer is the off switch.
type Tracer interface {
	Emit(Event)
}

// FuncTracer adapts a function to the Tracer interface.
type FuncTracer func(Event)

// Emit calls the wrapped function.
func (f FuncTracer) Emit(e Event) { f(e) }

// JSONLTracer writes one JSON object per event, newline-delimited —
// greppable, streamable, and decodable back into Event (see the
// round-trip test).
type JSONLTracer struct {
	enc *json.Encoder
	err error
}

// NewJSONLTracer returns a tracer writing JSONL to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{enc: json.NewEncoder(w)}
}

// Emit encodes one event. The first encode error is retained and
// reported by Close; later events are dropped.
func (t *JSONLTracer) Emit(e Event) {
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(e)
}

// Close reports any deferred encode error.
func (t *JSONLTracer) Close() error { return t.err }

// ChromeTracer writes the Chrome trace-event format (a JSON array of
// instant events, ts = simulated cycle), loadable in chrome://tracing
// and Perfetto. Close must be called to terminate the array.
type ChromeTracer struct {
	w     io.Writer
	wrote bool
	err   error
}

// NewChromeTracer returns a tracer writing Chrome trace events to w.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	t := &ChromeTracer{w: w}
	_, t.err = io.WriteString(w, "[")
	return t
}

type chromeEvent struct {
	Name EventKind `json:"name"`
	Ph   string    `json:"ph"`
	TS   uint64    `json:"ts"`
	PID  int       `json:"pid"`
	TID  int       `json:"tid"`
	Args Event     `json:"args"`
}

// Emit appends one instant event. Slice instances map to Chrome "tids"
// so per-slice activity lines up on separate tracks.
func (t *ChromeTracer) Emit(e Event) {
	if t.err != nil {
		return
	}
	b, err := json.Marshal(chromeEvent{Name: e.Kind, Ph: "i", TS: e.Cycle, TID: e.Slice, Args: e})
	if err != nil {
		t.err = err
		return
	}
	if t.wrote {
		b = append([]byte(",\n"), b...)
	} else {
		t.wrote = true
		b = append([]byte("\n"), b...)
	}
	_, t.err = t.w.Write(b)
}

// Close terminates the JSON array and reports any deferred error.
func (t *ChromeTracer) Close() error {
	if t.err != nil {
		return t.err
	}
	_, err := io.WriteString(t.w, "\n]\n")
	return err
}

// TextTracer writes one human-readable line per event, the successor of
// the old Printf trace hook.
type TextTracer struct {
	w io.Writer
}

// NewTextTracer returns a tracer writing aligned text lines to w.
func NewTextTracer(w io.Writer) *TextTracer { return &TextTracer{w: w} }

// Emit writes one line.
func (t *TextTracer) Emit(e Event) {
	fmt.Fprintf(t.w, "cyc=%-10d %-16s%s\n", e.Cycle, e.Kind, e.Detail())
}

// Detail renders the event's populated fields as " k=v" pairs (the text
// sink's payload; also handy for custom FuncTracer formatting).
func (e Event) Detail() string {
	s := ""
	if e.PC != 0 {
		s += fmt.Sprintf(" pc=%#x", e.PC)
	}
	if e.Addr != 0 {
		s += fmt.Sprintf(" addr=%#x", e.Addr)
	}
	if e.Slice != 0 || e.Inst != 0 {
		s += fmt.Sprintf(" slice=%d inst=%d", e.Slice, e.Inst)
	}
	if e.Dir != "" {
		s += " dir=" + e.Dir
	}
	if e.Level != "" {
		s += " level=" + e.Level
	}
	if e.N != 0 {
		s += fmt.Sprintf(" n=%d", e.N)
	}
	return s
}
