package stats

import (
	"fmt"
	"reflect"
)

// This file implements the uniform counter semantics every telemetry
// struct shares: Zero, Add, and Sub walk a counter struct by reflection,
// so a counter field added anywhere — including inside a nested struct or
// a per-PC map — is automatically reset, merged, and delta'd without
// touching any hand-maintained list. Identity fields — bools, strings,
// and numeric fields tagged `stats:"id"` (e.g. Static.PC) — are never
// summed or subtracted: merges keep the destination's value (adopting the
// source's when unset) and deltas leave them intact.

// Zero resets every numeric counter reachable from ptr (a pointer to a
// counter struct) in place. Maps are replaced with fresh empty maps.
func Zero(ptr any) {
	v := mustPtrToStruct("stats.Zero", ptr)
	zeroValue(v)
}

func zeroValue(v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if !f.CanSet() || isIdentity(v.Type().Field(i)) {
				continue
			}
			zeroValue(f)
		}
	case reflect.Map:
		if !v.IsNil() {
			v.Set(reflect.MakeMap(v.Type()))
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			zeroValue(v.Index(i))
		}
	case reflect.Pointer:
		if !v.IsNil() {
			zeroValue(v.Elem())
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Float32, reflect.Float64:
		v.Set(reflect.Zero(v.Type()))
	}
}

// Add accumulates src into dst field-wise (dst += src). Both must be
// pointers to the same counter-struct type. Map entries missing from dst
// are deep-copied in; identity fields take src's value only when dst's is
// the zero value (merging two halves of one run must not blank a PC).
func Add(dst, src any) { addValue(elemOf("stats.Add", dst, src)) }

// Sub subtracts src from dst field-wise (dst -= src), the delta of two
// cumulative snapshots. Counters are monotone between snapshots of one
// run, so the subtraction cannot underflow when used that way.
func Sub(dst, src any) {
	d, s := elemOf("stats.Sub", dst, src)
	subValue(d, s)
}

func elemOf(op string, dst, src any) (reflect.Value, reflect.Value) {
	d := mustPtrToStruct(op, dst)
	s := mustPtrToStruct(op, src)
	if d.Type() != s.Type() {
		panic(fmt.Sprintf("%s: mismatched types %s and %s", op, d.Type(), s.Type()))
	}
	return d, s
}

func mustPtrToStruct(op string, p any) reflect.Value {
	v := reflect.ValueOf(p)
	if v.Kind() != reflect.Pointer || v.IsNil() || v.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("%s: want non-nil pointer to struct, got %T", op, p))
	}
	return v.Elem()
}

func addValue(d, s reflect.Value) {
	switch d.Kind() {
	case reflect.Struct:
		for i := 0; i < d.NumField(); i++ {
			f := d.Field(i)
			if !f.CanSet() {
				continue
			}
			if isIdentity(d.Type().Field(i)) {
				if f.IsZero() {
					f.Set(deepCopyValue(s.Field(i)))
				}
				continue
			}
			addValue(f, s.Field(i))
		}
	case reflect.Map:
		if s.IsNil() {
			return
		}
		if d.IsNil() {
			d.Set(reflect.MakeMap(d.Type()))
		}
		it := s.MapRange()
		for it.Next() {
			sv := it.Value()
			dv := d.MapIndex(it.Key())
			if !dv.IsValid() {
				d.SetMapIndex(it.Key(), deepCopyValue(sv))
				continue
			}
			// Map values are pointers to structs (e.g. *Static) or plain
			// values; pointer targets accumulate in place, values re-store.
			if dv.Kind() == reflect.Pointer {
				addValue(dv.Elem(), sv.Elem())
			} else {
				tmp := reflect.New(dv.Type()).Elem()
				tmp.Set(dv)
				addValue(tmp, sv)
				d.SetMapIndex(it.Key(), tmp)
			}
		}
	case reflect.Slice:
		// Slices are positional (e.g. Snapshot.Progs is slot-aligned):
		// overlapping indices accumulate element-wise, and src's extra
		// elements are deep-copied onto the end.
		for i := 0; i < s.Len(); i++ {
			if i < d.Len() {
				addValue(d.Index(i), s.Index(i))
			} else {
				d.Set(reflect.Append(d, deepCopyValue(s.Index(i))))
			}
		}
	case reflect.Pointer:
		if s.IsNil() {
			return
		}
		if d.IsNil() {
			d.Set(reflect.New(d.Type().Elem()))
		}
		addValue(d.Elem(), s.Elem())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		d.SetUint(d.Uint() + s.Uint())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		d.SetInt(d.Int() + s.Int())
	case reflect.Float32, reflect.Float64:
		d.SetFloat(d.Float() + s.Float())
	case reflect.Bool, reflect.String:
		// Identity fields: adopt src's value when dst has none.
		if d.IsZero() {
			d.Set(s)
		}
	}
}

func subValue(d, s reflect.Value) {
	switch d.Kind() {
	case reflect.Struct:
		for i := 0; i < d.NumField(); i++ {
			f := d.Field(i)
			if !f.CanSet() || isIdentity(d.Type().Field(i)) {
				continue
			}
			subValue(f, s.Field(i))
		}
	case reflect.Map:
		if s.IsNil() {
			return
		}
		if d.IsNil() {
			d.Set(reflect.MakeMap(d.Type()))
		}
		it := s.MapRange()
		for it.Next() {
			sv := it.Value()
			dv := d.MapIndex(it.Key())
			if !dv.IsValid() {
				// The later snapshot lacks the key: synthesize a zero entry
				// so the delta is well-defined (counters then go negative,
				// flagging the inconsistency rather than hiding it).
				dv = deepCopyValue(sv)
				zeroFrom(dv)
				d.SetMapIndex(it.Key(), dv)
			}
			if dv.Kind() == reflect.Pointer {
				subValue(dv.Elem(), sv.Elem())
			} else {
				tmp := reflect.New(dv.Type()).Elem()
				tmp.Set(dv)
				subValue(tmp, sv)
				d.SetMapIndex(it.Key(), tmp)
			}
		}
	case reflect.Slice:
		for i := 0; i < s.Len(); i++ {
			if i >= d.Len() {
				// As with maps: synthesize a zero element so the delta is
				// well-defined and the inconsistency shows as negatives.
				z := deepCopyValue(s.Index(i))
				zeroFrom(z)
				d.Set(reflect.Append(d, z))
			}
			subValue(d.Index(i), s.Index(i))
		}
	case reflect.Pointer:
		if s.IsNil() {
			return
		}
		if d.IsNil() {
			d.Set(reflect.New(d.Type().Elem()))
		}
		subValue(d.Elem(), s.Elem())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		d.SetUint(d.Uint() - s.Uint())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		d.SetInt(d.Int() - s.Int())
	case reflect.Float32, reflect.Float64:
		d.SetFloat(d.Float() - s.Float())
	}
}

// isIdentity reports whether a struct field carries identity, not a
// count: it is tagged `stats:"id"` (Static.PC is the canonical example).
// Bools and strings are identity by kind and handled in the leaf cases.
func isIdentity(f reflect.StructField) bool {
	return f.Tag.Get("stats") == "id"
}

func zeroFrom(v reflect.Value) {
	if v.Kind() == reflect.Pointer {
		zeroValue(v.Elem())
		return
	}
	zeroValue(v)
}

// deepCopyValue returns an independent copy of v: maps and pointers are
// duplicated rather than shared.
func deepCopyValue(v reflect.Value) reflect.Value {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return v
		}
		cp := reflect.New(v.Type().Elem())
		cp.Elem().Set(deepCopyValue(v.Elem()))
		return cp
	case reflect.Map:
		if v.IsNil() {
			return v
		}
		cp := reflect.MakeMapWithSize(v.Type(), v.Len())
		it := v.MapRange()
		for it.Next() {
			cp.SetMapIndex(it.Key(), deepCopyValue(it.Value()))
		}
		return cp
	case reflect.Slice:
		if v.IsNil() {
			return v
		}
		cp := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		for i := 0; i < v.Len(); i++ {
			cp.Index(i).Set(deepCopyValue(v.Index(i)))
		}
		return cp
	case reflect.Struct:
		cp := reflect.New(v.Type()).Elem()
		for i := 0; i < v.NumField(); i++ {
			if f := cp.Field(i); f.CanSet() {
				f.Set(deepCopyValue(v.Field(i)))
			}
		}
		return cp
	default:
		return v
	}
}

// ForEachCounter visits every settable numeric counter field reachable
// from ptr, calling fn with a dotted path (for diagnostics) and the
// addressable field value. Map contents are not visited — maps are
// cleared wholesale on reset. Tests use this walk to assert reset
// completeness: a counter that exists must be zeroed by Reset.
func ForEachCounter(ptr any, fn func(path string, v reflect.Value)) {
	v := mustPtrToStruct("stats.ForEachCounter", ptr)
	walkCounters(v.Type().Name(), v, fn)
}

func walkCounters(path string, v reflect.Value, fn func(string, reflect.Value)) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if !f.CanSet() || isIdentity(v.Type().Field(i)) {
				continue
			}
			walkCounters(path+"."+v.Type().Field(i).Name, f, fn)
		}
	case reflect.Pointer:
		if !v.IsNil() {
			walkCounters(path, v.Elem(), fn)
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Float32, reflect.Float64:
		fn(path, v)
	}
}
