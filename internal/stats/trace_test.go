package stats

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

var traceSample = []Event{
	{Cycle: 10, Kind: EvFork, PC: 0x40, Slice: 2, Addr: 0x1000},
	{Cycle: 11, Kind: EvPredGenerate, PC: 0x48, Slice: 2, Inst: 7, Dir: "taken"},
	{Cycle: 12, Kind: EvPredBind, PC: 0x48, Inst: 7, Level: "full"},
	{Cycle: 12, Kind: EvOverride, PC: 0x48, Dir: "taken"},
	{Cycle: 30, Kind: EvCacheFill, Addr: 0x2000, Dir: "helper", Level: "l2"},
	{Cycle: 31, Kind: EvSquash, PC: 0x50, N: 14},
	{Cycle: 0, Kind: EvRetireStall, PC: 0x58, Addr: 0x3000},
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	for _, e := range traceSample {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var got []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, e)
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(got) != len(traceSample) {
		t.Fatalf("decoded %d events, emitted %d", len(got), len(traceSample))
	}
	for i, e := range got {
		if e != traceSample[i] {
			t.Errorf("event %d: got %+v, want %+v", i, e, traceSample[i])
		}
	}
}

func TestJSONLOmitsEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	tr.Emit(Event{Cycle: 5, Kind: EvInstance})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if want := `{"cyc":5,"ev":"instance"}`; line != want {
		t.Errorf("sparse event = %s, want %s", line, want)
	}
}

func TestChromeTracerOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	for _, e := range traceSample {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var evs []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		TS   uint64          `json:"ts"`
		TID  int             `json:"tid"`
		Args json.RawMessage `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(evs) != len(traceSample) {
		t.Fatalf("chrome array has %d events, emitted %d", len(evs), len(traceSample))
	}
	for i, ev := range evs {
		want := traceSample[i]
		if ev.Name != string(want.Kind) || ev.Ph != "i" || ev.TS != want.Cycle || ev.TID != want.Slice {
			t.Errorf("event %d = %+v, want kind=%s ts=%d tid=%d", i, ev, want.Kind, want.Cycle, want.Slice)
		}
		var args Event
		if err := json.Unmarshal(ev.Args, &args); err != nil {
			t.Fatalf("event %d args: %v", i, err)
		}
		if args != want {
			t.Errorf("event %d args = %+v, want %+v", i, args, want)
		}
	}
}

func TestChromeTracerEmptyIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("empty chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 0 {
		t.Errorf("empty trace decoded to %d events", len(evs))
	}
}

func TestTextTracerFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTextTracer(&buf)
	tr.Emit(Event{Cycle: 42, Kind: EvPredKill, PC: 0x1140, Inst: 3, Level: "loop"})
	line := buf.String()
	for _, want := range []string{"cyc=42", "pred-kill", "pc=0x1140", "inst=3", "level=loop"} {
		if !strings.Contains(line, want) {
			t.Errorf("text line %q missing %q", line, want)
		}
	}
}

func TestFuncTracer(t *testing.T) {
	var got []Event
	tr := FuncTracer(func(e Event) { got = append(got, e) })
	tr.Emit(Event{Kind: EvFork, Slice: 1})
	if len(got) != 1 || got[0].Kind != EvFork {
		t.Errorf("FuncTracer did not forward: %+v", got)
	}
}
