// Package stats collects the per-static-instruction and whole-run counters
// every experiment in the paper reports: PDE attribution for Table 2 and
// Figure 1, and the slice-execution characterization of Table 4.
package stats

// Static accumulates retired, correct-path events for one static
// instruction (one PC) of the main thread.
type Static struct {
	PC    uint64 `stats:"id"`
	Execs uint64

	// Loads.
	IsLoad bool
	Misses uint64 // accesses slower than an L1 hit

	// Branches.
	IsBranch    bool
	Taken       uint64
	Mispredicts uint64
}

// MissRate returns misses per execution.
func (s *Static) MissRate() float64 {
	if s.Execs == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Execs)
}

// MispredictRate returns mispredictions per execution.
func (s *Static) MispredictRate() float64 {
	if s.Execs == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Execs)
}

// Sim is the whole-run counter set.
type Sim struct {
	Cycles uint64

	// Main thread.
	MainFetched    uint64 // includes wrong path
	MainWrongPath  uint64 // fetched then squashed
	MainRetired    uint64
	Loads          uint64 // retired loads
	LoadMisses     uint64 // retired loads slower than an L1 hit
	Branches       uint64 // retired conditional branches
	Mispredicts    uint64
	IndirectJumps  uint64
	IndirectMisses uint64
	RetireStalls   uint64 // cycles retire was blocked by the write buffer
	CycleGuardHits uint64 // times Run's MaxCycles guard truncated a region

	// Helper threads.
	HelperFetched uint64
	HelperRetired uint64 // completed and drained (slices have no arch retire)
	HelperFaults  uint64 // slices terminated by an exception
	HelperMaxIter uint64 // slices terminated by the iteration bound
	HelperStores  uint64 // stores dropped from slice code (should be 0)

	// Slice forking.
	Forks         uint64
	ForksSquashed uint64
	ForksIgnored  uint64
	ForksGated    uint64 // suppressed by the confidence gate (§6.3)

	// Correlator-facing (resolved on the correct path).
	PredsGenerated            uint64 // predictions actually filled by helper PGIs
	PredsUsed                 uint64 // branch instances that used a slice prediction
	PredsCorrect              uint64
	PredsIncorrect            uint64
	PredsLateUsed             uint64 // predictions that arrived after their branch fetched
	EarlyResolutions          uint64 // late-prediction fetch redirects
	CoveredMispredictsAvoided uint64 // covered-branch instances the slice got right that the baseline predictor got wrong

	// Prefetch attribution.
	SlicePrefetches uint64 // helper loads that initiated a fill
	MissesCovered   uint64 // main-thread accesses served by helper-fetched lines

	Static map[uint64]*Static
}

// New returns an empty counter set.
func New() *Sim {
	return &Sim{Static: make(map[uint64]*Static)}
}

// ByPC returns (allocating) the static record for pc.
func (s *Sim) ByPC(pc uint64) *Static {
	st := s.Static[pc]
	if st == nil {
		st = &Static{PC: pc}
		s.Static[pc] = st
	}
	return st
}

// IPC returns main-thread retired instructions per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.MainRetired) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per retired conditional branch.
func (s *Sim) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// LoadMissRate returns misses per retired load.
func (s *Sim) LoadMissRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.LoadMisses) / float64(s.Loads)
}
