package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Label("start")
	b.I(isa.LDI, 1, 0, 10) // r1 = 10
	b.Label("loop")
	b.I(isa.ADDI, 1, 1, -1)
	b.B(isa.BGT, 1, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.PC("start") != 0x1000 {
		t.Errorf("start = %#x", p.PC("start"))
	}
	if p.PC("loop") != 0x1004 {
		t.Errorf("loop = %#x", p.PC("loop"))
	}
	// The backward branch at 0x1008 must target 0x1004.
	in, ok := p.At(0x1008)
	if !ok || !in.IsCondBranch() {
		t.Fatalf("inst at 0x1008: %v ok=%v", in, ok)
	}
	if got := in.BranchTarget(0x1008); got != 0x1004 {
		t.Errorf("branch target = %#x", got)
	}
}

func TestForwardBranch(t *testing.T) {
	b := NewBuilder(0x1000)
	b.B(isa.BEQ, 1, "done")
	b.Nop()
	b.Nop()
	b.Label("done")
	b.Halt()
	p := b.MustBuild()
	in, _ := p.At(0x1000)
	if got := in.BranchTarget(0x1000); got != p.PC("done") {
		t.Errorf("forward target = %#x, want %#x", got, p.PC("done"))
	}
}

func TestUndefinedLabelError(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Br("nowhere")
	if _, err := b.Build(); err == nil {
		t.Error("undefined label must be an error")
	}
}

func TestDuplicateLabelError(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label must be an error")
	}
}

func TestBadBaseError(t *testing.T) {
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Error("zero base must be an error")
	}
	if _, err := NewBuilder(0x1002).Build(); err == nil {
		t.Error("misaligned base must be an error")
	}
}

func TestLiSmallAndLarge(t *testing.T) {
	run := func(v int64) uint64 {
		b := NewBuilder(0x1000)
		b.Li(5, v)
		p := b.MustBuild()
		st := &execState{}
		pc := p.Base
		for {
			in, ok := p.At(pc)
			if !ok {
				break
			}
			o := isa.Execute(in, pc, st)
			pc = o.NextPC(pc)
		}
		return st.regs[5]
	}
	for _, v := range []int64{0, 1, -1, 42, 1 << 20, -(1 << 20), 1 << 40, -(1 << 40), 0x123456789ABCDEF0, -0x123456789ABCDEF0} {
		if got := run(v); got != uint64(v) {
			t.Errorf("Li(%#x) produced %#x", v, got)
		}
	}
	// Small constants must be one instruction.
	b := NewBuilder(0x1000)
	b.Li(5, 1234)
	if p := b.MustBuild(); len(p.Insts) != 1 {
		t.Errorf("Li(1234) expanded to %d instructions", len(p.Insts))
	}
}

type execState struct{ regs [isa.NumRegs]uint64 }

func (s *execState) Reg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return s.regs[r]
}
func (s *execState) SetReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		s.regs[r] = v
	}
}
func (s *execState) Load(uint64, int) (uint64, bool) { return 0, true }
func (s *execState) Store(uint64, int, uint64) bool  { return true }

func TestCallRetAndHelpers(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Mov(2, 1)
	b.Ret()
	p := b.MustBuild()
	in, _ := p.At(0x1000)
	if in.Op != isa.CALL || in.Rd != isa.RA {
		t.Errorf("call = %+v", in)
	}
	if got := in.BranchTarget(0x1000); got != p.PC("fn") {
		t.Errorf("call target = %#x", got)
	}
	ret, _ := p.At(p.PC("fn") + isa.InstBytes)
	if ret.Op != isa.RET || ret.Ra != isa.RA {
		t.Errorf("ret = %+v", ret)
	}
}

func TestMemoryEmitters(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Ld(1, 8, 2)
	b.Ldw(1, 4, 2)
	b.Ldbu(1, 1, 2)
	b.St(1, 8, 2)
	b.Stw(1, 4, 2)
	b.Stb(1, 1, 2)
	p := b.MustBuild()
	wantOps := []isa.Op{isa.LD, isa.LDW, isa.LDBU, isa.ST, isa.STW, isa.STB}
	for i, op := range wantOps {
		if p.Insts[i].Op != op {
			t.Errorf("inst %d op = %v, want %v", i, p.Insts[i].Op, op)
		}
	}
	// Store data register travels in Rd.
	if p.Insts[3].Rd != 1 || p.Insts[3].Ra != 2 {
		t.Errorf("store fields = %+v", p.Insts[3])
	}
}

func TestImageLookupAndOverlap(t *testing.T) {
	main := NewBuilder(0x1000)
	main.Nop()
	main.Halt()
	mp := main.MustBuild()

	sl := NewBuilder(0x100000)
	sl.Nop()
	sp := sl.MustBuild()

	im, err := NewImage(mp, sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := im.At(0x1000); !ok {
		t.Error("main inst not found")
	}
	if _, ok := im.At(0x100000); !ok {
		t.Error("slice inst not found")
	}
	if _, ok := im.At(0x2000); ok {
		t.Error("hole resolved to an instruction")
	}
	// Overlap must be rejected.
	dup := NewBuilder(0x1004)
	dup.Nop()
	if err := im.Add(dup.MustBuild()); err == nil {
		t.Error("overlapping program accepted")
	}
}

func TestDisasmOutput(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Label("entry")
	b.I(isa.LDI, 1, 0, 7)
	b.Halt()
	p := b.MustBuild()
	text := p.Disasm()
	if !strings.Contains(text, "entry:") || !strings.Contains(text, "ldi r1, 7") {
		t.Errorf("disasm:\n%s", text)
	}
	if l, ok := p.LabelAt(0x1000); !ok || l != "entry" {
		t.Errorf("LabelAt = %q,%v", l, ok)
	}
}

func TestPCAdvances(t *testing.T) {
	b := NewBuilder(0x1000)
	if b.PC() != 0x1000 {
		t.Errorf("initial PC = %#x", b.PC())
	}
	b.Nop()
	if b.PC() != 0x1004 {
		t.Errorf("PC after one inst = %#x", b.PC())
	}
}
