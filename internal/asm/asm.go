// Package asm provides a small in-process assembler used to author the
// synthetic workloads and their speculative slices. A Builder accumulates
// instructions and labels; Build resolves PC-relative fixups and produces an
// immutable Program. Multiple Programs (e.g. the main binary and the slice
// code region, which the paper stores "as normal instructions in the
// instruction cache") combine into an Image the simulator fetches from.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Program is an assembled, immutable code region.
type Program struct {
	// Base is the address of the first instruction.
	Base uint64
	// Insts are the instructions, PC-ordered, isa.InstBytes apart.
	Insts []isa.Inst
	// Labels maps label names to absolute addresses.
	Labels map[string]uint64

	labelAt map[uint64]string
}

// At returns the instruction at pc, or nil, false if pc is outside the
// program.
func (p *Program) At(pc uint64) (*isa.Inst, bool) {
	if pc < p.Base || (pc-p.Base)%isa.InstBytes != 0 {
		return nil, false
	}
	i := (pc - p.Base) / isa.InstBytes
	if i >= uint64(len(p.Insts)) {
		return nil, false
	}
	return &p.Insts[i], true
}

// End returns the address one past the last instruction.
func (p *Program) End() uint64 {
	return p.Base + uint64(len(p.Insts))*isa.InstBytes
}

// PC returns the address of label, panicking if undefined (programs are
// authored in-process; an undefined label is a programming error).
func (p *Program) PC(label string) uint64 {
	pc, ok := p.Labels[label]
	if !ok {
		panic(fmt.Sprintf("asm: undefined label %q", label))
	}
	return pc
}

// LabelAt returns the label defined at pc, if any.
func (p *Program) LabelAt(pc uint64) (string, bool) {
	l, ok := p.labelAt[pc]
	return l, ok
}

// Disasm renders the whole program with addresses and labels.
func (p *Program) Disasm() string {
	var sb strings.Builder
	for i := range p.Insts {
		pc := p.Base + uint64(i)*isa.InstBytes
		if l, ok := p.labelAt[pc]; ok {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "  %#08x  %s\n", pc, p.Insts[i].Disasm(pc))
	}
	return sb.String()
}

// Image is the union of the code regions visible to instruction fetch.
type Image struct {
	progs []*Program
}

// NewImage builds an Image; programs must not overlap.
func NewImage(progs ...*Program) (*Image, error) {
	im := &Image{}
	for _, p := range progs {
		if err := im.Add(p); err != nil {
			return nil, err
		}
	}
	return im, nil
}

// Add registers another program region.
func (im *Image) Add(p *Program) error {
	for _, q := range im.progs {
		if p.Base < q.End() && q.Base < p.End() {
			return fmt.Errorf("asm: program at %#x overlaps program at %#x", p.Base, q.Base)
		}
	}
	im.progs = append(im.progs, p)
	sort.Slice(im.progs, func(i, j int) bool { return im.progs[i].Base < im.progs[j].Base })
	return nil
}

// At returns the instruction at pc across all regions.
func (im *Image) At(pc uint64) (*isa.Inst, bool) {
	// Few regions (2-3); linear scan is fine and branch-predictable.
	for _, p := range im.progs {
		if pc >= p.Base && pc < p.End() {
			return p.At(pc)
		}
	}
	return nil, false
}

// Programs returns the regions in address order.
func (im *Image) Programs() []*Program { return im.progs }

// LabelAt resolves a label across all regions.
func (im *Image) LabelAt(pc uint64) (string, bool) {
	for _, p := range im.progs {
		if l, ok := p.LabelAt(pc); ok {
			return l, ok
		}
	}
	return "", false
}

type fixup struct {
	index int    // instruction index needing a target
	label string // target label
}

// Builder accumulates instructions. All emit methods return the Builder for
// chaining where that reads well; most workload code calls them as
// statements.
type Builder struct {
	base   uint64
	insts  []isa.Inst
	labels map[string]int
	fixups []fixup
	errs   []error
}

// NewBuilder starts a program at base (must be InstBytes-aligned and
// non-zero).
func NewBuilder(base uint64) *Builder {
	b := &Builder{base: base, labels: make(map[string]int)}
	if base == 0 || base%isa.InstBytes != 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: bad base %#x", base))
	}
	return b
}

// PC returns the address of the next instruction to be emitted.
func (b *Builder) PC() uint64 { return b.base + uint64(len(b.insts))*isa.InstBytes }

// Label defines a label at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.insts)
}

// Raw emits a pre-formed instruction.
func (b *Builder) Raw(in isa.Inst) { b.insts = append(b.insts, in) }

// R emits a reg-reg operation (ADD..S8ADD, CMOV*).
func (b *Builder) R(op isa.Op, rd, ra, rb isa.Reg) {
	b.Raw(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb})
}

// I emits a reg-imm operation (ADDI..LDIH).
func (b *Builder) I(op isa.Op, rd, ra isa.Reg, imm int32) {
	b.Raw(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: imm})
}

// Li materializes a 64-bit constant into rd (1-5 instructions).
func (b *Builder) Li(rd isa.Reg, v int64) {
	if v == int64(int32(v)) {
		b.I(isa.LDI, rd, 0, int32(v))
		return
	}
	// Build from the top in 16-bit chunks to sidestep sign extension.
	b.I(isa.LDI, rd, 0, int32(int16(v>>48)))
	for shift := 32; shift >= 0; shift -= 16 {
		b.I(isa.SLLI, rd, rd, 16)
		chunk := int32(uint16(v >> uint(shift)))
		if chunk != 0 {
			b.I(isa.ORI, rd, rd, chunk)
		}
	}
}

// Mov copies ra to rd.
func (b *Builder) Mov(rd, ra isa.Reg) { b.R(isa.OR, rd, ra, isa.Zero) }

// Ld emits an 8-byte load rd <- imm(ra).
func (b *Builder) Ld(rd isa.Reg, imm int32, ra isa.Reg) { b.I(isa.LD, rd, ra, imm) }

// Ldw emits a 4-byte sign-extending load.
func (b *Builder) Ldw(rd isa.Reg, imm int32, ra isa.Reg) { b.I(isa.LDW, rd, ra, imm) }

// Ldbu emits a 1-byte zero-extending load.
func (b *Builder) Ldbu(rd isa.Reg, imm int32, ra isa.Reg) { b.I(isa.LDBU, rd, ra, imm) }

// St emits an 8-byte store of rs to imm(ra).
func (b *Builder) St(rs isa.Reg, imm int32, ra isa.Reg) { b.I(isa.ST, rs, ra, imm) }

// Stw emits a 4-byte store.
func (b *Builder) Stw(rs isa.Reg, imm int32, ra isa.Reg) { b.I(isa.STW, rs, ra, imm) }

// Stb emits a 1-byte store.
func (b *Builder) Stb(rs isa.Reg, imm int32, ra isa.Reg) { b.I(isa.STB, rs, ra, imm) }

// B emits a conditional branch (BEQ..BGE) on ra to label.
func (b *Builder) B(op isa.Op, ra isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.Raw(isa.Inst{Op: op, Ra: ra})
}

// Br emits an unconditional direct branch to label.
func (b *Builder) Br(label string) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.Raw(isa.Inst{Op: isa.BR})
}

// Call emits a direct call to label, writing the return address to isa.RA.
func (b *Builder) Call(label string) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.Raw(isa.Inst{Op: isa.CALL, Rd: isa.RA})
}

// CallR emits an indirect call through ra, writing the return address to
// isa.RA.
func (b *Builder) CallR(ra isa.Reg) { b.Raw(isa.Inst{Op: isa.CALLR, Rd: isa.RA, Ra: ra}) }

// Jmp emits an indirect jump through ra.
func (b *Builder) Jmp(ra isa.Reg) { b.Raw(isa.Inst{Op: isa.JMP, Ra: ra}) }

// Ret emits a return through isa.RA.
func (b *Builder) Ret() { b.Raw(isa.Inst{Op: isa.RET, Ra: isa.RA}) }

// RetVia emits a return through an explicit register.
func (b *Builder) RetVia(ra isa.Reg) { b.Raw(isa.Inst{Op: isa.RET, Ra: ra}) }

// Fork emits an explicit fork instruction for slice index idx.
func (b *Builder) Fork(idx int) { b.Raw(isa.Inst{Op: isa.FORK, Imm: int32(idx)}) }

// Nop emits a NOP.
func (b *Builder) Nop() { b.Raw(isa.Inst{Op: isa.NOP}) }

// Halt emits HALT.
func (b *Builder) Halt() { b.Raw(isa.Inst{Op: isa.HALT}) }

// Build resolves fixups and returns the program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		ti, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("asm: undefined label %q", f.label))
			continue
		}
		// Branch immediates count instructions from the fall-through PC.
		b.insts[f.index].Imm = int32(ti - f.index - 1)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &Program{
		Base:    b.base,
		Insts:   append([]isa.Inst(nil), b.insts...),
		Labels:  make(map[string]uint64, len(b.labels)),
		labelAt: make(map[uint64]string, len(b.labels)),
	}
	for name, idx := range b.labels {
		pc := b.base + uint64(idx)*isa.InstBytes
		p.Labels[name] = pc
		p.labelAt[pc] = name
	}
	return p, nil
}

// MustBuild is Build that panics on error; workload construction uses it
// because an assembly error there is a bug, not a runtime condition.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
