// Package autoslice implements automatic slice construction (§3.3). The
// paper's slices were built by hand as a proof of concept; it cites Roth &
// Sohi's trace-based selection of un-optimized slices as the automated
// route and calls automated optimization "important future work". This
// package provides that pipeline:
//
//  1. collect an execution trace with per-instruction register dataflow;
//  2. pick a fork point for a set of problem PCs — a PC that precedes
//     their dynamic instances at a useful, consistent distance (§3.2's
//     "sweet spot" search, done mechanically);
//  3. compute the backward dataflow slice of each problem instance within
//     the fork-to-problem window and union the marked instructions;
//  4. emit an executable, straight-line (unrolled) slice program: stores
//     dropped, control flow dropped (the problem branch's compare becomes
//     the PGI), live-ins derived from reads-before-writes.
//
// The result is an un-optimized speculative slice in exactly Roth & Sohi's
// sense: correct most of the time, bounded, and purely microarchitectural.
package autoslice

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// traceEntry is one dynamic instruction with its dataflow edges.
type traceEntry struct {
	pc uint64
	in *isa.Inst
	// src[i] is the trace index of the producer of the i-th source
	// register, or -1 if it was live before the trace began.
	src  [3]int32
	nsrc int
}

// Trace is a recorded execution with register-dependence edges.
type Trace struct {
	entries []traceEntry
	// byPC indexes dynamic instances of each static instruction.
	byPC map[uint64][]int32
}

// CollectTrace functionally executes the image for n instructions from
// entry, recording the register dataflow. The memory is mutated (pass a
// fresh one).
func CollectTrace(image *asm.Image, m *mem.Memory, entry uint64, n int) (*Trace, error) {
	tr := &Trace{byPC: make(map[uint64][]int32)}
	var regs [isa.NumRegs]uint64
	lastWrite := [isa.NumRegs]int32{}
	for i := range lastWrite {
		lastWrite[i] = -1
	}
	st := traceState{regs: &regs, m: m}
	pc := entry
	for len(tr.entries) < n {
		in, ok := image.At(pc)
		if !ok {
			return nil, fmt.Errorf("autoslice: trace fell off the image at %#x", pc)
		}
		e := traceEntry{pc: pc, in: in}
		for _, r := range in.Sources() {
			e.src[e.nsrc] = lastWrite[r]
			e.nsrc++
		}
		idx := int32(len(tr.entries))
		out := isa.Execute(in, pc, st)
		if d, ok := in.Dest(); ok {
			lastWrite[d] = idx
		}
		tr.entries = append(tr.entries, e)
		tr.byPC[pc] = append(tr.byPC[pc], idx)
		if out.Halt {
			break
		}
		pc = out.NextPC(pc)
	}
	return tr, nil
}

type traceState struct {
	regs *[isa.NumRegs]uint64
	m    *mem.Memory
}

func (s traceState) Reg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return s.regs[r]
}

func (s traceState) SetReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		s.regs[r] = v
	}
}

func (s traceState) Load(addr uint64, size int) (uint64, bool)  { return s.m.Read(addr, size) }
func (s traceState) Store(addr uint64, size int, v uint64) bool { return s.m.Write(addr, size, v) }

// Len returns the trace length.
func (t *Trace) Len() int { return len(t.entries) }

// Instances returns the dynamic instance count of pc.
func (t *Trace) Instances(pc uint64) int { return len(t.byPC[pc]) }

// --- Fork point selection ---

// ForkCandidate scores one potential fork PC for a problem-PC set.
type ForkCandidate struct {
	PC uint64
	// Coverage is the fraction of problem instances that had this PC
	// fetched within the search window before them.
	Coverage float64
	// MeanLead is the average dynamic-instruction distance from the fork
	// to the first covered problem instance.
	MeanLead float64
	// Equivalence measures control equivalence: episodes per dynamic
	// execution of this PC. A good fork point executes exactly once per
	// episode (1.0); loop-body PCs execute more often and score lower —
	// forking at them re-forks mid-iteration and churns the correlator.
	Equivalence float64
}

// SelectForkPoint finds a PC that consistently precedes the problem PCs'
// dynamic instances by between minLead and maxLead instructions — the
// mechanical version of §3.2's balancing act (early enough to tolerate
// latency, close enough to stay control-equivalent). It returns candidates
// sorted best-first.
func SelectForkPoint(t *Trace, problemPCs []uint64, minLead, maxLead int) []ForkCandidate {
	// Gather the first instance of each "episode": consecutive problem
	// instances within minLead of each other belong to one episode (one
	// loop's worth of instances needs one fork).
	var firsts []int32
	var all []int32
	for _, pc := range problemPCs {
		all = append(all, t.byPC[pc]...)
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	last := int32(-1 << 30)
	for _, i := range all {
		// Skip episodes whose search window would clip below the trace
		// start: they would unfairly penalize candidates that live in the
		// previous outer iteration.
		if int(i-last) > minLead && int(i) >= maxLead {
			firsts = append(firsts, i)
		}
		last = i
	}
	if len(firsts) == 0 {
		return nil
	}

	type score struct {
		hits int
		lead int
	}
	scores := make(map[uint64]*score)
	for _, fi := range firsts {
		lo := int(fi) - maxLead
		if lo < 0 {
			lo = 0
		}
		hi := int(fi) - minLead
		if hi < 0 {
			continue
		}
		seen := make(map[uint64]bool)
		for j := hi; j >= lo; j-- {
			pc := t.entries[j].pc
			if seen[pc] {
				continue // closest occurrence only
			}
			seen[pc] = true
			s := scores[pc]
			if s == nil {
				s = &score{}
				scores[pc] = s
			}
			s.hits++
			s.lead += int(fi) - j
		}
	}

	var out []ForkCandidate
	for pc, s := range scores {
		eq := float64(len(firsts)) / float64(len(t.byPC[pc]))
		if eq > 1 {
			eq = 1 / eq // executing less often than once per episode is equally bad
		}
		out = append(out, ForkCandidate{
			PC:          pc,
			Coverage:    float64(s.hits) / float64(len(firsts)),
			MeanLead:    float64(s.lead) / float64(s.hits),
			Equivalence: eq,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		// Prefer control-equivalent candidates, then coverage, then the
		// longest lead, then lowest PC for determinism.
		ei := out[i].Equivalence >= 0.9
		ej := out[j].Equivalence >= 0.9
		if ei != ej {
			return ei
		}
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		if out[i].MeanLead != out[j].MeanLead {
			return out[i].MeanLead > out[j].MeanLead
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// --- Slice extraction ---

// Options bounds the construction.
type Options struct {
	// MaxSliceLen caps the emitted (unrolled) slice body.
	MaxSliceLen int
	// MaxLiveIns rejects slices needing too much register communication
	// (the paper: "rarely are more than 4 values required").
	MaxLiveIns int
	// SliceBase is the code address for the generated program.
	SliceBase uint64
}

// DefaultOptions returns sensible bounds.
func DefaultOptions() Options {
	return Options{MaxSliceLen: 48, MaxLiveIns: 4, SliceBase: 0x180000}
}

// Built is the constructed slice plus its code.
type Built struct {
	Slice   *slicehw.Slice
	Program *asm.Program
	// Window is the representative fork→end trace window used.
	WindowStart, WindowEnd int32
}

// Build constructs an un-optimized speculative slice for problemPCs,
// forked at forkPC, from a representative trace window. Problem branches
// must be BEQ/BNE (zero-testing) for their compare to serve as a PGI;
// other problem PCs are treated as prefetch targets.
func Build(t *Trace, forkPC uint64, problemPCs []uint64, opt Options) (*Built, error) {
	if opt.MaxSliceLen == 0 {
		opt = DefaultOptions()
	}
	problem := make(map[uint64]bool, len(problemPCs))
	for _, pc := range problemPCs {
		problem[pc] = true
	}

	start, end, err := representativeWindow(t, forkPC, problem)
	if err != nil {
		return nil, err
	}

	// Backward dataflow slice of every problem instance in the window.
	marked := make(map[int32]bool)
	var work []int32
	for i := start; i < end; i++ {
		if problem[t.entries[i].pc] {
			work = append(work, i)
		}
	}
	if len(work) == 0 {
		return nil, fmt.Errorf("autoslice: no problem instances in the window")
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if marked[i] {
			continue
		}
		marked[i] = true
		e := &t.entries[i]
		for k := 0; k < e.nsrc; k++ {
			if p := e.src[k]; p >= start {
				work = append(work, p)
			}
		}
	}

	// Emit in trace order: stores and control dropped; problem branches
	// contribute their compare as the PGI.
	var order []int32
	for i := range marked {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })

	b := asm.NewBuilder(opt.SliceBase)
	b.Label("auto")
	var pgis []slicehw.PGI
	var loadPCs []uint64
	seenLoad := make(map[uint64]bool)
	emitted := 0
	for _, i := range order {
		e := &t.entries[i]
		in := e.in
		switch {
		case in.IsStore():
			continue // speculative slices perform no stores (§4.1)
		case in.IsCondBranch():
			if !problem[e.pc] || (in.Op != isa.BEQ && in.Op != isa.BNE) {
				continue // control flow is not replicated (§3.1)
			}
			// The branch's producer — already emitted or a live-in — is
			// the value; mark the most recent emitted instruction writing
			// the branch's source as the PGI. We re-emit a MOV as the PGI
			// so the PGI PC is unique per unrolled instance.
			pgiPC := b.PC()
			b.Mov(isa.AT, in.Ra)
			pgis = append(pgis, slicehw.PGI{
				SlicePC:     pgiPC,
				BranchPC:    e.pc,
				TakenIfZero: in.Op == isa.BEQ,
			})
			emitted++
			continue
		case in.IsCtrl():
			continue
		}
		b.Raw(*in)
		emitted++
		if in.IsLoad() && problem[e.pc] && !seenLoad[e.pc] {
			seenLoad[e.pc] = true
			loadPCs = append(loadPCs, e.pc)
		}
		if emitted >= opt.MaxSliceLen {
			break
		}
	}
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("autoslice: emit: %w", err)
	}
	if len(prog.Insts) <= 1 {
		return nil, fmt.Errorf("autoslice: empty slice")
	}

	liveIns := liveInsOf(prog.Insts)
	if len(liveIns) > opt.MaxLiveIns {
		return nil, fmt.Errorf("autoslice: %d live-ins exceed the bound of %d (the paper: rarely more than 4)",
			len(liveIns), opt.MaxLiveIns)
	}

	sl := &slicehw.Slice{
		Name:           fmt.Sprintf("auto@%#x", forkPC),
		ForkPC:         forkPC,
		SlicePC:        prog.PC("auto"),
		LiveIns:        liveIns,
		PGIs:           pgis,
		CoveredLoadPCs: loadPCs,
		StaticSize:     len(prog.Insts) - 1, // minus the HALT
	}
	if len(pgis) > 0 {
		// The fork PC doubles as the slice kill: at each re-fetch of the
		// fork, the previous activation's region is over. The skip-first
		// exemption spares the instance forked by that same fetch (forks
		// are serviced before kills at a PC).
		sl.SliceKillPC = forkPC
		sl.SliceKillSkipFirst = true
		// A loop-iteration kill keeps per-iteration predictions aligned
		// even when the helper allocates just in time (§5.1's selection,
		// done mechanically).
		if killPC, skip, ok := selectLoopKill(t, start, end, problem); ok {
			sl.LoopKillPC = killPC
			sl.LoopKillSkipFirst = skip
		}
	}
	return &Built{Slice: sl, Program: prog, WindowStart: start, WindowEnd: end}, nil
}

// representativeWindow picks the fork instance whose fork→next-fork window
// has the median number of problem instances.
func representativeWindow(t *Trace, forkPC uint64, problem map[uint64]bool) (int32, int32, error) {
	forks := t.byPC[forkPC]
	if len(forks) == 0 {
		return 0, 0, fmt.Errorf("autoslice: fork PC %#x never executes in the trace", forkPC)
	}
	type win struct {
		start, end int32
		n          int
	}
	var wins []win
	for k, f := range forks {
		end := int32(t.Len())
		if k+1 < len(forks) {
			end = forks[k+1]
		}
		n := 0
		for i := f; i < end; i++ {
			if problem[t.entries[i].pc] {
				n++
			}
		}
		if n > 0 {
			wins = append(wins, win{f, end, n})
		}
	}
	if len(wins) == 0 {
		return 0, 0, fmt.Errorf("autoslice: no fork window contains a problem instance")
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].n < wins[j].n })
	w := wins[len(wins)/2]
	return w.start, w.end, nil
}

// liveInsOf returns the registers read before written by the sequence.
func liveInsOf(insts []isa.Inst) []isa.Reg {
	written := make(map[isa.Reg]bool)
	var live []isa.Reg
	seen := make(map[isa.Reg]bool)
	for i := range insts {
		in := &insts[i]
		for _, r := range in.Sources() {
			if !written[r] && !seen[r] {
				seen[r] = true
				live = append(live, r)
			}
		}
		if d, ok := in.Dest(); ok {
			written[d] = true
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	return live
}

// selectLoopKill mechanizes §5.1: when the covered problem instructions
// execute several times per activation, find a PC that executes exactly
// once between consecutive instances — a point that post-dominates the
// iteration's exits and dominates the next instance. A PC that also
// executes once before the first instance (a back-edge target) is usable
// with the first-instance exemption.
func selectLoopKill(t *Trace, start, end int32, problem map[uint64]bool) (uint64, bool, bool) {
	var insts []int32
	for i := start; i < end; i++ {
		if problem[t.entries[i].pc] {
			insts = append(insts, i)
		}
	}
	if len(insts) < 2 {
		return 0, false, false
	}
	// Count occurrences of each PC strictly between consecutive instances.
	counts := make(map[uint64]int)
	for k := 0; k+1 < len(insts); k++ {
		seen := make(map[uint64]bool)
		for j := insts[k] + 1; j < insts[k+1]; j++ {
			pc := t.entries[j].pc
			if seen[pc] {
				delete(counts, pc) // more than once in an interval: unusable
				continue
			}
			seen[pc] = true
			if n, tracked := counts[pc]; !tracked && k == 0 {
				counts[pc] = 1
			} else if tracked && n == k {
				counts[pc] = n + 1
			}
		}
	}
	// A usable kill PC appeared exactly once in every interval.
	var best uint64
	bestPos := int32(1 << 30)
	for pc, n := range counts {
		if n != len(insts)-1 {
			continue
		}
		// Prefer the candidate closest after the first instance.
		for j := insts[0] + 1; j < insts[1]; j++ {
			if t.entries[j].pc == pc && j < bestPos {
				best, bestPos = pc, j
				break
			}
		}
	}
	if best == 0 {
		return 0, false, false
	}
	// If the PC also executes before the first instance, the first fetch
	// per activation must not kill.
	skip := false
	for j := start; j < insts[0]; j++ {
		if t.entries[j].pc == best {
			skip = true
			break
		}
	}
	return best, skip, true
}
