// Package autoslice implements automatic slice construction (§3.3). The
// paper's slices were built by hand as a proof of concept; it cites Roth &
// Sohi's trace-based selection of un-optimized slices as the automated
// route and calls automated optimization "important future work". This
// package provides that pipeline:
//
//  1. collect an execution trace with per-instruction register dataflow;
//  2. cluster the profiled problem PCs into groups whose dynamic instances
//     interleave — one fork point serves one group;
//  3. pick a fork point for each group — a PC that precedes the problem
//     instances at a useful, consistent distance (§3.2's "sweet spot"
//     search, done mechanically);
//  4. compute the backward dataflow slice of each problem instance within
//     the fork-to-problem window and union the marked instructions,
//     if-converting short guarded hammocks via CMOV so the slice keeps a
//     single control path;
//  5. optimize the unrolled straight-line code (§3.2 done mechanically:
//     constant folding with strength reduction, duplicate elimination
//     across unrolled instances, dead-code elimination, and loop
//     re-rolling — see optimize.go);
//  6. emit an executable slice program: stores dropped, control flow
//     dropped (each problem branch's compare becomes a PGI), live-ins
//     derived from reads-before-writes.
//
// The result is a speculative slice in exactly Roth & Sohi's sense:
// correct most of the time, bounded, and purely microarchitectural.
// Whether a built candidate is *good* is decided downstream, by running it
// against the differential oracle and the measured override accuracy
// (harness.FigureAuto).
package autoslice

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// traceEntry is one dynamic instruction with its dataflow edges.
type traceEntry struct {
	pc uint64
	in *isa.Inst
	// src[i] is the trace index of the producer of the i-th source
	// register, or -1 if it was live before the trace began.
	src  [3]int32
	nsrc int
}

// Trace is a recorded execution with register-dependence edges.
type Trace struct {
	entries []traceEntry
	// byPC indexes dynamic instances of each static instruction.
	byPC map[uint64][]int32
}

// CollectTrace functionally executes the image for n instructions from
// entry, recording the register dataflow. The memory is mutated (pass a
// fresh one).
func CollectTrace(image *asm.Image, m *mem.Memory, entry uint64, n int) (*Trace, error) {
	tr := &Trace{byPC: make(map[uint64][]int32)}
	var regs [isa.NumRegs]uint64
	lastWrite := [isa.NumRegs]int32{}
	for i := range lastWrite {
		lastWrite[i] = -1
	}
	st := traceState{regs: &regs, m: m}
	pc := entry
	for len(tr.entries) < n {
		in, ok := image.At(pc)
		if !ok {
			return nil, fmt.Errorf("autoslice: trace fell off the image at %#x", pc)
		}
		e := traceEntry{pc: pc, in: in}
		for _, r := range in.Sources() {
			e.src[e.nsrc] = lastWrite[r]
			e.nsrc++
		}
		idx := int32(len(tr.entries))
		out := isa.Execute(in, pc, st)
		if d, ok := in.Dest(); ok {
			lastWrite[d] = idx
		}
		tr.entries = append(tr.entries, e)
		tr.byPC[pc] = append(tr.byPC[pc], idx)
		if out.Halt {
			break
		}
		pc = out.NextPC(pc)
	}
	return tr, nil
}

type traceState struct {
	regs *[isa.NumRegs]uint64
	m    *mem.Memory
}

func (s traceState) Reg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return s.regs[r]
}

func (s traceState) SetReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		s.regs[r] = v
	}
}

func (s traceState) Load(addr uint64, size int) (uint64, bool)  { return s.m.Read(addr, size) }
func (s traceState) Store(addr uint64, size int, v uint64) bool { return s.m.Write(addr, size, v) }

// Len returns the trace length.
func (t *Trace) Len() int { return len(t.entries) }

// Instances returns the dynamic instance count of pc.
func (t *Trace) Instances(pc uint64) int { return len(t.byPC[pc]) }

// --- Problem-PC clustering ---

// ClusterProblemPCs groups problem PCs whose dynamic instances interleave
// within gap trace instructions of each other: such PCs share an episode
// structure and one fork point (and one slice) can serve the whole group.
// PCs with no dynamic instance in the trace cannot be clustered or sliced
// and are returned in skipped. Groups are ordered by the trace index of
// their earliest instance; PCs within a group are sorted ascending. Both
// orders are deterministic for reproducible candidate naming.
func ClusterProblemPCs(t *Trace, problemPCs []uint64, gap int) (groups [][]uint64, skipped []uint64) {
	type instance struct {
		idx int32
		pc  uint64
	}
	var insts []instance
	seen := make(map[uint64]bool)
	for _, pc := range problemPCs {
		if seen[pc] {
			continue
		}
		seen[pc] = true
		idxs := t.byPC[pc]
		if len(idxs) == 0 {
			skipped = append(skipped, pc)
			continue
		}
		for _, i := range idxs {
			insts = append(insts, instance{i, pc})
		}
	}
	sort.Slice(skipped, func(i, j int) bool { return skipped[i] < skipped[j] })
	if len(insts) == 0 {
		return nil, skipped
	}
	sort.Slice(insts, func(a, b int) bool { return insts[a].idx < insts[b].idx })

	// Union-find over PCs: adjacent instances within the gap join their
	// PCs into one cluster.
	parent := make(map[uint64]uint64)
	var find func(uint64) uint64
	find = func(pc uint64) uint64 {
		p, ok := parent[pc]
		if !ok || p == pc {
			parent[pc] = pc
			return pc
		}
		r := find(p)
		parent[pc] = r
		return r
	}
	for k := 0; k+1 < len(insts); k++ {
		if int(insts[k+1].idx-insts[k].idx) <= gap {
			parent[find(insts[k].pc)] = find(insts[k+1].pc)
		}
	}

	first := make(map[uint64]int32)             // root → earliest instance index
	members := make(map[uint64]map[uint64]bool) // root → PC set
	var rootOrder []uint64
	for _, in := range insts {
		r := find(in.pc)
		if _, ok := first[r]; !ok {
			first[r] = in.idx
			members[r] = make(map[uint64]bool)
			rootOrder = append(rootOrder, r)
		}
		members[r][in.pc] = true
	}
	sort.Slice(rootOrder, func(i, j int) bool { return first[rootOrder[i]] < first[rootOrder[j]] })
	for _, r := range rootOrder {
		var g []uint64
		for pc := range members[r] {
			g = append(g, pc)
		}
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		groups = append(groups, g)
	}
	return groups, skipped
}

// --- Fork point selection ---

// ForkCandidate scores one potential fork PC for a problem-PC set.
type ForkCandidate struct {
	PC uint64
	// Coverage is the fraction of problem episodes that had this PC
	// fetched within the search window before them.
	Coverage float64
	// MeanLead is the average dynamic-instruction distance from the fork
	// to the first covered problem instance.
	MeanLead float64
	// Equivalence measures control equivalence: episodes per dynamic
	// execution of this PC over the scored span. A good fork point
	// executes exactly once per episode (1.0); loop-body PCs execute more
	// often and score lower — forking at them re-forks mid-iteration and
	// churns the correlator.
	Equivalence float64
	// Purity is the fraction of covered episodes with no problem instance
	// between the fork and the episode it targets. An impure fork sits
	// inside (or before) the previous episode's burst, so the predictions
	// it computes for the next burst are consumed — wrongly — by the
	// previous burst's remaining instances.
	Purity float64
}

// SelectForkPoint finds a PC that consistently precedes the problem PCs'
// dynamic instances by between minLead and maxLead instructions — the
// mechanical version of §3.2's balancing act (early enough to tolerate
// latency, close enough to stay control-equivalent). It returns candidates
// sorted best-first.
//
// Numerator and denominator of every score are computed over the same
// episode set and trace span: episodes too early to fit even a minLead
// window are excluded from both sides, and windows that extend past the
// trace start are clipped rather than discarded, so short traces still
// yield candidates and whole-trace execution counts cannot deflate the
// equivalence of a fork that covers every episode it could see.
func SelectForkPoint(t *Trace, problemPCs []uint64, minLead, maxLead int) []ForkCandidate {
	// Gather the first instance of each "episode": consecutive problem
	// instances close together belong to one episode (one loop's worth of
	// instances needs one fork).
	var all []int32
	for _, pc := range problemPCs {
		all = append(all, t.byPC[pc]...)
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	// The episode boundary is adaptive: a problem set living in a tight
	// loop (instances every few instructions, forever) has no minLead-wide
	// gaps at all, and a fixed boundary of minLead would fuse the whole
	// trace into one episode whose only "preceding" PCs are the program
	// prologue — a fork point that executes exactly once and never again.
	// Splitting at gaps clearly above the typical instance spacing
	// recovers the real iteration structure: each burst of instances (one
	// outer-loop iteration's worth) becomes an episode, and the recurring
	// PCs of the previous iterations become the fork candidates.
	epGap := minLead
	if len(all) > 8 {
		gaps := make([]int32, 0, len(all)-1)
		for i := 1; i < len(all); i++ {
			gaps = append(gaps, all[i]-all[i-1])
		}
		sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
		if g := 3 * int(gaps[len(gaps)/2]); g < epGap {
			epGap = g
			if epGap < 4 {
				epGap = 4
			}
		}
	}

	// When episodes recur faster than minLead (tight outer loops), a fork
	// a full minLead ahead necessarily sits inside the previous burst and
	// its predictions get stolen (see Purity). Shrink the minimum lead
	// toward the typical quiet gap between bursts so the window can land
	// in the instance-free stretch just before each episode.
	minLeadEff := minLead
	{
		var quiet []int32
		last := int32(-1 << 30)
		for _, i := range all {
			if g := i - last; last >= 0 && int(g) > epGap {
				quiet = append(quiet, g)
			}
			last = i
		}
		if len(quiet) > 0 {
			sort.Slice(quiet, func(i, j int) bool { return quiet[i] < quiet[j] })
			if q := int(quiet[len(quiet)/2]) - 2; q < minLeadEff {
				minLeadEff = q
				if minLeadEff < 4 {
					minLeadEff = 4
				}
			}
		}
	}

	var scored []int32
	last := int32(-1 << 30)
	for _, i := range all {
		// An episode whose first instance has no room for even a minimal
		// window is excluded from both numerator and denominator below.
		if int(i-last) > epGap && int(i) >= minLeadEff {
			scored = append(scored, i)
		}
		last = i
	}
	if len(scored) == 0 {
		return nil
	}

	type score struct {
		hits int
		lead int
		pure int
	}
	scores := make(map[uint64]*score)
	for _, fi := range scored {
		lo := int(fi) - maxLead
		if lo < 0 {
			lo = 0 // clipped window: score what the trace has
		}
		hi := int(fi) - minLeadEff
		// The episode is pure for a fork occurrence at j iff no problem
		// instance lies strictly between j and fi.
		pureAbove := int32(lo) - 1 // occurrences above this index are pure
		if k := sort.Search(len(all), func(k int) bool { return all[k] >= fi }); k > 0 && all[k-1] > pureAbove {
			pureAbove = all[k-1]
		}
		seen := make(map[uint64]bool)
		for j := hi; j >= lo; j-- {
			pc := t.entries[j].pc
			if seen[pc] {
				continue // closest occurrence only
			}
			seen[pc] = true
			s := scores[pc]
			if s == nil {
				s = &score{}
				scores[pc] = s
			}
			s.hits++
			s.lead += int(fi) - j
			if int32(j) > pureAbove {
				s.pure++
			}
		}
	}

	// Equivalence compares episode count to execution count over the same
	// span the windows cover — not the whole trace.
	spanLo := scored[0] - int32(maxLead)
	if spanLo < 0 {
		spanLo = 0
	}
	spanHi := scored[len(scored)-1]
	var out []ForkCandidate
	for pc, s := range scores {
		execs := countInRange(t.byPC[pc], spanLo, spanHi)
		if execs == 0 {
			execs = s.hits // defensive; windows lie inside the span
		}
		eq := float64(len(scored)) / float64(execs)
		if eq > 1 {
			eq = 1 / eq // executing less often than once per episode is equally bad
		}
		out = append(out, ForkCandidate{
			PC:          pc,
			Coverage:    float64(s.hits) / float64(len(scored)),
			MeanLead:    float64(s.lead) / float64(s.hits),
			Equivalence: eq,
			Purity:      float64(s.pure) / float64(s.hits),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		// Prefer control-equivalent, pure candidates, then coverage, then
		// the longest lead, then lowest PC for determinism.
		ei := out[i].Equivalence >= 0.9 && out[i].Purity >= 0.9
		ej := out[j].Equivalence >= 0.9 && out[j].Purity >= 0.9
		if ei != ej {
			return ei
		}
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		if out[i].MeanLead != out[j].MeanLead {
			return out[i].MeanLead > out[j].MeanLead
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// countInRange counts values in [lo, hi] within an ascending slice.
func countInRange(idxs []int32, lo, hi int32) int {
	a := sort.Search(len(idxs), func(k int) bool { return idxs[k] >= lo })
	b := sort.Search(len(idxs), func(k int) bool { return idxs[k] > hi })
	return b - a
}

// --- Slice extraction ---

// Options bounds the construction.
type Options struct {
	// MaxSliceLen caps the emitted (unrolled) slice body.
	MaxSliceLen int
	// MaxLiveIns rejects slices needing too much register communication
	// (the paper: "rarely are more than 4 values required").
	MaxLiveIns int
	// SliceBase is the code address for the generated program.
	SliceBase uint64
}

// DefaultOptions returns sensible bounds.
func DefaultOptions() Options {
	return Options{MaxSliceLen: 48, MaxLiveIns: 4, SliceBase: 0x180000}
}

// Built is the constructed slice plus its code.
type Built struct {
	Slice   *slicehw.Slice
	Program *asm.Program
	// Window is the representative fork→end trace window used.
	WindowStart, WindowEnd int32
}

// Fingerprint returns a short content hash over the slice program and
// metadata, used to give candidate slice sets stable, deterministic names.
func (bu *Built) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%#x\n", bu.Program.Base)
	for i := range bu.Program.Insts {
		fmt.Fprintf(h, "%v\n", bu.Program.Insts[i])
	}
	fmt.Fprintf(h, "%+v\n", *bu.Slice)
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// maxHammock bounds if-conversion to short guarded hammocks (in
// instructions); longer guarded regions are control flow the slice simply
// does not replicate (§3.1).
const maxHammock = 3

// guardInfo records the branch guarding an if-converted instruction: the
// CMOV fires exactly when the guard would *not* have been taken.
type guardInfo struct {
	op  isa.Op
	reg isa.Reg
}

// Build constructs an optimized speculative slice for problemPCs, forked
// at forkPC, from a representative trace window. Every conditional problem
// branch contributes a PGI (its compare condition is re-materialized into
// AT); problem loads become prefetches; short hammocks guarding marked
// instructions are if-converted via CMOV so the emitted code stays a
// single straight-line (or re-rolled) path.
func Build(t *Trace, forkPC uint64, problemPCs []uint64, opt Options) (*Built, error) {
	if opt.MaxSliceLen == 0 {
		opt = DefaultOptions()
	}
	problem := make(map[uint64]bool, len(problemPCs))
	for _, pc := range problemPCs {
		problem[pc] = true
	}

	start, end, err := representativeWindow(t, forkPC, problem)
	if err != nil {
		return nil, err
	}

	// Backward dataflow slice of every problem instance in the window.
	marked := make(map[int32]bool)
	var work []int32
	for i := start; i < end; i++ {
		if problem[t.entries[i].pc] {
			work = append(work, i)
		}
	}
	if len(work) == 0 {
		return nil, fmt.Errorf("autoslice: no problem instances in the window")
	}
	propagate(t, start, marked, work)

	// If-convert short hammocks that guard marked instructions, then pull
	// the guards' own producers into the slice.
	ifconv, guards := markHammocks(t, start, end, problem, marked)
	propagate(t, start, marked, guards)

	var order []int32
	for i := range marked {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })

	scratch := pickScratch(t, order, ifconv)
	slots := buildSlots(t, order, problem, ifconv, scratch)
	slots = optimize(slots)
	if len(slots) > opt.MaxSliceLen {
		// A prefix of the slot list is dataflow-closed by construction;
		// re-run DCE to drop feeders of the truncated roots.
		slots = deadCode(slots[:opt.MaxSliceLen])
	}
	pro, body, reps := reroll(slots)

	// Emission. PGI slice PCs bind here, after every pass that renumbers.
	b := asm.NewBuilder(opt.SliceBase)
	b.Label("auto")
	var pgis []slicehw.PGI
	var loadPCs []uint64
	seenLoad := make(map[uint64]bool)
	emit := func(s *slot) {
		if s.pgi != nil {
			p := *s.pgi
			p.SlicePC = b.PC()
			pgis = append(pgis, p)
		}
		if s.problemLoad != 0 && !seenLoad[s.problemLoad] {
			seenLoad[s.problemLoad] = true
			loadPCs = append(loadPCs, s.problemLoad)
		}
		b.Raw(s.in)
	}
	for i := range pro {
		emit(&pro[i])
	}
	if reps > 0 {
		b.Label("auto_loop")
		for i := range body {
			emit(&body[i])
		}
		b.Label("auto_back")
		b.Br("auto_loop")
	}
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("autoslice: emit: %w", err)
	}
	if len(prog.Insts) <= 1 {
		return nil, fmt.Errorf("autoslice: empty slice")
	}

	liveIns := liveInsOf(prog.Insts)
	if len(liveIns) > opt.MaxLiveIns {
		return nil, fmt.Errorf("autoslice: %d live-ins exceed the bound of %d (the paper: rarely more than 4)",
			len(liveIns), opt.MaxLiveIns)
	}

	sl := &slicehw.Slice{
		Name:           fmt.Sprintf("auto@%#x", forkPC),
		ForkPC:         forkPC,
		SlicePC:        prog.PC("auto"),
		LiveIns:        liveIns,
		PGIs:           pgis,
		CoveredLoadPCs: loadPCs,
		StaticSize:     len(prog.Insts) - 1, // minus the HALT
	}
	if reps > 0 {
		sl.LoopBackPC = prog.PC("auto_back")
		sl.MaxLoops = reps + 2 // slack for windows shorter than the real iteration count
		sl.LoopSize = int((prog.End() - prog.PC("auto_loop")) / isa.InstBytes)
	}
	if len(pgis) > 0 {
		// The fork PC doubles as the slice kill: at each re-fetch of the
		// fork, the previous activation's region is over. The skip-first
		// exemption spares the instance forked by that same fetch (forks
		// are serviced before kills at a PC).
		sl.SliceKillPC = forkPC
		sl.SliceKillSkipFirst = true
		// A loop-iteration kill keeps per-iteration predictions aligned
		// even when the helper allocates just in time (§5.1's selection,
		// done mechanically).
		if killPC, skip, ok := selectLoopKill(t, start, end, problem); ok {
			sl.LoopKillPC = killPC
			sl.LoopKillSkipFirst = skip
		}
	}
	return &Built{Slice: sl, Program: prog, WindowStart: start, WindowEnd: end}, nil
}

// propagate runs the backward-marking fixpoint from the work list: a
// marked instruction pulls in every producer of its sources that lies
// inside the window.
func propagate(t *Trace, start int32, marked map[int32]bool, work []int32) {
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if marked[i] {
			continue
		}
		marked[i] = true
		e := &t.entries[i]
		for k := 0; k < e.nsrc; k++ {
			if p := e.src[k]; p >= start {
				work = append(work, p)
			}
		}
	}
}

// markHammocks finds short not-taken hammocks guarding marked
// instructions: a non-problem conditional branch whose fall-through region
// (up to maxHammock instructions, ending at the branch target) executed
// straight-line in the trace and contains marked instructions. Each such
// marked instruction is recorded for if-conversion, and the guard branch
// is marked so its condition's producers join the slice (the emitted CMOV
// reads the guard register). Returns the if-conversion map and the newly
// marked guard indices for a propagation pass.
func markHammocks(t *Trace, start, end int32, problem map[uint64]bool, marked map[int32]bool) (map[int32]guardInfo, []int32) {
	ifconv := make(map[int32]guardInfo)
	var guards []int32
	for j := start; j < end; j++ {
		g := &t.entries[j]
		if !g.in.IsCondBranch() || problem[g.pc] || g.in.Ra == isa.Zero {
			continue
		}
		tgt := g.in.BranchTarget(g.pc)
		if tgt <= g.pc+isa.InstBytes {
			continue // backward or degenerate: not a hammock guard
		}
		span := int32((tgt - (g.pc + isa.InstBytes)) / isa.InstBytes)
		if span < 1 || span > maxHammock || j+span >= end {
			continue
		}
		ok := false
		for d := int32(1); d <= span; d++ {
			e := &t.entries[j+d]
			if e.pc != g.pc+uint64(d)*isa.InstBytes {
				ok = false
				break // the trace took the branch: nothing guarded executed
			}
			in := e.in
			d2, hasDest := in.Dest()
			if in.IsCtrl() || in.IsStore() || problem[e.pc] || !hasDest || d2 == g.in.Ra {
				ok = false
				break // unconvertible body, or it clobbers the guard register
			}
			if marked[j+d] {
				ok = true
			}
		}
		if !ok {
			continue
		}
		for d := int32(1); d <= span; d++ {
			if marked[j+d] {
				ifconv[j+d] = guardInfo{op: g.in.Op, reg: g.in.Ra}
			}
		}
		if !marked[j] {
			guards = append(guards, j)
		}
	}
	return ifconv, guards
}

// pickScratch chooses a register unused by any instruction the slice will
// emit (and by the PGI convention, which owns AT) to hold if-converted
// shadow results. Returns Zero when every register is taken — the caller
// then skips if-conversion rather than corrupting live state.
func pickScratch(t *Trace, order []int32, ifconv map[int32]guardInfo) isa.Reg {
	used := make(map[isa.Reg]bool)
	used[isa.Zero] = true
	used[isa.AT] = true
	for _, i := range order {
		in := t.entries[i].in
		for _, r := range in.Sources() {
			used[r] = true
		}
		if d, ok := in.Dest(); ok {
			used[d] = true
		}
	}
	for _, gi := range ifconv {
		used[gi.reg] = true
	}
	for r := isa.Reg(isa.NumRegs - 1); r > isa.Zero; r-- {
		if !used[r] {
			return r
		}
	}
	return isa.Zero
}

// pgiFor maps a conditional problem branch to the instruction that
// re-materializes its condition into AT, plus the TakenIfZero polarity
// that makes the PGI value predict the branch. Every conditional branch
// op has a mapping (the fix for the old BEQ/BNE-only restriction).
func pgiFor(in *isa.Inst) (isa.Inst, bool) {
	switch in.Op {
	case isa.BEQ: // taken iff ra == 0
		return movInst(isa.AT, in.Ra), true
	case isa.BNE: // taken iff ra != 0
		return movInst(isa.AT, in.Ra), false
	case isa.BLT: // taken iff ra < 0: AT = (ra < 0)
		return isa.Inst{Op: isa.CMPLT, Rd: isa.AT, Ra: in.Ra}, false
	case isa.BGE: // taken iff ra >= 0: AT = (ra < 0), inverted
		return isa.Inst{Op: isa.CMPLT, Rd: isa.AT, Ra: in.Ra}, true
	case isa.BLE: // taken iff ra <= 0: AT = (ra <= 0)
		return isa.Inst{Op: isa.CMPLE, Rd: isa.AT, Ra: in.Ra}, false
	case isa.BGT: // taken iff ra > 0: AT = (ra <= 0), inverted
		return isa.Inst{Op: isa.CMPLE, Rd: isa.AT, Ra: in.Ra}, true
	}
	return isa.Inst{}, false
}

// cmovFor maps a guard branch op to the conditional move that fires when
// the guard is NOT taken (the hammock body executed).
func cmovFor(op isa.Op) isa.Op {
	switch op {
	case isa.BEQ:
		return isa.CMOVNE
	case isa.BNE:
		return isa.CMOVEQ
	case isa.BLT:
		return isa.CMOVGE
	case isa.BGE:
		return isa.CMOVLT
	case isa.BLE:
		return isa.CMOVGT
	case isa.BGT:
		return isa.CMOVLE
	}
	return isa.CMOVNE
}

// buildSlots lowers the marked trace entries, in trace order, into the
// optimizer's slot IR: stores and non-problem control dropped, problem
// branches lowered to PGI slots, if-converted entries lowered to a
// shadow-compute + CMOV pair.
func buildSlots(t *Trace, order []int32, problem map[uint64]bool, ifconv map[int32]guardInfo, scratch isa.Reg) []slot {
	var slots []slot
	for _, i := range order {
		e := &t.entries[i]
		in := *e.in
		switch {
		case in.IsStore():
			continue // speculative slices perform no stores (§4.1)
		case in.IsCondBranch():
			if !problem[e.pc] {
				continue // guards are if-converted, not replicated (§3.1)
			}
			pin, tiz := pgiFor(&in)
			slots = append(slots, slot{
				in:  pin,
				pgi: &slicehw.PGI{BranchPC: e.pc, TakenIfZero: tiz},
			})
			continue
		case in.IsCtrl():
			continue
		}
		if gi, ok := ifconv[i]; ok && scratch != isa.Zero {
			shadow := in
			shadow.Rd = scratch
			slots = append(slots,
				slot{in: shadow},
				slot{in: isa.Inst{Op: cmovFor(gi.op), Rd: in.Rd, Ra: gi.reg, Rb: scratch}})
			continue
		}
		s := slot{in: in}
		if in.IsLoad() && problem[e.pc] {
			s.problemLoad = e.pc
		}
		slots = append(slots, s)
	}
	return slots
}

// representativeWindow picks the fork instance whose fork→next-fork window
// has the median number of problem instances.
func representativeWindow(t *Trace, forkPC uint64, problem map[uint64]bool) (int32, int32, error) {
	forks := t.byPC[forkPC]
	if len(forks) == 0 {
		return 0, 0, fmt.Errorf("autoslice: fork PC %#x never executes in the trace", forkPC)
	}
	type win struct {
		start, end int32
		n          int
	}
	var wins []win
	for k, f := range forks {
		end := int32(t.Len())
		if k+1 < len(forks) {
			end = forks[k+1]
		}
		n := 0
		for i := f; i < end; i++ {
			if problem[t.entries[i].pc] {
				n++
			}
		}
		if n > 0 {
			wins = append(wins, win{f, end, n})
		}
	}
	if len(wins) == 0 {
		return 0, 0, fmt.Errorf("autoslice: no fork window contains a problem instance")
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].n < wins[j].n })
	w := wins[len(wins)/2]
	return w.start, w.end, nil
}

// liveInsOf returns the registers read before written by the sequence.
func liveInsOf(insts []isa.Inst) []isa.Reg {
	written := make(map[isa.Reg]bool)
	var live []isa.Reg
	seen := make(map[isa.Reg]bool)
	for i := range insts {
		in := &insts[i]
		for _, r := range in.Sources() {
			if !written[r] && !seen[r] {
				seen[r] = true
				live = append(live, r)
			}
		}
		if d, ok := in.Dest(); ok {
			written[d] = true
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	return live
}

// selectLoopKill mechanizes §5.1: when the covered problem instructions
// execute several times per activation, find a PC that executes exactly
// once between consecutive instances — a point that post-dominates the
// iteration's exits and dominates the next instance. A PC that also
// executes once before the first instance (a back-edge target) is usable
// with the first-instance exemption.
func selectLoopKill(t *Trace, start, end int32, problem map[uint64]bool) (uint64, bool, bool) {
	var insts []int32
	for i := start; i < end; i++ {
		if problem[t.entries[i].pc] {
			insts = append(insts, i)
		}
	}
	if len(insts) < 2 {
		return 0, false, false
	}
	// Count occurrences of each PC strictly between consecutive instances.
	counts := make(map[uint64]int)
	for k := 0; k+1 < len(insts); k++ {
		seen := make(map[uint64]bool)
		for j := insts[k] + 1; j < insts[k+1]; j++ {
			pc := t.entries[j].pc
			if seen[pc] {
				delete(counts, pc) // more than once in an interval: unusable
				continue
			}
			seen[pc] = true
			if n, tracked := counts[pc]; !tracked && k == 0 {
				counts[pc] = 1
			} else if tracked && n == k {
				counts[pc] = n + 1
			}
		}
	}
	// A usable kill PC appeared exactly once in every interval.
	var best uint64
	bestPos := int32(1 << 30)
	for pc, n := range counts {
		if n != len(insts)-1 {
			continue
		}
		// Prefer the candidate closest after the first instance.
		for j := insts[0] + 1; j < insts[1]; j++ {
			if t.entries[j].pc == pc && j < bestPos {
				best, bestPos = pc, j
				break
			}
		}
	}
	if best == 0 {
		return 0, false, false
	}
	// If the PC also executes before the first instance, the first fetch
	// per activation must not kill.
	skip := false
	for j := start; j < insts[0]; j++ {
		if t.entries[j].pc == best {
			skip = true
			break
		}
	}
	return best, skip, true
}
