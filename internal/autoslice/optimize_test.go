package autoslice

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/slicehw"
)

func alu(op isa.Op, rd, ra, rb isa.Reg) slot {
	return slot{in: isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb}}
}

func imm(op isa.Op, rd, ra isa.Reg, v int32) slot {
	return slot{in: isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: v}}
}

func TestConstFoldStrengthReduction(t *testing.T) {
	// r1 = 8; r2 = r3 * r1 → r2 = r3 << 3.
	out := constFold([]slot{
		imm(isa.LDI, 1, 0, 8),
		alu(isa.MUL, 2, 3, 1),
	})
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	if in := out[1].in; in.Op != isa.SLLI || in.Ra != 3 || in.Imm != 3 {
		t.Errorf("MUL by 8 became %v, want SLLI r3, 3", in)
	}

	// r1 = 0; r4 = r1 + r5 → move; r6 = s4add(r7, r1) → r7 << 2.
	out = constFold([]slot{
		imm(isa.LDI, 1, 0, 0),
		alu(isa.ADD, 4, 1, 5),
		alu(isa.S4ADD, 6, 7, 1),
	})
	if in := out[1].in; in.Op != isa.OR || in.Ra != 5 {
		t.Errorf("ADD of zero became %v, want a move of r5", in)
	}
	if in := out[2].in; in.Op != isa.SLLI || in.Ra != 7 || in.Imm != 2 {
		t.Errorf("S4ADD of zero became %v, want SLLI r7, 2", in)
	}
}

func TestConstFoldWholeInstruction(t *testing.T) {
	// r1 = 6; r2 = r1 + 4 → r2 = 10, and the chained r3 = r2 + 1 → 11.
	out := constFold([]slot{
		imm(isa.LDI, 1, 0, 6),
		imm(isa.ADDI, 2, 1, 4),
		imm(isa.ADDI, 3, 2, 1),
	})
	if in := out[1].in; in.Op != isa.LDI || in.Imm != 10 {
		t.Errorf("known ADDI became %v, want LDI 10", in)
	}
	if in := out[2].in; in.Op != isa.LDI || in.Imm != 11 {
		t.Errorf("constant did not propagate through the chain: %v", in)
	}
}

func TestConstFoldResolvesCMOV(t *testing.T) {
	// Guard known zero: CMOVEQ fires → plain move of the source.
	out := constFold([]slot{
		imm(isa.LDI, 1, 0, 0),
		alu(isa.CMOVEQ, 2, 1, 3),
	})
	if in := out[1].in; in.Op != isa.OR || in.Ra != 3 {
		t.Errorf("firing CMOV became %v, want a move of r3", in)
	}
	// Guard known nonzero: CMOVEQ cannot fire → the slot disappears.
	out = constFold([]slot{
		imm(isa.LDI, 1, 0, 7),
		alu(isa.CMOVEQ, 2, 1, 3),
	})
	if len(out) != 1 {
		t.Errorf("non-firing CMOV survived: %v", out)
	}
}

func TestDedupDropsRecomputation(t *testing.T) {
	// The unrolled-loop shape: the same feeder computed once per instance.
	out := dedup([]slot{
		imm(isa.ADDI, 2, 1, 4),
		imm(isa.ADDI, 3, 2, 1),
		imm(isa.ADDI, 2, 1, 4), // recomputes what r2 already holds
	})
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2: %v", len(out), out)
	}

	// An intervening redefinition of the source makes it a different value.
	out = dedup([]slot{
		imm(isa.ADDI, 2, 1, 4),
		imm(isa.ADDI, 1, 1, 8),
		imm(isa.ADDI, 2, 1, 4), // same text, new r1: must survive
	})
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3: %v", len(out), out)
	}

	// PGI slots are one prediction each and are never dropped.
	pgi := slot{in: isa.Inst{Op: isa.OR, Rd: isa.AT, Ra: 1}, pgi: &slicehw.PGI{BranchPC: 0x2000}}
	pgi2 := slot{in: isa.Inst{Op: isa.OR, Rd: isa.AT, Ra: 1}, pgi: &slicehw.PGI{BranchPC: 0x2000}}
	out = dedup([]slot{pgi, pgi2})
	if len(out) != 2 {
		t.Fatalf("duplicate PGI slot was dropped")
	}
}

func TestDeadCodeKeepsRootChains(t *testing.T) {
	out := deadCode([]slot{
		imm(isa.ADDI, 3, 1, 8), // feeds the load address
		{in: isa.Inst{Op: isa.LD, Rd: 4, Ra: 3}, problemLoad: 0x2000}, // root
		imm(isa.ADDI, 9, 8, 1), // result never used
	})
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2: %v", len(out), out)
	}
	if out[0].in.Rd != 3 || out[1].problemLoad != 0x2000 {
		t.Errorf("wrong survivors: %v", out)
	}
}

func TestRerollDetectsRepeatingTail(t *testing.T) {
	b1 := imm(isa.ADDI, 2, 2, 1)
	b2 := alu(isa.ADD, 3, 3, 2)
	pro, body, reps := reroll([]slot{
		imm(isa.ADDI, 5, 5, 1), // prologue
		b1, b2, b1, b2, b1, b2,
	})
	if reps != 3 {
		t.Fatalf("reps = %d, want 3", reps)
	}
	if len(pro) != 1 || len(body) != 2 {
		t.Fatalf("pro %d / body %d, want 1 / 2", len(pro), len(body))
	}
	if !blockEq(body, []slot{b1, b2}) {
		t.Errorf("body = %v", body)
	}

	// A tiny repetition saves nothing over the back edge it spends.
	pro, body, reps = reroll([]slot{b1, b1})
	if reps != 0 || len(pro) != 2 || body != nil {
		t.Errorf("unprofitable reroll taken: pro %v body %v reps %d", pro, body, reps)
	}
}
