package autoslice

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
	"repro/internal/workloads"
)

func traceOf(t *testing.T, w *workloads.Workload, n int) *Trace {
	t.Helper()
	tr, err := CollectTrace(w.Image, w.NewMemory(), w.Entry, n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCollectTraceDataflow(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.I(isa.LDI, 1, 0, 5)  // idx 0: writes r1
	b.I(isa.ADDI, 2, 1, 3) // idx 1: reads r1 → producer 0
	b.R(isa.ADD, 3, 2, 1)  // idx 2: reads r2 (1), r1 (0)
	b.R(isa.ADD, 4, 5, 5)  // idx 3: reads r5 → live-in (-1)
	b.Halt()
	p := b.MustBuild()
	im, _ := asm.NewImage(p)
	tr, err := CollectTrace(im, mem.New(), 0x1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.entries[1].src[0] != 0 {
		t.Errorf("idx1 producer = %d", tr.entries[1].src[0])
	}
	if got := tr.entries[2]; got.src[0] != 1 || got.src[1] != 0 {
		t.Errorf("idx2 producers = %v", got.src[:got.nsrc])
	}
	if tr.entries[3].src[0] != -1 {
		t.Errorf("live-in producer = %d", tr.entries[3].src[0])
	}
}

func TestSelectForkPointOnCrafty(t *testing.T) {
	w, _ := workloads.ByName("crafty")
	tr := traceOf(t, w, 60_000)
	branchPC := w.Slices[0].PGIs[0].BranchPC
	cands := SelectForkPoint(tr, []uint64{branchPC}, 8, 40)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	best := cands[0]
	if best.Coverage < 0.99 {
		t.Errorf("best coverage %.2f", best.Coverage)
	}
	if best.MeanLead < 8 || best.MeanLead > 40 {
		t.Errorf("best lead %.1f", best.MeanLead)
	}
	// The hand-picked fork point must be among the viable candidates.
	found := false
	for _, c := range cands {
		if c.PC == w.Slices[0].ForkPC && c.Coverage > 0.99 {
			found = true
		}
	}
	if !found {
		t.Error("hand fork point not rediscovered")
	}
}

func TestLiveInsOf(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.ADD, Rd: 3, Ra: 1, Rb: 2}, // reads r1, r2 → live-ins
		{Op: isa.ADD, Rd: 4, Ra: 3, Rb: 1}, // r3 written above, r1 already counted
		{Op: isa.LD, Rd: 5, Ra: 4},         // r4 written above
	}
	live := liveInsOf(insts)
	if len(live) != 2 || live[0] != 1 || live[1] != 2 {
		t.Errorf("live-ins = %v", live)
	}
}

// TestAutoSliceOnCrafty is the end-to-end §3.3 pipeline: trace → fork
// selection → backward slice → executable slice, then simulate and check
// the generated slice behaves like a hand-built one.
func TestAutoSliceOnCrafty(t *testing.T) {
	w, _ := workloads.ByName("crafty")
	hand := w.Slices[0]
	tr := traceOf(t, w, 60_000)
	branchPC := hand.PGIs[0].BranchPC

	built, err := Build(tr, hand.ForkPC, []uint64{branchPC}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if built.Slice.StaticSize == 0 || built.Slice.StaticSize > 48 {
		t.Fatalf("slice size %d", built.Slice.StaticSize)
	}
	if len(built.Slice.LiveIns) == 0 || len(built.Slice.LiveIns) > 4 {
		t.Fatalf("live-ins %v", built.Slice.LiveIns)
	}
	if len(built.Slice.PGIs) == 0 {
		t.Fatal("no PGIs generated")
	}

	// Simulate with the generated slice only.
	im, err := asm.NewImage(append([]*asm.Program{}, w.Image.Programs()[0], built.Program)...)
	if err != nil {
		t.Fatal(err)
	}
	run := func(table *slicehw.Table) *cpu.Core {
		core := cpu.MustNew(cpu.Config4Wide(), im, w.NewMemory(), w.Entry, table)
		core.Run(30_000)
		core.ResetStats()
		core.Run(60_000)
		return core
	}
	base := run(nil)
	auto := run(slicehw.MustTable([]*slicehw.Slice{built.Slice}))

	if auto.S.Forks == 0 {
		t.Fatal("auto slice never forked")
	}
	used := auto.S.PredsCorrect + auto.S.PredsIncorrect
	if used < 50 {
		t.Fatalf("only %d overrides", used)
	}
	acc := float64(auto.S.PredsCorrect) / float64(used)
	if acc < 0.90 {
		t.Errorf("auto slice accuracy %.3f", acc)
	}
	if auto.S.Mispredicts >= base.S.Mispredicts {
		t.Errorf("auto slice removed no mispredictions: %d vs %d",
			auto.S.Mispredicts, base.S.Mispredicts)
	}
	if auto.S.Cycles >= base.S.Cycles {
		t.Errorf("auto slice gave no speedup: %d vs %d cycles", auto.S.Cycles, base.S.Cycles)
	}
	t.Logf("auto slice: %d insts, live-ins %v, %d PGIs, accuracy %.3f, speedup %.1f%%",
		built.Slice.StaticSize, built.Slice.LiveIns, len(built.Slice.PGIs), acc,
		(float64(base.S.Cycles)/float64(auto.S.Cycles)-1)*100)
}

// TestAutoSliceOnEon covers the multi-branch straight-line case.
func TestAutoSliceOnEon(t *testing.T) {
	w, _ := workloads.ByName("eon")
	hand := w.Slices[0]
	tr := traceOf(t, w, 60_000)
	var branchPCs []uint64
	for _, p := range hand.PGIs {
		branchPCs = append(branchPCs, p.BranchPC)
	}
	built, err := Build(tr, hand.ForkPC, branchPCs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Slice.PGIs) < len(branchPCs) {
		t.Fatalf("PGIs %d < covered branches %d", len(built.Slice.PGIs), len(branchPCs))
	}

	im, err := asm.NewImage(w.Image.Programs()[0], built.Program)
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.MustNew(cpu.Config4Wide(), im, w.NewMemory(), w.Entry,
		slicehw.MustTable([]*slicehw.Slice{built.Slice}))
	core.Run(30_000)
	core.ResetStats()
	s := core.Run(60_000)
	if s.PredsCorrect+s.PredsIncorrect+s.PredsLateUsed == 0 {
		t.Fatal("no predictions matched")
	}
	acc := float64(s.PredsCorrect) / float64(s.PredsCorrect+s.PredsIncorrect+1)
	if acc < 0.85 {
		t.Errorf("accuracy %.3f", acc)
	}
}

func TestBuildRejectsBadInputs(t *testing.T) {
	w, _ := workloads.ByName("crafty")
	tr := traceOf(t, w, 20_000)
	if _, err := Build(tr, 0xDEAD0000, []uint64{w.Slices[0].PGIs[0].BranchPC}, DefaultOptions()); err == nil {
		t.Error("unknown fork PC accepted")
	}
	if _, err := Build(tr, w.Slices[0].ForkPC, []uint64{0xDEAD0000}, DefaultOptions()); err == nil {
		t.Error("unknown problem PC accepted")
	}
}
