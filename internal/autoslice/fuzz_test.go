package autoslice

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/mem"
	"repro/internal/progen"
	"repro/internal/slicehw"
)

// FuzzAutoslice drives the whole constructor over progen's random
// terminating programs: trace collection, clustering, fork selection, and
// slice building must never panic, and every successfully built slice
// must respect the construction bounds and the slice-hardware invariants.
func FuzzAutoslice(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		im, entry, init := progen.Program(rng)
		m := mem.New()
		init(m)
		tr, err := CollectTrace(im, m, entry, 20_000)
		if err != nil {
			t.Fatalf("trace over a progen program failed: %v", err)
		}

		// Problem set: every load and conditional branch the trace saw.
		set := make(map[uint64]bool)
		for i := range tr.entries {
			e := &tr.entries[i]
			if e.in.IsLoad() || e.in.IsCondBranch() {
				set[e.pc] = true
			}
		}
		pcs := make([]uint64, 0, len(set))
		for pc := range set {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		if len(pcs) > 12 {
			pcs = pcs[:12]
		}
		if len(pcs) == 0 {
			return
		}

		groups, skipped := ClusterProblemPCs(tr, pcs, 50)
		if len(skipped) != 0 {
			t.Errorf("PCs taken from the trace reported as skipped: %v", skipped)
		}
		opt := DefaultOptions()
		for gi, g := range groups {
			if gi >= 3 {
				break
			}
			cands := SelectForkPoint(tr, g, 10, 80)
			for ci := 0; ci < len(cands) && ci < 3; ci++ {
				built, err := Build(tr, cands[ci].PC, g, opt)
				if err != nil {
					continue // bounded-out or unsliceable: fine, just no panic
				}
				sl := built.Slice
				if sl.StaticSize > opt.MaxSliceLen {
					t.Errorf("slice %d insts exceeds MaxSliceLen %d", sl.StaticSize, opt.MaxSliceLen)
				}
				if len(sl.LiveIns) > opt.MaxLiveIns {
					t.Errorf("live-ins %v exceed MaxLiveIns %d", sl.LiveIns, opt.MaxLiveIns)
				}
				cp := *sl // NewTable assigns Index; don't mutate the original
				if _, err := slicehw.NewTable([]*slicehw.Slice{&cp}); err != nil {
					t.Errorf("built slice violates slicehw invariants: %v", err)
				}
			}
		}
	})
}
