package autoslice

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

func traceOfImage(t *testing.T, im *asm.Image, entry uint64, n int) *Trace {
	t.Helper()
	tr, err := CollectTrace(im, mem.New(), entry, n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSelectForkPointShortTrace pins the clipped-window behavior: an
// episode whose maxLead window extends past the trace start must be scored
// over what the trace has, not discarded. Before the fix, a problem
// instance this close to the trace start produced no candidates at all.
func TestSelectForkPointShortTrace(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	for i := 0; i < 10; i++ {
		b.I(isa.ADDI, 2, 2, 1)
	}
	b.B(isa.BEQ, 3, "end") // r3 == 0: taken
	b.Label("end")
	b.Halt()
	p := b.MustBuild()
	im, err := asm.NewImage(p)
	if err != nil {
		t.Fatal(err)
	}
	tr := traceOfImage(t, im, 0x1000, 100)

	branchPC := p.Base + 10*isa.InstBytes
	cands := SelectForkPoint(tr, []uint64{branchPC}, 8, 40)
	if len(cands) == 0 {
		t.Fatal("clipped episode produced no candidates")
	}
	if cands[0].Coverage != 1.0 {
		t.Errorf("best coverage = %.2f, want 1.0", cands[0].Coverage)
	}
}

// TestSelectForkPointEquivalenceDenominator pins the scoring fix: a loop
// header executing exactly once per episode must score Equivalence 1.0
// (episodes and executions counted over the same span), full coverage,
// full purity — and must rank first, ahead of every filler PC with a
// shorter lead and every impure previous-iteration PC.
func TestSelectForkPointEquivalenceDenominator(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.I(isa.LDI, 1, 0, 30) // iteration count
	b.Label("loop")
	headerPC := b.PC()
	b.I(isa.ADDI, 5, 5, 1) // once per iteration: the ideal fork point
	for i := 0; i < 12; i++ {
		b.I(isa.ADDI, 6, 6, 1)
	}
	b.I(isa.ADDI, 1, 1, -1)
	branchPC := b.PC()
	b.B(isa.BGT, 1, "loop")
	b.Halt()
	im, err := asm.NewImage(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	tr := traceOfImage(t, im, 0x1000, 2000)

	cands := SelectForkPoint(tr, []uint64{branchPC}, 8, 40)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	best := cands[0]
	if best.PC != headerPC {
		t.Fatalf("best PC = %#x, want loop header %#x (candidates: %+v)", best.PC, headerPC, cands[:3])
	}
	if best.Equivalence != 1.0 {
		t.Errorf("header equivalence = %.3f, want 1.0", best.Equivalence)
	}
	if best.Coverage < 0.95 {
		t.Errorf("header coverage = %.3f", best.Coverage)
	}
	if best.Purity != 1.0 {
		t.Errorf("header purity = %.3f, want 1.0", best.Purity)
	}
}

// TestSelectForkPointAdaptiveLead covers the tight-burst case: problem
// instances arrive in bursts (an inner loop) recurring faster than
// minLead. A fixed minimum lead would force every fork into the previous
// burst, where its predictions get stolen; the adaptive episode gap and
// lead must instead find a pure, control-equivalent fork in the quiet
// stretch between bursts.
func TestSelectForkPointAdaptiveLead(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.I(isa.LDI, 1, 0, 40) // outer count
	b.Label("outer")
	quietLo := b.PC()
	for i := 0; i < 12; i++ {
		b.I(isa.ADDI, 4, 4, 1) // quiet stretch, once per outer iteration
	}
	quietHi := b.PC()
	b.I(isa.LDI, 2, 0, 6) // inner count
	b.Label("inner")
	b.I(isa.ADDI, 3, 3, 7)
	b.I(isa.ADDI, 2, 2, -1)
	branchPC := b.PC()
	b.B(isa.BGT, 2, "inner") // the problem branch: bursts of 6, every ~3 insts
	b.I(isa.ADDI, 1, 1, -1)
	b.B(isa.BGT, 1, "outer")
	b.Halt()
	im, err := asm.NewImage(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	tr := traceOfImage(t, im, 0x1000, 4000)

	cands := SelectForkPoint(tr, []uint64{branchPC}, 25, 60)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	best := cands[0]
	if best.MeanLead >= 25 {
		t.Errorf("best lead %.1f did not adapt below minLead 25", best.MeanLead)
	}
	if best.Purity < 0.9 {
		t.Errorf("best purity %.2f: fork sits inside the previous burst", best.Purity)
	}
	if best.Equivalence < 0.9 {
		t.Errorf("best equivalence %.2f", best.Equivalence)
	}
	if best.Coverage < 0.9 {
		t.Errorf("best coverage %.2f", best.Coverage)
	}
	// The winner must be a once-per-outer-iteration PC (quiet stretch or
	// the outer-loop bookkeeping right before it), not a burst-body PC and
	// not the run-once prologue.
	inQuiet := best.PC >= quietLo && best.PC < quietHi
	outerTail := best.PC > branchPC // the outer decrement / back-branch
	if !inQuiet && !outerTail {
		t.Errorf("best PC %#x is not in the per-iteration quiet region [%#x,%#x) or outer tail", best.PC, quietLo, quietHi)
	}
}

// TestClusterProblemPCsGroupsAndSkips pins clustering: PCs from two
// disjoint execution phases land in different groups (ordered by first
// instance), and a PC with no dynamic instance is reported as skipped
// rather than silently dropped.
func TestClusterProblemPCsGroupsAndSkips(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.I(isa.LDI, 1, 0, 20)
	b.Label("A")
	b.I(isa.ADDI, 2, 2, 1)
	b.I(isa.ADDI, 1, 1, -1)
	pcA := b.PC()
	b.B(isa.BGT, 1, "A")
	for i := 0; i < 80; i++ { // separate the phases by more than the gap
		b.I(isa.ADDI, 6, 6, 1)
	}
	b.I(isa.LDI, 3, 0, 20)
	b.Label("B")
	b.I(isa.ADDI, 4, 4, 1)
	b.I(isa.ADDI, 3, 3, -1)
	pcB := b.PC()
	b.B(isa.BGT, 3, "B")
	b.Halt()
	im, err := asm.NewImage(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	tr := traceOfImage(t, im, 0x1000, 4000)

	never := uint64(0x9000) // never executed
	groups, skipped := ClusterProblemPCs(tr, []uint64{pcA, pcB, never}, 50)
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want two", groups)
	}
	if len(groups[0]) != 1 || groups[0][0] != pcA {
		t.Errorf("group 0 = %v, want [%#x]", groups[0], pcA)
	}
	if len(groups[1]) != 1 || groups[1][0] != pcB {
		t.Errorf("group 1 = %v, want [%#x]", groups[1], pcB)
	}
	if len(skipped) != 1 || skipped[0] != never {
		t.Errorf("skipped = %v, want [%#x]", skipped, never)
	}
}

// TestBuildNonZeroTestBranchKinds pins that problem branches beyond
// BEQ/BNE are sliceable: the PGI recomputes the guard through the compare
// producer (BGT/BLE lower to CMPLE, BLT/BGE to CMPLT) instead of the
// branch being silently dropped.
func TestBuildNonZeroTestBranchKinds(t *testing.T) {
	cases := []struct {
		op      isa.Op // loop-back branch kind
		init    int32  // counter start
		step    int32  // counter step
		wantCmp isa.Op // compare the PGI must use
	}{
		{isa.BGT, 50, -1, isa.CMPLE},
		{isa.BLT, -50, 1, isa.CMPLT},
	}
	for _, c := range cases {
		b := asm.NewBuilder(0x1000)
		b.I(isa.LDI, 1, 0, c.init)
		b.Label("loop")
		forkPC := b.PC()
		for i := 0; i < 8; i++ {
			b.I(isa.ADDI, 2, 2, 1)
		}
		b.I(isa.ADDI, 1, 1, c.step)
		branchPC := b.PC()
		b.B(c.op, 1, "loop")
		b.Halt()
		im, err := asm.NewImage(b.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		tr := traceOfImage(t, im, 0x1000, 2000)

		built, err := Build(tr, forkPC, []uint64{branchPC}, DefaultOptions())
		if err != nil {
			t.Fatalf("%v branch not sliceable: %v", c.op, err)
		}
		if len(built.Slice.PGIs) == 0 {
			t.Fatalf("%v: no PGI generated", c.op)
		}
		found := false
		for _, p := range built.Slice.PGIs {
			if p.BranchPC == branchPC {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: no PGI for branch %#x", c.op, branchPC)
		}
		hasCmp := false
		for _, in := range built.Program.Insts {
			if in.Op == c.wantCmp && in.Rd == isa.AT {
				hasCmp = true
			}
		}
		if !hasCmp {
			t.Errorf("%v: slice program has no %v guard recomputation:\n%s",
				c.op, c.wantCmp, built.Program.Disasm())
		}
	}
}
