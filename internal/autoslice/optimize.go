package autoslice

// This file is the mechanical version of §3.2's hand optimizations, applied
// to the unrolled slice body the backward dataflow walk extracts:
//
//   - constant propagation with strength reduction (multiplies by powers of
//     two become shifts, scaled adds of a constant zero become shifts,
//     identities fold to register moves, fully known values fold to LDI);
//   - duplicate-instruction elimination across unrolled instances (value
//     numbering: an instruction recomputing a value its destination already
//     holds is dropped — the common shape left by unrolling a loop whose
//     invariant feeders were sliced once per iteration);
//   - dead-code elimination backward from the slice's roots (PGIs and
//     problem loads);
//   - loop re-rolling (the paper's "loop encapsulation"): when the tail of
//     the optimized body is the same block repeated, emit the block once
//     behind a back edge and bound it with MaxLoops.
//
// The optimizer works on a slot IR — one prospective slice instruction per
// slot, in trace order, PCs unassigned — because every pass renumbers the
// code, and PGI slice PCs can only be bound at final emission.

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/slicehw"
)

// slot is one prospective slice instruction in the optimizer's IR.
type slot struct {
	in isa.Inst
	// pgi marks a prediction-generating instruction. Its SlicePC is filled
	// in at emission, after the optimizer has moved things around.
	pgi *slicehw.PGI
	// problemLoad is the main-program PC of the problem load this slot
	// re-executes. Such slots are roots: their prefetch is a side effect
	// dead-code elimination must not remove.
	problemLoad uint64
}

// isRoot reports whether the slot must survive dead-code elimination for
// its side effect rather than its register result.
func (s *slot) isRoot() bool { return s.pgi != nil || s.problemLoad != 0 }

func movInst(rd, ra isa.Reg) isa.Inst { return isa.Inst{Op: isa.OR, Rd: rd, Ra: ra} }

// optimize runs the straight-line passes. Loop re-rolling runs separately
// (reroll), because it changes the program shape rather than the slot list.
func optimize(slots []slot) []slot {
	slots = constFold(slots)
	slots = dedup(slots)
	slots = deadCode(slots)
	return slots
}

// evalALU computes the result of a pure ALU instruction over known operand
// values, mirroring isa.Execute.
func evalALU(op isa.Op, a, b uint64, imm int32) (uint64, bool) {
	im := int64(imm)
	switch op {
	case isa.ADD:
		return a + b, true
	case isa.SUB:
		return a - b, true
	case isa.MUL:
		return a * b, true
	case isa.DIV:
		if b == 0 {
			return 0, true
		}
		return uint64(int64(a) / int64(b)), true
	case isa.AND:
		return a & b, true
	case isa.OR:
		return a | b, true
	case isa.XOR:
		return a ^ b, true
	case isa.SLL:
		return a << (b & 63), true
	case isa.SRL:
		return a >> (b & 63), true
	case isa.SRA:
		return uint64(int64(a) >> (b & 63)), true
	case isa.CMPEQ:
		return b2u(a == b), true
	case isa.CMPLT:
		return b2u(int64(a) < int64(b)), true
	case isa.CMPLE:
		return b2u(int64(a) <= int64(b)), true
	case isa.CMPULT:
		return b2u(a < b), true
	case isa.CMPULE:
		return b2u(a <= b), true
	case isa.S4ADD:
		return a*4 + b, true
	case isa.S8ADD:
		return a*8 + b, true
	case isa.ADDI:
		return a + uint64(im), true
	case isa.ANDI:
		return a & uint64(im), true
	case isa.ORI:
		return a | uint64(im), true
	case isa.XORI:
		return a ^ uint64(im), true
	case isa.SLLI:
		return a << (uint64(im) & 63), true
	case isa.SRLI:
		return a >> (uint64(im) & 63), true
	case isa.SRAI:
		return uint64(int64(a) >> (uint64(im) & 63)), true
	case isa.CMPEQI:
		return b2u(a == uint64(im)), true
	case isa.CMPLTI:
		return b2u(int64(a) < im), true
	case isa.CMPLEI:
		return b2u(int64(a) <= im), true
	case isa.CMPULTI:
		return b2u(a < uint64(im)), true
	case isa.LDI:
		return uint64(im), true
	case isa.LDIH:
		return a + uint64(im)<<16, true
	}
	return 0, false
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// cmovFires reports whether the conditional move op moves for guard value a.
func cmovFires(op isa.Op, a uint64) bool {
	switch op {
	case isa.CMOVEQ:
		return a == 0
	case isa.CMOVNE:
		return a != 0
	case isa.CMOVLT:
		return int64(a) < 0
	case isa.CMOVGE:
		return int64(a) >= 0
	case isa.CMOVGT:
		return int64(a) > 0
	case isa.CMOVLE:
		return int64(a) <= 0
	}
	return false
}

// constValue computes the instruction's result when all of its source
// values are known. Loads and conditional moves never fold here.
func constValue(in *isa.Inst, known func(isa.Reg) (uint64, bool)) (uint64, bool) {
	if in.IsMem() || in.IsCtrl() || (in.Op >= isa.CMOVEQ && in.Op <= isa.CMOVLE) {
		return 0, false
	}
	a, aok := known(in.Ra)
	b, bok := known(in.Rb)
	if !aok || !bok {
		return 0, false
	}
	return evalALU(in.Op, a, b, in.Imm)
}

// simplify rewrites one instruction given the known constants: strength
// reduction and identity folding. The rewrite always preserves the computed
// value (the register result drives PGI directions downstream).
func simplify(in isa.Inst, known func(isa.Reg) (uint64, bool)) isa.Inst {
	a, aok := known(in.Ra)
	b, bok := known(in.Rb)
	switch in.Op {
	case isa.MUL:
		if aok && !bok {
			in.Ra, in.Rb = in.Rb, in.Ra
			a, aok, b, bok = b, bok, a, aok
		}
		_ = a
		if bok {
			switch {
			case b == 0:
				return isa.Inst{Op: isa.LDI, Rd: in.Rd}
			case b == 1:
				return movInst(in.Rd, in.Ra)
			case b&(b-1) == 0:
				return isa.Inst{Op: isa.SLLI, Rd: in.Rd, Ra: in.Ra, Imm: int32(bits.TrailingZeros64(b))}
			}
		}
	case isa.ADD, isa.OR, isa.XOR:
		if aok && a == 0 {
			return movInst(in.Rd, in.Rb)
		}
		if bok && b == 0 {
			return movInst(in.Rd, in.Ra)
		}
	case isa.SUB:
		if bok && b == 0 {
			return movInst(in.Rd, in.Ra)
		}
	case isa.AND:
		if (aok && a == 0) || (bok && b == 0) {
			return isa.Inst{Op: isa.LDI, Rd: in.Rd}
		}
	case isa.S4ADD:
		if bok && b == 0 {
			return isa.Inst{Op: isa.SLLI, Rd: in.Rd, Ra: in.Ra, Imm: 2}
		}
	case isa.S8ADD:
		if bok && b == 0 {
			return isa.Inst{Op: isa.SLLI, Rd: in.Rd, Ra: in.Ra, Imm: 3}
		}
	case isa.ADDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI:
		if in.Imm == 0 {
			return movInst(in.Rd, in.Ra)
		}
	}
	// Whole-instruction fold when every input is known and the value fits
	// LDI's sign-extended immediate.
	if v, ok := constValue(&in, known); ok && in.Op != isa.LDI {
		if uint64(int64(int32(v))) == v {
			return isa.Inst{Op: isa.LDI, Rd: in.Rd, Imm: int32(v)}
		}
	}
	return in
}

// constFold runs constant propagation + strength reduction over the slot
// list. PGI slots keep their shape (their emitted PC is the prediction's
// identity, and their value chain must stay trivially auditable); problem
// loads keep their shape (the load is the point).
func constFold(slots []slot) []slot {
	consts := make(map[isa.Reg]uint64)
	known := func(r isa.Reg) (uint64, bool) {
		if r == isa.Zero {
			return 0, true
		}
		v, ok := consts[r]
		return v, ok
	}
	out := slots[:0:0]
	for _, s := range slots {
		in := s.in
		if in.Op >= isa.CMOVEQ && in.Op <= isa.CMOVLE {
			// A known guard resolves the conditional move statically.
			if a, ok := known(in.Ra); ok {
				if !cmovFires(in.Op, a) {
					continue // rd keeps its old value: a no-op
				}
				in = movInst(in.Rd, in.Rb)
			}
		} else if !s.isRoot() && !in.IsLoad() {
			in = simplify(in, known)
		}
		if d, ok := in.Dest(); ok {
			if v, ok2 := constValue(&in, known); ok2 {
				consts[d] = v
			} else {
				delete(consts, d)
			}
		}
		s.in = in
		out = append(out, s)
	}
	return out
}

// dedup eliminates duplicate instructions across unrolled instances by
// value numbering: a slot whose destination already holds the value the
// slot would recompute is dropped. With no stores in a slice, loads of the
// same address value-number safely. PGI slots are never dropped — each one
// is one prediction.
func dedup(slots []slot) []slot {
	nextVN := 0
	regVN := make(map[isa.Reg]int)
	vnOf := func(r isa.Reg) int {
		if r == isa.Zero {
			return 0
		}
		if v, ok := regVN[r]; ok {
			return v
		}
		nextVN++
		regVN[r] = nextVN // first read: the live-in value
		return nextVN
	}
	exprVN := make(map[string]int)
	out := slots[:0:0]
	for _, s := range slots {
		d, hasDest := s.in.Dest()
		if !hasDest {
			out = append(out, s)
			continue
		}
		var srcs [3]isa.Reg
		n := s.in.SourcesInto(&srcs)
		key := fmt.Sprintf("%d|%d", s.in.Op, s.in.Imm)
		for i := 0; i < n; i++ {
			key = fmt.Sprintf("%s|%d", key, vnOf(srcs[i]))
		}
		v, seen := exprVN[key]
		if seen && s.pgi == nil && regVN[d] == v {
			continue // recomputes what d already holds
		}
		if !seen {
			nextVN++
			v = nextVN
			exprVN[key] = v
		}
		regVN[d] = v
		out = append(out, s)
	}
	return out
}

// deadCode removes slots whose register result is never consumed, walking
// backward from the roots (PGIs and problem loads). A conditional move's
// destination is also a source (the old value survives a non-firing move),
// so SourcesInto keeps the chain alive across if-converted hammocks.
func deadCode(slots []slot) []slot {
	live := make(map[isa.Reg]bool)
	keep := make([]bool, len(slots))
	for i := len(slots) - 1; i >= 0; i-- {
		s := &slots[i]
		d, hasDest := s.in.Dest()
		if !s.isRoot() && (!hasDest || !live[d]) {
			continue
		}
		keep[i] = true
		if hasDest {
			delete(live, d)
		}
		var srcs [3]isa.Reg
		n := s.in.SourcesInto(&srcs)
		for k := 0; k < n; k++ {
			live[srcs[k]] = true
		}
	}
	out := slots[:0:0]
	for i, s := range slots {
		if keep[i] {
			out = append(out, s)
		}
	}
	return out
}

func slotEq(a, b *slot) bool {
	if a.in != b.in || a.problemLoad != b.problemLoad {
		return false
	}
	if (a.pgi == nil) != (b.pgi == nil) {
		return false
	}
	if a.pgi != nil &&
		(a.pgi.BranchPC != b.pgi.BranchPC || a.pgi.TakenIfZero != b.pgi.TakenIfZero) {
		return false
	}
	return true
}

func blockEq(a, b []slot) bool {
	for i := range a {
		if !slotEq(&a[i], &b[i]) {
			return false
		}
	}
	return true
}

// reroll detects a repeating tail — the unrolled instances of one loop
// iteration — and reports the split into prologue, one loop body, and the
// repetition count (the paper's loop encapsulation). Identical instruction
// blocks are equivalent by construction: register dataflow is positional,
// so executing the block k times reproduces the unrolled sequence exactly.
// reps == 0 means no profitable loop was found (re-rolling spends one BR,
// so tiny repetitions stay unrolled).
func reroll(slots []slot) (pro, body []slot, reps int) {
	n := len(slots)
	bestSaved := 0
	for L := 1; L <= n/2; L++ {
		k := 1
		for (k+1)*L <= n && blockEq(slots[n-(k+1)*L:n-k*L], slots[n-L:]) {
			k++
		}
		if k < 2 {
			continue
		}
		if saved := (k-1)*L - 1; saved >= 2 && saved > bestSaved {
			bestSaved = saved
			pro, body, reps = slots[:n-k*L], slots[n-k*L:n-(k-1)*L], k
		}
	}
	if reps == 0 {
		return slots, nil, 0
	}
	return pro, body, reps
}
