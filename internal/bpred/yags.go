package bpred

import (
	"fmt"

	"repro/internal/stats"
)

// YAGS (Eden & Mudge, MICRO-31) splits a choice bimodal table from two
// small tagged "direction caches". The choice table records each branch's
// bias; the T-cache holds instances where a not-taken-biased branch went
// taken, and the NT-cache the converse. Only exceptions to the bias occupy
// cache space, which is why YAGS beats gshare at equal budget.
type YAGS struct {
	choice   []ctr
	t        []yagsEntry // consulted when choice says not-taken
	nt       []yagsEntry // consulted when choice says taken
	cmask    uint64
	emask    uint64
	tagBits  uint
	histBits uint

	// Stats counts which structure supplied each prediction and how the
	// tagged caches behave under aliasing.
	Stats stats.YAGSStats
}

type yagsEntry struct {
	tag   uint16
	c     ctr
	valid bool
}

// NewYAGS builds a YAGS predictor with choiceEntries bimodal counters and
// cacheEntries entries in each direction cache. The paper's 64 Kbit budget
// corresponds to NewYAGS(8192, 2048, 6, 12): 16 Kb choice + 2×2K×(2+6) = 48 Kb.
func NewYAGS(choiceEntries, cacheEntries int, tagBits, histBits uint) *YAGS {
	y := &YAGS{
		choice:   make([]ctr, choiceEntries),
		t:        make([]yagsEntry, cacheEntries),
		nt:       make([]yagsEntry, cacheEntries),
		cmask:    uint64(choiceEntries - 1),
		emask:    uint64(cacheEntries - 1),
		tagBits:  tagBits,
		histBits: histBits,
	}
	for i := range y.choice {
		y.choice[i] = 2
	}
	y.Stats.Kind = "yags"
	return y
}

// DefaultYAGS returns the Table 1 configuration (64 Kb budget).
func DefaultYAGS() *YAGS { return NewYAGS(8192, 2048, 6, 12) }

func (y *YAGS) choiceIdx(pc uint64) uint64 { return (pc >> 2) & y.cmask }

func (y *YAGS) cacheIdx(pc, hist uint64) uint64 {
	h := hist & (1<<y.histBits - 1)
	return ((pc >> 2) ^ h) & y.emask
}

func (y *YAGS) tag(pc uint64) uint16 {
	return uint16((pc >> 2) & (1<<y.tagBits - 1))
}

// Predict implements DirPredictor.
func (y *YAGS) Predict(pc, hist uint64) bool {
	y.Stats.Lookups++
	bias := y.choice[y.choiceIdx(pc)].taken()
	i := y.cacheIdx(pc, hist)
	tag := y.tag(pc)
	cache := y.nt
	if !bias {
		cache = y.t
	}
	if e := &cache[i]; e.valid {
		if e.tag == tag {
			y.Stats.CacheHits++
			return e.c.taken()
		}
		y.Stats.CacheAliased++
	}
	y.Stats.ChoiceUsed++
	return bias
}

// Update implements DirPredictor.
func (y *YAGS) Update(pc, hist uint64, taken bool) {
	ci := y.choiceIdx(pc)
	bias := y.choice[ci].taken()
	i := y.cacheIdx(pc, hist)
	tag := y.tag(pc)

	cache := y.nt
	if !bias {
		cache = y.t
	}
	e := &cache[i]
	hit := e.valid && e.tag == tag

	if hit {
		e.c = train(e.c, taken)
	} else if taken != bias {
		// Allocate: this instance is an exception to the bias.
		y.Stats.Allocs++
		if e.valid {
			y.Stats.AllocEvictions++
		}
		*e = yagsEntry{tag: tag, valid: true}
		e.c = train(2, taken) // weakly toward the observed outcome
	}

	// The choice table trains except when the cache supplied a correct
	// prediction that disagrees with the bias (keeping the bias stable).
	if !(hit && e.c.taken() == taken && taken != bias) {
		y.choice[ci] = train(y.choice[ci], taken)
	}
}

// Spec implements Predictor.
func (y *YAGS) Spec() string {
	return fmt.Sprintf("yags:%d,%d,%d,%d", len(y.choice), len(y.t), y.tagBits, y.histBits)
}

// Counters implements Predictor.
func (y *YAGS) Counters() (string, any) { return "Bpred.YAGS", &y.Stats }

// SaveState implements Predictor.
func (y *YAGS) SaveState() []byte {
	var w blobW
	w.u64(uint64(len(y.choice)))
	for _, c := range y.choice {
		w.u8(uint8(c))
	}
	saveYAGSEntries := func(entries []yagsEntry) {
		w.u64(uint64(len(entries)))
		for _, e := range entries {
			w.u16(e.tag)
			w.u8(uint8(e.c))
			w.bool(e.valid)
		}
	}
	saveYAGSEntries(y.t)
	saveYAGSEntries(y.nt)
	return w.finish()
}

// LoadState implements Predictor.
func (y *YAGS) LoadState(blob []byte) error {
	r, err := openBlob("yags", blob)
	if err != nil {
		return err
	}
	if n := r.u64(); n != uint64(len(y.choice)) {
		return fmt.Errorf("yags: state has %d choice entries, predictor %d", n, len(y.choice))
	}
	for i := range y.choice {
		y.choice[i] = ctr(r.u8())
	}
	loadYAGSEntries := func(entries []yagsEntry) error {
		if n := r.u64(); n != uint64(len(entries)) {
			return fmt.Errorf("yags: state has %d cache entries, predictor %d", n, len(entries))
		}
		for i := range entries {
			entries[i] = yagsEntry{tag: r.u16(), c: ctr(r.u8()), valid: r.bool()}
		}
		return nil
	}
	if err := loadYAGSEntries(y.t); err != nil {
		return err
	}
	if err := loadYAGSEntries(y.nt); err != nil {
		return err
	}
	return r.done()
}
