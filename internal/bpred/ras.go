package bpred

import "repro/internal/stats"

// RAS is the 64-entry return address stack. Pushes and pops happen
// speculatively at fetch; each in-flight control instruction checkpoints
// (top-of-stack pointer, top value) so a squash restores the stack exactly
// — the standard single-entry repair scheme, sufficient because the stack
// body is only corrupted above the saved pointer.
type RAS struct {
	stack []uint64
	sp    int // index of the next free slot (top is sp-1)

	// Stats counts speculative fetch-path traffic (squash repair does not
	// rewind the counters; they tally events as the front end saw them).
	Stats stats.RASStats
}

// RASState is a checkpoint of the stack.
type RASState struct {
	SP  int
	Top uint64
}

// NewRAS builds a return address stack of n entries.
func NewRAS(n int) *RAS { return &RAS{stack: make([]uint64, n)} }

func (r *RAS) wrap(i int) int {
	n := len(r.stack)
	return ((i % n) + n) % n
}

// Push records a return address (on CALL fetch).
func (r *RAS) Push(addr uint64) {
	r.Stats.Pushes++
	if r.sp >= len(r.stack) {
		r.Stats.Overflows++
	}
	r.stack[r.wrap(r.sp)] = addr
	r.sp++
}

// Pop predicts the target of a RET.
func (r *RAS) Pop() uint64 {
	r.Stats.Pops++
	if r.sp <= 0 {
		r.Stats.Underflows++
	}
	r.sp--
	return r.stack[r.wrap(r.sp)]
}

// Save captures a checkpoint.
func (r *RAS) Save() RASState {
	return RASState{SP: r.sp, Top: r.stack[r.wrap(r.sp-1)]}
}

// Restore rewinds to a checkpoint.
func (r *RAS) Restore(s RASState) {
	r.sp = s.SP
	r.stack[r.wrap(r.sp-1)] = s.Top
}

// Depth returns the logical stack depth (can exceed capacity under deep
// recursion; the oldest entries are then overwritten).
func (r *RAS) Depth() int { return r.sp }
