package bpred

import "repro/internal/stats"

// RAS is the 64-entry return address stack. Pushes and pops happen
// speculatively at fetch. Squash repair is full-height: every Push
// journals the stack slot it overwrites, each in-flight control
// instruction checkpoints (stack pointer, journal position) — both O(1) —
// and a restore rewinds the journal to the checkpointed position, undoing
// every wrong-path overwrite. The retire stage commits checkpoints in
// program order (Commit), which trims the dead journal prefix, so the
// live journal never holds more entries than there are in-flight pushes.
//
// The earlier scheme saved only (sp, top): wrong-path pops below the
// checkpointed top that were then overwritten by wrong-path pushes stayed
// corrupted and surfaced as spurious RET mispredictions after deep
// call-chain squashes. The journal repairs those slots exactly.
type RAS struct {
	stack []uint64
	sp    int // index of the next free slot (top is sp-1)

	// jbuf[jhead:] is the live journal of stack-slot overwrites, oldest
	// first; jbase is the absolute journal position of jbuf[jhead].
	// Entries in jbuf[:jhead] are committed (their pushes retired) and are
	// reclaimed lazily so Commit stays amortized O(1).
	jbuf  []rasWrite
	jhead int
	jbase uint64

	// Stats counts speculative fetch-path traffic (squash repair does not
	// rewind the counters; they tally events as the front end saw them).
	Stats stats.RASStats
}

// rasWrite records one stack-slot overwrite: slot idx held old before the
// push that journaled it.
type rasWrite struct {
	idx int
	old uint64
}

// RASState is an O(1) checkpoint of the stack: the stack pointer and the
// absolute journal position at capture time. Restore repairs the full
// stack height by unwinding the journal back to J.
type RASState struct {
	SP int
	J  uint64
}

// NewRAS builds a return address stack of n entries.
func NewRAS(n int) *RAS { return &RAS{stack: make([]uint64, n)} }

func (r *RAS) wrap(i int) int {
	n := len(r.stack)
	return ((i % n) + n) % n
}

// jtail is the absolute journal position one past the newest entry.
func (r *RAS) jtail() uint64 { return r.jbase + uint64(len(r.jbuf)-r.jhead) }

// Push records a return address (on CALL fetch).
func (r *RAS) Push(addr uint64) {
	r.Stats.Pushes++
	if r.sp >= len(r.stack) {
		r.Stats.Overflows++
	}
	w := r.wrap(r.sp)
	r.jbuf = append(r.jbuf, rasWrite{idx: w, old: r.stack[w]})
	r.stack[w] = addr
	r.sp++
}

// Pop predicts the target of a RET. Pops do not write the stack body, so
// they need no journal entry — restoring sp alone repairs them.
func (r *RAS) Pop() uint64 {
	r.Stats.Pops++
	if r.sp <= 0 {
		r.Stats.Underflows++
	}
	r.sp--
	return r.stack[r.wrap(r.sp)]
}

// Save captures a checkpoint.
func (r *RAS) Save() RASState {
	return RASState{SP: r.sp, J: r.jtail()}
}

// Restore rewinds to a checkpoint, undoing every stack-slot overwrite
// journaled after it. Callers restore in-flight checkpoints only, which
// Commit has not passed; a position older than the journal (possible only
// through misuse) degrades to pointer-only repair of what remains.
func (r *RAS) Restore(s RASState) {
	j := s.J
	if j < r.jbase {
		j = r.jbase
	}
	for r.jtail() > j {
		e := r.jbuf[len(r.jbuf)-1]
		r.stack[e.idx] = e.old
		r.jbuf = r.jbuf[:len(r.jbuf)-1]
	}
	if r.jhead == len(r.jbuf) {
		r.jbuf, r.jhead = r.jbuf[:0], 0
	}
	r.sp = s.SP
}

// Commit retires a checkpoint taken at s: every journal entry at a
// position below s.J belongs to a push that is now architecturally
// committed and can never be restored past again. The retire stage calls
// this in program order, bounding the live journal by the number of
// in-flight pushes. The dead prefix is dropped lazily (amortized O(1)).
func (r *RAS) Commit(s RASState) {
	if s.J <= r.jbase {
		return
	}
	n := int(s.J - r.jbase)
	if live := len(r.jbuf) - r.jhead; n > live {
		n = live
	}
	r.jhead += n
	r.jbase += uint64(n)
	if r.jhead == len(r.jbuf) {
		r.jbuf, r.jhead = r.jbuf[:0], 0
	} else if r.jhead >= 32 && r.jhead >= len(r.jbuf)-r.jhead {
		m := copy(r.jbuf, r.jbuf[r.jhead:])
		r.jbuf, r.jhead = r.jbuf[:m], 0
	}
}

// CommitAll drops the whole journal. Valid only when no checkpoint taken
// before now will ever be restored — e.g. the functional warm loop, which
// pushes and pops with no speculation to repair.
func (r *RAS) CommitAll() {
	r.jbase = r.jtail()
	r.jbuf, r.jhead = r.jbuf[:0], 0
}

// Depth returns the logical stack depth (can exceed capacity under deep
// recursion; the oldest entries are then overwritten).
func (r *RAS) Depth() int { return r.sp }
