// Package bpred implements the paper's front-end predictors (Table 1): a
// 64 Kbit YAGS direction predictor, a 32 Kbit cascading indirect branch
// predictor, and a 64-entry return address stack with checkpoint repair.
// Bimodal and gshare predictors are included as ablation baselines, and
// the prediction-quality frontier adds a value predictor, a sparse
// correlation-mining predictor, and a perfect-slice upper bound.
//
// Predictors are history-external: the CPU owns the speculative global
// history and path history registers (checkpointed per in-flight branch and
// restored on squash) and passes them in, so prediction at fetch and update
// at retire see exactly the history a real front end would.
//
// Every predictor sits behind the Predictor seam: it names itself with a
// canonical spec (which the CPU config fingerprints), serializes its warm
// state as an opaque CRC-guarded blob (which the checkpoint codec stores
// without knowing the layout), and exposes its counter struct for the
// stats registry. New predictors plug in through the registry
// (RegisterDir/RegisterIndirect) — the core, checkpoint, and harness
// layers need no changes.
package bpred

// Predictor is the seam shared by every predictor kind. The CPU, the
// checkpoint codec, and the stats registry talk to predictors only
// through this interface (plus the direction/indirect Predict/Update
// pairs), so adding a predictor is registry registration + config only.
type Predictor interface {
	// Spec returns the canonical registry spec ("name" or "name:params")
	// that reconstructs this predictor. It is embedded in config
	// fingerprints and checkpoint sections, so it must be deterministic.
	Spec() string
	// SaveState serializes the warm (non-stats) predictor state as an
	// opaque blob with an integrity trailer. LoadState on an identically
	// configured predictor must reproduce the exact state.
	SaveState() []byte
	// LoadState restores a SaveState blob, failing on corruption or a
	// geometry mismatch.
	LoadState(b []byte) error
	// Counters returns the stats.Snapshot field path (e.g. "Bpred.YAGS")
	// and the counter struct to register there, or ("", nil) if the
	// predictor keeps no counters.
	Counters() (field string, ptr any)
}

// DirPredictor predicts conditional branch directions.
type DirPredictor interface {
	Predictor
	// Predict returns the predicted direction for the branch at pc under
	// global history hist. Predict runs at fetch — possibly on the wrong
	// path — so it may mutate stats but no predictive state.
	Predict(pc, hist uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc, hist uint64, taken bool)
}

// IndirectPredictor predicts indirect jump targets.
type IndirectPredictor interface {
	Predictor
	// Predict returns the predicted target (0 if no prediction).
	Predict(pc, path uint64) uint64
	// Update trains the predictor with the resolved target.
	Update(pc, path, target uint64)
}

// OutcomePrimed is implemented by predictors that want the actual branch
// outcome before Predict — the execute-at-fetch core knows it, which is
// what makes a perfect upper bound implementable as a plain predictor.
type OutcomePrimed interface {
	PrimeOutcome(taken bool)
}

// ValueObserver is implemented by predictors that learn from the value a
// conditional branch tested. The core calls it at retirement (correct
// path only), just before Update, with the architectural value of the
// branch's source register and the branch's condition.
type ValueObserver interface {
	ObserveValue(pc uint64, cond Cond, value uint64)
}

// Cond classifies a conditional branch's test against zero. It mirrors
// the ISA's branch ops without importing the isa package (the CPU maps
// opcodes to Cond), so value predictors can evaluate a predicted source
// value into a predicted direction.
type Cond uint8

const (
	CondNone Cond = iota
	CondEQ        // taken iff value == 0
	CondNE        // taken iff value != 0
	CondLT        // taken iff value < 0 (signed)
	CondLE        // taken iff value <= 0 (signed)
	CondGT        // taken iff value > 0 (signed)
	CondGE        // taken iff value >= 0 (signed)
)

// Eval applies the condition to a register value.
func (c Cond) Eval(v uint64) bool {
	s := int64(v)
	switch c {
	case CondEQ:
		return v == 0
	case CondNE:
		return v != 0
	case CondLT:
		return s < 0
	case CondLE:
		return s <= 0
	case CondGT:
		return s > 0
	case CondGE:
		return s >= 0
	}
	return false
}

// ctr is a 2-bit saturating counter.
type ctr uint8

func (c ctr) taken() bool { return c >= 2 }

func (c ctr) inc() ctr {
	if c < 3 {
		return c + 1
	}
	return c
}

func (c ctr) dec() ctr {
	if c > 0 {
		return c - 1
	}
	return c
}

func train(c ctr, taken bool) ctr {
	if taken {
		return c.inc()
	}
	return c.dec()
}
