// Package bpred implements the paper's front-end predictors (Table 1): a
// 64 Kbit YAGS direction predictor, a 32 Kbit cascading indirect branch
// predictor, and a 64-entry return address stack with checkpoint repair.
// Bimodal and gshare predictors are included as ablation baselines.
//
// Predictors are history-external: the CPU owns the speculative global
// history and path history registers (checkpointed per in-flight branch and
// restored on squash) and passes them in, so prediction at fetch and update
// at retire see exactly the history a real front end would.
package bpred

// DirPredictor predicts conditional branch directions.
type DirPredictor interface {
	// Predict returns the predicted direction for the branch at pc under
	// global history hist.
	Predict(pc, hist uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc, hist uint64, taken bool)
}

// IndirectPredictor predicts indirect jump targets.
type IndirectPredictor interface {
	// Predict returns the predicted target (0 if no prediction).
	Predict(pc, path uint64) uint64
	// Update trains the predictor with the resolved target.
	Update(pc, path, target uint64)
}

// ctr is a 2-bit saturating counter.
type ctr uint8

func (c ctr) taken() bool { return c >= 2 }

func (c ctr) inc() ctr {
	if c < 3 {
		return c + 1
	}
	return c
}

func (c ctr) dec() ctr {
	if c > 0 {
		return c - 1
	}
	return c
}

func train(c ctr, taken bool) ctr {
	if taken {
		return c.inc()
	}
	return c.dec()
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []ctr
	mask  uint64
}

// NewBimodal builds a bimodal predictor with entries counters (power of
// two).
func NewBimodal(entries int) *Bimodal {
	t := make([]ctr, entries)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}
}

func (b *Bimodal) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc, _ uint64) bool { return b.table[b.idx(pc)].taken() }

// Update implements DirPredictor.
func (b *Bimodal) Update(pc, _ uint64, taken bool) {
	i := b.idx(pc)
	b.table[i] = train(b.table[i], taken)
}

// GShare xors global history into the index.
type GShare struct {
	table    []ctr
	mask     uint64
	histBits uint
}

// NewGShare builds a gshare predictor with entries counters and histBits of
// global history.
func NewGShare(entries int, histBits uint) *GShare {
	t := make([]ctr, entries)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: uint64(entries - 1), histBits: histBits}
}

func (g *GShare) idx(pc, hist uint64) uint64 {
	h := hist & (1<<g.histBits - 1)
	return ((pc >> 2) ^ h) & g.mask
}

// Predict implements DirPredictor.
func (g *GShare) Predict(pc, hist uint64) bool { return g.table[g.idx(pc, hist)].taken() }

// Update implements DirPredictor.
func (g *GShare) Update(pc, hist uint64, taken bool) {
	i := g.idx(pc, hist)
	g.table[i] = train(g.table[i], taken)
}

// Oracle is the perfect direction predictor used by the limit studies: the
// CPU primes it with the actual outcome before asking.
type Oracle struct{ Outcome bool }

// Predict implements DirPredictor by returning the primed outcome.
func (o *Oracle) Predict(_, _ uint64) bool { return o.Outcome }

// Update implements DirPredictor as a no-op.
func (o *Oracle) Update(_, _ uint64, _ bool) {}
