package bpred

// Deterministic little-endian blob codec for predictor warm state.
// Every SaveState blob ends in a CRC32 trailer over the payload, so a
// single flipped byte anywhere in a stored predictor section is caught
// by LoadState itself — the checkpoint container does not need to know
// any predictor's layout to validate it.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

type blobW struct{ b []byte }

func (w *blobW) u8(v uint8)   { w.b = append(w.b, v) }
func (w *blobW) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *blobW) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

func (w *blobW) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// finish appends the CRC trailer and returns the completed blob.
func (w *blobW) finish() []byte {
	return binary.LittleEndian.AppendUint32(w.b, crc32.ChecksumIEEE(w.b))
}

var errBlobTruncated = errors.New("truncated state blob")

// openBlob validates the CRC trailer and returns a reader over the
// payload. kind labels errors ("yags", "value", ...).
func openBlob(kind string, b []byte) (*blobR, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("bpred: %s: %w", kind, errBlobTruncated)
	}
	payload := b[:len(b)-4]
	want := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("bpred: %s: state blob CRC mismatch (corrupt)", kind)
	}
	return &blobR{b: payload, kind: kind}, nil
}

type blobR struct {
	b    []byte
	kind string
	err  error
}

func (r *blobR) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("bpred: %s: %w", r.kind, errBlobTruncated)
	}
	r.b = nil
}

func (r *blobR) u8() uint8 {
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *blobR) u16() uint16 {
	if len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *blobR) u64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *blobR) bool() bool { return r.u8() != 0 }

// count reads a length prefix and bounds it by the bytes that could
// possibly remain (minSize bytes per element), so a corrupt length
// cannot drive a huge allocation.
func (r *blobR) count(minSize int) int {
	n := r.u64()
	if r.err == nil && minSize > 0 && n > uint64(len(r.b)/minSize) {
		r.fail()
	}
	if r.err != nil {
		return 0
	}
	return int(n)
}

// done fails if any read ran short or payload bytes remain.
func (r *blobR) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("bpred: %s: %d trailing bytes in state blob", r.kind, len(r.b))
	}
	return nil
}
