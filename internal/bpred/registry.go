package bpred

// The predictor registry maps spec strings — "name" or "name:params" —
// to factories. Everything above this package (cpu.Config, the harness,
// the cmd flags) selects predictors by spec string only, so shipping a
// new predictor means writing it here and registering it; no core,
// checkpoint, or harness changes.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Default specs used when a config leaves the predictor choice empty.
const (
	DefaultDirSpec      = "yags"
	DefaultIndirectSpec = "cascaded"
)

// DirFactory builds a direction predictor from the params part of a spec
// ("" means the predictor's defaults).
type DirFactory func(params string) (DirPredictor, error)

// IndirectFactory builds an indirect target predictor.
type IndirectFactory func(params string) (IndirectPredictor, error)

var (
	dirFactories      = map[string]DirFactory{}
	indirectFactories = map[string]IndirectFactory{}
)

// RegisterDir adds a direction predictor under name. It panics on a
// duplicate — registration happens at init time and a collision is a
// programming error.
func RegisterDir(name string, f DirFactory) {
	if name == "" || f == nil {
		panic("bpred: RegisterDir: empty name or nil factory")
	}
	if _, dup := dirFactories[name]; dup {
		panic("bpred: RegisterDir: duplicate predictor " + name)
	}
	dirFactories[name] = f
}

// RegisterIndirect adds an indirect predictor under name.
func RegisterIndirect(name string, f IndirectFactory) {
	if name == "" || f == nil {
		panic("bpred: RegisterIndirect: empty name or nil factory")
	}
	if _, dup := indirectFactories[name]; dup {
		panic("bpred: RegisterIndirect: duplicate predictor " + name)
	}
	indirectFactories[name] = f
}

// DirNames returns the registered direction predictor names, sorted.
func DirNames() []string { return sortedKeys(dirFactories) }

// IndirectNames returns the registered indirect predictor names, sorted.
func IndirectNames() []string { return sortedKeys(indirectFactories) }

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SplitSpec separates a predictor spec into name and params. The empty
// spec resolves to def.
func SplitSpec(spec, def string) (name, params string) {
	if spec == "" {
		spec = def
	}
	name, params, _ = strings.Cut(spec, ":")
	return name, params
}

// NewDir resolves a direction predictor spec ("" = DefaultDirSpec).
func NewDir(spec string) (DirPredictor, error) {
	name, params := SplitSpec(spec, DefaultDirSpec)
	f, ok := dirFactories[name]
	if !ok {
		return nil, fmt.Errorf("bpred: unknown direction predictor %q (registered: %s)",
			name, strings.Join(DirNames(), ", "))
	}
	p, err := f(params)
	if err != nil {
		return nil, fmt.Errorf("bpred: %s: %w", name, err)
	}
	return p, nil
}

// NewIndirect resolves an indirect predictor spec ("" = DefaultIndirectSpec).
func NewIndirect(spec string) (IndirectPredictor, error) {
	name, params := SplitSpec(spec, DefaultIndirectSpec)
	f, ok := indirectFactories[name]
	if !ok {
		return nil, fmt.Errorf("bpred: unknown indirect predictor %q (registered: %s)",
			name, strings.Join(IndirectNames(), ", "))
	}
	p, err := f(params)
	if err != nil {
		return nil, fmt.Errorf("bpred: %s: %w", name, err)
	}
	return p, nil
}

// intParams parses an optional comma-separated integer parameter list,
// filling missing positions from defaults. Table geometries must be
// powers of two (the predictors index with masks).
func intParams(params string, defaults []int) ([]int, error) {
	out := append([]int(nil), defaults...)
	if params == "" {
		return out, nil
	}
	parts := strings.Split(params, ",")
	if len(parts) > len(defaults) {
		return nil, fmt.Errorf("got %d params, want at most %d", len(parts), len(defaults))
	}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad param %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func pow2(name string, v int) error {
	if v <= 0 || v&(v-1) != 0 {
		return fmt.Errorf("%s must be a power of two, got %d", name, v)
	}
	return nil
}

func init() {
	RegisterDir("yags", func(params string) (DirPredictor, error) {
		p, err := intParams(params, []int{8192, 2048, 6, 12})
		if err != nil {
			return nil, err
		}
		if err := pow2("choice entries", p[0]); err != nil {
			return nil, err
		}
		if err := pow2("cache entries", p[1]); err != nil {
			return nil, err
		}
		return NewYAGS(p[0], p[1], uint(p[2]), uint(p[3])), nil
	})
	RegisterDir("bimodal", func(params string) (DirPredictor, error) {
		p, err := intParams(params, []int{8192})
		if err != nil {
			return nil, err
		}
		if err := pow2("entries", p[0]); err != nil {
			return nil, err
		}
		return NewBimodal(p[0]), nil
	})
	RegisterDir("gshare", func(params string) (DirPredictor, error) {
		p, err := intParams(params, []int{8192, 12})
		if err != nil {
			return nil, err
		}
		if err := pow2("entries", p[0]); err != nil {
			return nil, err
		}
		return NewGShare(p[0], uint(p[1])), nil
	})
	RegisterIndirect("cascaded", func(params string) (IndirectPredictor, error) {
		p, err := intParams(params, []int{256, 512, 8, 10})
		if err != nil {
			return nil, err
		}
		if err := pow2("stage-1 entries", p[0]); err != nil {
			return nil, err
		}
		if err := pow2("stage-2 entries", p[1]); err != nil {
			return nil, err
		}
		return NewCascaded(p[0], p[1], uint(p[2]), uint(p[3])), nil
	})
}
