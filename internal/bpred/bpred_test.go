package bpred

import (
	"math/rand"
	"testing"
)

func trainUntil(p DirPredictor, pc, hist uint64, taken bool, n int) {
	for i := 0; i < n; i++ {
		p.Update(pc, hist, taken)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := uint64(0x1000)
	trainUntil(b, pc, 0, false, 4)
	if b.Predict(pc, 0) {
		t.Error("bimodal failed to learn not-taken")
	}
	trainUntil(b, pc, 0, true, 4)
	if !b.Predict(pc, 0) {
		t.Error("bimodal failed to learn taken")
	}
}

func TestBimodalHysteresis(t *testing.T) {
	b := NewBimodal(1024)
	pc := uint64(0x2000)
	trainUntil(b, pc, 0, true, 4)
	b.Update(pc, 0, false) // one anomaly
	if !b.Predict(pc, 0) {
		t.Error("single anomaly flipped a saturated counter")
	}
}

func TestGShareLearnsHistoryPattern(t *testing.T) {
	g := NewGShare(4096, 8)
	pc := uint64(0x3000)
	// Alternating pattern: taken iff low history bit is 0. Bimodal cannot
	// learn this; gshare can because history disambiguates.
	var hist uint64
	correct := 0
	for i := 0; i < 2000; i++ {
		want := hist&1 == 0
		if g.Predict(pc, hist) == want && i > 200 {
			correct++
		}
		g.Update(pc, hist, want)
		hist = hist<<1 | map[bool]uint64{true: 1, false: 0}[want]
	}
	if correct < 1700 {
		t.Errorf("gshare learned %d/1800 of an alternating pattern", correct)
	}
}

func TestYAGSLearnsBias(t *testing.T) {
	y := DefaultYAGS()
	pc := uint64(0x4000)
	trainUntil(y, pc, 0, true, 8)
	if !y.Predict(pc, 0) {
		t.Error("YAGS failed to learn a taken bias")
	}
	pc2 := uint64(0x4040)
	trainUntil(y, pc2, 0, false, 8)
	if y.Predict(pc2, 0) {
		t.Error("YAGS failed to learn a not-taken bias")
	}
}

func TestYAGSLearnsExceptions(t *testing.T) {
	y := DefaultYAGS()
	pc := uint64(0x5000)
	// Mostly taken, but always not-taken under one specific history.
	special := uint64(0xAB)
	correct, total := 0, 0
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		hist := uint64(rng.Intn(256))
		want := hist != special
		if rng.Intn(8) == 0 {
			hist = special
			want = false
		}
		got := y.Predict(pc, hist)
		if i > 1000 {
			total++
			if got == want {
				correct++
			}
		}
		y.Update(pc, hist, want)
	}
	if float64(correct)/float64(total) < 0.95 {
		t.Errorf("YAGS exception accuracy = %d/%d", correct, total)
	}
}

func TestYAGSBeatsBimodalOnCorrelated(t *testing.T) {
	y := DefaultYAGS()
	b := NewBimodal(8192)
	pc := uint64(0x6000)
	var hist uint64
	yc, bc := 0, 0
	// Period-3 pattern: T T N — history-correlated, bias-taken.
	pattern := []bool{true, true, false}
	for i := 0; i < 6000; i++ {
		want := pattern[i%3]
		if i > 1000 {
			if y.Predict(pc, hist) == want {
				yc++
			}
			if b.Predict(pc, hist) == want {
				bc++
			}
		}
		y.Update(pc, hist, want)
		b.Update(pc, hist, want)
		if want {
			hist = hist<<1 | 1
		} else {
			hist = hist << 1
		}
	}
	if yc <= bc {
		t.Errorf("YAGS (%d) did not beat bimodal (%d) on a correlated pattern", yc, bc)
	}
}

func TestYAGSUnbiasedBranchIsHard(t *testing.T) {
	// A data-dependent 50/50 branch with random history must hover near
	// chance — this is exactly the paper's "problem branch" premise.
	y := DefaultYAGS()
	pc := uint64(0x7000)
	rng := rand.New(rand.NewSource(13))
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		hist := rng.Uint64()
		want := rng.Intn(2) == 0
		if i > 2000 {
			total++
			if y.Predict(pc, hist) == want {
				correct++
			}
		}
		y.Update(pc, hist, want)
	}
	acc := float64(correct) / float64(total)
	if acc > 0.65 {
		t.Errorf("YAGS predicted random branch at %.2f — model broken", acc)
	}
}

func TestOracle(t *testing.T) {
	o := &Oracle{}
	o.Outcome = true
	if !o.Predict(1, 2) {
		t.Error("oracle ignored primed outcome")
	}
	o.Outcome = false
	if o.Predict(1, 2) {
		t.Error("oracle ignored primed outcome")
	}
}

func TestCascadedMonomorphic(t *testing.T) {
	c := DefaultCascaded()
	pc := uint64(0x8000)
	c.Update(pc, 0, 0x9000)
	if got := c.Predict(pc, 0); got != 0x9000 {
		t.Errorf("stage-1 predict = %#x", got)
	}
	// Monomorphic branches must not allocate stage 2.
	for i := range c.stage2 {
		if c.stage2[i].valid {
			t.Fatal("stage 2 allocated for a monomorphic branch")
		}
	}
}

func TestCascadedPolymorphic(t *testing.T) {
	c := DefaultCascaded()
	pc := uint64(0x8000)
	// Target depends on path.
	pathA, pathB := uint64(0x11), uint64(0x2200)
	for i := 0; i < 10; i++ {
		c.Update(pc, pathA, 0xA000)
		c.Update(pc, pathB, 0xB000)
	}
	if got := c.Predict(pc, pathA); got != 0xA000 {
		t.Errorf("path A predict = %#x", got)
	}
	if got := c.Predict(pc, pathB); got != 0xB000 {
		t.Errorf("path B predict = %#x", got)
	}
}

func TestCascadedColdReturnsZero(t *testing.T) {
	c := DefaultCascaded()
	if got := c.Predict(0xF000, 0); got != 0 {
		t.Errorf("cold predict = %#x", got)
	}
}

func TestPushPathChanges(t *testing.T) {
	p := PushPath(0, 0x4000)
	if p == 0 {
		t.Error("path history did not absorb the target")
	}
	if PushPath(p, 0x4000) == p {
		t.Error("path history must keep evolving")
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(64)
	r.Push(0x1004)
	r.Push(0x2008)
	if got := r.Pop(); got != 0x2008 {
		t.Errorf("pop = %#x", got)
	}
	if got := r.Pop(); got != 0x1004 {
		t.Errorf("pop = %#x", got)
	}
}

func TestRASSaveRestore(t *testing.T) {
	r := NewRAS(64)
	r.Push(0x1000)
	r.Push(0x2000)
	cp := r.Save()
	// Wrong-path activity: one pop, one garbage push.
	r.Pop()
	r.Push(0xDEAD)
	r.Restore(cp)
	if got := r.Pop(); got != 0x2000 {
		t.Errorf("post-restore pop = %#x", got)
	}
	if got := r.Pop(); got != 0x1000 {
		t.Errorf("post-restore pop = %#x", got)
	}
}

func TestRASRepairFullHeight(t *testing.T) {
	// The case the old (sp, top) scheme could not repair: wrong-path pops
	// below the checkpointed top followed by wrong-path pushes that
	// overwrite the vacated slots. The journal restores every slot.
	r := NewRAS(64)
	r.Push(0x1000)
	r.Push(0x2000)
	cp := r.Save()
	r.Pop()
	r.Pop()
	r.Push(0xDEAD) // overwrites the slot that held 0x1000
	r.Push(0xBEEF) // overwrites the slot that held 0x2000
	r.Restore(cp)
	if got := r.Pop(); got != 0x2000 {
		t.Errorf("top entry: pop = %#x, want 0x2000", got)
	}
	if got := r.Pop(); got != 0x1000 {
		t.Errorf("second entry: pop = %#x, want 0x1000 (full-height repair)", got)
	}
}

func TestRASRepairNestedCheckpoints(t *testing.T) {
	// Restores must be repeatable against progressively older in-flight
	// checkpoints, exactly as nested squashes replay them.
	r := NewRAS(8)
	r.Push(0x100)
	cpOld := r.Save()
	r.Push(0x200)
	cpMid := r.Save()
	r.Pop()
	r.Pop()
	r.Push(0xAAA)
	r.Push(0xBBB)
	r.Restore(cpMid)
	if got := r.Save(); got.SP != cpMid.SP {
		t.Fatalf("sp after mid restore = %d, want %d", got.SP, cpMid.SP)
	}
	r.Restore(cpOld)
	if got := r.Pop(); got != 0x100 {
		t.Errorf("after nested restores: pop = %#x, want 0x100", got)
	}
}

func TestRASCommitTrimsJournal(t *testing.T) {
	// In-order commits drop the dead journal prefix; later restores still
	// repair everything younger than the newest committed checkpoint.
	r := NewRAS(64)
	for i := 0; i < 100; i++ {
		r.Push(uint64(0x1000 + i*8))
		r.Commit(r.Save()) // everything so far is committed
	}
	if got := len(r.jbuf) - r.jhead; got != 0 {
		t.Fatalf("live journal after full commit = %d entries, want 0", got)
	}
	cp := r.Save()
	r.Pop()
	r.Pop()
	r.Push(0xDEAD)
	r.Push(0xBEEF)
	r.Restore(cp)
	if got := r.Pop(); got != uint64(0x1000+99*8) {
		t.Errorf("post-commit restore: pop = %#x", got)
	}
	if got := r.Pop(); got != uint64(0x1000+98*8) {
		t.Errorf("post-commit restore: pop = %#x", got)
	}
}

func TestRASRepairAcrossOverflowWrap(t *testing.T) {
	// Wrong-path pushes that wrap the circular stack overwrite its oldest
	// entries; the journal must bring those back too.
	r := NewRAS(4)
	for i := 0; i < 4; i++ {
		r.Push(uint64(0x100 + i*8))
	}
	cp := r.Save()
	for i := 0; i < 4; i++ {
		r.Push(0xD000 + uint64(i)) // wraps, clobbering all four live slots
	}
	r.Restore(cp)
	for i := 3; i >= 0; i-- {
		if got := r.Pop(); got != uint64(0x100+i*8) {
			t.Fatalf("entry %d after wrap repair: pop = %#x, want %#x", i, got, 0x100+i*8)
		}
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 0; i < 6; i++ {
		r.Push(uint64(0x1000 + i*4))
	}
	// The newest 4 survive.
	for i := 5; i >= 2; i-- {
		if got := r.Pop(); got != uint64(0x1000+i*4) {
			t.Errorf("pop = %#x, want %#x", got, 0x1000+i*4)
		}
	}
	if r.Depth() != 2 {
		t.Errorf("depth = %d", r.Depth())
	}
}

func TestRASDeepCallChain(t *testing.T) {
	// Matched call/return nesting up to the capacity must predict
	// perfectly.
	r := NewRAS(64)
	var addrs []uint64
	for i := 0; i < 64; i++ {
		a := uint64(0x10000 + i*8)
		addrs = append(addrs, a)
		r.Push(a)
	}
	for i := 63; i >= 0; i-- {
		if got := r.Pop(); got != addrs[i] {
			t.Fatalf("pop %d = %#x, want %#x", i, got, addrs[i])
		}
	}
}

// Benchmarks for the predictor hot paths (these run in every simulated
// fetch cycle, so their cost dominates simulator throughput).
func BenchmarkYAGSPredict(b *testing.B) {
	y := DefaultYAGS()
	for i := 0; i < b.N; i++ {
		y.Predict(uint64(i)<<2, uint64(i)*2654435761)
	}
}

func BenchmarkYAGSUpdate(b *testing.B) {
	y := DefaultYAGS()
	for i := 0; i < b.N; i++ {
		y.Update(uint64(i)<<2, uint64(i)*2654435761, i&3 != 0)
	}
}

func BenchmarkCascadedPredict(b *testing.B) {
	c := DefaultCascaded()
	for i := 0; i < b.N; i++ {
		c.Predict(uint64(i)<<2, uint64(i))
	}
}
