package bpred

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// trainDir drives p through n deterministic (pc, value, outcome) triples,
// exercising whichever optional hooks it implements, so its state is far
// from the zero value before serialization tests.
func trainDir(p DirPredictor, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	prime, _ := p.(OutcomePrimed)
	vo, _ := p.(ValueObserver)
	var hist uint64
	for i := 0; i < n; i++ {
		pc := uint64(0x1000 + 8*rng.Intn(32))
		v := uint64(rng.Intn(5))
		taken := v != 0
		if prime != nil {
			prime.PrimeOutcome(taken)
		}
		p.Predict(pc, hist)
		if vo != nil {
			vo.ObserveValue(pc, CondNE, v)
		}
		p.Update(pc, hist, taken)
		hist = hist<<1 | 1
		if !taken {
			hist &^= 1
		}
	}
}

func trainIndirect(p IndirectPredictor, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var path uint64
	for i := 0; i < n; i++ {
		pc := uint64(0x2000 + 8*rng.Intn(16))
		target := uint64(0x8000 + 8*rng.Intn(8))
		p.Predict(pc, path)
		p.Update(pc, path, target)
		path = PushPath(path, target)
	}
}

func TestRegistryUnknownNames(t *testing.T) {
	if _, err := NewDir("nosuch"); err == nil {
		t.Fatal("NewDir(nosuch) succeeded")
	} else {
		for _, name := range DirNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("unknown-predictor error %q does not list %q", err, name)
			}
		}
	}
	if _, err := NewIndirect("nosuch"); err == nil {
		t.Fatal("NewIndirect(nosuch) succeeded")
	}
	if _, err := NewDir("yags:8192,2048,6,12,99"); err == nil {
		t.Fatal("excess params accepted")
	}
	if _, err := NewDir("gshare:1000"); err == nil {
		t.Fatal("non-power-of-two table size accepted")
	}
}

// TestRegistryDefaults locks the behavior the cpu layer depends on: the
// empty spec resolves to the default predictors.
func TestRegistryDefaults(t *testing.T) {
	d, err := NewDir("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*YAGS); !ok {
		t.Errorf("NewDir(\"\") = %T, want *YAGS", d)
	}
	i, err := NewIndirect("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := i.(*Cascaded); !ok {
		t.Errorf("NewIndirect(\"\") = %T, want *Cascaded", i)
	}
}

// TestSpecCanonical checks that Spec() is a fixed point of the registry:
// constructing from a predictor's own Spec yields the same Spec. The cpu
// restore path compares live Spec() strings on both sides, so this is
// what keeps canonical-vs-shorthand spellings from ever mismatching.
func TestSpecCanonical(t *testing.T) {
	for _, name := range DirNames() {
		p, err := NewDir(name)
		if err != nil {
			t.Fatalf("NewDir(%q): %v", name, err)
		}
		q, err := NewDir(p.Spec())
		if err != nil {
			t.Fatalf("NewDir(%q): %v", p.Spec(), err)
		}
		if q.Spec() != p.Spec() {
			t.Errorf("%s: Spec not canonical: %q -> %q", name, p.Spec(), q.Spec())
		}
	}
	for _, name := range IndirectNames() {
		p, err := NewIndirect(name)
		if err != nil {
			t.Fatalf("NewIndirect(%q): %v", name, err)
		}
		q, err := NewIndirect(p.Spec())
		if err != nil {
			t.Fatalf("NewIndirect(%q): %v", p.Spec(), err)
		}
		if q.Spec() != p.Spec() {
			t.Errorf("%s: Spec not canonical: %q -> %q", name, p.Spec(), q.Spec())
		}
	}
}

// TestDirStateRoundTrip trains every registered direction predictor,
// serializes it, loads the blob into a fresh instance, and requires both
// identical re-serialization and identical predictions.
func TestDirStateRoundTrip(t *testing.T) {
	for _, name := range DirNames() {
		p, err := NewDir(name)
		if err != nil {
			t.Fatal(err)
		}
		trainDir(p, 4000, 42)
		blob := p.SaveState()

		q, err := NewDir(p.Spec())
		if err != nil {
			t.Fatal(err)
		}
		if err := q.LoadState(blob); err != nil {
			t.Fatalf("%s: LoadState: %v", name, err)
		}
		if !bytes.Equal(q.SaveState(), blob) {
			t.Errorf("%s: SaveState after LoadState differs", name)
			continue
		}
		pp, _ := p.(OutcomePrimed)
		qp, _ := q.(OutcomePrimed)
		for i := 0; i < 256; i++ {
			pc := uint64(0x1000 + 8*(i%32))
			hist := uint64(i * 2654435761)
			if pp != nil {
				pp.PrimeOutcome(i%3 == 0)
				qp.PrimeOutcome(i%3 == 0)
			}
			if p.Predict(pc, hist) != q.Predict(pc, hist) {
				t.Errorf("%s: restored predictor diverges at probe %d", name, i)
				break
			}
		}
	}
}

func TestIndirectStateRoundTrip(t *testing.T) {
	for _, name := range IndirectNames() {
		p, err := NewIndirect(name)
		if err != nil {
			t.Fatal(err)
		}
		trainIndirect(p, 4000, 7)
		blob := p.SaveState()

		q, err := NewIndirect(p.Spec())
		if err != nil {
			t.Fatal(err)
		}
		if err := q.LoadState(blob); err != nil {
			t.Fatalf("%s: LoadState: %v", name, err)
		}
		if !bytes.Equal(q.SaveState(), blob) {
			t.Errorf("%s: SaveState after LoadState differs", name)
		}
		for i := 0; i < 256; i++ {
			pc := uint64(0x2000 + 8*(i%16))
			path := uint64(i * 2654435761)
			if p.Predict(pc, path) != q.Predict(pc, path) {
				t.Errorf("%s: restored predictor diverges at probe %d", name, i)
				break
			}
		}
	}
}

// corruptionPositions samples byte offsets to flip: every position for
// small blobs, ~2048 evenly spaced ones for large blobs (the CRC trailer
// catches any single flip, sampling only bounds test runtime).
func corruptionPositions(n int) []int {
	if n <= 2048 {
		pos := make([]int, n)
		for i := range pos {
			pos[i] = i
		}
		return pos
	}
	step := n / 2048
	var pos []int
	for i := 0; i < n; i += step {
		pos = append(pos, i)
	}
	return pos
}

// TestStateCorruptionDetected flips single bytes throughout each
// predictor's blob and requires LoadState to reject every one — the blob
// carries its own CRC trailer, independent of any outer container.
func TestStateCorruptionDetected(t *testing.T) {
	check := func(name string, blob []byte, load func([]byte) error) {
		t.Helper()
		for _, i := range corruptionPositions(len(blob)) {
			bad := append([]byte(nil), blob...)
			bad[i] ^= 0x40
			if err := load(bad); err == nil {
				t.Fatalf("%s: corruption at byte %d/%d not detected", name, i, len(blob))
			}
		}
		if err := load(blob[:len(blob)-1]); err == nil {
			t.Fatalf("%s: truncation not detected", name)
		}
	}
	for _, name := range DirNames() {
		p, _ := NewDir(name)
		trainDir(p, 4000, 42)
		q, _ := NewDir(p.Spec())
		check(name, p.SaveState(), q.LoadState)
	}
	for _, name := range IndirectNames() {
		p, _ := NewIndirect(name)
		trainIndirect(p, 4000, 7)
		q, _ := NewIndirect(p.Spec())
		check(name, p.SaveState(), q.LoadState)
	}
}

// TestStateGeometryMismatch loads each predictor's blob into a smaller
// sibling; the load must fail rather than silently truncate.
func TestStateGeometryMismatch(t *testing.T) {
	pairs := [][2]string{
		{"bimodal:8192", "bimodal:4096"},
		{"gshare:8192,12", "gshare:4096,12"},
		{"yags:8192,2048,6,12", "yags:8192,1024,6,12"},
		{"value:1024,4096,8192", "value:512,4096,8192"},
		{"corrmine:1024,16,48", "corrmine:512,16,48"},
	}
	for _, pr := range pairs {
		p, err := NewDir(pr[0])
		if err != nil {
			t.Fatal(err)
		}
		trainDir(p, 2000, 3)
		q, err := NewDir(pr[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := q.LoadState(p.SaveState()); err == nil {
			t.Errorf("loading %q state into %q succeeded", pr[0], pr[1])
		}
	}
}

// TestValuePredCountedLoopExit is the value predictor's reason to exist:
// a counted loop's exit iteration is unpredictable from branch history
// alone, but the tested register walks a perfect stride, so predicting
// the *value* predicts the exit. After warm-up the exit iteration must be
// predicted not-taken.
func TestValuePredCountedLoopExit(t *testing.T) {
	v := DefaultValuePred()
	const pc = 0x40
	exitMisses := 0
	for run := 0; run < 30; run++ {
		for i := -10; i <= 0; i++ {
			val := uint64(int64(i))
			taken := i < 0 // BLT-style: taken while the counter is negative
			got := v.Predict(pc, 0)
			if run >= 20 && i == 0 && got != taken {
				exitMisses++
			}
			v.ObserveValue(pc, CondLT, val)
			v.Update(pc, 0, taken)
		}
	}
	if exitMisses != 0 {
		t.Errorf("value predictor missed %d/10 warm loop exits", exitMisses)
	}
	if v.Stats.ValueUsed == 0 {
		t.Error("value path never used")
	}
}

// TestCorrMineLearnsCrossBranchCorrelation checks the miner's reason to
// exist: branch B repeats the outcome of the preceding branch A. Bias
// alone is 50/50; the position-correlation counters must find A.
func TestCorrMineLearnsCrossBranchCorrelation(t *testing.T) {
	m := DefaultCorrMine()
	rng := rand.New(rand.NewSource(5))
	const pcA, pcB = 0x100, 0x200
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		a := rng.Intn(2) == 0
		m.Predict(pcA, 0)
		m.Update(pcA, 0, a)
		got := m.Predict(pcB, 0)
		if i >= 2000 {
			total++
			if got == a {
				correct++
			}
		}
		m.Update(pcB, 0, a)
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("corrmine accuracy on perfectly correlated branch = %.2f, want >= 0.9", acc)
	}
}

// TestPerfectDirCoverage: covered PCs follow the primed outcome exactly;
// uncovered PCs fall back to the trained YAGS.
func TestPerfectDirCoverage(t *testing.T) {
	p := NewPerfectDir(map[uint64]bool{0x100: true})
	for i := 0; i < 100; i++ {
		taken := i%3 == 0
		p.PrimeOutcome(taken)
		if got := p.Predict(0x100, uint64(i)); got != taken {
			t.Fatalf("covered PC mispredicted at instance %d", i)
		}
		// The uncovered PC is always-taken; train the fallback on it.
		p.PrimeOutcome(true)
		p.Predict(0x200, 0)
		p.Update(0x200, 0, true)
	}
	if !p.Predict(0x200, 0) {
		t.Error("fallback did not learn the uncovered always-taken branch")
	}
	if p.Stats.Covered == 0 || p.Stats.FallbackUsed == 0 {
		t.Errorf("coverage counters not populated: %+v", p.Stats)
	}

	spec := PerfectSpec(map[uint64]bool{0x200: true, 0x100: true})
	q, err := NewDir(spec)
	if err != nil {
		t.Fatalf("NewDir(%q): %v", spec, err)
	}
	if q.Spec() != spec {
		t.Errorf("PerfectSpec not canonical: %q -> %q", spec, q.Spec())
	}
}

// TestPerfectSpecEmpty: an empty set means every branch is covered.
func TestPerfectSpecEmpty(t *testing.T) {
	p, err := NewDir("perfect")
	if err != nil {
		t.Fatal(err)
	}
	prime := p.(OutcomePrimed)
	for i := 0; i < 50; i++ {
		taken := i%7 == 0
		prime.PrimeOutcome(taken)
		if p.Predict(uint64(0x1000+8*i), uint64(i)) != taken {
			t.Fatalf("all-covered perfect predictor mispredicted instance %d", i)
		}
	}
}
