package bpred

import (
	"fmt"

	"repro/internal/stats"
)

// CorrMine is the sparse correlation-mining baseline (Zouzias et al.,
// PAPERS.md): rather than hashing all recent history like gshare, it
// mines — per static branch — *which* recently retired branch actually
// correlates with the outcome. Each tracked branch keeps one agreement
// counter per history position; a position whose counter saturates far
// from neutral ("this branch always agrees/disagrees with the branch N
// retirements ago") supplies the prediction, otherwise a per-branch bias
// counter does. This is the affine-correlation idea reduced to hardware
// counters: most branches correlate strongly with only a handful of
// prior branches, so a sparse per-position table beats a dense history
// hash on exactly those branches — and fails, like all pattern
// predictors, on data-dependent "problem" branches.
//
// The retired-branch ring and all counters train in Update (correct path
// only); Predict mutates nothing but stats, so wrong-path fetch lookups
// are safe. Predictions read the ring as of fetch, so positions lag by
// the branches in flight — a real cost any non-speculative correlation
// table pays.
type CorrMine struct {
	ring      []corrEvent // last len(ring) retired conditional branches
	head      int         // next slot to overwrite; head-1 is the newest
	positions int
	threshold uint8 // min |counter-neutral| before a position is trusted
	entries   []cmEntry
	mask      uint64

	// Stats splits predictions between mined positions and the bias.
	Stats stats.CorrMineStats
}

type corrEvent struct {
	pc    uint64
	taken bool
}

type cmEntry struct {
	pc    uint64 // full-PC tag; 0 = empty
	bias  uint8  // saturating, neutral 128
	agree []uint8
}

const corrNeutral = 128

// NewCorrMine builds a miner tracking entries branches (power of two)
// over positions history slots, trusting a position once its agreement
// counter is at least threshold away from neutral.
func NewCorrMine(entries, positions int, threshold uint8) *CorrMine {
	return &CorrMine{
		ring:      make([]corrEvent, positions),
		positions: positions,
		threshold: threshold,
		entries:   make([]cmEntry, entries),
		mask:      uint64(entries - 1),
		Stats:     stats.CorrMineStats{Kind: "corrmine"},
	}
}

// DefaultCorrMine tracks 1K branches over 16 history positions.
func DefaultCorrMine() *CorrMine { return NewCorrMine(1024, 16, 48) }

func (m *CorrMine) idx(pc uint64) uint64 { return (pc >> 2) & m.mask }

// eventAt returns the j-th most recent retired branch (j=0 newest).
func (m *CorrMine) eventAt(j int) corrEvent {
	i := m.head - 1 - j
	for i < 0 {
		i += len(m.ring)
	}
	return m.ring[i]
}

func (m *CorrMine) push(pc uint64, taken bool) {
	m.ring[m.head] = corrEvent{pc: pc, taken: taken}
	m.head++
	if m.head == len(m.ring) {
		m.head = 0
	}
}

func sat8(v uint8, up bool) uint8 {
	if up {
		if v < 255 {
			return v + 1
		}
		return v
	}
	if v > 0 {
		return v - 1
	}
	return v
}

// Predict implements DirPredictor: the strongest mined position above
// threshold supplies the direction (agree => follow that branch's
// outcome, disagree => invert it); otherwise the per-branch bias does.
func (m *CorrMine) Predict(pc, _ uint64) bool {
	m.Stats.Lookups++
	e := &m.entries[m.idx(pc)]
	if e.pc != pc {
		m.Stats.Cold++
		return true // cold default, matching the bimodal weakly-taken init
	}
	best, bestDist := -1, int(m.threshold)-1
	for j, a := range e.agree {
		d := int(a) - corrNeutral
		if d < 0 {
			d = -d
		}
		if d > bestDist {
			best, bestDist = j, d
		}
	}
	if best >= 0 {
		m.Stats.MinedUsed++
		ev := m.eventAt(best)
		return ev.taken == (e.agree[best] >= corrNeutral)
	}
	m.Stats.BiasUsed++
	return e.bias >= corrNeutral
}

// Update implements DirPredictor: trains the bias and every position's
// agreement counter against the retired-branch ring, then pushes this
// branch into the ring.
func (m *CorrMine) Update(pc, _ uint64, taken bool) {
	e := &m.entries[m.idx(pc)]
	if e.pc != pc {
		m.Stats.Allocs++
		e.pc = pc
		e.bias = corrNeutral
		if e.agree == nil {
			e.agree = make([]uint8, m.positions)
		}
		for j := range e.agree {
			e.agree[j] = corrNeutral
		}
	}
	e.bias = sat8(e.bias, taken)
	for j := range e.agree {
		ev := m.eventAt(j)
		if ev.pc == 0 {
			continue // ring not yet filled this deep
		}
		e.agree[j] = sat8(e.agree[j], ev.taken == taken)
	}
	m.push(pc, taken)
}

// Spec implements Predictor.
func (m *CorrMine) Spec() string {
	return fmt.Sprintf("corrmine:%d,%d,%d", len(m.entries), m.positions, m.threshold)
}

// Counters implements Predictor.
func (m *CorrMine) Counters() (string, any) { return "Bpred.CorrMine", &m.Stats }

// SaveState implements Predictor.
func (m *CorrMine) SaveState() []byte {
	var w blobW
	w.u64(uint64(len(m.ring)))
	w.u64(uint64(m.head))
	for _, ev := range m.ring {
		w.u64(ev.pc)
		w.bool(ev.taken)
	}
	w.u64(uint64(len(m.entries)))
	for _, e := range m.entries {
		w.u64(e.pc)
		w.u8(e.bias)
		w.bool(e.agree != nil)
		for _, a := range e.agree {
			w.u8(a)
		}
	}
	return w.finish()
}

// LoadState implements Predictor.
func (m *CorrMine) LoadState(blob []byte) error {
	r, err := openBlob("corrmine", blob)
	if err != nil {
		return err
	}
	if n := r.u64(); n != uint64(len(m.ring)) {
		return fmt.Errorf("corrmine: state has %d ring slots, predictor %d", n, len(m.ring))
	}
	h := r.u64()
	if h >= uint64(len(m.ring)) {
		return fmt.Errorf("corrmine: ring head %d out of range", h)
	}
	m.head = int(h)
	for i := range m.ring {
		m.ring[i] = corrEvent{pc: r.u64(), taken: r.bool()}
	}
	if n := r.u64(); n != uint64(len(m.entries)) {
		return fmt.Errorf("corrmine: state has %d entries, predictor %d", n, len(m.entries))
	}
	for i := range m.entries {
		e := &m.entries[i]
		e.pc = r.u64()
		e.bias = r.u8()
		if r.bool() {
			if e.agree == nil {
				e.agree = make([]uint8, m.positions)
			}
			for j := range e.agree {
				e.agree[j] = r.u8()
			}
		} else {
			e.agree = nil
		}
	}
	return r.done()
}

func init() {
	RegisterDir("corrmine", func(params string) (DirPredictor, error) {
		p, err := intParams(params, []int{1024, 16, 48})
		if err != nil {
			return nil, err
		}
		if err := pow2("entries", p[0]); err != nil {
			return nil, err
		}
		if p[1] <= 0 || p[1] > 256 {
			return nil, fmt.Errorf("positions must be in 1..256, got %d", p[1])
		}
		if p[2] < 1 || p[2] > 127 {
			return nil, fmt.Errorf("threshold must be in 1..127, got %d", p[2])
		}
		return NewCorrMine(p[0], p[1], uint8(p[2])), nil
	})
}
