package bpred

import (
	"fmt"

	"repro/internal/stats"
)

// Cascaded implements the cascading indirect branch target predictor of
// Driesen & Hölzle (MICRO-31). A small first-stage table indexed by PC
// holds per-branch last targets; a larger tagged second stage indexed by
// PC⊕path-history holds history-dependent targets. The cascade filters:
// second-stage entries are allocated only when the first stage mispredicts,
// so monomorphic branches never pollute the history-indexed table.
type Cascaded struct {
	stage1   []uint64 // last target, PC-indexed, untagged
	stage2   []casEntry
	m1, m2   uint64
	tagBits  uint
	pathBits uint

	// Stats counts which stage supplied each target prediction.
	Stats stats.IndirectStats
}

type casEntry struct {
	tag    uint16
	target uint64
	valid  bool
}

// NewCascaded builds the predictor. The paper's 32 Kbit budget corresponds
// roughly to NewCascaded(256, 512, 8, 10) with 64-bit targets.
func NewCascaded(stage1Entries, stage2Entries int, tagBits, pathBits uint) *Cascaded {
	return &Cascaded{
		stage1:   make([]uint64, stage1Entries),
		stage2:   make([]casEntry, stage2Entries),
		m1:       uint64(stage1Entries - 1),
		m2:       uint64(stage2Entries - 1),
		tagBits:  tagBits,
		pathBits: pathBits,
		Stats:    stats.IndirectStats{Kind: "cascaded"},
	}
}

// DefaultCascaded returns the Table 1 configuration (32 Kb budget).
func DefaultCascaded() *Cascaded { return NewCascaded(256, 512, 8, 10) }

func (c *Cascaded) i1(pc uint64) uint64 { return (pc >> 2) & c.m1 }

func (c *Cascaded) i2(pc, path uint64) uint64 {
	p := path & (1<<c.pathBits - 1)
	return ((pc >> 2) ^ p) & c.m2
}

func (c *Cascaded) tag(pc uint64) uint16 {
	return uint16((pc >> 2) & (1<<c.tagBits - 1))
}

// Predict implements IndirectPredictor.
func (c *Cascaded) Predict(pc, path uint64) uint64 {
	c.Stats.Lookups++
	if e := &c.stage2[c.i2(pc, path)]; e.valid {
		if e.tag == c.tag(pc) {
			c.Stats.Stage2Hits++
			return e.target
		}
		c.Stats.Stage2Aliased++
	}
	t := c.stage1[c.i1(pc)]
	if t == 0 {
		c.Stats.NoTarget++
	} else {
		c.Stats.Stage1Used++
	}
	return t
}

// Update implements IndirectPredictor.
func (c *Cascaded) Update(pc, path, target uint64) {
	i1 := c.i1(pc)
	stage1Correct := c.stage1[i1] == target
	i2 := c.i2(pc, path)
	e := &c.stage2[i2]
	if e.valid && e.tag == c.tag(pc) {
		e.target = target
	} else if !stage1Correct && c.stage1[i1] != 0 {
		// Cascade filter: allocate only when a trained first stage failed
		// (a cold stage-1 miss is not evidence of polymorphism).
		c.Stats.Allocs++
		*e = casEntry{tag: c.tag(pc), target: target, valid: true}
	}
	c.stage1[i1] = target
}

// Spec implements Predictor.
func (c *Cascaded) Spec() string {
	return fmt.Sprintf("cascaded:%d,%d,%d,%d", len(c.stage1), len(c.stage2), c.tagBits, c.pathBits)
}

// Counters implements Predictor.
func (c *Cascaded) Counters() (string, any) { return "Bpred.Indirect", &c.Stats }

// SaveState implements Predictor.
func (c *Cascaded) SaveState() []byte {
	var w blobW
	w.u64(uint64(len(c.stage1)))
	for _, t := range c.stage1 {
		w.u64(t)
	}
	w.u64(uint64(len(c.stage2)))
	for _, e := range c.stage2 {
		w.u16(e.tag)
		w.u64(e.target)
		w.bool(e.valid)
	}
	return w.finish()
}

// LoadState implements Predictor.
func (c *Cascaded) LoadState(blob []byte) error {
	r, err := openBlob("cascaded", blob)
	if err != nil {
		return err
	}
	if n := r.u64(); n != uint64(len(c.stage1)) {
		return fmt.Errorf("cascaded: state has %d stage-1 entries, predictor %d", n, len(c.stage1))
	}
	for i := range c.stage1 {
		c.stage1[i] = r.u64()
	}
	if n := r.u64(); n != uint64(len(c.stage2)) {
		return fmt.Errorf("cascaded: state has %d stage-2 entries, predictor %d", n, len(c.stage2))
	}
	for i := range c.stage2 {
		c.stage2[i] = casEntry{tag: r.u16(), target: r.u64(), valid: r.bool()}
	}
	return r.done()
}

// PushPath mixes a resolved indirect target into a path history register.
// The CPU keeps the register per thread and checkpoints it across
// speculation.
func PushPath(path, target uint64) uint64 {
	return path<<3 ^ (target >> 2)
}
