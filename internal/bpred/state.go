package bpred

// Checkpointable RAS state. Predictor tables travel through the opaque
// Predictor.SaveState/LoadState blobs instead (see blob.go); the RAS is
// per-thread CPU state, not a registry predictor, so it keeps a typed
// state struct.

import "fmt"

// RASStackState is the *full* stack image, unlike RASState's (sp, journal
// position) speculation-repair checkpoint: a warm checkpoint must
// reproduce every live stack slot, because the restored run pops
// arbitrarily deep. The repair journal is not captured — a checkpoint is
// taken at a quiesced point with nothing in flight, so the journal is
// logically empty, and SetStackState resets it.
type RASStackState struct {
	Stack []uint64
	SP    int
}

// StackState captures the whole stack.
func (r *RAS) StackState() RASStackState {
	s := RASStackState{Stack: make([]uint64, len(r.stack)), SP: r.sp}
	copy(s.Stack, r.stack)
	return s
}

// SetStackState restores a full stack image of matching capacity.
func (r *RAS) SetStackState(s RASStackState) error {
	if len(s.Stack) != len(r.stack) {
		return fmt.Errorf("ras: state has %d entries, stack has %d", len(s.Stack), len(r.stack))
	}
	copy(r.stack, s.Stack)
	r.sp = s.SP
	// The restored machine has nothing in flight: no checkpoint taken
	// before this point may be restored, so the repair journal restarts
	// empty.
	r.CommitAll()
	return nil
}
