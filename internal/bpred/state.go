package bpred

// Checkpointable predictor state. State methods deep-copy out and SetState
// methods deep-copy in, so one checkpoint can be restored into many
// predictors concurrently. Stats are not captured: the harness resets all
// counters at the measurement boundary anyway.

import "fmt"

// YAGSEntryState is one direction-cache entry.
type YAGSEntryState struct {
	Tag   uint16
	Ctr   uint8
	Valid bool
}

// YAGSState is the checkpointable state of a YAGS predictor.
type YAGSState struct {
	Choice []uint8
	T, NT  []YAGSEntryState
}

// State captures the predictor tables.
func (y *YAGS) State() YAGSState {
	s := YAGSState{
		Choice: make([]uint8, len(y.choice)),
		T:      make([]YAGSEntryState, len(y.t)),
		NT:     make([]YAGSEntryState, len(y.nt)),
	}
	for i, c := range y.choice {
		s.Choice[i] = uint8(c)
	}
	for i, e := range y.t {
		s.T[i] = YAGSEntryState{Tag: e.tag, Ctr: uint8(e.c), Valid: e.valid}
	}
	for i, e := range y.nt {
		s.NT[i] = YAGSEntryState{Tag: e.tag, Ctr: uint8(e.c), Valid: e.valid}
	}
	return s
}

// SetState restores tables captured from an identically configured YAGS.
func (y *YAGS) SetState(s YAGSState) error {
	if len(s.Choice) != len(y.choice) || len(s.T) != len(y.t) || len(s.NT) != len(y.nt) {
		return fmt.Errorf("yags: state geometry %d/%d/%d does not match predictor %d/%d/%d",
			len(s.Choice), len(s.T), len(s.NT), len(y.choice), len(y.t), len(y.nt))
	}
	for i, c := range s.Choice {
		y.choice[i] = ctr(c)
	}
	for i, e := range s.T {
		y.t[i] = yagsEntry{tag: e.Tag, c: ctr(e.Ctr), valid: e.Valid}
	}
	for i, e := range s.NT {
		y.nt[i] = yagsEntry{tag: e.Tag, c: ctr(e.Ctr), valid: e.Valid}
	}
	return nil
}

// CascadedEntryState is one tagged second-stage entry.
type CascadedEntryState struct {
	Tag    uint16
	Target uint64
	Valid  bool
}

// CascadedState is the checkpointable state of a cascaded indirect
// predictor.
type CascadedState struct {
	Stage1 []uint64
	Stage2 []CascadedEntryState
}

// State captures both stages.
func (c *Cascaded) State() CascadedState {
	s := CascadedState{
		Stage1: make([]uint64, len(c.stage1)),
		Stage2: make([]CascadedEntryState, len(c.stage2)),
	}
	copy(s.Stage1, c.stage1)
	for i, e := range c.stage2 {
		s.Stage2[i] = CascadedEntryState{Tag: e.tag, Target: e.target, Valid: e.valid}
	}
	return s
}

// SetState restores stages captured from an identically configured
// predictor.
func (c *Cascaded) SetState(s CascadedState) error {
	if len(s.Stage1) != len(c.stage1) || len(s.Stage2) != len(c.stage2) {
		return fmt.Errorf("cascaded: state geometry %d/%d does not match predictor %d/%d",
			len(s.Stage1), len(s.Stage2), len(c.stage1), len(c.stage2))
	}
	copy(c.stage1, s.Stage1)
	for i, e := range s.Stage2 {
		c.stage2[i] = casEntry{tag: e.Tag, target: e.Target, valid: e.Valid}
	}
	return nil
}

// RASStackState is the *full* stack image, unlike RASState's (sp, journal
// position) speculation-repair checkpoint: a warm checkpoint must
// reproduce every live stack slot, because the restored run pops
// arbitrarily deep. The repair journal is not captured — a checkpoint is
// taken at a quiesced point with nothing in flight, so the journal is
// logically empty, and SetStackState resets it.
type RASStackState struct {
	Stack []uint64
	SP    int
}

// StackState captures the whole stack.
func (r *RAS) StackState() RASStackState {
	s := RASStackState{Stack: make([]uint64, len(r.stack)), SP: r.sp}
	copy(s.Stack, r.stack)
	return s
}

// SetStackState restores a full stack image of matching capacity.
func (r *RAS) SetStackState(s RASStackState) error {
	if len(s.Stack) != len(r.stack) {
		return fmt.Errorf("ras: state has %d entries, stack has %d", len(s.Stack), len(r.stack))
	}
	copy(r.stack, s.Stack)
	r.sp = s.SP
	// The restored machine has nothing in flight: no checkpoint taken
	// before this point may be restored, so the repair journal restarts
	// empty.
	r.CommitAll()
	return nil
}
