package bpred

import (
	"fmt"

	"repro/internal/stats"
)

// ValuePred is the value-prediction baseline for the problem-branch
// frontier (Mitrevski & Gušev's potential study, PAPERS.md): instead of
// pattern-matching branch history, it predicts the *value* the branch
// will test — last-value, stride, and a second-level context table — and
// evaluates the branch's condition against the predicted value. Branches
// whose source follows a computable sequence (loop trip counts, pointer
// strides) become predictable even when their direction history looks
// random to YAGS; truly data-dependent values stay hard, which is the
// paper's premise.
//
// Training happens through the ValueObserver hook at retirement (correct
// path only): the core hands over the architectural value of the
// branch's source register. Predict runs at fetch and mutates only
// stats, so wrong-path lookups are harmless. A bimodal outcome table
// backs up branches whose values are not confidently predictable.
type ValuePred struct {
	entries []valEntry
	mask    uint64
	ctx     []ctxEntry // value-context second level, signature-indexed
	cmask   uint64
	fb      *Bimodal // outcome fallback when the value path lacks confidence

	// Stats splits predictions between the value path and the fallback.
	Stats stats.ValuePredStats
}

type valEntry struct {
	pc         uint64 // full-PC tag; 0 = empty
	cond       Cond
	last       uint64
	stride     uint64 // last - previous
	strideConf ctr
	conf       ctr    // confidence that the value path predicts the outcome
	sig        uint64 // hash of recent observed values (context index)
}

type ctxEntry struct {
	tag   uint16
	val   uint64
	conf  ctr
	valid bool
}

// NewValuePred builds a value predictor with entries per-branch slots,
// ctxEntries context slots, and fbEntries fallback counters (all powers
// of two).
func NewValuePred(entries, ctxEntries, fbEntries int) *ValuePred {
	return &ValuePred{
		entries: make([]valEntry, entries),
		mask:    uint64(entries - 1),
		ctx:     make([]ctxEntry, ctxEntries),
		cmask:   uint64(ctxEntries - 1),
		fb:      NewBimodal(fbEntries),
		Stats:   stats.ValuePredStats{Kind: "value"},
	}
}

// DefaultValuePred matches the YAGS-class budget: 1K tracked branches.
func DefaultValuePred() *ValuePred { return NewValuePred(1024, 4096, 8192) }

func (v *ValuePred) idx(pc uint64) uint64 { return (pc >> 2) & v.mask }
func (v *ValuePred) cidx(sig uint64) uint64 {
	return (sig ^ sig>>16) & v.cmask
}
func ctxTag(sig uint64) uint16 { return uint16(sig >> 48) }

// predictValue returns the predicted next source value for a tracked
// branch: a confident context match wins, then a confident stride, then
// the last value.
func (v *ValuePred) predictValue(e *valEntry) uint64 {
	if ce := &v.ctx[v.cidx(e.sig)]; ce.valid && ce.tag == ctxTag(e.sig) && ce.conf.taken() {
		return ce.val
	}
	if e.strideConf.taken() {
		return e.last + e.stride
	}
	return e.last
}

// Predict implements DirPredictor. It consults the value path only under
// confidence; everything else falls back to the bimodal outcome table.
func (v *ValuePred) Predict(pc, hist uint64) bool {
	v.Stats.Lookups++
	e := &v.entries[v.idx(pc)]
	if e.pc != pc || e.cond == CondNone || !e.conf.taken() {
		v.Stats.FallbackUsed++
		return v.fb.Predict(pc, hist)
	}
	v.Stats.ValueUsed++
	return e.cond.Eval(v.predictValue(e))
}

// Update implements DirPredictor: the resolved direction trains only the
// fallback table — the value path trains in ObserveValue, which the core
// calls immediately before Update.
func (v *ValuePred) Update(pc, hist uint64, taken bool) {
	v.fb.Update(pc, hist, taken)
}

// ObserveValue implements ValueObserver with the architectural value the
// retiring branch tested.
func (v *ValuePred) ObserveValue(pc uint64, cond Cond, value uint64) {
	if cond == CondNone {
		return
	}
	e := &v.entries[v.idx(pc)]
	if e.pc != pc {
		v.Stats.Allocs++
		*e = valEntry{pc: pc, cond: cond, last: value}
		return
	}
	e.cond = cond

	// Score the value path against this outcome before absorbing the new
	// value: would it have predicted the branch correctly?
	if e.cond.Eval(v.predictValue(e)) == cond.Eval(value) {
		e.conf = e.conf.inc()
	} else {
		e.conf = e.conf.dec()
	}

	// Train the context slot the previous signature pointed at: "after
	// this value history, this value followed".
	ce := &v.ctx[v.cidx(e.sig)]
	switch {
	case ce.valid && ce.tag == ctxTag(e.sig):
		if ce.val == value {
			ce.conf = ce.conf.inc()
		} else {
			ce.conf = ce.conf.dec()
			if ce.conf == 0 {
				ce.val = value
			}
		}
	default:
		*ce = ctxEntry{tag: ctxTag(e.sig), val: value, conf: 1, valid: true}
	}

	// Stride detection with hysteresis.
	s := value - e.last
	if s == e.stride {
		e.strideConf = e.strideConf.inc()
	} else {
		e.strideConf = e.strideConf.dec()
		if e.strideConf == 0 {
			e.stride = s
		}
	}
	e.last = value
	// Fold the observed value into the per-branch signature (FCM-style
	// value history; the multiplier is a 64-bit odd mixing constant).
	e.sig = e.sig*0x9E3779B97F4A7C15 + value + 1
}

// Spec implements Predictor.
func (v *ValuePred) Spec() string {
	return fmt.Sprintf("value:%d,%d,%d", len(v.entries), len(v.ctx), len(v.fb.table))
}

// Counters implements Predictor.
func (v *ValuePred) Counters() (string, any) { return "Bpred.Value", &v.Stats }

// SaveState implements Predictor.
func (v *ValuePred) SaveState() []byte {
	var w blobW
	w.u64(uint64(len(v.entries)))
	for _, e := range v.entries {
		w.u64(e.pc)
		w.u8(uint8(e.cond))
		w.u64(e.last)
		w.u64(e.stride)
		w.u8(uint8(e.strideConf))
		w.u8(uint8(e.conf))
		w.u64(e.sig)
	}
	w.u64(uint64(len(v.ctx)))
	for _, ce := range v.ctx {
		w.u16(ce.tag)
		w.u64(ce.val)
		w.u8(uint8(ce.conf))
		w.bool(ce.valid)
	}
	w.u64(uint64(len(v.fb.table)))
	for _, c := range v.fb.table {
		w.u8(uint8(c))
	}
	return w.finish()
}

// LoadState implements Predictor.
func (v *ValuePred) LoadState(blob []byte) error {
	r, err := openBlob("value", blob)
	if err != nil {
		return err
	}
	if n := r.u64(); n != uint64(len(v.entries)) {
		return fmt.Errorf("value: state has %d entries, predictor %d", n, len(v.entries))
	}
	for i := range v.entries {
		v.entries[i] = valEntry{
			pc:         r.u64(),
			cond:       Cond(r.u8()),
			last:       r.u64(),
			stride:     r.u64(),
			strideConf: ctr(r.u8()),
			conf:       ctr(r.u8()),
			sig:        r.u64(),
		}
	}
	if n := r.u64(); n != uint64(len(v.ctx)) {
		return fmt.Errorf("value: state has %d context entries, predictor %d", n, len(v.ctx))
	}
	for i := range v.ctx {
		v.ctx[i] = ctxEntry{tag: r.u16(), val: r.u64(), conf: ctr(r.u8()), valid: r.bool()}
	}
	if n := r.u64(); n != uint64(len(v.fb.table)) {
		return fmt.Errorf("value: state has %d fallback entries, predictor %d", n, len(v.fb.table))
	}
	for i := range v.fb.table {
		v.fb.table[i] = ctr(r.u8())
	}
	return r.done()
}

func init() {
	RegisterDir("value", func(params string) (DirPredictor, error) {
		p, err := intParams(params, []int{1024, 4096, 8192})
		if err != nil {
			return nil, err
		}
		for _, g := range []struct {
			name string
			v    int
		}{{"entries", p[0]}, {"context entries", p[1]}, {"fallback entries", p[2]}} {
			if err := pow2(g.name, g.v); err != nil {
				return nil, err
			}
		}
		return NewValuePred(p[0], p[1], p[2]), nil
	})
}
