package bpred

import (
	"fmt"

	"repro/internal/stats"
)

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []ctr
	mask  uint64

	// Stats counts lookups and mispredicted updates.
	Stats stats.DirStats
}

// NewBimodal builds a bimodal predictor with entries counters (power of
// two).
func NewBimodal(entries int) *Bimodal {
	t := make([]ctr, entries)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Bimodal{table: t, mask: uint64(entries - 1), Stats: stats.DirStats{Kind: "bimodal"}}
}

func (b *Bimodal) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc, _ uint64) bool {
	b.Stats.Lookups++
	return b.table[b.idx(pc)].taken()
}

// Update implements DirPredictor.
func (b *Bimodal) Update(pc, _ uint64, taken bool) {
	i := b.idx(pc)
	if b.table[i].taken() != taken {
		b.Stats.UpdateMisses++
	}
	b.table[i] = train(b.table[i], taken)
}

// Spec implements Predictor.
func (b *Bimodal) Spec() string { return fmt.Sprintf("bimodal:%d", len(b.table)) }

// Counters implements Predictor.
func (b *Bimodal) Counters() (string, any) { return "Bpred.Dir", &b.Stats }

// SaveState implements Predictor.
func (b *Bimodal) SaveState() []byte {
	var w blobW
	w.u64(uint64(len(b.table)))
	for _, c := range b.table {
		w.u8(uint8(c))
	}
	return w.finish()
}

// LoadState implements Predictor.
func (b *Bimodal) LoadState(blob []byte) error {
	r, err := openBlob("bimodal", blob)
	if err != nil {
		return err
	}
	if n := r.u64(); n != uint64(len(b.table)) {
		return fmt.Errorf("bimodal: state has %d entries, predictor %d", n, len(b.table))
	}
	for i := range b.table {
		b.table[i] = ctr(r.u8())
	}
	return r.done()
}

// GShare xors global history into the index.
type GShare struct {
	table    []ctr
	mask     uint64
	histBits uint

	// Stats counts lookups and mispredicted updates.
	Stats stats.DirStats
}

// NewGShare builds a gshare predictor with entries counters and histBits of
// global history.
func NewGShare(entries int, histBits uint) *GShare {
	t := make([]ctr, entries)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: uint64(entries - 1), histBits: histBits,
		Stats: stats.DirStats{Kind: "gshare"}}
}

func (g *GShare) idx(pc, hist uint64) uint64 {
	h := hist & (1<<g.histBits - 1)
	return ((pc >> 2) ^ h) & g.mask
}

// Predict implements DirPredictor.
func (g *GShare) Predict(pc, hist uint64) bool {
	g.Stats.Lookups++
	return g.table[g.idx(pc, hist)].taken()
}

// Update implements DirPredictor.
func (g *GShare) Update(pc, hist uint64, taken bool) {
	i := g.idx(pc, hist)
	if g.table[i].taken() != taken {
		g.Stats.UpdateMisses++
	}
	g.table[i] = train(g.table[i], taken)
}

// Spec implements Predictor.
func (g *GShare) Spec() string { return fmt.Sprintf("gshare:%d,%d", len(g.table), g.histBits) }

// Counters implements Predictor.
func (g *GShare) Counters() (string, any) { return "Bpred.Dir", &g.Stats }

// SaveState implements Predictor.
func (g *GShare) SaveState() []byte {
	var w blobW
	w.u64(uint64(len(g.table)))
	w.u64(uint64(g.histBits))
	for _, c := range g.table {
		w.u8(uint8(c))
	}
	return w.finish()
}

// LoadState implements Predictor.
func (g *GShare) LoadState(blob []byte) error {
	r, err := openBlob("gshare", blob)
	if err != nil {
		return err
	}
	if n, h := r.u64(), r.u64(); n != uint64(len(g.table)) || h != uint64(g.histBits) {
		return fmt.Errorf("gshare: state geometry %d/%d does not match predictor %d/%d",
			n, h, len(g.table), g.histBits)
	}
	for i := range g.table {
		g.table[i] = ctr(r.u8())
	}
	return r.done()
}

// Oracle is the perfect direction predictor used by the limit studies: the
// CPU primes it with the actual outcome before asking. It keeps no state
// and no counters.
type Oracle struct{ Outcome bool }

// Predict implements DirPredictor by returning the primed outcome.
func (o *Oracle) Predict(_, _ uint64) bool { return o.Outcome }

// Update implements DirPredictor as a no-op.
func (o *Oracle) Update(_, _ uint64, _ bool) {}

// PrimeOutcome implements OutcomePrimed.
func (o *Oracle) PrimeOutcome(taken bool) { o.Outcome = taken }

// Spec implements Predictor.
func (o *Oracle) Spec() string { return "oracle" }

// Counters implements Predictor.
func (o *Oracle) Counters() (string, any) { return "", nil }

// SaveState implements Predictor: an oracle has no warm state.
func (o *Oracle) SaveState() []byte {
	var w blobW
	return w.finish()
}

// LoadState implements Predictor.
func (o *Oracle) LoadState(blob []byte) error {
	r, err := openBlob("oracle", blob)
	if err != nil {
		return err
	}
	return r.done()
}
