package bpred

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// PerfectDir is the perfect-slice upper bound: branches in its PC set
// always predict the actual outcome (the execute-at-fetch core primes it
// through OutcomePrimed before Predict), modelling a slice that forked
// early enough to resolve every instance in time. Uncovered branches use
// an internal default YAGS, so the bound isolates the covered subset —
// the same semantics as the Perfect config, but expressed as a registry
// predictor the whole seam (fingerprint, checkpoint, stats) handles
// uniformly. An empty PC set means every branch is perfect.
//
// Covered branches do not train the fallback (a slice would have
// overridden the pattern predictor anyway).
type PerfectDir struct {
	pcs     map[uint64]bool // empty = all branches covered
	outcome bool            // primed actual outcome for the branch being fetched
	fb      *YAGS

	// Stats splits lookups between covered and fallback branches.
	Stats stats.PerfectStats
}

// NewPerfectDir builds the upper bound covering the given PCs (nil or
// empty = all branches).
func NewPerfectDir(pcs map[uint64]bool) *PerfectDir {
	cp := make(map[uint64]bool, len(pcs))
	for pc, on := range pcs {
		if on {
			cp[pc] = true
		}
	}
	return &PerfectDir{pcs: cp, fb: DefaultYAGS(), Stats: stats.PerfectStats{Kind: "perfect"}}
}

func (p *PerfectDir) covers(pc uint64) bool { return len(p.pcs) == 0 || p.pcs[pc] }

// PrimeOutcome implements OutcomePrimed.
func (p *PerfectDir) PrimeOutcome(taken bool) { p.outcome = taken }

// Predict implements DirPredictor.
func (p *PerfectDir) Predict(pc, hist uint64) bool {
	p.Stats.Lookups++
	if p.covers(pc) {
		p.Stats.Covered++
		return p.outcome
	}
	p.Stats.FallbackUsed++
	return p.fb.Predict(pc, hist)
}

// Update implements DirPredictor: only uncovered branches train.
func (p *PerfectDir) Update(pc, hist uint64, taken bool) {
	if !p.covers(pc) {
		p.fb.Update(pc, hist, taken)
	}
}

// Spec implements Predictor: the covered PCs, sorted, in hex.
func (p *PerfectDir) Spec() string {
	if len(p.pcs) == 0 {
		return "perfect"
	}
	pcs := make([]uint64, 0, len(p.pcs))
	for pc := range p.pcs {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	var b strings.Builder
	b.WriteString("perfect:")
	for i, pc := range pcs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%#x", pc)
	}
	return b.String()
}

// PerfectSpec builds the registry spec covering a PC set — the harness
// uses it to turn a profiled problem-branch set into a predictor config.
func PerfectSpec(pcs map[uint64]bool) string { return NewPerfectDir(pcs).Spec() }

// Counters implements Predictor.
func (p *PerfectDir) Counters() (string, any) { return "Bpred.Perfect", &p.Stats }

// SaveState implements Predictor: the warm state is the fallback's
// tables (the PC set is configuration, carried by the spec).
func (p *PerfectDir) SaveState() []byte { return p.fb.SaveState() }

// LoadState implements Predictor.
func (p *PerfectDir) LoadState(blob []byte) error { return p.fb.LoadState(blob) }

func init() {
	RegisterDir("perfect", func(params string) (DirPredictor, error) {
		pcs := map[uint64]bool{}
		if params != "" {
			for _, part := range strings.Split(params, ",") {
				pc, err := strconv.ParseUint(strings.TrimSpace(part), 0, 64)
				if err != nil {
					return nil, fmt.Errorf("bad PC %q: %v", part, err)
				}
				pcs[pc] = true
			}
		}
		return NewPerfectDir(pcs), nil
	})
}
