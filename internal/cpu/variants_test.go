package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/slicehw"
)

func runMini(t *testing.T, w miniWorkload, cfg Config) *Core {
	t.Helper()
	m := mem.New()
	w.initMem(m)
	core := MustNew(cfg, w.image, m, w.entry, slicehw.MustTable(w.slices))
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("run did not complete")
	}
	return core
}

func TestConfidenceEstimator(t *testing.T) {
	c := newConfidence(256, 8)
	pc := uint64(0x1000)
	if c.confident(pc) {
		t.Error("cold PC must be low-confidence")
	}
	for i := 0; i < 8; i++ {
		c.observe(pc, false)
	}
	if !c.confident(pc) {
		t.Error("8 good executions must reach confidence")
	}
	c.observe(pc, true) // one PDE resets
	if c.confident(pc) {
		t.Error("a PDE must reset confidence")
	}
	// Saturation: many good executions never overflow.
	for i := 0; i < 1000; i++ {
		c.observe(pc, false)
	}
	if !c.confident(pc) {
		t.Error("saturated counter lost confidence")
	}
}

func TestConfidenceGateSuppressesForks(t *testing.T) {
	w := buildMini(t, 300)

	base := runMini(t, w, Config4Wide())
	gated := Config4Wide()
	gated.ConfidenceGatedForks = true
	g := runMini(t, w, gated)

	// The mini kernel's problem branch stays unbiased, so most forks
	// survive the gate — but some instructions behave well transiently
	// and a few forks must be suppressed.
	if g.S.ForksGated == 0 {
		t.Error("gate never fired")
	}
	if g.S.Forks == 0 {
		t.Error("gate suppressed every fork")
	}
	_ = base
}

func TestConfidenceGateOnPredictableKernel(t *testing.T) {
	// A kernel whose covered branch is fully biased: after warm-up the
	// gate should suppress essentially all forks, removing slice
	// overhead (vortex's situation in §6.2/§6.3).
	w := buildMini(t, 300)
	cfg := Config4Wide()
	cfg.ConfidenceGatedForks = true
	cfg.Perfect.AllBranches = true // covered branch never mispredicts
	cfg.Perfect.AllLoads = true    // covered loads never miss
	core := runMini(t, w, cfg)
	if core.S.ForksGated == 0 {
		t.Fatal("no forks gated on a perfectly behaved kernel")
	}
	if core.S.Forks > core.S.ForksGated/2 {
		t.Errorf("gate too weak: %d forks vs %d gated", core.S.Forks, core.S.ForksGated)
	}
}

func TestDedicatedSliceResources(t *testing.T) {
	w := buildMini(t, 400)

	shared := runMini(t, w, Config4Wide())
	dedCfg := Config4Wide()
	dedCfg.DedicatedSliceResources = true
	ded := runMini(t, w, dedCfg)

	// §6.3: dedicated resources remove the slice's fetch/window
	// opportunity cost, so the dedicated machine must not be slower.
	if float64(ded.S.Cycles) > float64(shared.S.Cycles)*1.02 {
		t.Errorf("dedicated resources slower: %d vs %d cycles", ded.S.Cycles, shared.S.Cycles)
	}
	// Helpers must still work and architectural state must still be exact
	// (checked via the functional reference).
	if ded.S.Forks == 0 || ded.S.HelperFetched == 0 {
		t.Error("helpers idle under dedicated resources")
	}
	m := mem.New()
	w.initMem(m)
	ref, err := RunFunctional(w.image, m, w.entry, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if ded.S.MainRetired != ref.Retired {
		t.Errorf("retired %d vs reference %d", ded.S.MainRetired, ref.Retired)
	}
}

func TestVariantsCompose(t *testing.T) {
	// All the §6.3 variants together still complete and stay exact.
	w := buildMini(t, 200)
	cfg := Config8Wide()
	cfg.ConfidenceGatedForks = true
	cfg.DedicatedSliceResources = true
	core := runMini(t, w, cfg)
	m := mem.New()
	w.initMem(m)
	ref, err := RunFunctional(w.image, m, w.entry, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if core.S.MainRetired != ref.Retired {
		t.Errorf("retired %d vs reference %d", core.S.MainRetired, ref.Retired)
	}
}
