package cpu

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/slicehw"
	"repro/internal/stats"
)

// fetchStage selects one thread per cycle with an ICOUNT-like policy
// biased toward the main threads (§4.1) and fetches up to FetchWidth
// instructions along the predicted path, past taken branches (Table 1).
// Each instruction is functionally executed as it is fetched.
func (c *Core) fetchStage() {
	if c.draining {
		return // Quiesce: drain in-flight work without fetching anything new
	}
	// Helper teardown happens before selection, in thread-index order, so
	// it never depends on which selection scan visits a thread first.
	c.retireDoneHelpers()
	t := c.chooseFetchThread()
	if t == nil {
		if c.Cfg.DedicatedSliceResources {
			c.fetchDedicatedHelper(nil)
		}
		return
	}
	c.fetchFrom(t)
	// With dedicated slice resources (§6.3), helpers have their own fetch
	// port: one helper fetches every cycle without consuming the main
	// thread's slot.
	if c.Cfg.DedicatedSliceResources {
		c.fetchDedicatedHelper(t)
	}
}

// retireDoneHelpers retires, in thread-index order, every fetching helper
// parked at a PGI whose slice instance is already done (its kill fired;
// further predictions would misalign the queue). Hoisted out of the
// selection predicates: when teardown was a side effect of
// helperPGIStalled, fetchDedicatedHelper's scan could retire a helper it
// never selected, making teardown order depend on scan order.
func (c *Core) retireDoneHelpers() {
	for _, t := range c.threads {
		if t.IsMain || !t.Alive || !t.Fetching {
			continue
		}
		p := t.prog
		if p == nil || p.sliceTable == nil || c.Cfg.SlicePredictionsOff || p.sliceFlags(t.PC)&sfPGI == 0 {
			continue
		}
		if _, isPGI := p.sliceTable.PGIAt(t.PC); isPGI && t.Instance.Done() {
			t.Fetching = false
		}
	}
}

// fetchDedicatedHelper fetches from the best eligible helper other than
// the thread that already fetched this cycle.
func (c *Core) fetchDedicatedHelper(already *Thread) {
	var best *Thread
	for _, t := range c.threads {
		if t.IsMain || t == already || !t.Alive || !t.Fetching ||
			t.icStallUntil > c.now || t.fetchq.len() >= c.fetchQCap(t) {
			continue
		}
		if c.helperPGIStalled(t) {
			continue
		}
		if best == nil || t.inflight() < best.inflight() {
			best = t
		}
	}
	if best != nil {
		c.fetchFrom(best)
	}
}

func (c *Core) fetchFrom(t *Thread) {
	p := t.prog
	for n := 0; n < c.Cfg.FetchWidth; n++ {
		if !t.Fetching || t.fetchq.len() >= c.fetchQCap(t) {
			return
		}
		if t.icStallUntil > c.now {
			return
		}
		pc := t.PC
		// A nonzero icStallUntil here means the miss stall this thread
		// slept on has expired: the fill it paid for has arrived. Re-probe
		// normally (hits keep the LRU honest), but if the line was evicted
		// during the stall — co-scheduled programs or helpers thrashing the
		// set — the arrived fill still delivers this one fetch, MSHR-style.
		// Without that guarantee, three or more programs whose hot lines
		// alias in the 2-way I-cache can starve each other forever, every
		// retry re-missing and re-stalling.
		fillArrived := t.icStallUntil != 0
		t.icStallUntil = 0
		if lat := c.hier.FetchAccess(p.physAddr(pc), c.now); lat > 0 && !fillArrived {
			t.icStallUntil = c.now + lat
			return
		}
		in, ok := p.image.At(pc)
		if !ok {
			// Fetch ran off the code image (a wrong path, or a slice
			// falling off its end). Stop; a squash will restore Fetching.
			t.Fetching = false
			return
		}
		// Slice lifecycle at the PGI: a helper whose instance is done (its
		// slice kill fired) terminates — later predictions would misalign
		// the queue. A live helper stalls while the queue is full rather
		// than dropping the prediction, for the same reason.
		if !t.IsMain && p.sliceTable != nil && !c.Cfg.SlicePredictionsOff && p.sliceFlags(pc)&sfPGI != 0 {
			if ref, isPGI := p.sliceTable.PGIAt(pc); isPGI {
				if t.Instance.Done() {
					t.Fetching = false
					return
				}
				if !p.corr.CanAllocate(ref.PGI.BranchPC) {
					return
				}
			}
		}
		c.fetchOne(t, in, pc)
	}
}

// helperPGIStalled reports whether a helper's next fetch is a PGI that
// cannot proceed right now: its slice instance is done (teardown is
// retireDoneHelpers' job — this predicate is pure), or its prediction
// queue cannot allocate.
func (c *Core) helperPGIStalled(t *Thread) bool {
	p := t.prog
	if p.sliceTable == nil || c.Cfg.SlicePredictionsOff || p.sliceFlags(t.PC)&sfPGI == 0 {
		return false
	}
	ref, isPGI := p.sliceTable.PGIAt(t.PC)
	if !isPGI {
		return false
	}
	if t.Instance.Done() {
		// A kill that landed after this cycle's teardown pass; the helper
		// just doesn't fetch this cycle and is retired next cycle.
		return true
	}
	return !p.corr.CanAllocate(ref.PGI.BranchPC)
}

// fetchQCap returns the fetch-queue capacity for a thread.
func (c *Core) fetchQCap(t *Thread) int {
	if t.IsMain {
		return c.Cfg.FetchQueueCap
	}
	return c.Cfg.HelperFetchQCap
}

// chooseFetchThread implements the biased ICOUNT policy, arbitrating
// among every program's main thread and the helpers. A thread that cannot
// actually fetch this cycle (e.g. a helper stalled at a PGI whose
// prediction queue is full) must not win the slot — it would starve the
// main threads, whose kills are what drain that queue. Each main thread
// carries its program's fairness weight; on a score tie a main thread
// beats a helper, and among equal-scored mains the lowest thread index
// (scan order) wins, keeping multi-program arbitration deterministic.
func (c *Core) chooseFetchThread() *Thread {
	var best *Thread
	bestScore := 0.0
	for _, t := range c.threads {
		if !t.Alive || !t.Fetching || t.icStallUntil > c.now || t.fetchq.len() >= c.fetchQCap(t) {
			continue
		}
		if !t.IsMain && c.helperPGIStalled(t) {
			continue
		}
		w := 1.0
		if t.IsMain {
			w = t.prog.weight
		}
		score := float64(t.inflight()) / w
		if best == nil || score < bestScore || (score == bestScore && t.IsMain && !best.IsMain) {
			best, bestScore = t, score
		}
	}
	return best
}

// fetchOne fetches, functionally executes, and predicts one instruction.
func (c *Core) fetchOne(t *Thread, in *isa.Inst, pc uint64) {
	p := t.prog
	di := c.allocInst()
	di.Thread, di.Static, di.PC, di.Seq, di.FetchCycle = t, in, pc, c.seq, c.now
	c.seq++

	if t.IsMain {
		p.S.MainFetched++
		c.sliceHooksAtFetch(di)
	} else {
		p.S.HelperFetched++
		if p.sliceTable != nil && p.sliceFlags(pc)&sfPGI != 0 {
			if ref, ok := p.sliceTable.PGIAt(pc); ok && !c.Cfg.SlicePredictionsOff {
				di.IsPGI = true
				di.PGIRef = ref
				di.AllocPred = p.corr.Allocate(t.Instance, ref.PGI.BranchPC)
			}
		}
		// Helper-thread loop accounting against the slice's iteration
		// bound (§3.2, slice termination).
		if t.Slice != nil && pc == t.Slice.LoopBackPC {
			t.LoopCount++
			if t.LoopCount >= t.Slice.MaxLoops && t.Slice.MaxLoops > 0 {
				p.S.HelperMaxIter++
				t.Fetching = false // this back edge is the last
			}
		}
	}

	// Functional execution against the speculative state. Helper threads
	// never store (§4.1): slices affect only microarchitectural state.
	if !t.IsMain && in.IsStore() {
		p.S.HelperStores++
		di.Out = isa.Outcome{}
	} else {
		c.ectx = execCtx{c, t, di}
		di.Out = isa.Execute(in, pc, &c.ectx)
	}

	// Register dependences and writer bookkeeping. Producers are
	// subscribed to (sched.go) rather than polled: they wake this
	// instruction at completion.
	var srcs [3]isa.Reg
	for _, src := range srcs[:in.SourcesInto(&srcs)] {
		if w := t.lastWriter[src]; w != nil && !w.Completed {
			c.addDep(di, w)
		}
	}
	if dest, ok := in.Dest(); ok {
		di.prevWriter = t.lastWriter[dest]
		if di.prevWriter != nil {
			di.prevWriter.nextWriter = di
		}
		t.lastWriter[dest] = di
	}
	if t.IsMain {
		if in.IsStore() {
			t.pendingStores = append(t.pendingStores, di)
			if di.undoMemValid {
				p.noteMainStore(di)
			}
		} else if in.IsLoad() {
			// Real disambiguation: subscribe to every older in-flight
			// store; each wakes the load when its address generates.
			for _, s := range t.pendingStores {
				c.addStoreDep(di, s)
			}
		}
	}

	// Control flow: predict, steer fetch, checkpoint.
	nextPC := pc + isa.InstBytes
	if in.IsCtrl() {
		nextPC = c.predictCtrl(t, di)
	} else if di.Out.Halt {
		t.Fetching = false
	} else if di.Out.Fault && !t.IsMain {
		// Exceptions terminate slices (§3.2) — how pointer-chasing
		// slices stop at a null dereference.
		p.S.HelperFaults++
		t.Fetching = false
	} else if di.Out.Fork {
		c.forkByIndex(di, di.Out.SliceIndex)
	}

	di.HistAfter = t.Hist
	di.PathAfter = t.Path
	di.RASAfter = t.RAS.Save()
	di.LoopAfter = t.LoopCount

	t.PC = nextPC
	t.fetchq.pushBack(di)
}

// sliceHooksAtFetch services the slice table CAMs for a main-thread fetch:
// forks and prediction kills (§4.2, §5.1).
func (c *Core) sliceHooksAtFetch(di *DynInst) {
	p := di.Thread.prog
	if p.sliceTable == nil {
		return
	}
	pc := di.PC
	f := p.sliceFlags(pc)
	if f == 0 {
		return
	}
	if f&sfFork != 0 {
		for _, s := range p.sliceTable.ForksAt(pc) {
			c.fork(di, s)
		}
	}
	if f&sfLoopKill != 0 {
		for _, s := range p.sliceTable.LoopKillsAt(pc) {
			if rec := p.corr.KillLoop(s); rec != nil {
				di.KillRecs = append(di.KillRecs, rec)
			}
		}
	}
	if f&sfSliceKill != 0 {
		for _, s := range p.sliceTable.SliceKillsAt(pc) {
			if rec := p.corr.KillSlice(s); rec != nil {
				di.KillRecs = append(di.KillRecs, rec)
			}
		}
	}
}

// fork activates a helper context for slice s, copying the live-in
// registers from the forking main thread's speculative state (the
// register communication of §4.3). The helper joins the forker's program:
// it reads that program's memory view and feeds that program's
// correlator. If no context is idle the fork is ignored.
func (c *Core) fork(di *DynInst, s *slicehw.Slice) {
	p := di.Thread.prog
	// §6.3: gate the fork with confidence — don't pay slice overhead for
	// problem instructions that are currently behaving well.
	if c.Cfg.ConfidenceGatedForks && !p.sliceWorthForking(p.sliceRefs[s]) {
		p.S.ForksGated++
		c.emit(stats.Event{Kind: stats.EvForkGated, PC: di.PC, Slice: s.Index})
		return
	}
	h := c.idleThread()
	if h == nil {
		p.S.ForksIgnored++
		c.emit(stats.Event{Kind: stats.EvForkIgnored, PC: di.PC, Slice: s.Index})
		return
	}
	p.S.Forks++
	c.emit(stats.Event{Kind: stats.EvFork, PC: di.PC, Slice: s.Index, Addr: s.SlicePC})
	h.reset()
	h.Alive = true
	h.Fetching = true
	h.PC = s.SlicePC
	h.Slice = s
	h.prog = p
	h.Instance = p.corr.NewInstance(s)
	h.ForkInst = di
	for _, r := range s.LiveIns {
		h.Regs[r] = di.Thread.Regs[r]
	}
	if c.tracer != nil {
		// The live-in capture exists only for trace consumers; skipping it
		// without a tracer keeps the cycle loop allocation-free on
		// fork-dense workloads.
		liveIns := make([]uint64, len(s.LiveIns))
		for i, r := range s.LiveIns {
			liveIns[i] = h.Regs[r]
		}
		h.Instance.Debug = liveIns
	}
	di.Forked = append(di.Forked, h)
}

// forkByIndex services an explicit FORK instruction.
func (c *Core) forkByIndex(di *DynInst, idx int) {
	p := di.Thread.prog
	if p.sliceTable == nil {
		return
	}
	slices := p.sliceTable.Slices()
	if idx < 0 || idx >= len(slices) {
		return
	}
	c.fork(di, slices[idx])
}

// predictCtrl predicts a fetched control instruction and returns the next
// fetch PC. It maintains speculative history, path, and RAS state. Shared
// predictor tables are indexed through the program's PC salt so
// co-scheduled programs at identical virtual PCs do not alias.
func (c *Core) predictCtrl(t *Thread, di *DynInst) uint64 {
	p := t.prog
	in := di.Static
	pc := di.PC

	switch {
	case in.IsCondBranch():
		actual := di.Out.Taken
		var pred bool
		switch {
		case t.IsMain && c.Cfg.Perfect.CoversBranch(pc):
			pred = actual
		case t.IsMain:
			if c.dirPrime != nil {
				// Perfect-style predictors see the actual outcome the
				// execute-at-fetch core already knows.
				c.dirPrime.PrimeOutcome(actual)
			}
			if c.dirVal != nil {
				// Capture the value the branch tested for retirement-time
				// value training. CondVal needs no pool scrub: it is read at
				// retire only when dirVal is set, under which it is always
				// written here first.
				di.CondVal = t.Regs[in.Ra]
			}
			fallback := c.dir.Predict(p.saltPC(pc), t.Hist)
			pred = fallback
			if p.corr != nil {
				pr, dir, override := p.corr.Lookup(pc, fallback, di)
				di.UsedPred = pr
				di.UsedOverride = override
				pred = dir
				if c.DebugLookup != nil {
					c.DebugLookup(di)
				}
			}
		default:
			// Helper threads use static prediction: backward taken,
			// forward not taken. They never touch the shared tables.
			pred = in.Imm < 0
		}
		di.PredTaken = pred
		di.PredTarget = in.BranchTarget(pc) // perfect BTB for direct branches
		di.Mispredicted = pred != actual
		di.HistBefore = t.Hist
		t.Hist = pushHist(t.Hist, pred)

	case in.Op == isa.BR:
		// Direct, unconditional: perfect with the perfect BTB.
		di.PredTaken = true
		di.PredTarget = di.Out.Target

	case in.Op == isa.CALL:
		di.PredTaken = true
		di.PredTarget = di.Out.Target
		t.RAS.Push(pc + isa.InstBytes)

	case in.Op == isa.RET:
		di.PredTaken = true
		di.PredTarget = t.RAS.Pop()
		di.Mispredicted = di.PredTarget != di.Out.Target

	case in.Op == isa.JMP || in.Op == isa.CALLR:
		di.PathBefore = t.Path
		var pred uint64
		if t.IsMain && c.Cfg.Perfect.CoversBranch(pc) {
			pred = di.Out.Target
		} else if t.IsMain {
			pred = c.indirect.Predict(p.saltPC(pc), t.Path)
		} else {
			pred = di.Out.Target // helpers: slices avoid indirects
		}
		di.PredTaken = true
		di.PredTarget = pred
		if pred == 0 {
			// No prediction available: fetch stalls until resolution. The
			// path-history push is deferred to resolveCtrl — pushing the 0
			// sentinel here would pollute the path every later indirect
			// prediction keys on with a value no resolved target matches.
			di.NoTargetPred = true
			t.waitResolve = di
			t.Fetching = false
		} else {
			di.Mispredicted = pred != di.Out.Target
			t.Path = bpred.PushPath(t.Path, pred)
		}
		if in.Op == isa.CALLR {
			t.RAS.Push(pc + isa.InstBytes)
		}
	}
	return di.predictedNextPC()
}
