package cpu

import (
	"encoding/json"
	"testing"

	"repro/internal/mem"
	"repro/internal/slicehw"
)

// newMiniPair builds a fresh two-program core (both programs the buildMini
// pointer-chase kernel with slice hardware) so determinism runs can be
// compared from identical starting states.
func newMiniPair(t *testing.T) *Core {
	t.Helper()
	cfg := Config4Wide()
	cfg.ThreadContexts = 2 + 3 // two mains + shared helper pool
	var specs []ProgSpec
	for i := 0; i < 2; i++ {
		w := buildMini(t, 200)
		m := mem.New()
		w.initMem(m)
		specs = append(specs, ProgSpec{
			Image:      w.image,
			Mem:        m,
			Entry:      w.entry,
			SliceTable: slicehw.MustTable(w.slices),
		})
	}
	core, err := NewMulti(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	return core
}

// TestMultiProgramDeterminism runs the same two-program co-schedule twice
// and requires byte-identical per-program counters. Cross-program
// nondeterminism (map-order iteration over shared structures, helper
// contention resolved by anything but the fixed thread order) would show
// up here; running under -race additionally proves the co-scheduled core
// shares no state that needs synchronization it lacks.
func TestMultiProgramDeterminism(t *testing.T) {
	run := func() ([]byte, uint64) {
		core := newMiniPair(t)
		core.Run(500)
		core.ResetStats()
		core.Run(2_000)
		snap := core.Snapshot()
		if len(snap.Progs) != 2 {
			t.Fatalf("snapshot has %d program slots, want 2", len(snap.Progs))
		}
		b, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return b, snap.Progs[0].MainRetired + snap.Progs[1].MainRetired
	}
	b1, retired1 := run()
	b2, _ := run()
	if retired1 == 0 {
		t.Fatal("co-schedule retired nothing; test is vacuous")
	}
	if string(b1) != string(b2) {
		t.Errorf("two identical co-scheduled runs produced different snapshots:\n%s\n---\n%s", b1, b2)
	}
}

// TestMultiProgramFetchForwardProgress co-schedules three and four copies
// of the same kernel — the worst case for front-end contention, since every
// program's hot lines land on the same virtual addresses — and requires
// each to run to completion. This locks down two fixes at once: the
// per-program physical-base skew (without it, identical layouts alias
// set-for-set and three mains fight over one 2-way I-cache set) and the
// MSHR-style guarantee in fetchFrom that an arrived fill delivers its fetch
// even if the line was evicted during the stall. Regression: with neither,
// every quad co-schedule livelocked — all mains perpetually re-missing at a
// frozen PC with empty pipelines.
func TestMultiProgramFetchForwardProgress(t *testing.T) {
	for _, n := range []int{3, 4} {
		cfg := Config4Wide()
		cfg.ThreadContexts = n + 3
		var specs []ProgSpec
		for i := 0; i < n; i++ {
			w := buildMini(t, 200)
			m := mem.New()
			w.initMem(m)
			specs = append(specs, ProgSpec{
				Image:      w.image,
				Mem:        m,
				Entry:      w.entry,
				SliceTable: slicehw.MustTable(w.slices),
			})
		}
		core, err := NewMulti(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		core.Run(1 << 40)
		if !core.Done() {
			for i := 0; i < n; i++ {
				t.Logf("prog %d: retired=%d pc=%#x icStall=%d now=%d",
					i, core.ProgSim(i).MainRetired, core.ProgMain(i).PC,
					core.ProgMain(i).icStallUntil, core.now)
			}
			t.Fatalf("%d-program co-schedule did not complete: fetch livelock", n)
		}
		for i := 0; i < n; i++ {
			if core.ProgSim(i).MainRetired == 0 {
				t.Errorf("%d-program co-schedule: prog %d retired nothing", n, i)
			}
		}
	}
}

// TestMultiProgramMatchesSolo pins down interference isolation at the
// architectural level: a program co-scheduled with another must retire
// the same instruction stream it retires alone. Timing may differ —
// architectural state must not.
func TestMultiProgramMatchesSolo(t *testing.T) {
	solo := func() *Core {
		w := buildMini(t, 200)
		m := mem.New()
		w.initMem(m)
		return MustNew(Config4Wide(), w.image, m, w.entry, slicehw.MustTable(w.slices))
	}
	ref := solo()
	ref.Run(1 << 40)
	if !ref.Done() {
		t.Fatal("solo run did not halt")
	}

	core := newMiniPair(t)
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("co-scheduled run did not halt")
	}
	for i := 0; i < core.NumPrograms(); i++ {
		ps, rs := core.ProgSim(i), ref.S
		if ps.MainRetired != rs.MainRetired {
			t.Errorf("prog %d retired %d insts co-scheduled, %d solo", i, ps.MainRetired, rs.MainRetired)
		}
		pm, rm := core.ProgMain(i), ref.main
		if pm.Regs != rm.Regs {
			t.Errorf("prog %d final register file differs from solo run", i)
		}
	}
}
