package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
	"repro/internal/stats"
)

// TestUnpredictedIndirectDefersPathPush is the regression test for the
// path-history bug: predictCtrl used to push the 0 "no prediction"
// sentinel into t.Path when the indirect predictor had no target for a
// JMP/CALLR, polluting the path every later indirect prediction and
// update keys on. The push is now deferred to resolveCtrl, which pushes
// the resolved target, so after two cold indirect jumps the thread's
// path must equal exactly PushPath(PushPath(0, tgt1), tgt2).
func TestUnpredictedIndirectDefersPathPush(t *testing.T) {
	const base = 0x1000
	// Fixed layout: every emitted instruction below is exactly one slot,
	// so the landing addresses are known before Build.
	tgt1 := uint64(base + 2*isa.InstBytes)
	tgt2 := uint64(base + 4*isa.InstBytes)
	b := asm.NewBuilder(base)
	b.I(isa.LDI, 1, 0, int32(tgt1))
	b.Jmp(1)
	b.Label("land1")
	b.I(isa.LDI, 2, 0, int32(tgt2))
	b.Jmp(2)
	b.Label("land2")
	b.Halt()
	p := b.MustBuild()
	if p.PC("land1") != tgt1 || p.PC("land2") != tgt2 {
		t.Fatalf("layout drifted: land1=%#x want %#x, land2=%#x want %#x",
			p.PC("land1"), tgt1, p.PC("land2"), tgt2)
	}
	im, err := asm.NewImage(p)
	if err != nil {
		t.Fatal(err)
	}

	core := MustNew(Config4Wide(), im, mem.New(), base, nil)
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("core did not halt")
	}
	// Both jumps are cold (the cascaded predictor returns 0), so both
	// take the stall-until-resolution leg; each resolution must push the
	// actual target, never the 0 sentinel.
	if core.S.IndirectJumps != 2 || core.S.IndirectMisses != 2 {
		t.Fatalf("indirects %d (%d unpredicted), want 2/2",
			core.S.IndirectJumps, core.S.IndirectMisses)
	}
	want := bpred.PushPath(bpred.PushPath(0, tgt1), tgt2)
	if core.main.Path != want {
		t.Errorf("path after two unpredicted indirects = %#x, want %#x (0-sentinel pushed?)",
			core.main.Path, want)
	}
}

// TestHelperPGIStalledIsPure is the regression test for the
// selection-predicate side effect: helperPGIStalled used to clear
// t.Fetching when it found a done slice instance, so which selection scan
// (chooseFetchThread vs fetchDedicatedHelper) visited the helper first
// decided when teardown happened. The predicate must report the stall
// without touching the thread; the hoisted retireDoneHelpers pass owns
// teardown.
func TestHelperPGIStalledIsPure(t *testing.T) {
	w := buildMini(t, 50)
	m := mem.New()
	w.initMem(m)
	core := MustNew(Config4Wide(), w.image, m, w.entry, slicehw.MustTable(w.slices))
	p := core.progs[0]
	s := p.sliceTable.Slices()[0]

	// Park a helper at the slice's PGI with an already-dead instance —
	// the state the teardown pass exists for.
	h := core.idleThread()
	if h == nil {
		t.Fatal("no idle helper context")
	}
	h.reset()
	h.Alive, h.Fetching = true, true
	h.prog = p
	h.PC = s.PGIs[0].SlicePC
	h.Instance = p.corr.NewInstance(s)
	p.corr.RemoveInstance(h.Instance)
	if !h.Instance.Done() {
		t.Fatal("instance not done after removal")
	}

	if !core.helperPGIStalled(h) {
		t.Error("done instance at a PGI must report stalled")
	}
	if !h.Fetching {
		t.Error("helperPGIStalled cleared t.Fetching — selection predicate has a side effect again")
	}
	// Calling it repeatedly (as both selection scans do in one cycle)
	// must be idempotent on thread state.
	core.helperPGIStalled(h)
	if !h.Fetching {
		t.Error("second predicate call mutated the thread")
	}

	core.retireDoneHelpers()
	if h.Fetching {
		t.Error("retireDoneHelpers did not retire the done helper")
	}
}

// eventSink is a minimal tracer for tests that only need c.tracer != nil.
type eventSink struct{ n int }

func (s *eventSink) Emit(stats.Event) { s.n++ }

// TestForkLiveInCaptureGatedByTracer is the regression test for the
// cycle-loop allocation: fork used to heap-allocate the live-in debug
// slice on every fork even with no tracer attached. The capture exists
// only for trace consumers, so without a tracer Instance.Debug must stay
// nil (no allocation); with one it must hold the forked register values.
func TestForkLiveInCaptureGatedByTracer(t *testing.T) {
	w := buildMini(t, 50)
	m := mem.New()
	w.initMem(m)
	core := MustNew(Config4Wide(), w.image, m, w.entry, slicehw.MustTable(w.slices))
	p := core.progs[0]
	s := p.sliceTable.Slices()[0]
	core.main.Regs[2], core.main.Regs[27], core.main.Regs[25] = 7, 0x200000, 1<<19

	di := core.allocInst()
	di.Thread = core.main
	core.fork(di, s)
	if len(di.Forked) != 1 {
		t.Fatalf("fork activated %d helpers, want 1", len(di.Forked))
	}
	if di.Forked[0].Instance.Debug != nil {
		t.Error("live-in capture allocated with no tracer attached")
	}

	core.SetTracer(&eventSink{})
	di2 := core.allocInst()
	di2.Thread = core.main
	core.fork(di2, s)
	h := di2.Forked[0]
	liveIns, ok := h.Instance.Debug.([]uint64)
	if !ok {
		t.Fatalf("live-in capture missing with a tracer attached (Debug = %T)", h.Instance.Debug)
	}
	for i, r := range s.LiveIns {
		if liveIns[i] != core.main.Regs[r] {
			t.Errorf("live-in %d (r%d) = %#x, want %#x", i, r, liveIns[i], core.main.Regs[r])
		}
	}
}
