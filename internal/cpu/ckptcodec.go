package cpu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// Deterministic binary codec for Checkpoint. The byte stream is a function
// of the machine state alone: every map is emitted in sorted key order and
// every slice in its semantic order, so encoding the same checkpoint twice
// yields identical bytes (the on-disk store CRCs them). The harness owns
// the file container (magic, schema version, key, CRC); this codec owns
// only the payload.

// EncodeBinary serializes the checkpoint.
func (ck *Checkpoint) EncodeBinary() []byte {
	var w wbuf
	w.u64(ck.Now)
	w.u64(ck.Seq)
	w.bool(ck.MainHalted)
	w.u64(ck.WarmRetired)
	w.u64(ck.PC)
	for _, r := range ck.Regs {
		w.u64(r)
	}
	w.u64(ck.Hist)
	w.u64(ck.Path)
	w.u64(ck.ICStallUntil)

	w.u64(uint64(len(ck.ThreadRAS)))
	for _, rs := range ck.ThreadRAS {
		w.u64(uint64(len(rs.Stack)))
		for _, v := range rs.Stack {
			w.u64(v)
		}
		w.u64(uint64(rs.SP))
	}

	encodePredSection(&w, ck.Dir)
	encodePredSection(&w, ck.Indirect)

	w.bool(ck.Conf != nil)
	if ck.Conf != nil {
		w.u64(uint64(len(ck.Conf)))
		w.b = append(w.b, ck.Conf...)
	}

	encodeCacheState(&w, ck.L1D)
	encodeCacheState(&w, ck.L1I)
	encodeCacheState(&w, ck.L2)
	encodeLines(&w, ck.PVB.Entries)
	w.u64(ck.PVB.Clock)

	w.u64(uint64(len(ck.Pref.Streams)))
	for _, s := range ck.Pref.Streams {
		w.bool(s.Valid)
		w.u64(s.NextLine)
		w.u64(uint64(s.Dir))
		w.u64(s.LastUse)
	}
	w.u64(ck.Pref.Clock)

	keys := make([]uint64, 0, len(ck.Hier.Origin))
	for k := range ck.Hier.Origin {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.u64(uint64(len(keys)))
	for _, k := range keys {
		w.u64(k)
		w.b = append(w.b, uint8(ck.Hier.Origin[k]))
	}
	w.u64(ck.Hier.MemFree)

	w.bool(ck.Corr != nil)
	if ck.Corr != nil {
		w.u64(ck.Corr.NextID)
		w.u64(uint64(len(ck.Corr.Preds)))
		for _, p := range ck.Corr.Preds {
			w.u64(p.BranchPC)
			w.bool(p.Filled)
			w.bool(p.Dir)
			w.bool(p.Used)
			w.bool(p.UsedDir)
			w.bool(p.Killed)
			w.u64(uint64(p.Inst))
		}
		w.u64(uint64(len(ck.Corr.Insts)))
		for _, in := range ck.Corr.Insts {
			w.u64(in.ID)
			w.u64(uint64(in.Slice))
			w.u64(uint64(in.SkipLoopKill))
			w.u64(uint64(in.SkipSliceKill))
			w.bool(in.Finished)
			encodeInts(&w, in.Entries)
		}
		w.u64(uint64(len(ck.Corr.Queues)))
		for _, q := range ck.Corr.Queues {
			w.u64(q.BranchPC)
			encodeInts(&w, q.Entries)
		}
		w.u64(uint64(len(ck.Corr.Live)))
		for _, l := range ck.Corr.Live {
			w.u64(uint64(l.Slice))
			encodeInts(&w, l.Insts)
		}
	}

	return ck.Mem.AppendTo(w.b)
}

// DecodeCheckpoint parses a stream produced by EncodeBinary. Corrupt input
// yields an error, never a panic or a silently wrong checkpoint (the
// on-disk container's CRC catches flipped bits; this guards truncation and
// structural nonsense).
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	r := rbuf{b: b}
	ck := &Checkpoint{}
	ck.Now = r.u64()
	ck.Seq = r.u64()
	ck.MainHalted = r.bool()
	ck.WarmRetired = r.u64()
	ck.PC = r.u64()
	for i := range ck.Regs {
		ck.Regs[i] = r.u64()
	}
	ck.Hist = r.u64()
	ck.Path = r.u64()
	ck.ICStallUntil = r.u64()

	nras := r.count(24)
	for i := uint64(0); i < nras && r.err == nil; i++ {
		var rs bpred.RASStackState
		n := r.count(8)
		for j := uint64(0); j < n && r.err == nil; j++ {
			rs.Stack = append(rs.Stack, r.u64())
		}
		rs.SP = int(r.u64())
		ck.ThreadRAS = append(ck.ThreadRAS, rs)
	}

	ck.Dir = decodePredSection(&r)
	ck.Indirect = decodePredSection(&r)

	if r.bool() {
		ck.Conf = r.bytes()
		if ck.Conf == nil && r.err == nil {
			ck.Conf = []uint8{}
		}
	}

	ck.L1D = decodeCacheState(&r)
	ck.L1I = decodeCacheState(&r)
	ck.L2 = decodeCacheState(&r)
	ck.PVB.Entries = decodeLines(&r)
	ck.PVB.Clock = r.u64()

	ns := r.count(25)
	for i := uint64(0); i < ns && r.err == nil; i++ {
		ck.Pref.Streams = append(ck.Pref.Streams, cache.StreamEntry{
			Valid: r.bool(), NextLine: r.u64(), Dir: int64(r.u64()), LastUse: r.u64(),
		})
	}
	ck.Pref.Clock = r.u64()

	no := r.count(9)
	ck.Hier.Origin = make(map[uint64]cache.Origin, no)
	for i := uint64(0); i < no && r.err == nil; i++ {
		k := r.u64()
		ck.Hier.Origin[k] = cache.Origin(r.u8())
	}
	ck.Hier.MemFree = r.u64()

	if r.bool() {
		st := &slicehw.CorrState{NextID: r.u64()}
		np := r.count(14)
		for i := uint64(0); i < np && r.err == nil; i++ {
			st.Preds = append(st.Preds, slicehw.PredSnap{
				BranchPC: r.u64(), Filled: r.bool(), Dir: r.bool(),
				Used: r.bool(), UsedDir: r.bool(), Killed: r.bool(),
				Inst: int(r.u64()),
			})
		}
		ni := r.count(33)
		for i := uint64(0); i < ni && r.err == nil; i++ {
			in := slicehw.InstSnap{
				ID: r.u64(), Slice: int(r.u64()),
				SkipLoopKill: int(r.u64()), SkipSliceKill: int(r.u64()),
				Finished: r.bool(),
			}
			in.Entries = decodeInts(&r)
			st.Insts = append(st.Insts, in)
		}
		nq := r.count(16)
		for i := uint64(0); i < nq && r.err == nil; i++ {
			q := slicehw.QueueSnap{BranchPC: r.u64()}
			q.Entries = decodeInts(&r)
			st.Queues = append(st.Queues, q)
		}
		nl := r.count(16)
		for i := uint64(0); i < nl && r.err == nil; i++ {
			l := slicehw.LiveSnap{Slice: int(r.u64())}
			l.Insts = decodeInts(&r)
			st.Live = append(st.Live, l)
		}
		ck.Corr = st
	}
	if r.err != nil {
		return nil, r.err
	}

	snap, rest, err := mem.DecodeSnapshot(r.b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cpu: checkpoint has %d trailing bytes", len(rest))
	}
	ck.Mem = snap
	return ck, nil
}

// encodePredSection writes one length-prefixed, CRC-guarded predictor
// section: the predictor's spec string and its opaque state blob. The
// container knows no predictor layout — any registered predictor's state
// travels through here unchanged — and the section CRC (covering spec +
// blob) catches a flipped byte even before the blob's own trailer does.
func encodePredSection(w *wbuf, s PredState) {
	var body wbuf
	body.u64(uint64(len(s.Spec)))
	body.b = append(body.b, s.Spec...)
	body.u64(uint64(len(s.Blob)))
	body.b = append(body.b, s.Blob...)
	w.u64(uint64(len(body.b)))
	w.u32(crc32.ChecksumIEEE(body.b))
	w.b = append(w.b, body.b...)
}

func decodePredSection(r *rbuf) PredState {
	n := r.count(1)
	want := r.u32()
	if r.err != nil {
		return PredState{}
	}
	if uint64(len(r.b)) < n {
		r.fail()
		return PredState{}
	}
	body := r.b[:n]
	r.b = r.b[n:]
	if crc32.ChecksumIEEE(body) != want {
		r.err = errors.New("cpu: corrupt checkpoint: predictor section CRC mismatch")
		return PredState{}
	}
	br := rbuf{b: body}
	spec := br.bytes()
	blob := br.bytes()
	if br.err != nil || len(br.b) != 0 {
		r.err = errors.New("cpu: corrupt checkpoint: malformed predictor section")
		return PredState{}
	}
	return PredState{Spec: string(spec), Blob: blob}
}

func encodeCacheState(w *wbuf, s cache.CacheState) {
	encodeLines(w, s.Lines)
	w.u64(s.Clock)
}

func decodeCacheState(r *rbuf) cache.CacheState {
	return cache.CacheState{Lines: decodeLines(r), Clock: r.u64()}
}

func encodeLines(w *wbuf, ls []cache.LineState) {
	w.u64(uint64(len(ls)))
	for _, l := range ls {
		w.u64(l.Tag)
		w.bool(l.Valid)
		w.bool(l.Dirty)
		w.u64(l.LRU)
	}
}

func decodeLines(r *rbuf) []cache.LineState {
	n := r.count(18)
	var ls []cache.LineState
	for i := uint64(0); i < n && r.err == nil; i++ {
		ls = append(ls, cache.LineState{Tag: r.u64(), Valid: r.bool(), Dirty: r.bool(), LRU: r.u64()})
	}
	return ls
}

func encodeInts(w *wbuf, xs []int) {
	w.u64(uint64(len(xs)))
	for _, x := range xs {
		w.u64(uint64(x))
	}
}

func decodeInts(r *rbuf) []int {
	n := r.count(8)
	var xs []int
	for i := uint64(0); i < n && r.err == nil; i++ {
		xs = append(xs, int(r.u64()))
	}
	return xs
}

// wbuf appends little-endian primitives.
type wbuf struct{ b []byte }

func (w *wbuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *wbuf) bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// rbuf reads little-endian primitives, latching the first error; subsequent
// reads return zero values so decoders need one check at the end.
type rbuf struct {
	b   []byte
	err error
}

var errTruncated = errors.New("cpu: truncated checkpoint")

func (r *rbuf) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *rbuf) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *rbuf) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *rbuf) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = errors.New("cpu: corrupt checkpoint: bad bool")
		}
		return false
	}
}

// count reads an element count and rejects streams whose claimed count
// cannot fit in the remaining bytes (minSize bytes per element), so corrupt
// counts fail fast instead of driving huge allocations.
func (r *rbuf) count(minSize int) uint64 {
	n := r.u64()
	if r.err == nil && n > uint64(len(r.b))/uint64(minSize)+1 {
		r.err = fmt.Errorf("cpu: corrupt checkpoint: count %d exceeds remaining data", n)
		return 0
	}
	return n
}

// bytes reads a length-prefixed byte slice.
func (r *rbuf) bytes() []byte {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.fail()
		return nil
	}
	v := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return v
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = errTruncated
	}
}
