package cpu

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// invariantTestCore builds a core mid-run: halted programs release all
// their in-flight state, so the corruption tests stop the core while the
// pipeline is still full.
func invariantTestCore(t *testing.T) *Core {
	t.Helper()
	b := asm.NewBuilder(0x1000)
	b.Li(27, 0x40000)
	b.I(isa.LDI, 1, 0, 10000)
	b.Label("loop")
	b.R(isa.ADD, 2, 2, 1)
	b.St(2, 0, 27)
	b.Ld(3, 0, 27)
	b.R(isa.XOR, 4, 3, 2)
	b.I(isa.ADDI, 1, 1, -1)
	b.B(isa.BGT, 1, "loop")
	b.Halt()
	p := b.MustBuild()
	im, err := asm.NewImage(p)
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(Config4Wide(), im, mem.New(), p.Base, nil)
	c.Run(500)
	if c.Done() || c.main.rob.len() == 0 {
		t.Fatal("test core drained; corruption checks need a live pipeline")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("clean core failed invariants: %v", err)
	}
	return c
}

// TestCheckInvariantsDetectsCorruption mutates one structure per case and
// requires the checker to flag it — proof the oracle's per-N-cycle sweep
// is not vacuously green.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(c *Core)
		want    string // substring of the expected violation
	}{
		{
			name:    "window-accounting",
			corrupt: func(c *Core) { c.window++ },
			want:    "window",
		},
		{
			name: "pooled-live-inst",
			corrupt: func(c *Core) {
				// Recycle a live ROB entry without releasing it.
				c.pool = append(c.pool, c.main.rob.front())
			},
			want: "pool",
		},
		{
			name: "writer-chain-cycle",
			corrupt: func(c *Core) {
				for r := 0; r < isa.NumRegs; r++ {
					if w := c.main.lastWriter[r]; w != nil {
						w.prevWriter = w // self-loop after a botched unlink
						return
					}
				}
				t.Skip("no live writer chain at the stop point")
			},
			want: "writer chain",
		},
		{
			name: "store-queue-lost-undo",
			corrupt: func(c *Core) {
				if c.progs[0].mainStores.len() == 0 {
					t.Skip("no in-flight stores at the stop point")
				}
				c.progs[0].mainStores.front().undoMemValid = false
			},
			want: "mainStores",
		},
		{
			name: "ready-list-stale",
			corrupt: func(c *Core) {
				if len(c.ready) == 0 {
					t.Skip("empty ready list at the stop point")
				}
				c.ready[0].waitCount = 1
			},
			want: "ready",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := invariantTestCore(t)
			tc.corrupt(c)
			err := c.CheckInvariants()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("violation %q does not mention %q", err, tc.want)
			}
		})
	}
}
