package cpu

// instRing is a FIFO of in-flight instructions over a power-of-two backing
// array — the ROB, the fetch queues, and the committed-store queue. The
// previous representation drained by re-slicing (q = q[1:]), which retains
// the full backing array for the life of the thread and regrows it on
// every wrap; the ring allocates once and nils slots as instructions
// leave, so the cycle loop neither regrows queues nor pins recycled
// instructions.
type instRing struct {
	buf  []*DynInst
	head int
	n    int
}

func newInstRing(capHint int) instRing {
	c := 1
	for c < capHint {
		c <<= 1
	}
	return instRing{buf: make([]*DynInst, c)}
}

func (r *instRing) len() int { return r.n }

// at returns the i-th entry from the front (0 = oldest).
func (r *instRing) at(i int) *DynInst { return r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *instRing) front() *DynInst { return r.buf[r.head] }

func (r *instRing) back() *DynInst { return r.at(r.n - 1) }

func (r *instRing) pushBack(d *DynInst) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = d
	r.n++
}

func (r *instRing) popFront() *DynInst {
	d := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return d
}

func (r *instRing) popBack() *DynInst {
	i := (r.head + r.n - 1) & (len(r.buf) - 1)
	d := r.buf[i]
	r.buf[i] = nil
	r.n--
	return d
}

// grow doubles the backing array — a one-time event when a configuration
// outruns the sizing hint, never steady-state.
func (r *instRing) grow() {
	nb := make([]*DynInst, 2*len(r.buf))
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}

// clear drops every entry (helper-context reuse).
func (r *instRing) clear() {
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = nil
	}
	r.head, r.n = 0, 0
}
