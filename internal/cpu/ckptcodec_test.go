package cpu

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/bpred"
	"repro/internal/workloads"
)

// makeCheckpoint builds a real checkpoint from a short vpr warm (with
// slices, so the correlator state is populated too).
func makeCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	return makeCheckpointCfg(t, Config4Wide())
}

func makeCheckpointCfg(t *testing.T, cfg Config) *Checkpoint {
	t.Helper()
	w, err := workloads.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(cfg.WarmConfig(), w.Image, w.NewMemory(), w.Entry, w.SliceTable())
	c.Run(20_000)
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return ck
}

// TestCodecRoundTrip: encode → decode must reproduce the checkpoint
// exactly, and re-encoding the decoded copy must be byte-identical (the
// encoding is deterministic, which the disk cache's CRC and the CI
// zero-miss assertion both rely on).
func TestCodecRoundTrip(t *testing.T) {
	ck := makeCheckpoint(t)
	enc := ck.EncodeBinary()

	dec, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !ck.Mem.Equal(dec.Mem) {
		t.Error("memory snapshot did not round-trip")
	}
	// Compare everything except Mem (mem.Snapshot holds unexported state;
	// compared above via Equal).
	a, b := *ck, *dec
	a.Mem, b.Mem = nil, nil
	if !reflect.DeepEqual(a, b) {
		av, bv := reflect.ValueOf(a), reflect.ValueOf(b)
		for i := 0; i < av.NumField(); i++ {
			if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
				t.Errorf("field %s did not round-trip", av.Type().Field(i).Name)
			}
		}
	}

	reenc := dec.EncodeBinary()
	if !bytes.Equal(enc, reenc) {
		t.Error("re-encoding the decoded checkpoint changed the bytes")
	}
}

// TestCodecRestoredCoreMatches: a core restored from the decoded bytes
// must measure identically to one restored from the original checkpoint.
func TestCodecRestoredCoreMatches(t *testing.T) {
	w, err := workloads.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	ck := makeCheckpoint(t)
	dec, err := DecodeCheckpoint(ck.EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config4Wide()
	run := func(ck *Checkpoint) any {
		c, err := Restore(cfg, w.Image, ck, w.SliceTable())
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		c.Run(40_000)
		return c.Snapshot()
	}
	if !reflect.DeepEqual(run(ck), run(dec)) {
		t.Error("decoded checkpoint measures differently than the original")
	}
}

// TestCodecTruncation: every strict prefix of a valid encoding must fail
// with an error, never panic or mis-decode. (Exhaustive over all lengths;
// the encoding is ~100KB at this warm length, so keep the stride coarse
// away from the ends.)
func TestCodecTruncation(t *testing.T) {
	enc := makeCheckpoint(t).EncodeBinary()
	lengths := []int{0, 1, 2, 7, 8, 9, len(enc) - 1, len(enc) / 2}
	for n := 16; n < len(enc); n += len(enc) / 257 {
		lengths = append(lengths, n)
	}
	for _, n := range lengths {
		if _, err := DecodeCheckpoint(enc[:n]); err == nil {
			t.Errorf("decoding %d-byte prefix of %d-byte encoding succeeded", n, len(enc))
		}
	}
	// Trailing garbage is also an error, not silently ignored.
	if _, err := DecodeCheckpoint(append(append([]byte{}, enc...), 0xAB)); err == nil {
		t.Error("decoding with trailing garbage succeeded")
	}
}

// TestCodecRoundTripEveryPredictor: the predictor sections are opaque to
// the codec, so a checkpoint warmed under any registered direction
// predictor must round-trip byte-identically — this is what lets a new
// predictor land without touching the codec.
func TestCodecRoundTripEveryPredictor(t *testing.T) {
	for _, name := range bpred.DirNames() {
		cfg := Config4Wide()
		cfg.BPred = name
		ck := makeCheckpointCfg(t, cfg)
		enc := ck.EncodeBinary()
		dec, err := DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if dec.Dir.Spec != ck.Dir.Spec || !bytes.Equal(dec.Dir.Blob, ck.Dir.Blob) {
			t.Errorf("%s: direction predictor section did not round-trip", name)
		}
		if dec.Indirect.Spec != ck.Indirect.Spec || !bytes.Equal(dec.Indirect.Blob, ck.Indirect.Blob) {
			t.Errorf("%s: indirect predictor section did not round-trip", name)
		}
		if !bytes.Equal(dec.EncodeBinary(), enc) {
			t.Errorf("%s: re-encoding changed the bytes", name)
		}
	}
}

// TestCodecPredictorSectionCorruption: a flipped byte anywhere in a
// predictor section (spec or blob) must fail the decode — the section CRC
// guards the container even before the blob's own trailer is checked.
func TestCodecPredictorSectionCorruption(t *testing.T) {
	ck := makeCheckpoint(t)
	enc := ck.EncodeBinary()
	start := bytes.Index(enc, []byte(ck.Dir.Spec))
	if start < 0 {
		t.Fatal("direction predictor spec not found in the encoding")
	}
	end := start + len(ck.Dir.Spec) + 8 + len(ck.Dir.Blob)
	for off := start; off < end; off += 13 {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x01
		if _, err := DecodeCheckpoint(bad); err == nil {
			t.Fatalf("flipped byte at offset %d (section %d..%d) not detected", off, start, end)
		}
	}
}
