package cpu

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/stats"
)

// retireStage commits completed instructions in order, main threads first.
// Predictor training, PDE attribution, and store write-back all happen
// here, on the architecturally correct path only. CommitWidth is shared
// across programs; main threads drain in thread-index (program slot)
// order, which keeps multi-programmed retirement deterministic.
func (c *Core) retireStage() {
	retired := 0
	// Mains first, then helpers (helper "retirement" just drains the
	// window; slices have no architectural state). Thread slots are laid
	// out mains-first, so plain index order is that order.
	for _, t := range c.threads {
		if !t.Alive {
			continue
		}
		for retired < c.Cfg.CommitWidth && t.rob.len() > 0 {
			di := t.rob.front()
			if !di.Completed || di.CompleteCycle > c.now {
				break
			}
			if t.IsMain && di.Static.IsStore() && !di.Out.Fault {
				if !c.hier.StoreRetire(t.prog.physAddr(di.Out.Addr), c.now) {
					t.prog.S.RetireStalls++
					if c.tracer != nil {
						c.emit(stats.Event{Kind: stats.EvRetireStall, PC: di.PC, Addr: di.Out.Addr})
					}
					break // write buffer full; retry next cycle
				}
			}
			t.rob.popFront()
			c.retireInst(di)
			retired++
		}
	}
}

func (c *Core) retireInst(di *DynInst) {
	di.Retired = true
	t := di.Thread
	p := t.prog
	if t.IsMain || !c.Cfg.DedicatedSliceResources {
		c.window--
	}
	if !t.IsMain {
		c.helperWindow--
	}
	// The instruction's RAS checkpoint can never be restored again; commit
	// it so the repair journal stays bounded by in-flight pushes.
	t.RAS.Commit(di.RASAfter)

	if !t.IsMain {
		p.S.HelperRetired++
		c.releaseRetired(di)
		return
	}

	p.S.MainRetired++
	if c.RetireObserver != nil {
		// The differential oracle sees the committed stream here, while
		// the instruction's outcome and undo state are still intact.
		// retiring exempts di from the invariant checker's liveness
		// checks: it is popped from the ROB but not yet released.
		c.retiring = di
		c.RetireObserver(di)
		c.retiring = nil
	}
	in := di.Static
	pc := di.PC
	st := p.staticFor(pc)
	st.Execs++

	switch {
	case in.IsLoad():
		st.IsLoad = true
		p.S.Loads++
		miss := !di.forwarded && !di.PerfectLoad && !di.Out.Fault &&
			di.MemResult.Latency > c.Cfg.Mem.LatL1
		if miss {
			st.Misses++
			p.S.LoadMisses++
		}
		if p.conf != nil {
			p.conf.observe(pc, miss)
		}
		if di.MemResult.HelperCovered {
			p.S.MissesCovered++
		}

	case in.IsCondBranch():
		if c.DebugRetireBranch != nil {
			c.DebugRetireBranch(di)
		}
		st.IsBranch = true
		p.S.Branches++
		if di.Out.Taken {
			st.Taken++
		}
		if di.Mispredicted {
			st.Mispredicts++
			p.S.Mispredicts++
		}
		if p.conf != nil {
			p.conf.observe(pc, di.Mispredicted)
		}
		// Train the conventional predictor with the true history. Value
		// observation comes first, mirroring program order: the source
		// value existed before the outcome resolved. The shared tables are
		// indexed through the program's PC salt, matching predictCtrl.
		if !c.Cfg.Perfect.CoversBranch(pc) {
			if c.dirVal != nil {
				c.dirVal.ObserveValue(p.saltPC(pc), condOf(in.Op), di.CondVal)
			}
			c.dir.Update(p.saltPC(pc), di.HistBefore, di.Out.Taken)
		}
		// Slice-prediction accounting (Table 4).
		if di.UsedPred != nil && di.UsedOverride {
			p.S.PredsUsed++
			if di.UsedPred.UsedDir == di.Out.Taken {
				p.S.PredsCorrect++
			} else {
				p.S.PredsIncorrect++
				if c.DebugWrongOverride != nil {
					c.DebugWrongOverride(di)
				}
			}
		}
		if di.UsedPred != nil && !di.UsedOverride {
			p.S.PredsLateUsed++
		}

	case in.Op == isa.JMP || in.Op == isa.CALLR:
		p.S.IndirectJumps++
		if di.Mispredicted || di.NoTargetPred {
			p.S.IndirectMisses++
		}
		if !c.Cfg.Perfect.CoversBranch(pc) {
			c.indirect.Update(p.saltPC(pc), di.PathBefore, di.Out.Target)
		}

	case di.Out.Halt:
		p.halted = true
	}

	if p.corr != nil {
		for _, rec := range di.KillRecs {
			p.corr.CommitKill(rec)
		}
	}

	if di.undoMemValid {
		p.dropRetiredStore(di)
	}
	c.releaseRetired(di)
}

// condOf maps a conditional-branch opcode onto the bpred condition enum
// (value predictors evaluate predicted source values through it).
func condOf(op isa.Op) bpred.Cond {
	switch op {
	case isa.BEQ:
		return bpred.CondEQ
	case isa.BNE:
		return bpred.CondNE
	case isa.BLT:
		return bpred.CondLT
	case isa.BLE:
		return bpred.CondLE
	case isa.BGT:
		return bpred.CondGT
	case isa.BGE:
		return bpred.CondGE
	}
	return bpred.CondNone
}
