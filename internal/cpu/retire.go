package cpu

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/stats"
)

// retireStage commits completed instructions in order, main thread first.
// Predictor training, PDE attribution, and store write-back all happen
// here, on the architecturally correct path only.
func (c *Core) retireStage() {
	retired := 0
	// Main first, then helpers (helper "retirement" just drains the
	// window; slices have no architectural state).
	for _, t := range c.threadsMainFirst() {
		if !t.Alive {
			continue
		}
		for retired < c.Cfg.CommitWidth && t.rob.len() > 0 {
			di := t.rob.front()
			if !di.Completed || di.CompleteCycle > c.now {
				break
			}
			if t.IsMain && di.Static.IsStore() && !di.Out.Fault {
				if !c.hier.StoreRetire(di.Out.Addr, c.now) {
					c.S.RetireStalls++
					if c.tracer != nil {
						c.emit(stats.Event{Kind: stats.EvRetireStall, PC: di.PC, Addr: di.Out.Addr})
					}
					break // write buffer full; retry next cycle
				}
			}
			t.rob.popFront()
			c.retireInst(di)
			retired++
		}
	}
}

func (c *Core) threadsMainFirst() []*Thread {
	// threads[0] is always the main thread.
	return c.threads
}

func (c *Core) retireInst(di *DynInst) {
	di.Retired = true
	t := di.Thread
	if t.IsMain || !c.Cfg.DedicatedSliceResources {
		c.window--
	}
	if !t.IsMain {
		c.helperWindow--
	}
	// The instruction's RAS checkpoint can never be restored again; commit
	// it so the repair journal stays bounded by in-flight pushes.
	t.RAS.Commit(di.RASAfter)

	if !t.IsMain {
		c.S.HelperRetired++
		c.releaseRetired(di)
		return
	}

	c.S.MainRetired++
	if c.RetireObserver != nil {
		// The differential oracle sees the committed stream here, while
		// the instruction's outcome and undo state are still intact.
		// retiring exempts di from the invariant checker's liveness
		// checks: it is popped from the ROB but not yet released.
		c.retiring = di
		c.RetireObserver(di)
		c.retiring = nil
	}
	in := di.Static
	pc := di.PC
	st := c.staticFor(pc)
	st.Execs++

	switch {
	case in.IsLoad():
		st.IsLoad = true
		c.S.Loads++
		miss := !di.forwarded && !di.PerfectLoad && !di.Out.Fault &&
			di.MemResult.Latency > c.Cfg.Mem.LatL1
		if miss {
			st.Misses++
			c.S.LoadMisses++
		}
		if c.conf != nil {
			c.conf.observe(pc, miss)
		}
		if di.MemResult.HelperCovered {
			c.S.MissesCovered++
		}

	case in.IsCondBranch():
		if c.DebugRetireBranch != nil {
			c.DebugRetireBranch(di)
		}
		st.IsBranch = true
		c.S.Branches++
		if di.Out.Taken {
			st.Taken++
		}
		if di.Mispredicted {
			st.Mispredicts++
			c.S.Mispredicts++
		}
		if c.conf != nil {
			c.conf.observe(pc, di.Mispredicted)
		}
		// Train the conventional predictor with the true history. Value
		// observation comes first, mirroring program order: the source
		// value existed before the outcome resolved.
		if !c.Cfg.Perfect.CoversBranch(pc) {
			if c.dirVal != nil {
				c.dirVal.ObserveValue(pc, condOf(in.Op), di.CondVal)
			}
			c.dir.Update(pc, di.HistBefore, di.Out.Taken)
		}
		// Slice-prediction accounting (Table 4).
		if di.UsedPred != nil && di.UsedOverride {
			c.S.PredsUsed++
			if di.UsedPred.UsedDir == di.Out.Taken {
				c.S.PredsCorrect++
			} else {
				c.S.PredsIncorrect++
				if c.DebugWrongOverride != nil {
					c.DebugWrongOverride(di)
				}
			}
		}
		if di.UsedPred != nil && !di.UsedOverride {
			c.S.PredsLateUsed++
		}

	case in.Op == isa.JMP || in.Op == isa.CALLR:
		c.S.IndirectJumps++
		if di.Mispredicted || di.NoTargetPred {
			c.S.IndirectMisses++
		}
		if !c.Cfg.Perfect.CoversBranch(pc) {
			c.indirect.Update(pc, di.PathBefore, di.Out.Target)
		}

	case di.Out.Halt:
		c.mainHalted = true
	}

	if c.corr != nil {
		for _, rec := range di.KillRecs {
			c.corr.CommitKill(rec)
		}
	}

	if di.undoMemValid {
		c.dropRetiredStore(di)
	}
	c.releaseRetired(di)
}

// condOf maps a conditional-branch opcode onto the bpred condition enum
// (value predictors evaluate predicted source values through it).
func condOf(op isa.Op) bpred.Cond {
	switch op {
	case isa.BEQ:
		return bpred.CondEQ
	case isa.BNE:
		return bpred.CondNE
	case isa.BLT:
		return bpred.CondLT
	case isa.BLE:
		return bpred.CondLE
	case isa.BGT:
		return bpred.CondGT
	case isa.BGE:
		return bpred.CondGE
	}
	return bpred.CondNone
}
