package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// miniWorkload builds a small halting kernel with one slice: a scattered
// pointer chase whose node loads miss and whose payload-compare branch is
// unbiased, plus a slice that chases ahead, prefetching and predicting.
type miniWorkload struct {
	image   *asm.Image
	entry   uint64
	slices  []*slicehw.Slice
	initMem func(m *mem.Memory)
}

func buildMini(t testing.TB, iters int) miniWorkload {
	t.Helper()
	const (
		heads  = uint64(0x200000)
		arena  = uint64(0x400000)
		nLists = 64
		nPer   = 12
	)
	b := asm.NewBuilder(0x1000)
	b.Li(27, int64(heads))
	b.I(isa.LDI, 1, 0, int32(iters))
	b.Li(25, 1<<19) // pivot
	b.Label("outer")
	b.I(isa.ADDI, 2, 2, 1)
	b.I(isa.ANDI, 2, 2, nLists-1)
	b.Label("list_loop") // fork
	b.R(isa.S8ADD, 3, 2, 27)
	b.Ld(4, 0, 3)
	b.B(isa.BEQ, 4, "next_list")
	b.Label("walk")
	b.Ld(5, 8, 4)
	b.R(isa.CMPLT, 6, 5, 25)
	b.Label("cost_branch")
	b.B(isa.BEQ, 6, "skip")
	b.I(isa.ADDI, 7, 7, 1)
	b.Label("skip")
	b.Ld(4, 0, 4)
	b.Label("latch")
	b.B(isa.BNE, 4, "walk")
	b.Label("next_list")
	b.I(isa.ADDI, 1, 1, -1)
	b.B(isa.BGT, 1, "outer")
	b.Halt()
	main := b.MustBuild()

	sb := asm.NewBuilder(0x100000)
	sb.Label("slice")
	sb.R(isa.S8ADD, 10, 2, 27)
	sb.Ld(11, 0, 10)
	sb.Label("slice_loop")
	sb.Ld(12, 8, 11)
	sb.Label("slice_pgi")
	sb.R(isa.CMPLT, 13, 12, 25)
	sb.Ld(11, 0, 11)
	// A store in slice code must be dropped by the hardware (§4.1).
	sb.St(13, 16, 10)
	sb.Label("slice_back")
	sb.Br("slice_loop")
	sliceProg := sb.MustBuild()

	sl := &slicehw.Slice{
		Name:       "mini.chase",
		ForkPC:     main.PC("list_loop"),
		SlicePC:    sliceProg.PC("slice"),
		LiveIns:    []isa.Reg{2, 27, 25},
		MaxLoops:   nPer + 4,
		LoopBackPC: sliceProg.PC("slice_back"),
		PGIs: []slicehw.PGI{{
			SlicePC:     sliceProg.PC("slice_pgi"),
			BranchPC:    main.PC("cost_branch"),
			TakenIfZero: true,
		}},
		LoopKillPC:     main.PC("latch"),
		SliceKillPC:    main.PC("next_list"),
		CoveredLoadPCs: []uint64{main.PC("walk")},
	}

	im, err := asm.NewImage(main, sliceProg)
	if err != nil {
		t.Fatal(err)
	}
	initMem := func(m *mem.Memory) {
		r := uint64(0x12345)
		next := func() uint64 { r ^= r << 13; r ^= r >> 7; r ^= r << 17; return r }
		slot := 0
		for l := 0; l < nLists; l++ {
			var prev uint64
			for k := 0; k < nPer; k++ {
				addr := arena + uint64(slot)*4096 + next()%32*64
				slot++
				if k == 0 {
					m.WriteU64(heads+uint64(l)*8, addr)
				} else {
					m.WriteU64(prev, addr)
				}
				m.WriteU64(addr+8, next()&(1<<20-1))
				prev = addr
			}
			m.WriteU64(prev, 0)
		}
	}
	return miniWorkload{image: im, entry: main.Base, slices: []*slicehw.Slice{sl}, initMem: initMem}
}

// TestSlicesPreserveArchitecturalState is the paper's central safety
// claim: "the effects of the slices are completely microarchitectural in
// nature, in no way affecting the architectural state (and hence
// correctness) of the program."
func TestSlicesPreserveArchitecturalState(t *testing.T) {
	w := buildMini(t, 300)

	m1 := mem.New()
	w.initMem(m1)
	core := MustNew(Config4Wide(), w.image, m1, w.entry, slicehw.MustTable(w.slices))
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("did not halt")
	}

	m2 := mem.New()
	w.initMem(m2)
	ref, err := RunFunctional(w.image, m2, w.entry, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < isa.NumRegs; r++ {
		if core.main.Regs[r] != ref.Regs[r] {
			t.Errorf("r%d = %#x, reference %#x", r, core.main.Regs[r], ref.Regs[r])
		}
	}
	if core.S.MainRetired != ref.Retired {
		t.Errorf("retired %d vs reference %d", core.S.MainRetired, ref.Retired)
	}
	if core.S.Forks == 0 {
		t.Error("the slice never forked — the test proved nothing")
	}
	if core.S.HelperStores == 0 {
		t.Error("the slice's store was never suppressed")
	}
}

func TestSlicesActuallyHelpMini(t *testing.T) {
	w := buildMini(t, 400)

	run := func(withSlices bool) *Core {
		m := mem.New()
		w.initMem(m)
		var core *Core
		if withSlices {
			core = MustNew(Config4Wide(), w.image, m, w.entry, slicehw.MustTable(w.slices))
		} else {
			core = MustNew(Config4Wide(), w.image, m, w.entry, nil)
		}
		core.Run(1 << 40)
		return core
	}
	base := run(false)
	sl := run(true)
	if sl.S.Cycles >= base.S.Cycles {
		t.Errorf("slices did not help: %d vs %d cycles", sl.S.Cycles, base.S.Cycles)
	}
	if sl.S.MissesCovered == 0 {
		t.Error("no misses covered")
	}
	if sl.S.PredsUsed+sl.S.PredsLateUsed == 0 {
		t.Error("no predictions matched")
	}
}

func TestHelperThreadLifecycle(t *testing.T) {
	w := buildMini(t, 50)
	m := mem.New()
	w.initMem(m)
	core := MustNew(Config4Wide(), w.image, m, w.entry, slicehw.MustTable(w.slices))
	core.Run(1 << 40)
	s := core.S
	// Helpers terminate by null-pointer exception (the chase) or the
	// iteration bound, and every context must be reclaimed by the end.
	if s.HelperFaults == 0 && s.HelperMaxIter == 0 {
		t.Error("no helper termination recorded")
	}
	for _, th := range core.threads {
		if !th.IsMain && th.Alive {
			t.Error("helper context leaked")
		}
	}
	if s.HelperFetched < s.HelperRetired {
		t.Errorf("helper fetched %d < retired %d", s.HelperFetched, s.HelperRetired)
	}
}

func TestForkIgnoredWhenContextsBusy(t *testing.T) {
	w := buildMini(t, 200)
	m := mem.New()
	w.initMem(m)
	cfg := Config4Wide()
	cfg.ThreadContexts = 2 // one main + one helper: forks must be dropped
	core := MustNew(cfg, w.image, m, w.entry, slicehw.MustTable(w.slices))
	core.Run(1 << 40)
	if core.S.ForksIgnored == 0 {
		t.Error("expected ignored forks with a single helper context")
	}
}

func TestWrongPathForksAreSquashed(t *testing.T) {
	w := buildMini(t, 400)
	m := mem.New()
	w.initMem(m)
	core := MustNew(Config4Wide(), w.image, m, w.entry, slicehw.MustTable(w.slices))
	core.Run(1 << 40)
	// The latch mispredicts at list ends; its wrong path re-enters
	// list_loop and forks, so squashed forks must appear — and the
	// machine must still be architecturally exact (checked above).
	if core.S.ForksSquashed == 0 {
		t.Error("no wrong-path forks were squashed")
	}
}

func TestSlicePredictionsOffDisablesCorrelator(t *testing.T) {
	w := buildMini(t, 200)
	m := mem.New()
	w.initMem(m)
	cfg := Config4Wide()
	cfg.SlicePredictionsOff = true
	core := MustNew(cfg, w.image, m, w.entry, slicehw.MustTable(w.slices))
	core.Run(1 << 40)
	if core.S.PredsUsed != 0 || core.S.PredsLateUsed != 0 {
		t.Error("predictions matched with SlicePredictionsOff")
	}
	if core.S.SlicePrefetches == 0 {
		t.Error("prefetching must keep working with predictions off")
	}
}

func TestEightWideWithSlices(t *testing.T) {
	w := buildMini(t, 200)
	m := mem.New()
	w.initMem(m)
	core := MustNew(Config8Wide(), w.image, m, w.entry, slicehw.MustTable(w.slices))
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("8-wide run did not complete")
	}
	m2 := mem.New()
	w.initMem(m2)
	ref, err := RunFunctional(w.image, m2, w.entry, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if core.S.MainRetired != ref.Retired {
		t.Errorf("retired %d vs reference %d", core.S.MainRetired, ref.Retired)
	}
}
