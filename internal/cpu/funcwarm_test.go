package cpu

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/progen"
)

// TestFunctionalWarmFaultSkipsHierarchy is the regression test for the
// fault-semantics bug: FunctionalWarm used to touch-warm the cache
// hierarchy with faulting main-thread accesses — installing the null page
// and unmapped lines into the L1D, which the detailed core never does (it
// neither issues a D-cache access for a faulting load nor retires a
// faulting store through the write buffer). Architecturally execution must
// still continue past the faults exactly like RunFunctional.
func TestFunctionalWarmFaultSkipsHierarchy(t *testing.T) {
	const (
		data      = uint64(0x40000)  // mapped: the control access
		nullLoad  = uint64(0x10)     // null page
		nullStore = uint64(0x400)    // null page, different L1D line
		unmapped  = uint64(0x999000) // mappable range, never mapped
	)
	p := &asm.Program{Base: 0x1000, Insts: []isa.Inst{
		{Op: isa.LDI, Rd: 1, Imm: int32(data)},
		{Op: isa.LD, Rd: 2, Ra: 1, Imm: 0},                      // control: valid load
		{Op: isa.LD, Rd: 3, Ra: isa.Zero, Imm: int32(nullLoad)}, // faults
		{Op: isa.LDI, Rd: 4, Imm: int32(unmapped)},
		{Op: isa.LD, Rd: 5, Ra: 4, Imm: 0},                       // faults
		{Op: isa.ST, Rd: 1, Ra: isa.Zero, Imm: int32(nullStore)}, // faults
		{Op: isa.ADDI, Rd: 6, Ra: 3, Imm: 9},                     // proves execution continued
		{Op: isa.HALT},
	}}
	im, err := asm.NewImage(p)
	if err != nil {
		t.Fatal(err)
	}

	warmMem := mem.New()
	warmMem.WriteU64(data, 77)
	ck, err := FunctionalWarm(Config4Wide(), im, warmMem, p.Base, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Architectural state: identical to the pure functional run.
	refMem := mem.New()
	refMem.WriteU64(data, 77)
	ref, err := RunFunctional(im, refMem, p.Base, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.MainHalted || !ref.Halted {
		t.Fatalf("halted: warm %v, functional %v", ck.MainHalted, ref.Halted)
	}
	if ck.Regs != ref.Regs {
		t.Errorf("warm registers diverge from RunFunctional:\n warm %v\n ref  %v", ck.Regs, ref.Regs)
	}
	if got := ck.Regs[6]; got != 9 {
		t.Errorf("r6 = %d, want 9 (execution must continue past the faults)", got)
	}

	// Microarchitectural state: only the valid access may be in the L1D.
	core, err := Restore(Config4Wide(), im, ck, nil)
	if err != nil {
		t.Fatal(err)
	}
	l1d := core.Hier().L1D
	if !l1d.Probe(data) {
		t.Error("valid load's line missing from the warmed L1D")
	}
	for _, addr := range []uint64{nullLoad, nullStore, unmapped} {
		if l1d.Probe(addr) {
			t.Errorf("faulting access at %#x was installed in the L1D", addr)
		}
	}
}

// TestFunctionalWarmStoreDrainTiming is the regression test for the
// double-tick bug: the store-drain loop used to advance the cycle before
// ticking and then tick the bottom of the loop again, so the cycle the
// retire landed on was ticked twice and the first stall cycle not at all —
// draining each stalled store one cycle early. The reference below is an
// independent cycle-major replica of the documented protocol (1 IPC, the
// hierarchy ticked exactly once per cycle, a full write buffer stalling
// retirement) driven against its own hierarchy; the checkpoint's cycle
// counter and cache state must match it exactly.
func TestFunctionalWarmStoreDrainTiming(t *testing.T) {
	const data = uint64(0x40000)
	cfg := Config4Wide()
	cfg.Mem.WriteBufEntries = 1 // every second store miss stalls

	line := int32(cfg.Mem.L1Line)
	p := &asm.Program{Base: 0x1000, Insts: []isa.Inst{
		{Op: isa.LDI, Rd: 1, Imm: int32(data)},
		{Op: isa.ST, Rd: isa.Zero, Ra: 1, Imm: 0}, // distinct lines: all miss
		{Op: isa.ST, Rd: isa.Zero, Ra: 1, Imm: line},
		{Op: isa.ST, Rd: isa.Zero, Ra: 1, Imm: 2 * line},
		{Op: isa.ST, Rd: isa.Zero, Ra: 1, Imm: 3 * line},
		{Op: isa.HALT},
	}}
	im, err := asm.NewImage(p)
	if err != nil {
		t.Fatal(err)
	}

	ck, err := FunctionalWarm(cfg, im, mem.New(), p.Base, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Cycle-major replica: each loop iteration is one cycle ending in
	// exactly one Tick; an unretired store occupies subsequent cycles until
	// the write buffer accepts it, and only then does the next instruction
	// fetch.
	h := cache.NewHierarchy(cfg.WarmConfig().Mem)
	refMem := mem.New()
	var regs [isa.NumRegs]uint64
	ctx := funcCtx{regs: &regs, m: refMem}
	var (
		now     uint64
		pc      = p.Base
		stalled bool
		stallAt uint64
		halted  bool
	)
	for cycles := 0; !halted; cycles++ {
		if cycles > 1<<16 {
			t.Fatal("replica did not halt")
		}
		now++
		if stalled {
			if h.StoreRetire(stallAt, now) {
				stalled = false
			}
			h.Tick(now)
			continue
		}
		h.FetchAccess(pc, now)
		in, ok := im.At(pc)
		if !ok {
			t.Fatalf("replica fell off the image at %#x", pc)
		}
		out := isa.Execute(in, pc, ctx)
		switch {
		case out.IsMem && !out.IsStore && !out.Fault:
			h.Access(out.Addr, false, cache.KindDemand, now)
		case out.IsMem && out.IsStore && !out.Fault:
			if !h.StoreRetire(out.Addr, now) {
				stalled, stallAt = true, out.Addr
			}
		}
		h.Tick(now)
		halted = out.Halt
		pc = out.NextPC(pc)
	}
	// Checkpointing quiesces, which drains the leftover write-buffer
	// entries one tick per cycle (stepCycle: now++ then Tick).
	for h.WriteBufLen() > 0 {
		now++
		h.Tick(now)
	}

	if ck.Now != now {
		t.Errorf("checkpoint Now = %d, replica says %d", ck.Now, now)
	}
	if !reflect.DeepEqual(ck.L1D, h.L1D.State()) {
		t.Error("L1D state diverges from the cycle-major replica")
	}
	if !reflect.DeepEqual(ck.L2, h.L2.State()) {
		t.Error("L2 state diverges from the cycle-major replica")
	}
}

// TestFunctionalWarmCompiledVsInterp holds the two warm engines to
// byte-identical checkpoints over random progen programs: the compiled
// engine's warm path (FunctionalWarm) against the decode-dispatch
// reference (FunctionalWarmInterp), with maxInsts cutting some programs
// mid-flight.
func TestFunctionalWarmCompiledVsInterp(t *testing.T) {
	cfg := Config4Wide()
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		im, entry, init := progen.Program(rng)
		for _, maxInsts := range []uint64{137, 1 << 20} {
			mc := mem.New()
			init(mc)
			ckC, err := FunctionalWarm(cfg, im, mc, entry, maxInsts, nil)
			if err != nil {
				t.Fatalf("seed %d max %d: compiled: %v", seed, maxInsts, err)
			}
			mi := mem.New()
			init(mi)
			ckI, err := FunctionalWarmInterp(cfg, im, mi, entry, maxInsts, nil)
			if err != nil {
				t.Fatalf("seed %d max %d: interp: %v", seed, maxInsts, err)
			}
			if !bytes.Equal(ckC.EncodeBinary(), ckI.EncodeBinary()) {
				t.Errorf("seed %d max %d: compiled and interp warm checkpoints differ", seed, maxInsts)
			}
		}
	}
}
