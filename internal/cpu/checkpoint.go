package cpu

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// This file implements warm-state checkpointing: Quiesce drains the
// pipeline to an architecturally clean point, Checkpoint serializes the
// machine state that survives that point, and Restore rebuilds an
// equivalent core from a checkpoint. The harness uses the trio to simulate
// each warm region once and share it across every measurement that only
// differs in measurement-time configuration (see Config.WarmConfig).
//
// What a checkpoint holds (everything live at a quiesced point):
//   - the cycle counter and sequence-number cursor (absolute — nothing is
//     rebased, so time-stamped machine state like LRU clocks, icStallUntil,
//     and the memory-bus cursor stays directly comparable);
//   - the main thread's architectural state: PC, registers, branch/path
//     history, I-cache stall deadline, and every thread context's full
//     return-address stack (helper RAS contents persist across helper
//     reuse — Thread.reset does not clear them);
//   - predictor tables: YAGS, the cascaded indirect predictor, and the
//     fork-confidence table;
//   - the memory hierarchy: L1I/L1D/L2/PVB tag+LRU arrays, the stream
//     prefetcher's stream table, the line-origin attribution map, and the
//     memory-bus cursor;
//   - the prediction correlator (flattened; see slicehw.CorrState);
//   - the memory image, as a copy-on-write page snapshot.
//
// What it deliberately omits:
//   - all stats counters (the harness resets them at the measurement
//     boundary anyway);
//   - in-flight pipeline state — none exists: Quiesce proves the windows,
//     fetch queues, write buffer, in-flight fills, and pending prefetch
//     arrivals empty before Checkpoint will serialize anything.

// Checkpoint is a serializable snapshot of warmed machine state taken at a
// quiesced point. Checkpoints are immutable once taken and safe to restore
// from concurrently.
type Checkpoint struct {
	Now uint64 // cycle counter at the quiesced point
	Seq uint64 // next dynamic-instruction sequence number

	MainHalted bool
	// WarmRetired is the main thread's retired-instruction count when the
	// checkpoint was taken (metadata for observability; Restore ignores it).
	WarmRetired uint64

	// Main-thread architectural and speculative front-end state.
	PC           uint64
	Regs         [isa.NumRegs]uint64
	Hist, Path   uint64
	ICStallUntil uint64
	// ThreadRAS holds every thread context's full return-address stack,
	// index-aligned with the core's contexts (main first).
	ThreadRAS []bpred.RASStackState

	// Predictors, as opaque self-describing sections: the spec identifies
	// the predictor (and must match the restoring config's choice), the
	// blob is its SaveState output. The codec and this struct know nothing
	// about any predictor's layout — a new predictor checkpoints without
	// touching either.
	Dir      PredState
	Indirect PredState
	// Conf is the fork-confidence table; nil when the core had no slice
	// hardware.
	Conf []uint8

	// Memory hierarchy.
	L1D, L1I, L2 cache.CacheState
	PVB          cache.PVBState
	Pref         cache.StreamState
	Hier         cache.HierState

	// Corr is the flattened prediction correlator; nil when the core had no
	// slice hardware (or the checkpoint came from a functional warm, which
	// models no slices).
	Corr *slicehw.CorrState

	// Mem is the copy-on-write memory snapshot.
	Mem *mem.Snapshot
}

// PredState is one predictor's checkpoint section: its canonical spec
// plus its opaque SaveState blob (which carries its own CRC trailer).
type PredState struct {
	Spec string
	Blob []byte
}

func capturePred(p bpred.Predictor) PredState {
	return PredState{Spec: p.Spec(), Blob: p.SaveState()}
}

// restorePred loads one predictor section into the core's constructed
// predictor, refusing a spec mismatch: a checkpoint warmed under one
// predictor must never leak into a run configured for another.
func restorePred(p bpred.Predictor, st PredState, kind string) error {
	if st.Spec != p.Spec() {
		return fmt.Errorf("cpu: restore: checkpoint %s predictor %q does not match configured %q",
			kind, st.Spec, p.Spec())
	}
	if err := p.LoadState(st.Blob); err != nil {
		return fmt.Errorf("cpu: restore: %w", err)
	}
	return nil
}

// quiesceGuard bounds the drain loop; a pipeline that cannot drain within
// this many cycles indicates a livelock bug, not a long-latency miss.
const quiesceGuard = 1 << 20

// Quiesce drains the machine to an architecturally clean point: fetch is
// suppressed while every in-flight instruction retires or squashes, helper
// contexts die and are reaped, the write buffer and prefetch arrivals
// drain, and every in-flight cache fill lands. On return the main thread
// is ready to fetch again (unless it halted) from its architectural PC,
// and the expired in-flight fill tracking has been pruned — a straight
// continuation and a Checkpoint/Restore round trip proceed from identical
// state.
func (c *Core) Quiesce() error {
	c.draining = true
	defer func() { c.draining = false }()
	limit := c.now + quiesceGuard
	for !c.drained() {
		if c.now >= limit {
			return fmt.Errorf("cpu: pipeline failed to drain within %d cycles", uint64(quiesceGuard))
		}
		// Squash recovery re-enables Fetching mid-cycle; force it off every
		// cycle so dead helpers are reaped and the main thread stays put
		// (fetchStage itself is gated by c.draining).
		for _, t := range c.threads {
			t.Fetching = false
		}
		c.stepCycle()
	}
	for _, t := range c.threads {
		t.Fetching = false
	}
	if err := c.hier.PruneFills(c.now); err != nil {
		return err
	}
	for _, p := range c.progs {
		p.main.Fetching = !p.halted
	}
	return nil
}

// drained reports whether nothing is in flight anywhere.
func (c *Core) drained() bool {
	for _, p := range c.progs {
		if p.main.rob.len() != 0 || p.main.fetchq.len() != 0 {
			return false
		}
	}
	for _, t := range c.threads {
		if !t.IsMain && t.Alive {
			return false
		}
	}
	return c.window == 0 && c.helperWindow == 0 && c.hier.Quiesced(c.now)
}

// Checkpoint quiesces the core and captures its state. The core remains
// usable afterwards (its memory turns copy-on-write); continuing to run it
// is exactly equivalent to restoring the checkpoint into a fresh core.
//
// Multi-programmed cores do not checkpoint: co-scheduled runs warm inline
// (the contention during warm-up is part of the scenario, and no two
// co-schedules share a warm prefix anyway).
func (c *Core) Checkpoint() (*Checkpoint, error) {
	if len(c.progs) > 1 {
		return nil, fmt.Errorf("cpu: checkpointing a %d-program core is not supported; multi-programmed runs warm inline", len(c.progs))
	}
	if err := c.Quiesce(); err != nil {
		return nil, err
	}
	p := c.progs[0]
	if p.mainStores.len() != 0 {
		return nil, fmt.Errorf("cpu: %d committed-store records survived the drain", p.mainStores.len())
	}
	ck := &Checkpoint{
		Now:          c.now,
		Seq:          c.seq,
		MainHalted:   p.halted,
		WarmRetired:  c.S.MainRetired,
		PC:           c.main.PC,
		Regs:         c.main.Regs,
		Hist:         c.main.Hist,
		Path:         c.main.Path,
		ICStallUntil: c.main.icStallUntil,
		Dir:          capturePred(c.dir),
		Indirect:     capturePred(c.indirect),
		L1D:          c.hier.L1D.State(),
		L1I:          c.hier.L1I.State(),
		L2:           c.hier.L2.State(),
		PVB:          c.hier.PVB.State(),
		Pref:         c.hier.Pref.State(),
		Hier:         c.hier.State(),
		Mem:          p.mem.Snapshot(),
	}
	for _, t := range c.threads {
		ck.ThreadRAS = append(ck.ThreadRAS, t.RAS.StackState())
	}
	if p.conf != nil {
		ck.Conf = append([]uint8(nil), p.conf.table...)
	}
	if p.corr != nil {
		st, err := p.corr.State()
		if err != nil {
			return nil, err
		}
		ck.Corr = st
	}
	return ck, nil
}

// Restore builds a core equivalent to the one Checkpoint captured, under
// cfg. cfg may differ from the capture configuration only in
// measurement-only fields (see Config.WarmConfig) — structural differences
// surface as geometry errors. sliceTable must be the same table (same
// slices, same order) the captured core ran with; pass nil for a core
// without slice hardware.
func Restore(cfg Config, image *asm.Image, ck *Checkpoint, sliceTable *slicehw.Table) (*Core, error) {
	memory := mem.NewFromSnapshot(ck.Mem)
	// New validates its entry PC; a halted checkpoint's PC may legally sit
	// off-image (fetch past a HALT never resumes), so construct with a
	// known-good entry and install the real PC afterwards.
	progs := image.Programs()
	if len(progs) == 0 {
		return nil, fmt.Errorf("cpu: restore: empty image")
	}
	c, err := New(cfg, image, memory, progs[0].Base, sliceTable)
	if err != nil {
		return nil, err
	}
	if !ck.MainHalted {
		if _, ok := image.At(ck.PC); !ok {
			return nil, fmt.Errorf("cpu: restore: checkpoint PC %#x not in image", ck.PC)
		}
	}

	c.now = ck.Now
	c.seq = ck.Seq
	c.progs[0].halted = ck.MainHalted

	m := c.main
	m.PC = ck.PC
	m.Regs = ck.Regs
	m.Hist, m.Path = ck.Hist, ck.Path
	m.icStallUntil = ck.ICStallUntil
	m.Fetching = !ck.MainHalted

	if len(ck.ThreadRAS) != len(c.threads) {
		return nil, fmt.Errorf("cpu: restore: checkpoint has %d thread contexts, config has %d",
			len(ck.ThreadRAS), len(c.threads))
	}
	for i, t := range c.threads {
		if err := t.RAS.SetStackState(ck.ThreadRAS[i]); err != nil {
			return nil, err
		}
	}

	if err := restorePred(c.dir, ck.Dir, "direction"); err != nil {
		return nil, err
	}
	if err := restorePred(c.indirect, ck.Indirect, "indirect"); err != nil {
		return nil, err
	}
	if ck.Conf != nil {
		conf := c.progs[0].conf
		if conf == nil {
			return nil, fmt.Errorf("cpu: restore: checkpoint has a confidence table but core has no slice hardware")
		}
		if len(ck.Conf) != len(conf.table) {
			return nil, fmt.Errorf("cpu: restore: confidence table has %d entries, core has %d",
				len(ck.Conf), len(conf.table))
		}
		copy(conf.table, ck.Conf)
	}

	if err := c.hier.L1D.SetState(ck.L1D); err != nil {
		return nil, err
	}
	if err := c.hier.L1I.SetState(ck.L1I); err != nil {
		return nil, err
	}
	if err := c.hier.L2.SetState(ck.L2); err != nil {
		return nil, err
	}
	if err := c.hier.PVB.SetState(ck.PVB); err != nil {
		return nil, err
	}
	if err := c.hier.Pref.SetState(ck.Pref); err != nil {
		return nil, err
	}
	c.hier.SetState(ck.Hier)

	if ck.Corr != nil {
		corr := c.progs[0].corr
		if corr == nil {
			return nil, fmt.Errorf("cpu: restore: checkpoint has correlator state but core has no slice hardware")
		}
		if err := corr.SetState(ck.Corr, sliceTable); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// WarmConfig returns the canonical configuration under which cfg's warm
// region is simulated. Two configurations with equal WarmConfig
// fingerprints can share one warm checkpoint.
//
// Measurement-only fields — stripped here because the core reads them
// dynamically through c.Cfg and nothing latches them into warm state:
//   - Name: a display label.
//   - Perfect: consulted per fetched/issued/retired instruction
//     (predictCtrl, loadLatency, retireInst). Warm runs use the realistic
//     machine; perfect modes are limit studies applied to the measured
//     region only.
//
// Everything else is warm-relevant: structural sizes fix the state arrays
// (and are latched at New), latencies and policies shape every cache/
// predictor update during warm, SlicePredictionsOff changes which
// correlator state accumulates, and BPred/IndirectPred select which
// predictor's tables the warm region trains — so they stay in the key
// even where they are read dynamically.
func (c Config) WarmConfig() Config {
	w := c
	w.Name = ""
	w.Perfect = Perfect{}
	return w
}

// WarmFingerprint is the stable fingerprint of WarmConfig — the
// config-dependent part of a warm checkpoint's identity.
func (c Config) WarmFingerprint() string {
	return c.WarmConfig().Fingerprint()
}
