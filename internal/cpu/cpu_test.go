package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// buildImage assembles a single program into an image.
func buildImage(t testing.TB, build func(b *asm.Builder)) (*asm.Image, uint64) {
	t.Helper()
	b := asm.NewBuilder(0x1000)
	build(b)
	p := b.MustBuild()
	im, err := asm.NewImage(p)
	if err != nil {
		t.Fatal(err)
	}
	return im, p.Base
}

// runBoth runs the same program on the out-of-order core and the
// functional reference, returning both final states.
func runBoth(t testing.TB, cfg Config, build func(b *asm.Builder), initMem func(m *mem.Memory)) (*Core, FuncState) {
	t.Helper()
	im, entry := buildImage(t, build)

	m1 := mem.New()
	m2 := mem.New()
	if initMem != nil {
		initMem(m1)
		initMem(m2)
	}

	core := MustNew(cfg, im, m1, entry, nil)
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("core did not reach HALT")
	}

	ref, err := RunFunctional(im, m2, entry, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	return core, ref
}

// checkArchEquivalence compares the core's final speculative state (which
// equals architectural state once drained) against the reference.
func checkArchEquivalence(t *testing.T, core *Core, ref FuncState, memAddrs []uint64, m2vals []uint64) {
	t.Helper()
	for r := 1; r < isa.NumRegs; r++ {
		if core.main.Regs[r] != ref.Regs[r] {
			t.Errorf("r%d = %#x, reference %#x", r, core.main.Regs[r], ref.Regs[r])
		}
	}
	if core.S.MainRetired != ref.Retired {
		t.Errorf("retired %d, reference %d", core.S.MainRetired, ref.Retired)
	}
}

func TestSimpleLoopResult(t *testing.T) {
	// Sum 1..100 into r2.
	core, ref := runBoth(t, Config4Wide(), func(b *asm.Builder) {
		b.I(isa.LDI, 1, 0, 100)
		b.I(isa.LDI, 2, 0, 0)
		b.Label("loop")
		b.R(isa.ADD, 2, 2, 1)
		b.I(isa.ADDI, 1, 1, -1)
		b.B(isa.BGT, 1, "loop")
		b.Halt()
	}, nil)
	if core.main.Regs[2] != 5050 {
		t.Errorf("sum = %d", core.main.Regs[2])
	}
	checkArchEquivalence(t, core, ref, nil, nil)
	if core.S.Cycles == 0 || core.S.IPC() <= 0.1 {
		t.Errorf("suspicious IPC %.2f over %d cycles", core.S.IPC(), core.S.Cycles)
	}
}

func TestStoresVisibleAndForwarded(t *testing.T) {
	const base = 0x20000
	core, ref := runBoth(t, Config4Wide(), func(b *asm.Builder) {
		b.Li(1, base)
		b.I(isa.LDI, 2, 0, 1234)
		b.St(2, 0, 1) // store 1234
		b.Ld(3, 0, 1) // immediately load it back (forwarding)
		b.R(isa.ADD, 4, 3, 3)
		b.St(4, 8, 1)
		b.Ld(5, 8, 1)
		b.Halt()
	}, nil)
	if core.main.Regs[3] != 1234 || core.main.Regs[5] != 2468 {
		t.Errorf("r3=%d r5=%d", core.main.Regs[3], core.main.Regs[5])
	}
	checkArchEquivalence(t, core, ref, nil, nil)
}

func TestCallReturn(t *testing.T) {
	core, ref := runBoth(t, Config4Wide(), func(b *asm.Builder) {
		b.I(isa.LDI, 1, 0, 5)
		b.Call("double")
		b.Call("double")
		b.Halt()
		b.Label("double")
		b.R(isa.ADD, 1, 1, 1)
		b.Ret()
	}, nil)
	if core.main.Regs[1] != 20 {
		t.Errorf("r1 = %d", core.main.Regs[1])
	}
	checkArchEquivalence(t, core, ref, nil, nil)
}

// TestWrongPathRollback forces heavy misprediction with a data-dependent
// branch on pseudo-random values and verifies exact architectural
// equivalence — the undo log must erase every wrong-path register and
// memory write.
func TestWrongPathRollback(t *testing.T) {
	const base = 0x30000
	build := func(b *asm.Builder) {
		b.Li(10, base)
		b.I(isa.LDI, 1, 0, 400) // iterations
		b.I(isa.LDI, 2, 0, 12345)
		b.I(isa.LDI, 7, 0, 0)
		b.Label("loop")
		// xorshift-style scramble: unpredictable branch condition.
		b.I(isa.SLLI, 3, 2, 13)
		b.R(isa.XOR, 2, 2, 3)
		b.I(isa.SRLI, 3, 2, 7)
		b.R(isa.XOR, 2, 2, 3)
		b.I(isa.ANDI, 4, 2, 1)
		b.B(isa.BEQ, 4, "even")
		// odd path: store and accumulate
		b.St(2, 0, 10)
		b.R(isa.ADD, 7, 7, 2)
		b.Br("join")
		b.Label("even")
		b.St(7, 8, 10)
		b.R(isa.SUB, 7, 7, 4)
		b.Label("join")
		b.I(isa.ADDI, 1, 1, -1)
		b.B(isa.BGT, 1, "loop")
		b.Ld(8, 0, 10)
		b.Ld(9, 8, 10)
		b.Halt()
	}
	core, ref := runBoth(t, Config4Wide(), build, nil)
	checkArchEquivalence(t, core, ref, nil, nil)
	if core.S.Mispredicts == 0 {
		t.Error("expected mispredictions on a random branch")
	}
	if core.S.MainWrongPath == 0 {
		t.Error("expected wrong-path fetches")
	}
}

func TestPerfectBranchMode(t *testing.T) {
	build := func(b *asm.Builder) {
		b.I(isa.LDI, 1, 0, 300)
		b.I(isa.LDI, 2, 0, 99991)
		b.Label("loop")
		b.I(isa.SLLI, 3, 2, 13)
		b.R(isa.XOR, 2, 2, 3)
		b.I(isa.SRLI, 3, 2, 7)
		b.R(isa.XOR, 2, 2, 3)
		b.I(isa.ANDI, 4, 2, 1)
		b.B(isa.BEQ, 4, "skip")
		b.Nop()
		b.Label("skip")
		b.I(isa.ADDI, 1, 1, -1)
		b.B(isa.BGT, 1, "loop")
		b.Halt()
	}
	cfgBase := Config4Wide()
	coreBase, _ := runBoth(t, cfgBase, build, nil)

	cfgPerf := Config4Wide()
	cfgPerf.Perfect.AllBranches = true
	corePerf, _ := runBoth(t, cfgPerf, build, nil)

	if corePerf.S.Mispredicts != 0 {
		t.Errorf("perfect mode mispredicted %d times", corePerf.S.Mispredicts)
	}
	if coreBase.S.Mispredicts == 0 {
		t.Fatal("baseline had no mispredictions to remove")
	}
	if corePerf.S.Cycles >= coreBase.S.Cycles {
		t.Errorf("perfect branches not faster: %d vs %d cycles", corePerf.S.Cycles, coreBase.S.Cycles)
	}
}

// pointerChaseBuild creates a linked-list walk whose nodes are scattered
// over a region far larger than the L1.
func pointerChaseBuild(nodes int, seed int64) (func(b *asm.Builder), func(m *mem.Memory), uint64) {
	const heapBase = 0x100000
	const stride = 4096 + 64 // defeat the stream prefetcher
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(nodes)
	build := func(b *asm.Builder) {
		b.Li(1, int64(heapBase+uint64(order[0])*stride))
		b.I(isa.LDI, 2, 0, 0)
		b.Label("walk")
		b.Ld(3, 8, 1) // payload
		b.R(isa.ADD, 2, 2, 3)
		b.Ld(1, 0, 1) // next pointer
		b.B(isa.BNE, 1, "walk")
		b.Halt()
	}
	initMem := func(m *mem.Memory) {
		for i := 0; i < nodes; i++ {
			addr := heapBase + uint64(order[i])*stride
			var next uint64
			if i+1 < nodes {
				next = heapBase + uint64(order[i+1])*stride
			}
			m.WriteU64(addr, next)
			m.WriteU64(addr+8, uint64(i))
		}
	}
	return build, initMem, heapBase
}

func TestPerfectLoadMode(t *testing.T) {
	build, initMem, _ := pointerChaseBuild(600, 7)

	coreBase, refBase := runBoth(t, Config4Wide(), build, initMem)
	checkArchEquivalence(t, coreBase, refBase, nil, nil)
	if coreBase.S.LoadMisses == 0 {
		t.Fatal("pointer chase produced no misses")
	}

	cfg := Config4Wide()
	cfg.Perfect.AllLoads = true
	corePerf, _ := runBoth(t, cfg, build, initMem)
	if corePerf.S.LoadMisses != 0 {
		t.Errorf("perfect loads missed %d times", corePerf.S.LoadMisses)
	}
	if corePerf.S.Cycles >= coreBase.S.Cycles/2 {
		t.Errorf("perfect loads should be >2x faster: %d vs %d", corePerf.S.Cycles, coreBase.S.Cycles)
	}
}

func TestPerStaticPCPerfection(t *testing.T) {
	// Perfecting only the problem load's PC must remove its misses.
	build, initMem, _ := pointerChaseBuild(400, 9)
	im, entry := buildImage(t, build)
	m := mem.New()
	initMem(m)
	cfg := Config4Wide()
	// The pointer load ("next") is the 2nd load in the walk body. Find
	// both load PCs and perfect them.
	cfg.Perfect.LoadPCs = map[uint64]bool{}
	for pc := entry; ; pc += isa.InstBytes {
		in, ok := im.At(pc)
		if !ok {
			break
		}
		if in.IsLoad() {
			cfg.Perfect.LoadPCs[pc] = true
		}
	}
	core := MustNew(cfg, im, m, entry, nil)
	core.Run(1 << 40)
	if core.S.LoadMisses != 0 {
		t.Errorf("per-PC perfect loads missed %d times", core.S.LoadMisses)
	}
}

func TestIndirectJumpPrediction(t *testing.T) {
	// A two-way computed jump driven by a random bit: the cascaded
	// predictor should do poorly; prediction through a pattern should
	// do well once trained. Here we just verify correctness + counting.
	core, ref := runBoth(t, Config4Wide(), func(b *asm.Builder) {
		b.I(isa.LDI, 1, 0, 200)
		b.I(isa.LDI, 2, 0, 777)
		b.Label("loop")
		b.I(isa.SLLI, 3, 2, 13)
		b.R(isa.XOR, 2, 2, 3)
		b.I(isa.SRLI, 3, 2, 7)
		b.R(isa.XOR, 2, 2, 3)
		b.I(isa.ANDI, 4, 2, 1)
		// target = (bit ? caseB : caseA), computed arithmetically.
		b.Li(5, 0)
		b.Li(6, 0)
		// Patch below once labels exist — use cmov on addresses.
		b.B(isa.BEQ, 4, "caseA")
		b.Label("caseB")
		b.I(isa.ADDI, 7, 7, 2)
		b.Br("join")
		b.Label("caseA")
		b.I(isa.ADDI, 7, 7, 1)
		b.Label("join")
		b.I(isa.ADDI, 1, 1, -1)
		b.B(isa.BGT, 1, "loop")
		b.Halt()
	}, nil)
	checkArchEquivalence(t, core, ref, nil, nil)
}

func TestReturnAddressStackUse(t *testing.T) {
	// Nested calls: RAS must keep RET mispredictions at zero.
	core, _ := runBoth(t, Config4Wide(), func(b *asm.Builder) {
		b.I(isa.LDI, 1, 0, 50)
		b.Label("loop")
		b.Call("f1")
		b.I(isa.ADDI, 1, 1, -1)
		b.B(isa.BGT, 1, "loop")
		b.Halt()
		b.Label("f1")
		b.Mov(20, isa.RA)
		b.Call("f2")
		b.Mov(isa.RA, 20)
		b.Ret()
		b.Label("f2")
		b.I(isa.ADDI, 9, 9, 1)
		b.Ret()
	}, nil)
	if core.main.Regs[9] != 50 {
		t.Errorf("f2 ran %d times", core.main.Regs[9])
	}
}

func TestHaltDrains(t *testing.T) {
	core, _ := runBoth(t, Config4Wide(), func(b *asm.Builder) {
		b.Nop()
		b.Halt()
	}, nil)
	if !core.Done() {
		t.Error("not done after halt")
	}
	if core.S.MainRetired != 2 {
		t.Errorf("retired %d", core.S.MainRetired)
	}
}

func TestRunHonoursRetireBudget(t *testing.T) {
	im, entry := buildImage(t, func(b *asm.Builder) {
		b.Label("spin")
		b.I(isa.ADDI, 1, 1, 1)
		b.Br("spin")
	})
	core := MustNew(Config4Wide(), im, mem.New(), entry, nil)
	core.Run(10000)
	if core.S.MainRetired < 10000 || core.S.MainRetired > 10100 {
		t.Errorf("retired %d, want ≈10000", core.S.MainRetired)
	}
}

func TestResetStatsKeepsState(t *testing.T) {
	im, entry := buildImage(t, func(b *asm.Builder) {
		b.Label("spin")
		b.I(isa.ADDI, 1, 1, 1)
		b.Br("spin")
	})
	core := MustNew(Config4Wide(), im, mem.New(), entry, nil)
	core.Run(5000)
	r1 := core.main.Regs[1]
	core.ResetStats()
	if core.S.MainRetired != 0 {
		t.Error("stats not reset")
	}
	core.Run(5000)
	if core.main.Regs[1] <= r1 {
		t.Error("machine state lost across reset")
	}
}

func TestEightWideFasterThanFourWide(t *testing.T) {
	// An ILP-rich kernel must benefit from the wider machine.
	build := func(b *asm.Builder) {
		b.I(isa.LDI, 1, 0, 2000)
		b.Label("loop")
		for r := isa.Reg(2); r < 10; r++ {
			b.I(isa.ADDI, r, r, 3)
		}
		b.I(isa.ADDI, 1, 1, -1)
		b.B(isa.BGT, 1, "loop")
		b.Halt()
	}
	core4, _ := runBoth(t, Config4Wide(), build, nil)
	core8, _ := runBoth(t, Config8Wide(), build, nil)
	if core8.S.Cycles >= core4.S.Cycles {
		t.Errorf("8-wide (%d cycles) not faster than 4-wide (%d)", core8.S.Cycles, core4.S.Cycles)
	}
	if ipc := core4.S.IPC(); ipc > 4.01 {
		t.Errorf("4-wide IPC %f exceeds width", ipc)
	}
}

func TestIPCBoundedByWidth(t *testing.T) {
	build := func(b *asm.Builder) {
		b.I(isa.LDI, 1, 0, 3000)
		b.Label("loop")
		b.Nop()
		b.Nop()
		b.Nop()
		b.I(isa.ADDI, 1, 1, -1)
		b.B(isa.BGT, 1, "loop")
		b.Halt()
	}
	core, _ := runBoth(t, Config4Wide(), build, nil)
	if core.S.IPC() > 4.01 {
		t.Errorf("IPC %f exceeds the machine width", core.S.IPC())
	}
	if core.S.IPC() < 2.0 {
		t.Errorf("IPC %f too low for a trivial loop", core.S.IPC())
	}
}

// TestMispredictPenaltyIsFourteenish measures the penalty directly: a
// fully-biased loop vs one with a random branch per iteration.
func TestMispredictPenaltyIsFourteenish(t *testing.T) {
	buildRand := func(b *asm.Builder) {
		b.I(isa.LDI, 1, 0, 2000)
		b.I(isa.LDI, 2, 0, 55555)
		b.Label("loop")
		b.I(isa.SLLI, 3, 2, 13)
		b.R(isa.XOR, 2, 2, 3)
		b.I(isa.SRLI, 3, 2, 7)
		b.R(isa.XOR, 2, 2, 3)
		b.I(isa.ANDI, 4, 2, 1)
		b.B(isa.BEQ, 4, "skip")
		b.Nop()
		b.Label("skip")
		b.I(isa.ADDI, 1, 1, -1)
		b.B(isa.BGT, 1, "loop")
		b.Halt()
	}
	cfg := Config4Wide()
	coreR, _ := runBoth(t, cfg, buildRand, nil)
	cfgP := Config4Wide()
	cfgP.Perfect.AllBranches = true
	coreP, _ := runBoth(t, cfgP, buildRand, nil)

	extra := float64(coreR.S.Cycles-coreP.S.Cycles) / float64(coreR.S.Mispredicts)
	if extra < 8 || extra > 25 {
		t.Errorf("per-misprediction penalty ≈ %.1f cycles, want ≈14", extra)
	}
}
