package cpu

// committedRead reconstructs the architecturally committed bytes at
// [addr, addr+size) of one program by peeling its in-flight (unretired)
// main-thread stores off the speculative memory image, using their undo
// records. The records are applied youngest-first so the final value is
// the one from before the *oldest* in-flight store — i.e., the retired
// state.
func (p *progState) committedRead(addr uint64, size int) (uint64, bool) {
	v, ok := p.mem.Read(addr, size)
	for i := p.mainStores.len() - 1; i >= 0; i-- {
		s := p.mainStores.at(i)
		if s.Retired || s.Squashed || !s.undoMemValid {
			continue
		}
		sa, sn := s.undoMemAddr, s.undoMemSize
		if sa == addr && sn == size {
			v = s.undoMemVal
			continue
		}
		if !overlaps(sa, sn, addr, size) {
			continue
		}
		// Partial overlap: splice the undo bytes in.
		for b := 0; b < size; b++ {
			ba := addr + uint64(b)
			if ba >= sa && ba < sa+uint64(sn) {
				old := byte(s.undoMemVal >> (8 * (ba - sa)))
				v = v&^(uint64(0xFF)<<(8*b)) | uint64(old)<<(8*b)
			}
		}
	}
	return v, ok
}

// noteMainStore registers a fetched main-thread store for committedRead.
// The queue holds exactly the live noted stores: main-thread retirement is
// in order, so a retiring store is always the front; squashes tear down
// youngest-first, so a squashed store is always the back. The identity
// checks below keep a broken invariant from silently corrupting
// committedRead with a recycled instruction — the snapshot-determinism
// test would surface it.
func (p *progState) noteMainStore(di *DynInst) {
	p.mainStores.pushBack(di)
}

// dropRetiredStore pops the oldest noted store at its retirement.
func (p *progState) dropRetiredStore(di *DynInst) {
	if p.mainStores.len() > 0 && p.mainStores.front() == di {
		p.mainStores.popFront()
	}
}

// dropSquashedStore pops the youngest noted store at its squash.
func (p *progState) dropSquashedStore(di *DynInst) {
	if p.mainStores.len() > 0 && p.mainStores.back() == di {
		p.mainStores.popBack()
	}
}
