package cpu

// committedRead reconstructs the architecturally committed bytes at
// [addr, addr+size) by peeling the in-flight (unretired) main-thread
// stores off the speculative memory image, using their undo records. The
// records are applied youngest-first so the final value is the one from
// before the *oldest* in-flight store — i.e., the retired state.
func (c *Core) committedRead(addr uint64, size int) (uint64, bool) {
	v, ok := c.mem.Read(addr, size)
	for i := c.mainStores.len() - 1; i >= 0; i-- {
		s := c.mainStores.at(i)
		if s.Retired || s.Squashed || !s.undoMemValid {
			continue
		}
		sa, sn := s.undoMemAddr, s.undoMemSize
		if sa == addr && sn == size {
			v = s.undoMemVal
			continue
		}
		if !overlaps(sa, sn, addr, size) {
			continue
		}
		// Partial overlap: splice the undo bytes in.
		for b := 0; b < size; b++ {
			ba := addr + uint64(b)
			if ba >= sa && ba < sa+uint64(sn) {
				old := byte(s.undoMemVal >> (8 * (ba - sa)))
				v = v&^(uint64(0xFF)<<(8*b)) | uint64(old)<<(8*b)
			}
		}
	}
	return v, ok
}

// noteMainStore registers a fetched main-thread store for committedRead.
// The queue holds exactly the live noted stores: main-thread retirement is
// in order, so a retiring store is always the front; squashes tear down
// youngest-first, so a squashed store is always the back. The identity
// checks below keep a broken invariant from silently corrupting
// committedRead with a recycled instruction — the snapshot-determinism
// test would surface it.
func (c *Core) noteMainStore(di *DynInst) {
	c.mainStores.pushBack(di)
}

// dropRetiredStore pops the oldest noted store at its retirement.
func (c *Core) dropRetiredStore(di *DynInst) {
	if c.mainStores.len() > 0 && c.mainStores.front() == di {
		c.mainStores.popFront()
	}
}

// dropSquashedStore pops the youngest noted store at its squash.
func (c *Core) dropSquashedStore(di *DynInst) {
	if c.mainStores.len() > 0 && c.mainStores.back() == di {
		c.mainStores.popBack()
	}
}
