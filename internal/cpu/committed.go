package cpu

// committedRead reconstructs the architecturally committed bytes at
// [addr, addr+size) by peeling the in-flight (unretired) main-thread
// stores off the speculative memory image, using their undo records. The
// records are applied youngest-first so the final value is the one from
// before the *oldest* in-flight store — i.e., the retired state.
func (c *Core) committedRead(addr uint64, size int) (uint64, bool) {
	v, ok := c.mem.Read(addr, size)
	for i := len(c.mainStores) - 1; i >= 0; i-- {
		s := c.mainStores[i]
		if s.Retired || s.Squashed || !s.undoMemValid {
			continue
		}
		sa, sn := s.undoMemAddr, s.undoMemSize
		if sa == addr && sn == size {
			v = s.undoMemVal
			continue
		}
		if !overlaps(sa, sn, addr, size) {
			continue
		}
		// Partial overlap: splice the undo bytes in.
		for b := 0; b < size; b++ {
			ba := addr + uint64(b)
			if ba >= sa && ba < sa+uint64(sn) {
				old := byte(s.undoMemVal >> (8 * (ba - sa)))
				v = v&^(uint64(0xFF)<<(8*b)) | uint64(old)<<(8*b)
			}
		}
	}
	return v, ok
}

// noteMainStore registers a fetched main-thread store for committedRead,
// compacting the list when retired/squashed entries accumulate.
func (c *Core) noteMainStore(di *DynInst) {
	if len(c.mainStores) > 192 {
		kept := c.mainStores[:0]
		for _, s := range c.mainStores {
			if !s.Retired && !s.Squashed {
				kept = append(kept, s)
			}
		}
		c.mainStores = kept
	}
	c.mainStores = append(c.mainStores, di)
}
