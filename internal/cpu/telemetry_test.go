package cpu

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/slicehw"
	"repro/internal/stats"
)

// TestResetStatsZeroesEverySnapshotCounter is the registry's contract:
// after ResetStats, every numeric counter of every registered component
// reads zero through Snapshot. Because the registry walks components by
// reflection, a counter added to any component is covered automatically —
// there is no hand-maintained reset list left to forget.
func TestResetStatsZeroesEverySnapshotCounter(t *testing.T) {
	w := buildMini(t, 100000) // enough outer iterations to outlast both Run calls
	m := mem.New()
	w.initMem(m)
	core := MustNew(Config4Wide(), w.image, m, w.entry, slicehw.MustTable(w.slices))
	core.Run(40000)

	before := core.Snapshot()
	if before.Sim.MainRetired == 0 || before.L1D.Accesses == 0 ||
		before.Bpred.YAGS.Lookups == 0 || before.Corr.Generated == 0 {
		t.Fatalf("warm-up left key counters zero: %+v", before)
	}

	core.ResetStats()
	after := core.Snapshot()
	stats.ForEachCounter(&after, func(path string, v reflect.Value) {
		if !v.IsZero() {
			t.Errorf("counter %s survived ResetStats: %v", path, v.Interface())
		}
	})
	if len(after.Sim.Static) != 0 {
		t.Errorf("per-PC stats survived ResetStats: %d entries", len(after.Sim.Static))
	}

	// Reset clears telemetry only; the machine keeps running.
	core.Run(40000)
	if s := core.Snapshot(); s.Sim.MainRetired == 0 {
		t.Error("core stopped retiring after ResetStats")
	}
}

// TestComponentsCoverSnapshot ensures every Snapshot field is backed by a
// registered live component, so Snapshot() can never silently return a
// stale zero struct for one subsystem.
func TestComponentsCoverSnapshot(t *testing.T) {
	w := buildMini(t, 50)
	m := mem.New()
	w.initMem(m)
	core := MustNew(Config4Wide(), w.image, m, w.entry, slicehw.MustTable(w.slices))

	covered := map[string]bool{}
	for _, c := range core.Components() {
		root, _, _ := strings.Cut(c.Field, ".")
		covered[root] = true
	}
	st := reflect.TypeOf(stats.Snapshot{})
	for i := 0; i < st.NumField(); i++ {
		if st.Field(i).Name == "Progs" {
			// Filled directly by Core.Snapshot from the per-program Sim
			// structs on multi-programmed cores; nil otherwise.
			continue
		}
		if !covered[st.Field(i).Name] {
			t.Errorf("Snapshot field %s has no registered component", st.Field(i).Name)
		}
	}
}

// TestTracerReceivesSliceEvents drives the mini slice workload with a
// collecting tracer and checks the event stream covers the prediction
// lifecycle, with correlator events carrying the core's cycle stamp.
func TestTracerReceivesSliceEvents(t *testing.T) {
	w := buildMini(t, 200)
	m := mem.New()
	w.initMem(m)
	core := MustNew(Config4Wide(), w.image, m, w.entry, slicehw.MustTable(w.slices))

	byKind := map[stats.EventKind][]stats.Event{}
	core.SetTracer(stats.FuncTracer(func(e stats.Event) {
		byKind[e.Kind] = append(byKind[e.Kind], e)
	}))
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("did not halt")
	}

	for _, kind := range []stats.EventKind{
		stats.EvFork, stats.EvInstance, stats.EvPredAlloc,
		stats.EvPredGenerate, stats.EvPredBind, stats.EvPredKill,
	} {
		if len(byKind[kind]) == 0 {
			t.Errorf("no %q events traced", kind)
		}
	}

	snap := core.Snapshot()
	if got, want := uint64(len(byKind[stats.EvPredGenerate])), snap.Corr.Filled; got != want {
		t.Errorf("%d pred-generate events vs Corr.Filled=%d", got, want)
	}
	if got, want := uint64(len(byKind[stats.EvOverride])), snap.Corr.Overrides; got != want {
		t.Errorf("%d override events vs Corr.Overrides=%d", got, want)
	}

	// Correlator events are stamped with the core clock by the tracer
	// wrapper; cycles must be nonzero and non-decreasing is too strong
	// (events of one cycle interleave), so check they stay in range.
	last := core.Now()
	for _, e := range byKind[stats.EvPredGenerate] {
		if e.Cycle == 0 || e.Cycle > last {
			t.Fatalf("pred-generate event with bad cycle stamp %d (core at %d)", e.Cycle, last)
		}
	}
}
