package cpu

// Completion calendar. Instructions are filed under their completion cycle
// at issue, so completeStage visits only the entries due now instead of
// re-scanning every ROB entry of every thread each cycle (the scan was
// ~O(window) per cycle and the single largest flat cost of the loop after
// PR 3).
//
// The ring has calBuckets slots indexed by CompleteCycle&calMask. A
// completion farther than calBuckets cycles out wraps onto an earlier
// visit; the pop re-files it (same bucket index) until its cycle actually
// arrives. Latencies are almost always far below the ring size, so
// re-files are rare.
//
// Entries are never removed at squash; instead each entry snapshots the
// instruction's Seq at filing time and the pop validates it. Seqs are
// globally unique and never reused, so a mismatch means the pooled DynInst
// was recycled into a different dynamic instruction; a match with Squashed
// set means it was squashed and still sits in the pool. Either way the
// entry is dead and dropped.

const (
	calBuckets = 2048 // power of two
	calMask    = calBuckets - 1
)

type calEntry struct {
	di  *DynInst
	seq uint64
}

// calFile files an instruction for completion; call after CompleteCycle is
// set at issue. Completion times are always in the future (every latency
// is >= 1), so the bucket cannot be the one completeStage is draining.
func (c *Core) calFile(di *DynInst) {
	b := di.CompleteCycle & calMask
	c.cal[b] = append(c.cal[b], calEntry{di, di.Seq})
}

// calDrain pops the bucket due this cycle into the seq-ordered done list,
// keeping wrapped far-future entries in place.
func (c *Core) calDrain(done []*DynInst) []*DynInst {
	b := c.now & calMask
	entries := c.cal[b]
	if len(entries) == 0 {
		return done
	}
	kept := 0
	for _, e := range entries {
		di := e.di
		if di.Seq != e.seq || di.Squashed || di.Completed {
			continue // recycled or squashed since filing
		}
		if di.CompleteCycle > c.now {
			entries[kept] = e // ring wrap: not due for another k*calBuckets
			kept++
			continue
		}
		done = insertBySeq(done, di)
	}
	for i := kept; i < len(entries); i++ {
		entries[i] = calEntry{}
	}
	c.cal[b] = entries[:kept]
	return done
}
