package cpu

// confidence implements a JRS-style resetting-counter confidence estimator
// (Jacobsen, Rotenberg & Smith, MICRO-29 — the paper's reference [8]) used
// to gate slice forks (§6.3): a fork is profitable only when one of the
// problem instructions its slice covers is *unlikely* to behave well. Each
// static PC has a small saturating counter that increments on well-behaved
// executions (correct prediction, cache hit) and resets on a PDE; a PC is
// "confident" once its counter reaches the threshold.
type confidence struct {
	table     []uint8
	mask      uint64
	threshold uint8
	max       uint8
}

func newConfidence(entries int, threshold uint8) *confidence {
	return &confidence{
		table:     make([]uint8, entries),
		mask:      uint64(entries - 1),
		threshold: threshold,
		max:       15,
	}
}

func (c *confidence) idx(pc uint64) uint64 { return (pc >> 2) & c.mask }

// observe records one retired execution of pc: pde marks a misprediction
// or cache miss.
func (c *confidence) observe(pc uint64, pde bool) {
	i := c.idx(pc)
	if pde {
		c.table[i] = 0
	} else if c.table[i] < c.max {
		c.table[i]++
	}
}

// confident reports whether pc has been behaving well.
func (c *confidence) confident(pc uint64) bool {
	return c.table[c.idx(pc)] >= c.threshold
}

// sliceWorthForking reports whether any instruction covered by s is
// currently low-confidence — i.e., whether pre-executing it can pay. Each
// program gates against its own confidence table.
func (p *progState) sliceWorthForking(s *sliceRef) bool {
	for _, pc := range s.coveredBranches {
		if !p.conf.confident(pc) {
			return true
		}
	}
	for _, pc := range s.coveredLoads {
		if !p.conf.confident(pc) {
			return true
		}
	}
	// A slice covering nothing trackable always forks.
	return len(s.coveredBranches)+len(s.coveredLoads) == 0
}

// sliceRef caches a slice's covered PC lists for the gate's hot path.
type sliceRef struct {
	coveredBranches []uint64
	coveredLoads    []uint64
}
