package cpu

import "testing"

func TestFingerprintStability(t *testing.T) {
	a, b := Config4Wide(), Config4Wide()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs fingerprint differently")
	}
	// Insertion order of the Perfect PC sets must not matter.
	a.Perfect = Perfect{BranchPCs: map[uint64]bool{}, LoadPCs: map[uint64]bool{}}
	b.Perfect = Perfect{BranchPCs: map[uint64]bool{}, LoadPCs: map[uint64]bool{}}
	pcs := []uint64{0x1000, 0x2040, 0x10, 0x99f8, 0x4}
	for _, pc := range pcs {
		a.Perfect.BranchPCs[pc] = true
		a.Perfect.LoadPCs[pc+8] = true
	}
	for i := len(pcs) - 1; i >= 0; i-- {
		b.Perfect.BranchPCs[pcs[i]] = true
		b.Perfect.LoadPCs[pcs[i]+8] = true
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("perfect-set insertion order leaked into the fingerprint")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := Config4Wide().Fingerprint()
	mutations := map[string]func(*Config){
		"width":       func(c *Config) { c.FetchWidth = 8 },
		"window":      func(c *Config) { c.WindowSize = 256 },
		"predsOff":    func(c *Config) { c.SlicePredictionsOff = true },
		"confGate":    func(c *Config) { c.ConfidenceGatedForks = true },
		"dedicated":   func(c *Config) { c.DedicatedSliceResources = true },
		"queueDepth":  func(c *Config) { c.PredQueueDepth = 8 },
		"contexts":    func(c *Config) { c.ThreadContexts = 6 },
		"memLatency":  func(c *Config) { c.Mem.LatMem = 200 },
		"allBranches": func(c *Config) { c.Perfect.AllBranches = true },
		"branchPCs":   func(c *Config) { c.Perfect.BranchPCs = map[uint64]bool{0x1234: true} },
		"loadPCs":     func(c *Config) { c.Perfect.LoadPCs = map[uint64]bool{0x1234: true} },
	}
	for name, mutate := range mutations {
		c := Config4Wide()
		mutate(&c)
		if c.Fingerprint() == base {
			t.Errorf("%s: mutation not reflected in fingerprint", name)
		}
	}
	if Config4Wide().Fingerprint() == Config8Wide().Fingerprint() {
		t.Error("4-wide and 8-wide fingerprint identically")
	}
}
