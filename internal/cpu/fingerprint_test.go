package cpu

import "testing"

func TestFingerprintStability(t *testing.T) {
	a, b := Config4Wide(), Config4Wide()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs fingerprint differently")
	}
	// Insertion order of the Perfect PC sets must not matter.
	a.Perfect = Perfect{BranchPCs: map[uint64]bool{}, LoadPCs: map[uint64]bool{}}
	b.Perfect = Perfect{BranchPCs: map[uint64]bool{}, LoadPCs: map[uint64]bool{}}
	pcs := []uint64{0x1000, 0x2040, 0x10, 0x99f8, 0x4}
	for _, pc := range pcs {
		a.Perfect.BranchPCs[pc] = true
		a.Perfect.LoadPCs[pc+8] = true
	}
	for i := len(pcs) - 1; i >= 0; i-- {
		b.Perfect.BranchPCs[pcs[i]] = true
		b.Perfect.LoadPCs[pcs[i]+8] = true
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("perfect-set insertion order leaked into the fingerprint")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := Config4Wide().Fingerprint()
	mutations := map[string]func(*Config){
		"width":       func(c *Config) { c.FetchWidth = 8 },
		"window":      func(c *Config) { c.WindowSize = 256 },
		"predsOff":    func(c *Config) { c.SlicePredictionsOff = true },
		"confGate":    func(c *Config) { c.ConfidenceGatedForks = true },
		"dedicated":   func(c *Config) { c.DedicatedSliceResources = true },
		"queueDepth":  func(c *Config) { c.PredQueueDepth = 8 },
		"contexts":    func(c *Config) { c.ThreadContexts = 6 },
		"memLatency":  func(c *Config) { c.Mem.LatMem = 200 },
		"allBranches": func(c *Config) { c.Perfect.AllBranches = true },
		"branchPCs":   func(c *Config) { c.Perfect.BranchPCs = map[uint64]bool{0x1234: true} },
		"loadPCs":     func(c *Config) { c.Perfect.LoadPCs = map[uint64]bool{0x1234: true} },
		"bpred":       func(c *Config) { c.BPred = "value" },
		"bpredParams": func(c *Config) { c.BPred = "yags:4096,1024,6,12" },
		"ipred":       func(c *Config) { c.IndirectPred = "cascaded:128,256,8,10" },
	}
	for name, mutate := range mutations {
		c := Config4Wide()
		mutate(&c)
		if c.Fingerprint() == base {
			t.Errorf("%s: mutation not reflected in fingerprint", name)
		}
	}
	if Config4Wide().Fingerprint() == Config8Wide().Fingerprint() {
		t.Error("4-wide and 8-wide fingerprint identically")
	}
}

// TestFingerprintPredictorNormalization: leaving the predictor spec empty
// and spelling out the default name are the same configuration and must
// share memo entries and warm checkpoints.
func TestFingerprintPredictorNormalization(t *testing.T) {
	a, b := Config4Wide(), Config4Wide()
	b.BPred, b.IndirectPred = "yags", "cascaded"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("empty predictor spec fingerprints differently than the default name")
	}
	if a.WarmFingerprint() != b.WarmFingerprint() {
		t.Error("empty predictor spec warm-fingerprints differently than the default name")
	}
	// The predictor choice is warm-relevant: different predictors must
	// never share a warm checkpoint.
	c := Config4Wide()
	c.BPred = "value"
	if c.WarmFingerprint() == a.WarmFingerprint() {
		t.Error("predictor choice missing from the warm fingerprint")
	}
}
