package cpu

// DynInst pooling: the per-core free list, the scrub-on-allocate contract,
// and the release hooks called at retire and squash. The invariant that
// makes recycling safe is that *every* pointer into an instruction is
// severed before it reaches the pool:
//
//   - scheduler subscriptions (deps, olderStores, waiters, the ready
//     list) are drained at wakeup or deregistered at squash;
//   - the register-writer chain (lastWriter / prevWriter) is unlinked at
//     retire, and restored through undo() at squash;
//   - the correlator's Consumer handle is cleared at retire
//     (DropConsumer) or squash (UndoUse);
//   - the committed-store queue pops the instruction the moment it
//     retires or squashes;
//   - forked helper threads drop their ForkInst back-reference.
//
// Scrubbing happens at *allocation*, not release: same-cycle consumers
// (the pendingStores compaction after a squash, the completion list's
// Squashed check) may still read a released instruction's flags, and those
// reads stay valid until the slot is reused by a later fetch — which is
// always in a later pipeline stage of the same cycle or a later cycle.
// DESIGN.md ("Zero-allocation cycle loop") documents the full contract;
// the snapshot-determinism test is the guard that a stale field can never
// change simulated outcomes.

// allocInst returns a scrubbed instruction, recycling the free list.
func (c *Core) allocInst() *DynInst {
	if n := len(c.pool); n > 0 {
		d := c.pool[n-1]
		c.pool[n-1] = nil
		c.pool = c.pool[:n-1]
		d.scrub()
		return d
	}
	return &DynInst{}
}

// scrub resets a recycled instruction to its zero state while keeping the
// KillRecs/Forked/waiters/olderStores backing arrays for reuse. The full
// capacity of each slice is nil'd so the pool does not pin correlator
// records or threads beyond the instruction's lifetime.
func (d *DynInst) scrub() {
	kr := d.KillRecs[:cap(d.KillRecs)]
	for i := range kr {
		kr[i] = nil
	}
	fk := d.Forked[:cap(d.Forked)]
	for i := range fk {
		fk[i] = nil
	}
	wt := d.waiters[:cap(d.waiters)]
	for i := range wt {
		wt[i] = nil
	}
	os := d.olderStores[:cap(d.olderStores)]
	for i := range os {
		os[i] = nil
	}
	*d = DynInst{KillRecs: kr[:0], Forked: fk[:0], waiters: wt[:0], olderStores: os[:0]}
}

// releaseRetired returns a retired instruction to the pool, first severing
// the pointers that could otherwise resurrect it.
func (c *Core) releaseRetired(d *DynInst) {
	t := d.Thread
	if dest, ok := d.Static.Dest(); ok {
		if t.lastWriter[dest] == d {
			// A retired writer is Completed, which fetch's dependence scan
			// treats exactly like "no in-flight producer".
			t.lastWriter[dest] = nil
		} else {
			// A younger in-flight writer checkpointed this instruction as
			// its prevWriter; restoring a Completed writer on its squash
			// would be equivalent to nil, so unlink it.
			for w := t.lastWriter[dest]; w != nil; w = w.prevWriter {
				if w.prevWriter == d {
					w.prevWriter = nil
					break
				}
			}
		}
	}
	if c.corr != nil && d.UsedPred != nil {
		c.corr.DropConsumer(d.UsedPred, d)
	}
	c.dropForkRefs(d)
	c.pool = append(c.pool, d)
}

// releaseSquashed returns a squashed instruction to the pool. Scheduler
// deregistration already happened in squashInst, undo() restored the
// writer chain, and UndoUse cleared any correlator consumer handle.
func (c *Core) releaseSquashed(d *DynInst) {
	c.dropForkRefs(d)
	c.pool = append(c.pool, d)
}

// dropForkRefs clears the back-reference a forked helper context keeps to
// its fork point. The identity check matters: a drained context may have
// been re-forked by a different instruction while this one was in flight.
func (c *Core) dropForkRefs(d *DynInst) {
	for _, h := range d.Forked {
		if h.ForkInst == d {
			h.ForkInst = nil
		}
	}
}
