package cpu

import (
	"repro/internal/cache"
	"repro/internal/slicehw"
)

// DynInst pooling: the per-core free list, the scrub-on-allocate contract,
// and the release hooks called at retire and squash. The invariant that
// makes recycling safe is that *every* pointer into an instruction is
// severed before it reaches the pool:
//
//   - scheduler subscriptions (deps, olderStores, waiters, the ready
//     list) are drained at wakeup or deregistered at squash;
//   - the register-writer chain (lastWriter / prevWriter) is unlinked at
//     retire, and restored through undo() at squash;
//   - the correlator's Consumer handle is cleared at retire
//     (DropConsumer) or squash (UndoUse);
//   - the committed-store queue pops the instruction the moment it
//     retires or squashes;
//   - forked helper threads drop their ForkInst back-reference.
//
// Scrubbing happens at *allocation*, not release: same-cycle consumers
// (the pendingStores compaction after a squash, the completion list's
// Squashed check) may still read a released instruction's flags, and those
// reads stay valid until the slot is reused by a later fetch — which is
// always in a later pipeline stage of the same cycle or a later cycle.
// DESIGN.md ("Zero-allocation cycle loop") documents the full contract;
// the snapshot-determinism test is the guard that a stale field can never
// change simulated outcomes.

// allocInst returns a scrubbed instruction, recycling the free list.
func (c *Core) allocInst() *DynInst {
	if n := len(c.pool); n > 0 {
		d := c.pool[n-1]
		c.pool[n-1] = nil
		c.pool = c.pool[:n-1]
		d.scrub()
		return d
	}
	return &DynInst{}
}

// scrub resets a recycled instruction while keeping the
// KillRecs/Forked/waiters/olderStores backing arrays for reuse. The full
// capacity of each slice is nil'd so the pool does not pin correlator
// records or threads beyond the instruction's lifetime.
//
// Resetting is selective: a full-struct copy (`*d = DynInst{...}`) was the
// hottest single line of the cycle loop, and most fields don't need it.
// Fields fetchOne assigns unconditionally before anything can read them —
// Thread, Static, PC, Seq, FetchCycle, Out, HistAfter, PathAfter,
// RASAfter, LoopAfter — keep their stale values through allocation. The
// cycle timestamps (DispatchCycle, IssueCycle, CompleteCycle) and the
// undo-log payloads (undoReg*, undoMem* other than the valid bits) are
// read only behind flags that are reset here or freshly written, and the
// completion calendar additionally validates Seq, so they stay stale too.
// Everything conditionally written in a lifetime is reset below; the
// snapshot-determinism tests and the harness goldens guard the contract.
func (d *DynInst) scrub() {
	kr := d.KillRecs[:cap(d.KillRecs)]
	for i := range kr {
		kr[i] = nil
	}
	fk := d.Forked[:cap(d.Forked)]
	for i := range fk {
		fk[i] = nil
	}
	wt := d.waiters[:cap(d.waiters)]
	for i := range wt {
		wt[i] = nil
	}
	os := d.olderStores[:cap(d.olderStores)]
	for i := range os {
		os[i] = nil
	}
	d.KillRecs, d.Forked, d.waiters, d.olderStores = kr[:0], fk[:0], wt[:0], os[:0]

	d.PredTaken, d.PredTarget = false, 0
	d.NoTargetPred, d.Mispredicted = false, false
	d.HistBefore, d.PathBefore = 0, 0
	d.UsedPred, d.UsedOverride = nil, false
	d.AllocPred, d.IsPGI = nil, false
	d.PGIRef = slicehw.PGIRef{}
	d.undoRegValid, d.undoMemValid = false, false
	d.prevWriter, d.nextWriter = nil, nil
	d.deps = [3]*DynInst{}
	d.ndeps, d.waitCount, d.inReady = 0, 0, false
	d.Dispatched, d.Issued, d.Completed, d.Squashed, d.Retired = false, false, false, false, false
	d.PerfectLoad, d.forwarded = false, false
	d.MemResult = cache.Result{}
}

// releaseRetired returns a retired instruction to the pool, first severing
// the pointers that could otherwise resurrect it.
func (c *Core) releaseRetired(d *DynInst) {
	t := d.Thread
	if dest, ok := d.Static.Dest(); ok {
		if t.lastWriter[dest] == d {
			// A retired writer is Completed, which fetch's dependence scan
			// treats exactly like "no in-flight producer".
			t.lastWriter[dest] = nil
		} else if w := d.nextWriter; w != nil && w.prevWriter == d {
			// The younger in-flight writer checkpointed this instruction as
			// its prevWriter; restoring a Completed writer on its squash
			// would be equivalent to nil, so unlink it.
			w.prevWriter = nil
		}
		d.nextWriter = nil
	}
	if p := d.Thread.prog; p.corr != nil && d.UsedPred != nil {
		p.corr.DropConsumer(d.UsedPred, d)
	}
	c.dropForkRefs(d)
	c.pool = append(c.pool, d)
}

// releaseSquashed returns a squashed instruction to the pool. Scheduler
// deregistration already happened in squashInst, undo() restored the
// writer chain, and UndoUse cleared any correlator consumer handle.
func (c *Core) releaseSquashed(d *DynInst) {
	c.dropForkRefs(d)
	c.pool = append(c.pool, d)
}

// dropForkRefs clears the back-reference a forked helper context keeps to
// its fork point. The identity check matters: a drained context may have
// been re-forked by a different instruction while this one was in flight.
func (c *Core) dropForkRefs(d *DynInst) {
	for _, h := range d.Forked {
		if h.ForkInst == d {
			h.ForkInst = nil
		}
	}
}
