package cpu

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bpred"
)

// Fingerprint returns a stable, order-independent serialization of every
// field that can change simulation results. Two Configs with equal
// fingerprints produce identical runs on the same workload and region, so
// the experiment engine uses it as part of its memoization key. The
// Perfect PC sets are emitted sorted — map iteration order must not leak
// into the key.
func (c Config) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s fw=%d iw=%d cw=%d win=%d ls=%d cx=%d front=%d fq=%d tc=%d",
		c.Name, c.FetchWidth, c.IssueWidth, c.CommitWidth, c.WindowSize,
		c.LdStPorts, c.ComplexUnits, c.FrontLatency, c.FetchQueueCap, c.ThreadContexts)
	fmt.Fprintf(&b, " mul=%d div=%d mfw=%g hwc=%d hfq=%d pqd=%d",
		c.MulLatency, c.DivLatency, c.MainFetchWeight, c.HelperWindowCap,
		c.HelperFetchQCap, c.PredQueueDepth)
	fmt.Fprintf(&b, " predsOff=%t confGate=%t confThr=%d dedicated=%t maxCyc=%d",
		c.SlicePredictionsOff, c.ConfidenceGatedForks, c.ConfidenceThreshold,
		c.DedicatedSliceResources, c.MaxCycles)
	if len(c.ProgFetchWeights) > 0 {
		// Emitted only when set, so single-program fingerprints (and the
		// warm checkpoints keyed by them) are unchanged.
		fmt.Fprintf(&b, " pfw=%v", c.ProgFetchWeights)
	}
	// Predictor specs are normalized so "" and the explicit default name
	// fingerprint identically; %q guards against separator characters in
	// param lists (e.g. a perfect predictor's PC list).
	fmt.Fprintf(&b, " bpred=%q ipred=%q",
		normalizeSpec(c.BPred, bpred.DefaultDirSpec),
		normalizeSpec(c.IndirectPred, bpred.DefaultIndirectSpec))
	// cache.Params is a flat struct of scalars; %+v is deterministic.
	fmt.Fprintf(&b, " mem={%+v}", c.Mem)
	fmt.Fprintf(&b, " perfect={allBr=%t allLd=%t br=%s ld=%s}",
		c.Perfect.AllBranches, c.Perfect.AllLoads,
		sortedPCs(c.Perfect.BranchPCs), sortedPCs(c.Perfect.LoadPCs))
	return b.String()
}

// normalizeSpec maps the empty spec onto the default predictor name so a
// config that spells the default out ("yags") and one that leaves it
// empty share a fingerprint. Distinct param spellings of one geometry
// ("yags" vs "yags:8192,2048,6,12") fingerprint apart — conservative for
// memoization, never wrong.
func normalizeSpec(spec, def string) string {
	if spec == "" {
		return def
	}
	return spec
}

func sortedPCs(set map[uint64]bool) string {
	if len(set) == 0 {
		return "-"
	}
	pcs := make([]uint64, 0, len(set))
	for pc, on := range set {
		if on {
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	var b strings.Builder
	for i, pc := range pcs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%x", pc)
	}
	return b.String()
}
