package cpu

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/slicehw"
)

// Thread is one hardware context. The main thread runs the program; helper
// contexts run speculative slices. Regs is the *speculative* architectural
// state maintained at fetch by the execute-at-fetch model; squashes rewind
// it through the undo logs.
type Thread struct {
	ID     int
	IsMain bool
	Alive  bool
	// Fetching is false once the thread stopped issuing new fetches
	// (HALT, slice termination, or waiting on an unpredicted indirect
	// target). Squashes may re-enable it.
	Fetching bool

	PC   uint64
	Regs [isa.NumRegs]uint64

	// prog is the program this thread serves: its own for a main thread,
	// the forking main's for a helper. Set at New (mains) and at fork
	// (helpers); never nil for a live thread.
	prog *progState

	// Speculative front-end state.
	Hist uint64
	Path uint64
	RAS  *bpred.RAS

	fetchq     instRing
	rob        instRing
	lastWriter [isa.NumRegs]*DynInst
	// pendingStores are fetched-but-unissued stores (address unknown) for
	// load disambiguation.
	pendingStores []*DynInst

	// waitResolve is the unpredicted indirect branch fetch is stalled on.
	waitResolve *DynInst

	// icStallUntil stalls fetch on an instruction-cache miss.
	icStallUntil uint64

	// Helper-thread state.
	Slice     *slicehw.Slice
	Instance  *slicehw.Instance
	LoopCount int
	ForkInst  *DynInst
	// terminated marks a helper that ended for a non-speculative reason
	// (HALT on the committed path can't happen for helpers — they have no
	// committed path — so termination is always re-derivable; Fetching is
	// simply re-enabled on squash and the terminating condition, if real,
	// re-fires).
}

func newThread(id int, rasEntries, fetchqCap, robCap int) *Thread {
	return &Thread{
		ID:     id,
		RAS:    bpred.NewRAS(rasEntries),
		fetchq: newInstRing(fetchqCap),
		rob:    newInstRing(robCap),
	}
}

// inflight returns the thread's in-flight instruction count (ICOUNT).
func (t *Thread) inflight() int { return t.fetchq.len() + t.rob.len() }

// ProgIndex returns the program slot this thread serves (a helper reports
// its forker's program). RetireObserver callbacks route multi-programmed
// retirement streams by it.
func (t *Thread) ProgIndex() int {
	if t.prog == nil {
		return 0
	}
	return t.prog.index
}

// reset clears the context for reuse as a helper.
func (t *Thread) reset() {
	t.Regs = [isa.NumRegs]uint64{}
	t.Hist, t.Path = 0, 0
	t.fetchq.clear()
	t.rob.clear()
	t.lastWriter = [isa.NumRegs]*DynInst{}
	t.pendingStores = t.pendingStores[:0]
	t.waitResolve = nil
	t.icStallUntil = 0
	t.Slice = nil
	t.Instance = nil
	t.LoopCount = 0
	t.ForkInst = nil
}

// execCtx adapts a (core, thread, dyninst) triple to isa.State, recording
// undo information on the instruction as side effects happen. The core owns
// one scratch instance (Core.ectx): passing its pointer to isa.Execute
// avoids boxing a fresh struct into the interface per fetched instruction.
type execCtx struct {
	c  *Core
	t  *Thread
	di *DynInst
}

func (e *execCtx) Reg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return e.t.Regs[r]
}

func (e *execCtx) SetReg(r isa.Reg, v uint64) {
	if r == isa.Zero {
		return
	}
	e.di.undoRegValid = true
	e.di.undoReg = r
	e.di.undoRegVal = e.t.Regs[r]
	e.t.Regs[r] = v
}

func (e *execCtx) Load(addr uint64, size int) (uint64, bool) {
	if !e.t.IsMain {
		// Helper threads see the *committed* memory image of their own
		// program: a real SMT's store buffer is private to the main thread
		// until retirement, so slices never observe wrong-path stores
		// (which would poison their predictions and prefetches).
		return e.t.prog.committedRead(addr, size)
	}
	return e.t.prog.mem.Read(addr, size)
}

func (e *execCtx) Store(addr uint64, size int, v uint64) bool {
	m := e.t.prog.mem
	old, _ := m.Read(addr, size)
	e.di.undoMemValid = true
	e.di.undoMemAddr = addr
	e.di.undoMemSize = size
	e.di.undoMemVal = old
	return m.Write(addr, size, v)
}

// undo reverses the functional side effects of one instruction. Callers
// must undo instructions youngest-first within a thread.
func (d *DynInst) undo(c *Core) {
	if d.undoMemValid {
		d.Thread.prog.mem.Write(d.undoMemAddr, d.undoMemSize, d.undoMemVal)
		d.undoMemValid = false
	}
	if d.undoRegValid {
		d.Thread.Regs[d.undoReg] = d.undoRegVal
		d.undoRegValid = false
	}
	if dest, ok := d.Static.Dest(); ok && d.Thread.lastWriter[dest] == d {
		d.Thread.lastWriter[dest] = d.prevWriter
		if d.prevWriter != nil {
			// d leaves the chain; its predecessor has no successor now.
			d.prevWriter.nextWriter = nil
		}
	}
}
