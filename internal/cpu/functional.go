package cpu

import (
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/isa/compiled"
	"repro/internal/mem"
)

// FuncState is the result of a functional (timing-free) run.
type FuncState struct {
	Regs    [isa.NumRegs]uint64
	Retired uint64
	Halted  bool
	PC      uint64
}

type funcCtx struct {
	regs *[isa.NumRegs]uint64
	m    *mem.Memory
}

func (f funcCtx) Reg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return f.regs[r]
}

func (f funcCtx) SetReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		f.regs[r] = v
	}
}

func (f funcCtx) Load(addr uint64, size int) (uint64, bool)  { return f.m.Read(addr, size) }
func (f funcCtx) Store(addr uint64, size int, v uint64) bool { return f.m.Write(addr, size, v) }

// RunFunctional executes the image architecturally — no pipeline, no
// caches, no speculation. It is the reference model the out-of-order core
// must match instruction-for-instruction, and the engine behind the
// problem-instruction profiler's oracle counts. It runs on the compiled
// engine (isa/compiled); RunFunctionalInterp is the decode-dispatch
// interpreter it is differentially tested against.
func RunFunctional(image *asm.Image, m *mem.Memory, entry uint64, maxInsts uint64) (FuncState, error) {
	var st FuncState
	ma := compiled.NewMachine(compiled.Cached(image), m, entry)
	n, err := ma.Run(maxInsts)
	st.Retired = n
	st.Halted = ma.Halted()
	st.PC = ma.PC()
	ma.CopyRegs(&st.Regs)
	if err != nil {
		var off *compiled.OffImageError
		if errors.As(err, &off) {
			return st, fmt.Errorf("cpu: functional run fell off the image at %#x after %d instructions", off.PC, st.Retired)
		}
		return st, err
	}
	return st, nil
}

// RunFunctionalInterp is RunFunctional on the original decode-dispatch
// interpreter (isa.Execute against the image, one lookup per
// instruction). It is retained as the differential reference for the
// compiled engine — equivalence tests and the functional-interp warm mode
// run on it — and as the baseline leg of BenchmarkFunctionalExec.
func RunFunctionalInterp(image *asm.Image, m *mem.Memory, entry uint64, maxInsts uint64) (FuncState, error) {
	var st FuncState
	st.PC = entry
	ctx := funcCtx{regs: &st.Regs, m: m}
	for st.Retired < maxInsts {
		in, ok := image.At(st.PC)
		if !ok {
			return st, fmt.Errorf("cpu: functional run fell off the image at %#x after %d instructions", st.PC, st.Retired)
		}
		out := isa.Execute(in, st.PC, ctx)
		st.Retired++
		if out.Halt {
			st.Halted = true
			return st, nil
		}
		st.PC = out.NextPC(st.PC)
	}
	return st, nil
}
