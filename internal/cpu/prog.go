package cpu

import (
	"repro/internal/asm"
	"repro/internal/mem"
	"repro/internal/slicehw"
	"repro/internal/stats"
)

// Multi-programmed mode: the core can co-schedule up to MaxPrograms main
// threads, each running its own program image against its own memory view,
// contending for fetch slots (biased ICOUNT), window space, and the shared
// cache hierarchy — the scenario where slice helpers compete with real
// work instead of idle contexts. Each program owns everything that is
// architecturally or statistically *per program*: code image, memory,
// slice hardware (table, correlator, confidence), committed-store queue,
// halt tracking, and a stats.Sim. Shared predictors are indexed with a
// per-program PC salt so identical virtual PCs in different programs do
// not alias destructively; the cache hierarchy sees per-program physical
// addresses offset by physBase. Program slot 0 has zero salt and zero
// offset, so a single-program core behaves bit-for-bit as before.

// MaxPrograms bounds how many programs one core co-schedules.
const MaxPrograms = 4

// progPhysStride separates program address spaces in the cache hierarchy:
// program i's accesses are offset by i*progPhysStride. 4 GiB dwarfs every
// workload's footprint, so partitions never collide.
const progPhysStride = uint64(1) << 32

// progPhysSkew additionally staggers each partition by i*8KiB. A bare
// power-of-two stride preserves every cache index bit, so co-scheduled
// programs with identical virtual layouts (all workloads link at the same
// base) would collide set-for-set in every cache — three mains in the
// 2-way I-cache would fight over one set. Real co-scheduled processes get
// distinct physical pages; the skew models that, spreading the four slots
// evenly across the 32KiB L1 index span (and distinctly across L2's).
const progPhysSkew = uint64(8) << 10

// progSaltStride scrambles predictor indices per program (slot 0 gets 0).
const progSaltStride = 0x9e3779b97f4a7c15

// ProgSpec describes one program slot for NewMulti.
type ProgSpec struct {
	Image *asm.Image
	Mem   *mem.Memory
	Entry uint64
	// SliceTable enables the slice hardware for this program (nil: none).
	// Each program gets its own correlator and confidence table.
	SliceTable *slicehw.Table
}

// progState is the per-program half of the core: the state a main thread
// and its forked helpers read and write that must not be shared with a
// co-scheduled program.
type progState struct {
	index int
	image *asm.Image
	mem   *mem.Memory

	sliceTable *slicehw.Table
	corr       *slicehw.Correlator
	conf       *confidence
	sliceRefs  map[*slicehw.Slice]*sliceRef

	statSegs  []staticSeg // per-program Sim.ByPC cache
	sliceSegs []sliceSeg  // per-PC slice-table flag cache (sliceflags.go)

	// mainStores is the queue of this program's in-flight main-thread
	// stores with a recorded memory effect, for committedRead: pushed at
	// fetch, popped at retire (front) and squash (back).
	mainStores instRing

	main   *Thread
	halted bool

	weight   float64 // ICOUNT fairness weight for this program's main thread
	physBase uint64  // cache-hierarchy address offset
	predSalt uint64  // shared-predictor PC salt

	S *stats.Sim
}

// drainedMain reports whether this program's main thread halted and its
// pipeline share emptied.
func (p *progState) drainedMain() bool {
	return p.halted && p.main.rob.len() == 0 && p.main.fetchq.len() == 0
}

// physAddr maps a program-virtual address onto the hierarchy's address
// space.
func (p *progState) physAddr(addr uint64) uint64 { return addr + p.physBase }

// saltPC scrambles a PC for the shared direction/indirect predictor
// tables. Slot 0's salt is zero, so single-program indexing is unchanged.
func (p *progState) saltPC(pc uint64) uint64 { return pc ^ p.predSalt }
