package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// These tests pin the Table 1 timing facts the experiments depend on.

// runTiming runs a small halting kernel and returns cycles.
func runTiming(t *testing.T, cfg Config, build func(b *asm.Builder), init func(m *mem.Memory)) *Core {
	t.Helper()
	im, entry := buildImage(t, build)
	m := mem.New()
	if init != nil {
		init(m)
	}
	core := MustNew(cfg, im, m, entry, nil)
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatal("did not halt")
	}
	return core
}

// TestSerialLoadChainLatency: a dependent chain of N L1-hit loads must cost
// ≈ N × LatL1 cycles — the 3-cycle load-to-use latency of Table 1.
func TestSerialLoadChainLatency(t *testing.T) {
	const n = 400
	const base = 0x20000
	init := func(m *mem.Memory) {
		// A self-referencing pointer cycle within one cache line pair.
		m.WriteU64(base, base+8)
		m.WriteU64(base+8, base)
	}
	core := runTiming(t, Config4Wide(), func(b *asm.Builder) {
		b.Li(1, base)
		// Warm the two lines.
		b.Ld(1, 0, 1)
		b.I(isa.LDI, 2, 0, n)
		b.Label("loop")
		b.Ld(1, 0, 1) // serial dependent load
		b.I(isa.ADDI, 2, 2, -1)
		b.B(isa.BGT, 2, "loop")
		b.Halt()
	}, init)
	perIter := float64(core.S.Cycles) / n
	if perIter < 2.5 || perIter > 4.5 {
		t.Errorf("serial L1 load chain costs %.2f cycles/load, want ≈3", perIter)
	}
}

// TestMulDivLatencies: the complex unit's latencies are architectural.
func TestMulDivLatencies(t *testing.T) {
	run := func(op isa.Op) uint64 {
		core := runTiming(t, Config4Wide(), func(b *asm.Builder) {
			b.I(isa.LDI, 1, 0, 300)
			b.I(isa.LDI, 2, 0, 3)
			b.Label("loop")
			b.R(op, 2, 2, 2) // serial dependent chain
			b.I(isa.ADDI, 1, 1, -1)
			b.B(isa.BGT, 1, "loop")
			b.Halt()
		}, nil)
		return core.S.Cycles
	}
	mul := float64(run(isa.MUL)) / 300
	div := float64(run(isa.DIV)) / 300
	if mul < 6 || mul > 9 {
		t.Errorf("serial MUL chain %.1f cycles/op, want ≈7", mul)
	}
	if div < 18 || div > 23 {
		t.Errorf("serial DIV chain %.1f cycles/op, want ≈20", div)
	}
}

// TestLoadStorePortLimit: with 2 ports, >2 independent loads per cycle must
// throttle to 2/cycle.
func TestLoadStorePortLimit(t *testing.T) {
	const base = 0x20000
	core := runTiming(t, Config4Wide(), func(b *asm.Builder) {
		b.Li(1, base)
		b.I(isa.LDI, 2, 0, 500)
		// Warm the line.
		b.Ld(3, 0, 1)
		b.Label("loop")
		b.Ld(3, 0, 1)
		b.Ld(4, 8, 1)
		b.Ld(5, 16, 1)
		b.Ld(6, 24, 1)
		b.I(isa.ADDI, 2, 2, -1)
		b.B(isa.BGT, 2, "loop")
		b.Halt()
	}, func(m *mem.Memory) { m.WriteU64(base, 1) })
	// 6 instructions per iteration, 4 loads limited to 2/cycle → ≥2
	// cycles per iteration from ports alone.
	perIter := float64(core.S.Cycles) / 500
	if perIter < 1.9 {
		t.Errorf("4 loads/iteration ran at %.2f cycles/iter; 2 ports must throttle to ≥2", perIter)
	}
	// The 8-wide machine has 4 ports: the same kernel runs faster.
	core8 := runTiming(t, Config8Wide(), func(b *asm.Builder) {
		b.Li(1, base)
		b.I(isa.LDI, 2, 0, 500)
		b.Ld(3, 0, 1)
		b.Label("loop")
		b.Ld(3, 0, 1)
		b.Ld(4, 8, 1)
		b.Ld(5, 16, 1)
		b.Ld(6, 24, 1)
		b.I(isa.ADDI, 2, 2, -1)
		b.B(isa.BGT, 2, "loop")
		b.Halt()
	}, func(m *mem.Memory) { m.WriteU64(base, 1) })
	if core8.S.Cycles >= core.S.Cycles {
		t.Errorf("4 ports (%d cycles) not faster than 2 (%d)", core8.S.Cycles, core.S.Cycles)
	}
}

// TestWindowBoundsMemoryParallelism: independent memory-latency loads are
// limited by window size: the 256-entry window must overlap more misses
// than the 128-entry one.
func TestWindowBoundsMemoryParallelism(t *testing.T) {
	build := func(b *asm.Builder) {
		b.Li(1, 0x400000)
		b.I(isa.LDI, 2, 0, 300)
		b.Label("loop")
		// Independent far-apart loads (defeat the stream prefetcher).
		b.Ld(3, 0, 1)
		b.I(isa.ADDI, 1, 1, 4160) // 65*64: non-unit line stride
		b.I(isa.ADDI, 2, 2, -1)
		b.B(isa.BGT, 2, "loop")
		b.Halt()
	}
	c4 := runTiming(t, Config4Wide(), build, nil)
	c8 := runTiming(t, Config8Wide(), build, nil)
	if float64(c8.S.Cycles) > float64(c4.S.Cycles)*0.85 {
		t.Errorf("bigger window barely helped: %d vs %d cycles", c8.S.Cycles, c4.S.Cycles)
	}
}

// TestStoreLoadForwardingLatency: a load from a just-stored address must
// not pay a memory round trip.
func TestStoreLoadForwardingLatency(t *testing.T) {
	const base = 0x600000 // cold region: without forwarding this would miss
	core := runTiming(t, Config4Wide(), func(b *asm.Builder) {
		b.Li(1, base)
		b.I(isa.LDI, 2, 0, 200)
		b.Label("loop")
		b.St(2, 0, 1)
		b.Ld(3, 0, 1) // forwarded
		b.R(isa.ADD, 4, 4, 3)
		b.I(isa.ADDI, 1, 1, 64)
		b.I(isa.ADDI, 2, 2, -1)
		b.B(isa.BGT, 2, "loop")
		b.Halt()
	}, nil)
	perIter := float64(core.S.Cycles) / 200
	if perIter > 20 {
		t.Errorf("store→load pairs cost %.1f cycles/iter; forwarding broken?", perIter)
	}
	if core.S.LoadMisses > 10 {
		t.Errorf("%d forwarded loads counted as misses", core.S.LoadMisses)
	}
}
