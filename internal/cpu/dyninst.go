package cpu

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/slicehw"
)

// DynInst is one in-flight dynamic instruction. It carries the functional
// outcome (computed at fetch), the prediction state and checkpoints needed
// for recovery, the undo log for its architectural side effects, the
// correlator/fork handles for exact slice-hardware rollback, and its
// timing.
type DynInst struct {
	Thread *Thread
	Static *isa.Inst
	PC     uint64
	// Seq is the Von Neumann number: a global fetch-order sequence number
	// used for ordering and squash-range identification (§5.2).
	Seq uint64

	Out isa.Outcome

	// Control-flow prediction.
	PredTaken  bool
	PredTarget uint64
	// NoTargetPred marks an indirect branch the predictor had no target
	// for; fetch stalls until it resolves.
	NoTargetPred bool
	Mispredicted bool
	// HistBefore/PathBefore are the history registers the prediction was
	// made with (for training at retire).
	HistBefore uint64
	PathBefore uint64
	// CondVal is the value a main-thread conditional branch tested,
	// captured at fetch for value-predictor training at retire. Written
	// and read only when the direction predictor observes values
	// (Core.dirVal != nil), so it needs no pool scrub.
	CondVal uint64
	// Checkpoints of the speculative front-end state *after* this
	// instruction, restored when a squash rewinds to it.
	HistAfter uint64
	PathAfter uint64
	RASAfter  bpred.RASState
	LoopAfter int // helper back-edge count after this instruction

	// Correlator interaction (exact undo on squash).
	UsedPred     *slicehw.Pred
	UsedOverride bool
	KillRecs     []*slicehw.KillRecord
	AllocPred    *slicehw.Pred
	IsPGI        bool
	PGIRef       slicehw.PGIRef

	// Helper threads forked when this instruction was fetched.
	Forked []*Thread

	// Undo log for the functional side effects.
	undoRegValid bool
	undoReg      isa.Reg
	undoRegVal   uint64
	undoMemValid bool
	undoMemAddr  uint64
	undoMemSize  int
	undoMemVal   uint64
	prevWriter   *DynInst // lastWriter[dest] before this instruction
	// nextWriter is the unique younger writer whose prevWriter is this
	// instruction (nil if none). Maintained so retirement can unlink the
	// writer chain in O(1); invariant: nextWriter == nil or
	// nextWriter.prevWriter == this.
	nextWriter *DynInst

	// Register dependences: producers in flight at fetch time.
	deps  [3]*DynInst
	ndeps int
	// olderStores are unissued same-thread stores the load must wait for
	// (conservative "real" disambiguation), recorded at fetch.
	olderStores []*DynInst

	// Incremental-scheduler state. waitCount is the number of outstanding
	// wakeups (register producers + undisambiguated older stores); waiters
	// are the younger instructions subscribed to this one's completion (or,
	// for stores, issue); inReady marks membership in the core's ready
	// list.
	waitCount int
	waiters   []*DynInst
	inReady   bool

	// Timing.
	FetchCycle    uint64
	DispatchCycle uint64
	IssueCycle    uint64
	CompleteCycle uint64
	Dispatched    bool
	Issued        bool
	Completed     bool
	Squashed      bool
	Retired       bool

	// PerfectLoad marks loads served at L1-hit latency by the limit-study
	// modes.
	PerfectLoad bool
	MemResult   cache.Result
	// forwarded marks loads satisfied by an in-flight store.
	forwarded bool
}

// isHelper reports whether this instruction belongs to a helper thread.
func (d *DynInst) isHelper() bool { return !d.Thread.IsMain }

// actualNextPC returns the architecturally correct next PC.
func (d *DynInst) actualNextPC() uint64 { return d.Out.NextPC(d.PC) }

// predictedNextPC returns where fetch went after this instruction.
func (d *DynInst) predictedNextPC() uint64 {
	if d.Static.IsCtrl() && d.PredTaken {
		return d.PredTarget
	}
	return d.PC + isa.InstBytes
}
