package cpu

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/slicehw"
	"repro/internal/stats"
)

// Core is one simulated SMT processor, running one or more programs
// (progs) plus their slice helper threads.
type Core struct {
	Cfg  Config
	hier *cache.Hierarchy

	// The prediction seam: the core talks to the direction and indirect
	// predictors only through the bpred interfaces, so any registered
	// predictor plugs in via Config.BPred/IndirectPred. dirPrime and
	// dirVal cache the optional-hook type asserts off the hot path. The
	// tables are shared across programs; per-program PC salts keep
	// co-scheduled programs from aliasing each other's entries.
	dir      bpred.DirPredictor
	indirect bpred.IndirectPredictor
	dirPrime bpred.OutcomePrimed // non-nil if dir wants the actual outcome pre-Predict
	dirVal   bpred.ValueObserver // non-nil if dir learns from tested values at retire

	threads []*Thread
	// progs holds the per-program state, index-aligned with the main
	// threads (threads[i] is progs[i].main). See prog.go.
	progs []*progState
	// main and S alias progs[0] — the program of a single-programmed core,
	// and the primary program of a multi-programmed one.
	main *Thread

	window       int // dispatched, unretired instructions (all threads)
	helperWindow int // window entries held by helper threads
	seq          uint64
	now          uint64

	// Zero-alloc cycle-loop machinery (see pool.go and sched.go).
	pool       []*DynInst   // DynInst free list
	ready      []*DynInst   // seq-ordered dispatched instructions awaiting issue
	storeWoken []*DynInst   // wakeups deferred to the end of issueStage
	doneList   []*DynInst   // completeStage working set
	cal        [][]calEntry // completion calendar (calendar.go)
	ectx       execCtx      // scratch isa.State for fetchOne

	// retiring is the instruction currently inside retireInst, set across
	// the RetireObserver call: it is popped from its ROB but not yet
	// released, and the invariant checker exempts it from liveness checks.
	retiring *DynInst
	// draining suppresses all fetch while Quiesce empties the pipeline
	// (squash recovery may re-enable a thread's Fetching flag mid-cycle;
	// the drain must still not fetch).
	draining bool

	// DebugWrongOverride, when non-nil, is called at retire for every
	// branch whose slice-provided override was wrong (debugging aid).
	DebugWrongOverride func(di *DynInst)
	// DebugRetireBranch, when non-nil, is called as each conditional
	// branch retires (debugging aid).
	DebugRetireBranch func(di *DynInst)
	// DebugLookup, when non-nil, is called at fetch right after each
	// correlator lookup, while the thread's speculative registers still
	// hold the branch's own iteration state (debugging aid).
	DebugLookup func(di *DynInst)
	// RetireObserver, when non-nil, receives every main-thread instruction
	// in retirement (program) order — the architecturally committed
	// stream. In multi-programmed mode all programs' retirements arrive
	// here; route by di.Thread.ProgIndex(). The callee may read the
	// instruction's fields but must not retain the pointer: the DynInst
	// returns to the pool immediately after. The differential oracle
	// attaches here.
	RetireObserver func(di *DynInst)

	// S aliases progs[0].S: the whole-run counters of the (primary)
	// program. Per-program counters of a multi-programmed core surface
	// through Snapshot().Progs.
	S *stats.Sim

	// registry maps every live counter struct of this core onto Snapshot
	// fields; ResetStats and Snapshot derive from it, so a counter added
	// to any registered component is reset and exported automatically.
	// It covers program 0; extra programs' counters are reset by hand in
	// ResetStats and exported via Snapshot().Progs.
	registry stats.Registry
	// tracer receives the core's own pipeline events (fork, squash,
	// early-resolution, retire-stall); nil when tracing is off.
	tracer stats.Tracer
}

// New builds a single-program core. sliceTable may be nil (no slice
// hardware). entry is the main thread's starting PC.
func New(cfg Config, image *asm.Image, memory *mem.Memory, entry uint64, sliceTable *slicehw.Table) (*Core, error) {
	return NewMulti(cfg, []ProgSpec{{Image: image, Mem: memory, Entry: entry, SliceTable: sliceTable}})
}

// NewMulti builds a core co-scheduling one program per spec (1 to
// MaxPrograms). Main threads occupy the first len(specs) thread contexts
// in spec order; the remaining contexts are helper slots shared by every
// program's slices. Each program gets its own memory view, slice
// hardware, and stats; the fetch policy arbitrates among the mains with
// per-program ICOUNT weights (Config.ProgFetchWeights, defaulting to
// MainFetchWeight).
func NewMulti(cfg Config, specs []ProgSpec) (*Core, error) {
	if len(specs) < 1 {
		return nil, fmt.Errorf("cpu: need at least one program")
	}
	if len(specs) > MaxPrograms {
		return nil, fmt.Errorf("cpu: %d programs exceed the %d-slot limit", len(specs), MaxPrograms)
	}
	if cfg.ThreadContexts < len(specs) {
		return nil, fmt.Errorf("cpu: %d programs need at least %d thread contexts, config has %d",
			len(specs), len(specs), cfg.ThreadContexts)
	}
	for i, sp := range specs {
		if sp.Image == nil || sp.Mem == nil {
			return nil, fmt.Errorf("cpu: program %d: image and memory are required", i)
		}
		if _, ok := sp.Image.At(sp.Entry); !ok {
			return nil, fmt.Errorf("cpu: program %d: entry %#x is not in the image", i, sp.Entry)
		}
	}
	dir, err := bpred.NewDir(cfg.BPred)
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	indirect, err := bpred.NewIndirect(cfg.IndirectPred)
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	c := &Core{
		Cfg:      cfg,
		hier:     cache.NewHierarchy(cfg.Mem),
		dir:      dir,
		indirect: indirect,
	}
	c.dirPrime, _ = dir.(bpred.OutcomePrimed)
	c.dirVal, _ = dir.(bpred.ValueObserver)

	for i := 0; i < cfg.ThreadContexts; i++ {
		fqCap, robCap := cfg.HelperFetchQCap, cfg.HelperWindowCap
		if i < len(specs) {
			fqCap, robCap = cfg.FetchQueueCap, cfg.WindowSize
		}
		c.threads = append(c.threads, newThread(i, 64, fqCap, robCap))
	}

	for i, sp := range specs {
		p := &progState{
			index:    i,
			image:    sp.Image,
			mem:      sp.Mem,
			weight:   cfg.progWeight(i),
			physBase: uint64(i) * (progPhysStride + progPhysSkew),
			predSalt: uint64(i) * progSaltStride,
			S:        stats.New(),
		}
		if sp.SliceTable != nil {
			p.sliceTable = sp.SliceTable
			p.corr = slicehw.NewCorrelator(cfg.PredQueueDepth)
			p.conf = newConfidence(4096, cfg.ConfidenceThreshold)
			p.sliceRefs = make(map[*slicehw.Slice]*sliceRef)
			for _, s := range sp.SliceTable.Slices() {
				p.sliceRefs[s] = &sliceRef{
					coveredBranches: s.CoveredBranchPCs(),
					coveredLoads:    s.CoveredLoadPCs,
				}
			}
		}
		p.mainStores = newInstRing(64)
		p.initStatCache()
		p.initSliceFlags()
		t := c.threads[i]
		t.IsMain = true
		t.Alive = true
		t.Fetching = true
		t.PC = sp.Entry
		t.prog = p
		p.main = t
		c.progs = append(c.progs, p)
	}
	c.main = c.progs[0].main
	c.S = c.progs[0].S
	c.cal = make([][]calEntry, calBuckets)

	c.registry.Register("Sim", c.S)
	c.registry.Register("Hier", &c.hier.Stats)
	c.registry.Register("L1D", c.hier.L1D.Counters())
	c.registry.Register("L1I", c.hier.L1I.Counters())
	c.registry.Register("L2", c.hier.L2.Counters())
	c.registry.Register("PVB", c.hier.PVB.Counters())
	// Each predictor names its own Snapshot section; an Oracle-style
	// predictor with no counters returns ("", nil) and registers nothing.
	if field, ptr := c.dir.Counters(); field != "" {
		c.registry.Register(field, ptr)
	}
	if field, ptr := c.indirect.Counters(); field != "" {
		c.registry.Register(field, ptr)
	}
	c.registry.Register("Bpred.RAS", &c.main.RAS.Stats)
	if c.progs[0].corr != nil {
		c.registry.Register("Corr", &c.progs[0].corr.Stats)
	}
	return c, nil
}

// MustNew is New that panics (static setup in tests and workloads).
func MustNew(cfg Config, image *asm.Image, memory *mem.Memory, entry uint64, st *slicehw.Table) *Core {
	c, err := New(cfg, image, memory, entry, st)
	if err != nil {
		panic(err)
	}
	return c
}

// Hier exposes the memory hierarchy (stats and tests).
func (c *Core) Hier() *cache.Hierarchy { return c.hier }

// Correlator exposes program 0's prediction correlator (stats and tests).
func (c *Core) Correlator() *slicehw.Correlator { return c.progs[0].corr }

// SliceTable exposes the slice table program 0 was built with (nil
// without slice hardware); Restore needs the same table.
func (c *Core) SliceTable() *slicehw.Table { return c.progs[0].sliceTable }

// Main exposes program 0's main thread (tests).
func (c *Core) Main() *Thread { return c.main }

// Memory exposes program 0's speculative memory image (the oracle's
// final-state check; architectural only when nothing is in flight).
func (c *Core) Memory() *mem.Memory { return c.progs[0].mem }

// Image exposes the code image program 0 executes.
func (c *Core) Image() *asm.Image { return c.progs[0].image }

// NumPrograms returns how many programs the core co-schedules.
func (c *Core) NumPrograms() int { return len(c.progs) }

// ProgMain exposes program i's main thread.
func (c *Core) ProgMain(i int) *Thread { return c.progs[i].main }

// ProgSim exposes program i's whole-run counters.
func (c *Core) ProgSim(i int) *stats.Sim { return c.progs[i].S }

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// ResetStats zeroes all counters while keeping caches, predictors, and
// machine state warm — run a warm-up region, reset, then measure, like the
// paper's 100M-instruction warm-up. It walks the telemetry registry, so
// every registered component resets — there is no per-component list here
// to forget when a counter struct grows. Programs beyond slot 0 are not
// in the registry (the Snapshot has one field per section); their
// counters are zeroed by hand here.
func (c *Core) ResetStats() {
	c.registry.Reset()
	for _, p := range c.progs {
		// The reset replaced the Sim.Static map; drop the cached pointers
		// into the old one.
		p.invalidateStatCache()
	}
	for _, p := range c.progs[1:] {
		stats.Zero(p.S)
		stats.Zero(&p.main.RAS.Stats)
		if p.corr != nil {
			stats.Zero(&p.corr.Stats)
		}
	}
}

// Snapshot deep-copies every registered counter struct into one
// machine-readable Snapshot — the unit of export for -json output and the
// harness rows. A multi-programmed core additionally fills Progs with
// each program's whole-run counters (slot-aligned); single-program
// snapshots leave it nil, so their serialized form is unchanged.
func (c *Core) Snapshot() stats.Snapshot {
	snap := c.registry.Snapshot()
	if len(c.progs) > 1 {
		snap.Progs = make([]stats.Sim, len(c.progs))
		for i, p := range c.progs {
			snap.Progs[i] = *p.S.Clone()
		}
	}
	return snap
}

// Components exposes the telemetry registry contents (tests assert reset
// and export completeness against it).
func (c *Core) Components() []stats.Component {
	return c.registry.Components()
}

// SetTracer routes structured telemetry events from the core, the memory
// hierarchy, and each program's correlator to t. The correlator has no
// clock, so its events are wrapped to stamp the current cycle. Pass nil
// to disable.
func (c *Core) SetTracer(t stats.Tracer) {
	c.tracer = t
	c.hier.Tracer = t
	for _, p := range c.progs {
		if p.corr == nil {
			continue
		}
		if t == nil {
			p.corr.Tracer = nil
		} else {
			p.corr.Tracer = stats.FuncTracer(func(e stats.Event) {
				e.Cycle = c.now
				t.Emit(e)
			})
		}
	}
}

// Tracer returns the tracer installed by SetTracer (nil when tracing is
// off). The oracle emits its divergence events through it.
func (c *Core) Tracer() stats.Tracer { return c.tracer }

// emit sends one core pipeline event, stamping the current cycle. A nil
// tracer makes this a branch-predictable no-op on the hot path.
func (c *Core) emit(e stats.Event) {
	if c.tracer != nil {
		e.Cycle = c.now
		c.tracer.Emit(e)
	}
}

// Done reports whether every program's main thread has halted and
// drained, including the write buffer: retired stores still draining into
// the hierarchy would otherwise leave final cache stats dependent on
// where the run stopped.
func (c *Core) Done() bool {
	for _, p := range c.progs {
		if !p.drainedMain() {
			return false
		}
	}
	return c.hier.WriteBufLen() == 0
}

// Run simulates until every program has retired maxMainRetired more
// instructions (counted from the last ResetStats) or halted, or the cycle
// guard fired. A program that reaches its target keeps running — and
// contending — until the slowest one catches up. It returns program 0's
// stats; per-program counters come from Snapshot or ProgSim.
func (c *Core) Run(maxMainRetired uint64) *stats.Sim {
	start := c.now
	for {
		if c.runTargetMet(maxMainRetired) {
			break
		}
		if c.now-start >= c.Cfg.MaxCycles {
			// A truncated region is not a completed one; count the hit so
			// harness rows and slicesim can surface it instead of silently
			// reporting a partial simulation.
			for _, p := range c.progs {
				p.S.CycleGuardHits++
			}
			break
		}
		c.stepCycle()
	}
	return c.S
}

// runTargetMet reports whether Run's stopping condition holds: the
// machine fully drained, or every program retired its share.
func (c *Core) runTargetMet(max uint64) bool {
	if c.Done() {
		return true
	}
	for _, p := range c.progs {
		if p.S.MainRetired < max {
			return false
		}
	}
	return true
}

// stepCycle advances the machine one cycle through every pipeline stage.
func (c *Core) stepCycle() {
	c.now++
	for _, p := range c.progs {
		p.S.Cycles++
	}
	c.retireStage()
	c.completeStage()
	c.issueStage()
	c.dispatchStage()
	c.fetchStage()
	c.hier.Tick(c.now)
	c.reapHelpers()
}

// dispatchStage moves fetched instructions into the window once they have
// traversed the front end (FrontLatency cycles) and space exists.
func (c *Core) dispatchStage() {
	for _, t := range c.threads {
		if !t.Alive {
			continue
		}
		for t.fetchq.len() > 0 {
			if t.IsMain || !c.Cfg.DedicatedSliceResources {
				// Helpers share the window unless dedicated (§6.3).
				if c.window >= c.Cfg.WindowSize {
					break
				}
			}
			if !t.IsMain && c.helperWindow >= c.Cfg.HelperWindowCap {
				break // helpers may not starve the main threads of window space
			}
			di := t.fetchq.front()
			if di.FetchCycle+c.Cfg.FrontLatency > c.now {
				break
			}
			t.fetchq.popFront()
			di.Dispatched = true
			di.DispatchCycle = c.now
			t.rob.pushBack(di)
			if t.IsMain || !c.Cfg.DedicatedSliceResources {
				c.window++
			}
			if !t.IsMain {
				c.helperWindow++
			}
			// Issue runs before dispatch in the cycle loop, so an
			// instruction entering here ready is visible next cycle —
			// exactly when the old per-cycle scan would first see it.
			if di.waitCount == 0 {
				c.readyInsert(di)
			}
		}
	}
}

// reapHelpers frees helper contexts that stopped fetching and drained.
// Their correlator instances persist: predictions outlive the thread.
func (c *Core) reapHelpers() {
	for _, t := range c.threads {
		if t.Alive && !t.IsMain && !t.Fetching && t.inflight() == 0 {
			t.Alive = false
		}
	}
}

// idleThread returns a free helper context, or nil.
func (c *Core) idleThread() *Thread {
	for _, t := range c.threads {
		if !t.IsMain && !t.Alive {
			return t
		}
	}
	return nil
}

func pushHist(hist uint64, taken bool) uint64 {
	if taken {
		return hist<<1 | 1
	}
	return hist << 1
}
