package cpu

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/slicehw"
	"repro/internal/stats"
)

// Core is one simulated SMT processor.
type Core struct {
	Cfg   Config
	mem   *mem.Memory
	image *asm.Image
	hier  *cache.Hierarchy

	// The prediction seam: the core talks to the direction and indirect
	// predictors only through the bpred interfaces, so any registered
	// predictor plugs in via Config.BPred/IndirectPred. dirPrime and
	// dirVal cache the optional-hook type asserts off the hot path.
	dir      bpred.DirPredictor
	indirect bpred.IndirectPredictor
	dirPrime bpred.OutcomePrimed // non-nil if dir wants the actual outcome pre-Predict
	dirVal   bpred.ValueObserver // non-nil if dir learns from tested values at retire

	threads []*Thread
	main    *Thread

	sliceTable *slicehw.Table
	corr       *slicehw.Correlator
	conf       *confidence
	sliceRefs  map[*slicehw.Slice]*sliceRef

	window       int // dispatched, unretired instructions (all threads)
	helperWindow int // window entries held by helper threads
	// mainStores is the queue of in-flight main-thread stores with a
	// recorded memory effect, for committedRead: pushed at fetch, popped
	// at retire (front) and squash (back).
	mainStores instRing
	seq        uint64
	now        uint64

	// Zero-alloc cycle-loop machinery (see pool.go and sched.go).
	pool       []*DynInst   // DynInst free list
	ready      []*DynInst   // seq-ordered dispatched instructions awaiting issue
	storeWoken []*DynInst   // wakeups deferred to the end of issueStage
	doneList   []*DynInst   // completeStage working set
	cal        [][]calEntry // completion calendar (calendar.go)
	statSegs   []staticSeg  // per-program Sim.ByPC cache
	sliceSegs  []sliceSeg   // per-PC slice-table flag cache (sliceflags.go)
	ectx       execCtx      // scratch isa.State for fetchOne

	mainHalted bool
	// retiring is the instruction currently inside retireInst, set across
	// the RetireObserver call: it is popped from its ROB but not yet
	// released, and the invariant checker exempts it from liveness checks.
	retiring *DynInst
	// draining suppresses all fetch while Quiesce empties the pipeline
	// (squash recovery may re-enable a thread's Fetching flag mid-cycle;
	// the drain must still not fetch).
	draining bool

	// DebugWrongOverride, when non-nil, is called at retire for every
	// branch whose slice-provided override was wrong (debugging aid).
	DebugWrongOverride func(di *DynInst)
	// DebugRetireBranch, when non-nil, is called as each conditional
	// branch retires (debugging aid).
	DebugRetireBranch func(di *DynInst)
	// DebugLookup, when non-nil, is called at fetch right after each
	// correlator lookup, while the thread's speculative registers still
	// hold the branch's own iteration state (debugging aid).
	DebugLookup func(di *DynInst)
	// RetireObserver, when non-nil, receives every main-thread instruction
	// in retirement (program) order — the architecturally committed
	// stream. The callee may read the instruction's fields but must not
	// retain the pointer: the DynInst returns to the pool immediately
	// after. The differential oracle attaches here.
	RetireObserver func(di *DynInst)

	S *stats.Sim

	// registry maps every live counter struct of this core onto Snapshot
	// fields; ResetStats and Snapshot derive from it, so a counter added
	// to any registered component is reset and exported automatically.
	registry stats.Registry
	// tracer receives the core's own pipeline events (fork, squash,
	// early-resolution, retire-stall); nil when tracing is off.
	tracer stats.Tracer
}

// New builds a core. sliceTable may be nil (no slice hardware). entry is
// the main thread's starting PC.
func New(cfg Config, image *asm.Image, memory *mem.Memory, entry uint64, sliceTable *slicehw.Table) (*Core, error) {
	if cfg.ThreadContexts < 1 {
		return nil, fmt.Errorf("cpu: need at least one thread context")
	}
	if _, ok := image.At(entry); !ok {
		return nil, fmt.Errorf("cpu: entry %#x is not in the image", entry)
	}
	dir, err := bpred.NewDir(cfg.BPred)
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	indirect, err := bpred.NewIndirect(cfg.IndirectPred)
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	c := &Core{
		Cfg:      cfg,
		mem:      memory,
		image:    image,
		hier:     cache.NewHierarchy(cfg.Mem),
		dir:      dir,
		indirect: indirect,
		S:        stats.New(),
	}
	c.dirPrime, _ = dir.(bpred.OutcomePrimed)
	c.dirVal, _ = dir.(bpred.ValueObserver)
	if sliceTable != nil {
		c.sliceTable = sliceTable
		c.corr = slicehw.NewCorrelator(cfg.PredQueueDepth)
		c.conf = newConfidence(4096, cfg.ConfidenceThreshold)
		c.sliceRefs = make(map[*slicehw.Slice]*sliceRef)
		for _, s := range sliceTable.Slices() {
			c.sliceRefs[s] = &sliceRef{
				coveredBranches: s.CoveredBranchPCs(),
				coveredLoads:    s.CoveredLoadPCs,
			}
		}
	}
	for i := 0; i < cfg.ThreadContexts; i++ {
		fqCap, robCap := cfg.HelperFetchQCap, cfg.HelperWindowCap
		if i == 0 {
			fqCap, robCap = cfg.FetchQueueCap, cfg.WindowSize
		}
		c.threads = append(c.threads, newThread(i, 64, fqCap, robCap))
	}
	c.mainStores = newInstRing(64)
	c.cal = make([][]calEntry, calBuckets)
	c.initStatCache()
	c.initSliceFlags()
	c.main = c.threads[0]
	c.main.IsMain = true
	c.main.Alive = true
	c.main.Fetching = true
	c.main.PC = entry

	c.registry.Register("Sim", c.S)
	c.registry.Register("Hier", &c.hier.Stats)
	c.registry.Register("L1D", c.hier.L1D.Counters())
	c.registry.Register("L1I", c.hier.L1I.Counters())
	c.registry.Register("L2", c.hier.L2.Counters())
	c.registry.Register("PVB", c.hier.PVB.Counters())
	// Each predictor names its own Snapshot section; an Oracle-style
	// predictor with no counters returns ("", nil) and registers nothing.
	if field, ptr := c.dir.Counters(); field != "" {
		c.registry.Register(field, ptr)
	}
	if field, ptr := c.indirect.Counters(); field != "" {
		c.registry.Register(field, ptr)
	}
	c.registry.Register("Bpred.RAS", &c.main.RAS.Stats)
	if c.corr != nil {
		c.registry.Register("Corr", &c.corr.Stats)
	}
	return c, nil
}

// MustNew is New that panics (static setup in tests and workloads).
func MustNew(cfg Config, image *asm.Image, memory *mem.Memory, entry uint64, st *slicehw.Table) *Core {
	c, err := New(cfg, image, memory, entry, st)
	if err != nil {
		panic(err)
	}
	return c
}

// Hier exposes the memory hierarchy (stats and tests).
func (c *Core) Hier() *cache.Hierarchy { return c.hier }

// Correlator exposes the prediction correlator (stats and tests).
func (c *Core) Correlator() *slicehw.Correlator { return c.corr }

// SliceTable exposes the slice table the core was built with (nil without
// slice hardware); Restore needs the same table.
func (c *Core) SliceTable() *slicehw.Table { return c.sliceTable }

// Main exposes the main thread (tests).
func (c *Core) Main() *Thread { return c.main }

// Memory exposes the speculative memory image (the oracle's final-state
// check; architectural only when nothing is in flight).
func (c *Core) Memory() *mem.Memory { return c.mem }

// Image exposes the code image the core executes.
func (c *Core) Image() *asm.Image { return c.image }

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// ResetStats zeroes all counters while keeping caches, predictors, and
// machine state warm — run a warm-up region, reset, then measure, like the
// paper's 100M-instruction warm-up. It walks the telemetry registry, so
// every registered component resets — there is no per-component list here
// to forget when a counter struct grows.
func (c *Core) ResetStats() {
	c.registry.Reset()
	// The reset replaced the Sim.Static map; drop the cached pointers
	// into the old one.
	c.invalidateStatCache()
}

// Snapshot deep-copies every registered counter struct into one
// machine-readable Snapshot — the unit of export for -json output and the
// harness rows.
func (c *Core) Snapshot() stats.Snapshot {
	return c.registry.Snapshot()
}

// Components exposes the telemetry registry contents (tests assert reset
// and export completeness against it).
func (c *Core) Components() []stats.Component {
	return c.registry.Components()
}

// SetTracer routes structured telemetry events from the core, the memory
// hierarchy, and the correlator to t. The correlator has no clock, so its
// events are wrapped to stamp the current cycle. Pass nil to disable.
func (c *Core) SetTracer(t stats.Tracer) {
	c.tracer = t
	c.hier.Tracer = t
	if c.corr != nil {
		if t == nil {
			c.corr.Tracer = nil
		} else {
			c.corr.Tracer = stats.FuncTracer(func(e stats.Event) {
				e.Cycle = c.now
				t.Emit(e)
			})
		}
	}
}

// Tracer returns the tracer installed by SetTracer (nil when tracing is
// off). The oracle emits its divergence events through it.
func (c *Core) Tracer() stats.Tracer { return c.tracer }

// emit sends one core pipeline event, stamping the current cycle. A nil
// tracer makes this a branch-predictable no-op on the hot path.
func (c *Core) emit(e stats.Event) {
	if c.tracer != nil {
		e.Cycle = c.now
		c.tracer.Emit(e)
	}
}

// Done reports whether the main thread has halted and drained, including
// the write buffer: retired stores still draining into the hierarchy would
// otherwise leave final cache stats dependent on where the run stopped.
func (c *Core) Done() bool {
	return c.mainHalted && c.main.rob.len() == 0 && c.main.fetchq.len() == 0 &&
		c.hier.WriteBufLen() == 0
}

// Run simulates until the main thread has retired maxMainRetired more
// instructions (counted from the last ResetStats), halted, or the cycle
// guard fired. It returns the stats accumulated since the last reset.
func (c *Core) Run(maxMainRetired uint64) *stats.Sim {
	start := c.now
	for {
		if c.S.MainRetired >= maxMainRetired || c.Done() {
			break
		}
		if c.now-start >= c.Cfg.MaxCycles {
			// A truncated region is not a completed one; count the hit so
			// harness rows and slicesim can surface it instead of silently
			// reporting a partial simulation.
			c.S.CycleGuardHits++
			break
		}
		c.stepCycle()
	}
	return c.S
}

// stepCycle advances the machine one cycle through every pipeline stage.
func (c *Core) stepCycle() {
	c.now++
	c.S.Cycles++
	c.retireStage()
	c.completeStage()
	c.issueStage()
	c.dispatchStage()
	c.fetchStage()
	c.hier.Tick(c.now)
	c.reapHelpers()
}

// dispatchStage moves fetched instructions into the window once they have
// traversed the front end (FrontLatency cycles) and space exists.
func (c *Core) dispatchStage() {
	for _, t := range c.threads {
		if !t.Alive {
			continue
		}
		for t.fetchq.len() > 0 {
			if t.IsMain || !c.Cfg.DedicatedSliceResources {
				// Helpers share the window unless dedicated (§6.3).
				if c.window >= c.Cfg.WindowSize {
					break
				}
			}
			if !t.IsMain && c.helperWindow >= c.Cfg.HelperWindowCap {
				break // helpers may not starve the main thread of window space
			}
			di := t.fetchq.front()
			if di.FetchCycle+c.Cfg.FrontLatency > c.now {
				break
			}
			t.fetchq.popFront()
			di.Dispatched = true
			di.DispatchCycle = c.now
			t.rob.pushBack(di)
			if t.IsMain || !c.Cfg.DedicatedSliceResources {
				c.window++
			}
			if !t.IsMain {
				c.helperWindow++
			}
			// Issue runs before dispatch in the cycle loop, so an
			// instruction entering here ready is visible next cycle —
			// exactly when the old per-cycle scan would first see it.
			if di.waitCount == 0 {
				c.readyInsert(di)
			}
		}
	}
}

// reapHelpers frees helper contexts that stopped fetching and drained.
// Their correlator instances persist: predictions outlive the thread.
func (c *Core) reapHelpers() {
	for _, t := range c.threads {
		if t.Alive && !t.IsMain && !t.Fetching && t.inflight() == 0 {
			t.Alive = false
		}
	}
}

// idleThread returns a free helper context, or nil.
func (c *Core) idleThread() *Thread {
	for _, t := range c.threads {
		if !t.IsMain && !t.Alive {
			return t
		}
	}
	return nil
}

func pushHist(hist uint64, taken bool) uint64 {
	if taken {
		return hist<<1 | 1
	}
	return hist << 1
}
