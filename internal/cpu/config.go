// Package cpu implements the simulated machine of Table 1: an aggressive,
// heavily pipelined out-of-order SMT processor with an execute-at-fetch
// functional model. Wrong paths execute real instructions; squashes roll
// state back through per-instruction undo logs; helper threads run
// speculative slices that prefetch into the shared L1 and feed branch
// predictions to the prediction correlator.
package cpu

import (
	"repro/internal/cache"
)

// Perfect configures the limit-study modes of §2.3 and §6: oracle branch
// prediction and L1-hit loads, globally or for a selected set of static
// PCs (the "problem instructions").
type Perfect struct {
	AllBranches bool
	AllLoads    bool
	BranchPCs   map[uint64]bool
	LoadPCs     map[uint64]bool
}

// CoversBranch reports whether the branch at pc is perfected. The empty
// fast path matters: this runs per fetched and per retired branch, and
// most configurations perfect nothing.
func (p *Perfect) CoversBranch(pc uint64) bool {
	if p.AllBranches {
		return true
	}
	if len(p.BranchPCs) == 0 {
		return false
	}
	return p.BranchPCs[pc]
}

// CoversLoad reports whether the load at pc is perfected.
func (p *Perfect) CoversLoad(pc uint64) bool {
	if p.AllLoads {
		return true
	}
	if len(p.LoadPCs) == 0 {
		return false
	}
	return p.LoadPCs[pc]
}

// Config holds every machine parameter. Config4Wide and Config8Wide are
// the paper's two machines.
type Config struct {
	Name string

	FetchWidth   int
	IssueWidth   int
	CommitWidth  int
	WindowSize   int
	LdStPorts    int
	ComplexUnits int

	// FrontLatency is the fetch→dispatch depth; with one cycle each for
	// issue and execute it sets the 14-cycle minimum branch misprediction
	// penalty of Table 1.
	FrontLatency  uint64
	FetchQueueCap int

	ThreadContexts int

	MulLatency uint64
	DivLatency uint64

	Mem cache.Params

	// MainFetchWeight biases the ICOUNT fetch policy toward the main
	// thread (a weight of 2 lets the main thread hold twice a helper's
	// share of in-flight instructions before losing priority).
	MainFetchWeight float64

	// ProgFetchWeights, when non-nil, sets a per-program ICOUNT fairness
	// weight for multi-programmed cores (index-aligned with NewMulti's
	// specs; missing or non-positive entries fall back to
	// MainFetchWeight). A program with twice the weight holds twice the
	// in-flight share before losing fetch priority.
	ProgFetchWeights []float64

	// HelperWindowCap bounds how many window entries all helper threads
	// may hold together, so slices whose loads sit waiting on memory
	// cannot starve the main thread of window space.
	HelperWindowCap int
	// HelperFetchQCap bounds each helper's fetch queue (the main thread
	// uses FetchQueueCap).
	HelperFetchQCap int

	// PredQueueDepth is the correlator's per-branch prediction capacity.
	// Figure 10 shows 8; we double it so a slice hoisted one outer
	// iteration ahead can hold a full iteration's predictions while the
	// previous instance's entries await their kills (the paper notes more
	// efficient implementations are possible, §5.4).
	PredQueueDepth int

	// SlicePredictionsOff suppresses PGI allocation so slices only
	// prefetch — used to decompose speedup into load and branch parts
	// (Table 4's final row).
	SlicePredictionsOff bool

	// ConfidenceGatedForks implements §6.3's "obvious future work":
	// gate each fork with a JRS-style confidence estimator so slices run
	// only when their covered problem instructions are actually likely to
	// miss or mispredict, cutting the opportunity cost of slice execution.
	ConfidenceGatedForks bool
	// ConfidenceThreshold is the resetting-counter value at or above
	// which a covered instruction counts as confident (well-behaved).
	ConfidenceThreshold uint8

	// DedicatedSliceResources models §6.3's other variant: helper
	// threads get their own fetch port and window partition instead of
	// competing with the main thread, "eliminating execution overhead at
	// the expense of additional hardware". Function units stay shared.
	DedicatedSliceResources bool

	// BPred selects the direction predictor by registry spec —
	// "name" or "name:params", e.g. "yags", "value", "gshare:4096,10"
	// (see internal/bpred; "" means the default YAGS). The choice is part
	// of the config fingerprint and of warm-up state, so runs under
	// different predictors never share engine memo entries or warm
	// checkpoints.
	BPred string
	// IndirectPred selects the indirect target predictor the same way
	// ("" means the default cascaded predictor).
	IndirectPred string

	Perfect Perfect

	// MaxCycles is a runaway guard for Run.
	MaxCycles uint64
}

// progWeight returns program i's ICOUNT fairness weight.
func (c *Config) progWeight(i int) float64 {
	if i < len(c.ProgFetchWeights) && c.ProgFetchWeights[i] > 0 {
		return c.ProgFetchWeights[i]
	}
	return c.MainFetchWeight
}

// Config4Wide returns the paper's 4-wide machine (Table 1).
func Config4Wide() Config {
	return Config{
		Name:                "4-wide",
		FetchWidth:          4,
		IssueWidth:          4,
		CommitWidth:         4,
		WindowSize:          128,
		LdStPorts:           2,
		ComplexUnits:        1,
		FrontLatency:        12, // + issue + execute ⇒ 14-stage penalty
		FetchQueueCap:       32,
		ThreadContexts:      4,
		MulLatency:          7,
		DivLatency:          20,
		Mem:                 cache.DefaultParams(),
		MainFetchWeight:     2.0,
		HelperWindowCap:     32,
		HelperFetchQCap:     8,
		ConfidenceThreshold: 12,
		PredQueueDepth:      16,
		MaxCycles:           1 << 62,
	}
}

// Config8Wide returns the paper's 8-wide machine: a 256-entry window and 4
// load/store ports (Table 1).
func Config8Wide() Config {
	c := Config4Wide()
	c.Name = "8-wide"
	c.FetchWidth = 8
	c.IssueWidth = 8
	c.CommitWidth = 8
	c.WindowSize = 256
	c.LdStPorts = 4
	c.FetchQueueCap = 64
	c.HelperWindowCap = 64
	return c
}
