package cpu

import "repro/internal/isa"

// Per-PC slice-table flag cache. The slice table is immutable once built,
// but fetch consulted up to three of its maps per fetched instruction
// (forks, loop kills, slice kills — plus the PGI table for helpers), and
// those hash lookups showed up hot. One byte per image PC answers "does
// anything fire here" with a range check and an array index; the maps are
// consulted only on the rare PCs that actually carry slice hardware. The
// cache lives on the progState: each co-scheduled program indexes its own
// slice table.

const (
	sfFork      = 1 << iota // a slice forks at this PC
	sfLoopKill              // a loop-iteration kill fires here
	sfSliceKill             // a slice kill fires here
	sfPGI                   // this slice-code PC generates a prediction
)

type sliceSeg struct {
	base, end uint64
	flags     []uint8
}

func (p *progState) initSliceFlags() {
	if p.sliceTable == nil {
		return
	}
	for _, pr := range p.image.Programs() {
		n := int((pr.End() - pr.Base) / isa.InstBytes)
		seg := sliceSeg{base: pr.Base, end: pr.End(), flags: make([]uint8, n)}
		for i := 0; i < n; i++ {
			pc := pr.Base + uint64(i)*isa.InstBytes
			var f uint8
			if len(p.sliceTable.ForksAt(pc)) > 0 {
				f |= sfFork
			}
			if len(p.sliceTable.LoopKillsAt(pc)) > 0 {
				f |= sfLoopKill
			}
			if len(p.sliceTable.SliceKillsAt(pc)) > 0 {
				f |= sfSliceKill
			}
			if _, ok := p.sliceTable.PGIAt(pc); ok {
				f |= sfPGI
			}
			seg.flags[i] = f
		}
		p.sliceSegs = append(p.sliceSegs, seg)
	}
}

// sliceFlags returns the flag byte for pc, 0 when nothing fires there.
// Off-image PCs return 0, which matches the table maps (they only ever
// contain image PCs).
func (p *progState) sliceFlags(pc uint64) uint8 {
	for i := range p.sliceSegs {
		s := &p.sliceSegs[i]
		if pc >= s.base && pc < s.end {
			return s.flags[(pc-s.base)/isa.InstBytes]
		}
	}
	return 0
}
