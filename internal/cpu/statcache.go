package cpu

import (
	"repro/internal/isa"
	"repro/internal/stats"
)

// staticSeg caches Sim.ByPC results for one program region of the image,
// so the retire path does a range check and an array index instead of a
// map lookup (which hashes every retire and allocates on first touch
// mid-measurement). ResetStats swaps the underlying Static map out
// wholesale, so the cache is invalidated there.
type staticSeg struct {
	base, end uint64
	slots     []*stats.Static
}

func (c *Core) initStatCache() {
	for _, p := range c.image.Programs() {
		n := int((p.End() - p.Base) / isa.InstBytes)
		c.statSegs = append(c.statSegs, staticSeg{base: p.Base, end: p.End(), slots: make([]*stats.Static, n)})
	}
}

// staticFor is Sim.ByPC through the per-program cache.
func (c *Core) staticFor(pc uint64) *stats.Static {
	for i := range c.statSegs {
		s := &c.statSegs[i]
		if pc >= s.base && pc < s.end {
			idx := (pc - s.base) / isa.InstBytes
			if st := s.slots[idx]; st != nil {
				return st
			}
			st := c.S.ByPC(pc)
			s.slots[idx] = st
			return st
		}
	}
	return c.S.ByPC(pc)
}

// invalidateStatCache drops every cached pointer; the next retire per PC
// re-resolves against the (fresh) Static map.
func (c *Core) invalidateStatCache() {
	for i := range c.statSegs {
		slots := c.statSegs[i].slots
		for j := range slots {
			slots[j] = nil
		}
	}
}
