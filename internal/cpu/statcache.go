package cpu

import (
	"repro/internal/isa"
	"repro/internal/stats"
)

// staticSeg caches Sim.ByPC results for one program region of the image,
// so the retire path does a range check and an array index instead of a
// map lookup (which hashes every retire and allocates on first touch
// mid-measurement). ResetStats swaps the underlying Static map out
// wholesale, so the cache is invalidated there. The cache lives on the
// progState: each co-scheduled program caches against its own Sim.
type staticSeg struct {
	base, end uint64
	slots     []*stats.Static
}

func (p *progState) initStatCache() {
	for _, pr := range p.image.Programs() {
		n := int((pr.End() - pr.Base) / isa.InstBytes)
		p.statSegs = append(p.statSegs, staticSeg{base: pr.Base, end: pr.End(), slots: make([]*stats.Static, n)})
	}
}

// staticFor is Sim.ByPC through the per-program cache.
func (p *progState) staticFor(pc uint64) *stats.Static {
	for i := range p.statSegs {
		s := &p.statSegs[i]
		if pc >= s.base && pc < s.end {
			idx := (pc - s.base) / isa.InstBytes
			if st := s.slots[idx]; st != nil {
				return st
			}
			st := p.S.ByPC(pc)
			s.slots[idx] = st
			return st
		}
	}
	return p.S.ByPC(pc)
}

// invalidateStatCache drops every cached pointer; the next retire per PC
// re-resolves against the (fresh) Static map.
func (p *progState) invalidateStatCache() {
	for i := range p.statSegs {
		slots := p.statSegs[i].slots
		for j := range slots {
			slots[j] = nil
		}
	}
}
