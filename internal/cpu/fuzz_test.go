package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// genProgram builds a random but guaranteed-terminating program: a counted
// outer loop whose body mixes ALU ops, loads/stores into a private arena,
// data-dependent forward branches, counted inner loops, and calls. This is
// the differential fuzzer's input: the out-of-order core (with its wrong
// paths, squashes, store forwarding, and write buffer) must match the
// functional reference exactly on every one.
func genProgram(rng *rand.Rand) (*asm.Image, uint64, func(m *mem.Memory)) {
	const arena = 0x40000
	b := asm.NewBuilder(0x1000)
	b.Li(27, arena)
	b.I(isa.LDI, 1, 0, int32(20+rng.Intn(60))) // outer count
	b.Li(20, int64(rng.Uint64()>>1|1))         // rng state

	b.Label("outer")
	xor := func(st, tmp isa.Reg) {
		b.I(isa.SLLI, tmp, st, 13)
		b.R(isa.XOR, st, st, tmp)
		b.I(isa.SRLI, tmp, st, 7)
		b.R(isa.XOR, st, st, tmp)
	}
	xor(20, 9)

	nBlocks := 3 + rng.Intn(5)
	for blk := 0; blk < nBlocks; blk++ {
		switch rng.Intn(6) {
		case 0: // ALU chain
			for i := 0; i < 2+rng.Intn(6); i++ {
				rd := isa.Reg(2 + rng.Intn(8))
				ra := isa.Reg(2 + rng.Intn(8))
				rb := isa.Reg(2 + rng.Intn(8))
				ops := []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR, isa.S4ADD, isa.MUL}
				b.R(ops[rng.Intn(len(ops))], rd, ra, rb)
			}
		case 1: // store + load (forwarding pressure)
			off := int32(rng.Intn(64)) * 8
			rs := isa.Reg(2 + rng.Intn(8))
			b.St(rs, off, 27)
			b.Ld(isa.Reg(2+rng.Intn(8)), off, 27)
		case 2: // data-dependent forward branch
			lbl := b.PC() // unique label name from PC
			name := lblName("skip", lbl)
			b.I(isa.ANDI, 10, 20, int32(1<<uint(rng.Intn(3))))
			b.B(isa.BEQ, 10, name)
			for i := 0; i < 1+rng.Intn(4); i++ {
				b.I(isa.ADDI, isa.Reg(2+rng.Intn(8)), isa.Reg(2+rng.Intn(8)), int32(rng.Intn(9)-4))
			}
			b.Label(name)
		case 3: // counted inner loop
			name := lblName("inner", b.PC())
			b.I(isa.LDI, 11, 0, int32(1+rng.Intn(6)))
			b.Label(name)
			b.I(isa.ADDI, 12, 12, 7)
			b.St(12, int32(rng.Intn(32))*8, 27)
			b.I(isa.ADDI, 11, 11, -1)
			b.B(isa.BGT, 11, name)
		case 4: // call/return
			fn := lblName("fn", b.PC())
			after := lblName("after", b.PC())
			b.Call(fn)
			b.Br(after)
			b.Label(fn)
			b.R(isa.ADD, 13, 13, 20)
			b.Ret()
			b.Label(after)
		case 5: // pointer-ish scattered load
			b.I(isa.ANDI, 14, 20, 0x7F8)
			b.R(isa.ADD, 14, 14, 27)
			b.Ld(15, 0, 14)
			b.R(isa.ADD, 16, 16, 15)
		}
	}
	b.I(isa.ADDI, 1, 1, -1)
	b.B(isa.BGT, 1, "outer")
	b.Halt()
	p := b.MustBuild()
	im, err := asm.NewImage(p)
	if err != nil {
		panic(err)
	}
	init := func(m *mem.Memory) {
		for i := uint64(0); i < 1024; i++ {
			m.WriteU64(arena+i*8, i*0x9E37)
		}
	}
	return im, p.Base, init
}

func lblName(prefix string, pc uint64) string {
	const hexdigits = "0123456789abcdef"
	buf := []byte(prefix)
	for sh := 28; sh >= 0; sh -= 4 {
		buf = append(buf, hexdigits[(pc>>uint(sh))&0xF])
	}
	return string(buf)
}

// TestFuzzDifferential runs many random programs on both engines and
// requires exact architectural agreement (registers, retire counts).
func TestFuzzDifferential(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := 0; seed < n; seed++ {
		runDifferentialSeed(t, int64(seed), seed%3 == 1)
	}
}

// FuzzDifferential is the native-fuzzing entry for the differential
// fuzzer: the corpus is the program-generator seed plus the machine
// choice, so `go test -fuzz` explores programs beyond the fixed seeds.
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 6; seed++ {
		f.Add(seed, seed%3 == 1)
	}
	f.Fuzz(func(t *testing.T, seed int64, wide bool) { runDifferentialSeed(t, seed, wide) })
}

func runDifferentialSeed(t testing.TB, seed int64, wide bool) {
	rng := rand.New(rand.NewSource(seed))
	im, entry, init := genProgram(rng)

	m1 := mem.New()
	init(m1)
	cfg := Config4Wide()
	if wide {
		cfg = Config8Wide()
	}
	core := MustNew(cfg, im, m1, entry, nil)
	core.Run(1 << 40)
	if !core.Done() {
		t.Fatalf("seed %d: did not halt", seed)
	}

	m2 := mem.New()
	init(m2)
	ref, err := RunFunctional(im, m2, entry, 1<<40)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if core.S.MainRetired != ref.Retired {
		t.Fatalf("seed %d: retired %d vs %d", seed, core.S.MainRetired, ref.Retired)
	}
	for r := 1; r < isa.NumRegs; r++ {
		if core.Main().Regs[r] != ref.Regs[r] {
			t.Fatalf("seed %d: r%d = %#x vs %#x", seed, r, core.Main().Regs[r], ref.Regs[r])
		}
	}
	// Memory must agree too: compare the arena.
	for a := uint64(0x40000); a < 0x40000+1024*8; a += 8 {
		if m1.ReadU64(a) != m2.ReadU64(a) {
			t.Fatalf("seed %d: mem[%#x] = %#x vs %#x", seed, a, m1.ReadU64(a), m2.ReadU64(a))
		}
	}
}
