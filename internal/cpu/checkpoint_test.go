package cpu

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// straightThrough is the reference methodology: warm under the warm config,
// quiesce, swap in the measurement config, reset stats, measure. The
// checkpointed methodology (Checkpoint + Restore) must be indistinguishable
// from it.
func straightThrough(t *testing.T, w *workloads.Workload, cfg Config, withSlices bool, warm, run uint64) stats.Snapshot {
	t.Helper()
	var table = w.SliceTable()
	if !withSlices {
		table = nil
	}
	c := MustNew(cfg.WarmConfig(), w.Image, w.NewMemory(), w.Entry, table)
	c.Run(warm)
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	c.Cfg = cfg
	c.ResetStats()
	c.Run(run)
	return c.Snapshot()
}

// restored warms once, checkpoints, and measures from the restored core.
func restored(t *testing.T, w *workloads.Workload, cfg Config, withSlices bool, warm, run uint64) stats.Snapshot {
	t.Helper()
	var table = w.SliceTable()
	if !withSlices {
		table = nil
	}
	c := MustNew(cfg.WarmConfig(), w.Image, w.NewMemory(), w.Entry, table)
	c.Run(warm)
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	r, err := Restore(cfg, w.Image, ck, table)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	r.Run(run)
	return r.Snapshot()
}

func diffSnapshots(t *testing.T, name string, a, b stats.Snapshot) {
	t.Helper()
	if reflect.DeepEqual(a, b) {
		return
	}
	av, bv := reflect.ValueOf(a), reflect.ValueOf(b)
	for i := 0; i < av.NumField(); i++ {
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			t.Errorf("%s: snapshot field %s differs:\n  straight: %+v\n  restored: %+v",
				name, av.Type().Field(i).Name, av.Field(i).Interface(), bv.Field(i).Interface())
		}
	}
}

// TestCheckpointEquivalence: for every workload, with and without slices,
// and under a measurement-only config change (perfect branches), the
// restored measurement must be statistically identical to the straight
// warm-then-measure run.
func TestCheckpointEquivalence(t *testing.T) {
	const warm, run = 30_000, 60_000
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cfg := Config4Wide()
			diffSnapshots(t, "base", straightThrough(t, w, cfg, false, warm, run), restored(t, w, cfg, false, warm, run))
			diffSnapshots(t, "slices", straightThrough(t, w, cfg, true, warm, run), restored(t, w, cfg, true, warm, run))

			perf := Config4Wide()
			perf.Perfect = Perfect{AllBranches: true, AllLoads: true}
			diffSnapshots(t, "perfect", straightThrough(t, w, perf, false, warm, run), restored(t, w, perf, false, warm, run))
		})
	}
}

// TestCheckpointWarmConfigSharing: a checkpoint captured once serves every
// measurement config with the same warm fingerprint, concurrently.
func TestCheckpointWarmConfigSharing(t *testing.T) {
	w := workloads.VPR()
	base := Config4Wide()
	table := w.SliceTable()

	c := MustNew(base.WarmConfig(), w.Image, w.NewMemory(), w.Entry, table)
	c.Run(30_000)
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	perf := Config4Wide()
	perf.Perfect = Perfect{AllBranches: true}
	cfgs := []Config{base, perf, base, perf}

	var wg sync.WaitGroup
	snaps := make([]stats.Snapshot, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.WarmFingerprint() != base.WarmFingerprint() {
			t.Fatalf("config %d has a different warm fingerprint", i)
		}
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			r, err := Restore(cfg, w.Image, ck, table)
			if err != nil {
				t.Error(err)
				return
			}
			r.Run(60_000)
			snaps[i] = r.Snapshot()
		}(i, cfg)
	}
	wg.Wait()

	diffSnapshots(t, "base/base", snaps[0], snaps[2])
	diffSnapshots(t, "perf/perf", snaps[1], snaps[3])
	if reflect.DeepEqual(snaps[0], snaps[1]) {
		t.Error("perfect-branch run unexpectedly identical to base run")
	}
}

// TestWarmConfigFingerprint pins which fields are measurement-only.
func TestWarmConfigFingerprint(t *testing.T) {
	base := Config4Wide()

	named := base
	named.Name = "other"
	perf := base
	perf.Perfect = Perfect{AllBranches: true}
	for i, cfg := range []Config{named, perf} {
		if cfg.WarmFingerprint() != base.WarmFingerprint() {
			t.Errorf("config %d: measurement-only change altered the warm fingerprint", i)
		}
	}

	predOff := base
	predOff.SlicePredictionsOff = true
	wider := base
	wider.WindowSize++
	for i, cfg := range []Config{predOff, wider} {
		if cfg.WarmFingerprint() == base.WarmFingerprint() {
			t.Errorf("config %d: warm-relevant change did not alter the warm fingerprint", i)
		}
	}
}

// TestRestorePredictorMismatch: a checkpoint warmed under one predictor
// must never restore into a core configured for another — neither a
// different predictor kind nor the same kind at a different geometry.
func TestRestorePredictorMismatch(t *testing.T) {
	w := workloads.VPR()
	c := MustNew(Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
	c.Run(10_000)
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"bimodal", "value", "yags:4096,1024,6,12"} {
		bad := Config4Wide()
		bad.BPred = spec
		if _, err := Restore(bad, w.Image, ck, nil); err == nil {
			t.Errorf("restore under -bpred=%s accepted a yags checkpoint", spec)
		}
	}
	bad := Config4Wide()
	bad.IndirectPred = "cascaded:128,256,8,10"
	if _, err := Restore(bad, w.Image, ck, nil); err == nil {
		t.Error("restore under a resized indirect predictor accepted the checkpoint")
	}
	// Sanity: the unmodified config still restores.
	if _, err := Restore(Config4Wide(), w.Image, ck, nil); err != nil {
		t.Errorf("restore under the original config failed: %v", err)
	}
}

// TestRestoreGeometryMismatch: structural config changes must be rejected.
func TestRestoreGeometryMismatch(t *testing.T) {
	w := workloads.VPR()
	c := MustNew(Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
	c.Run(10_000)
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	bad := Config8Wide()
	if bad.ThreadContexts == Config4Wide().ThreadContexts {
		bad.ThreadContexts++
	}
	if _, err := Restore(bad, w.Image, ck, nil); err == nil {
		t.Error("restore accepted a checkpoint with mismatched thread-context count")
	}
}

// TestCheckpointAfterHalt: checkpointing a finished program must work and
// restoring it yields a core that is immediately Done.
func TestCheckpointAfterHalt(t *testing.T) {
	im, entry := buildImage(t, func(b *asm.Builder) {
		b.I(isa.LDI, 1, 0, 40)
		b.Label("loop")
		b.I(isa.ADDI, 1, 1, -1)
		b.B(isa.BGT, 1, "loop")
		b.Halt()
	})
	cfg := Config4Wide()
	c := MustNew(cfg, im, mem.New(), entry, nil)
	c.Run(1 << 40)
	if !c.Done() {
		t.Fatal("program did not halt")
	}
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !ck.MainHalted {
		t.Fatal("halted core checkpointed as running")
	}
	r, err := Restore(cfg, im, ck, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Error("restored halted core is not Done")
	}
}

func ExampleConfig_WarmFingerprint() {
	a := Config4Wide()
	a.Name = "label"
	b := Config4Wide()
	b.Perfect = Perfect{AllLoads: true}
	fmt.Println(a.WarmFingerprint() == b.WarmFingerprint())
	// Output: true
}
