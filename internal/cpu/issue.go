package cpu

import (
	"sort"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/stats"
)

// issueStage selects ready instructions oldest-first across all threads,
// subject to issue width, load/store ports, and the single complex unit
// (Table 1). Scheduling happens in the cycle an instruction executes,
// which — as the paper notes — is equivalent to a perfect load hit/miss
// predictor: dependents of a missing load are simply not scheduled early.
func (c *Core) issueStage() {
	var cand []*DynInst
	for _, t := range c.threads {
		if !t.Alive {
			continue
		}
		for _, di := range t.rob {
			if di.Dispatched && !di.Issued && !di.Squashed && c.ready(di) {
				cand = append(cand, di)
			}
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].Seq < cand[j].Seq })

	issued, memUsed, cplxUsed := 0, 0, 0
	for _, di := range cand {
		if issued == c.Cfg.IssueWidth {
			break
		}
		switch {
		case di.Static.IsMem():
			if memUsed == c.Cfg.LdStPorts {
				continue
			}
			memUsed++
		case di.Static.IsComplex():
			if cplxUsed == c.Cfg.ComplexUnits {
				continue
			}
			cplxUsed++
		}
		c.issue(di)
		issued++
	}
}

// ready reports whether all of di's producers have completed and, for
// loads, whether older stores are disambiguated.
func (c *Core) ready(di *DynInst) bool {
	for i := 0; i < di.ndeps; i++ {
		d := di.deps[i]
		if !d.Completed || d.CompleteCycle > c.now {
			return false
		}
	}
	if di.Static.IsLoad() && di.Thread.IsMain {
		// Real disambiguation: every older store's address must be known
		// (i.e., the store must have issued).
		for _, s := range di.Thread.pendingStores {
			if s.Seq < di.Seq && !s.Squashed && !s.Issued {
				return false
			}
		}
	}
	return true
}

// issue starts execution and computes the completion time.
func (c *Core) issue(di *DynInst) {
	di.Issued = true
	di.IssueCycle = c.now
	in := di.Static

	switch {
	case in.IsLoad():
		di.CompleteCycle = c.now + c.loadLatency(di)
	case in.IsStore():
		// Address generation; data heads to memory at retire.
		di.CompleteCycle = c.now + 1
		c.unpend(di)
	case in.IsComplex():
		lat := c.Cfg.MulLatency
		if in.Op == isa.DIV {
			lat = c.Cfg.DivLatency
		}
		di.CompleteCycle = c.now + lat
	default:
		di.CompleteCycle = c.now + 1
	}
}

// unpend removes an issued store from the disambiguation list.
func (c *Core) unpend(di *DynInst) {
	ps := di.Thread.pendingStores
	for i, s := range ps {
		if s == di {
			di.Thread.pendingStores = append(ps[:i:i], ps[i+1:]...)
			return
		}
	}
}

// loadLatency runs the load through forwarding, the perfect-load modes,
// and the cache hierarchy.
func (c *Core) loadLatency(di *DynInst) uint64 {
	latL1 := c.Cfg.Mem.LatL1
	if di.Out.Fault {
		return latL1
	}
	if di.Thread.IsMain && c.Cfg.Perfect.CoversLoad(di.PC) {
		di.PerfectLoad = true
		return latL1
	}

	// Store→load forwarding from in-flight stores of the same thread.
	if di.Thread.IsMain {
		if s := c.forwardingStore(di); s != nil {
			di.forwarded = true
			lat := latL1
			if s.CompleteCycle > c.now {
				lat = s.CompleteCycle - c.now + 1
			}
			return lat
		}
	}

	kind := cache.KindDemand
	if !di.Thread.IsMain {
		kind = cache.KindHelper
	}
	r := c.hier.Access(di.Out.Addr, false, kind, c.now)
	di.MemResult = r
	if kind == cache.KindHelper && (r.Level == cache.LevelL2 || r.Level == cache.LevelMem) {
		// The helper load actually moved a line toward the L1 — a
		// "prefetch performed" in Table 4's terms.
		c.S.SlicePrefetches++
	}
	return r.Latency
}

// forwardingStore returns the youngest older in-flight store overlapping
// the load, if any.
func (c *Core) forwardingStore(di *DynInst) *DynInst {
	var best *DynInst
	for _, s := range di.Thread.rob {
		if s.Seq >= di.Seq {
			break
		}
		if !s.Static.IsStore() || s.Squashed || !s.Issued || s.Out.Fault {
			continue
		}
		if overlaps(s.Out.Addr, s.Out.Size, di.Out.Addr, di.Out.Size) {
			if best == nil || s.Seq > best.Seq {
				best = s
			}
		}
	}
	return best
}

func overlaps(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

// completeStage finalizes instructions whose completion time arrived:
// branch resolution (with squash and redirect), PGI value routing to the
// correlator, and late-prediction early resolution (§5.3).
func (c *Core) completeStage() {
	var done []*DynInst
	for _, t := range c.threads {
		if !t.Alive {
			continue
		}
		for _, di := range t.rob {
			if di.Issued && !di.Completed && !di.Squashed && di.CompleteCycle <= c.now {
				done = append(done, di)
			}
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].Seq < done[j].Seq })

	for _, di := range done {
		if di.Squashed {
			continue // an older completion this cycle squashed it
		}
		di.Completed = true
		if di.Static.IsCtrl() {
			c.resolveCtrl(di)
		}
		if di.IsPGI && di.AllocPred != nil {
			c.fillPGI(di)
		}
	}
}

// resolveCtrl handles branch resolution at execute.
func (c *Core) resolveCtrl(di *DynInst) {
	t := di.Thread
	if di.NoTargetPred {
		// The front end stalled for this target; deliver it.
		c.squashAfter(di)
		t.PC = di.actualNextPC()
		t.waitResolve = nil
		t.Fetching = true
		return
	}
	if !di.Mispredicted {
		return
	}
	c.squashAfter(di)
	// Correct the speculative front-end state past this branch.
	if di.Static.IsCondBranch() {
		t.Hist = pushHist(di.HistBefore, di.Out.Taken)
	}
	if di.Static.IsIndirectCtrl() && !di.Static.IsRet() {
		t.Path = bpred.PushPath(di.PathBefore, di.Out.Target)
	}
	di.HistAfter = t.Hist
	di.PathAfter = t.Path
	t.PC = di.actualNextPC()
	t.Fetching = true
	// The branch is now resolved; do not re-trigger recovery.
	di.PredTaken = di.Out.Taken
	di.PredTarget = di.Out.Target
}

// fillPGI routes a computed prediction to the correlator and performs
// early resolution when a late prediction contradicts the direction its
// consumer fetched with.
func (c *Core) fillPGI(di *DynInst) {
	val := di.Out.Value
	dir := val != 0
	if di.PGIRef.PGI.TakenIfZero {
		dir = val == 0
	}
	res := c.corr.Fill(di.AllocPred, dir)
	if res.Applied {
		// A helper actually produced a prediction — Table 4's
		// "predictions generated", as opposed to predictions consumed.
		c.S.PredsGenerated++
	}
	if !res.LateMismatch {
		return
	}
	consumer, ok := res.Consumer.(*DynInst)
	if !ok || consumer.Squashed || consumer.Completed || consumer.Retired {
		return
	}
	// Early resolution: redirect the consumer's fetch to the slice's
	// direction before the branch executes. Slices are not necessarily
	// correct, so this can introduce extra squashes; those are repaired
	// when the branch resolves (§5.3).
	c.S.EarlyResolutions++
	dirs := "not-taken"
	if dir {
		dirs = "taken"
	}
	c.emit(stats.Event{Kind: stats.EvEarlyResolve, PC: consumer.PC, Dir: dirs})
	t := consumer.Thread
	c.squashAfter(consumer)
	consumer.PredTaken = dir
	consumer.Mispredicted = dir != consumer.Out.Taken
	t.Hist = pushHist(consumer.HistBefore, dir)
	consumer.HistAfter = t.Hist
	t.PC = consumer.predictedNextPC()
	t.Fetching = true
	c.corr.RedirectUse(consumer.UsedPred, dir)
}
