package cpu

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/stats"
)

// issueStage selects ready instructions oldest-first across all threads,
// subject to issue width, load/store ports, and the single complex unit
// (Table 1). Scheduling happens in the cycle an instruction executes,
// which — as the paper notes — is equivalent to a perfect load hit/miss
// predictor: dependents of a missing load are simply not scheduled early.
//
// The ready list is maintained incrementally (sched.go): it holds exactly
// the dispatched, unissued instructions whose producers have completed and
// whose older stores have issued, already in seq order — the same set the
// old per-cycle window scan collected and sorted.
func (c *Core) issueStage() {
	issued, memUsed, cplxUsed := 0, 0, 0
	kept := c.ready[:0]
	for i, n := 0, len(c.ready); i < n; i++ {
		di := c.ready[i]
		if issued == c.Cfg.IssueWidth {
			kept = append(kept, di)
			continue
		}
		switch {
		case di.Static.IsMem():
			if memUsed == c.Cfg.LdStPorts {
				kept = append(kept, di)
				continue
			}
			memUsed++
		case di.Static.IsComplex():
			if cplxUsed == c.Cfg.ComplexUnits {
				kept = append(kept, di)
				continue
			}
			cplxUsed++
		}
		di.inReady = false
		c.issue(di)
		issued++
	}
	for i := len(kept); i < len(c.ready); i++ {
		c.ready[i] = nil
	}
	c.ready = kept

	// Loads whose last blocking store issued this cycle become ready for
	// the *next* cycle, as under the old scan.
	for i, w := range c.storeWoken {
		c.storeWoken[i] = nil
		if !w.Squashed {
			c.readyInsert(w)
		}
	}
	c.storeWoken = c.storeWoken[:0]
}

// issue starts execution and computes the completion time.
func (c *Core) issue(di *DynInst) {
	di.Issued = true
	di.IssueCycle = c.now
	in := di.Static

	switch {
	case in.IsLoad():
		di.CompleteCycle = c.now + c.loadLatency(di)
	case in.IsStore():
		// Address generation; data heads to memory at retire.
		di.CompleteCycle = c.now + 1
		c.unpend(di)
		c.wakeStoreWaiters(di)
	case in.IsComplex():
		lat := c.Cfg.MulLatency
		if in.Op == isa.DIV {
			lat = c.Cfg.DivLatency
		}
		di.CompleteCycle = c.now + lat
	default:
		di.CompleteCycle = c.now + 1
	}
	c.calFile(di)
}

// unpend removes an issued store from the disambiguation list, in place:
// the old three-index append forced a fresh backing array per store.
func (c *Core) unpend(di *DynInst) {
	ps := di.Thread.pendingStores
	for i, s := range ps {
		if s == di {
			last := len(ps) - 1
			copy(ps[i:], ps[i+1:])
			ps[last] = nil
			di.Thread.pendingStores = ps[:last]
			return
		}
	}
}

// loadLatency runs the load through forwarding, the perfect-load modes,
// and the cache hierarchy.
func (c *Core) loadLatency(di *DynInst) uint64 {
	latL1 := c.Cfg.Mem.LatL1
	if di.Out.Fault {
		return latL1
	}
	if di.Thread.IsMain && c.Cfg.Perfect.CoversLoad(di.PC) {
		di.PerfectLoad = true
		return latL1
	}

	// Store→load forwarding from in-flight stores of the same thread.
	if di.Thread.IsMain {
		if s := c.forwardingStore(di); s != nil {
			di.forwarded = true
			lat := latL1
			if s.CompleteCycle > c.now {
				lat = s.CompleteCycle - c.now + 1
			}
			return lat
		}
	}

	kind := cache.KindDemand
	if !di.Thread.IsMain {
		kind = cache.KindHelper
	}
	p := di.Thread.prog
	r := c.hier.Access(p.physAddr(di.Out.Addr), false, kind, c.now)
	di.MemResult = r
	if kind == cache.KindHelper && (r.Level == cache.LevelL2 || r.Level == cache.LevelMem) {
		// The helper load actually moved a line toward the L1 — a
		// "prefetch performed" in Table 4's terms.
		p.S.SlicePrefetches++
	}
	return r.Latency
}

// forwardingStore returns the youngest older in-flight store overlapping
// the load, if any.
func (c *Core) forwardingStore(di *DynInst) *DynInst {
	var best *DynInst
	rob := &di.Thread.rob
	for i, n := 0, rob.len(); i < n; i++ {
		s := rob.at(i)
		if s.Seq >= di.Seq {
			break
		}
		if !s.Static.IsStore() || s.Squashed || !s.Issued || s.Out.Fault {
			continue
		}
		if overlaps(s.Out.Addr, s.Out.Size, di.Out.Addr, di.Out.Size) {
			if best == nil || s.Seq > best.Seq {
				best = s
			}
		}
	}
	return best
}

func overlaps(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

// completeStage finalizes instructions whose completion time arrived:
// branch resolution (with squash and redirect), PGI value routing to the
// correlator, and late-prediction early resolution (§5.3).
func (c *Core) completeStage() {
	// The calendar delivers exactly the instructions whose CompleteCycle
	// arrived (issued, unsquashed), already merged into seq order by
	// insertBySeq — the same set and order the old per-thread ROB scan
	// collected.
	done := c.calDrain(c.doneList[:0])

	for _, di := range done {
		if di.Squashed {
			continue // an older completion this cycle squashed it
		}
		di.Completed = true
		c.wakeWaiters(di)
		if di.Static.IsCtrl() {
			c.resolveCtrl(di)
		}
		if di.IsPGI && di.AllocPred != nil {
			c.fillPGI(di)
		}
	}
	for i := range done {
		done[i] = nil
	}
	c.doneList = done[:0]
}

// resolveCtrl handles branch resolution at execute.
func (c *Core) resolveCtrl(di *DynInst) {
	t := di.Thread
	if di.NoTargetPred {
		// The front end stalled for this target; deliver it. The path
		// push predictCtrl deferred (no prediction existed to push)
		// happens here with the *resolved* target, so later indirect
		// predictions key on history a real target can match — pushing
		// the 0 sentinel at fetch polluted the path for the rest of the
		// run.
		c.squashAfter(di)
		if di.Static.IsIndirectCtrl() && !di.Static.IsRet() {
			t.Path = bpred.PushPath(di.PathBefore, di.Out.Target)
			di.PathAfter = t.Path
		}
		t.PC = di.actualNextPC()
		t.waitResolve = nil
		t.Fetching = true
		return
	}
	if !di.Mispredicted {
		return
	}
	c.squashAfter(di)
	// Correct the speculative front-end state past this branch.
	if di.Static.IsCondBranch() {
		t.Hist = pushHist(di.HistBefore, di.Out.Taken)
	}
	if di.Static.IsIndirectCtrl() && !di.Static.IsRet() {
		t.Path = bpred.PushPath(di.PathBefore, di.Out.Target)
	}
	di.HistAfter = t.Hist
	di.PathAfter = t.Path
	t.PC = di.actualNextPC()
	t.Fetching = true
	// The branch is now resolved; do not re-trigger recovery.
	di.PredTaken = di.Out.Taken
	di.PredTarget = di.Out.Target
}

// fillPGI routes a computed prediction to the correlator and performs
// early resolution when a late prediction contradicts the direction its
// consumer fetched with.
func (c *Core) fillPGI(di *DynInst) {
	p := di.Thread.prog
	val := di.Out.Value
	dir := val != 0
	if di.PGIRef.PGI.TakenIfZero {
		dir = val == 0
	}
	res := p.corr.Fill(di.AllocPred, dir)
	if res.Applied {
		// A helper actually produced a prediction — Table 4's
		// "predictions generated", as opposed to predictions consumed.
		p.S.PredsGenerated++
	}
	if !res.LateMismatch {
		return
	}
	consumer, ok := res.Consumer.(*DynInst)
	if !ok || consumer.Squashed || consumer.Completed || consumer.Retired {
		return
	}
	// Early resolution: redirect the consumer's fetch to the slice's
	// direction before the branch executes. Slices are not necessarily
	// correct, so this can introduce extra squashes; those are repaired
	// when the branch resolves (§5.3).
	p.S.EarlyResolutions++
	dirs := "not-taken"
	if dir {
		dirs = "taken"
	}
	c.emit(stats.Event{Kind: stats.EvEarlyResolve, PC: consumer.PC, Dir: dirs})
	t := consumer.Thread
	c.squashAfter(consumer)
	consumer.PredTaken = dir
	consumer.Mispredicted = dir != consumer.Out.Taken
	t.Hist = pushHist(consumer.HistBefore, dir)
	consumer.HistAfter = t.Hist
	t.PC = consumer.predictedNextPC()
	t.Fetching = true
	p.corr.RedirectUse(consumer.UsedPred, dir)
}
