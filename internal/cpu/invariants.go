package cpu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/slicehw"
)

// This file implements the core's structural invariant checker — the
// oracle's second half. Where the lockstep diff validates the *stream*
// the core retires, CheckInvariants validates the *bookkeeping* the
// zero-alloc machinery maintains: pool recycling, ring-buffer occupancy
// vs. window accounting, the O(1)-unlinked register-writer chains, the
// committed-store queue, the incremental scheduler's ready list, and the
// correlator's binding liveness. It runs per-N-cycles when the oracle is
// attached (and from tests), never from the bare cycle loop, so it
// allocates freely and favors clarity.

// CheckInvariants validates the core's structural invariants and returns
// the first violation found, or nil. It may be called between cycles or
// from a RetireObserver (the instruction currently being retired is
// mid-release and is exempted from liveness checks).
func (c *Core) CheckInvariants() error {
	// Window accounting vs. actual ring occupancy.
	helperROB, mainROB := 0, 0
	for _, t := range c.threads {
		if t.IsMain {
			mainROB += t.rob.len()
		} else {
			helperROB += t.rob.len()
		}
	}
	wantWindow := mainROB
	if !c.Cfg.DedicatedSliceResources {
		wantWindow += helperROB
	}
	if c.window != wantWindow {
		return fmt.Errorf("cpu: window=%d but ROB occupancy says %d (main %d, helper %d, dedicated=%t)",
			c.window, wantWindow, mainROB, helperROB, c.Cfg.DedicatedSliceResources)
	}
	if c.helperWindow != helperROB {
		return fmt.Errorf("cpu: helperWindow=%d but helper ROBs hold %d", c.helperWindow, helperROB)
	}

	// Pool sanity: every free-listed instruction was released through
	// retirement or squash, and holds no scheduler membership.
	pooled := make(map[*DynInst]bool, len(c.pool))
	for i, d := range c.pool {
		if d == nil {
			return fmt.Errorf("cpu: pool slot %d is nil", i)
		}
		if !d.Retired && !d.Squashed {
			return fmt.Errorf("cpu: pooled instruction seq=%d pc=%#x was never retired or squashed", d.Seq, d.PC)
		}
		if d.inReady {
			return fmt.Errorf("cpu: pooled instruction seq=%d pc=%#x still marked in the ready list", d.Seq, d.PC)
		}
		pooled[d] = true
	}

	for _, t := range c.threads {
		if err := c.checkThread(t, pooled); err != nil {
			return err
		}
	}

	// Ready list: seq-sorted, every entry dispatched, unissued, wakeup-free.
	var prev *DynInst
	for i, d := range c.ready {
		switch {
		case d == nil:
			return fmt.Errorf("cpu: ready[%d] is nil", i)
		case pooled[d]:
			return fmt.Errorf("cpu: ready[%d] (seq=%d) is a pooled instruction", i, d.Seq)
		case !d.inReady:
			return fmt.Errorf("cpu: ready[%d] (seq=%d) not marked inReady", i, d.Seq)
		case !d.Dispatched || d.Issued || d.Squashed || d.Retired:
			return fmt.Errorf("cpu: ready[%d] (seq=%d) in impossible state disp=%t issued=%t squashed=%t retired=%t",
				i, d.Seq, d.Dispatched, d.Issued, d.Squashed, d.Retired)
		case d.waitCount != 0:
			return fmt.Errorf("cpu: ready[%d] (seq=%d) still has %d pending wakeups", i, d.Seq, d.waitCount)
		case prev != nil && prev.Seq >= d.Seq:
			return fmt.Errorf("cpu: ready list out of order at %d (seq %d then %d)", i, prev.Seq, d.Seq)
		}
		prev = d
	}

	// Committed-store queues: each program's in-flight main-thread stores
	// with a recorded memory effect, in fetch order.
	for pi, prog := range c.progs {
		var prevStore *DynInst
		for i := 0; i < prog.mainStores.len(); i++ {
			d := prog.mainStores.at(i)
			switch {
			case d == nil:
				return fmt.Errorf("cpu: p%d mainStores[%d] is nil", pi, i)
			case pooled[d]:
				return fmt.Errorf("cpu: p%d mainStores[%d] (seq=%d) is a pooled instruction", pi, i, d.Seq)
			case !d.Thread.IsMain:
				return fmt.Errorf("cpu: p%d mainStores[%d] (seq=%d) belongs to a helper thread", pi, i, d.Seq)
			case d.Thread.prog != prog:
				return fmt.Errorf("cpu: p%d mainStores[%d] (seq=%d) belongs to program %d", pi, i, d.Seq, d.Thread.ProgIndex())
			case !d.Static.IsStore():
				return fmt.Errorf("cpu: p%d mainStores[%d] (seq=%d, pc=%#x) is not a store", pi, i, d.Seq, d.PC)
			case !d.undoMemValid:
				return fmt.Errorf("cpu: p%d mainStores[%d] (seq=%d) has no recorded memory effect", pi, i, d.Seq)
			case d.Squashed:
				return fmt.Errorf("cpu: p%d mainStores[%d] (seq=%d) is squashed but still queued", pi, i, d.Seq)
			case d.Retired && d != c.retiring:
				return fmt.Errorf("cpu: p%d mainStores[%d] (seq=%d) is retired but still queued", pi, i, d.Seq)
			case prevStore != nil && prevStore.Seq >= d.Seq:
				return fmt.Errorf("cpu: p%d mainStores out of order at %d (seq %d then %d)", pi, i, prevStore.Seq, d.Seq)
			}
			prevStore = d
		}
	}

	// Correlator structure, plus binding liveness against the pool: every
	// bound Consumer must be a live in-flight instruction that still
	// points back at its prediction. Each program's correlator is checked
	// against the shared pool.
	for _, prog := range c.progs {
		if prog.corr == nil {
			continue
		}
		if err := prog.corr.CheckInvariants(); err != nil {
			return err
		}
		var corrErr error
		prog.corr.ForEachLivePred(func(p *slicehw.Pred) {
			if corrErr != nil || p.Consumer == nil {
				return
			}
			d, ok := p.Consumer.(*DynInst)
			if !ok {
				corrErr = fmt.Errorf("cpu: prediction for branch %#x bound to a non-instruction consumer", p.BranchPC)
				return
			}
			if d == c.retiring {
				return // mid-retirement; DropConsumer runs at release
			}
			if pooled[d] || d.Retired || d.Squashed {
				corrErr = fmt.Errorf("cpu: prediction for branch %#x bound to dead instruction seq=%d (pooled=%t retired=%t squashed=%t)",
					p.BranchPC, d.Seq, pooled[d], d.Retired, d.Squashed)
				return
			}
			if d.UsedPred != p {
				corrErr = fmt.Errorf("cpu: prediction for branch %#x bound to seq=%d which does not point back at it", p.BranchPC, d.Seq)
			}
		})
		if corrErr != nil {
			return corrErr
		}
	}
	return nil
}

// checkThread validates one thread's rings and register-writer chains.
func (c *Core) checkThread(t *Thread, pooled map[*DynInst]bool) error {
	checkRing := func(name string, r *instRing, dispatched bool) (last *DynInst, err error) {
		var prev *DynInst
		for i := 0; i < r.len(); i++ {
			d := r.at(i)
			switch {
			case d == nil:
				return nil, fmt.Errorf("cpu: t%d %s[%d] is nil", t.ID, name, i)
			case pooled[d]:
				return nil, fmt.Errorf("cpu: t%d %s[%d] (seq=%d) is a pooled instruction", t.ID, name, i, d.Seq)
			case d.Thread != t:
				return nil, fmt.Errorf("cpu: t%d %s[%d] (seq=%d) belongs to thread %d", t.ID, name, i, d.Seq, d.Thread.ID)
			case d.Retired || d.Squashed:
				return nil, fmt.Errorf("cpu: t%d %s[%d] (seq=%d) retired=%t squashed=%t but still queued",
					t.ID, name, i, d.Seq, d.Retired, d.Squashed)
			case d.Dispatched != dispatched:
				return nil, fmt.Errorf("cpu: t%d %s[%d] (seq=%d) dispatched=%t", t.ID, name, i, d.Seq, d.Dispatched)
			case d.Issued && !d.Dispatched, d.Completed && !d.Issued:
				return nil, fmt.Errorf("cpu: t%d %s[%d] (seq=%d) stage flags out of order (disp=%t issued=%t completed=%t)",
					t.ID, name, i, d.Seq, d.Dispatched, d.Issued, d.Completed)
			case prev != nil && prev.Seq >= d.Seq:
				return nil, fmt.Errorf("cpu: t%d %s out of order at %d (seq %d then %d)", t.ID, name, i, prev.Seq, d.Seq)
			}
			prev = d
		}
		return prev, nil
	}
	lastROB, err := checkRing("rob", &t.rob, true)
	if err != nil {
		return err
	}
	if _, err := checkRing("fetchq", &t.fetchq, false); err != nil {
		return err
	}
	if lastROB != nil && t.fetchq.len() > 0 && t.fetchq.front().Seq <= lastROB.Seq {
		return fmt.Errorf("cpu: t%d fetchq front seq=%d not younger than ROB back seq=%d",
			t.ID, t.fetchq.front().Seq, lastROB.Seq)
	}

	// Writer chains: walking lastWriter[r] through prevWriter must visit
	// live same-thread writers of r in strictly decreasing fetch order,
	// with intact nextWriter backlinks, and terminate within the thread's
	// in-flight population (anything longer is a cycle).
	// +1: a mid-retirement instruction is already popped from the ROB but
	// may still head a chain until releaseRetired unlinks it.
	inflight := t.inflight() + 1
	for r := 0; r < isa.NumRegs; r++ {
		steps := 0
		for w := t.lastWriter[r]; w != nil; w = w.prevWriter {
			if steps++; steps > inflight {
				return fmt.Errorf("cpu: t%d writer chain for r%d exceeds %d in-flight entries (cycle after the O(1) unlink?)",
					t.ID, r, inflight)
			}
			if pooled[w] {
				return fmt.Errorf("cpu: t%d writer chain for r%d reaches pooled instruction seq=%d", t.ID, r, w.Seq)
			}
			if w.Thread != t {
				return fmt.Errorf("cpu: t%d writer chain for r%d reaches thread-%d instruction seq=%d", t.ID, r, w.Thread.ID, w.Seq)
			}
			if (w.Retired && w != c.retiring) || w.Squashed {
				return fmt.Errorf("cpu: t%d writer chain for r%d reaches dead instruction seq=%d (retired=%t squashed=%t)",
					t.ID, r, w.Seq, w.Retired, w.Squashed)
			}
			if dest, ok := w.Static.Dest(); !ok || dest != isa.Reg(r) {
				return fmt.Errorf("cpu: t%d writer chain for r%d reaches seq=%d which writes a different register", t.ID, r, w.Seq)
			}
			if p := w.prevWriter; p != nil {
				if p.nextWriter != w {
					return fmt.Errorf("cpu: t%d writer chain for r%d: seq=%d's prevWriter (seq=%d) does not link back",
						t.ID, r, w.Seq, p.Seq)
				}
				if p.Seq >= w.Seq {
					return fmt.Errorf("cpu: t%d writer chain for r%d not age-ordered (seq %d then %d)", t.ID, r, w.Seq, p.Seq)
				}
			}
		}
	}
	return nil
}
