package cpu

import "repro/internal/stats"

// squashAfter removes every instruction of di's thread younger than di,
// undoing functional side effects (youngest first), correlator actions,
// and helper forks. The thread's speculative front-end state is restored
// from di's post-instruction checkpoint.
func (c *Core) squashAfter(di *DynInst) {
	t := di.Thread

	squashed := uint64(0)
	// The fetch queue holds the youngest instructions.
	for i := len(t.fetchq) - 1; i >= 0; i-- {
		if t.fetchq[i].Seq <= di.Seq {
			break
		}
		c.squashInst(t.fetchq[i])
		t.fetchq = t.fetchq[:i]
		squashed++
	}
	for i := len(t.rob) - 1; i >= 0; i-- {
		if t.rob[i].Seq <= di.Seq {
			break
		}
		c.squashInst(t.rob[i])
		t.rob = t.rob[:i]
		squashed++
	}
	if squashed > 0 {
		c.emit(stats.Event{Kind: stats.EvSquash, PC: di.PC, N: squashed})
	}

	// Drop squashed stores from the disambiguation list.
	ps := t.pendingStores[:0]
	for _, s := range t.pendingStores {
		if !s.Squashed {
			ps = append(ps, s)
		}
	}
	t.pendingStores = ps

	// Restore speculative front-end state to just after di.
	t.Hist = di.HistAfter
	t.Path = di.PathAfter
	t.RAS.Restore(di.RASAfter)
	t.LoopCount = di.LoopAfter
	t.icStallUntil = 0
	if t.waitResolve != nil && t.waitResolve.Seq > di.Seq {
		t.waitResolve = nil
	}
}

// squashInst tears down one instruction: functional undo, correlator undo
// (exact mis-speculation recovery, §5.2), and squashing of helper threads
// it forked.
func (c *Core) squashInst(x *DynInst) {
	if x.Squashed {
		return
	}
	x.Squashed = true
	x.undo(c)

	if c.corr != nil {
		if x.UsedPred != nil {
			c.corr.UndoUse(x.UsedPred)
		}
		for i := len(x.KillRecs) - 1; i >= 0; i-- {
			c.corr.UndoKill(x.KillRecs[i])
		}
		if x.AllocPred != nil {
			c.corr.UndoAllocate(x.AllocPred)
		}
	}
	for _, h := range x.Forked {
		c.squashHelper(h)
	}
	if x.Dispatched {
		if x.Thread.IsMain || !c.Cfg.DedicatedSliceResources {
			c.window--
		}
		if !x.Thread.IsMain {
			c.helperWindow--
		}
	}
	if x.Thread.IsMain {
		c.S.MainWrongPath++
	}
}

// squashHelper kills a helper thread whose fork point was squashed: all of
// its instructions are undone, its correlator instance (and thus all its
// predictions) removed, and the context freed.
func (c *Core) squashHelper(h *Thread) {
	if !h.Alive {
		return
	}
	c.S.ForksSquashed++
	if h.Slice != nil {
		c.emit(stats.Event{Kind: stats.EvForkSquash, Slice: h.Slice.Index})
	}
	for i := len(h.fetchq) - 1; i >= 0; i-- {
		c.squashInst(h.fetchq[i])
	}
	for i := len(h.rob) - 1; i >= 0; i-- {
		c.squashInst(h.rob[i])
	}
	if c.corr != nil {
		c.corr.RemoveInstance(h.Instance)
	}
	h.fetchq = h.fetchq[:0]
	h.rob = h.rob[:0]
	h.Alive = false
	h.Fetching = false
}
