package cpu

import "repro/internal/stats"

// squashAfter removes every instruction of di's thread younger than di,
// undoing functional side effects (youngest first), correlator actions,
// and helper forks. The thread's speculative front-end state is restored
// from di's post-instruction checkpoint.
func (c *Core) squashAfter(di *DynInst) {
	t := di.Thread

	squashed := uint64(0)
	// The fetch queue holds the youngest instructions.
	for t.fetchq.len() > 0 && t.fetchq.back().Seq > di.Seq {
		c.squashInst(t.fetchq.popBack())
		squashed++
	}
	for t.rob.len() > 0 && t.rob.back().Seq > di.Seq {
		c.squashInst(t.rob.popBack())
		squashed++
	}
	if squashed > 0 && c.tracer != nil {
		c.emit(stats.Event{Kind: stats.EvSquash, PC: di.PC, N: squashed})
	}

	// Drop squashed stores from the disambiguation list (their Squashed
	// flags stay readable until the pool reuses them — see pool.go).
	ps := t.pendingStores
	kept := ps[:0]
	for _, s := range ps {
		if !s.Squashed {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(ps); i++ {
		ps[i] = nil
	}
	t.pendingStores = kept

	// Restore speculative front-end state to just after di.
	t.Hist = di.HistAfter
	t.Path = di.PathAfter
	t.RAS.Restore(di.RASAfter)
	t.LoopCount = di.LoopAfter
	t.icStallUntil = 0
	if t.waitResolve != nil && t.waitResolve.Seq > di.Seq {
		t.waitResolve = nil
	}
}

// squashInst tears down one instruction: functional undo, correlator undo
// (exact mis-speculation recovery, §5.2), and squashing of helper threads
// it forked.
func (c *Core) squashInst(x *DynInst) {
	if x.Squashed {
		return
	}
	x.Squashed = true
	p := x.Thread.prog
	// Capture before undo() clears the record: a noted store must leave
	// the committed-store queue.
	notedStore := x.Thread.IsMain && x.undoMemValid
	x.undo(c)

	if p.corr != nil {
		if x.UsedPred != nil {
			p.corr.UndoUse(x.UsedPred)
		}
		for i := len(x.KillRecs) - 1; i >= 0; i-- {
			p.corr.UndoKill(x.KillRecs[i])
		}
		if x.AllocPred != nil {
			p.corr.UndoAllocate(x.AllocPred)
		}
	}
	for _, h := range x.Forked {
		c.squashHelper(h)
	}
	if x.Dispatched {
		if x.Thread.IsMain || !c.Cfg.DedicatedSliceResources {
			c.window--
		}
		if !x.Thread.IsMain {
			c.helperWindow--
		}
	}
	if x.Thread.IsMain {
		p.S.MainWrongPath++
	}
	c.deregister(x)
	if notedStore {
		p.dropSquashedStore(x)
	}
	c.releaseSquashed(x)
}

// squashHelper kills a helper thread whose fork point was squashed: all of
// its instructions are undone, its correlator instance (and thus all its
// predictions) removed, and the context freed.
func (c *Core) squashHelper(h *Thread) {
	if !h.Alive {
		return
	}
	p := h.prog
	p.S.ForksSquashed++
	if h.Slice != nil {
		c.emit(stats.Event{Kind: stats.EvForkSquash, Slice: h.Slice.Index})
	}
	for h.fetchq.len() > 0 {
		c.squashInst(h.fetchq.popBack())
	}
	for h.rob.len() > 0 {
		c.squashInst(h.rob.popBack())
	}
	if p.corr != nil {
		p.corr.RemoveInstance(h.Instance)
	}
	h.Alive = false
	h.Fetching = false
}
