package cpu

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// FunctionalWarm fast-forwards through a warm region without the detailed
// pipeline: it interprets instructions architecturally (one per cycle) and
// touch-warms the structures whose contents dominate measurement accuracy —
// caches, the stream prefetcher, the branch predictors, and the RAS — with
// the committed-path updates the detailed core would apply at retire. The
// result is a restorable Checkpoint.
//
// Accuracy caveats (why this is opt-in, not the default):
//   - Timing is 1 IPC by construction, so the cycle counter, LRU clocks,
//     and bus cursor in the checkpoint are compressed relative to detailed
//     warm; measurement from a functional checkpoint is *not* behavior-
//     identical, only statistically close (see the harness IPC-tolerance
//     test for the documented bound).
//   - No wrong-path execution: caches miss the pollution and prefetch
//     training that speculative fetch would have produced.
//   - No slices run, so the correlator and fork-confidence table start the
//     measurement cold (Restore accepts the nil states).
func FunctionalWarm(cfg Config, image *asm.Image, memory *mem.Memory, entry uint64, maxInsts uint64, sliceTable *slicehw.Table) (*Checkpoint, error) {
	// Build the core first: it owns the hierarchy/predictor geometry the
	// checkpoint must match, and its Quiesce drains the write buffer and
	// in-flight prefetches the touch-warming leaves behind.
	c, err := New(cfg.WarmConfig(), image, memory, entry, sliceTable)
	if err != nil {
		return nil, err
	}

	t := c.main
	ctx := funcCtx{regs: &t.Regs, m: memory}
	var (
		now     uint64
		retired uint64
		pc      = entry
		halted  bool
	)
	for retired < maxInsts {
		in, ok := image.At(pc)
		if !ok {
			return nil, fmt.Errorf("cpu: functional warm fell off the image at %#x after %d instructions", pc, retired)
		}
		now++
		c.hier.FetchAccess(pc, now)
		out := isa.Execute(in, pc, ctx)
		retired++

		switch {
		case out.IsMem && !out.IsStore:
			c.hier.Access(out.Addr, false, cache.KindDemand, now)
		case out.IsMem && out.IsStore:
			// ctx.Store already wrote memory; retire the line through the
			// write buffer, draining time forward if it is full.
			for !c.hier.StoreRetire(out.Addr, now) {
				now++
				c.hier.Tick(now)
			}
		}

		switch {
		case in.IsCondBranch():
			c.yags.Update(pc, t.Hist, out.Taken)
			t.Hist = pushHist(t.Hist, out.Taken)
		case in.Op == isa.JMP || in.Op == isa.CALLR:
			c.indirect.Update(pc, t.Path, out.Target)
			t.Path = bpred.PushPath(t.Path, out.Target)
		}
		if in.IsCall() {
			t.RAS.Push(pc + isa.InstBytes)
			// Nothing speculates during functional warm, so no checkpoint
			// taken before this push will ever be restored; dropping the
			// journal immediately keeps it from growing with the region.
			t.RAS.CommitAll()
		} else if in.IsRet() {
			t.RAS.Pop()
		}

		c.hier.Tick(now)
		if out.Halt {
			halted = true
			break
		}
		pc = out.NextPC(pc)
	}

	c.now = now
	c.mainHalted = halted
	c.S.MainRetired = retired
	t.PC = pc
	t.Fetching = !halted
	// Checkpoint quiesces first, which lands the in-flight fills and
	// prefetch arrivals the touch loop queued.
	return c.Checkpoint()
}
