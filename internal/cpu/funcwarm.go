package cpu

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/isa/compiled"
	"repro/internal/mem"
	"repro/internal/slicehw"
)

// funcEngine is the execution seam of the functional warm loop: one
// architectural instruction per Step, with a full isa.Outcome. Both the
// compiled engine (compiled.Machine) and the decode-dispatch interpreter
// (interpEngine) satisfy it, so the two warm modes share the entire
// structure-touching loop and can be diffed checkpoint-for-checkpoint.
type funcEngine interface {
	PC() uint64
	Step(out *isa.Outcome) (isa.Op, error)
}

// interpEngine adapts image.At + isa.Execute to the funcEngine seam. It
// is the differential reference for the compiled engine's warm path.
type interpEngine struct {
	image *asm.Image
	ctx   funcCtx
	pc    uint64
}

func (e *interpEngine) PC() uint64 { return e.pc }

func (e *interpEngine) Step(out *isa.Outcome) (isa.Op, error) {
	in, ok := e.image.At(e.pc)
	if !ok {
		return isa.NOP, &compiled.OffImageError{PC: e.pc}
	}
	*out = isa.Execute(in, e.pc, e.ctx)
	if !out.Halt {
		e.pc = out.NextPC(e.pc)
	}
	return in.Op, nil
}

// FunctionalWarm fast-forwards through a warm region without the detailed
// pipeline: it executes instructions architecturally (one per cycle, on
// the compiled engine) and touch-warms the structures whose contents
// dominate measurement accuracy — caches, the stream prefetcher, the
// branch predictors, and the RAS — with the committed-path updates the
// detailed core would apply at retire. The result is a restorable
// Checkpoint.
//
// Faulting main-thread accesses follow the detailed core's semantics:
// architecturally the load reads zero / the store is dropped and execution
// continues, and microarchitecturally the faulting access never touches
// the cache hierarchy (the detailed core neither issues a D-cache access
// for a faulting load nor retires a faulting store through the write
// buffer).
//
// Accuracy caveats (why this is opt-in, not the default):
//   - Timing is 1 IPC by construction, so the cycle counter, LRU clocks,
//     and bus cursor in the checkpoint are compressed relative to detailed
//     warm; measurement from a functional checkpoint is *not* behavior-
//     identical, only statistically close (see the harness IPC-tolerance
//     test for the documented bound).
//   - No wrong-path execution: caches miss the pollution and prefetch
//     training that speculative fetch would have produced.
//   - No slices run, so the correlator and fork-confidence table start the
//     measurement cold (Restore accepts the nil states).
func FunctionalWarm(cfg Config, image *asm.Image, memory *mem.Memory, entry uint64, maxInsts uint64, sliceTable *slicehw.Table) (*Checkpoint, error) {
	return functionalWarm(cfg, image, memory, entry, maxInsts, sliceTable, false)
}

// FunctionalWarmInterp is FunctionalWarm on the decode-dispatch
// interpreter instead of the compiled engine. Given identical inputs the
// two must produce byte-identical checkpoints (see the equivalence test);
// it exists as the always-available differential reference for the
// compiled warm path (warm mode "functional-interp").
func FunctionalWarmInterp(cfg Config, image *asm.Image, memory *mem.Memory, entry uint64, maxInsts uint64, sliceTable *slicehw.Table) (*Checkpoint, error) {
	return functionalWarm(cfg, image, memory, entry, maxInsts, sliceTable, true)
}

func functionalWarm(cfg Config, image *asm.Image, memory *mem.Memory, entry uint64, maxInsts uint64, sliceTable *slicehw.Table, interp bool) (*Checkpoint, error) {
	// Build the core first: it owns the hierarchy/predictor geometry the
	// checkpoint must match, and its Quiesce drains the write buffer and
	// in-flight prefetches the touch-warming leaves behind.
	c, err := New(cfg.WarmConfig(), image, memory, entry, sliceTable)
	if err != nil {
		return nil, err
	}

	t := c.main
	var (
		eng funcEngine
		ma  *compiled.Machine
	)
	if interp {
		eng = &interpEngine{image: image, ctx: funcCtx{regs: &t.Regs, m: memory}, pc: entry}
	} else {
		ma = compiled.NewMachine(compiled.Cached(image), memory, entry)
		ma.SetRegs(&t.Regs)
		eng = ma
	}

	var (
		now     uint64
		retired uint64
		halted  bool
		out     isa.Outcome
	)
	for retired < maxInsts {
		pc := eng.PC()
		now++
		c.hier.FetchAccess(pc, now)
		op, err := eng.Step(&out)
		if err != nil {
			return nil, fmt.Errorf("cpu: functional warm fell off the image at %#x after %d instructions", pc, retired)
		}
		retired++

		switch {
		case out.IsMem && !out.IsStore && !out.Fault:
			c.hier.Access(out.Addr, false, cache.KindDemand, now)
		case out.IsMem && out.IsStore && !out.Fault:
			// The store already wrote memory; retire the line through the
			// write buffer, draining time forward while it is full. Each
			// drain cycle is ticked exactly once — the bottom-of-loop Tick
			// covers the cycle the retire finally lands on.
			for !c.hier.StoreRetire(out.Addr, now) {
				c.hier.Tick(now)
				now++
			}
		}

		switch {
		case op.IsCondBranch():
			// Mirror the detailed retire path: value-observing predictors see
			// the tested value first, then the direction update. The interp
			// engine shares t.Regs; the compiled machine keeps its own file,
			// so read the register back through it.
			if c.dirVal != nil {
				if in, ok := image.At(pc); ok {
					v := t.Regs[in.Ra]
					if ma != nil {
						v = ma.Reg(in.Ra)
					}
					c.dirVal.ObserveValue(pc, condOf(op), v)
				}
			}
			c.dir.Update(pc, t.Hist, out.Taken)
			t.Hist = pushHist(t.Hist, out.Taken)
		case op == isa.JMP || op == isa.CALLR:
			c.indirect.Update(pc, t.Path, out.Target)
			t.Path = bpred.PushPath(t.Path, out.Target)
		}
		if op.IsCall() {
			t.RAS.Push(pc + isa.InstBytes)
			// Nothing speculates during functional warm, so no checkpoint
			// taken before this push will ever be restored; dropping the
			// journal immediately keeps it from growing with the region.
			t.RAS.CommitAll()
		} else if op.IsRet() {
			t.RAS.Pop()
		}

		c.hier.Tick(now)
		if out.Halt {
			halted = true
			break
		}
	}

	if ma != nil {
		ma.CopyRegs(&t.Regs)
	}
	c.now = now
	c.progs[0].halted = halted
	c.S.MainRetired = retired
	t.PC = eng.PC()
	t.Fetching = !halted
	// Checkpoint quiesces first, which lands the in-flight fills and
	// prefetch arrivals the touch loop queued.
	return c.Checkpoint()
}
