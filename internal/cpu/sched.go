package cpu

// Incremental issue scheduler. Readiness bookkeeping happens where state
// changes — dependence registration at fetch, wakeup at producer
// completion and store issue, insertion at dispatch, removal at squash —
// so issueStage walks a small, already seq-ordered ready list instead of
// scanning the whole window and allocating a sort closure every cycle.
//
// An instruction's waitCount is the number of outstanding wakeups it needs
// before it can issue: one per in-flight register producer (deps) plus,
// for main-thread loads, one per older unissued store at fetch time
// (olderStores — conservative "real" disambiguation, exactly the set the
// old per-cycle ready() scan re-derived). It enters the ready list when it
// is dispatched and the count is zero.

// addDep subscribes di to producer w's completion.
func (c *Core) addDep(di, w *DynInst) {
	di.deps[di.ndeps] = w
	di.ndeps++
	di.waitCount++
	w.waiters = append(w.waiters, di)
}

// addStoreDep subscribes load di to store s's issue (address generation).
func (c *Core) addStoreDep(di, s *DynInst) {
	di.olderStores = append(di.olderStores, s)
	di.waitCount++
	s.waiters = append(s.waiters, di)
}

// wakeWaiters satisfies d's register consumers at completion. Completion
// runs before issue in the cycle loop, so a dependent woken here can issue
// this same cycle — matching the old scan's "producer has completed by
// now" test. Stores reach here with an empty list: their disambiguation
// waiters drained at issue.
func (c *Core) wakeWaiters(d *DynInst) {
	for i, w := range d.waiters {
		d.waiters[i] = nil
		if w.Squashed {
			continue
		}
		w.dropDep(d)
		w.waitCount--
		if w.waitCount == 0 && w.Dispatched && !w.Issued {
			c.readyInsert(w)
		}
	}
	d.waiters = d.waiters[:0]
}

// wakeStoreWaiters satisfies loads waiting on this store's address, at the
// store's issue. The old scan evaluated readiness before any instruction
// issued, so a load blocked only on this store could not issue until the
// next cycle; insertion is therefore deferred (storeWoken) to the end of
// issueStage.
func (c *Core) wakeStoreWaiters(d *DynInst) {
	for i, w := range d.waiters {
		d.waiters[i] = nil
		if w.Squashed {
			continue
		}
		w.dropStore(d)
		w.waitCount--
		if w.waitCount == 0 && w.Dispatched && !w.Issued {
			c.storeWoken = append(c.storeWoken, w)
		}
	}
	d.waiters = d.waiters[:0]
}

// dropDep clears the subscription slot naming producer d.
func (w *DynInst) dropDep(d *DynInst) {
	for i := 0; i < w.ndeps; i++ {
		if w.deps[i] == d {
			w.deps[i] = nil
			return
		}
	}
}

// dropStore clears the disambiguation subscription naming store d.
func (w *DynInst) dropStore(d *DynInst) {
	os := w.olderStores
	for i, s := range os {
		if s == d {
			last := len(os) - 1
			os[i] = os[last]
			os[last] = nil
			w.olderStores = os[:last]
			return
		}
	}
}

// deregister removes a squashed instruction from the scheduler: its
// producer and store subscriptions, and the ready list. Squashes run
// youngest-first, so every producer it is still subscribed to is older and
// therefore still live.
func (c *Core) deregister(x *DynInst) {
	for i := 0; i < x.ndeps; i++ {
		if d := x.deps[i]; d != nil {
			d.removeWaiter(x)
			x.deps[i] = nil
		}
	}
	os := x.olderStores
	for i, s := range os {
		if s != nil {
			s.removeWaiter(x)
			os[i] = nil
		}
	}
	x.olderStores = os[:0]
	x.ndeps = 0
	x.waitCount = 0
	c.readyRemove(x)
}

// removeWaiter drops x from d's waiter list (order is irrelevant: the
// ready list re-establishes seq order on insert).
func (d *DynInst) removeWaiter(x *DynInst) {
	ws := d.waiters
	for i, w := range ws {
		if w == x {
			last := len(ws) - 1
			ws[i] = ws[last]
			ws[last] = nil
			d.waiters = ws[:last]
			return
		}
	}
}

// readyInsert adds di to the seq-ordered ready list.
func (c *Core) readyInsert(di *DynInst) {
	if di.inReady {
		return
	}
	di.inReady = true
	c.ready = insertBySeq(c.ready, di)
}

// readyRemove drops di from the ready list, if present.
func (c *Core) readyRemove(di *DynInst) {
	if !di.inReady {
		return
	}
	di.inReady = false
	// Seqs are unique and the list is sorted, so binary-search the slot.
	lo, hi := 0, len(c.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.ready[mid].Seq < di.Seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.ready) && c.ready[lo] == di {
		copy(c.ready[lo:], c.ready[lo+1:])
		c.ready[len(c.ready)-1] = nil
		c.ready = c.ready[:len(c.ready)-1]
	}
}

// insertBySeq inserts di into a seq-sorted list, preserving order.
func insertBySeq(list []*DynInst, di *DynInst) []*DynInst {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].Seq < di.Seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	list = append(list, nil)
	copy(list[lo+1:], list[lo:])
	list[lo] = di
	return list
}
