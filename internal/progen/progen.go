// Package progen generates random but guaranteed-terminating programs for
// differential testing: the out-of-order core (with its wrong paths,
// squashes, store forwarding, and write buffer) must match the functional
// reference exactly on every one. The generator lives in its own package
// so both the cpu-level tests and the oracle's fuzzer share one corpus
// shape.
package progen

import (
	"math/rand"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Arena is the base address of the generated programs' private data arena
// (1024 8-byte slots, initialized by the returned init function).
const Arena = 0x40000

// ArenaSlots is how many 8-byte slots the init function seeds.
const ArenaSlots = 1024

// Program builds a random terminating program: a counted outer loop whose
// body mixes ALU ops, loads/stores into the arena, data-dependent forward
// branches, counted inner loops, and calls. It returns the image, the
// entry PC, and an initializer for the memory the program runs against.
func Program(rng *rand.Rand) (*asm.Image, uint64, func(m *mem.Memory)) {
	b := asm.NewBuilder(0x1000)
	b.Li(27, Arena)
	b.I(isa.LDI, 1, 0, int32(20+rng.Intn(60))) // outer count
	b.Li(20, int64(rng.Uint64()>>1|1))         // rng state

	b.Label("outer")
	xor := func(st, tmp isa.Reg) {
		b.I(isa.SLLI, tmp, st, 13)
		b.R(isa.XOR, st, st, tmp)
		b.I(isa.SRLI, tmp, st, 7)
		b.R(isa.XOR, st, st, tmp)
	}
	xor(20, 9)

	nBlocks := 3 + rng.Intn(5)
	for blk := 0; blk < nBlocks; blk++ {
		switch rng.Intn(7) {
		case 0: // ALU chain
			for i := 0; i < 2+rng.Intn(6); i++ {
				rd := isa.Reg(2 + rng.Intn(8))
				ra := isa.Reg(2 + rng.Intn(8))
				rb := isa.Reg(2 + rng.Intn(8))
				ops := []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR, isa.S4ADD, isa.MUL}
				b.R(ops[rng.Intn(len(ops))], rd, ra, rb)
			}
		case 1: // store + load (forwarding pressure)
			off := int32(rng.Intn(64)) * 8
			rs := isa.Reg(2 + rng.Intn(8))
			b.St(rs, off, 27)
			b.Ld(isa.Reg(2+rng.Intn(8)), off, 27)
		case 2: // data-dependent forward branch
			lbl := b.PC() // unique label name from PC
			name := lblName("skip", lbl)
			b.I(isa.ANDI, 10, 20, int32(1<<uint(rng.Intn(3))))
			b.B(isa.BEQ, 10, name)
			for i := 0; i < 1+rng.Intn(4); i++ {
				b.I(isa.ADDI, isa.Reg(2+rng.Intn(8)), isa.Reg(2+rng.Intn(8)), int32(rng.Intn(9)-4))
			}
			b.Label(name)
		case 3: // counted inner loop
			name := lblName("inner", b.PC())
			b.I(isa.LDI, 11, 0, int32(1+rng.Intn(6)))
			b.Label(name)
			b.I(isa.ADDI, 12, 12, 7)
			b.St(12, int32(rng.Intn(32))*8, 27)
			b.I(isa.ADDI, 11, 11, -1)
			b.B(isa.BGT, 11, name)
		case 4: // call/return
			fn := lblName("fn", b.PC())
			after := lblName("after", b.PC())
			b.Call(fn)
			b.Br(after)
			b.Label(fn)
			b.R(isa.ADD, 13, 13, 20)
			b.Ret()
			b.Label(after)
		case 5: // pointer-ish scattered load
			b.I(isa.ANDI, 14, 20, 0x7F8)
			b.R(isa.ADD, 14, 14, 27)
			b.Ld(15, 0, 14)
			b.R(isa.ADD, 16, 16, 15)
		case 6: // conditional moves (dest doubles as a source; the old
			// value must survive when the move does not fire, including
			// across squash-and-refetch)
			cmovs := []isa.Op{isa.CMOVEQ, isa.CMOVNE, isa.CMOVLT, isa.CMOVGE, isa.CMOVGT, isa.CMOVLE}
			for i := 0; i < 1+rng.Intn(3); i++ {
				rd := isa.Reg(2 + rng.Intn(8))
				ra := isa.Reg(2 + rng.Intn(8))
				rb := isa.Reg(2 + rng.Intn(8))
				b.R(cmovs[rng.Intn(len(cmovs))], rd, ra, rb)
			}
		}
	}
	b.I(isa.ADDI, 1, 1, -1)
	b.B(isa.BGT, 1, "outer")
	b.Halt()
	p := b.MustBuild()
	im, err := asm.NewImage(p)
	if err != nil {
		panic(err)
	}
	init := func(m *mem.Memory) {
		for i := uint64(0); i < ArenaSlots; i++ {
			m.WriteU64(Arena+i*8, i*0x9E37)
		}
	}
	return im, p.Base, init
}

func lblName(prefix string, pc uint64) string {
	const hexdigits = "0123456789abcdef"
	buf := []byte(prefix)
	for sh := 28; sh >= 0; sh -= 4 {
		buf = append(buf, hexdigits[(pc>>uint(sh))&0xF])
	}
	return string(buf)
}
