// Package isa defines SSA-64, the 64-bit RISC instruction set executed by
// the simulator. The ISA is Alpha-flavoured — compare-to-zero conditional
// branches, scaled adds (s4add/s8add), conditional moves for if-conversion,
// and a hardwired zero register — because the paper's slices were written in
// Alpha assembly and rely on exactly these idioms (Figure 4 and 5 of the
// paper). Instructions have a fixed 64-bit encoding (see encode.go) and
// fixed 4-byte program-counter spacing so that fetch-width arithmetic works
// like a real front end.
package isa

import "fmt"

// Reg names one of the 64 architectural integer registers. R0 reads as zero
// and writes to it are discarded.
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 64

// Register aliases used by the assembler and the calling convention.
const (
	// Zero is hardwired to 0.
	Zero Reg = 0
	// RA is the conventional link (return address) register.
	RA Reg = 60
	// SP is the conventional stack pointer.
	SP Reg = 61
	// GP is the conventional global pointer; the paper's slices take gp as
	// a live-in to reach global data structures.
	GP Reg = 62
	// AT is the assembler temporary.
	AT Reg = 63
)

func (r Reg) String() string {
	switch r {
	case Zero:
		return "zero"
	case RA:
		return "ra"
	case SP:
		return "sp"
	case GP:
		return "gp"
	case AT:
		return "at"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is an SSA-64 opcode.
type Op uint8

// Opcode space. The groupings matter: classification helpers below switch on
// these ranges, and the execution-unit assignment in the CPU model uses
// IsComplex / IsMem / IsCtrl.
const (
	NOP Op = iota

	// Register-register ALU.
	ADD
	SUB
	MUL
	DIV
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	CMPEQ
	CMPLT // signed <
	CMPLE // signed <=
	CMPULT
	CMPULE
	S4ADD // rd = ra*4 + rb
	S8ADD // rd = ra*8 + rb

	// Register-immediate ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	CMPEQI
	CMPLTI
	CMPLEI
	CMPULTI
	LDI  // rd = signext(imm)
	LDIH // rd = ra + imm<<16

	// Conditional moves (if-conversion). rd = rb if the condition on ra
	// holds, else rd is unchanged.
	CMOVEQ // ra == 0
	CMOVNE // ra != 0
	CMOVLT // ra < 0 (signed)
	CMOVGE // ra >= 0
	CMOVGT // ra > 0
	CMOVLE // ra <= 0

	// Memory. Effective address is ra + imm. LD/ST move 8 bytes, LDW/STW 4
	// (loads sign-extend), LDBU/STB 1 (LDBU zero-extends).
	LD
	LDW
	LDBU
	ST
	STW
	STB

	// Control. Conditional branches test ra against zero; the target is
	// PC-relative (imm counts instructions).
	BEQ
	BNE
	BLT
	BLE
	BGT
	BGE
	BR    // unconditional direct branch
	JMP   // indirect jump through ra
	CALL  // direct call: rd = return address, jump to target
	CALLR // indirect call: rd = return address, jump through ra
	RET   // return: jump through ra (consults the return address stack)

	// FORK marks an explicit slice fork point (the binary-compatible CAM
	// variant in the paper needs no opcode; this one exists for the
	// "explicit fork instruction" hardware variant and ablations). imm is
	// the slice index.
	FORK

	// HALT stops the executing thread.
	HALT

	numOps
)

var opNames = [numOps]string{
	NOP: "nop",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div",
	AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra",
	CMPEQ: "cmpeq", CMPLT: "cmplt", CMPLE: "cmple",
	CMPULT: "cmpult", CMPULE: "cmpule",
	S4ADD: "s4add", S8ADD: "s8add",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai",
	CMPEQI: "cmpeqi", CMPLTI: "cmplti", CMPLEI: "cmplei", CMPULTI: "cmpulti",
	LDI: "ldi", LDIH: "ldih",
	CMOVEQ: "cmoveq", CMOVNE: "cmovne", CMOVLT: "cmovlt",
	CMOVGE: "cmovge", CMOVGT: "cmovgt", CMOVLE: "cmovle",
	LD: "ld", LDW: "ldw", LDBU: "ldbu",
	ST: "st", STW: "stw", STB: "stb",
	BEQ: "beq", BNE: "bne", BLT: "blt", BLE: "ble", BGT: "bgt", BGE: "bge",
	BR: "br", JMP: "jmp", CALL: "call", CALLR: "callr", RET: "ret",
	FORK: "fork", HALT: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Opcode-level classification, for callers that have an Op without an
// Inst (the compiled engine's Step returns just the opcode).

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool { return o >= BEQ && o <= BGE }

// IsCall reports whether the opcode pushes a return address.
func (o Op) IsCall() bool { return o == CALL || o == CALLR }

// IsRet reports whether the opcode pops the return address stack.
func (o Op) IsRet() bool { return o == RET }

// Inst is one decoded SSA-64 instruction. PCs advance by InstBytes per
// instruction; PC-relative branch immediates count instructions, not bytes.
type Inst struct {
	Op  Op
	Rd  Reg
	Ra  Reg
	Rb  Reg
	Imm int32
}

// InstBytes is the architectural size of one encoded instruction as seen by
// the program counter and the instruction cache.
const InstBytes = 4

// BranchTarget returns the absolute target of a PC-relative control
// instruction located at pc.
func (in *Inst) BranchTarget(pc uint64) uint64 {
	return pc + InstBytes + uint64(int64(in.Imm))*InstBytes
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (in *Inst) IsCondBranch() bool { return in.Op.IsCondBranch() }

// IsDirectCtrl reports whether the instruction is direct control flow
// (conditional branch, BR, or CALL) whose target is known at decode — the
// perfect-BTB case in the paper's front end.
func (in *Inst) IsDirectCtrl() bool {
	return (in.Op >= BEQ && in.Op <= BR) || in.Op == CALL
}

// IsIndirectCtrl reports whether the instruction jumps through a register.
func (in *Inst) IsIndirectCtrl() bool {
	return in.Op == JMP || in.Op == CALLR || in.Op == RET
}

// IsCtrl reports whether the instruction changes control flow.
func (in *Inst) IsCtrl() bool { return in.Op >= BEQ && in.Op <= RET }

// IsCall reports whether the instruction pushes a return address.
func (in *Inst) IsCall() bool { return in.Op.IsCall() }

// IsRet reports whether the instruction pops the return address stack.
func (in *Inst) IsRet() bool { return in.Op.IsRet() }

// IsLoad reports whether the instruction reads memory.
func (in *Inst) IsLoad() bool { return in.Op >= LD && in.Op <= LDBU }

// IsStore reports whether the instruction writes memory.
func (in *Inst) IsStore() bool { return in.Op >= ST && in.Op <= STB }

// IsMem reports whether the instruction accesses memory.
func (in *Inst) IsMem() bool { return in.Op >= LD && in.Op <= STB }

// IsComplex reports whether the instruction needs the complex integer unit
// (multiply/divide) rather than a simple ALU.
func (in *Inst) IsComplex() bool { return in.Op == MUL || in.Op == DIV }

// MemBytes returns the access width of a memory instruction, or 0.
func (in *Inst) MemBytes() int {
	switch in.Op {
	case LD, ST:
		return 8
	case LDW, STW:
		return 4
	case LDBU, STB:
		return 1
	}
	return 0
}

// Dest returns the destination register and whether the instruction writes
// one. Writes to R0 are reported as no destination.
func (in *Inst) Dest() (Reg, bool) {
	var d Reg
	switch {
	case in.Op >= ADD && in.Op <= CMOVLE:
		d = in.Rd
	case in.IsLoad():
		d = in.Rd
	case in.IsCall():
		d = in.Rd
	default:
		return 0, false
	}
	if d == Zero {
		return 0, false
	}
	return d, true
}

// Sources returns the registers the instruction reads (up to 3: cmov reads
// its own destination, stores read their data register).
func (in *Inst) Sources() []Reg {
	var s [3]Reg
	return s[:in.SourcesInto(&s)]
}

// SourcesInto is Sources into a caller-provided buffer, so per-fetch
// dependence scanning does not force the register array onto the heap.
func (in *Inst) SourcesInto(s *[3]Reg) int {
	n := 0
	add := func(r Reg) {
		if r == Zero {
			return
		}
		for i := 0; i < n; i++ {
			if s[i] == r {
				return
			}
		}
		s[n] = r
		n++
	}
	switch {
	case in.Op >= ADD && in.Op <= S8ADD:
		add(in.Ra)
		add(in.Rb)
	case in.Op >= ADDI && in.Op <= LDIH:
		if in.Op != LDI {
			add(in.Ra)
		}
	case in.Op >= CMOVEQ && in.Op <= CMOVLE:
		add(in.Ra)
		add(in.Rb)
		add(in.Rd) // old value survives when the move does not fire
	case in.IsLoad():
		add(in.Ra)
	case in.IsStore():
		add(in.Ra)
		add(in.Rd) // store data travels in Rd
	case in.IsCondBranch():
		add(in.Ra)
	case in.IsIndirectCtrl():
		add(in.Ra)
	}
	return n
}

func (in *Inst) String() string { return in.Disasm(0) }
