package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fakeState is a plain architectural state for functional tests.
type fakeState struct {
	regs [NumRegs]uint64
	mem  map[uint64]byte
	// faultBelow makes accesses under this address fault.
	faultBelow uint64
}

func newFakeState() *fakeState {
	return &fakeState{mem: make(map[uint64]byte), faultBelow: 4096}
}

func (s *fakeState) Reg(r Reg) uint64 {
	if r == Zero {
		return 0
	}
	return s.regs[r]
}

func (s *fakeState) SetReg(r Reg, v uint64) {
	if r != Zero {
		s.regs[r] = v
	}
}

func (s *fakeState) Load(addr uint64, size int) (uint64, bool) {
	if addr < s.faultBelow {
		return 0, false
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(s.mem[addr+uint64(i)]) << (8 * i)
	}
	return v, true
}

func (s *fakeState) Store(addr uint64, size int, v uint64) bool {
	if addr < s.faultBelow {
		return false
	}
	for i := 0; i < size; i++ {
		s.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
	return true
}

func exec(t *testing.T, st *fakeState, in Inst) Outcome {
	t.Helper()
	return Execute(&in, 0x1000, st)
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
		a, b uint64
		want uint64
	}{
		{"add", Inst{Op: ADD, Rd: 3, Ra: 1, Rb: 2}, 5, 7, 12},
		{"sub", Inst{Op: SUB, Rd: 3, Ra: 1, Rb: 2}, 5, 7, ^uint64(1)},
		{"mul", Inst{Op: MUL, Rd: 3, Ra: 1, Rb: 2}, 6, 7, 42},
		{"div", Inst{Op: DIV, Rd: 3, Ra: 1, Rb: 2}, 42, 7, 6},
		{"div_neg", Inst{Op: DIV, Rd: 3, Ra: 1, Rb: 2}, negU64(42), 7, negU64(6)},
		{"div_zero", Inst{Op: DIV, Rd: 3, Ra: 1, Rb: 2}, 42, 0, 0},
		{"and", Inst{Op: AND, Rd: 3, Ra: 1, Rb: 2}, 0xF0, 0x3C, 0x30},
		{"or", Inst{Op: OR, Rd: 3, Ra: 1, Rb: 2}, 0xF0, 0x0C, 0xFC},
		{"xor", Inst{Op: XOR, Rd: 3, Ra: 1, Rb: 2}, 0xF0, 0x3C, 0xCC},
		{"sll", Inst{Op: SLL, Rd: 3, Ra: 1, Rb: 2}, 1, 12, 4096},
		{"srl", Inst{Op: SRL, Rd: 3, Ra: 1, Rb: 2}, 0x8000000000000000, 63, 1},
		{"sra", Inst{Op: SRA, Rd: 3, Ra: 1, Rb: 2}, 0x8000000000000000, 63, ^uint64(0)},
		{"cmpeq_t", Inst{Op: CMPEQ, Rd: 3, Ra: 1, Rb: 2}, 9, 9, 1},
		{"cmpeq_f", Inst{Op: CMPEQ, Rd: 3, Ra: 1, Rb: 2}, 9, 8, 0},
		{"cmplt_signed", Inst{Op: CMPLT, Rd: 3, Ra: 1, Rb: 2}, negU64(1), 0, 1},
		{"cmple", Inst{Op: CMPLE, Rd: 3, Ra: 1, Rb: 2}, 4, 4, 1},
		{"cmpult", Inst{Op: CMPULT, Rd: 3, Ra: 1, Rb: 2}, negU64(1), 0, 0},
		{"cmpule", Inst{Op: CMPULE, Rd: 3, Ra: 1, Rb: 2}, 3, 3, 1},
		{"s4add", Inst{Op: S4ADD, Rd: 3, Ra: 1, Rb: 2}, 10, 100, 140},
		{"s8add", Inst{Op: S8ADD, Rd: 3, Ra: 1, Rb: 2}, 10, 100, 180},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := newFakeState()
			st.regs[1], st.regs[2] = c.a, c.b
			o := exec(t, st, c.in)
			if !o.WroteReg || o.Rd != 3 {
				t.Fatalf("expected write to r3, got %+v", o)
			}
			if st.regs[3] != c.want {
				t.Errorf("r3 = %#x, want %#x", st.regs[3], c.want)
			}
		})
	}
}

func TestImmediateOps(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
		a    uint64
		want uint64
	}{
		{"addi", Inst{Op: ADDI, Rd: 3, Ra: 1, Imm: -4}, 10, 6},
		{"andi", Inst{Op: ANDI, Rd: 3, Ra: 1, Imm: 0xFF}, 0x1234, 0x34},
		{"ori", Inst{Op: ORI, Rd: 3, Ra: 1, Imm: 0x0F}, 0x30, 0x3F},
		{"xori", Inst{Op: XORI, Rd: 3, Ra: 1, Imm: 0xFF}, 0x0F, 0xF0},
		{"slli", Inst{Op: SLLI, Rd: 3, Ra: 1, Imm: 4}, 3, 48},
		{"srli", Inst{Op: SRLI, Rd: 3, Ra: 1, Imm: 4}, 48, 3},
		{"srai", Inst{Op: SRAI, Rd: 3, Ra: 1, Imm: 1}, negU64(8), negU64(4)},
		{"cmpeqi", Inst{Op: CMPEQI, Rd: 3, Ra: 1, Imm: 7}, 7, 1},
		{"cmplti", Inst{Op: CMPLTI, Rd: 3, Ra: 1, Imm: 0}, negU64(5), 1},
		{"cmplei", Inst{Op: CMPLEI, Rd: 3, Ra: 1, Imm: 5}, 5, 1},
		{"cmpulti", Inst{Op: CMPULTI, Rd: 3, Ra: 1, Imm: 5}, 4, 1},
		{"ldi", Inst{Op: LDI, Rd: 3, Imm: -1}, 0, ^uint64(0)},
		{"ldih", Inst{Op: LDIH, Rd: 3, Ra: 1, Imm: 2}, 1, 1 + 2<<16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := newFakeState()
			st.regs[1] = c.a
			exec(t, st, c.in)
			if st.regs[3] != c.want {
				t.Errorf("r3 = %#x, want %#x", st.regs[3], c.want)
			}
		})
	}
}

func TestConditionalMoves(t *testing.T) {
	cases := []struct {
		op    Op
		a     int64
		fires bool
	}{
		{CMOVEQ, 0, true}, {CMOVEQ, 1, false},
		{CMOVNE, 0, false}, {CMOVNE, 1, true},
		{CMOVLT, -1, true}, {CMOVLT, 0, false},
		{CMOVGE, 0, true}, {CMOVGE, -1, false},
		{CMOVGT, 1, true}, {CMOVGT, 0, false},
		{CMOVLE, 0, true}, {CMOVLE, 1, false},
	}
	for _, c := range cases {
		st := newFakeState()
		st.regs[1] = uint64(c.a)
		st.regs[2] = 42
		st.regs[3] = 7
		exec(t, st, Inst{Op: c.op, Rd: 3, Ra: 1, Rb: 2})
		want := uint64(7)
		if c.fires {
			want = 42
		}
		if st.regs[3] != want {
			t.Errorf("%v(a=%d): r3 = %d, want %d", c.op, c.a, st.regs[3], want)
		}
	}
}

func TestZeroRegisterInvariant(t *testing.T) {
	st := newFakeState()
	st.regs[1] = 99
	o := exec(t, st, Inst{Op: ADD, Rd: Zero, Ra: 1, Rb: 1})
	if o.WroteReg {
		t.Error("write to r0 must be reported as no write")
	}
	if st.Reg(Zero) != 0 {
		t.Error("r0 must read as zero")
	}
}

func TestLoadsAndStores(t *testing.T) {
	st := newFakeState()
	st.regs[1] = 0x2000
	st.regs[2] = 0xFEDCBA9876543210

	o := exec(t, st, Inst{Op: ST, Rd: 2, Ra: 1, Imm: 8})
	if !o.IsStore || o.Addr != 0x2008 || o.StoreVal != st.regs[2] {
		t.Fatalf("store outcome %+v", o)
	}
	exec(t, st, Inst{Op: LD, Rd: 3, Ra: 1, Imm: 8})
	if st.regs[3] != st.regs[2] {
		t.Errorf("ld roundtrip = %#x", st.regs[3])
	}
	// 4-byte load sign-extends.
	exec(t, st, Inst{Op: LDW, Rd: 4, Ra: 1, Imm: 12})
	if st.regs[4] != 0xFFFFFFFFFEDCBA98 {
		t.Errorf("ldw = %#x, want sign-extended", st.regs[4])
	}
	// 1-byte load zero-extends.
	exec(t, st, Inst{Op: LDBU, Rd: 5, Ra: 1, Imm: 15})
	if st.regs[5] != 0xFE {
		t.Errorf("ldbu = %#x", st.regs[5])
	}
	// Sub-word stores.
	st.regs[6] = 0x1122334455667788
	exec(t, st, Inst{Op: STW, Rd: 6, Ra: 1, Imm: 0})
	exec(t, st, Inst{Op: LD, Rd: 7, Ra: 1, Imm: 0})
	if st.regs[7] != 0x55667788 {
		t.Errorf("stw wrote %#x", st.regs[7])
	}
	exec(t, st, Inst{Op: STB, Rd: 6, Ra: 1, Imm: 32})
	exec(t, st, Inst{Op: LDBU, Rd: 8, Ra: 1, Imm: 32})
	if st.regs[8] != 0x88 {
		t.Errorf("stb wrote %#x", st.regs[8])
	}
}

func TestNullDereferenceFaults(t *testing.T) {
	st := newFakeState()
	st.regs[1] = 0 // null pointer
	o := exec(t, st, Inst{Op: LD, Rd: 3, Ra: 1, Imm: 16})
	if !o.Fault {
		t.Error("null load must fault")
	}
	if st.regs[3] != 0 {
		t.Error("faulting load must produce zero")
	}
	o = exec(t, st, Inst{Op: ST, Rd: 3, Ra: 1, Imm: 16})
	if !o.Fault {
		t.Error("null store must fault")
	}
}

func TestBranches(t *testing.T) {
	cases := []struct {
		op    Op
		a     int64
		taken bool
	}{
		{BEQ, 0, true}, {BEQ, 1, false},
		{BNE, 0, false}, {BNE, -1, true},
		{BLT, -1, true}, {BLT, 0, false},
		{BLE, 0, true}, {BLE, 1, false},
		{BGT, 1, true}, {BGT, 0, false},
		{BGE, 0, true}, {BGE, -1, false},
	}
	for _, c := range cases {
		st := newFakeState()
		st.regs[1] = uint64(c.a)
		in := Inst{Op: c.op, Ra: 1, Imm: 5}
		o := Execute(&in, 0x1000, st)
		if !o.IsCtrl {
			t.Fatalf("%v: not control", c.op)
		}
		if o.Taken != c.taken {
			t.Errorf("%v(a=%d): taken=%v, want %v", c.op, c.a, o.Taken, c.taken)
		}
		wantTarget := uint64(0x1000 + 4 + 5*4)
		if o.Target != wantTarget {
			t.Errorf("%v: target %#x, want %#x", c.op, o.Target, wantTarget)
		}
		next := o.NextPC(0x1000)
		if c.taken && next != wantTarget {
			t.Errorf("taken NextPC = %#x", next)
		}
		if !c.taken && next != 0x1004 {
			t.Errorf("not-taken NextPC = %#x", next)
		}
	}
}

func TestCallsAndReturns(t *testing.T) {
	st := newFakeState()
	in := Inst{Op: CALL, Rd: RA, Imm: 10}
	o := Execute(&in, 0x1000, st)
	if !o.Taken || o.Target != 0x1000+4+40 {
		t.Fatalf("call outcome %+v", o)
	}
	if st.Reg(RA) != 0x1004 {
		t.Errorf("link = %#x", st.Reg(RA))
	}
	ret := Inst{Op: RET, Ra: RA}
	o = Execute(&ret, 0x2000, st)
	if !o.Taken || o.Target != 0x1004 {
		t.Errorf("ret outcome %+v", o)
	}
	st.SetReg(5, 0x3000)
	callr := Inst{Op: CALLR, Rd: RA, Ra: 5}
	o = Execute(&callr, 0x1008, st)
	if o.Target != 0x3000 || st.Reg(RA) != 0x100c {
		t.Errorf("callr outcome %+v link=%#x", o, st.Reg(RA))
	}
	jmp := Inst{Op: JMP, Ra: 5}
	o = Execute(&jmp, 0x1010, st)
	if !o.IsCtrl || o.Target != 0x3000 || o.WroteReg {
		t.Errorf("jmp outcome %+v", o)
	}
}

func TestForkAndHalt(t *testing.T) {
	st := newFakeState()
	in := Inst{Op: FORK, Imm: 3}
	o := Execute(&in, 0x1000, st)
	if !o.Fork || o.SliceIndex != 3 {
		t.Errorf("fork outcome %+v", o)
	}
	h := Inst{Op: HALT}
	o = Execute(&h, 0x1000, st)
	if !o.Halt {
		t.Errorf("halt outcome %+v", o)
	}
}

func TestClassificationHelpers(t *testing.T) {
	checks := []struct {
		in                                           Inst
		branch, ctrl, load, store, complex, indirect bool
	}{
		{Inst{Op: ADD}, false, false, false, false, false, false},
		{Inst{Op: MUL}, false, false, false, false, true, false},
		{Inst{Op: DIV}, false, false, false, false, true, false},
		{Inst{Op: LD}, false, false, true, false, false, false},
		{Inst{Op: LDBU}, false, false, true, false, false, false},
		{Inst{Op: ST}, false, false, false, true, false, false},
		{Inst{Op: BEQ}, true, true, false, false, false, false},
		{Inst{Op: BGE}, true, true, false, false, false, false},
		{Inst{Op: BR}, false, true, false, false, false, false},
		{Inst{Op: JMP}, false, true, false, false, false, true},
		{Inst{Op: CALL}, false, true, false, false, false, false},
		{Inst{Op: CALLR}, false, true, false, false, false, true},
		{Inst{Op: RET}, false, true, false, false, false, true},
	}
	for _, c := range checks {
		if got := c.in.IsCondBranch(); got != c.branch {
			t.Errorf("%v IsCondBranch = %v", c.in.Op, got)
		}
		if got := c.in.IsCtrl(); got != c.ctrl {
			t.Errorf("%v IsCtrl = %v", c.in.Op, got)
		}
		if got := c.in.IsLoad(); got != c.load {
			t.Errorf("%v IsLoad = %v", c.in.Op, got)
		}
		if got := c.in.IsStore(); got != c.store {
			t.Errorf("%v IsStore = %v", c.in.Op, got)
		}
		if got := c.in.IsComplex(); got != c.complex {
			t.Errorf("%v IsComplex = %v", c.in.Op, got)
		}
		if got := c.in.IsIndirectCtrl(); got != c.indirect {
			t.Errorf("%v IsIndirectCtrl = %v", c.in.Op, got)
		}
	}
}

func TestDestAndSources(t *testing.T) {
	in := Inst{Op: ADD, Rd: 3, Ra: 1, Rb: 2}
	if d, ok := in.Dest(); !ok || d != 3 {
		t.Errorf("add dest = %v,%v", d, ok)
	}
	in = Inst{Op: ST, Rd: 3, Ra: 1}
	if _, ok := in.Dest(); ok {
		t.Error("store must have no dest")
	}
	srcs := in.Sources()
	if len(srcs) != 2 {
		t.Errorf("store sources = %v", srcs)
	}
	cmov := Inst{Op: CMOVEQ, Rd: 3, Ra: 1, Rb: 2}
	srcs = cmov.Sources()
	if len(srcs) != 3 {
		t.Errorf("cmov must read rd too: %v", srcs)
	}
	dup := Inst{Op: ADD, Rd: 3, Ra: 1, Rb: 1}
	if got := dup.Sources(); len(got) != 1 {
		t.Errorf("duplicate source not deduped: %v", got)
	}
	zeroSrc := Inst{Op: ADD, Rd: 3, Ra: Zero, Rb: Zero}
	if got := zeroSrc.Sources(); len(got) != 0 {
		t.Errorf("zero register must not be a source: %v", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := Inst{
			Op:  Op(rng.Intn(int(numOps))),
			Rd:  Reg(rng.Intn(NumRegs)),
			Ra:  Reg(rng.Intn(NumRegs)),
			Rb:  Reg(rng.Intn(NumRegs)),
			Imm: int32(rng.Uint32()),
		}
		got, err := Decode(Encode(&in))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != in {
			t.Fatalf("round trip: got %+v want %+v", got, in)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(uint64(numOps) << 56); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := Decode(uint64(ADD)<<56 | uint64(200)<<48); err == nil {
		t.Error("register 200 accepted")
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	prog := []Inst{
		{Op: LDI, Rd: 1, Imm: 42},
		{Op: ADD, Rd: 2, Ra: 1, Rb: 1},
		{Op: HALT},
	}
	img := EncodeProgram(prog)
	if len(img) != 3*EncodedBytes {
		t.Fatalf("image size %d", len(img))
	}
	back, err := DecodeProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if back[i] != prog[i] {
			t.Errorf("inst %d mismatch", i)
		}
	}
	if _, err := DecodeProgram(img[:5]); err == nil {
		t.Error("odd-size image accepted")
	}
}

// Property: encode/decode is the identity on valid instructions.
func TestQuickEncodeIdentity(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int32) bool {
		in := Inst{
			Op:  Op(op % uint8(numOps)),
			Rd:  Reg(rd % NumRegs),
			Ra:  Reg(ra % NumRegs),
			Rb:  Reg(rb % NumRegs),
			Imm: imm,
		}
		got, err := Decode(Encode(&in))
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: execution never writes a register it does not declare as Dest,
// and branch targets match BranchTarget.
func TestQuickExecuteDeclaredEffects(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		in := Inst{
			Op:  Op(rng.Intn(int(numOps))),
			Rd:  Reg(rng.Intn(NumRegs)),
			Ra:  Reg(rng.Intn(NumRegs)),
			Rb:  Reg(rng.Intn(NumRegs)),
			Imm: int32(rng.Uint32()),
		}
		st := newFakeState()
		for r := 1; r < NumRegs; r++ {
			st.regs[r] = rng.Uint64() % (1 << 20) // keep addresses mapped-ish
		}
		before := st.regs
		o := Execute(&in, 0x1000, st)
		dest, hasDest := in.Dest()
		for r := 1; r < NumRegs; r++ {
			if Reg(r) != dest && st.regs[r] != before[r] {
				t.Fatalf("%v wrote undeclared register %v", in.Op, Reg(r))
			}
			if !hasDest && st.regs[r] != before[r] {
				t.Fatalf("%v wrote %v without a Dest", in.Op, Reg(r))
			}
		}
		if o.WroteReg && (!hasDest || o.Rd != dest) {
			t.Fatalf("%v outcome dest %v disagrees with Dest() %v/%v", in.Op, o.Rd, dest, hasDest)
		}
		if o.IsCtrl && in.IsDirectCtrl() && o.Target != in.BranchTarget(0x1000) {
			t.Fatalf("%v target %#x != BranchTarget %#x", in.Op, o.Target, in.BranchTarget(0x1000))
		}
	}
}

func TestDisasmCoversAllOpcodes(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		in := Inst{Op: op, Rd: 1, Ra: 2, Rb: 3, Imm: 4}
		s := in.Disasm(0x1000)
		if s == "" {
			t.Errorf("empty disasm for %v", op)
		}
	}
	// Strings must be stable enough for golden output.
	in := Inst{Op: LD, Rd: 3, Ra: 1, Imm: 16}
	if got := in.Disasm(0); got != "ld r3, 16(r1)" {
		t.Errorf("disasm = %q", got)
	}
	br := Inst{Op: BEQ, Ra: 1, Imm: 2}
	if got := br.Disasm(0x1000); got != "beq r1, 0x100c" {
		t.Errorf("disasm = %q", got)
	}
}

// negU64 returns the two's-complement encoding of -x.
func negU64(x uint64) uint64 { return ^x + 1 }
