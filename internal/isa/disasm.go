package isa

import "fmt"

// Disasm renders the instruction as assembly text. pc is used to resolve
// PC-relative targets; pass 0 to print raw immediates.
func (in *Inst) Disasm(pc uint64) string {
	op := in.Op.String()
	switch {
	case in.Op == NOP || in.Op == HALT:
		return op
	case in.Op >= ADD && in.Op <= S8ADD:
		return fmt.Sprintf("%s %s, %s, %s", op, in.Rd, in.Ra, in.Rb)
	case in.Op == LDI:
		return fmt.Sprintf("%s %s, %d", op, in.Rd, in.Imm)
	case in.Op >= ADDI && in.Op <= LDIH:
		return fmt.Sprintf("%s %s, %s, %d", op, in.Rd, in.Ra, in.Imm)
	case in.Op >= CMOVEQ && in.Op <= CMOVLE:
		return fmt.Sprintf("%s %s, %s, %s", op, in.Rd, in.Ra, in.Rb)
	case in.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rd, in.Imm, in.Ra)
	case in.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rd, in.Imm, in.Ra)
	case in.IsCondBranch():
		if pc != 0 {
			return fmt.Sprintf("%s %s, %#x", op, in.Ra, in.BranchTarget(pc))
		}
		return fmt.Sprintf("%s %s, %+d", op, in.Ra, in.Imm)
	case in.Op == BR:
		if pc != 0 {
			return fmt.Sprintf("%s %#x", op, in.BranchTarget(pc))
		}
		return fmt.Sprintf("%s %+d", op, in.Imm)
	case in.Op == CALL:
		if pc != 0 {
			return fmt.Sprintf("%s %s, %#x", op, in.Rd, in.BranchTarget(pc))
		}
		return fmt.Sprintf("%s %s, %+d", op, in.Rd, in.Imm)
	case in.Op == JMP || in.Op == RET:
		return fmt.Sprintf("%s %s", op, in.Ra)
	case in.Op == CALLR:
		return fmt.Sprintf("%s %s, %s", op, in.Rd, in.Ra)
	case in.Op == FORK:
		return fmt.Sprintf("%s %d", op, in.Imm)
	}
	return fmt.Sprintf("%s rd=%s ra=%s rb=%s imm=%d", op, in.Rd, in.Ra, in.Rb, in.Imm)
}
