package isa

// State is the architectural state an instruction executes against. The CPU
// model implements it with speculative register files and undo-logged
// memory so that wrong-path execution can be rolled back.
type State interface {
	// Reg reads an architectural register. Reading Zero returns 0.
	Reg(r Reg) uint64
	// SetReg writes an architectural register. Writing Zero is a no-op.
	SetReg(r Reg, v uint64)
	// Load reads size bytes (1, 4, or 8) at addr, zero-extended. ok is
	// false when the access faults (null or unmapped page) — the value is
	// then 0. Faults terminate helper threads (how linked-list slices
	// self-terminate, §3.2) and are ignored on the main thread's wrong
	// path.
	Load(addr uint64, size int) (val uint64, ok bool)
	// Store writes size bytes at addr, returning false on fault.
	Store(addr uint64, size int, val uint64) (ok bool)
}

// Outcome describes everything the timing model needs to know about one
// functionally executed instruction.
type Outcome struct {
	// WroteReg/Rd/Value describe the register write, if any.
	WroteReg bool
	Rd       Reg
	Value    uint64

	// Control flow.
	IsCtrl bool
	Taken  bool   // direction of a conditional branch; true for jumps
	Target uint64 // taken target

	// Memory.
	IsMem    bool
	IsStore  bool
	Addr     uint64
	Size     int
	StoreVal uint64

	// Fault is set when a memory access touched the null page or an
	// unmapped page.
	Fault bool

	// Halt is set by HALT.
	Halt bool

	// Fork is set by an explicit FORK instruction; SliceIndex is its
	// immediate.
	Fork       bool
	SliceIndex int
}

// NextPC returns the address of the next instruction given this outcome.
func (o *Outcome) NextPC(pc uint64) uint64 {
	if o.IsCtrl && o.Taken {
		return o.Target
	}
	return pc + InstBytes
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Execute functionally executes in at pc against st and returns the
// outcome. Register and memory side effects are applied through st; the
// caller is responsible for undo logging inside its State implementation.
func Execute(in *Inst, pc uint64, st State) Outcome {
	var o Outcome
	setReg := func(v uint64) {
		if in.Rd != Zero {
			st.SetReg(in.Rd, v)
			o.WroteReg, o.Rd, o.Value = true, in.Rd, v
		}
	}
	a := st.Reg(in.Ra)
	b := st.Reg(in.Rb)
	imm := int64(in.Imm)

	switch in.Op {
	case NOP:
	case ADD:
		setReg(a + b)
	case SUB:
		setReg(a - b)
	case MUL:
		setReg(a * b)
	case DIV:
		if b == 0 {
			setReg(0)
		} else {
			setReg(uint64(int64(a) / int64(b)))
		}
	case AND:
		setReg(a & b)
	case OR:
		setReg(a | b)
	case XOR:
		setReg(a ^ b)
	case SLL:
		setReg(a << (b & 63))
	case SRL:
		setReg(a >> (b & 63))
	case SRA:
		setReg(uint64(int64(a) >> (b & 63)))
	case CMPEQ:
		setReg(b2u(a == b))
	case CMPLT:
		setReg(b2u(int64(a) < int64(b)))
	case CMPLE:
		setReg(b2u(int64(a) <= int64(b)))
	case CMPULT:
		setReg(b2u(a < b))
	case CMPULE:
		setReg(b2u(a <= b))
	case S4ADD:
		setReg(a*4 + b)
	case S8ADD:
		setReg(a*8 + b)

	case ADDI:
		setReg(a + uint64(imm))
	case ANDI:
		setReg(a & uint64(imm))
	case ORI:
		setReg(a | uint64(imm))
	case XORI:
		setReg(a ^ uint64(imm))
	case SLLI:
		setReg(a << (uint64(imm) & 63))
	case SRLI:
		setReg(a >> (uint64(imm) & 63))
	case SRAI:
		setReg(uint64(int64(a) >> (uint64(imm) & 63)))
	case CMPEQI:
		setReg(b2u(a == uint64(imm)))
	case CMPLTI:
		setReg(b2u(int64(a) < imm))
	case CMPLEI:
		setReg(b2u(int64(a) <= imm))
	case CMPULTI:
		setReg(b2u(a < uint64(imm)))
	case LDI:
		setReg(uint64(imm))
	case LDIH:
		setReg(a + uint64(imm)<<16)

	case CMOVEQ:
		if a == 0 {
			setReg(b)
		}
	case CMOVNE:
		if a != 0 {
			setReg(b)
		}
	case CMOVLT:
		if int64(a) < 0 {
			setReg(b)
		}
	case CMOVGE:
		if int64(a) >= 0 {
			setReg(b)
		}
	case CMOVGT:
		if int64(a) > 0 {
			setReg(b)
		}
	case CMOVLE:
		if int64(a) <= 0 {
			setReg(b)
		}

	case LD, LDW, LDBU:
		o.IsMem = true
		o.Addr = a + uint64(imm)
		o.Size = in.MemBytes()
		v, ok := st.Load(o.Addr, o.Size)
		if !ok {
			o.Fault = true
		}
		if in.Op == LDW {
			v = uint64(int64(int32(uint32(v))))
		}
		setReg(v)
	case ST, STW, STB:
		o.IsMem, o.IsStore = true, true
		o.Addr = a + uint64(imm)
		o.Size = in.MemBytes()
		o.StoreVal = st.Reg(in.Rd)
		if !st.Store(o.Addr, o.Size, o.StoreVal) {
			o.Fault = true
		}

	case BEQ, BNE, BLT, BLE, BGT, BGE:
		o.IsCtrl = true
		o.Target = in.BranchTarget(pc)
		switch in.Op {
		case BEQ:
			o.Taken = a == 0
		case BNE:
			o.Taken = a != 0
		case BLT:
			o.Taken = int64(a) < 0
		case BLE:
			o.Taken = int64(a) <= 0
		case BGT:
			o.Taken = int64(a) > 0
		case BGE:
			o.Taken = int64(a) >= 0
		}
	case BR:
		o.IsCtrl, o.Taken = true, true
		o.Target = in.BranchTarget(pc)
	case JMP, RET:
		o.IsCtrl, o.Taken = true, true
		o.Target = a
	case CALL:
		o.IsCtrl, o.Taken = true, true
		o.Target = in.BranchTarget(pc)
		setReg(pc + InstBytes)
	case CALLR:
		o.IsCtrl, o.Taken = true, true
		o.Target = a
		setReg(pc + InstBytes)

	case FORK:
		o.Fork = true
		o.SliceIndex = int(in.Imm)
	case HALT:
		o.Halt = true
	}
	return o
}
