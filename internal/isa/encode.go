package isa

import (
	"encoding/binary"
	"fmt"
)

// SSA-64 instructions encode to a fixed 64-bit word:
//
//	bits 63..56  opcode
//	bits 55..48  rd
//	bits 47..40  ra
//	bits 39..32  rb
//	bits 31..0   signed immediate
//
// The architectural PC still advances by InstBytes (4) per instruction —
// encoded program images are only used for storage, golden tests, and the
// disassembler CLI, not for fetch (the simulator fetches decoded
// instructions, like a trace cache would).

// EncodedBytes is the size of one encoded instruction word.
const EncodedBytes = 8

// Encode packs in into its 64-bit encoding.
func Encode(in *Inst) uint64 {
	return uint64(in.Op)<<56 |
		uint64(in.Rd)<<48 |
		uint64(in.Ra)<<40 |
		uint64(in.Rb)<<32 |
		uint64(uint32(in.Imm))
}

// Decode unpacks a 64-bit encoding. It returns an error for undefined
// opcodes or out-of-range register numbers.
func Decode(w uint64) (Inst, error) {
	in := Inst{
		Op:  Op(w >> 56),
		Rd:  Reg(w >> 48),
		Ra:  Reg(w >> 40),
		Rb:  Reg(w >> 32),
		Imm: int32(uint32(w)),
	}
	if !in.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d", uint8(w>>56))
	}
	if in.Rd >= NumRegs || in.Ra >= NumRegs || in.Rb >= NumRegs {
		return Inst{}, fmt.Errorf("isa: register out of range in %#x", w)
	}
	return in, nil
}

// EncodeProgram encodes a sequence of instructions to little-endian bytes.
func EncodeProgram(insts []Inst) []byte {
	out := make([]byte, 0, len(insts)*EncodedBytes)
	var buf [EncodedBytes]byte
	for i := range insts {
		binary.LittleEndian.PutUint64(buf[:], Encode(&insts[i]))
		out = append(out, buf[:]...)
	}
	return out
}

// DecodeProgram decodes a little-endian byte image produced by
// EncodeProgram.
func DecodeProgram(img []byte) ([]Inst, error) {
	if len(img)%EncodedBytes != 0 {
		return nil, fmt.Errorf("isa: image length %d not a multiple of %d", len(img), EncodedBytes)
	}
	out := make([]Inst, 0, len(img)/EncodedBytes)
	for off := 0; off < len(img); off += EncodedBytes {
		in, err := Decode(binary.LittleEndian.Uint64(img[off:]))
		if err != nil {
			return nil, fmt.Errorf("isa: at offset %d: %w", off, err)
		}
		out = append(out, in)
	}
	return out, nil
}
