package compiled_test

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/isa/compiled"
	"repro/internal/mem"
	"repro/internal/progen"
)

// runCompiledVsInterp executes one random progen program on both engines
// and diffs them two ways:
//
//   - lockstep: Machine.Step against isa.Execute, Outcome-for-Outcome,
//     with the register files compared at every divergence candidate;
//   - chunked: Machine.Run in uneven maxInsts chunks (slicing fused pairs
//     at arbitrary points) against the interpreter's final state.
func runCompiledVsInterp(t *testing.T, seed int64, chunk uint64) {
	rng := rand.New(rand.NewSource(seed))
	im, entry, init := progen.Program(rng)
	prog := compiled.Compile(im)
	const maxSteps = 2_000_000

	// Lockstep pass.
	refMem := mem.New()
	init(refMem)
	ref := &refState{m: refMem}
	maMem := mem.New()
	init(maMem)
	ma := compiled.NewMachine(prog, maMem, entry)

	pc := entry
	steps := 0
	for ; steps < maxSteps; steps++ {
		in, ok := im.At(pc)
		if !ok {
			t.Fatalf("seed %d: reference fell off the image at %#x", seed, pc)
		}
		want := isa.Execute(in, pc, ref)
		var got isa.Outcome
		op, err := ma.Step(&got)
		if err != nil {
			t.Fatalf("seed %d: Step at %#x: %v", seed, pc, err)
		}
		if op != in.Op {
			t.Fatalf("seed %d at %#x: op %v, want %v", seed, pc, op, in.Op)
		}
		if got != want {
			t.Fatalf("seed %d at %#x (%v): outcome mismatch\n got  %+v\n want %+v",
				seed, pc, in.Op, got, want)
		}
		if want.Halt {
			break
		}
		pc = want.NextPC(pc)
		if ma.PC() != pc {
			t.Fatalf("seed %d: pc diverged after %#x: got %#x, want %#x", seed, pc, ma.PC(), pc)
		}
	}
	if steps == maxSteps {
		t.Fatalf("seed %d: program did not halt within %d steps", seed, maxSteps)
	}
	var gotRegs [isa.NumRegs]uint64
	ma.CopyRegs(&gotRegs)
	if gotRegs != ref.regs {
		t.Fatalf("seed %d: lockstep register files diverge\n got  %v\n want %v",
			seed, gotRegs, ref.regs)
	}
	if !maMem.Snapshot().Equal(refMem.Snapshot()) {
		t.Fatalf("seed %d: lockstep memories diverge", seed)
	}

	// Chunked-Run pass against the lockstep-validated final state.
	runMem := mem.New()
	init(runMem)
	mb := compiled.NewMachine(prog, runMem, entry)
	chunk = chunk%37 + 1
	var retired uint64
	for !mb.Halted() {
		n, err := mb.Run(chunk)
		if err != nil {
			t.Fatalf("seed %d chunk %d: Run: %v", seed, chunk, err)
		}
		retired += n
		if retired > maxSteps {
			t.Fatalf("seed %d chunk %d: did not halt within %d insts", seed, chunk, maxSteps)
		}
	}
	if retired != uint64(steps)+1 {
		t.Fatalf("seed %d chunk %d: retired %d, lockstep retired %d", seed, chunk, retired, steps+1)
	}
	if mb.PC() != pc {
		t.Fatalf("seed %d chunk %d: final pc %#x, want %#x", seed, chunk, mb.PC(), pc)
	}
	var runRegs [isa.NumRegs]uint64
	mb.CopyRegs(&runRegs)
	if runRegs != ref.regs {
		t.Fatalf("seed %d chunk %d: Run register files diverge\n got  %v\n want %v",
			seed, chunk, runRegs, ref.regs)
	}
	if !runMem.Snapshot().Equal(refMem.Snapshot()) {
		t.Fatalf("seed %d chunk %d: Run memories diverge", seed, chunk)
	}
}

// TestCompiledVsInterpSeeds is the always-on slice of the fuzzer, so plain
// `go test` differentially covers the generator's whole instruction mix.
func TestCompiledVsInterpSeeds(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			runCompiledVsInterp(t, seed, uint64(seed)*7)
		})
	}
}

// FuzzCompiledVsInterp drives random progen programs through the compiled
// engine in lockstep and in uneven Run chunks, against the isa.Execute
// interpreter as the semantic reference.
func FuzzCompiledVsInterp(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, uint64(seed)*13)
	}
	f.Fuzz(func(t *testing.T, seed int64, chunk uint64) {
		runCompiledVsInterp(t, seed, chunk)
	})
}
