package compiled_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/isa/compiled"
	"repro/internal/mem"
)

const base = uint64(0x1000)

// refState adapts a flat register file and a Memory to isa.State, so
// isa.Execute can serve as the golden reference.
type refState struct {
	regs [isa.NumRegs]uint64
	m    *mem.Memory
}

func (s *refState) Reg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return s.regs[r]
}

func (s *refState) SetReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		s.regs[r] = v
	}
}

func (s *refState) Load(addr uint64, size int) (uint64, bool)  { return s.m.Read(addr, size) }
func (s *refState) Store(addr uint64, size int, v uint64) bool { return s.m.Write(addr, size, v) }

func image(t testing.TB, progs ...*asm.Program) *asm.Image {
	t.Helper()
	im, err := asm.NewImage(progs...)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// interpRun mirrors cpu.RunFunctionalInterp against a refState: the
// reference loop every whole-program comparison below diffs Run against.
func interpRun(t testing.TB, im *asm.Image, st *refState, entry, maxInsts uint64) (pc, retired uint64, halted bool) {
	t.Helper()
	pc = entry
	for retired < maxInsts {
		in, ok := im.At(pc)
		if !ok {
			t.Fatalf("interp reference fell off the image at %#x after %d instructions", pc, retired)
		}
		out := isa.Execute(in, pc, st)
		retired++
		if out.Halt {
			return pc, retired, true
		}
		pc = out.NextPC(pc)
	}
	return pc, retired, false
}

// goldenCase executes one instruction on both engines from identical
// state. regs seeds the register file; stores8 seeds memory (8-byte
// writes).
type goldenCase struct {
	name    string
	in      isa.Inst
	regs    map[isa.Reg]uint64
	stores8 map[uint64]uint64
}

// TestStepGolden holds Machine.Step outcome-for-outcome equal to
// isa.Execute for every opcode, including the edges predecode could get
// wrong: immediate pre-masking for shifts, the pre-shifted LDIH immediate,
// LDW sign extension, CMOV with the Zero destination, fault paths, and
// link-register aliasing.
func TestStepGolden(t *testing.T) {
	const (
		minI64 = uint64(1) << 63 // math.MinInt64 as a bit pattern
		data   = uint64(0x40000) // mapped scratch page
	)
	cases := []goldenCase{
		{name: "nop", in: isa.Inst{Op: isa.NOP}},

		{name: "add", in: isa.Inst{Op: isa.ADD, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 7, 3: ^uint64(0)}},
		{name: "add/rd=zero", in: isa.Inst{Op: isa.ADD, Rd: isa.Zero, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 7, 3: 9}},
		{name: "sub/underflow", in: isa.Inst{Op: isa.SUB, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 1, 3: 2}},
		{name: "mul/overflow", in: isa.Inst{Op: isa.MUL, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 0x123456789, 3: 0x987654321}},
		{name: "div", in: isa.Inst{Op: isa.DIV, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: ^uint64(6) + 1, 3: 2}},
		{name: "div/by-zero", in: isa.Inst{Op: isa.DIV, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 42}},
		{name: "div/minint-by-minus-one", in: isa.Inst{Op: isa.DIV, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: minI64, 3: ^uint64(0)}},
		{name: "and", in: isa.Inst{Op: isa.AND, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 0xF0F0, 3: 0xFF00}},
		{name: "or", in: isa.Inst{Op: isa.OR, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 0xF0F0, 3: 0xFF00}},
		{name: "xor", in: isa.Inst{Op: isa.XOR, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 0xF0F0, 3: 0xFF00}},

		{name: "sll/amount-63", in: isa.Inst{Op: isa.SLL, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 3, 3: 63}},
		{name: "sll/amount-64-masks-to-0", in: isa.Inst{Op: isa.SLL, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 3, 3: 64}},
		{name: "srl/amount-200-masks", in: isa.Inst{Op: isa.SRL, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: ^uint64(0), 3: 200}},
		{name: "sra/negative", in: isa.Inst{Op: isa.SRA, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: minI64, 3: 60}},

		{name: "cmpeq", in: isa.Inst{Op: isa.CMPEQ, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 5, 3: 5}},
		{name: "cmplt/signed", in: isa.Inst{Op: isa.CMPLT, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: ^uint64(0), 3: 1}},
		{name: "cmple/equal", in: isa.Inst{Op: isa.CMPLE, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 9, 3: 9}},
		{name: "cmpult/unsigned", in: isa.Inst{Op: isa.CMPULT, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: ^uint64(0), 3: 1}},
		{name: "cmpule", in: isa.Inst{Op: isa.CMPULE, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 1, 3: ^uint64(0)}},
		{name: "s4add", in: isa.Inst{Op: isa.S4ADD, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 10, 3: 100}},
		{name: "s8add", in: isa.Inst{Op: isa.S8ADD, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{2: 10, 3: 100}},

		{name: "addi/negative", in: isa.Inst{Op: isa.ADDI, Rd: 1, Ra: 2, Imm: -5},
			regs: map[isa.Reg]uint64{2: 3}},
		{name: "andi/negative-extends", in: isa.Inst{Op: isa.ANDI, Rd: 1, Ra: 2, Imm: -16},
			regs: map[isa.Reg]uint64{2: 0x1234_5678_9ABC_DEFF}},
		{name: "ori", in: isa.Inst{Op: isa.ORI, Rd: 1, Ra: 2, Imm: 0x0F0},
			regs: map[isa.Reg]uint64{2: 0xF00}},
		{name: "xori/negative", in: isa.Inst{Op: isa.XORI, Rd: 1, Ra: 2, Imm: -1},
			regs: map[isa.Reg]uint64{2: 0x5555}},
		{name: "slli/63", in: isa.Inst{Op: isa.SLLI, Rd: 1, Ra: 2, Imm: 63},
			regs: map[isa.Reg]uint64{2: 3}},
		{name: "slli/neg-1-masks-to-63", in: isa.Inst{Op: isa.SLLI, Rd: 1, Ra: 2, Imm: -1},
			regs: map[isa.Reg]uint64{2: 3}},
		{name: "srli/70-masks-to-6", in: isa.Inst{Op: isa.SRLI, Rd: 1, Ra: 2, Imm: 70},
			regs: map[isa.Reg]uint64{2: ^uint64(0)}},
		{name: "srai/negative-value", in: isa.Inst{Op: isa.SRAI, Rd: 1, Ra: 2, Imm: 4},
			regs: map[isa.Reg]uint64{2: minI64}},
		{name: "cmpeqi/negative", in: isa.Inst{Op: isa.CMPEQI, Rd: 1, Ra: 2, Imm: -7},
			regs: map[isa.Reg]uint64{2: ^uint64(6) + 1}},
		{name: "cmplti", in: isa.Inst{Op: isa.CMPLTI, Rd: 1, Ra: 2, Imm: -1},
			regs: map[isa.Reg]uint64{2: ^uint64(1) + 1}},
		{name: "cmplei", in: isa.Inst{Op: isa.CMPLEI, Rd: 1, Ra: 2, Imm: 5},
			regs: map[isa.Reg]uint64{2: 5}},
		{name: "cmpulti/negative-imm-is-huge", in: isa.Inst{Op: isa.CMPULTI, Rd: 1, Ra: 2, Imm: -1},
			regs: map[isa.Reg]uint64{2: 5}},
		{name: "ldi/negative", in: isa.Inst{Op: isa.LDI, Rd: 1, Imm: -12345}},
		{name: "ldih/negative", in: isa.Inst{Op: isa.LDIH, Rd: 1, Ra: 2, Imm: -2},
			regs: map[isa.Reg]uint64{2: 0x10000}},

		{name: "cmoveq/fires", in: isa.Inst{Op: isa.CMOVEQ, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{1: 99, 3: 7}},
		{name: "cmoveq/holds", in: isa.Inst{Op: isa.CMOVEQ, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{1: 99, 2: 1, 3: 7}},
		{name: "cmovne/fires", in: isa.Inst{Op: isa.CMOVNE, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{1: 99, 2: 1, 3: 7}},
		{name: "cmovlt/fires", in: isa.Inst{Op: isa.CMOVLT, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{1: 99, 2: minI64, 3: 7}},
		{name: "cmovge/zero-fires", in: isa.Inst{Op: isa.CMOVGE, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{1: 99, 3: 7}},
		{name: "cmovgt/holds-at-zero", in: isa.Inst{Op: isa.CMOVGT, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{1: 99, 3: 7}},
		{name: "cmovle/fires", in: isa.Inst{Op: isa.CMOVLE, Rd: 1, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{1: 99, 2: ^uint64(0), 3: 7}},
		// The condition fires but the destination is Zero: no write may be
		// reported (Execute suppresses it; the compiled write lands in the
		// dump slot).
		{name: "cmoveq/rd-zero-fires", in: isa.Inst{Op: isa.CMOVEQ, Rd: isa.Zero, Ra: 2, Rb: 3},
			regs: map[isa.Reg]uint64{3: 7}},

		{name: "ld", in: isa.Inst{Op: isa.LD, Rd: 1, Ra: 2, Imm: 8},
			regs:    map[isa.Reg]uint64{2: data},
			stores8: map[uint64]uint64{data + 8: 0xDEAD_BEEF_CAFE_F00D}},
		{name: "ldw/sign-extends", in: isa.Inst{Op: isa.LDW, Rd: 1, Ra: 2},
			regs:    map[isa.Reg]uint64{2: data},
			stores8: map[uint64]uint64{data: 0xFFFF_8000}},
		{name: "ldw/positive", in: isa.Inst{Op: isa.LDW, Rd: 1, Ra: 2, Imm: 4},
			regs:    map[isa.Reg]uint64{2: data},
			stores8: map[uint64]uint64{data: 0x7FFF_FFFF_0000_0000}},
		{name: "ldbu/zero-extends", in: isa.Inst{Op: isa.LDBU, Rd: 1, Ra: 2},
			regs:    map[isa.Reg]uint64{2: data},
			stores8: map[uint64]uint64{data: 0xFF}},
		{name: "ld/fault-null-page", in: isa.Inst{Op: isa.LD, Rd: 1, Ra: 2, Imm: 0x10},
			regs: map[isa.Reg]uint64{1: 0x1234}},
		{name: "ld/fault-unmapped", in: isa.Inst{Op: isa.LD, Rd: 1, Ra: 2},
			regs: map[isa.Reg]uint64{1: 0x1234, 2: 0x999000}},
		{name: "ldw/fault-sign-extends-zero", in: isa.Inst{Op: isa.LDW, Rd: 1, Ra: 2},
			regs: map[isa.Reg]uint64{1: 0x1234, 2: 0x999000}},

		{name: "st", in: isa.Inst{Op: isa.ST, Rd: 3, Ra: 2, Imm: 16},
			regs:    map[isa.Reg]uint64{2: data, 3: 0x1122_3344_5566_7788},
			stores8: map[uint64]uint64{data: 1}},
		{name: "stw/truncates", in: isa.Inst{Op: isa.STW, Rd: 3, Ra: 2},
			regs:    map[isa.Reg]uint64{2: data, 3: 0x1122_3344_5566_7788},
			stores8: map[uint64]uint64{data: ^uint64(0)}},
		{name: "stb", in: isa.Inst{Op: isa.STB, Rd: 3, Ra: 2, Imm: 3},
			regs:    map[isa.Reg]uint64{2: data, 3: 0xABCD},
			stores8: map[uint64]uint64{data: ^uint64(0)}},
		{name: "st/rd-zero-stores-zero", in: isa.Inst{Op: isa.ST, Rd: isa.Zero, Ra: 2},
			regs:    map[isa.Reg]uint64{2: data},
			stores8: map[uint64]uint64{data: ^uint64(0)}},
		{name: "st/fault-null-page", in: isa.Inst{Op: isa.ST, Rd: 3, Ra: isa.Zero, Imm: 0x20},
			regs: map[isa.Reg]uint64{3: 42}},
		{name: "stw/fault-unmapped", in: isa.Inst{Op: isa.STW, Rd: 3, Ra: 2},
			regs: map[isa.Reg]uint64{2: 0x999000, 3: 42}},

		{name: "beq/taken", in: isa.Inst{Op: isa.BEQ, Ra: 2, Imm: 5}},
		{name: "beq/not-taken", in: isa.Inst{Op: isa.BEQ, Ra: 2, Imm: 5},
			regs: map[isa.Reg]uint64{2: 1}},
		{name: "bne/taken", in: isa.Inst{Op: isa.BNE, Ra: 2, Imm: -3},
			regs: map[isa.Reg]uint64{2: 1}},
		{name: "blt/taken-negative", in: isa.Inst{Op: isa.BLT, Ra: 2, Imm: 2},
			regs: map[isa.Reg]uint64{2: minI64}},
		{name: "ble/taken-zero", in: isa.Inst{Op: isa.BLE, Ra: 2, Imm: 2}},
		{name: "bgt/not-taken-zero", in: isa.Inst{Op: isa.BGT, Ra: 2, Imm: 2}},
		{name: "bge/taken-zero", in: isa.Inst{Op: isa.BGE, Ra: 2, Imm: 2}},
		{name: "br", in: isa.Inst{Op: isa.BR, Imm: 7}},
		{name: "br/backward-out-of-region", in: isa.Inst{Op: isa.BR, Imm: -100}},
		{name: "jmp", in: isa.Inst{Op: isa.JMP, Ra: 2},
			regs: map[isa.Reg]uint64{2: 0x2000}},
		{name: "call", in: isa.Inst{Op: isa.CALL, Rd: isa.RA, Imm: 3}},
		{name: "call/rd-zero", in: isa.Inst{Op: isa.CALL, Rd: isa.Zero, Imm: 3}},
		{name: "callr", in: isa.Inst{Op: isa.CALLR, Rd: isa.RA, Ra: 2},
			regs: map[isa.Reg]uint64{2: 0x3000}},
		// ra == rd: the target must be read before the link write.
		{name: "callr/ra-aliases-rd", in: isa.Inst{Op: isa.CALLR, Rd: 2, Ra: 2},
			regs: map[isa.Reg]uint64{2: 0x3000}},
		{name: "ret", in: isa.Inst{Op: isa.RET, Ra: isa.RA},
			regs: map[isa.Reg]uint64{isa.RA: 0x4000}},

		{name: "fork", in: isa.Inst{Op: isa.FORK, Imm: 3}},
		{name: "fork/negative-index", in: isa.Inst{Op: isa.FORK, Imm: -1}},
		{name: "halt", in: isa.Inst{Op: isa.HALT}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			im := image(t, &asm.Program{Base: base, Insts: []isa.Inst{tc.in}})

			ref := &refState{m: mem.New()}
			maMem := mem.New()
			for addr, v := range tc.stores8 {
				ref.m.WriteU64(addr, v)
				maMem.WriteU64(addr, v)
			}
			var regs [isa.NumRegs]uint64
			for r, v := range tc.regs {
				regs[r] = v
			}
			ref.regs = regs

			ma := compiled.NewMachine(compiled.Compile(im), maMem, base)
			ma.SetRegs(&regs)

			want := isa.Execute(&tc.in, base, ref)

			var got isa.Outcome
			op, err := ma.Step(&got)
			if err != nil {
				t.Fatalf("Step: %v", err)
			}
			if op != tc.in.Op {
				t.Errorf("Step returned op %v, want %v", op, tc.in.Op)
			}
			if got != want {
				t.Errorf("outcome mismatch:\n got  %+v\n want %+v", got, want)
			}

			wantPC := want.NextPC(base)
			if want.Halt {
				wantPC = base // PC parks on the HALT
			}
			if ma.PC() != wantPC {
				t.Errorf("pc = %#x, want %#x", ma.PC(), wantPC)
			}
			if ma.Halted() != want.Halt {
				t.Errorf("halted = %v, want %v", ma.Halted(), want.Halt)
			}

			var gotRegs [isa.NumRegs]uint64
			ma.CopyRegs(&gotRegs)
			if gotRegs != ref.regs {
				t.Errorf("register files diverge:\n got  %v\n want %v", gotRegs, ref.regs)
			}
			if !maMem.Snapshot().Equal(ref.m.Snapshot()) {
				t.Errorf("memories diverge after %v", tc.in.Op)
			}
		})
	}
}

// TestStepLockstepFusedProgram single-steps a program built entirely from
// fusable pairs and holds every Outcome equal to isa.Execute's. Step must
// execute exactly one architectural instruction even when the slot it
// lands on is a fused superop — including a branch entering the *second*
// element of a fused pair.
func TestStepLockstepFusedProgram(t *testing.T) {
	p := &asm.Program{Base: base, Insts: []isa.Inst{
		{Op: isa.LDI, Rd: 1, Imm: 3},                  // +0  fuses with next
		{Op: isa.ADDI, Rd: 2, Ra: 1, Imm: 4},          // +4  r2 = 7
		{Op: isa.CMPEQ, Rd: 3, Ra: 1, Rb: 2},          // +8  fuses with next: r3 = 0
		{Op: isa.BNE, Ra: 3, Imm: 5},                  // +12 taken -> +36 (HALT); not taken first pass
		{Op: isa.S4ADD, Rd: 4, Ra: 1, Rb: isa.Zero},   // +16 fuses with next: r4 = 12
		{Op: isa.LD, Rd: 5, Ra: 4, Imm: 0x40000 - 12}, // +20 loads arena[0] = 77
		{Op: isa.CMPEQI, Rd: 6, Ra: 5, Imm: 77},       // +24 fuses with next: r6 = 1
		{Op: isa.BEQ, Ra: 6, Imm: -7},                 // +28 not taken (load hit 77)
		{Op: isa.BR, Imm: -6},                         // +32 -> +12: jumps INTO the fused pair at +8
		{Op: isa.HALT},                                // +36
	}}
	// The BR at +32 targets +12 — the BNE that is the *second* constituent
	// of the fused pair at +8. Its slot keeps its own plain decode, so the
	// re-entry must execute exactly the branch. On the second visit r3 is
	// poked to 1 below, making the re-entered branch taken (-> HALT).
	im := image(t, p)

	refMem, maMem := mem.New(), mem.New()
	refMem.WriteU64(0x40000, 77)
	maMem.WriteU64(0x40000, 77)

	ref := &refState{m: refMem}
	ma := compiled.NewMachine(compiled.Compile(im), maMem, base)

	pc := base
	for steps := 0; steps < 32; steps++ {
		in, ok := im.At(pc)
		if !ok {
			t.Fatalf("reference fell off the image at %#x", pc)
		}
		if pc == base+12 && steps > 3 {
			// Second visit to the BNE (entered mid-pair via the BR): make it
			// taken this time by poking r3 on both sides, so the
			// branch-into-fused-slot entry exercises the taken path too.
			ref.regs[3] = 1
			ma.SetReg(3, 1)
		}
		want := isa.Execute(in, pc, ref)
		var got isa.Outcome
		op, err := ma.Step(&got)
		if err != nil {
			t.Fatalf("Step at %#x: %v", pc, err)
		}
		if op != in.Op {
			t.Fatalf("at %#x: op %v, want %v", pc, op, in.Op)
		}
		if got != want {
			t.Fatalf("at %#x (%v): outcome mismatch\n got  %+v\n want %+v", pc, in.Op, got, want)
		}
		var gotRegs [isa.NumRegs]uint64
		ma.CopyRegs(&gotRegs)
		if gotRegs != ref.regs {
			t.Fatalf("at %#x: register files diverge", pc)
		}
		if want.Halt {
			if ma.PC() != pc {
				t.Fatalf("halt pc = %#x, want %#x", ma.PC(), pc)
			}
			return
		}
		pc = want.NextPC(pc)
		if ma.PC() != pc {
			t.Fatalf("pc = %#x, want %#x", ma.PC(), pc)
		}
	}
	t.Fatal("program did not halt within the step budget")
}

// fusedProg returns a program whose hot loop exercises all four fusion
// kinds, with an arena walk (s4add+ld and s8add+ld), cmp+branch loop
// control, and ldi+addi constant setup — plus an addi whose destination
// overwrites the ldi's.
func fusedProg() (*asm.Program, func(m *mem.Memory)) {
	const arena = uint64(0x40000)
	p := &asm.Program{Base: base, Insts: []isa.Inst{
		{Op: isa.LDI, Rd: 1, Imm: 0},            // +0   i = 0 (fuses with next)
		{Op: isa.ADDI, Rd: 2, Ra: 1, Imm: 16},   // +4   n = 16
		{Op: isa.LDI, Rd: 3, Imm: 100},          // +8   ldi+addi, rd aliased
		{Op: isa.ADDI, Rd: 3, Ra: 3, Imm: -58},  // +12  r3 = 42
		{Op: isa.LDI, Rd: 7, Imm: int32(arena)}, // +16  arena base
		// loop:
		{Op: isa.S4ADD, Rd: 4, Ra: 1, Rb: 7},   // +20  fused s4add+ldw
		{Op: isa.LDW, Rd: 5, Ra: 4, Imm: 0},    // +24
		{Op: isa.ADD, Rd: 6, Ra: 6, Rb: 5},     // +28  sum += arena32[i]
		{Op: isa.S8ADD, Rd: 4, Ra: 1, Rb: 7},   // +32  fused s8add+ld
		{Op: isa.LD, Rd: 5, Ra: 4, Imm: 256},   // +36
		{Op: isa.ADD, Rd: 6, Ra: 6, Rb: 5},     // +40  sum += arena64[i]
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: 1},   // +44  i++
		{Op: isa.CMPLT, Rd: 8, Ra: 1, Rb: 2},   // +48  fused cmp+bne
		{Op: isa.BNE, Ra: 8, Imm: -9},          // +52  -> +20 while i < n
		{Op: isa.CMPEQI, Rd: 8, Ra: 6, Imm: 0}, // +56  fused cmpi+beq
		{Op: isa.BEQ, Ra: 8, Imm: 1},           // +60  sum != 0: skip the poison
		{Op: isa.LDI, Rd: 6, Imm: -1},          // +64  (not reached)
		{Op: isa.ST, Rd: 6, Ra: 7, Imm: -8},    // +68  spill sum
		{Op: isa.HALT},                         // +72
	}}
	init := func(m *mem.Memory) {
		for i := uint64(0); i < 16; i++ {
			m.Write(arena+i*4, 4, i*3+1)
			m.WriteU64(arena+256+i*8, i*7+1)
		}
	}
	return p, init
}

// TestRunFusedAgainstInterp runs the all-fusions program flat out on the
// compiled engine and diffs the final architectural state (registers, PC,
// retired count, halt flag, memory) against the isa.Execute reference loop.
func TestRunFusedAgainstInterp(t *testing.T) {
	p, init := fusedProg()
	im := image(t, p)

	refMem, maMem := mem.New(), mem.New()
	init(refMem)
	init(maMem)

	ref := &refState{m: refMem}
	refPC, refRetired, refHalted := interpRun(t, im, ref, base, 10_000)
	if !refHalted {
		t.Fatal("reference did not halt")
	}

	ma := compiled.NewMachine(compiled.Compile(im), maMem, base)
	retired, err := ma.Run(10_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if retired != refRetired {
		t.Errorf("retired %d, want %d", retired, refRetired)
	}
	if !ma.Halted() {
		t.Error("machine did not halt")
	}
	if ma.PC() != refPC {
		t.Errorf("pc = %#x, want %#x", ma.PC(), refPC)
	}
	var gotRegs [isa.NumRegs]uint64
	ma.CopyRegs(&gotRegs)
	if gotRegs != ref.regs {
		t.Errorf("register files diverge:\n got  %v\n want %v", gotRegs, ref.regs)
	}
	if !maMem.Snapshot().Equal(refMem.Snapshot()) {
		t.Error("memories diverge")
	}
	// Sanity that the program actually summed something (guards against a
	// vacuous pass where fusion skipped the loop body entirely).
	if gotRegs[6] == 0 {
		t.Error("loop body never ran: sum is zero")
	}

	// A second machine over the same compiled Program must be independent.
	maMem2 := mem.New()
	init(maMem2)
	ma2 := compiled.NewMachine(compiled.Cached(im), maMem2, base)
	if n, err := ma2.Run(10_000); err != nil || n != refRetired {
		t.Errorf("second machine: retired %d, err %v; want %d, nil", n, err, refRetired)
	}
}

// TestRunFusedLoadFault holds the fused s4add+load pair to the same
// fault semantics as the unfused sequence: the load reads zero and
// execution continues.
func TestRunFusedLoadFault(t *testing.T) {
	p := &asm.Program{Base: base, Insts: []isa.Inst{
		{Op: isa.LDI, Rd: 5, Imm: 0x1234},           // poison rd to prove the overwrite
		{Op: isa.S4ADD, Rd: 4, Ra: isa.Zero, Rb: 2}, // fused with next
		{Op: isa.LD, Rd: 5, Ra: 4, Imm: 0},          // faults: r2 is unmapped
		{Op: isa.ADDI, Rd: 6, Ra: 5, Imm: 1},        // runs after the fault
		{Op: isa.HALT},
	}}
	im := image(t, p)
	ma := compiled.NewMachine(compiled.Compile(im), mem.New(), base)
	ma.SetReg(2, 0x999000)
	retired, err := ma.Run(100)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if retired != 5 {
		t.Errorf("retired %d, want 5", retired)
	}
	if got := ma.Reg(5); got != 0 {
		t.Errorf("faulting fused load left r5 = %#x, want 0", got)
	}
	if got := ma.Reg(6); got != 1 {
		t.Errorf("post-fault execution got r6 = %#x, want 1", got)
	}
}

// TestRunMaxInstsBoundary holds Run to exact retired counts when the
// budget splits a fused pair: only the first constituent executes, the PC
// lands between the two, and resuming completes the pair.
func TestRunMaxInstsBoundary(t *testing.T) {
	p, init := fusedProg()
	im := image(t, p)

	// Reference: interp state after each prefix length.
	for _, budget := range []uint64{1, 2, 3, 5, 7, 13, 14, 50, 51, 97} {
		refMem, maMem := mem.New(), mem.New()
		init(refMem)
		init(maMem)
		ref := &refState{m: refMem}
		refPC, refRetired, refHalted := interpRun(t, im, ref, base, budget)

		ma := compiled.NewMachine(compiled.Compile(im), maMem, base)
		retired, err := ma.Run(budget)
		if err != nil {
			t.Fatalf("budget %d: Run: %v", budget, err)
		}
		if retired != refRetired {
			t.Errorf("budget %d: retired %d, want %d", budget, retired, refRetired)
		}
		if ma.PC() != refPC && !refHalted {
			t.Errorf("budget %d: pc = %#x, want %#x", budget, ma.PC(), refPC)
		}
		var gotRegs [isa.NumRegs]uint64
		ma.CopyRegs(&gotRegs)
		if gotRegs != ref.regs {
			t.Errorf("budget %d: register files diverge", budget)
		}

		// Resume to completion; the split pair's second half must retire.
		rest, err := ma.Run(10_000)
		if err != nil {
			t.Fatalf("budget %d resume: %v", budget, err)
		}
		if !refHalted {
			ref2 := &refState{m: refMem, regs: ref.regs}
			_, restRef, _ := interpRun(t, im, ref2, refPC, 10_000)
			if rest != restRef {
				t.Errorf("budget %d resume: retired %d, want %d", budget, rest, restRef)
			}
			var finalRegs [isa.NumRegs]uint64
			ma.CopyRegs(&finalRegs)
			if finalRegs != ref2.regs {
				t.Errorf("budget %d: final register files diverge", budget)
			}
		}
		if !ma.Halted() {
			t.Errorf("budget %d: resume did not reach HALT", budget)
		}
	}
}

// TestRunOffImage holds both engines to the same off-image error.
func TestRunOffImage(t *testing.T) {
	p := &asm.Program{Base: base, Insts: []isa.Inst{
		{Op: isa.LDI, Rd: 1, Imm: 0x5003}, // unaligned target
		{Op: isa.BR, Imm: 100},            // off the end of the region
	}}
	im := image(t, p)
	ma := compiled.NewMachine(compiled.Compile(im), mem.New(), base)
	retired, err := ma.Run(100)
	if retired != 2 {
		t.Errorf("retired %d, want 2", retired)
	}
	var off *compiled.OffImageError
	if !errors.As(err, &off) {
		t.Fatalf("Run returned %v (%T), want *OffImageError", err, err)
	}
	wantPC := base + 2*isa.InstBytes + 100*isa.InstBytes
	if off.PC != wantPC {
		t.Errorf("OffImageError.PC = %#x, want %#x", off.PC, wantPC)
	}
	if !strings.Contains(err.Error(), "outside the image") {
		t.Errorf("error text %q", err)
	}

	// Unaligned PC inside the region: also off-image.
	ma2 := compiled.NewMachine(compiled.Compile(im), mem.New(), base)
	if _, err := ma2.Run(1); err != nil {
		t.Fatalf("first inst: %v", err)
	}
	ma2.SetPC(base + 2)
	if _, err := ma2.Run(1); err == nil {
		t.Error("Run at an unaligned PC returned nil error")
	}
	var out isa.Outcome
	if _, err := ma2.Step(&out); err == nil {
		t.Error("Step at an unaligned PC returned nil error")
	}
}

// TestRunHalted: a halted machine retires nothing until redirected.
func TestRunHalted(t *testing.T) {
	p := &asm.Program{Base: base, Insts: []isa.Inst{{Op: isa.HALT}}}
	im := image(t, p)
	ma := compiled.NewMachine(compiled.Compile(im), mem.New(), base)
	if n, err := ma.Run(100); n != 1 || err != nil {
		t.Fatalf("Run = (%d, %v), want (1, nil)", n, err)
	}
	if n, err := ma.Run(100); n != 0 || err != nil {
		t.Errorf("halted Run = (%d, %v), want (0, nil)", n, err)
	}
	if ma.PC() != base {
		t.Errorf("halted pc = %#x, want %#x (parked on the HALT)", ma.PC(), base)
	}
	ma.SetPC(base)
	if ma.Halted() {
		t.Error("SetPC did not clear the halted flag")
	}
	if n, _ := ma.Run(100); n != 1 {
		t.Errorf("redirected Run retired %d, want 1", n)
	}
}

// TestZeroRegisterInvariant: no instruction sequence may make the
// architectural Zero register read nonzero — compiled writes to Zero land
// in the dump slot, and SetRegs must restore the invariant even when
// handed a corrupted file.
func TestZeroRegisterInvariant(t *testing.T) {
	p := &asm.Program{Base: base, Insts: []isa.Inst{
		{Op: isa.LDI, Rd: isa.Zero, Imm: 123},
		{Op: isa.ADDI, Rd: isa.Zero, Ra: isa.Zero, Imm: 55}, // fuses ldi+addi into Zero
		{Op: isa.LD, Rd: isa.Zero, Ra: isa.Zero, Imm: 0x10}, // faulting load into Zero
		{Op: isa.CALL, Rd: isa.Zero, Imm: 0},                // link write into Zero
		{Op: isa.ADDI, Rd: 1, Ra: isa.Zero, Imm: 9},         // r1 = 0 + 9
		{Op: isa.HALT},
	}}
	im := image(t, p)
	ma := compiled.NewMachine(compiled.Compile(im), mem.New(), base)
	var seeded [isa.NumRegs]uint64
	seeded[isa.Zero] = 0xBAD // SetRegs must discard this
	ma.SetRegs(&seeded)
	if _, err := ma.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := ma.Reg(isa.Zero); got != 0 {
		t.Errorf("Zero reads %#x", got)
	}
	if got := ma.Reg(1); got != 9 {
		t.Errorf("r1 = %d, want 9 (Zero leaked a value)", got)
	}
}
