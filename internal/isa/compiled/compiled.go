// Package compiled implements the predecoded threaded-code functional
// engine: it compiles the code regions of an asm.Image into dense op
// structs once, then executes them with a direct jump-table dispatch, no
// per-instruction image lookup, no isa.State interface crossing, and an
// inlined paged-memory fast path (mem.Pager).
//
// The engine exists because the functional model runs on every hot path
// the simulator has: `-warm=functional` fast-forwards, checkpoint builds,
// and the differential oracle shadowing every retirement. The original
// decode-dispatch interpreter (isa.Execute) stays as the semantic
// reference — the golden tests and FuzzCompiledVsInterp in this package
// hold the two engines outcome-for-outcome equal — and isa.Outcome stays
// the contract with the timing model.
//
// Predecode does three things per instruction:
//
//   - flattens decode: immediates are pre-sign-extended (and pre-masked
//     for immediate shifts, pre-shifted for LDIH), branch targets become
//     op indices within the region, and Zero-register writes are remapped
//     to a dump slot so the hot path has no "rd == Zero" branch;
//   - fuses the dominant dynamic pairs — compare+branch, scaled-add+load
//     (s4add/s8add feeding a load), and ldi+addi constant setup — into
//     single superops. Fusion is overlap-tolerant: ops[i] may be a fused
//     pair (i, i+1) while ops[i+1] still holds instruction i+1's own
//     (possibly itself fused) decode, so every instruction address stays
//     a valid branch-entry point;
//   - keeps the unfused opcode alongside (op.plain), so single-stepping —
//     the oracle's lockstep diff, the warm loop's per-instruction cache
//     touching, and the run-boundary case where a fused pair would
//     overshoot maxInsts — executes exactly one architectural
//     instruction with a full isa.Outcome.
package compiled

import (
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Plain ops dispatch on their isa.Op value; fused superops extend the
// opcode space past isa.HALT.
const (
	kFCmpBr  = isa.HALT + 1 + iota // cmpXX rd,ra,rb ; beq/bne rd
	kFCmpiBr                       // cmpXXi rd,ra,imm ; beq/bne rd
	kFSAddLd                       // s4add/s8add rd,ra,rb ; ld* rx, imm(rd)
	kFLdiAdd                       // ldi rd, imm ; addi rx, rd, imm2
)

// dump is the register-file slot that absorbs writes to the architectural
// Zero register: Machine.Regs has NumRegs+1 entries, writes compiled for
// rd == Zero target slot dump, and nothing ever reads it (reads of Zero go
// to slot 0, which no write path touches).
const dump = isa.NumRegs

// op is one predecoded, possibly fused, operation.
type op struct {
	kind isa.Op // dispatch code: the isa.Op for plain ops, kF* for fused
	// plain is this slot's own architectural opcode (the first constituent
	// when kind is fused); Step dispatches on it.
	plain isa.Op
	wr    uint8 // write slot: rd, or dump when rd == Zero
	rd    uint8 // architectural Rd (outcome reporting, store data, cmov old value)
	ra    uint8
	rb    uint8
	n     uint8 // architectural instructions covered: 1, or 2 when fused
	sz    uint8 // memory access bytes (fused: the load constituent's)
	// Fused second-constituent fields.
	wr2 uint8  // second write slot
	k2  isa.Op // second constituent's opcode (load width / sign extension)
	neg bool   // fused cmp+branch: branch is BEQ (taken when the compare is false)

	imm  int64  // pre-extended immediate (shift-masked, LDIH pre-shifted)
	imm2 int64  // fused: second immediate (kFLdiAdd: the precomputed sum)
	tgt  int32  // direct branch target as an op index in this region; -1 otherwise
	pc   uint64 // this op's address
	tpc  uint64 // direct branch target address
}

// region is one compiled code region.
type region struct {
	base uint64
	end  uint64
	ops  []op
}

// Program is a compiled image: every code region predecoded, in address
// order. Programs are immutable and safe for concurrent Machines.
type Program struct {
	regions []region
}

// Compile predecodes every region of the image.
func Compile(im *asm.Image) *Program {
	progs := im.Programs()
	p := &Program{regions: make([]region, 0, len(progs))}
	for _, pr := range progs {
		p.regions = append(p.regions, compileRegion(pr))
	}
	return p
}

// wrOf maps an architectural destination to its write slot.
func wrOf(r isa.Reg) uint8 {
	if r == isa.Zero {
		return dump
	}
	return uint8(r)
}

func compileRegion(pr *asm.Program) region {
	insts := pr.Insts
	r := region{base: pr.Base, end: pr.End(), ops: make([]op, len(insts))}
	for i := range insts {
		r.ops[i] = decodeOne(&insts[i], pr.Base+uint64(i)*isa.InstBytes, r.base, r.end)
	}
	// Fusion pass, on the original instructions so overlapping pairs stay
	// independent: ops[i] may fuse (i, i+1) while ops[i+1] fuses (i+1, i+2).
	for i := 0; i+1 < len(insts); i++ {
		fuse(&r.ops[i], &insts[i], &insts[i+1], &r.ops[i+1])
	}
	return r
}

// decodeOne predecodes a single instruction into a plain op.
func decodeOne(in *isa.Inst, pc, base, end uint64) op {
	o := op{kind: in.Op, plain: in.Op, rd: uint8(in.Rd), ra: uint8(in.Ra), rb: uint8(in.Rb),
		n: 1, imm: int64(in.Imm), pc: pc, tgt: -1}
	switch {
	case in.Op >= isa.ADD && in.Op <= isa.CMOVLE:
		o.wr = wrOf(in.Rd)
	case in.IsLoad() || in.IsCall():
		o.wr = wrOf(in.Rd)
	default:
		o.wr = dump
	}
	switch in.Op {
	case isa.SLLI, isa.SRLI, isa.SRAI:
		// isa.Execute shifts by uint64(imm) & 63.
		o.imm = int64(uint64(int64(in.Imm)) & 63)
	case isa.LDIH:
		// rd = ra + imm<<16, pre-shifted.
		o.imm = int64(uint64(int64(in.Imm)) << 16)
	}
	if in.IsMem() {
		o.sz = uint8(in.MemBytes())
	}
	if in.IsDirectCtrl() {
		o.tpc = in.BranchTarget(pc)
		if o.tpc >= base && o.tpc < end && (o.tpc-base)%isa.InstBytes == 0 {
			o.tgt = int32((o.tpc - base) / isa.InstBytes)
		}
	}
	return o
}

func isCmpRR(op isa.Op) bool  { return op >= isa.CMPEQ && op <= isa.CMPULE }
func isCmpRI(op isa.Op) bool  { return op >= isa.CMPEQI && op <= isa.CMPULTI }
func isSAdd(op isa.Op) bool   { return op == isa.S4ADD || op == isa.S8ADD }
func isLoadOp(op isa.Op) bool { return op >= isa.LD && op <= isa.LDBU }

// fuse rewrites a into a fused superop when (a, b) matches one of the
// dominant dynamic pairs. b's own op slot (bop) supplies predecoded fields
// of the second constituent (branch targets).
func fuse(ao *op, a, b *isa.Inst, bop *op) {
	switch {
	case (isCmpRR(a.Op) || isCmpRI(a.Op)) &&
		(b.Op == isa.BEQ || b.Op == isa.BNE) &&
		b.Ra == a.Rd && a.Rd != isa.Zero:
		// The compare's 0/1 result steers the branch; the register write
		// still happens (the flag may be live past the branch).
		if isCmpRR(a.Op) {
			ao.kind = kFCmpBr
		} else {
			ao.kind = kFCmpiBr
		}
		ao.n = 2
		ao.neg = b.Op == isa.BEQ
		ao.tgt = bop.tgt
		ao.tpc = bop.tpc

	case isSAdd(a.Op) && isLoadOp(b.Op) && b.Ra == a.Rd && a.Rd != isa.Zero:
		// Address generation feeding a load: rd = ra<<s + rb, then
		// rx = load(rd + imm).
		ao.kind = kFSAddLd
		ao.n = 2
		ao.k2 = b.Op
		ao.sz = uint8(b.MemBytes())
		ao.wr2 = wrOf(b.Rd)
		ao.imm2 = int64(b.Imm)

	case a.Op == isa.LDI && b.Op == isa.ADDI && b.Ra == a.Rd && a.Rd != isa.Zero:
		// Constant setup: both results are compile-time known.
		ao.kind = kFLdiAdd
		ao.n = 2
		ao.wr2 = wrOf(b.Rd)
		ao.imm2 = int64(uint64(int64(a.Imm)) + uint64(int64(b.Imm)))
	}
}

// regionFor returns the region containing pc (aligned), or nil.
func (p *Program) regionFor(pc uint64) *region {
	for i := range p.regions {
		r := &p.regions[i]
		if pc >= r.base && pc < r.end {
			if (pc-r.base)%isa.InstBytes != 0 {
				return nil
			}
			return r
		}
	}
	return nil
}

// OffImageError reports execution leaving the compiled image (or landing
// on an unaligned address), mirroring asm.Image.At returning false.
type OffImageError struct {
	PC uint64
}

func (e *OffImageError) Error() string {
	return fmt.Sprintf("compiled: pc %#x is outside the image", e.PC)
}

// Images are process-lifetime singletons (the 12 workloads), so a small
// identity-keyed cache amortizes compilation across every checkpoint
// build, oracle, and functional run that shares an image. The cap only
// matters for churny transient images (fuzzers); past it, Cached compiles
// without caching.
const cacheCap = 128

var (
	cacheMu    sync.Mutex
	progsCache = make(map[*asm.Image]*Program)
)

// Cached returns the compiled form of im, compiling at most once per
// image for cached entries.
func Cached(im *asm.Image) *Program {
	cacheMu.Lock()
	p := progsCache[im]
	cacheMu.Unlock()
	if p != nil {
		return p
	}
	p = Compile(im)
	cacheMu.Lock()
	if q, ok := progsCache[im]; ok {
		p = q // lost a benign race; converge on one instance
	} else if len(progsCache) < cacheCap {
		progsCache[im] = p
	}
	cacheMu.Unlock()
	return p
}
