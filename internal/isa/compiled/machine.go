package compiled

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// Machine executes a compiled Program against a Memory. It holds the
// register file (with the extra dump slot for Zero writes), a page-pointer
// cache over the memory, and the current PC.
//
// Two execution interfaces:
//
//   - Run executes up to maxInsts instructions flat out: fused superops,
//     no Outcome materialization, memory through the Pager fast path. It
//     matches cpu.RunFunctional's architectural semantics exactly (main
//     thread: faulting loads read zero, faulting stores are dropped,
//     execution continues).
//   - Step executes exactly one architectural instruction and fills a
//     complete isa.Outcome, bit-identical to isa.Execute against the same
//     state. The oracle's lockstep diff and the warm loop's per-
//     instruction cache touching run on Step.
//
// A Machine is single-threaded; create one per concurrent run.
type Machine struct {
	// Regs is the register file. Slot 0 is the architectural Zero register
	// and is never written (compiled writes to Zero land in slot dump);
	// slot dump (NumRegs) is write-only garbage.
	Regs [isa.NumRegs + 1]uint64

	prog   *Program
	pg     mem.Pager
	pc     uint64
	halted bool
	r      *region // region containing pc, lazily looked up
}

// NewMachine returns a Machine executing p against m, starting at pc.
func NewMachine(p *Program, m *mem.Memory, pc uint64) *Machine {
	ma := &Machine{prog: p, pc: pc}
	ma.pg.Init(m)
	return ma
}

// PC returns the current program counter. After a Halt it remains at the
// HALT instruction (matching RunFunctional and FunctionalWarm).
func (ma *Machine) PC() uint64 { return ma.pc }

// SetPC redirects execution and clears the halted flag.
func (ma *Machine) SetPC(pc uint64) {
	ma.pc = pc
	ma.halted = false
}

// Halted reports whether a HALT has retired.
func (ma *Machine) Halted() bool { return ma.halted }

// Mem returns the underlying memory.
func (ma *Machine) Mem() *mem.Memory { return ma.pg.Mem() }

// InvalidatePages drops cached page pointers. Call after writing the
// Memory directly (not through this Machine's execution).
func (ma *Machine) InvalidatePages() { ma.pg.Invalidate() }

// Reg reads an architectural register; Zero reads 0.
func (ma *Machine) Reg(r isa.Reg) uint64 { return ma.Regs[r] }

// SetReg writes an architectural register; writing Zero is a no-op.
func (ma *Machine) SetReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		ma.Regs[r] = v
	}
}

// SetRegs loads the architectural register file.
func (ma *Machine) SetRegs(regs *[isa.NumRegs]uint64) {
	copy(ma.Regs[:isa.NumRegs], regs[:])
	ma.Regs[isa.Zero] = 0 // preserve the never-written invariant
}

// CopyRegs copies the architectural register file out.
func (ma *Machine) CopyRegs(regs *[isa.NumRegs]uint64) {
	copy(regs[:], ma.Regs[:isa.NumRegs])
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// cmpRR evaluates a register-register compare.
func cmpRR(op isa.Op, a, b uint64) uint64 {
	switch op {
	case isa.CMPEQ:
		return b2u(a == b)
	case isa.CMPLT:
		return b2u(int64(a) < int64(b))
	case isa.CMPLE:
		return b2u(int64(a) <= int64(b))
	case isa.CMPULT:
		return b2u(a < b)
	default: // CMPULE
		return b2u(a <= b)
	}
}

// cmpRI evaluates a register-immediate compare.
func cmpRI(op isa.Op, a uint64, imm int64) uint64 {
	switch op {
	case isa.CMPEQI:
		return b2u(a == uint64(imm))
	case isa.CMPLTI:
		return b2u(int64(a) < imm)
	case isa.CMPLEI:
		return b2u(int64(a) <= imm)
	default: // CMPULTI
		return b2u(a < uint64(imm))
	}
}

// Run executes up to maxInsts architectural instructions starting at the
// current PC and returns how many retired. It stops early on HALT (the
// machine stays halted, PC at the HALT) and returns an *OffImageError if
// control leaves the compiled image. A fused pair that would overshoot
// maxInsts executes only its first constituent, so retired counts are
// exact.
func (ma *Machine) Run(maxInsts uint64) (uint64, error) {
	if ma.halted {
		return 0, nil
	}
	regs := &ma.Regs
	pg := &ma.pg
	pc := ma.pc
	r := ma.r
	var retired uint64

outer:
	for retired < maxInsts {
		if r == nil || pc < r.base || pc >= r.end || (pc-r.base)%isa.InstBytes != 0 {
			r = ma.prog.regionFor(pc)
			if r == nil {
				ma.r = nil
				ma.pc = pc
				return retired, &OffImageError{PC: pc}
			}
		}
		ops := r.ops
		n := int32(len(ops))
		i := int32((pc - r.base) / isa.InstBytes)

	inner:
		for retired < maxInsts {
			o := &ops[i]
			switch o.kind {
			case isa.NOP, isa.FORK:
				// FORK is architecturally a no-op; fork side effects belong
				// to the timing model.

			case isa.ADD:
				regs[o.wr] = regs[o.ra] + regs[o.rb]
			case isa.SUB:
				regs[o.wr] = regs[o.ra] - regs[o.rb]
			case isa.MUL:
				regs[o.wr] = regs[o.ra] * regs[o.rb]
			case isa.DIV:
				if b := regs[o.rb]; b == 0 {
					regs[o.wr] = 0
				} else {
					regs[o.wr] = uint64(int64(regs[o.ra]) / int64(b))
				}
			case isa.AND:
				regs[o.wr] = regs[o.ra] & regs[o.rb]
			case isa.OR:
				regs[o.wr] = regs[o.ra] | regs[o.rb]
			case isa.XOR:
				regs[o.wr] = regs[o.ra] ^ regs[o.rb]
			case isa.SLL:
				regs[o.wr] = regs[o.ra] << (regs[o.rb] & 63)
			case isa.SRL:
				regs[o.wr] = regs[o.ra] >> (regs[o.rb] & 63)
			case isa.SRA:
				regs[o.wr] = uint64(int64(regs[o.ra]) >> (regs[o.rb] & 63))
			case isa.CMPEQ, isa.CMPLT, isa.CMPLE, isa.CMPULT, isa.CMPULE:
				regs[o.wr] = cmpRR(o.kind, regs[o.ra], regs[o.rb])
			case isa.S4ADD:
				regs[o.wr] = regs[o.ra]*4 + regs[o.rb]
			case isa.S8ADD:
				regs[o.wr] = regs[o.ra]*8 + regs[o.rb]

			case isa.ADDI:
				regs[o.wr] = regs[o.ra] + uint64(o.imm)
			case isa.ANDI:
				regs[o.wr] = regs[o.ra] & uint64(o.imm)
			case isa.ORI:
				regs[o.wr] = regs[o.ra] | uint64(o.imm)
			case isa.XORI:
				regs[o.wr] = regs[o.ra] ^ uint64(o.imm)
			case isa.SLLI:
				regs[o.wr] = regs[o.ra] << uint64(o.imm) // imm pre-masked
			case isa.SRLI:
				regs[o.wr] = regs[o.ra] >> uint64(o.imm)
			case isa.SRAI:
				regs[o.wr] = uint64(int64(regs[o.ra]) >> uint64(o.imm))
			case isa.CMPEQI, isa.CMPLTI, isa.CMPLEI, isa.CMPULTI:
				regs[o.wr] = cmpRI(o.kind, regs[o.ra], o.imm)
			case isa.LDI:
				regs[o.wr] = uint64(o.imm)
			case isa.LDIH:
				regs[o.wr] = regs[o.ra] + uint64(o.imm) // imm pre-shifted

			case isa.CMOVEQ:
				if regs[o.ra] == 0 {
					regs[o.wr] = regs[o.rb]
				}
			case isa.CMOVNE:
				if regs[o.ra] != 0 {
					regs[o.wr] = regs[o.rb]
				}
			case isa.CMOVLT:
				if int64(regs[o.ra]) < 0 {
					regs[o.wr] = regs[o.rb]
				}
			case isa.CMOVGE:
				if int64(regs[o.ra]) >= 0 {
					regs[o.wr] = regs[o.rb]
				}
			case isa.CMOVGT:
				if int64(regs[o.ra]) > 0 {
					regs[o.wr] = regs[o.rb]
				}
			case isa.CMOVLE:
				if int64(regs[o.ra]) <= 0 {
					regs[o.wr] = regs[o.rb]
				}

			case isa.LD:
				// Faulting loads read zero and keep going: main-thread
				// functional semantics (helper-thread kill-on-fault lives in
				// the CPU model, not here). The Try probe inlines the
				// page-cache hit; the full accessor only runs on a miss.
				addr := regs[o.ra] + uint64(o.imm)
				v, hit := pg.TryLoad64(addr)
				if !hit {
					v, _ = pg.Load64(addr)
				}
				regs[o.wr] = v
			case isa.LDW:
				addr := regs[o.ra] + uint64(o.imm)
				v, hit := pg.TryLoad32(addr)
				if !hit {
					v, _ = pg.Load32(addr)
				}
				regs[o.wr] = uint64(int64(int32(uint32(v))))
			case isa.LDBU:
				addr := regs[o.ra] + uint64(o.imm)
				v, hit := pg.TryLoad8(addr)
				if !hit {
					v, _ = pg.Load8(addr)
				}
				regs[o.wr] = v
			case isa.ST:
				addr := regs[o.ra] + uint64(o.imm)
				if !pg.TryStore64(addr, regs[o.rd]) {
					pg.Store64(addr, regs[o.rd])
				}
			case isa.STW:
				addr := regs[o.ra] + uint64(o.imm)
				if !pg.TryStore32(addr, uint32(regs[o.rd])) {
					pg.Store32(addr, uint32(regs[o.rd]))
				}
			case isa.STB:
				addr := regs[o.ra] + uint64(o.imm)
				if !pg.TryStore8(addr, byte(regs[o.rd])) {
					pg.Store8(addr, byte(regs[o.rd]))
				}

			case isa.BEQ:
				retired++
				if regs[o.ra] == 0 {
					if o.tgt >= 0 {
						i = o.tgt
						continue inner
					}
					pc = o.tpc
					continue outer
				}
				i++
				if i == n {
					pc = r.end
					continue outer
				}
				continue inner
			case isa.BNE:
				retired++
				if regs[o.ra] != 0 {
					if o.tgt >= 0 {
						i = o.tgt
						continue inner
					}
					pc = o.tpc
					continue outer
				}
				i++
				if i == n {
					pc = r.end
					continue outer
				}
				continue inner
			case isa.BLT:
				retired++
				if int64(regs[o.ra]) < 0 {
					if o.tgt >= 0 {
						i = o.tgt
						continue inner
					}
					pc = o.tpc
					continue outer
				}
				i++
				if i == n {
					pc = r.end
					continue outer
				}
				continue inner
			case isa.BLE:
				retired++
				if int64(regs[o.ra]) <= 0 {
					if o.tgt >= 0 {
						i = o.tgt
						continue inner
					}
					pc = o.tpc
					continue outer
				}
				i++
				if i == n {
					pc = r.end
					continue outer
				}
				continue inner
			case isa.BGT:
				retired++
				if int64(regs[o.ra]) > 0 {
					if o.tgt >= 0 {
						i = o.tgt
						continue inner
					}
					pc = o.tpc
					continue outer
				}
				i++
				if i == n {
					pc = r.end
					continue outer
				}
				continue inner
			case isa.BGE:
				retired++
				if int64(regs[o.ra]) >= 0 {
					if o.tgt >= 0 {
						i = o.tgt
						continue inner
					}
					pc = o.tpc
					continue outer
				}
				i++
				if i == n {
					pc = r.end
					continue outer
				}
				continue inner
			case isa.BR:
				retired++
				if o.tgt >= 0 {
					i = o.tgt
					continue inner
				}
				pc = o.tpc
				continue outer
			case isa.JMP, isa.RET:
				retired++
				pc = regs[o.ra]
				continue outer
			case isa.CALL:
				regs[o.wr] = o.pc + isa.InstBytes
				retired++
				if o.tgt >= 0 {
					i = o.tgt
					continue inner
				}
				pc = o.tpc
				continue outer
			case isa.CALLR:
				t := regs[o.ra] // read before the link write: ra may alias rd
				regs[o.wr] = o.pc + isa.InstBytes
				retired++
				pc = t
				continue outer

			case isa.HALT:
				retired++
				ma.halted = true
				ma.pc = o.pc
				ma.r = r
				return retired, nil

			case kFCmpBr:
				v := cmpRR(o.plain, regs[o.ra], regs[o.rb])
				regs[o.wr] = v
				if retired+2 > maxInsts {
					break // retire only the compare (shared tail below)
				}
				retired += 2
				if (v != 0) != o.neg {
					if o.tgt >= 0 {
						i = o.tgt
						continue inner
					}
					pc = o.tpc
					continue outer
				}
				i += 2
				if i == n {
					pc = r.end
					continue outer
				}
				continue inner
			case kFCmpiBr:
				v := cmpRI(o.plain, regs[o.ra], o.imm)
				regs[o.wr] = v
				if retired+2 > maxInsts {
					break
				}
				retired += 2
				if (v != 0) != o.neg {
					if o.tgt >= 0 {
						i = o.tgt
						continue inner
					}
					pc = o.tpc
					continue outer
				}
				i += 2
				if i == n {
					pc = r.end
					continue outer
				}
				continue inner
			case kFSAddLd:
				var t uint64
				if o.plain == isa.S4ADD {
					t = regs[o.ra]*4 + regs[o.rb]
				} else {
					t = regs[o.ra]*8 + regs[o.rb]
				}
				regs[o.wr] = t
				if retired+2 > maxInsts {
					break
				}
				addr := t + uint64(o.imm2)
				switch o.k2 {
				case isa.LD:
					v, hit := pg.TryLoad64(addr)
					if !hit {
						v, _ = pg.Load64(addr)
					}
					regs[o.wr2] = v
				case isa.LDW:
					v, hit := pg.TryLoad32(addr)
					if !hit {
						v, _ = pg.Load32(addr)
					}
					regs[o.wr2] = uint64(int64(int32(uint32(v))))
				default: // LDBU
					v, hit := pg.TryLoad8(addr)
					if !hit {
						v, _ = pg.Load8(addr)
					}
					regs[o.wr2] = v
				}
				retired += 2
				i += 2
				if i == n {
					pc = r.end
					continue outer
				}
				continue inner
			case kFLdiAdd:
				regs[o.wr] = uint64(o.imm)
				if retired+2 > maxInsts {
					break
				}
				regs[o.wr2] = uint64(o.imm2) // imm2 = ldi.imm + addi.imm
				retired += 2
				i += 2
				if i == n {
					pc = r.end
					continue outer
				}
				continue inner
			}

			// Shared sequential tail: one instruction retired, fall through
			// to the next slot. (A fused op lands here only on the maxInsts
			// boundary, after executing just its first constituent — and a
			// fused op always has a successor slot, so i < n holds.)
			retired++
			i++
			if i == n {
				pc = r.end
				continue outer
			}
		}
		pc = r.base + uint64(i)*isa.InstBytes
	}
	ma.pc = pc
	ma.r = r
	return retired, nil
}

// Step executes exactly one architectural instruction, filling out with
// the same Outcome isa.Execute would produce, and returns the opcode (for
// caller-side classification). On HALT the PC stays at the HALT
// instruction; otherwise it advances to the outcome's next PC.
func (ma *Machine) Step(out *isa.Outcome) (isa.Op, error) {
	*out = isa.Outcome{}
	pc := ma.pc
	r := ma.r
	if r == nil || pc < r.base || pc >= r.end || (pc-r.base)%isa.InstBytes != 0 {
		r = ma.prog.regionFor(pc)
		if r == nil {
			return isa.NOP, &OffImageError{PC: pc}
		}
		ma.r = r
	}
	o := &r.ops[(pc-r.base)/isa.InstBytes]
	regs := &ma.Regs
	pg := &ma.pg

	// setReg mirrors isa.Execute's: the register write plus the Outcome
	// record, suppressed for the Zero destination.
	setReg := func(v uint64) {
		regs[o.wr] = v
		if o.wr != dump {
			out.WroteReg, out.Rd, out.Value = true, isa.Reg(o.rd), v
		}
	}

	switch op := o.plain; op {
	case isa.NOP:
	case isa.ADD:
		setReg(regs[o.ra] + regs[o.rb])
	case isa.SUB:
		setReg(regs[o.ra] - regs[o.rb])
	case isa.MUL:
		setReg(regs[o.ra] * regs[o.rb])
	case isa.DIV:
		if b := regs[o.rb]; b == 0 {
			setReg(0)
		} else {
			setReg(uint64(int64(regs[o.ra]) / int64(b)))
		}
	case isa.AND:
		setReg(regs[o.ra] & regs[o.rb])
	case isa.OR:
		setReg(regs[o.ra] | regs[o.rb])
	case isa.XOR:
		setReg(regs[o.ra] ^ regs[o.rb])
	case isa.SLL:
		setReg(regs[o.ra] << (regs[o.rb] & 63))
	case isa.SRL:
		setReg(regs[o.ra] >> (regs[o.rb] & 63))
	case isa.SRA:
		setReg(uint64(int64(regs[o.ra]) >> (regs[o.rb] & 63)))
	case isa.CMPEQ, isa.CMPLT, isa.CMPLE, isa.CMPULT, isa.CMPULE:
		setReg(cmpRR(op, regs[o.ra], regs[o.rb]))
	case isa.S4ADD:
		setReg(regs[o.ra]*4 + regs[o.rb])
	case isa.S8ADD:
		setReg(regs[o.ra]*8 + regs[o.rb])

	case isa.ADDI:
		setReg(regs[o.ra] + uint64(o.imm))
	case isa.ANDI:
		setReg(regs[o.ra] & uint64(o.imm))
	case isa.ORI:
		setReg(regs[o.ra] | uint64(o.imm))
	case isa.XORI:
		setReg(regs[o.ra] ^ uint64(o.imm))
	case isa.SLLI:
		setReg(regs[o.ra] << uint64(o.imm))
	case isa.SRLI:
		setReg(regs[o.ra] >> uint64(o.imm))
	case isa.SRAI:
		setReg(uint64(int64(regs[o.ra]) >> uint64(o.imm)))
	case isa.CMPEQI, isa.CMPLTI, isa.CMPLEI, isa.CMPULTI:
		setReg(cmpRI(op, regs[o.ra], o.imm))
	case isa.LDI:
		setReg(uint64(o.imm))
	case isa.LDIH:
		setReg(regs[o.ra] + uint64(o.imm))

	case isa.CMOVEQ:
		if regs[o.ra] == 0 {
			setReg(regs[o.rb])
		}
	case isa.CMOVNE:
		if regs[o.ra] != 0 {
			setReg(regs[o.rb])
		}
	case isa.CMOVLT:
		if int64(regs[o.ra]) < 0 {
			setReg(regs[o.rb])
		}
	case isa.CMOVGE:
		if int64(regs[o.ra]) >= 0 {
			setReg(regs[o.rb])
		}
	case isa.CMOVGT:
		if int64(regs[o.ra]) > 0 {
			setReg(regs[o.rb])
		}
	case isa.CMOVLE:
		if int64(regs[o.ra]) <= 0 {
			setReg(regs[o.rb])
		}

	case isa.LD, isa.LDW, isa.LDBU:
		out.IsMem = true
		out.Addr = regs[o.ra] + uint64(o.imm)
		out.Size = int(o.sz)
		var v uint64
		var ok bool
		switch op {
		case isa.LD:
			v, ok = pg.Load64(out.Addr)
		case isa.LDW:
			v, ok = pg.Load32(out.Addr)
			v = uint64(int64(int32(uint32(v))))
		default:
			v, ok = pg.Load8(out.Addr)
		}
		if !ok {
			out.Fault = true
		}
		setReg(v)
	case isa.ST, isa.STW, isa.STB:
		out.IsMem, out.IsStore = true, true
		out.Addr = regs[o.ra] + uint64(o.imm)
		out.Size = int(o.sz)
		out.StoreVal = regs[o.rd]
		var ok bool
		switch op {
		case isa.ST:
			ok = pg.Store64(out.Addr, out.StoreVal)
		case isa.STW:
			ok = pg.Store32(out.Addr, uint32(out.StoreVal))
		default:
			ok = pg.Store8(out.Addr, byte(out.StoreVal))
		}
		if !ok {
			out.Fault = true
		}

	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE:
		out.IsCtrl = true
		// A fused slot's tgt/tpc belong to its second constituent; a branch
		// is only ever the *first* constituent of no fusion, so when plain
		// is a branch this slot is unfused and tpc is the branch's own.
		out.Target = o.tpc
		a := regs[o.ra]
		switch op {
		case isa.BEQ:
			out.Taken = a == 0
		case isa.BNE:
			out.Taken = a != 0
		case isa.BLT:
			out.Taken = int64(a) < 0
		case isa.BLE:
			out.Taken = int64(a) <= 0
		case isa.BGT:
			out.Taken = int64(a) > 0
		case isa.BGE:
			out.Taken = int64(a) >= 0
		}
	case isa.BR:
		out.IsCtrl, out.Taken = true, true
		out.Target = o.tpc
	case isa.JMP, isa.RET:
		out.IsCtrl, out.Taken = true, true
		out.Target = regs[o.ra]
	case isa.CALL:
		out.IsCtrl, out.Taken = true, true
		out.Target = o.tpc
		setReg(pc + isa.InstBytes)
	case isa.CALLR:
		out.IsCtrl, out.Taken = true, true
		out.Target = regs[o.ra] // read before the link write
		setReg(pc + isa.InstBytes)

	case isa.FORK:
		out.Fork = true
		out.SliceIndex = int(int32(o.imm))
	case isa.HALT:
		out.Halt = true
		ma.halted = true
		return op, nil
	}
	ma.pc = out.NextPC(pc)
	return o.plain, nil
}
